// Package jxta is a from-scratch Go implementation of the JXTA 2.x
// peer-to-peer protocol stack — endpoint routing, resolver, rendezvous
// (peerview, lease, propagation) and discovery over the Loosely-Consistent
// DHT — together with a deterministic Grid'5000-style network simulator
// that reproduces the experiments of "Performance scalability of the JXTA
// P2P framework" (Antoniu, Cudennec, Duigou, Jan; INRIA RR-6064).
//
// The package is a facade over the internal protocol packages. A typical
// session builds a simulated overlay, publishes advertisements from edge
// peers and discovers them through the LC-DHT:
//
//	sim, _ := jxta.NewSimulation(jxta.SimOptions{
//		Rendezvous: 6,
//		Edges:      []jxta.EdgeSpec{{AttachTo: 0}, {AttachTo: 5}},
//	})
//	sim.Start()
//	sim.Run(15 * time.Minute) // let the peerview converge
//	pub, search := sim.Edge(0), sim.Edge(1)
//	pub.PublishResource("Test", nil)
//	advs, elapsed, _ := search.Discover("Resource", "Name", "Test", time.Minute)
//
// On top of discovery sits the streaming data plane: reliable JXTA sockets
// bound over pipe advertisements. A server edge listens under a name, a
// client edge resolves the name through the LC-DHT and dials; the resulting
// Stream is a flow-controlled, retransmitting byte stream:
//
//	server, client := sim.Edge(0), sim.Edge(1)
//	server.Listen("bulk", func(s *jxta.Stream) {
//		s.OnReadable(func() { /* drain s.Read(...) until io.EOF */ })
//	})
//	sim.Run(time.Minute) // let the pipe advertisement index propagate
//	stream, _ := client.Dial("bulk", time.Minute)
//	stream.Write(payload) // short writes resume via stream.OnWritable
//	stream.Close()
//
// One-to-many delivery uses propagate pipes: every peer that joins the
// same channel name receives each published payload once, fanned out
// through the rendezvous propagation machinery:
//
//	sub.JoinChannel("news", func(from string, data []byte) { ... })
//	pub.OpenChannel("news").Send([]byte("flash"))
//
// Membership is dynamic: peers have a full lifecycle, so volatility and
// self-healing scenarios are first-class. Stop halts a peer gracefully
// (lease cancelled, streams FIN, every timer cancelled — PendingCallbacks
// proves the teardown leak-free), Kill crashes it silently, Restart brings
// it back with the same identity and fresh protocol state, and AddEdge
// joins new peers while virtual time runs:
//
//	sim.Rendezvous(3).Kill()            // crash a super-peer
//	sim.Run(10 * time.Minute)           // overlay routes around it
//	sim.Rendezvous(3).Restart()         // same ID, cold state: rejoins
//	late, _ := sim.AddEdge("late", 0)   // live join
//
// Everything is deterministic under SimOptions.Seed. For live deployments
// over real TCP, see cmd/jxta-node; for the paper's experiment drivers, see
// cmd/jxta-bench.
package jxta

import (
	"errors"
	"fmt"
	"io"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/deploy"
	"jxta/internal/discovery"
	"jxta/internal/ids"
	"jxta/internal/metrics"
	"jxta/internal/netmodel"
	"jxta/internal/node"
	"jxta/internal/pipe"
	"jxta/internal/rendezvous"
	"jxta/internal/simnet"
	"jxta/internal/socket"
	"jxta/internal/topology"
)

// Advertisement is a published resource description (peer, rendezvous,
// route, pipe, module or generic resource).
type Advertisement = advertisement.Advertisement

// Resource is the generic application advertisement type.
type Resource = advertisement.Resource

// PeerAdv is a peer advertisement.
type PeerAdv = advertisement.Peer

// IndexField is one searchable (attribute, value) pair.
type IndexField = advertisement.IndexField

// Stream is a reliable, bidirectional, flow-controlled byte stream between
// two peers (a JXTA socket). Its Read/Write are io.ReadWriter-shaped but
// non-blocking; OnReadable/OnWritable signal progress.
type Stream = socket.Conn

// StreamListener accepts inbound streams bound to a pipe advertisement.
type StreamListener = socket.Listener

// Channel is the sending end of a one-to-many propagate pipe.
type Channel = pipe.OutputPipe

// EdgeSpec attaches one edge peer to a rendezvous (by deployment index).
type EdgeSpec struct {
	// AttachTo is the rendezvous index in [0, Rendezvous).
	AttachTo int
	// Name optionally names the peer.
	Name string
}

// SimOptions configures a simulated overlay.
type SimOptions struct {
	// Seed drives all randomness; equal seeds replay identical runs.
	Seed int64
	// Rendezvous is the number of rendezvous peers (the paper's r).
	Rendezvous int
	// Topology is the bootstrap seed shape: "chain" (default), "tree",
	// or "star".
	Topology string
	// Edges lists the edge peers to deploy.
	Edges []EdgeSpec
	// Shards selects the simulation engine: ≤1 (the default) is the
	// serial scheduler, byte-identical to earlier releases under a fixed
	// Seed; >1 partitions the overlay by Grid'5000 site across that many
	// conservative-PDES shards (clamped to the nine modeled sites) for
	// multicore scaling. Runs stay deterministic for a fixed (Seed,
	// Shards) pair at any GOMAXPROCS, but trajectories differ between
	// shard counts.
	Shards int
	// PipelineWindows is deprecated and ignored: window pipelining is the
	// default whenever Shards > 1. Set BarrierWindows to opt back out.
	PipelineWindows bool
	// BarrierWindows, with Shards > 1, opts out of window pipelining and
	// runs the sharded engine's original global window barrier: every
	// shard waits for the globally slowest one between lookahead windows.
	// The default pipelined path instead runs per-(src,dst) sealed
	// exchange queues, so shards whose inputs are ready start their next
	// window immediately. Fixed-seed runs are bit-reproducible at any
	// GOMAXPROCS on both paths, but trajectories differ between them
	// (window boundaries move), so determinism is per
	// (Seed, Shards, BarrierWindows).
	BarrierWindows bool
	// Hibernate freeze-dries steady-state edge peers between events:
	// an idle leased edge's service maps, metric caches and RNG register
	// are packed into pooled records and released, cutting live heap per
	// idle edge roughly 2-3x at 100k+ populations. Any delivery, timer or
	// API call on the peer rehydrates transparently, and trajectories are
	// byte-identical with it on or off. Default off.
	Hibernate bool
	// LeanMetrics shares one population-wide metrics registry across all
	// simulated peers and drops per-node trace rings and gauges — the
	// memory/assembly-cost mode for very large populations (100k+ edges).
	// Per-peer metric snapshots are unavailable in this mode. Default off.
	LeanMetrics bool
	// LeaseDuration overrides the rendezvous lease length (0 keeps the
	// JXTA-C default of 20 minutes; renewals happen at half of it).
	// Volatility scenarios shorten it so failure detection, failover and
	// the self-healing machinery run on a faster clock.
	LeaseDuration time.Duration
	// SocketWindowBytes overrides the stream layer's send/receive window
	// (0 keeps the default: 256 KiB, or the JXTA_SOCKET_WINDOW environment
	// variable). Larger windows lift the window/RTT throughput cap on
	// long fat paths.
	SocketWindowBytes int
	// DisableSelfHealing turns the self-healing rendezvous tier off.
	// By default a simulated overlay heals itself: edges detect a silent
	// rendezvous through missed lease renewals, fail over to the peerview
	// alternates their grants carried, and — when no rendezvous is left —
	// deterministically elect one of themselves to promote in place
	// (Peer.Role flips to "rendezvous"); a gracefully stopped rendezvous
	// hands its lease table and SRDI index to a successor. Disabling
	// reproduces the paper-faithful protocol with none of the extensions.
	DisableSelfHealing bool
	// PromoteHighestID flips the successor election to pick the client
	// with the largest peer ID (default: smallest).
	PromoteHighestID bool
	// Routing names the replica-placement strategy the LC-DHT uses:
	// "" or "lcdht" keeps the paper's linear position hash; "kademlia"
	// places replicas on the XOR-closest hashed peer ID instead. Both run
	// over the same peerview/SRDI machinery — this only swaps the hash →
	// peer mapping (internal/routing.Strategy).
	Routing string
	// DisableIslandMerge turns the gossip-driven island merge off while
	// keeping the rest of the self-healing machinery. By default (with
	// self-healing on) lease traffic piggybacks checksummed "tier rumor"
	// records, so a rendezvous that learns of a foreign rendezvous — an
	// island anchored by a promoted successor it never met — runs a
	// deterministic peerview merge handshake: member lists union, SRDI
	// tuples re-replicate over the merged view, and duplicate client
	// leases reconcile (lowest-ID rendezvous wins, losers redirect).
	// Implied by DisableSelfHealing.
	DisableIslandMerge bool
}

// Simulation owns a deployed overlay and its virtual clock.
type Simulation struct {
	overlay   *deploy.Overlay
	edges     []*Peer
	rdvs      []*Peer
	byNode    map[*node.Node]*Peer
	onPromote func(*Peer)
	onMerge   func(*Peer, string)
	started   bool
}

// Peer wraps one deployed peer (edge or rendezvous).
type Peer struct {
	sim *Simulation
	n   *node.Node
}

// ErrTimeout reports a Discover call that saw no response in its window.
var ErrTimeout = errors.New("jxta: discovery timed out")

// NewSimulation deploys the overlay described by opts. Peers are created
// but not started.
func NewSimulation(opts SimOptions) (*Simulation, error) {
	kind := topology.Chain
	if opts.Topology != "" {
		var err error
		kind, err = topology.ParseKind(opts.Topology)
		if err != nil {
			return nil, err
		}
	}
	spec := deploy.Spec{
		Seed:           opts.Seed,
		NumRdv:         opts.Rendezvous,
		Shards:         opts.Shards,
		BarrierWindows: opts.BarrierWindows,
		LeanMetrics:    opts.LeanMetrics,
		Hibernate:      opts.Hibernate,
		Topology:       kind,
		Discovery:      discovery.DefaultConfig(),
		Socket:         socket.Config{WindowBytes: opts.SocketWindowBytes},
		Routing:        opts.Routing,
	}
	spec.Lease.LeaseDuration = opts.LeaseDuration
	if !opts.DisableSelfHealing {
		spec.Lease.SelfHeal = true
		spec.Lease.IslandMerge = !opts.DisableIslandMerge
		if opts.PromoteHighestID {
			spec.Lease.Promotion = rendezvous.PromoteHighestID
		}
		// Active failure detection: a dead rendezvous leaves neighbouring
		// peerviews after ~3 unanswered probe rounds instead of lingering
		// a full PVE_EXPIRATION.
		spec.Peerview.ProbeTimeoutRounds = 3
	}
	for i, e := range opts.Edges {
		if e.AttachTo < 0 || e.AttachTo >= opts.Rendezvous {
			return nil, fmt.Errorf("jxta: edge %d attaches to rendezvous %d of %d",
				i, e.AttachTo, opts.Rendezvous)
		}
	}
	o, err := deploy.Build(spec)
	if err != nil {
		return nil, err
	}
	sim := &Simulation{overlay: o, byNode: make(map[*node.Node]*Peer)}
	o.OnPromotion = func(n *node.Node) {
		if p, ok := sim.byNode[n]; ok && sim.onPromote != nil {
			sim.onPromote(p)
		}
	}
	o.OnMerge = func(n *node.Node, peer ids.ID) {
		if p, ok := sim.byNode[n]; ok && sim.onMerge != nil {
			sim.onMerge(p, peer.String())
		}
	}
	for _, r := range o.Rdvs {
		p := &Peer{sim: sim, n: r}
		sim.rdvs = append(sim.rdvs, p)
		sim.byNode[r] = p
	}
	for i, e := range opts.Edges {
		name := e.Name
		if name == "" {
			name = fmt.Sprintf("edge%d", i)
		}
		n, err := o.AddEdge(name, e.AttachTo)
		if err != nil {
			return nil, err
		}
		p := &Peer{sim: sim, n: n}
		sim.edges = append(sim.edges, p)
		sim.byNode[n] = p
	}
	return sim, nil
}

// OnPromotion installs an observer that fires whenever the self-healing
// machinery promotes an edge peer to the rendezvous role while the
// simulation runs (successor election after a crash, or a graceful handoff
// electing a client). The peer passed is the promoted one.
func (s *Simulation) OnPromotion(fn func(*Peer)) { s.onPromote = fn }

// OnMerge installs an observer that fires whenever a peer completes an
// island-merge handshake leg while the simulation runs: the local peer and
// the merge counterpart's URN. With self-healing on (the default), islands
// left behind by total attrition gossip each other's existence through
// surviving edges and merge back into a single rendezvous tier.
func (s *Simulation) OnMerge(fn func(p *Peer, peer string)) { s.onMerge = fn }

// Start brings every peer up.
func (s *Simulation) Start() {
	if s.started {
		return
	}
	s.started = true
	s.overlay.StartAll()
}

// Stop shuts every peer down.
func (s *Simulation) Stop() {
	if !s.started {
		return
	}
	s.started = false
	s.overlay.StopAll()
}

// Run advances virtual time by d.
func (s *Simulation) Run(d time.Duration) {
	s.overlay.Sched.Run(s.overlay.Sched.Now() + d)
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.overlay.Sched.Now() }

// Steps returns the number of simulator events executed so far — the
// numerator of the engine's events/sec throughput metric.
func (s *Simulation) Steps() uint64 { return s.overlay.Sched.Steps() }

// Rendezvous returns the i-th rendezvous peer.
func (s *Simulation) Rendezvous(i int) *Peer { return s.rdvs[i] }

// Edge returns the i-th edge peer (deployment order of SimOptions.Edges).
func (s *Simulation) Edge(i int) *Peer { return s.edges[i] }

// NumRendezvous and NumEdges report the overlay shape.
func (s *Simulation) NumRendezvous() int { return len(s.rdvs) }

// NumEdges reports how many edge peers were deployed.
func (s *Simulation) NumEdges() int { return len(s.edges) }

// Messages returns the total messages the simulated network carried.
func (s *Simulation) Messages() uint64 { return s.overlay.Net.Stats().Messages }

// KillRendezvous crashes the i-th rendezvous (volatility experiments).
func (s *Simulation) KillRendezvous(i int) { s.overlay.KillRdv(i) }

// AddEdge deploys one more edge peer at virtual runtime, attached to the
// given rendezvous. On a started simulation the peer comes up immediately
// and acquires its lease — a live join.
func (s *Simulation) AddEdge(name string, attachTo int) (*Peer, error) {
	if attachTo < 0 || attachTo >= len(s.rdvs) {
		return nil, fmt.Errorf("jxta: edge attaches to rendezvous %d of %d",
			attachTo, len(s.rdvs))
	}
	if name == "" {
		name = fmt.Sprintf("edge%d", len(s.edges))
	}
	n, err := s.overlay.AddEdge(name, attachTo)
	if err != nil {
		return nil, err
	}
	p := &Peer{sim: s, n: n}
	s.edges = append(s.edges, p)
	s.byNode[n] = p
	return p, nil
}

// PendingCallbacks returns the number of live timers the peer's services
// currently own in the simulation scheduler. After Peer.Stop it is zero —
// the leak-freedom contract of the service lifecycle, pinned by regression
// tests.
func (s *Simulation) PendingCallbacks(p *Peer) int {
	ne, ok := p.n.Env.(*simnet.NodeEnv)
	if !ok {
		return 0
	}
	// The ledger lives on the env's own scheduler — under the sharded
	// engine, that is the shard owning the peer's site.
	return ne.Pending()
}

// ID returns the peer's JXTA ID in URN form.
func (p *Peer) ID() string { return p.n.ID.String() }

// Name returns the peer's configured name.
func (p *Peer) Name() string { return p.n.Config.Name }

// IsRendezvous reports the peer's current role. Roles are dynamic: a peer
// deployed as an edge may have been promoted since (self-healing, or an
// explicit Promote).
func (p *Peer) IsRendezvous() bool { return p.n.IsRendezvous() }

// Role names the peer's current role: "rendezvous" or "edge".
func (p *Peer) Role() string {
	if p.n.IsRendezvous() {
		return node.Rendezvous.String()
	}
	return node.Edge.String()
}

// Promote switches an edge peer to the rendezvous role in place, while it
// runs: it gains a peerview (seeded from the rendezvous network it knew),
// starts granting leases and serving the LC-DHT, and republishes its own
// advertisements into its fresh SRDI index. The self-healing machinery
// calls this automatically when a successor election picks this peer;
// exposing it lets deployments rebalance the super-peer tier by hand.
// No-op on a rendezvous.
func (p *Peer) Promote() { p.n.PromoteToRendezvous() }

// PeerViewSize returns l, the peer's local peerview size (rendezvous only;
// -1 for edges).
func (p *Peer) PeerViewSize() int {
	if p.n.PeerView == nil {
		return -1
	}
	return p.n.PeerView.Size()
}

// Connected reports whether an edge currently holds a rendezvous lease.
func (p *Peer) Connected() bool {
	if p.n.IsRendezvous() {
		return p.n.Started()
	}
	_, ok := p.n.Rendezvous.ConnectedRdv()
	return ok
}

// Started reports whether the peer is currently running.
func (p *Peer) Started() bool { return p.n.Started() }

// Stop gracefully halts the peer: streams FIN or reset, the lease is
// cancelled, every service timer is cancelled (PendingCallbacks drops to
// zero). The peer can come back with Restart.
func (p *Peer) Stop() { p.n.Stop() }

// Kill crashes the peer: nothing is sent and its address stops answering;
// the overlay discovers the death through its own timeouts. Restart heals
// it.
func (p *Peer) Kill() { p.sim.overlay.KillNode(p.n) }

// Restart cold-restarts the peer in place (after Stop or Kill, or while
// running): same ID and address, fresh protocol state — the peerview
// rebuilds from seeds, an edge re-leases and re-publishes. Applications
// must re-Listen/re-JoinChannel; streams from before the restart are gone.
func (p *Peer) Restart() { p.sim.overlay.RestartNode(p.n) }

// Publish stores an advertisement and pushes its index to the LC-DHT.
// Lifetime zero uses the stack default (2 h).
func (p *Peer) Publish(adv Advertisement, lifetime time.Duration) {
	p.n.Discovery.Publish(adv, lifetime)
}

// PublishResource publishes a generic resource advertisement with the given
// name and extra indexed attributes. It returns the advertisement.
func (p *Peer) PublishResource(name string, attrs map[string]string) *Resource {
	fields := make([]IndexField, 0, len(attrs))
	for k, v := range attrs {
		fields = append(fields, IndexField{Attr: k, Value: v})
	}
	// Deterministic advertisement ID from publisher + name.
	adv := &Resource{
		ResID: ids.FromName(ids.KindAdv, p.n.ID.String()+"/"+name),
		Name:  name,
		Attrs: fields,
	}
	p.n.Discovery.Publish(adv, 0)
	return adv
}

// PublishPeerAdv publishes this peer's own peer advertisement (the paper's
// Table 1 workload publishes one with Name "Test").
func (p *Peer) PublishPeerAdv() *PeerAdv {
	adv := p.n.PeerAdv()
	p.n.Discovery.Publish(adv, 0)
	return adv
}

// FlushCache drops remotely discovered advertisements (the benchmark's
// anti-caching step).
func (p *Peer) FlushCache() { p.n.Discovery.FlushCache() }

// discoverSettle is how long Discover keeps merging responses from further
// publishers after the first one answered (virtual time).
const discoverSettle = 100 * time.Millisecond

// Discover searches the overlay for advertisements of advType whose attr
// equals value, advancing virtual time until a response arrives or `within`
// elapses. Responses from multiple publishers arriving shortly after the
// first are merged (deduplicated by advertisement ID). It returns the
// advertisements, the latency of the first response, and ErrTimeout when
// nothing answered.
func (p *Peer) Discover(advType, attr, value string, within time.Duration) ([]Advertisement, time.Duration, error) {
	var first *discovery.Result
	var merged []Advertisement
	seen := map[string]bool{}
	err := p.n.Discovery.Query(advType, attr, value, func(r discovery.Result) {
		if first == nil {
			first = &r
		}
		for _, adv := range r.Advs {
			key := adv.ID().String()
			if !seen[key] {
				seen[key] = true
				merged = append(merged, adv)
			}
		}
	}, nil)
	if err != nil {
		return nil, 0, err
	}
	sched := p.sim.overlay.Sched
	deadline := sched.Now() + within
	for first == nil && sched.Now() < deadline {
		step := sched.Now() + 10*time.Millisecond
		if step > deadline {
			step = deadline
		}
		sched.Run(step)
	}
	if first == nil {
		return nil, 0, ErrTimeout
	}
	sched.Run(sched.Now() + discoverSettle)
	return merged, first.Elapsed, nil
}

// DiscoverRange searches for advertisements of advType whose attr is an
// integer within [lo, hi] — the complex-query extension (paper §5 future
// work). Ranges walk the whole rendezvous view, so responses from several
// publishers are merged over the settle window.
func (p *Peer) DiscoverRange(advType, attr string, lo, hi int64, within time.Duration) ([]Advertisement, time.Duration, error) {
	var first *discovery.Result
	var merged []Advertisement
	seen := map[string]bool{}
	err := p.n.Discovery.QueryRange(advType, attr, lo, hi, func(r discovery.Result) {
		if first == nil {
			first = &r
		}
		for _, adv := range r.Advs {
			key := adv.ID().String()
			if !seen[key] {
				seen[key] = true
				merged = append(merged, adv)
			}
		}
	}, nil)
	if err != nil {
		return nil, 0, err
	}
	sched := p.sim.overlay.Sched
	deadline := sched.Now() + within
	for first == nil && sched.Now() < deadline {
		step := sched.Now() + 10*time.Millisecond
		if step > deadline {
			step = deadline
		}
		sched.Run(step)
	}
	if first == nil {
		return nil, 0, ErrTimeout
	}
	sched.Run(sched.Now() + discoverSettle)
	return merged, first.Elapsed, nil
}

// Listen binds a stream listener under the given name and publishes the
// backing pipe advertisement so other peers can Dial it. accept fires once
// per established inbound connection.
func (p *Peer) Listen(name string, accept func(*Stream)) (*StreamListener, error) {
	return p.n.Socket.Listen(pipe.NewPipeAdv(p.n.ID, name), accept)
}

// Dial resolves a named stream listener through the LC-DHT, performs the
// socket handshake and returns the established stream, advancing virtual
// time until the connection is up or `within` elapses.
func (p *Peer) Dial(name string, within time.Duration) (*Stream, error) {
	var conn *Stream
	var dialErr error
	resolved := false
	// Always resolve over the overlay: a cached pipe advertisement does not
	// identify the current binder, the responding publisher does.
	err := p.n.Discovery.QueryRemote("Pipe", "Name", name,
		func(r discovery.Result) {
			if resolved {
				return
			}
			for _, adv := range r.Advs {
				pa, ok := adv.(*advertisement.Pipe)
				if !ok {
					continue
				}
				resolved = true
				// The responder is the pipe's publisher, i.e. the binder.
				p.n.Socket.DialPeer(r.From, pa.PipeID, func(c *Stream, err error) {
					conn, dialErr = c, err
				})
				return
			}
		},
		func() {
			if !resolved {
				resolved = true
				dialErr = ErrTimeout
			}
		})
	if err != nil {
		return nil, err
	}
	sched := p.sim.overlay.Sched
	deadline := sched.Now() + within
	for conn == nil && dialErr == nil && sched.Now() < deadline {
		step := sched.Now() + 10*time.Millisecond
		if step > deadline {
			step = deadline
		}
		sched.Run(step)
	}
	if dialErr != nil {
		return nil, dialErr
	}
	if conn == nil {
		return nil, ErrTimeout
	}
	return conn, nil
}

// JoinChannel subscribes this peer to a one-to-many propagate channel:
// recv fires once per payload published anywhere in the group, with the
// origin peer's URN.
func (p *Peer) JoinChannel(name string, recv func(from string, data []byte)) error {
	_, err := p.n.Pipe.Bind(pipe.NewPropagateAdv(name), func(src ids.ID, data []byte) {
		recv(src.String(), data)
	})
	return err
}

// OpenChannel returns the sending end of a propagate channel. Send fans the
// payload out to every subscribed peer through the rendezvous propagation
// machinery (the sender must hold a rendezvous lease, or be a rendezvous).
func (p *Peer) OpenChannel(name string) *Channel {
	return p.n.Pipe.ConnectPropagate(pipe.NewPropagateAdv(name))
}

// SocketStats returns this peer's stream-layer counters.
func (p *Peer) SocketStats() socket.Stats { return p.n.Socket.Stats }

// TraceEvent is one protocol transition recorded by a peer: promotions,
// failovers, island merges and lease-state changes, with the virtual
// timestamp it happened at.
type TraceEvent = metrics.TraceEvent

// MetricsSnapshot flattens the peer's full instrument registry — every
// service's counters, gauges and histogram buckets — into a name→value map
// keyed by Prometheus series name. Call it while virtual time is paused
// (between Run calls); collecting is a pure observation and never perturbs
// the simulation.
func (p *Peer) MetricsSnapshot() map[string]float64 { return p.n.Metrics.Snapshot() }

// WriteMetrics encodes the peer's registry in Prometheus text exposition
// format (the same bytes a live node serves on /metrics).
func (p *Peer) WriteMetrics(w io.Writer) error { return p.n.Metrics.WritePrometheus(w) }

// TraceEvents returns the peer's protocol event ring, oldest first: the
// most recent lease transitions, elections, promotions, handoffs and
// island merges with virtual timestamps.
func (p *Peer) TraceEvents() []TraceEvent { return p.n.Trace.Events() }

// OverlayMetrics flattens the overlay-level registry — fabric traffic and,
// on sharded runs, engine window/barrier instrumentation — into a
// name→value map. Call between Run calls.
func (s *Simulation) OverlayMetrics() map[string]float64 { return s.overlay.Metrics.Snapshot() }

// Grid5000Sites returns the nine modeled site names, for documentation and
// tooling.
func Grid5000Sites() []string {
	sites := netmodel.AllSites()
	out := make([]string, len(sites))
	for i, s := range sites {
		out[i] = s.String()
	}
	return out
}
