// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§4), at reduced scale so `go test -bench=.` completes in
// minutes. Full-scale regeneration — the paper's exact r values and
// durations — is cmd/jxta-bench's job; EXPERIMENTS.md records those runs.
package jxta

import (
	"strconv"
	"testing"
	"time"

	"jxta/internal/experiments"
	"jxta/internal/ids"
	"jxta/internal/topology"
)

// BenchmarkTable1ReplicaExample regenerates Table 1 / Figure 2: the replica
// function worked example plus the O(1)-publish / 4-message-lookup counts
// over a converged 6-rendezvous overlay.
func BenchmarkTable1ReplicaExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Pos != 3 {
			b.Fatalf("replica position %d, want 3", res.Pos)
		}
		b.ReportMetric(float64(res.PublishMsgs), "publish-msgs")
		b.ReportMetric(float64(res.LookupMsgs), "lookup-msgs")
		b.ReportMetric(res.LatencyMs, "lookup-ms")
	}
}

// BenchmarkFig3LeftPeerview regenerates a Figure 3 (left) curve: peerview
// size over time (scaled: r=80, 30 virtual minutes; paper: up to r=580 over
// 60-120 minutes).
func BenchmarkFig3LeftPeerview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPeerview(experiments.PeerviewSpec{
			R: 80, Topology: topology.Chain,
			Duration: 30 * time.Minute, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MaxSize), "max-l")
		b.ReportMetric(res.PlateauMean, "plateau-l")
	}
}

// BenchmarkFig3LeftTree is the tree-topology variant (the paper found the
// bootstrap shape has no significant influence).
func BenchmarkFig3LeftTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPeerview(experiments.PeerviewSpec{
			R: 80, Topology: topology.Tree, Fanout: 2,
			Duration: 30 * time.Minute, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PlateauMean, "plateau-l")
	}
}

// BenchmarkFig3RightEvents regenerates Figure 3 (right): the add/remove
// event distribution of one rendezvous' local peerview (scaled: r=80).
func BenchmarkFig3RightEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3Right(80, 45*time.Minute, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		adds, removes := res.Events.Counts()
		b.ReportMetric(float64(adds), "adds")
		b.ReportMetric(float64(removes), "removes")
		b.ReportMetric(float64(res.Events.DistinctPeers()), "distinct-peers")
	}
}

// BenchmarkFig4LeftTunedExpiry regenerates Figure 4 (left): default vs
// tuned PVE_EXPIRATION at reduced scale (r=30).
func BenchmarkFig4LeftTunedExpiry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		def, tuned, err := experiments.Fig4Left(30, 40*time.Minute, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(def.PlateauMean, "default-plateau-l")
		b.ReportMetric(float64(tuned.FinalSize), "tuned-final-l")
		b.ReportMetric(tuned.ReachedMaxAt.Minutes(), "tuned-t1-min")
	}
}

// BenchmarkFig4RightDiscoveryA regenerates one configuration-A point of
// Figure 4 (right): discovery latency without noise (r=50, the knee of the
// paper's curve).
func BenchmarkFig4RightDiscoveryA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDiscovery(experiments.DiscoverySpec{
			R: 50, Queries: 50, Seed: int64(i), Converge: 15 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanMs, "discover-ms")
	}
}

// BenchmarkFig4RightDiscoveryB is the configuration-B point: 50 noiser
// edges publishing 5000 fake advertisements (r=5, the paper's maximum-
// overhead point).
func BenchmarkFig4RightDiscoveryB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDiscovery(experiments.DiscoverySpec{
			R: 5, Noise: true, Queries: 50, Seed: int64(i),
			Converge: 15 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanMs, "discover-ms")
	}
}

// BenchmarkFig4RightWalkRegime measures the inconsistent-peerview regime
// (r=150 > the consistency threshold): queries fall back to the O(r) walk.
func BenchmarkFig4RightWalkRegime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDiscovery(experiments.DiscoverySpec{
			R: 150, Queries: 50, Seed: int64(i), Converge: 45 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanMs, "discover-ms")
		b.ReportMetric(100*res.WalkFraction, "walk-pct")
	}
}

// BenchmarkComplexityLCDHTvsChord measures the §3.3 complexity contrast:
// LC-DHT, Chord-class DHT and flooding on the same network model.
func BenchmarkComplexityLCDHTvsChord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunBaselines(32, 30, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LCDHTMsgsPerOp, "lcdht-msgs-op")
		b.ReportMetric(res.ChordMeanHops, "chord-hops")
		b.ReportMetric(res.FloodMsgsPerOp, "flood-msgs-op")
	}
}

// BenchmarkChurnDiscovery measures the paper's future-work extension:
// discovery while rendezvous peers crash.
func BenchmarkChurnDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunChurn(experiments.ChurnSpec{
			R: 20, Kills: 5, Queries: 40,
			KillEvery: 90 * time.Second, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Succeeded), "queries-ok")
		b.ReportMetric(res.Latency.Mean(), "discover-ms")
	}
}

// BenchmarkOverlayBoot measures deploying and converging a 50-rendezvous
// overlay end to end — the simulator's bulk workload.
func BenchmarkOverlayBoot(b *testing.B) {
	b.ReportAllocs()
	var steps uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulation(SimOptions{Seed: int64(i), Rendezvous: 50})
		if err != nil {
			b.Fatal(err)
		}
		sim.Start()
		sim.Run(10 * time.Minute)
		steps += sim.Steps()
		sim.Stop()
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(float64(steps)/wall, "events/sec")
	}
}

// BenchmarkFacadePublishDiscover measures one publish + discover round trip
// through the public API on a small converged overlay.
func BenchmarkFacadePublishDiscover(b *testing.B) {
	sim, err := NewSimulation(SimOptions{Seed: 1, Rendezvous: 6,
		Edges: []EdgeSpec{{AttachTo: 0}, {AttachTo: 5}}})
	if err != nil {
		b.Fatal(err)
	}
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)
	pub, search := sim.Edge(0), sim.Edge(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Names must be unique per iteration: recycling a small name set
		// would re-publish existing advertisements and measure cache
		// replacement instead of fresh publish+discover. A short lifetime
		// keeps the stores at a steady size (each iteration advances >30s
		// of virtual time), so ns/op stays comparable across b.N values.
		name := "bench-" + strconv.Itoa(i)
		adv := &Resource{
			ResID: ids.FromName(ids.KindAdv, name),
			Name:  name,
		}
		pub.Publish(adv, 2*time.Minute)
		sim.Run(30 * time.Second)
		search.FlushCache()
		if _, _, err := search.Discover("Resource", "Name", name, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeQuery measures the complex-query extension: a range lookup
// that walks the whole rendezvous view.
func BenchmarkRangeQuery(b *testing.B) {
	sim, err := NewSimulation(SimOptions{Seed: 1, Rendezvous: 10,
		Edges: []EdgeSpec{{AttachTo: 0}, {AttachTo: 9}}})
	if err != nil {
		b.Fatal(err)
	}
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)
	for i := 0; i < 20; i++ {
		sim.Edge(0).PublishResource(
			"node-"+string(rune('a'+i)),
			map[string]string{"RAM": []string{"1024", "2048", "4096"}[i%3]})
	}
	sim.Run(time.Minute)
	searcher := sim.Edge(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		searcher.FlushCache()
		advs, _, err := searcher.DiscoverRange("Resource", "RAM", 2000, 5000, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if len(advs) == 0 {
			b.Fatal("no range results")
		}
	}
}
