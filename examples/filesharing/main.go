// Filesharing: the classic P2P workload the paper's introduction motivates.
// Edge peers scattered over a multi-site overlay publish advertisements for
// the files they hold; a searcher finds providers by exact name and by
// wildcard prefix (served from its growing local cache).
//
//	go run ./examples/filesharing
package main

import (
	"fmt"
	"log"
	"time"

	"jxta"
)

func main() {
	sim, err := jxta.NewSimulation(jxta.SimOptions{
		Seed:       7,
		Rendezvous: 12,
		Topology:   "tree",
		Edges: []jxta.EdgeSpec{
			{AttachTo: 0, Name: "alice"},
			{AttachTo: 4, Name: "bob"},
			{AttachTo: 8, Name: "carol"},
			{AttachTo: 11, Name: "searcher"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Start()
	defer sim.Stop()
	sim.Run(15 * time.Minute) // peerview convergence + leases

	catalog := map[int][]string{
		0: {"dataset-climate-2006.tar", "dataset-genome-a.tar"},
		1: {"dataset-genome-b.tar", "movie-conference-talk.ogv"},
		2: {"dataset-climate-2005.tar"},
	}
	for peer, files := range catalog {
		for _, f := range files {
			sim.Edge(peer).PublishResource(f, map[string]string{
				"Kind": "file",
			})
		}
	}
	sim.Run(time.Minute) // SRDI pushes + replication

	searcher := sim.Edge(3)

	// Exact lookup: who has the 2006 climate dataset?
	advs, elapsed, err := searcher.Discover(
		"Resource", "Name", "dataset-climate-2006.tar", time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact lookup: %d provider(s) in %.1f ms\n",
		len(advs), float64(elapsed)/float64(time.Millisecond))

	// Gather the rest of the catalog, then wildcard-search the local cache
	// (prefix matching is a local-cache feature; the LC-DHT indexes exact
	// tuples only, as in JXTA).
	for _, name := range []string{
		"dataset-genome-a.tar", "dataset-genome-b.tar",
		"dataset-climate-2005.tar", "movie-conference-talk.ogv",
	} {
		if _, _, err := searcher.Discover("Resource", "Name", name, time.Minute); err != nil {
			log.Fatalf("lookup %s: %v", name, err)
		}
	}
	cached, _, err := searcher.Discover("Resource", "Name", "dataset-*", time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wildcard dataset-*: %d datasets known locally\n", len(cached))
	for _, adv := range cached {
		if r, ok := adv.(*jxta.Resource); ok {
			fmt.Printf("  - %s\n", r.Name)
		}
	}
	fmt.Printf("total simulated messages: %d\n", sim.Messages())
}
