// Filetransfer: bulk data distribution over the streaming layer — the
// scenario class the paper's stack was built to serve (JuxMem-style grid
// data services). A file server edge announces a new file on a propagate
// channel; subscriber edges hear the announcement, dial the server's
// socket listener through the LC-DHT pipe binding, and pull the file over
// a reliable, flow-controlled stream — across the simulated Grid'5000 WAN,
// with injected message loss to show the retransmission machinery at work.
//
//	go run ./examples/filetransfer
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"jxta"
)

const fileSize = 1 << 20 // 1 MiB

func main() {
	sim, err := jxta.NewSimulation(jxta.SimOptions{
		Seed:       2024,
		Rendezvous: 9, // one per Grid'5000 site
		Topology:   "chain",
		Edges: []jxta.EdgeSpec{
			{AttachTo: 0, Name: "fileserver"},
			{AttachTo: 4, Name: "mirror-lyon"},
			{AttachTo: 8, Name: "mirror-sophia"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Start()
	defer sim.Stop()

	server := sim.Edge(0)
	mirrors := []*jxta.Peer{sim.Edge(1), sim.Edge(2)}

	// The file: a deterministic 1 MiB blob.
	file := make([]byte, fileSize)
	for i := range file {
		file[i] = byte(i * 31)
	}

	// The server listens for download connections and streams the file to
	// every client that connects.
	if _, err := server.Listen("dataset-v1", func(s *jxta.Stream) {
		rest := file
		var push func()
		push = func() {
			for len(rest) > 0 {
				n, err := s.Write(rest)
				if err != nil || n == 0 {
					return // window full: OnWritable resumes
				}
				rest = rest[n:]
			}
			s.Close()
		}
		s.OnWritable(push)
		push()
	}); err != nil {
		log.Fatal(err)
	}

	// Mirrors subscribe to the announcement channel before the overlay
	// converges; announcements fan out through the rendezvous propagation
	// machinery to every subscriber, whichever rendezvous it leases from.
	type announcement struct{ name string }
	heard := make([]chan announcement, len(mirrors))
	for i, m := range mirrors {
		ch := make(chan announcement, 1)
		heard[i] = ch
		if err := m.JoinChannel("releases", func(from string, data []byte) {
			select {
			case ch <- announcement{name: string(data)}:
			default:
			}
		}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("— converging overlay (9 rendezvous, 3 edges) —")
	sim.Run(15 * time.Minute)

	fmt.Println("— announcing dataset-v1 on the 'releases' channel —")
	if err := server.OpenChannel("releases").Send([]byte("dataset-v1")); err != nil {
		log.Fatal(err)
	}
	sim.Run(time.Minute)

	for i, m := range mirrors {
		select {
		case ann := <-heard[i]:
			fmt.Printf("%s heard announcement %q\n", m.Name(), ann.name)
		default:
			log.Fatalf("%s never heard the announcement", m.Name())
		}
	}

	// Each mirror pulls the file over a reliable stream.
	for _, m := range mirrors {
		stream, err := m.Dial("dataset-v1", time.Minute)
		if err != nil {
			log.Fatalf("%s: dial: %v", m.Name(), err)
		}
		var got []byte
		done := false
		start := sim.Now()
		var finished time.Duration
		buf := make([]byte, 64<<10)
		stream.OnReadable(func() {
			for {
				n, err := stream.Read(buf)
				got = append(got, buf[:n]...)
				if err == io.EOF {
					done = true
					finished = sim.Now()
					return
				}
				if err != nil || n == 0 {
					return
				}
			}
		})
		deadline := sim.Now() + 10*time.Minute
		for !done && sim.Now() < deadline {
			sim.Run(500 * time.Millisecond)
		}
		if !done {
			log.Fatalf("%s: download stalled at %d/%d bytes", m.Name(), len(got), fileSize)
		}
		ok := len(got) == fileSize
		for i := 0; ok && i < fileSize; i++ {
			ok = got[i] == file[i]
		}
		if !ok {
			log.Fatalf("%s: download corrupted", m.Name())
		}
		elapsed := finished - start
		fmt.Printf("%s downloaded %d KiB intact in %.0f ms (%.1f MB/s virtual)\n",
			m.Name(), fileSize>>10, float64(elapsed)/float64(time.Millisecond),
			float64(fileSize)/1e6/elapsed.Seconds())
	}
	fmt.Printf("network carried %d messages total\n", sim.Messages())
}
