// Gridresource: grid-computing resource discovery — the use case that
// motivated evaluating JXTA for grid middleware (the paper cites JuxMem and
// P2P/grid convergence). Compute sites publish node advertisements with
// CPU/RAM attributes; a scheduler edge discovers candidates by attribute,
// and keeps succeeding while rendezvous peers crash (the LC-DHT walk
// fallback plus lease failover absorb the churn).
//
//	go run ./examples/gridresource
package main

import (
	"fmt"
	"log"
	"time"

	"jxta"
)

func main() {
	sim, err := jxta.NewSimulation(jxta.SimOptions{
		Seed:       1234,
		Rendezvous: 16,
		Topology:   "chain",
		Edges: []jxta.EdgeSpec{
			{AttachTo: 0, Name: "site-rennes"},
			{AttachTo: 5, Name: "site-sophia"},
			{AttachTo: 10, Name: "site-orsay"},
			{AttachTo: 15, Name: "scheduler"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Start()
	defer sim.Stop()
	sim.Run(15 * time.Minute)

	// Each site publishes its compute nodes.
	type nodeSpec struct {
		site int
		name string
		cpu  string
		ram  string
	}
	nodes := []nodeSpec{
		{0, "paraci-01", "opteron-2.2GHz", "4096"},
		{0, "paraci-02", "opteron-2.2GHz", "4096"},
		{1, "helios-01", "itanium2-900MHz", "2048"},
		{2, "gdx-01", "opteron-2.0GHz", "2048"},
		{2, "gdx-02", "opteron-2.2GHz", "4096"},
	}
	for _, n := range nodes {
		sim.Edge(n.site).PublishResource(n.name, map[string]string{
			"CPU": n.cpu,
			"RAM": n.ram,
		})
	}
	sim.Run(time.Minute)

	scheduler := sim.Edge(3)
	query := func(label, attr, value string) {
		scheduler.FlushCache()
		advs, elapsed, err := scheduler.Discover("Resource", attr, value, time.Minute)
		if err != nil {
			fmt.Printf("%-28s -> no result (%v)\n", label, err)
			return
		}
		fmt.Printf("%-28s -> %d node(s) in %5.1f ms\n",
			label, len(advs), float64(elapsed)/float64(time.Millisecond))
		for _, adv := range advs {
			if r, ok := adv.(*jxta.Resource); ok {
				fmt.Printf("    %s\n", r.Name)
			}
		}
	}

	fmt.Println("— initial resource discovery —")
	query("4 GiB nodes", "RAM", "4096")
	query("2.2 GHz Opterons", "CPU", "opteron-2.2GHz")

	// Complex queries (the paper's §5 future-work extension): find every
	// node with at least 3 GiB of memory, whatever the exact size.
	scheduler.FlushCache()
	advs, elapsed, err := scheduler.DiscoverRange("Resource", "RAM", 3072, 1<<40, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s -> %d node(s) in %5.1f ms\n",
		"range RAM >= 3072", len(advs), float64(elapsed)/float64(time.Millisecond))
	for _, adv := range advs {
		if r, ok := adv.(*jxta.Resource); ok {
			fmt.Printf("    %s\n", r.Name)
		}
	}

	// Volatility: a third of the rendezvous infrastructure disappears.
	fmt.Println("— killing rendezvous 3, 7, 12 —")
	for _, idx := range []int{3, 7, 12} {
		sim.KillRendezvous(idx)
	}
	sim.Run(10 * time.Minute) // leases fail over, peerviews expire the dead

	fmt.Println("— discovery under churn —")
	query("4 GiB nodes (post-churn)", "RAM", "4096")
	query("Itanium nodes (post-churn)", "CPU", "itanium2-900MHz")
}
