// Quickstart: the paper's Table 1 / Figure 2 worked example as a running
// program. Six rendezvous peers form a peerview; edge peer E1 publishes a
// peer advertisement with Name "Test"; edge peer E2 discovers it through
// the LC-DHT (hash the tuple "PeerNameTest", map it onto the ordered
// peerview, forward to the replica, deliver from the publisher).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"jxta"
)

func main() {
	sim, err := jxta.NewSimulation(jxta.SimOptions{
		Seed:       2006, // the year of the paper's experiments
		Rendezvous: 6,
		Topology:   "chain",
		Edges: []jxta.EdgeSpec{
			{AttachTo: 0, Name: "E1"},
			{AttachTo: 1, Name: "E2"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Start()
	defer sim.Stop()

	// Let the peerview protocol converge (property (2) holds quickly for
	// r = 6: every local view reaches l = r-1 = 5).
	sim.Run(12 * time.Minute)
	for i := 0; i < sim.NumRendezvous(); i++ {
		fmt.Printf("R%d peerview size: %d (want %d)\n",
			i+1, sim.Rendezvous(i).PeerViewSize(), sim.NumRendezvous()-1)
	}

	e1, e2 := sim.Edge(0), sim.Edge(1)
	fmt.Printf("E1 connected: %v, E2 connected: %v\n", e1.Connected(), e2.Connected())

	// E1 publishes its peer advertisement: index tuple "PeerNameTest"
	// travels E1 -> R1 -> replica peer (2 messages, the O(1) publish).
	adv := e1.PublishPeerAdv()
	sim.Run(30 * time.Second)
	fmt.Printf("E1 published peer advertisement Name=%q\n", adv.Name)

	// E2 looks it up: E2 -> R2 -> replica -> E1 -> E2 (4 messages).
	advs, elapsed, err := e2.Discover("Peer", "Name", adv.Name, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E2 discovered %d advertisement(s) in %.1f ms\n",
		len(advs), float64(elapsed)/float64(time.Millisecond))
	fmt.Printf("  -> %s\n", advs[0].Document())
}
