// Tcpoverlay: the same JXTA stack the simulator runs at scale, live over
// real TCP sockets on localhost — one rendezvous and two edges in a single
// process, wall-clock timers, real wire messages (length-prefixed frames of
// the binary message codec).
//
//	go run ./examples/tcpoverlay
package main

import (
	"fmt"
	"log"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/discovery"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/node"
	"jxta/internal/peerview"
	"jxta/internal/transport"
)

func mustListen() *transport.TCP {
	tr, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	// Rendezvous.
	rdvTr := mustListen()
	defer rdvTr.Close()
	rdvEnv := env.NewReal("rdv", 1)
	var rdv *node.Node
	rdvEnv.Locked(func() {
		rdv = node.New(rdvEnv, rdvTr, node.Config{
			Name: "rdv", Role: node.Rendezvous,
			Discovery: discovery.DefaultConfig(),
		})
		rdv.Start()
	})
	fmt.Printf("rendezvous %s on %s\n", rdv.ID.Short(), rdvTr.Addr())

	seed := peerview.Seed{ID: rdv.ID, Addr: rdvTr.Addr()}

	mkEdge := func(name string, rngSeed int64) (*node.Node, *env.Real, *transport.TCP) {
		tr := mustListen()
		e := env.NewReal(name, rngSeed)
		var n *node.Node
		e.Locked(func() {
			n = node.New(e, tr, node.Config{
				Name: name, Role: node.Edge,
				Seeds:     []peerview.Seed{seed},
				Discovery: discovery.DefaultConfig(),
			})
			n.Start()
		})
		return n, e, tr
	}
	pub, pubEnv, pubTr := mkEdge("publisher", 2)
	defer pubTr.Close()
	search, searchEnv, searchTr := mkEdge("searcher", 3)
	defer searchTr.Close()

	// Wait for both leases (wall clock).
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		connected := 0
		for _, pair := range []struct {
			e *env.Real
			n *node.Node
		}{{pubEnv, pub}, {searchEnv, search}} {
			pair.e.Locked(func() {
				if _, ok := pair.n.Rendezvous.ConnectedRdv(); ok {
					connected++
				}
			})
		}
		if connected == 2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("edges leased to the rendezvous")

	pubEnv.Locked(func() {
		pub.Discovery.Publish(&advertisement.Resource{
			ResID: ids.FromName(ids.KindAdv, "live-demo"),
			Name:  "live-demo",
		}, 0)
	})
	fmt.Println("publisher pushed its advertisement into the LC-DHT")
	time.Sleep(300 * time.Millisecond) // SRDI push + replication on the wire

	done := make(chan string, 1)
	searchEnv.Locked(func() {
		search.Discovery.Query("Resource", "Name", "live-demo",
			func(r discovery.Result) {
				done <- fmt.Sprintf("searcher found %d advertisement(s) from %s in %v",
					len(r.Advs), r.From.Short(), r.Elapsed.Round(time.Millisecond))
			},
			func() { done <- "search timed out" })
	})
	select {
	case msg := <-done:
		fmt.Println(msg)
	case <-time.After(30 * time.Second):
		fmt.Println("no response")
	}

	searchEnv.Locked(func() { search.Stop() })
	pubEnv.Locked(func() { pub.Stop() })
	rdvEnv.Locked(func() { rdv.Stop() })
}
