// Command jxta-sim runs an arbitrary JXTA overlay scenario on the simulated
// Grid'5000 network: choose the rendezvous count, topology, protocol
// tunables and an optional churn process, then watch the peerview converge
// and run a publish/discover workload.
//
// Examples:
//
//	jxta-sim -r 50 -topology chain -duration 30m
//	jxta-sim -r 80 -expiry 5m -interval 15s -duration 45m
//	jxta-sim -r 40 -churn 2m -duration 40m
//	jxta-sim -scenario overlay.json -duration 30m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"jxta/internal/deploy"
	"jxta/internal/discovery"
	"jxta/internal/peerview"
	"jxta/internal/topology"
)

var (
	rFlag        = flag.Int("r", 20, "number of rendezvous peers")
	topoFlag     = flag.String("topology", "chain", "seed topology: chain|tree|star")
	fanoutFlag   = flag.Int("fanout", 2, "tree fanout")
	durationFlag = flag.Duration("duration", 30*time.Minute, "virtual experiment length")
	intervalFlag = flag.Duration("interval", 0, "PEERVIEW_INTERVAL override (default 30s)")
	expiryFlag   = flag.Duration("expiry", 0, "PVE_EXPIRATION override (default 20m)")
	churnFlag    = flag.Duration("churn", 0, "kill one rendezvous this often (0 = none)")
	edgesFlag    = flag.Int("edges", 2, "edge peers (publisher on rdv0, searcher on last, rest spread)")
	seedFlag     = flag.Int64("seed", 1, "determinism seed")
	sampleFlag   = flag.Duration("sample", 2*time.Minute, "status print period (virtual)")
	scenarioFlag = flag.String("scenario", "", "JSON scenario file (overrides the topology flags)")
)

func main() {
	flag.Parse()
	var o *deploy.Overlay
	if *scenarioFlag != "" {
		var err error
		o, err = deploy.LoadScenario(*scenarioFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		*rFlag = len(o.Rdvs)
	} else {
		kind, err := topology.ParseKind(*topoFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var groups []deploy.EdgeGroup
		if *edgesFlag > 0 {
			groups = append(groups, deploy.EdgeGroup{AttachTo: 0, Count: 1, Prefix: "publisher"})
		}
		if *edgesFlag > 1 {
			groups = append(groups, deploy.EdgeGroup{AttachTo: *rFlag - 1, Count: 1, Prefix: "searcher"})
		}
		for i := 2; i < *edgesFlag; i++ {
			groups = append(groups, deploy.EdgeGroup{AttachTo: i % *rFlag, Count: 1})
		}
		o, err = deploy.Build(deploy.Spec{
			Seed:      *seedFlag,
			NumRdv:    *rFlag,
			Topology:  kind,
			Fanout:    *fanoutFlag,
			Peerview:  peerview.Config{Interval: *intervalFlag, EntryExpiry: *expiryFlag},
			Discovery: discovery.DefaultConfig(),
			Edges:     groups,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	o.StartAll()
	fmt.Printf("deployed %d rendezvous + %d edges, seed %d\n",
		*rFlag, len(o.Edges), *seedFlag)

	// Optional churn process.
	if *churnFlag > 0 {
		victim := 1
		var kill func()
		kill = func() {
			if victim < *rFlag-1 {
				fmt.Printf("[%6.1f min] churn: killing rdv%d\n",
					o.Sched.Now().Minutes(), victim)
				o.KillRdv(victim)
				victim += 2
				o.Sched.After(*churnFlag, kill)
			}
		}
		o.Sched.After(*churnFlag, kill)
	}

	// Publish once the overlay has had a moment.
	if len(o.Edges) >= 1 {
		o.Sched.After(2*time.Minute, func() {
			adv := o.Edges[0].PeerAdv()
			adv.Name = "Test"
			o.Edges[0].Discovery.Publish(adv, 0)
			fmt.Printf("[%6.1f min] publisher: published peer advertisement Name=Test\n",
				o.Sched.Now().Minutes())
		})
	}

	observed := o.Rdvs[*rFlag/2]
	for t := *sampleFlag; t <= *durationFlag; t += *sampleFlag {
		o.Sched.Run(t)
		live := 0
		for _, rdv := range o.Rdvs {
			if _, ok := o.Net.Lookup(rdv.Endpoint.Addr()); ok {
				live++
			}
		}
		fmt.Printf("[%6.1f min] peerview l=%d/%d live-rdv=%d msgs=%d\n",
			t.Minutes(), observed.PeerView.Size(), *rFlag-1, live,
			o.Net.Stats().Messages)
	}

	// Final discovery probe.
	if len(o.Edges) >= 2 {
		searcher := o.Edges[1]
		done := false
		searcher.Discovery.Query("Peer", "Name", "Test", func(res discovery.Result) {
			if !done {
				done = true
				fmt.Printf("[%6.1f min] searcher: found %d advertisement(s) in %.1f ms (from %s)\n",
					o.Sched.Now().Minutes(), len(res.Advs),
					float64(res.Elapsed)/float64(time.Millisecond), res.From.Short())
			}
		}, func() {
			fmt.Printf("[%6.1f min] searcher: discovery timed out\n", o.Sched.Now().Minutes())
		})
		o.Sched.Run(o.Sched.Now() + time.Minute)
	}
	st := o.Net.Stats()
	fmt.Printf("totals: %d messages, %.1f MiB, %d dropped\n",
		st.Messages, float64(st.Bytes)/(1<<20), st.Dropped)
}
