// Command jxta-bench regenerates every table and figure of the paper's
// evaluation section (§4) on the simulated Grid'5000 substrate.
//
// Usage:
//
//	jxta-bench -exp all                 # everything, full scale (minutes)
//	jxta-bench -exp fig3left -quick     # scaled-down fast pass
//	jxta-bench -exp fig4right -csv      # machine-readable series
//
// Experiments: table1, fig3left, fig3right, fig4left, fig4right,
// baselines, churn, ablations, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jxta/internal/experiments"
	"jxta/internal/metrics"
	"jxta/internal/plot"
	"jxta/internal/topology"
)

var (
	expFlag   = flag.String("exp", "all", "experiment: table1|fig3left|fig3right|fig4left|fig4right|baselines|churn|ablations|all")
	quickFlag = flag.Bool("quick", false, "scaled-down parameters (seconds instead of minutes)")
	csvFlag   = flag.Bool("csv", false, "emit CSV instead of ASCII plots")
	seedFlag  = flag.Int64("seed", 42, "master determinism seed")
)

func main() {
	flag.Parse()
	start := time.Now()
	runners := map[string]func() error{
		"table1":    table1,
		"fig3left":  fig3Left,
		"fig3right": fig3Right,
		"fig4left":  fig4Left,
		"fig4right": fig4Right,
		"baselines": baselines,
		"churn":     churn,
		"ablations": ablations,
	}
	order := []string{"table1", "fig3left", "fig3right", "fig4left", "fig4right", "baselines", "churn", "ablations"}
	var selected []string
	if *expFlag == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		fmt.Printf("==== %s ====\n", name)
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
}

func table1() error {
	res, err := experiments.Table1(*seedFlag)
	if err != nil {
		return err
	}
	fmt.Println("Table 1 / Figure 2 worked example (§3.3):")
	fmt.Printf("  ReplicaPos(116, MAX_HASH=200, l=6) = %d   (paper: 3 -> R4)\n", res.Pos)
	fmt.Printf("  publish messages  = %d                  (paper: 2, O(1))\n", res.PublishMsgs)
	fmt.Printf("  lookup messages   = %d                  (paper: 4 worst case)\n", res.LookupMsgs)
	fmt.Printf("  lookup latency    = %.1f ms\n", res.LatencyMs)
	return nil
}

func fig3Params() (quickDur time.Duration, chainRs, treeRs []int) {
	if *quickFlag {
		return 30 * time.Minute, []int{10, 45, 80}, []int{40}
	}
	// Full scale: zero duration lets the driver pick the paper's own
	// per-size lengths (60 min; 120 min for r=580).
	return 0, experiments.Fig3LeftDefaultRs, experiments.Fig3LeftTreeRs
}

func fig3Left() error {
	quickDur, chainRs, treeRs := fig3Params()
	chart := plot.Chart{
		Title:  "Figure 3 (left): peerview size l over time",
		XLabel: "minutes", YLabel: "known rendezvous",
	}
	emit := func(topo topology.Kind, rs []int) error {
		results, err := experiments.Fig3Left(rs, topo, quickDur, *seedFlag)
		if err != nil {
			return err
		}
		for _, res := range results {
			label := fmt.Sprintf("%s r=%d", topo, res.Spec.R)
			if *csvFlag {
				fmt.Printf("# %s (max=%d plateau=%.0f consistent=%v)\n%s",
					label, res.MaxSize, res.PlateauMean, res.ConsistentAtEnd,
					res.Size.CSV())
				continue
			}
			s := plot.Series{Label: label}
			for i := 0; i < res.Size.Len(); i++ {
				at, v := res.Size.At(i)
				s.X = append(s.X, at.Minutes())
				s.Y = append(s.Y, v)
			}
			chart.Add(s)
			fmt.Printf("  %-14s max=%-4d plateau=%-6.0f reachedMax=%-5v consistent=%v\n",
				label, res.MaxSize, res.PlateauMean, res.ReachedMax, res.ConsistentAtEnd)
		}
		return nil
	}
	if err := emit(topology.Chain, chainRs); err != nil {
		return err
	}
	if err := emit(topology.Tree, treeRs); err != nil {
		return err
	}
	if !*csvFlag {
		fmt.Println(chart.Render())
	}
	return nil
}

func fig3Right() error {
	r, dur := 580, 120*time.Minute
	if *quickFlag {
		r, dur = 120, 60*time.Minute
	}
	res, err := experiments.Fig3Right(r, dur, *seedFlag)
	if err != nil {
		return err
	}
	adds, removes := res.Events.Counts()
	firstRemove, _ := res.Events.FirstRemoveAt()
	lastAdd, _ := res.Events.LastAddAt()
	fmt.Printf("Figure 3 (right): peerview events at r=%d over %v\n", r, dur)
	fmt.Printf("  add events=%d remove events=%d distinct peers seen=%d/%d\n",
		adds, removes, res.Events.DistinctPeers(), r-1)
	fmt.Printf("  first remove at %.0f min (paper: PVE_EXPIRATION = 20 min)\n",
		firstRemove.Minutes())
	fmt.Printf("  last new peer discovered at %.0f min (paper: 117 min, 577/579 seen)\n",
		lastAdd.Minutes())
	if *csvFlag {
		fmt.Println("minutes,kind,peerNum")
		for _, e := range res.Events.Events {
			kind := "add"
			if e.Kind == metrics.EventRemove {
				kind = "remove"
			}
			fmt.Printf("%.2f,%s,%d\n", e.At.Minutes(), kind, e.PeerNum)
		}
		return nil
	}
	addS := plot.Series{Label: "add"}
	remS := plot.Series{Label: "remove"}
	for _, e := range res.Events.Events {
		if e.Kind == metrics.EventAdd {
			addS.X = append(addS.X, e.At.Minutes())
			addS.Y = append(addS.Y, float64(e.PeerNum))
		} else {
			remS.X = append(remS.X, e.At.Minutes())
			remS.Y = append(remS.Y, float64(e.PeerNum))
		}
	}
	chart := plot.Chart{Title: "Figure 3 (right): add/remove events",
		XLabel: "minutes", YLabel: "rendezvous number"}
	chart.Add(addS)
	chart.Add(remS)
	fmt.Println(chart.Render())
	return nil
}

func fig4Left() error {
	r, dur := 50, 60*time.Minute
	if *quickFlag {
		r, dur = 30, 40*time.Minute
	}
	def, tuned, err := experiments.Fig4Left(r, dur, *seedFlag)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 4 (left): r=%d, default vs tuned PVE_EXPIRATION\n", r)
	fmt.Printf("  default: max=%d plateau=%.0f (fluctuates below r-1=%d)\n",
		def.MaxSize, def.PlateauMean, r-1)
	t1 := "never"
	if tuned.ReachedMax {
		t1 = fmt.Sprintf("%.0f min", tuned.ReachedMaxAt.Minutes())
	}
	fmt.Printf("  tuned:   max=%d final=%d, reached r-1 at t1=%s (paper: 17 min)\n",
		tuned.MaxSize, tuned.FinalSize, t1)
	if *csvFlag {
		fmt.Printf("# default\n%s# tuned\n%s", def.Size.CSV(), tuned.Size.CSV())
		return nil
	}
	chart := plot.Chart{Title: "Figure 4 (left)", XLabel: "minutes", YLabel: "known rendezvous"}
	for _, pair := range []struct {
		label string
		res   experiments.PeerviewResult
	}{{"default PVE_EXPIRATION", def}, {"tuned PVE_EXPIRATION", tuned}} {
		s := plot.Series{Label: pair.label}
		for i := 0; i < pair.res.Size.Len(); i++ {
			at, v := pair.res.Size.At(i)
			s.X = append(s.X, at.Minutes())
			s.Y = append(s.Y, v)
		}
		chart.Add(s)
	}
	fmt.Println(chart.Render())
	return nil
}

func fig4Right() error {
	rs := experiments.Fig4RightDefaultRs
	queries := 100
	if *quickFlag {
		rs = []int{5, 25, 75, 150}
		queries = 40
	}
	chart := plot.Chart{Title: "Figure 4 (right): time to discover an advertisement",
		XLabel: "rendezvous peers", YLabel: "ms"}
	if *csvFlag {
		fmt.Println("config,r,meanMs,p95Ms,timeouts,walkFraction")
	}
	for _, cfg := range []struct {
		name  string
		noise bool
	}{{"A (no noise)", false}, {"B (50 noisers, 5000 fakes)", true}} {
		results, err := experiments.Fig4RightParallel(rs, cfg.noise, queries, *seedFlag)
		if err != nil {
			return err
		}
		s := plot.Series{Label: cfg.name}
		for _, res := range results {
			if *csvFlag {
				fmt.Printf("%s,%d,%.2f,%.2f,%d,%.2f\n", cfg.name, res.Spec.R,
					res.MeanMs, res.Latency.Quantile(0.95), res.Timeouts, res.WalkFraction)
			} else {
				fmt.Printf("  %-28s r=%-4d mean=%6.1f ms  p95=%6.1f  walk=%.0f%%\n",
					cfg.name, res.Spec.R, res.MeanMs,
					res.Latency.Quantile(0.95), 100*res.WalkFraction)
			}
			s.X = append(s.X, float64(res.Spec.R))
			s.Y = append(s.Y, res.MeanMs)
		}
		chart.Add(s)
	}
	if !*csvFlag {
		fmt.Println(chart.Render())
	}
	return nil
}

func baselines() error {
	ns := []int{16, 64, 128}
	ops := 50
	if *quickFlag {
		ns = []int{16, 48}
		ops = 20
	}
	fmt.Println("Baselines (§3.3 complexity contrast): LC-DHT vs Chord vs flooding")
	fmt.Printf("  %-5s %-22s %-28s %-22s\n", "n",
		"LC-DHT ms / msgs-op", "Chord ms / hops / msgs-op", "Flood ms / msgs-op")
	for _, n := range ns {
		res, err := experiments.RunBaselines(n, ops, *seedFlag)
		if err != nil {
			return err
		}
		fmt.Printf("  %-5d %6.1f / %-13.1f %6.1f / %4.1f / %-13.1f %6.1f / %-10.1f\n",
			n, res.LCDHTMeanMs, res.LCDHTMsgsPerOp,
			res.ChordMeanMs, res.ChordMeanHops, res.ChordMsgsPerOp,
			res.FloodMeanMs, res.FloodMsgsPerOp)
	}
	return nil
}

func churn() error {
	r, kills, queries := 40, 10, 100
	if *quickFlag {
		r, kills, queries = 16, 4, 30
	}
	res, err := experiments.RunChurn(experiments.ChurnSpec{
		R: r, Kills: kills, Queries: queries, KillEvery: 90 * time.Second, Seed: *seedFlag,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Volatility extension (paper §5 future work): r=%d, %d crashes\n", r, kills)
	fmt.Printf("  queries ok=%d/%d timeouts=%d\n", res.Succeeded, queries, res.Timeouts)
	fmt.Printf("  latency %s\n", res.Latency.Summary())
	fmt.Printf("  walk fallback used on %.0f%% of queries\n", 100*res.WalkFraction)
	return nil
}

func ablations() error {
	r, dur := 60, 45*time.Minute
	if *quickFlag {
		r, dur = 30, 24*time.Minute
	}
	fmt.Printf("Ablations at r=%d (steady-state view size vs bandwidth):\n", r)
	refs, err := experiments.AblateReferrals(r, nil, dur, *seedFlag)
	if err != nil {
		return err
	}
	ivals, err := experiments.AblateInterval(r, nil, dur, *seedFlag)
	if err != nil {
		return err
	}
	exps, err := experiments.AblateExpiry(r, nil, dur, *seedFlag)
	if err != nil {
		return err
	}
	for _, res := range []experiments.AblationResult{refs, ivals, exps} {
		fmt.Printf("  %s:\n", res.Parameter)
		for _, pt := range res.Points {
			fmt.Printf("    %-8s plateau l=%-6.1f msgs/peer/min=%.1f\n",
				pt.Label, pt.PlateauL, pt.MsgsPerPeerPerMin)
		}
	}
	walk, err := experiments.AblateWalk(75, 40, *seedFlag)
	if err != nil {
		return err
	}
	fmt.Printf("  walk fallback (r=%d, %d queries):\n", walk.R, walk.Queries)
	fmt.Printf("    with walk:    %d ok, mean %.1f ms\n", walk.WithWalkOK, walk.WithWalkMeanMs)
	fmt.Printf("    without walk: %d ok, %d lost\n", walk.WithoutWalkOK, walk.WithoutWalkLost)
	return nil
}
