// Command jxta-bench regenerates every table and figure of the paper's
// evaluation section (§4) on the simulated Grid'5000 substrate.
//
// Usage:
//
//	jxta-bench -exp all                 # everything, full scale (minutes)
//	jxta-bench -exp fig3left -quick     # scaled-down fast pass
//	jxta-bench -exp fig4right -csv      # machine-readable series
//	jxta-bench -exp perf -json BENCH_PR1.json   # engine perf point
//	jxta-bench -exp fig3left -cpuprofile cpu.out -memprofile mem.out
//
// Experiments: table1, fig3left, fig3right, fig4left, fig4right,
// baselines, churn, volatility, ablations, bandwidth, perf, scale, all.
// -json writes a machine-readable summary of every selected experiment;
// each PR appends its `perf` point to the benchmark trajectory
// (BENCH_<PR>.json, see PERFORMANCE.md).
//
// scale measures the sharded conservative-PDES engine (SimOptions.Shards):
// events/sec and wall time vs shard count on leased-edge workloads at
// r=250 and r=1,000, a GOMAXPROCS speedup curve at fixed shard count, and
// serial-vs-sharded on the perf trajectory's peerview-r80-30min workload.
// Per point it reports the hardware-independent speedup bound (total
// events over barrier critical-path events) alongside machine-dependent
// wall numbers.
//
// bandwidth sweeps the streaming layer (reliable JXTA sockets): throughput
// vs. message size (1 KiB–1 MiB) and RTT curves over the simulated
// Grid'5000 model, lossless and with 1% injected loss. The simnet numbers
// derive purely from virtual time, so the curve is bit-identical across
// runs with the same seed. Pass -live to also measure over real loopback
// TCP transports (wall-clock, machine-dependent, reported separately).
//
// churn runs the volatility pair: rolling rendezvous crashes while queries
// flow (the paper's §5 future-work scenario), then the recovery mode — a
// mass rendezvous failure healed by staged rejoins of the same peers
// through the service lifecycle's Restart, measuring discovery success and
// peerview re-convergence across the outage (golden-pinned for replay).
//
// volatility sweeps the self-healing rendezvous tier across kill rates (the
// paper-§5 axis): rendezvous crash on a timer with nobody spared, edges
// fail over to the peerview alternates their lease grants carried and —
// when a region loses every reachable rendezvous — deterministically elect
// one of themselves to promote in place. Each kill interval is measured
// twice: full attrition (victims never return; the tier survives only
// through promotion) and kill/rejoin churn (victims restart and bridge the
// healed tier back together). Reported per point: discovery success while
// the killing runs, promotions performed, the final live tier and its
// re-convergence.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"jxta/internal/deploy"
	"jxta/internal/experiments"
	"jxta/internal/metrics"
	"jxta/internal/plot"
	"jxta/internal/topology"
)

var (
	expFlag        = flag.String("exp", "all", "experiment: table1|fig3left|fig3right|fig4left|fig4right|baselines|churn|volatility|ablations|bandwidth|perf|scale|routing|all")
	quickFlag      = flag.Bool("quick", false, "scaled-down parameters (seconds instead of minutes)")
	maxHeapPerEdge = flag.Float64("maxheapedge", 0, "scale: fail if the lean memory point's heap_bytes_per_edge exceeds this many bytes (0 disables; the CI memory smoke pins it)")
	hibernateFlag  = flag.Bool("hibernate", false, "scale: force edge hibernation on every scale workload (lean memory points hibernate regardless; the CI hibernation smoke sets this)")
	liveFlag       = flag.Bool("live", false, "bandwidth: also measure over real loopback TCP (wall-clock, nondeterministic)")
	csvFlag        = flag.Bool("csv", false, "emit CSV instead of ASCII plots")
	seedFlag       = flag.Int64("seed", 42, "master determinism seed")
	jsonFlag       = flag.String("json", "", "write a JSON summary of the selected experiments to this file")
	cpuProfile     = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	memProfile     = flag.String("memprofile", "", "write a heap profile taken after the experiment runs to this file")
)

func main() {
	// All failure paths return through run so deferred profile writers
	// flush before the process exits.
	os.Exit(run())
}

func run() int {
	flag.Parse()
	start := time.Now()
	if *memProfile != "" {
		// Deferred so the heap profile is written on failure paths too.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	runners := map[string]func() (any, error){
		"table1":     table1,
		"fig3left":   fig3Left,
		"fig3right":  fig3Right,
		"fig4left":   fig4Left,
		"fig4right":  fig4Right,
		"baselines":  baselines,
		"churn":      churn,
		"volatility": volatility,
		"ablations":  ablations,
		"bandwidth":  bandwidth,
		"perf":       perf,
		"scale":      scale,
		"routing":    routingExp,
	}
	order := []string{"table1", "fig3left", "fig3right", "fig4left", "fig4right", "baselines", "churn", "volatility", "ablations", "bandwidth", "perf", "scale", "routing"}
	var selected []string
	if *expFlag == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
				return 2
			}
			selected = append(selected, name)
		}
	}
	summaries := make(map[string]any, len(selected))
	for _, name := range selected {
		fmt.Printf("==== %s ====\n", name)
		summary, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return 1
		}
		summaries[name] = summary
		fmt.Println()
	}
	if *jsonFlag != "" {
		doc := map[string]any{
			"seed":        *seedFlag,
			"quick":       *quickFlag,
			"wall_ms":     float64(time.Since(start)) / float64(time.Millisecond),
			"experiments": summaries,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonFlag, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
	return 0
}

// perfPoint is one engine-throughput measurement for the benchmark
// trajectory (PERFORMANCE.md).
type perfPoint struct {
	Workload     string  `json:"workload"`
	WallMs       float64 `json:"wall_ms"`
	VirtualMin   float64 `json:"virtual_min"`
	Steps        uint64  `json:"steps"`
	EventsPerSec float64 `json:"events_per_sec"`
	Mallocs      uint64  `json:"mallocs"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	Messages     uint64  `json:"messages"`
	// NodeMetrics is the per-node runtime-metrics section: population
	// totals plus sampled full snapshots (see experiments.CollectNodeMetrics).
	NodeMetrics *experiments.NodeMetricsSummary `json:"node_metrics,omitempty"`
}

// perf measures raw engine throughput on the two benchmark workloads the
// PR trajectory tracks: a 50-rendezvous overlay boot and an 80-rendezvous
// peerview convergence (-quick shrinks both; trajectory points should use
// the full scale).
func perf() (any, error) {
	bootR, bootDur := 50, 10*time.Minute
	pvR, pvDur := 80, 30*time.Minute
	if *quickFlag {
		bootR, bootDur = 20, 5*time.Minute
		pvR, pvDur = 30, 10*time.Minute
	}
	var points []perfPoint

	measure := func(workload string, virtual time.Duration, run func() (steps, msgs uint64, nm *experiments.NodeMetricsSummary, err error)) error {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		steps, msgs, nm, err := run()
		wall := time.Since(start)
		if err != nil {
			return err
		}
		runtime.ReadMemStats(&after)
		points = append(points, perfPoint{
			Workload:     workload,
			WallMs:       float64(wall) / float64(time.Millisecond),
			VirtualMin:   virtual.Minutes(),
			Steps:        steps,
			EventsPerSec: float64(steps) / wall.Seconds(),
			Mallocs:      after.Mallocs - before.Mallocs,
			AllocBytes:   after.TotalAlloc - before.TotalAlloc,
			Messages:     msgs,
			NodeMetrics:  nm,
		})
		return nil
	}

	if err := measure(fmt.Sprintf("overlay-boot-r%d", bootR), bootDur, func() (uint64, uint64, *experiments.NodeMetricsSummary, error) {
		o, err := deploy.Build(deploy.Spec{Seed: *seedFlag, NumRdv: bootR, Topology: topology.Chain})
		if err != nil {
			return 0, 0, nil, err
		}
		o.StartAll()
		o.Sched.Run(bootDur)
		steps, msgs := o.Sched.Steps(), o.Net.Stats().Messages
		nm := experiments.CollectNodeMetrics(o, 1)
		o.StopAll()
		return steps, msgs, nm, nil
	}); err != nil {
		return nil, err
	}

	if err := measure(fmt.Sprintf("peerview-r%d-%dmin", pvR, int(pvDur.Minutes())), pvDur, func() (uint64, uint64, *experiments.NodeMetricsSummary, error) {
		res, err := experiments.RunPeerview(experiments.PeerviewSpec{
			R: pvR, Topology: topology.Chain,
			Duration: pvDur, Seed: *seedFlag,
		})
		if err != nil {
			return 0, 0, nil, err
		}
		return res.Steps, res.NetStats.Messages, res.NodeMetrics, nil
	}); err != nil {
		return nil, err
	}

	for _, p := range points {
		fmt.Printf("  %-22s wall=%8.1f ms  steps=%-9d events/sec=%-12.0f mallocs=%-9d msgs=%d\n",
			p.Workload, p.WallMs, p.Steps, p.EventsPerSec, p.Mallocs, p.Messages)
	}
	return points, nil
}

// scalePoint is one sharded-engine scaling measurement for the benchmark
// trajectory (PERFORMANCE.md, BENCH_PR6.json). Wall-clock fields are
// hardware-dependent; SpeedupBound is the workload's achievable speedup on
// an ideal one-core-per-shard machine (total events over barrier-model
// critical-path events), so the trajectory stays comparable across boxes.
type scalePoint struct {
	Workload string `json:"workload"`
	R        int    `json:"r"`
	Edges    int    `json:"edges"`
	Shards   int    `json:"shards"`
	// Barrier marks a run on the opt-out global-barrier engine; sharded
	// runs are window-pipelined by default since PR 9 (earlier trajectory
	// files carry the inverse "pipeline" flag from when the barrier was
	// the default).
	Barrier      bool    `json:"barrier,omitempty"`
	Lean         bool    `json:"lean,omitempty"`
	Hibernate    bool    `json:"hibernate,omitempty"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	WallMs       float64 `json:"wall_ms"`
	Steps        uint64  `json:"steps"`
	EventsPerSec float64 `json:"events_per_sec"`
	Windows      uint64  `json:"windows"`
	AvgBusy      float64 `json:"avg_busy"`
	CrossShard   uint64  `json:"cross_shard"`
	SpeedupBound float64 `json:"speedup_bound"`
	SpeedupWall  float64 `json:"speedup_wall"`
	// HeapBytesPerEdge is the live-heap cost of one simulated edge
	// (experiments.ScaleResult.HeapBytesPerEdge); zero when not measured.
	HeapBytesPerEdge float64 `json:"heap_bytes_per_edge,omitempty"`
	// Hibernation occupancy at the end of the virtual run: how many edges
	// were freeze-dried when the clock stopped, plus cumulative
	// wake/freeze transitions (zero when hibernation is off).
	Hibernating int    `json:"hibernating,omitempty"`
	HibWakes    uint64 `json:"hib_wakes,omitempty"`
	HibFreezes  uint64 `json:"hib_freezes,omitempty"`
	// NodeMetrics is the per-node runtime-metrics section: population
	// totals plus sampled full snapshots (see experiments.CollectNodeMetrics).
	NodeMetrics *experiments.NodeMetricsSummary `json:"node_metrics,omitempty"`
}

// scale measures the sharded conservative-PDES engine: events/sec and wall
// time vs shard count on a leased-edge workload (r=250 / 10k edges), the
// first r=1,000 trajectory point, a GOMAXPROCS speedup curve at fixed shard
// count, and the serial-vs-sharded comparison on the perf trajectory's own
// peerview-r80-30min workload.
func scale() (any, error) {
	sweepR, sweepEdges, sweepDur := 250, 10_000, 10*time.Minute
	sweepShards := []int{1, 2, 4, 8}
	gmps := []int{1, 2, 4, 8}
	pvR, pvDur := 80, 30*time.Minute
	pvShards := []int{1, 8, 9}
	bigR, bigEdges := 1000, 20_000
	if *quickFlag {
		sweepR, sweepEdges, sweepDur = 18, 54, 5*time.Minute
		sweepShards = []int{1, 2}
		gmps = []int{1, 2}
		pvR, pvDur = 20, 6*time.Minute
		pvShards = []int{1, 2}
		bigR = 0 // r=1,000 is a full-scale-only point
	}
	summary := map[string]any{}
	if *csvFlag {
		fmt.Println("workload,r,edges,shards,barrier,lean,hibernate,gomaxprocs,wallMs,steps,eventsPerSec,windows,avgBusy,crossShard,speedupBound,speedupWall,heapBytesPerEdge,hibernating,hibWakes,hibFreezes")
	}
	emit := func(p scalePoint) {
		if *csvFlag {
			fmt.Printf("%s,%d,%d,%d,%v,%v,%v,%d,%.1f,%d,%.0f,%d,%.2f,%d,%.2f,%.2f,%.0f,%d,%d,%d\n",
				p.Workload, p.R, p.Edges, p.Shards, p.Barrier, p.Lean, p.Hibernate, p.GOMAXPROCS, p.WallMs, p.Steps,
				p.EventsPerSec, p.Windows, p.AvgBusy, p.CrossShard, p.SpeedupBound, p.SpeedupWall, p.HeapBytesPerEdge,
				p.Hibernating, p.HibWakes, p.HibFreezes)
			return
		}
		heap := ""
		if p.HeapBytesPerEdge > 0 {
			heap = fmt.Sprintf("  heap/edge=%.0f B", p.HeapBytesPerEdge)
		}
		hib := ""
		if p.Hibernate {
			hib = fmt.Sprintf("  hib=%d/%d", p.Hibernating, p.Edges)
		}
		fmt.Printf("  %-18s shards=%-2d gmp=%-2d wall=%9.1f ms  events/sec=%-9.0f bound=%-5.2f wallx=%-5.2f windows=%-7d avgBusy=%.2f%s%s\n",
			p.Workload, p.Shards, p.GOMAXPROCS, p.WallMs, p.EventsPerSec,
			p.SpeedupBound, p.SpeedupWall, p.Windows, p.AvgBusy, heap, hib)
	}
	runOne := func(name string, spec experiments.ScaleSpec, serialEps float64) (scalePoint, error) {
		if *hibernateFlag && !spec.NoHibernate {
			spec.Hibernate = true
		}
		res, err := experiments.RunScale(spec)
		if err != nil {
			return scalePoint{}, err
		}
		p := scalePoint{
			Workload: name, R: spec.R, Edges: spec.Edges, Shards: res.Spec.Shards,
			Barrier: spec.Barrier, Lean: spec.Lean,
			Hibernate:  (spec.Hibernate || spec.Lean) && !spec.NoHibernate,
			GOMAXPROCS: runtime.GOMAXPROCS(0), WallMs: res.WallMs, Steps: res.Steps,
			EventsPerSec: res.EventsPerSec, Windows: res.Windows, AvgBusy: res.AvgBusy,
			CrossShard: res.CrossShard, SpeedupBound: res.SpeedupBound,
			HeapBytesPerEdge: res.HeapBytesPerEdge,
			Hibernating:      res.Hibernating, HibWakes: res.HibWakes, HibFreezes: res.HibFreezes,
			NodeMetrics: res.NodeMetrics,
		}
		if p.SpeedupBound == 0 {
			p.SpeedupBound = 1 // serial engine: no windows, bound is unity
		}
		p.SpeedupWall = 1 // the baseline row of its workload
		if serialEps > 0 {
			p.SpeedupWall = p.EventsPerSec / serialEps
		}
		emit(p)
		return p, nil
	}

	// Shard sweep at a fixed leased-edge workload.
	var points []scalePoint
	serialEps := 0.0
	for _, shards := range sweepShards {
		p, err := runOne("edge-lease", experiments.ScaleSpec{
			R: sweepR, Edges: sweepEdges, Shards: shards,
			Duration: sweepDur, Seed: *seedFlag,
		}, serialEps)
		if err != nil {
			return nil, err
		}
		if shards == 1 {
			serialEps = p.EventsPerSec
		}
		points = append(points, p)
	}
	summary["shard_sweep"] = points

	// The same sweep on the opt-out global-barrier engine (sharded runs
	// are window-pipelined by default since PR 9). The bound column is
	// what moves — pipelining loosens the critical path that the barrier
	// pins to the slowest shard of every window.
	var barrierPoints []scalePoint
	for _, shards := range sweepShards {
		if shards == 1 {
			continue // single shard runs barrier-free either way
		}
		p, err := runOne("edge-lease-barrier", experiments.ScaleSpec{
			R: sweepR, Edges: sweepEdges, Shards: shards, Barrier: true,
			Duration: sweepDur, Seed: *seedFlag,
		}, serialEps)
		if err != nil {
			return nil, err
		}
		barrierPoints = append(barrierPoints, p)
	}
	summary["barrier_sweep"] = barrierPoints

	// GOMAXPROCS curve at the highest shard count: same virtual run, only
	// the OS-thread budget varies (deterministic stats, varying wall time).
	curveShards := sweepShards[len(sweepShards)-1]
	var curve []scalePoint
	for _, gmp := range gmps {
		prev := runtime.GOMAXPROCS(gmp)
		p, err := runOne("edge-lease", experiments.ScaleSpec{
			R: sweepR, Edges: sweepEdges, Shards: curveShards,
			Duration: sweepDur, Seed: *seedFlag,
		}, serialEps)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return nil, err
		}
		p.GOMAXPROCS = gmp
		curve = append(curve, p)
	}
	summary["gomaxprocs_curve"] = curve

	// The perf trajectory's own workload, serial vs sharded. 8 shards
	// carries a double-loaded shard (nine Grid'5000 sites on eight shards);
	// 9 shards places one site per shard.
	var pv []scalePoint
	pvSerial := 0.0
	runPV := func(shards int, barrier bool) error {
		start := time.Now()
		res, err := experiments.RunPeerview(experiments.PeerviewSpec{
			R: pvR, Topology: topology.Chain, Duration: pvDur,
			Seed: *seedFlag, Shards: shards, Barrier: barrier,
		})
		if err != nil {
			return err
		}
		wall := time.Since(start)
		name := fmt.Sprintf("peerview-r%d-%dmin", pvR, int(pvDur.Minutes()))
		if barrier {
			name += "-barrier"
		}
		p := scalePoint{
			Workload: name, Barrier: barrier,
			R: pvR, Shards: shards, GOMAXPROCS: runtime.GOMAXPROCS(0),
			WallMs:       float64(wall.Nanoseconds()) / 1e6,
			Steps:        res.Steps,
			EventsPerSec: float64(res.Steps) / wall.Seconds(),
			Windows:      res.Parallel.Windows,
			CrossShard:   res.Parallel.CrossShard,
			SpeedupBound: res.Parallel.SpeedupBound(),
		}
		if res.Parallel.Windows > 0 {
			p.AvgBusy = float64(res.Parallel.BusyShardSum) / float64(res.Parallel.Windows)
		}
		if shards == 1 && !barrier {
			pvSerial = p.EventsPerSec
			p.SpeedupWall = 1
		} else if pvSerial > 0 {
			p.SpeedupWall = p.EventsPerSec / pvSerial
		}
		emit(p)
		pv = append(pv, p)
		return nil
	}
	// Default (pipelined) points: the sparse peerview workload is where the
	// global barrier caps the bound (burst-aligned gossip rounds), so this
	// is the pipelined engine's showcase.
	for _, shards := range pvShards {
		if err := runPV(shards, false); err != nil {
			return nil, err
		}
	}
	// The barrier opt-out on the same sharded points, for the comparison.
	for _, shards := range pvShards {
		if shards == 1 {
			continue
		}
		if err := runPV(shards, true); err != nil {
			return nil, err
		}
	}
	summary["peerview"] = pv

	// The first r=1,000 trajectory point (≥10k leased edges).
	if bigR > 0 {
		var big []scalePoint
		bigSerial := 0.0
		for _, shards := range []int{1, 8} {
			p, err := runOne("edge-lease-r1000", experiments.ScaleSpec{
				R: bigR, Edges: bigEdges, Shards: shards,
				Duration: sweepDur, Seed: *seedFlag,
			}, bigSerial)
			if err != nil {
				return nil, err
			}
			if shards == 1 {
				bigSerial = p.EventsPerSec
			}
			big = append(big, p)
		}
		summary["r1000"] = big
	}

	// Memory series: heap_bytes_per_edge at a fixed workload across the
	// three memory regimes — default, lean metrics with hibernation held
	// off, and lean + hibernation (the large-population configuration; Lean
	// implies Hibernate since PR 9) — then the 100k/250k proof points (full
	// scale only). The lean+hibernate point doubles as the CI memory smoke:
	// -maxheapedge pins a ceiling it must stay under.
	memR, memEdges, memDur := 250, 10_000, 10*time.Minute
	memShards := 8
	if *quickFlag {
		memR, memEdges, memDur = 18, 540, 5*time.Minute
		memShards = 2
	}
	var mem []scalePoint
	leanHeap := 0.0
	for _, cfg := range []struct {
		name  string
		lean  bool
		nohib bool
	}{
		{"memory", false, true},
		{"memory-lean", true, true},
		{"memory-hibernate", true, false},
	} {
		p, err := runOne(cfg.name, experiments.ScaleSpec{
			R: memR, Edges: memEdges, Shards: memShards,
			Lean: cfg.lean, NoHibernate: cfg.nohib,
			Duration: memDur, Seed: *seedFlag,
		}, 0)
		if err != nil {
			return nil, err
		}
		if cfg.lean && !cfg.nohib {
			leanHeap = p.HeapBytesPerEdge
		}
		mem = append(mem, p)
	}
	if !*quickFlag {
		// The tentpole proof points: 100k, 250k, then the full million
		// leased edges on one box. Lean metrics + hibernation, 5 virtual
		// minutes (the heap plateaus once every edge holds a lease and
		// its renewal state, and the steady-state population
		// freeze-dries).
		for _, big := range []struct {
			name  string
			edges int
		}{
			{"memory-100k", 100_000},
			{"memory-250k", 250_000},
			{"memory-1m", 1_000_000},
		} {
			p, err := runOne(big.name, experiments.ScaleSpec{
				R: 1000, Edges: big.edges, Shards: memShards, Lean: true,
				Duration: 5 * time.Minute, Seed: *seedFlag,
			}, 0)
			if err != nil {
				return nil, err
			}
			leanHeap = p.HeapBytesPerEdge
			mem = append(mem, p)
		}
	}
	summary["memory"] = mem
	if *maxHeapPerEdge > 0 && leanHeap > *maxHeapPerEdge {
		return nil, fmt.Errorf("memory smoke: heap_bytes_per_edge %.0f exceeds pinned ceiling %.0f",
			leanHeap, *maxHeapPerEdge)
	}

	// The paper's §5 axes — peerview convergence, discovery success,
	// volatility — re-run sharded at r=1,000 (full scale only): the
	// population the serial engine and the per-peer memory footprint used
	// to rule out.
	if bigR > 0 {
		axes := map[string]any{}

		pvStart := time.Now()
		pvRes, err := experiments.RunPeerview(experiments.PeerviewSpec{
			R: bigR, Topology: topology.Chain, Duration: 120 * time.Minute,
			Seed: *seedFlag, Shards: memShards,
		})
		if err != nil {
			return nil, err
		}
		axes["peerview"] = map[string]any{
			"r": bigR, "shards": memShards,
			"wall_ms":       float64(time.Since(pvStart)) / 1e6,
			"steps":         pvRes.Steps,
			"max_size":      pvRes.MaxSize,
			"plateau_mean":  pvRes.PlateauMean,
			"consistent":    pvRes.ConsistentAtEnd,
			"speedup_bound": pvRes.Parallel.SpeedupBound(),
		}
		fmt.Printf("  axes-r1000 peerview: plateau=%.0f consistent=%v bound=%.2f\n",
			pvRes.PlateauMean, pvRes.ConsistentAtEnd, pvRes.Parallel.SpeedupBound())

		dStart := time.Now()
		dRes, err := experiments.RunDiscovery(experiments.DiscoverySpec{
			R: bigR, Queries: 50, Shards: memShards, Seed: *seedFlag,
		})
		if err != nil {
			return nil, err
		}
		axes["discovery"] = map[string]any{
			"r": bigR, "shards": memShards, "queries": 50,
			"wall_ms":       float64(time.Since(dStart)) / 1e6,
			"steps":         dRes.Steps,
			"mean_ms":       dRes.MeanMs,
			"p95_ms":        dRes.Latency.Quantile(0.95),
			"timeouts":      dRes.Timeouts,
			"walk_fraction": dRes.WalkFraction,
		}
		fmt.Printf("  axes-r1000 discovery: mean=%.1f ms p95=%.1f ms timeouts=%d walk=%.0f%%\n",
			dRes.MeanMs, dRes.Latency.Quantile(0.95), dRes.Timeouts, 100*dRes.WalkFraction)

		vStart := time.Now()
		vRes, err := experiments.RunVolatility(experiments.VolatilitySpec{
			R: bigR, EdgesPerRdv: 1, Kills: 100, Queries: 40,
			KillEvery: []time.Duration{2 * time.Minute},
			Shards:    memShards, Seed: *seedFlag,
		})
		if err != nil {
			return nil, err
		}
		vp := vRes.Points[0]
		axes["volatility"] = map[string]any{
			"r": bigR, "shards": memShards, "kills": 100,
			"wall_ms":     float64(time.Since(vStart)) / 1e6,
			"steps":       vRes.Steps,
			"ok":          vp.Phase.Succeeded,
			"timeouts":    vp.Phase.Timeouts,
			"mean_ms":     vp.Phase.Latency.Mean(),
			"promotions":  vp.Promotions,
			"live_tier":   vp.LiveTier,
			"mean_view":   vp.MeanView,
			"reconverged": vp.Reconverged,
		}
		fmt.Printf("  axes-r1000 volatility: ok=%d/%d promotions=%d liveTier=%d reconv=%v\n",
			vp.Phase.Succeeded, vp.Phase.Succeeded+vp.Phase.Timeouts,
			vp.Promotions, vp.LiveTier, vp.Reconverged)

		summary["axes_r1000"] = axes
	}
	return summary, nil
}

// bandwidth sweeps the streaming layer: throughput vs. message size and
// RTT, lossless (A) and with 1% injected loss (B), over the simulated
// Grid'5000 model; with -live, also over real loopback TCP.
func bandwidth() (any, error) {
	sizes := experiments.BandwidthDefaultSizes
	volume := 4 << 20
	if *quickFlag {
		sizes = []int{1 << 10, 16 << 10, 256 << 10}
		volume = 1 << 20
	}
	tputChart := plot.Chart{
		Title:  "Socket throughput vs message size (simnet Grid'5000)",
		XLabel: "message KiB", YLabel: "MB/s",
	}
	rttChart := plot.Chart{
		Title:  "Socket round-trip time vs message size (simnet Grid'5000)",
		XLabel: "message KiB", YLabel: "ms",
	}
	summary := map[string]any{}
	if *csvFlag {
		fmt.Println("config,sizeBytes,messages,elapsedMs,throughputMBps,rttMs,retx")
	}
	for _, cfg := range []struct {
		name string
		loss float64
	}{{"A (lossless)", 0}, {"B (1% loss)", 0.01}} {
		res, err := experiments.RunBandwidth(experiments.BandwidthSpec{
			Sizes:          sizes,
			VolumePerPoint: volume,
			LossRate:       cfg.loss,
			Seed:           *seedFlag,
		})
		if err != nil {
			return nil, err
		}
		tputS := plot.Series{Label: cfg.name}
		rttS := plot.Series{Label: cfg.name}
		var rows []map[string]any
		for _, pt := range res.Points {
			rows = append(rows, map[string]any{
				"size_bytes": pt.SizeBytes, "messages": pt.Messages,
				"elapsed_ms": pt.ElapsedMs, "throughput_mbps": pt.ThroughputMBps,
				"rtt_ms": pt.RTTMs, "retx": pt.Retx,
			})
			if *csvFlag {
				fmt.Printf("%s,%d,%d,%.3f,%.3f,%.3f,%d\n", cfg.name,
					pt.SizeBytes, pt.Messages, pt.ElapsedMs, pt.ThroughputMBps, pt.RTTMs, pt.Retx)
			} else {
				fmt.Printf("  %-13s size=%-8d msgs=%-5d %8.2f MB/s  rtt=%6.2f ms  retx=%d\n",
					cfg.name, pt.SizeBytes, pt.Messages, pt.ThroughputMBps, pt.RTTMs, pt.Retx)
			}
			kib := float64(pt.SizeBytes) / 1024
			tputS.X = append(tputS.X, kib)
			tputS.Y = append(tputS.Y, pt.ThroughputMBps)
			rttS.X = append(rttS.X, kib)
			rttS.Y = append(rttS.Y, pt.RTTMs)
		}
		tputChart.Add(tputS)
		rttChart.Add(rttS)
		summary[cfg.name] = rows
	}
	if !*csvFlag {
		fmt.Println(tputChart.Render())
		fmt.Println(rttChart.Render())
	}
	if *liveFlag {
		fmt.Println("  — live pass over loopback TCP (wall-clock, machine-dependent) —")
		live, err := experiments.RunBandwidthLive(sizes, 2*volume, 0)
		if err != nil {
			return nil, err
		}
		var rows []map[string]any
		for _, pt := range live {
			rows = append(rows, map[string]any{
				"size_bytes": pt.SizeBytes, "messages": pt.Messages,
				"elapsed_ms": pt.ElapsedMs, "throughput_mbps": pt.ThroughputMBps,
				"rtt_ms": pt.RTTMs,
			})
			fmt.Printf("  %-13s size=%-8d msgs=%-5d %8.2f MB/s  rtt=%6.2f ms\n",
				"live TCP", pt.SizeBytes, pt.Messages, pt.ThroughputMBps, pt.RTTMs)
		}
		summary["live_tcp"] = rows
	}
	return summary, nil
}

func table1() (any, error) {
	res, err := experiments.Table1(*seedFlag)
	if err != nil {
		return nil, err
	}
	fmt.Println("Table 1 / Figure 2 worked example (§3.3):")
	fmt.Printf("  ReplicaPos(116, MAX_HASH=200, l=6) = %d   (paper: 3 -> R4)\n", res.Pos)
	fmt.Printf("  publish messages  = %d                  (paper: 2, O(1))\n", res.PublishMsgs)
	fmt.Printf("  lookup messages   = %d                  (paper: 4 worst case)\n", res.LookupMsgs)
	fmt.Printf("  lookup latency    = %.1f ms\n", res.LatencyMs)
	return res, nil
}

func fig3Params() (quickDur time.Duration, chainRs, treeRs []int) {
	if *quickFlag {
		return 30 * time.Minute, []int{10, 45, 80}, []int{40}
	}
	// Full scale: zero duration lets the driver pick the paper's own
	// per-size lengths (60 min; 120 min for r=580).
	return 0, experiments.Fig3LeftDefaultRs, experiments.Fig3LeftTreeRs
}

func fig3Left() (any, error) {
	quickDur, chainRs, treeRs := fig3Params()
	chart := plot.Chart{
		Title:  "Figure 3 (left): peerview size l over time",
		XLabel: "minutes", YLabel: "known rendezvous",
	}
	var summary []map[string]any
	emit := func(topo topology.Kind, rs []int) error {
		results, err := experiments.Fig3Left(rs, topo, quickDur, *seedFlag)
		if err != nil {
			return err
		}
		for _, res := range results {
			summary = append(summary, map[string]any{
				"topology": topo.String(), "r": res.Spec.R,
				"max": res.MaxSize, "plateau": res.PlateauMean,
				"consistent": res.ConsistentAtEnd,
			})
			label := fmt.Sprintf("%s r=%d", topo, res.Spec.R)
			if *csvFlag {
				fmt.Printf("# %s (max=%d plateau=%.0f consistent=%v)\n%s",
					label, res.MaxSize, res.PlateauMean, res.ConsistentAtEnd,
					res.Size.CSV())
				continue
			}
			s := plot.Series{Label: label}
			for i := 0; i < res.Size.Len(); i++ {
				at, v := res.Size.At(i)
				s.X = append(s.X, at.Minutes())
				s.Y = append(s.Y, v)
			}
			chart.Add(s)
			fmt.Printf("  %-14s max=%-4d plateau=%-6.0f reachedMax=%-5v consistent=%v\n",
				label, res.MaxSize, res.PlateauMean, res.ReachedMax, res.ConsistentAtEnd)
		}
		return nil
	}
	if err := emit(topology.Chain, chainRs); err != nil {
		return nil, err
	}
	if err := emit(topology.Tree, treeRs); err != nil {
		return nil, err
	}
	if !*csvFlag {
		fmt.Println(chart.Render())
	}
	return summary, nil
}

func fig3Right() (any, error) {
	r, dur := 580, 120*time.Minute
	if *quickFlag {
		r, dur = 120, 60*time.Minute
	}
	res, err := experiments.Fig3Right(r, dur, *seedFlag)
	if err != nil {
		return nil, err
	}
	adds, removes := res.Events.Counts()
	firstRemove, _ := res.Events.FirstRemoveAt()
	lastAdd, _ := res.Events.LastAddAt()
	summary := map[string]any{
		"r": r, "adds": adds, "removes": removes,
		"distinct_peers":   res.Events.DistinctPeers(),
		"first_remove_min": firstRemove.Minutes(),
		"last_add_min":     lastAdd.Minutes(),
	}
	fmt.Printf("Figure 3 (right): peerview events at r=%d over %v\n", r, dur)
	fmt.Printf("  add events=%d remove events=%d distinct peers seen=%d/%d\n",
		adds, removes, res.Events.DistinctPeers(), r-1)
	fmt.Printf("  first remove at %.0f min (paper: PVE_EXPIRATION = 20 min)\n",
		firstRemove.Minutes())
	fmt.Printf("  last new peer discovered at %.0f min (paper: 117 min, 577/579 seen)\n",
		lastAdd.Minutes())
	if *csvFlag {
		fmt.Println("minutes,kind,peerNum")
		for _, e := range res.Events.Events {
			kind := "add"
			if e.Kind == metrics.EventRemove {
				kind = "remove"
			}
			fmt.Printf("%.2f,%s,%d\n", e.At.Minutes(), kind, e.PeerNum)
		}
		return summary, nil
	}
	addS := plot.Series{Label: "add"}
	remS := plot.Series{Label: "remove"}
	for _, e := range res.Events.Events {
		if e.Kind == metrics.EventAdd {
			addS.X = append(addS.X, e.At.Minutes())
			addS.Y = append(addS.Y, float64(e.PeerNum))
		} else {
			remS.X = append(remS.X, e.At.Minutes())
			remS.Y = append(remS.Y, float64(e.PeerNum))
		}
	}
	chart := plot.Chart{Title: "Figure 3 (right): add/remove events",
		XLabel: "minutes", YLabel: "rendezvous number"}
	chart.Add(addS)
	chart.Add(remS)
	fmt.Println(chart.Render())
	return summary, nil
}

func fig4Left() (any, error) {
	r, dur := 50, 60*time.Minute
	if *quickFlag {
		r, dur = 30, 40*time.Minute
	}
	def, tuned, err := experiments.Fig4Left(r, dur, *seedFlag)
	if err != nil {
		return nil, err
	}
	summary := map[string]any{
		"r":               r,
		"default_plateau": def.PlateauMean,
		"tuned_final":     tuned.FinalSize,
		"tuned_t1_min":    tuned.ReachedMaxAt.Minutes(),
	}
	fmt.Printf("Figure 4 (left): r=%d, default vs tuned PVE_EXPIRATION\n", r)
	fmt.Printf("  default: max=%d plateau=%.0f (fluctuates below r-1=%d)\n",
		def.MaxSize, def.PlateauMean, r-1)
	t1 := "never"
	if tuned.ReachedMax {
		t1 = fmt.Sprintf("%.0f min", tuned.ReachedMaxAt.Minutes())
	}
	fmt.Printf("  tuned:   max=%d final=%d, reached r-1 at t1=%s (paper: 17 min)\n",
		tuned.MaxSize, tuned.FinalSize, t1)
	if *csvFlag {
		fmt.Printf("# default\n%s# tuned\n%s", def.Size.CSV(), tuned.Size.CSV())
		return summary, nil
	}
	chart := plot.Chart{Title: "Figure 4 (left)", XLabel: "minutes", YLabel: "known rendezvous"}
	for _, pair := range []struct {
		label string
		res   experiments.PeerviewResult
	}{{"default PVE_EXPIRATION", def}, {"tuned PVE_EXPIRATION", tuned}} {
		s := plot.Series{Label: pair.label}
		for i := 0; i < pair.res.Size.Len(); i++ {
			at, v := pair.res.Size.At(i)
			s.X = append(s.X, at.Minutes())
			s.Y = append(s.Y, v)
		}
		chart.Add(s)
	}
	fmt.Println(chart.Render())
	return summary, nil
}

func fig4Right() (any, error) {
	rs := experiments.Fig4RightDefaultRs
	queries := 100
	if *quickFlag {
		rs = []int{5, 25, 75, 150}
		queries = 40
	}
	chart := plot.Chart{Title: "Figure 4 (right): time to discover an advertisement",
		XLabel: "rendezvous peers", YLabel: "ms"}
	if *csvFlag {
		fmt.Println("config,r,meanMs,p95Ms,timeouts,walkFraction")
	}
	var summary []map[string]any
	for _, cfg := range []struct {
		name  string
		noise bool
	}{{"A (no noise)", false}, {"B (50 noisers, 5000 fakes)", true}} {
		results, err := experiments.Fig4RightParallel(rs, cfg.noise, queries, *seedFlag)
		if err != nil {
			return nil, err
		}
		s := plot.Series{Label: cfg.name}
		for _, res := range results {
			summary = append(summary, map[string]any{
				"config": cfg.name, "r": res.Spec.R, "mean_ms": res.MeanMs,
				"p95_ms":   res.Latency.Quantile(0.95),
				"timeouts": res.Timeouts, "walk_fraction": res.WalkFraction,
			})
			if *csvFlag {
				fmt.Printf("%s,%d,%.2f,%.2f,%d,%.2f\n", cfg.name, res.Spec.R,
					res.MeanMs, res.Latency.Quantile(0.95), res.Timeouts, res.WalkFraction)
			} else {
				fmt.Printf("  %-28s r=%-4d mean=%6.1f ms  p95=%6.1f  walk=%.0f%%\n",
					cfg.name, res.Spec.R, res.MeanMs,
					res.Latency.Quantile(0.95), 100*res.WalkFraction)
			}
			s.X = append(s.X, float64(res.Spec.R))
			s.Y = append(s.Y, res.MeanMs)
		}
		chart.Add(s)
	}
	if !*csvFlag {
		fmt.Println(chart.Render())
	}
	return summary, nil
}

// routingExp is the structured-routing bake-off: the same publish / lookup /
// maintenance / churn scenario driven through flood, SRDI-walk, Chord and
// Kademlia backends at equal scale. Full mode sweeps up to r=1,000 (the
// scale the peerview plateau fix unblocked); quick mode pins the CI-sized
// scenario the conformance and golden-replay tests share.
func routingExp() (any, error) {
	ns := []int{128, 1000}
	keys, lookups := 8, 16
	if *quickFlag {
		ns = []int{16}
		keys, lookups = 6, 12
	}
	fmt.Println("Routing bake-off (§3.3 trade-off space): flood vs SRDI-walk vs Chord vs Kademlia")
	var summary []map[string]any
	for _, n := range ns {
		spec := experiments.RoutingSpec{N: n, Keys: keys, Lookups: lookups, Seed: *seedFlag}
		if *quickFlag {
			spec.Converge = 12 * time.Minute
			spec.MaintWindow = 5 * time.Minute
		}
		res, err := experiments.RunRouting(spec)
		if err != nil {
			return nil, err
		}
		fmt.Printf("  n=%d\n", n)
		fmt.Printf("  %-9s %-9s %-8s %-6s %-9s %-9s %-10s %-7s %-9s %-6s\n",
			"backend", "pub-msgs", "ok", "hops", "lat-ms", "look-msgs", "maint/min", "killed", "churn-ok", "chops")
		for _, pt := range res.Points {
			fmt.Printf("  %-9s %-9.1f %3d/%-4d %-6.2f %-9.1f %-9.1f %-10.1f %-7d %3d/%-5d %-6.2f\n",
				pt.Backend, pt.PublishMsgsPerOp, pt.Success, pt.Lookups,
				pt.MeanHops, pt.Latency.Mean(), pt.LookupMsgsPerOp,
				pt.MaintMsgsPerMin, pt.Killed, pt.ChurnSuccess, pt.ChurnLookups,
				pt.ChurnMeanHops)
			summary = append(summary, map[string]any{
				"backend": pt.Backend, "n": pt.N,
				"publish_msgs_op": pt.PublishMsgsPerOp,
				"lookups":         pt.Lookups, "success": pt.Success,
				"mean_hops": pt.MeanHops, "latency_ms": pt.Latency.Mean(),
				"lookup_msgs_op": pt.LookupMsgsPerOp,
				"maint_msgs_min": pt.MaintMsgsPerMin,
				"killed":         pt.Killed,
				"churn_lookups":  pt.ChurnLookups, "churn_success": pt.ChurnSuccess,
				"churn_mean_hops": pt.ChurnMeanHops,
			})
		}
	}
	return summary, nil
}

func baselines() (any, error) {
	ns := []int{16, 64, 128}
	ops := 50
	if *quickFlag {
		ns = []int{16, 48}
		ops = 20
	}
	fmt.Println("Baselines (§3.3 complexity contrast): LC-DHT vs Chord vs flooding")
	fmt.Printf("  %-5s %-22s %-28s %-22s\n", "n",
		"LC-DHT ms / msgs-op", "Chord ms / hops / msgs-op", "Flood ms / msgs-op")
	var summary []map[string]any
	for _, n := range ns {
		res, err := experiments.RunBaselines(n, ops, *seedFlag)
		if err != nil {
			return nil, err
		}
		summary = append(summary, map[string]any{
			"n": n, "lcdht_msgs_op": res.LCDHTMsgsPerOp,
			"chord_hops": res.ChordMeanHops, "flood_msgs_op": res.FloodMsgsPerOp,
		})
		fmt.Printf("  %-5d %6.1f / %-13.1f %6.1f / %4.1f / %-13.1f %6.1f / %-10.1f\n",
			n, res.LCDHTMeanMs, res.LCDHTMsgsPerOp,
			res.ChordMeanMs, res.ChordMeanHops, res.ChordMsgsPerOp,
			res.FloodMeanMs, res.FloodMsgsPerOp)
	}
	return summary, nil
}

func churn() (any, error) {
	r, kills, queries := 40, 10, 100
	if *quickFlag {
		r, kills, queries = 16, 4, 30
	}
	res, err := experiments.RunChurn(experiments.ChurnSpec{
		R: r, Kills: kills, Queries: queries, KillEvery: 90 * time.Second, Seed: *seedFlag,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("Volatility extension (paper §5 future work): r=%d, %d crashes\n", r, kills)
	fmt.Printf("  queries ok=%d/%d timeouts=%d\n", res.Succeeded, queries, res.Timeouts)
	fmt.Printf("  latency %s\n", res.Latency.Summary())
	fmt.Printf("  walk fallback used on %.0f%% of queries\n", 100*res.WalkFraction)

	// Recovery mode: mass failure followed by staged rejoins of the same
	// peers (service-lifecycle Restart — same IDs, cold state), measuring
	// peerview re-convergence and discovery success across the heal.
	recR, recKills, recQ := 30, 10, 25
	if *quickFlag {
		recR, recKills, recQ = 12, 4, 8
	}
	rec, err := experiments.RunChurnRecovery(experiments.RecoverySpec{
		R: recR, Kills: recKills, Queries: recQ,
		RejoinEvery: time.Minute, Seed: *seedFlag,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("Recovery mode: r=%d, mass failure of %d, rejoin every 1m\n", recR, recKills)
	phase := func(name string, ps experiments.PhaseStats) {
		fmt.Printf("  %-10s ok=%d/%d timeouts=%d mean=%.1f ms\n",
			name, ps.Succeeded, recQ, ps.Timeouts, ps.Latency.Mean())
	}
	phase("baseline", rec.Baseline)
	phase("outage", rec.Outage)
	phase("recovered", rec.Recovered)
	fmt.Printf("  live mean view: before=%.1f after-kill=%.1f after-rejoin=%.1f  reconverged=%v\n",
		rec.ViewBeforeKill, rec.ViewAfterKill, rec.ViewAfterRejoin, rec.Reconverged)

	return map[string]any{
		"r": r, "kills": kills, "ok": res.Succeeded, "timeouts": res.Timeouts,
		"mean_ms": res.Latency.Mean(), "walk_fraction": res.WalkFraction,
		"recovery": map[string]any{
			"r": recR, "kills": recKills,
			"baseline_ok":       rec.Baseline.Succeeded,
			"outage_ok":         rec.Outage.Succeeded,
			"recovered_ok":      rec.Recovered.Succeeded,
			"outage_timeouts":   rec.Outage.Timeouts,
			"view_before":       rec.ViewBeforeKill,
			"view_after_kill":   rec.ViewAfterKill,
			"view_after_rejoin": rec.ViewAfterRejoin,
			"reconverged":       rec.Reconverged,
		},
	}, nil
}

// volatility sweeps the self-healing tier across kill rates: for every kill
// interval it measures discovery success, promotions and final-tier
// re-convergence twice — full attrition (no rejoin: promotion is the only
// heal) and kill/rejoin churn.
func volatility() (any, error) {
	r, edgesPer, queries := 12, 2, 60
	killEvery := []time.Duration{8 * time.Minute, 4 * time.Minute, 2 * time.Minute, time.Minute}
	if *quickFlag {
		r, edgesPer, queries = 6, 2, 30
		killEvery = []time.Duration{2 * time.Minute, time.Minute}
	}
	chart := plot.Chart{
		Title:  "Volatility sweep: discovery success vs kill interval (self-healing tier)",
		XLabel: "kill interval (min)", YLabel: "success %",
	}
	if *csvFlag {
		fmt.Println("mode,killEverySec,ok,timeouts,meanMs,promotions,liveTier,meanView,reconverged,merges,timeToSingleTierSec,mergeConverged,postOk,postTimeouts")
	}
	summary := map[string]any{}
	for _, mode := range []struct {
		name   string
		rejoin time.Duration
		merge  bool
	}{{"attrition", 0, false}, {"kill-rejoin", 3 * time.Minute, false}, {"attrition+merge", 0, true}} {
		res, err := experiments.RunVolatility(experiments.VolatilitySpec{
			R: r, EdgesPerRdv: edgesPer, KillEvery: killEvery,
			RejoinAfter: mode.rejoin, Queries: queries, Seed: *seedFlag,
			IslandMerge: mode.merge,
		})
		if err != nil {
			return nil, err
		}
		s := plot.Series{Label: mode.name}
		var rows []map[string]any
		for _, pt := range res.Points {
			total := pt.Phase.Succeeded + pt.Phase.Timeouts
			success := 0.0
			if total > 0 {
				success = 100 * float64(pt.Phase.Succeeded) / float64(total)
			}
			row := map[string]any{
				"kill_every_sec": pt.KillEvery.Seconds(),
				"ok":             pt.Phase.Succeeded, "timeouts": pt.Phase.Timeouts,
				"mean_ms": pt.Phase.Latency.Mean(), "promotions": pt.Promotions,
				"live_tier": pt.LiveTier, "mean_view": pt.MeanView,
				"reconverged": pt.Reconverged,
			}
			if pt.Merge != nil {
				row["merges"] = pt.Merge.Merges
				row["time_to_single_tier_sec"] = pt.Merge.TimeToSingleTier.Seconds()
				row["merge_converged"] = pt.Merge.Converged
				row["post_merge_ok"] = pt.Merge.Phase.Succeeded
				row["post_merge_timeouts"] = pt.Merge.Phase.Timeouts
			}
			rows = append(rows, row)
			if *csvFlag {
				mCol := ",,,,"
				if pt.Merge != nil {
					mCol = fmt.Sprintf("%d,%.0f,%v,%d,%d", pt.Merge.Merges,
						pt.Merge.TimeToSingleTier.Seconds(), pt.Merge.Converged,
						pt.Merge.Phase.Succeeded, pt.Merge.Phase.Timeouts)
				}
				fmt.Printf("%s,%.0f,%d,%d,%.2f,%d,%d,%.2f,%v,%s\n", mode.name,
					pt.KillEvery.Seconds(), pt.Phase.Succeeded, pt.Phase.Timeouts,
					pt.Phase.Latency.Mean(), pt.Promotions, pt.LiveTier,
					pt.MeanView, pt.Reconverged, mCol)
			} else {
				fmt.Printf("  %-15s kill=%-5v ok=%d/%d mean=%6.1f ms  promotions=%-2d liveTier=%-3d view=%.1f reconv=%v",
					mode.name, pt.KillEvery, pt.Phase.Succeeded, total,
					pt.Phase.Latency.Mean(), pt.Promotions, pt.LiveTier,
					pt.MeanView, pt.Reconverged)
				if pt.Merge != nil {
					postTotal := pt.Merge.Phase.Succeeded + pt.Merge.Phase.Timeouts
					fmt.Printf("  merges=%d ttst=%v post=%d/%d",
						pt.Merge.Merges, pt.Merge.TimeToSingleTier,
						pt.Merge.Phase.Succeeded, postTotal)
				}
				fmt.Println()
			}
			s.X = append(s.X, pt.KillEvery.Minutes())
			s.Y = append(s.Y, success)
		}
		chart.Add(s)
		summary[mode.name] = rows
	}
	if !*csvFlag {
		fmt.Println(chart.Render())
	}
	return summary, nil
}

func ablations() (any, error) {
	r, dur := 60, 45*time.Minute
	if *quickFlag {
		r, dur = 30, 24*time.Minute
	}
	fmt.Printf("Ablations at r=%d (steady-state view size vs bandwidth):\n", r)
	refs, err := experiments.AblateReferrals(r, nil, dur, *seedFlag)
	if err != nil {
		return nil, err
	}
	ivals, err := experiments.AblateInterval(r, nil, dur, *seedFlag)
	if err != nil {
		return nil, err
	}
	exps, err := experiments.AblateExpiry(r, nil, dur, *seedFlag)
	if err != nil {
		return nil, err
	}
	summary := map[string]any{}
	for _, res := range []experiments.AblationResult{refs, ivals, exps} {
		fmt.Printf("  %s:\n", res.Parameter)
		var rows []map[string]any
		for _, pt := range res.Points {
			rows = append(rows, map[string]any{
				"label": pt.Label, "plateau_l": pt.PlateauL,
				"msgs_per_peer_min": pt.MsgsPerPeerPerMin,
			})
			fmt.Printf("    %-8s plateau l=%-6.1f msgs/peer/min=%.1f\n",
				pt.Label, pt.PlateauL, pt.MsgsPerPeerPerMin)
		}
		summary[res.Parameter] = rows
	}
	walk, err := experiments.AblateWalk(75, 40, *seedFlag)
	if err != nil {
		return nil, err
	}
	fmt.Printf("  walk fallback (r=%d, %d queries):\n", walk.R, walk.Queries)
	fmt.Printf("    with walk:    %d ok, mean %.1f ms\n", walk.WithWalkOK, walk.WithWalkMeanMs)
	fmt.Printf("    without walk: %d ok, %d lost\n", walk.WithoutWalkOK, walk.WithoutWalkLost)
	summary["walk"] = map[string]any{
		"with_ok": walk.WithWalkOK, "without_ok": walk.WithoutWalkOK,
		"without_lost": walk.WithoutWalkLost,
	}
	return summary, nil
}
