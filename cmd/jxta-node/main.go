// Command jxta-node runs one real JXTA peer over TCP — the same protocol
// stack the simulator exercises at scale, bound to a live socket. Start a
// rendezvous, attach edges to it, publish and search:
//
//	jxta-node -rdv -listen 127.0.0.1:9701 -name rdv1
//	jxta-node -listen 127.0.0.1:9702 -name pub \
//	          -seed-addr tcp://127.0.0.1:9701 -publish mydata -wait 5s
//	jxta-node -listen 127.0.0.1:9703 -name searcher \
//	          -seed-addr tcp://127.0.0.1:9701 -search mydata -wait 10s
//
// The seed's peer ID is discovered automatically through the endpoint hello
// bootstrap, so only its address needs configuring.
//
// The dynamic rendezvous tier is available on live TCP overlays too:
// -selfheal lets edges elect and promote a replacement when the whole
// rendezvous tier is gone (and makes a Ctrl-C'd rendezvous hand its leases
// and SRDI index to a successor), and -islandmerge lets fragmented islands
// find each other again through gossiped tier rumors. Pass the same flags
// to every node of a deployment.
//
// Observability is opt-in: -admin host:port serves /metrics (Prometheus
// text exposition of every protocol component's counters, gauges and
// histograms), /healthz (lifecycle + lease state; 200 only when started
// and connected), /statusz (JSON: health, flattened metrics, the protocol
// event-trace ring of promotions, failovers and lease transitions) and the
// standard /debug/pprof profiler endpoints. Serving metrics is a pure
// observation: scrapes serialize with the protocol loop and change no
// protocol behaviour.
//
// Shutdown is graceful on SIGINT/SIGTERM: the node runs its full service
// lifecycle teardown — open streams FIN or reset, the rendezvous lease is
// cancelled so the super-peer drops this client immediately instead of
// waiting for expiry, every protocol timer is cancelled, and the TCP
// transport closes last.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jxta/internal/admin"
	"jxta/internal/advertisement"
	"jxta/internal/discovery"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/node"
	"jxta/internal/peerview"
	"jxta/internal/rendezvous"
	"jxta/internal/transport"
)

var (
	rdvFlag     = flag.Bool("rdv", false, "run as a rendezvous peer")
	listenFlag  = flag.String("listen", "127.0.0.1:0", "TCP listen host:port")
	seedAddr    = flag.String("seed-addr", "", "seed rendezvous transport address (tcp://host:port)")
	nameFlag    = flag.String("name", "peer", "peer name")
	publishFlag = flag.String("publish", "", "publish a resource advertisement with this name")
	searchFlag  = flag.String("search", "", "search for a resource advertisement with this name")
	waitFlag    = flag.Duration("wait", 0, "exit after this long (0 = run until interrupt)")
	rngSeed     = flag.Int64("rngseed", 0, "peer ID RNG seed (0 = time-based)")
	adminFlag   = flag.String("admin", "", "serve /metrics, /healthz, /statusz and /debug/pprof on this host:port (empty = off)")
	selfHeal    = flag.Bool("selfheal", false, "enable the self-healing rendezvous tier: lease grants carry failover alternates and the client roster, edges elect and promote a successor when every rendezvous is gone, a graceful shutdown hands the lease table and SRDI index off")
	islandMerge = flag.Bool("islandmerge", false, "enable gossip-driven island merging: lease traffic piggybacks signed tier rumors, fragmented rendezvous islands probe each other and merge their peerviews (usually combined with -selfheal)")
)

func main() {
	flag.Parse()
	seed := *rngSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	tr, err := transport.ListenTCP(*listenFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer tr.Close()
	e := env.NewReal(*nameFlag, seed)

	role := node.Edge
	if *rdvFlag {
		role = node.Rendezvous
	}
	var n *node.Node
	e.Locked(func() {
		n = node.New(e, tr, node.Config{
			Name:      *nameFlag,
			Role:      role,
			Discovery: discovery.DefaultConfig(),
			Lease: rendezvous.Config{
				SelfHeal:    *selfHeal,
				IslandMerge: *islandMerge,
			},
		})
		n.Start()
	})
	fmt.Printf("peer %s (%s) listening on %s\n", n.ID, role, tr.Addr())

	if *adminFlag != "" {
		srv, err := admin.Serve(*adminFlag, admin.Options{
			Registry: n.Metrics,
			Trace:    n.Trace,
			Locked:   e.Locked,
			Health: func() admin.Health {
				h := admin.Health{Started: n.Started()}
				if n.IsRendezvous() {
					h.Role, h.Connected = "rendezvous", n.Started()
				} else {
					rdv, ok := n.Rendezvous.ConnectedRdv()
					h.Role, h.Connected = "edge", ok
					if ok {
						h.Detail = "lease from " + rdv.Short()
					}
				}
				return h
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("admin endpoints on http://%s/ (/metrics /healthz /statusz /debug/pprof)\n", srv.Addr())
	}

	if *seedAddr != "" {
		// The lease listener goes in BEFORE the hello kicks the join off, so
		// the grant cannot slip between a poll and a sleep — the protocol
		// callback delivers the transition the moment it commits (the same
		// transition the event trace records). The channel is buffered and
		// the send non-blocking: later failover transitions must never stall
		// the protocol loop on a channel nobody reads anymore.
		leased := make(chan ids.ID, 1)
		joined := make(chan bool, 1)
		e.Locked(func() {
			n.Rendezvous.AddLeaseListener(func(rdv ids.ID, connected bool) {
				if connected {
					select {
					case leased <- rdv:
					default:
					}
				}
			})
			n.Endpoint.Hello(transport.Addr(*seedAddr), func(peer ids.ID, ok bool) {
				if !ok {
					joined <- false
					return
				}
				fmt.Printf("seed %s is peer %s\n", *seedAddr, peer.Short())
				n.AddSeed(peerview.Seed{ID: peer, Addr: transport.Addr(*seedAddr)})
				joined <- true
			})
		})
		if !<-joined {
			fmt.Fprintln(os.Stderr, "seed did not answer hello")
			os.Exit(1)
		}
		if !*rdvFlag {
			// Wait for the lease grant event (edges only; a rendezvous is
			// connected by construction).
			select {
			case rdv := <-leased:
				fmt.Printf("lease granted by %s\n", rdv.Short())
			case <-time.After(15 * time.Second):
				fmt.Fprintln(os.Stderr, "no lease within 15s; continuing unconnected")
			}
		}
	}

	if *publishFlag != "" {
		e.Locked(func() {
			adv := &advResource{name: *publishFlag, owner: n.ID}
			n.Discovery.Publish(adv.build(), 0)
		})
		fmt.Printf("published resource %q\n", *publishFlag)
	}
	if *searchFlag != "" {
		found := make(chan string, 4)
		e.Locked(func() {
			n.Discovery.Query("Resource", "Name", *searchFlag,
				func(r discovery.Result) {
					found <- fmt.Sprintf("found %d advertisement(s) from %s in %v",
						len(r.Advs), r.From.Short(), r.Elapsed.Round(time.Millisecond))
				},
				func() { found <- "search timed out" })
		})
		select {
		case msg := <-found:
			fmt.Println(msg)
		case <-time.After(40 * time.Second):
			fmt.Println("search never resolved")
		}
	}

	if *waitFlag > 0 {
		time.Sleep(*waitFlag)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		fmt.Printf("%s: graceful shutdown (lease cancel + stream FIN)\n", s)
	}
	// Full lifecycle teardown: streams FIN/reset, lease cancelled, timers
	// cancelled — under the env lock, like every protocol action. The
	// transport must close OUTSIDE the lock (TCP.Close waits for reader
	// goroutines, which deliver through the same lock); the deferred
	// tr.Close handles it on the way out.
	e.Locked(func() { n.Stop() })
}

// advResource builds the published resource advertisement.
type advResource struct {
	name  string
	owner ids.ID
}

func (a *advResource) build() *advertisement.Resource {
	return &advertisement.Resource{
		ResID: ids.FromName(ids.KindAdv, a.owner.String()+"/"+a.name),
		Name:  a.name,
	}
}
