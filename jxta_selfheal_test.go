package jxta

import (
	"sort"
	"testing"
	"time"
)

// TestSoleRendezvousKillPromotesEdge is the acceptance scenario of the
// self-healing tier: the only rendezvous of an overlay crashes, the edges
// detect it through missed lease renewals, deterministically elect a
// successor among themselves, the successor promotes to the rendezvous role
// in place — no manual Restart anywhere — and a discovery query issued
// after the heal succeeds end to end.
func TestSoleRendezvousKillPromotesEdge(t *testing.T) {
	sim := newSim(t, 1, 0, 0, 0)
	var promoted []*Peer
	sim.OnPromotion(func(p *Peer) { promoted = append(promoted, p) })
	sim.Start()
	defer sim.Stop()
	sim.Run(15 * time.Minute)

	for i := 0; i < 3; i++ {
		if !sim.Edge(i).Connected() {
			t.Fatalf("edge %d did not lease", i)
		}
	}
	pub := sim.Edge(0)
	pub.PublishResource("SurvivesTheCrash", nil)
	sim.Run(2 * time.Minute)

	sim.Rendezvous(0).Kill()
	// Lease renewals (at half the 20 min default lease) silently fail, the
	// failover budget drains against a dead tier, and the election fires.
	sim.Run(25 * time.Minute)

	if len(promoted) != 1 {
		t.Fatalf("promotions = %d, want exactly 1", len(promoted))
	}
	succ := promoted[0]
	if succ.Role() != "rendezvous" || !succ.IsRendezvous() {
		t.Fatalf("successor role = %q", succ.Role())
	}
	// Every other edge re-leased with the successor.
	for i := 0; i < 3; i++ {
		p := sim.Edge(i)
		if p == succ {
			continue
		}
		if !p.Connected() {
			t.Fatalf("edge %d not re-leased after heal", i)
		}
	}

	// Discovery through the healed tier, no manual intervention: pick a
	// searcher that is not the publisher and not the successor.
	var searcher *Peer
	for i := 0; i < 3; i++ {
		if p := sim.Edge(i); p != succ && p != pub {
			searcher = p
			break
		}
	}
	if searcher != nil {
		searcher.FlushCache()
		advs, _, err := searcher.Discover("Resource", "Name", "SurvivesTheCrash", time.Minute)
		if err != nil || len(advs) == 0 {
			t.Fatalf("discovery after heal: advs=%d err=%v", len(advs), err)
		}
	}
}

// healFingerprint replays the sole-rendezvous crash under a fixed seed and
// returns the successor plus the healed overlay's observable state.
func healFingerprint(t *testing.T, seed int64) (succID string, view []string, steps, msgs uint64) {
	t.Helper()
	sim, err := NewSimulation(SimOptions{Seed: seed, Rendezvous: 1,
		Edges: []EdgeSpec{{AttachTo: 0}, {AttachTo: 0}, {AttachTo: 0}, {AttachTo: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	var promoted []*Peer
	sim.OnPromotion(func(p *Peer) { promoted = append(promoted, p) })
	sim.Start()
	defer sim.Stop()
	sim.Run(15 * time.Minute)
	sim.Rendezvous(0).Kill()
	sim.Run(25 * time.Minute)
	if len(promoted) == 0 {
		t.Fatal("no promotion happened")
	}
	succID = promoted[0].ID()
	for i := 0; i < sim.NumEdges(); i++ {
		p := sim.Edge(i)
		if p.IsRendezvous() {
			view = append(view, p.ID())
		}
	}
	sort.Strings(view)
	return succID, view, sim.Steps(), sim.Messages()
}

// TestPromotionDeterministic replays the crash+election twice under the
// same seed: same successor, identical post-heal rendezvous set, identical
// step and message counts — promotion is part of the replay contract.
func TestPromotionDeterministic(t *testing.T) {
	s1, v1, st1, m1 := healFingerprint(t, 99)
	s2, v2, st2, m2 := healFingerprint(t, 99)
	if s1 != s2 {
		t.Fatalf("different successors across replays: %s vs %s", s1, s2)
	}
	if len(v1) != len(v2) {
		t.Fatalf("post-heal view sizes differ: %v vs %v", v1, v2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("post-heal views diverge at %d: %s vs %s", i, v1[i], v2[i])
		}
	}
	if st1 != st2 || m1 != m2 {
		t.Fatalf("replay diverged: steps %d vs %d, msgs %d vs %d", st1, st2, m1, m2)
	}
}

// TestGracefulStopHandsOffToNeighbor stops (not kills) a rendezvous that
// holds client leases while another rendezvous exists: the lease table and
// the SRDI index transfer to the peerview neighbour and the clients are
// redirected, so they re-lease immediately — no renewal timeout — and
// discovery keeps answering for advertisements whose index entries lived on
// the stopped peer.
func TestGracefulStopHandsOffToNeighbor(t *testing.T) {
	sim := newSim(t, 2, 0, 1)
	sim.Start()
	defer sim.Stop()
	sim.Run(15 * time.Minute)

	pub, searcher := sim.Edge(0), sim.Edge(1)
	pub.PublishResource("HandedOff", nil)
	sim.Run(2 * time.Minute)

	sim.Rendezvous(0).Stop()
	// The redirect re-leases pub well before its renewal would even fire.
	sim.Run(2 * time.Minute)
	if !pub.Connected() {
		t.Fatal("client was not redirected to the successor")
	}

	searcher.FlushCache()
	advs, _, err := searcher.Discover("Resource", "Name", "HandedOff", time.Minute)
	if err != nil || len(advs) == 0 {
		t.Fatalf("discovery through the handed-off index: advs=%d err=%v", len(advs), err)
	}
}

// TestGracefulStopPromotesElectedClient stops the sole rendezvous: with no
// peerview neighbour to hand off to, the handoff goes to the elected client,
// which promotes immediately on receipt — a zero-outage transition.
func TestGracefulStopPromotesElectedClient(t *testing.T) {
	sim := newSim(t, 1, 0, 0)
	var promoted []*Peer
	sim.OnPromotion(func(p *Peer) { promoted = append(promoted, p) })
	sim.Start()
	defer sim.Stop()
	sim.Run(15 * time.Minute)

	pub := sim.Edge(0)
	pub.PublishResource("ZeroOutage", nil)
	sim.Run(2 * time.Minute)

	sim.Rendezvous(0).Stop()
	sim.Run(2 * time.Minute)

	if len(promoted) != 1 {
		t.Fatalf("promotions = %d, want 1 (handoff-driven)", len(promoted))
	}
	// Both edges must be serviced: the successor is the rendezvous, the
	// other edge re-leases with it after the redirect.
	for i := 0; i < 2; i++ {
		p := sim.Edge(i)
		if !p.IsRendezvous() && !p.Connected() {
			t.Fatalf("edge %d stranded after graceful handoff", i)
		}
	}

	// The handed-off SRDI answers without the publisher re-pushing first.
	var searcher *Peer
	for i := 0; i < 2; i++ {
		if p := sim.Edge(i); p != pub {
			searcher = p
		}
	}
	searcher.FlushCache()
	advs, _, err := searcher.Discover("Resource", "Name", "ZeroOutage", time.Minute)
	if err != nil || len(advs) == 0 {
		t.Fatalf("discovery after graceful handoff: advs=%d err=%v", len(advs), err)
	}
}

// TestEdgeReseedsFromPeerviewAlternates is the failover regression: an edge
// seeded with only one rendezvous must not retry it forever after it is
// killed and never restarted — the peerview alternates its lease grants
// carried re-seed the rotation and it fails over to a live rendezvous.
func TestEdgeReseedsFromPeerviewAlternates(t *testing.T) {
	sim := newSim(t, 3, 0) // edge0 seeded only with rdv0
	sim.Start()
	defer sim.Stop()
	sim.Run(15 * time.Minute)

	edge := sim.Edge(0)
	if !edge.Connected() {
		t.Fatal("edge did not lease")
	}
	sim.Rendezvous(0).Kill() // never restarted
	sim.Run(20 * time.Minute)

	if !edge.Connected() {
		t.Fatal("edge did not re-seed from the peerview alternates")
	}
	if edge.IsRendezvous() {
		t.Fatal("edge promoted although live rendezvous existed")
	}
}

// TestFailoverRetriesBounded pins the bounded-retry half of the fix without
// the healing: with self-healing disabled and the only rendezvous killed,
// the edge stops retrying after its failover budget — it owns zero pending
// callbacks instead of hammering the dead address forever.
func TestFailoverRetriesBounded(t *testing.T) {
	sim, err := NewSimulation(SimOptions{Seed: 5, Rendezvous: 1,
		Edges: []EdgeSpec{{AttachTo: 0}}, DisableSelfHealing: true})
	if err != nil {
		t.Fatal(err)
	}
	sim.Start()
	defer sim.Stop()
	sim.Run(15 * time.Minute)

	edge := sim.Edge(0)
	if !edge.Connected() {
		t.Fatal("edge did not lease")
	}
	msgsAt := func() uint64 { return sim.Messages() }

	sim.Rendezvous(0).Kill()
	sim.Run(30 * time.Minute) // detection + the whole failover budget
	if edge.Connected() {
		t.Fatal("edge claims a lease on a dead overlay")
	}
	// The budget is exhausted: from here on the edge sends nothing and owns
	// no timers (ticker-driven SRDI pushes are connection-gated).
	before := msgsAt()
	if n := sim.PendingCallbacks(edge); n != 1 {
		// Exactly the discovery push ticker survives (it is periodic work,
		// not a retry); the lease machinery owns nothing.
		t.Logf("pending callbacks after exhaustion: %d", n)
	}
	sim.Run(30 * time.Minute)
	if got := msgsAt(); got != before {
		t.Fatalf("dormant edge still sent %d messages", got-before)
	}
}

// TestManualPromote exercises the operator-facing promotion hook: an edge
// promoted by hand becomes a rendezvous, grants leases and serves queries.
func TestManualPromote(t *testing.T) {
	sim := newSim(t, 1, 0, 0)
	sim.Start()
	defer sim.Stop()
	sim.Run(15 * time.Minute)

	p := sim.Edge(0)
	if p.Role() != "edge" {
		t.Fatalf("pre-promotion role = %q", p.Role())
	}
	p.Promote()
	if p.Role() != "rendezvous" || !p.IsRendezvous() {
		t.Fatalf("post-promotion role = %q", p.Role())
	}
	p.Promote() // idempotent
	sim.Run(5 * time.Minute)

	// The promoted peer answers discovery for its own advertisements.
	p.PublishResource("PromotedServes", nil)
	sim.Run(2 * time.Minute)
	other := sim.Edge(1)
	other.FlushCache()
	advs, _, err := other.Discover("Resource", "Name", "PromotedServes", time.Minute)
	if err != nil || len(advs) == 0 {
		t.Fatalf("discovery via promoted peer: advs=%d err=%v", len(advs), err)
	}
}
