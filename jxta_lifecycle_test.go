package jxta

import (
	"testing"
	"time"

	"jxta/internal/discovery"
)

// TestEdgeStopRestartRejoin drives the full edge lifecycle through the
// facade: connect, graceful stop (lease cancelled at the rendezvous,
// zero pending callbacks), restart, rejoin, and working discovery after
// the rejoin.
func TestEdgeStopRestartRejoin(t *testing.T) {
	sim := newSim(t, 4, 0, 3)
	sim.Start()
	defer sim.Stop()
	sim.Run(15 * time.Minute)

	pub, searcher := sim.Edge(0), sim.Edge(1)
	if !pub.Connected() || !searcher.Connected() {
		t.Fatal("edges did not connect")
	}
	pub.PublishResource("Restartable", nil)
	sim.Run(2 * time.Minute)

	pub.Stop()
	if pub.Started() || pub.Connected() {
		t.Fatal("peer still up after Stop")
	}
	if n := sim.PendingCallbacks(pub); n != 0 {
		t.Fatalf("stopped edge owns %d pending callbacks, want 0", n)
	}
	// The graceful stop cancelled the lease: the rendezvous drops the
	// client without waiting for expiry.
	sim.Run(time.Minute)

	pub.Restart()
	sim.Run(2 * time.Minute)
	if !pub.Connected() {
		t.Fatal("edge did not rejoin after Restart")
	}

	// The restarted publisher re-publishes; discovery works end to end.
	pub.PublishResource("Restartable", nil)
	sim.Run(2 * time.Minute)
	searcher.FlushCache()
	advs, _, err := searcher.Discover("Resource", "Name", "Restartable", time.Minute)
	if err != nil || len(advs) == 0 {
		t.Fatalf("discovery after rejoin: advs=%d err=%v", len(advs), err)
	}
}

// TestRendezvousKillRestartReconverge kills a super-peer, lets the overlay
// notice, restarts it and asserts the peerview re-converges to full size.
func TestRendezvousKillRestartReconverge(t *testing.T) {
	sim := newSim(t, 5)
	sim.Start()
	defer sim.Stop()
	sim.Run(20 * time.Minute)

	victim := sim.Rendezvous(2)
	if victim.PeerViewSize() != 4 {
		t.Fatalf("view not converged before kill: %d", victim.PeerViewSize())
	}

	victim.Kill()
	if victim.Started() {
		t.Fatal("peer still started after Kill")
	}
	if n := sim.PendingCallbacks(victim); n != 0 {
		t.Fatalf("killed rendezvous owns %d pending callbacks, want 0", n)
	}
	sim.Run(5 * time.Minute)

	victim.Restart()
	if victim.PeerViewSize() != 0 {
		t.Fatalf("restarted view not cold: %d entries", victim.PeerViewSize())
	}
	sim.Run(20 * time.Minute)
	if got := victim.PeerViewSize(); got != 4 {
		t.Fatalf("peerview did not re-converge after restart: %d, want 4", got)
	}
	for i := 0; i < sim.NumRendezvous(); i++ {
		if got := sim.Rendezvous(i).PeerViewSize(); got != 4 {
			t.Fatalf("rdv%d view = %d after heal, want 4", i, got)
		}
	}
}

// TestRestartDeterministic replays a kill+restart scenario twice under the
// same seed and asserts identical outcomes — the lifecycle verbs are part
// of the engine's replay contract.
func TestRestartDeterministic(t *testing.T) {
	run := func() (uint64, uint64, int) {
		sim, err := NewSimulation(SimOptions{Seed: 17, Rendezvous: 5})
		if err != nil {
			t.Fatal(err)
		}
		sim.Start()
		defer sim.Stop()
		sim.Run(15 * time.Minute)
		sim.Rendezvous(2).Kill()
		sim.Run(5 * time.Minute)
		sim.Rendezvous(2).Restart()
		sim.Run(20 * time.Minute)
		return sim.Steps(), sim.Messages(), sim.Rendezvous(2).PeerViewSize()
	}
	s1, m1, v1 := run()
	s2, m2, v2 := run()
	if s1 != s2 || m1 != m2 || v1 != v2 {
		t.Fatalf("kill+restart replay diverged: (%d,%d,%d) vs (%d,%d,%d)",
			s1, m1, v1, s2, m2, v2)
	}
}

// TestAddEdgeLiveJoin adds an edge while virtual time runs and checks it
// leases and discovers immediately.
func TestAddEdgeLiveJoin(t *testing.T) {
	sim := newSim(t, 3, 0)
	sim.Start()
	defer sim.Stop()
	sim.Run(15 * time.Minute)
	sim.Edge(0).PublishResource("EarlyBird", nil)
	sim.Run(2 * time.Minute)

	late, err := sim.AddEdge("latecomer", 2)
	if err != nil {
		t.Fatal(err)
	}
	if sim.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", sim.NumEdges())
	}
	sim.Run(2 * time.Minute)
	if !late.Connected() {
		t.Fatal("live-joined edge did not lease")
	}
	advs, _, err := late.Discover("Resource", "Name", "EarlyBird", time.Minute)
	if err != nil || len(advs) == 0 {
		t.Fatalf("live-joined edge discovery: advs=%d err=%v", len(advs), err)
	}

	if _, err := sim.AddEdge("bad", 99); err == nil {
		t.Fatal("AddEdge accepted an out-of-range rendezvous")
	}
}

// TestStopLeaksNothing is the leak-regression gate: stop every peer of a
// busy overlay — streams open, channels joined, queries in flight — and
// assert the scheduler ledger holds zero service-owned callbacks for every
// one of them.
func TestStopLeaksNothing(t *testing.T) {
	sim := newSim(t, 4, 0, 3)
	sim.Start()
	sim.Run(15 * time.Minute)

	server, client := sim.Edge(0), sim.Edge(1)
	if _, err := server.Listen("bulk", func(s *Stream) {}); err != nil {
		t.Fatal(err)
	}
	if err := client.JoinChannel("news", func(string, []byte) {}); err != nil {
		t.Fatal(err)
	}
	sim.Run(2 * time.Minute)
	stream, err := client.Dial("bulk", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Write([]byte("mid-flight payload")); err != nil {
		t.Fatal(err)
	}
	// Leave the stream open and a query pending, then tear everything down.
	if err := client.n.Discovery.Query("Resource", "Name", "nothing-has-this",
		func(discovery.Result) {}, func() {}); err != nil {
		t.Fatal(err)
	}
	sim.Stop()

	peers := make([]*Peer, 0, sim.NumRendezvous()+sim.NumEdges())
	for i := 0; i < sim.NumRendezvous(); i++ {
		peers = append(peers, sim.Rendezvous(i))
	}
	for i := 0; i < sim.NumEdges(); i++ {
		peers = append(peers, sim.Edge(i))
	}
	for _, p := range peers {
		if n := sim.PendingCallbacks(p); n != 0 {
			t.Errorf("peer %s owns %d pending callbacks after Stop, want 0",
				p.Name(), n)
		}
	}
}
