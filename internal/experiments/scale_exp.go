package experiments

import (
	"fmt"
	"runtime"
	"time"

	"jxta/internal/deploy"
	"jxta/internal/rendezvous"
	"jxta/internal/topology"
)

// ScaleSpec parameterizes a sharded-engine scaling run: a rendezvous tier
// with a large leased edge population, the workload shape of the ROADMAP's
// 100k–1M-peer north star. Short leases crank renewal traffic up, giving
// the simulation the event density where parallel windows pay off — the
// paper's own workloads at testbed scale are far too sparse to need more
// than one core.
type ScaleSpec struct {
	// R is the number of rendezvous peers.
	R int
	// Edges is the total edge-peer population, spread round-robin over the
	// rendezvous tier (each edge attaches — and co-locates — with its
	// rendezvous).
	Edges int
	// Shards selects the engine (≤1 serial, >1 conservative sharded).
	Shards int
	// Pipeline is deprecated and ignored: window pipelining is the
	// default whenever Shards > 1. Set Barrier to opt back out.
	Pipeline bool
	// Barrier opts out of window pipelining on the sharded engine and
	// runs the original global window barrier
	// (deploy.Spec.BarrierWindows). Deterministic per
	// (Seed, Shards, Barrier); each path is pinned by its own golden.
	Barrier bool
	// Lean shares one population-wide metrics registry across peers and
	// drops per-node trace rings — the memory configuration for 100k+
	// edge populations (deploy.Spec.LeanMetrics). Lean also turns on edge
	// hibernation unless NoHibernate is set: the two memory regimes
	// target the same populations.
	Lean bool
	// Hibernate freeze-dries steady-state edges between events
	// (deploy.Spec.Hibernate): packed service records replace live maps
	// and the RNG register while an edge is idle. Trajectories are
	// byte-identical either way — the goldens replay with it forced on.
	Hibernate bool
	// NoHibernate forces hibernation off even when Lean or Hibernate
	// would turn it on (before/after memory comparisons).
	NoHibernate bool
	// Duration is the virtual experiment length (default 10 min).
	Duration time.Duration
	// Lease overrides the lease duration (default 1 min: renewals at 30 s
	// keep the event rate up; 0 picks that default, not the paper's 20 m).
	Lease time.Duration
	// Seed is the master determinism seed.
	Seed int64
}

func (s ScaleSpec) withDefaults() ScaleSpec {
	if s.Duration <= 0 {
		s.Duration = 10 * time.Minute
	}
	if s.Lease <= 0 {
		s.Lease = time.Minute
	}
	if s.Shards < 1 {
		s.Shards = 1
	}
	return s
}

// ScaleResult is one scaling point: protocol outcomes (deterministic for a
// fixed spec — the golden test pins them), throughput measurements
// (hardware-dependent), and the engine's window instrumentation, from which
// SpeedupBound reports the speedup an ideal one-core-per-shard machine
// could extract from this workload — measured wall time on a box with
// fewer cores cannot exceed it.
type ScaleResult struct {
	Spec  ScaleSpec
	Peers int
	// Deterministic protocol outcomes.
	Steps    uint64
	Messages uint64
	Bytes    uint64
	Dropped  uint64
	MeanView float64
	Leased   int
	// Wall-clock measurements.
	WallMs       float64
	EventsPerSec float64
	// HeapBytesPerEdge is the live-heap delta from just before deployment
	// to just after the run (two GC cycles settle finalizer-freed memory),
	// divided by the edge population: the marginal resident cost of one
	// simulated edge. Hardware-independent to first order; the CI memory
	// smoke pins a ceiling on it.
	HeapBytesPerEdge float64
	// Sharded-engine window instrumentation (zero for serial runs).
	Windows      uint64
	MaxBusy      int
	AvgBusy      float64
	CrossShard   uint64
	SpeedupBound float64
	// Hibernation occupancy, sampled at the end of the virtual run but
	// before teardown (StopAll wakes nodes to cancel leases): how many
	// edges ended the run freeze-dried, and the cumulative wake/freeze
	// transition counts across the population. All zero when hibernation
	// is off. Excluded from the golden fingerprint: occupancy depends on
	// where the virtual clock stops relative to renewal timers, which is
	// deterministic but not a protocol outcome.
	Hibernating int
	HibWakes    uint64
	HibFreezes  uint64
	// NodeMetrics aggregates every peer's runtime registry at the end of
	// the run (totals over the population + sampled full snapshots).
	NodeMetrics *NodeMetricsSummary
}

// RunScale deploys the overlay, runs it for the virtual duration and
// reports the scaling point.
func RunScale(spec ScaleSpec) (ScaleResult, error) {
	spec = spec.withDefaults()
	if spec.R < 1 {
		return ScaleResult{}, fmt.Errorf("experiments: scale run needs R ≥ 1, got %d", spec.R)
	}
	groups := make([]deploy.EdgeGroup, 0, spec.R)
	per, extra := spec.Edges/spec.R, spec.Edges%spec.R
	for i := 0; i < spec.R; i++ {
		count := per
		if i < extra {
			count++
		}
		if count > 0 {
			groups = append(groups, deploy.EdgeGroup{AttachTo: i, Count: count})
		}
	}
	baseHeap := liveHeap()
	o, err := deploy.Build(deploy.Spec{
		Seed:           spec.Seed,
		NumRdv:         spec.R,
		Shards:         spec.Shards,
		BarrierWindows: spec.Barrier,
		LeanMetrics:    spec.Lean,
		Hibernate:      (spec.Hibernate || spec.Lean) && !spec.NoHibernate,
		Topology:       topology.Chain,
		Lease:          rendezvous.Config{LeaseDuration: spec.Lease},
		Edges:          groups,
	})
	if err != nil {
		return ScaleResult{}, err
	}
	o.StartAll()
	start := time.Now()
	o.Sched.Run(spec.Duration)
	wall := time.Since(start)
	runHeap := liveHeap()

	res := ScaleResult{Spec: spec, Peers: spec.R + spec.Edges}
	res.Steps = o.Sched.Steps()
	st := o.Net.Stats()
	res.Messages, res.Bytes, res.Dropped = st.Messages, st.Bytes, st.Dropped
	sum := 0
	for _, r := range o.Rdvs {
		sum += r.PeerView.Size()
	}
	res.MeanView = float64(sum) / float64(spec.R)
	for _, e := range o.Edges {
		if _, ok := e.Rendezvous.ConnectedRdv(); ok {
			res.Leased++
		}
	}
	res.WallMs = float64(wall.Nanoseconds()) / 1e6
	if wall > 0 {
		res.EventsPerSec = float64(res.Steps) / wall.Seconds()
	}
	if eng := o.Engine(); eng != nil {
		ps := eng.ParallelStats()
		res.Windows = ps.Windows
		res.MaxBusy = ps.MaxBusy
		if ps.Windows > 0 {
			res.AvgBusy = float64(ps.BusyShardSum) / float64(ps.Windows)
		}
		res.CrossShard = ps.CrossShard
		res.SpeedupBound = ps.SpeedupBound()
	}
	for _, e := range o.Edges {
		if e.Hibernating() {
			res.Hibernating++
		}
		w, f := e.HibernationStats()
		res.HibWakes += w
		res.HibFreezes += f
	}
	if spec.Edges > 0 && runHeap > baseHeap {
		res.HeapBytesPerEdge = float64(runHeap-baseHeap) / float64(spec.Edges)
	}
	res.NodeMetrics = CollectNodeMetrics(o, 2)
	o.StopAll()
	return res, nil
}

// liveHeap settles the collector (two cycles so anything freed by the first
// cycle's finalizers is gone too) and returns the live-heap size.
func liveHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
