package experiments

import (
	"fmt"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/deploy"
	"jxta/internal/discovery"
	"jxta/internal/ids"
	"jxta/internal/metrics"
	"jxta/internal/node"
	"jxta/internal/rendezvous"
	"jxta/internal/topology"
	"jxta/internal/transport"
)

// RecoverySpec parameterizes the churn-recovery experiment: the paper's
// conclusion asks how the fall-back discovery mechanism behaves "under high
// volatility"; this scenario goes one step further and measures how the
// overlay *heals* — a mass rendezvous failure followed by staged rejoins of
// the same peers (same IDs, cold protocol state), enabled by the service
// lifecycle's Restart path.
type RecoverySpec struct {
	// R is the rendezvous count.
	R int
	// Kills is the mass-failure size: a contiguous block of rendezvous in
	// the middle of the chain crashes at once. The publisher's rendezvous
	// (0) and the searcher's (R-1) are spared.
	Kills int
	// RejoinEvery spaces the staged rejoins (default 1 min): every tick one
	// killed rendezvous restarts, in kill order.
	RejoinEvery time.Duration
	// Queries is the number of discovery lookups issued in each of the
	// three phases (baseline, outage, recovered; default 12).
	Queries int
	// Seed is the master determinism seed.
	Seed int64
}

func (s RecoverySpec) withDefaults() RecoverySpec {
	if s.Kills <= 0 {
		s.Kills = s.R / 3
	}
	if s.RejoinEvery <= 0 {
		s.RejoinEvery = time.Minute
	}
	if s.Queries <= 0 {
		s.Queries = 12
	}
	return s
}

// PhaseStats aggregates discovery outcomes over one phase of the scenario.
type PhaseStats struct {
	Succeeded int
	Timeouts  int
	Latency   metrics.Samples
}

// RecoveryResult reports overlay behaviour across the failure/heal cycle.
type RecoveryResult struct {
	Spec RecoverySpec
	// Baseline, Outage, Recovered are the three query phases: before the
	// mass failure, while the block is dark, and after every victim
	// rejoined and views re-settled.
	Baseline, Outage, Recovered PhaseStats
	// ViewBeforeKill/AfterKill/AfterRejoin are the mean peerview sizes of
	// the *live* rendezvous at the three phase boundaries. AfterKill still
	// counts dead entries (loose consistency: they linger until
	// PVE_EXPIRATION); AfterRejoin shows the healed view.
	ViewBeforeKill, ViewAfterKill, ViewAfterRejoin float64
	// Reconverged reports whether every live rendezvous sees the full view
	// (l = r-1) at the end — property (2) restored after mass failure.
	Reconverged bool
	// Steps and NetStats extend the engine's replay contract to the
	// lifecycle machinery (kill, restart, staged rejoin).
	Steps    uint64
	NetStats transport.Stats
}

// meanLiveView averages l across rendezvous currently attached to the
// network (dead peers are skipped).
func meanLiveView(o *deploy.Overlay) float64 {
	sum, n := 0, 0
	for _, r := range o.Rdvs {
		if _, ok := o.Net.Lookup(r.Endpoint.Addr()); !ok {
			continue
		}
		sum += r.PeerView.Size()
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// runQueryPhase issues count spaced lookups for advertisements named
// "<prefix>0".."<prefix>{advCount-1}" from the searcher, flushing its cache
// between queries so every lookup travels the overlay. It is the shared
// measurement loop of the churn and churn-recovery experiments; whatever
// the deployment does meanwhile (crashes, rejoins) runs on the same
// scheduler during the phase.
func runQueryPhase(o *deploy.Overlay, searcher *node.Node, count, advCount int, prefix string) (PhaseStats, error) {
	var ps PhaseStats
	done := false
	var runQuery func(i int)
	runQuery = func(i int) {
		if i >= count {
			done = true
			o.Sched.Halt()
			return
		}
		advanced := false
		next := func() {
			if advanced {
				return
			}
			advanced = true
			searcher.Discovery.FlushCache()
			// Space the queries out so deployment events (churn, rejoins)
			// happen between them.
			searcher.Env.After(5*time.Second, func() { runQuery(i + 1) })
		}
		err := searcher.Discovery.Query("Resource", "Name",
			fmt.Sprintf("%s%d", prefix, i%advCount),
			func(r discovery.Result) {
				if !advanced {
					ps.Latency.AddDuration(r.Elapsed)
					ps.Succeeded++
				}
				next()
			},
			func() {
				if !advanced {
					ps.Timeouts++
				}
				next()
			})
		if err != nil {
			ps.Timeouts++
			searcher.Env.After(5*time.Second, func() { runQuery(i + 1) })
		}
	}
	o.Sched.After(0, func() { runQuery(0) })
	// Generous horizon: each query costs at most the resolver timeout plus
	// the 5 s spacing.
	o.Sched.Run(o.Sched.Now() + time.Duration(count+1)*time.Minute)
	if !done {
		return ps, fmt.Errorf("experiments: query phase did not finish (%d ok, %d timeouts)",
			ps.Succeeded, ps.Timeouts)
	}
	return ps, nil
}

// RunChurnRecovery executes the mass-failure + staged-rejoin scenario.
func RunChurnRecovery(spec RecoverySpec) (RecoveryResult, error) {
	spec = spec.withDefaults()
	if spec.R < spec.Kills+3 {
		return RecoveryResult{}, fmt.Errorf("experiments: recovery needs r >= kills+3, got r=%d kills=%d",
			spec.R, spec.Kills)
	}
	o, err := deploy.Build(deploy.Spec{
		Seed:      spec.Seed,
		NumRdv:    spec.R,
		Topology:  topology.Chain,
		Discovery: discovery.DefaultConfig(),
		Lease: rendezvous.Config{
			LeaseDuration:   5 * time.Minute,
			ResponseTimeout: 10 * time.Second,
		},
		Edges: []deploy.EdgeGroup{
			{AttachTo: 0, Count: 1, Prefix: "publisher"},
			{AttachTo: spec.R - 1, Count: 1, Prefix: "searcher"},
		},
	})
	if err != nil {
		return RecoveryResult{}, err
	}
	o.StartAll()
	publisher, searcher := o.Edges[0], o.Edges[1]
	o.Sched.Run(20 * time.Minute) // converge

	const advCount = 8
	for k := 0; k < advCount; k++ {
		publisher.Discovery.Publish(&advertisement.Resource{
			ResID: ids.FromName(ids.KindAdv, fmt.Sprintf("heal-target-%d", k)),
			Name:  fmt.Sprintf("Heal%d", k),
		}, 0)
	}
	o.Sched.Run(o.Sched.Now() + 2*time.Minute)

	res := RecoveryResult{Spec: spec}
	res.ViewBeforeKill = meanLiveView(o)

	if res.Baseline, err = runQueryPhase(o, searcher, spec.Queries, advCount, "Heal"); err != nil {
		return res, err
	}

	// Mass failure: a contiguous block in the middle crashes at once.
	// Victims keep their identity for the staged rejoin.
	first := spec.R / 3
	if first == 0 {
		first = 1
	}
	if first+spec.Kills >= spec.R {
		first = spec.R - 1 - spec.Kills
	}
	victims := make([]int, 0, spec.Kills)
	for v := first; v < first+spec.Kills; v++ {
		victims = append(victims, v)
		o.KillRdv(v)
	}
	o.Sched.Run(o.Sched.Now() + 2*time.Minute)
	res.ViewAfterKill = meanLiveView(o)

	if res.Outage, err = runQueryPhase(o, searcher, spec.Queries, advCount, "Heal"); err != nil {
		return res, err
	}

	// Staged rejoin: one victim restarts per tick, in kill order. Each
	// comes back with its original ID and address but cold state, and
	// rebuilds its view from the chain seeds.
	for i, v := range victims {
		v := v
		o.Sched.After(time.Duration(i+1)*spec.RejoinEvery, func() {
			o.RestartRdv(v)
		})
	}
	settle := time.Duration(len(victims)+1)*spec.RejoinEvery + 15*time.Minute
	o.Sched.Run(o.Sched.Now() + settle)
	res.ViewAfterRejoin = meanLiveView(o)
	res.Reconverged = true
	for _, r := range o.Rdvs {
		if r.PeerView.Size() != spec.R-1 {
			res.Reconverged = false
			break
		}
	}

	if res.Recovered, err = runQueryPhase(o, searcher, spec.Queries, advCount, "Heal"); err != nil {
		return res, err
	}

	res.Steps = o.Sched.Steps()
	res.NetStats = o.Net.Stats()
	o.StopAll()
	return res, nil
}
