package experiments

import (
	"fmt"
	"time"

	"jxta/internal/chord"
	"jxta/internal/flood"
	"jxta/internal/metrics"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

// BaselineResult compares the LC-DHT against a classical DHT (Chord-class)
// and the JXTA-1.0 flooding strategy on the same network model — the §3.3
// complexity discussion made measurable.
type BaselineResult struct {
	N int
	// LCDHT lookup metrics over a converged consistent overlay (property
	// (2) holding: the O(1) regime, 4 messages).
	LCDHTMeanMs    float64
	LCDHTMsgsPerOp float64
	// Chord lookup metrics: O(log n) hops.
	ChordMeanMs    float64
	ChordMeanHops  float64
	ChordMsgsPerOp float64
	// Flood lookup metrics: O(n) messages.
	FloodMeanMs    float64
	FloodMsgsPerOp float64
}

// RunBaselines measures all three systems at size n with the given number
// of operations.
func RunBaselines(n, ops int, seed int64) (BaselineResult, error) {
	if n < 2 || ops < 1 {
		return BaselineResult{}, fmt.Errorf("experiments: baselines n=%d ops=%d", n, ops)
	}
	res := BaselineResult{N: n}

	// --- LC-DHT over a consistent overlay ---
	disc, err := RunDiscovery(DiscoverySpec{
		R: n, Queries: ops, Seed: seed,
		Converge: 15 * time.Minute, Advertisements: minInt(ops, 20),
	})
	if err != nil {
		return res, err
	}
	res.LCDHTMeanMs = disc.MeanMs
	// When property (2) holds the paper counts 4 messages per lookup.
	// Measure directly via Table1-style counting at this size? The sweep
	// above measures latency; message counting needs its own small run.
	lcMsgs, err := lcdhtMessagesPerLookup(n, seed+1)
	if err != nil {
		return res, err
	}
	res.LCDHTMsgsPerOp = lcMsgs

	// --- Chord ---
	{
		sched := simnet.NewScheduler(seed + 2)
		net := transport.NewNetwork(sched, netmodel.Grid5000())
		ring, err := chord.Build(sched, net, n)
		if err != nil {
			return res, err
		}
		nodes := ring.Nodes()
		rng := sched.DeriveRand(21)
		var lat metrics.Samples
		totalHops := 0
		before := net.Stats().Messages
		completed := 0
		for i := 0; i < ops; i++ {
			ring.Lookup(nodes[rng.Intn(len(nodes))], rng.Uint64(),
				func(_ uint64, hops int, d time.Duration) {
					lat.AddDuration(d)
					totalHops += hops
					completed++
				})
			sched.Run(sched.Now() + time.Second)
		}
		if completed != ops {
			return res, fmt.Errorf("experiments: chord completed %d/%d", completed, ops)
		}
		res.ChordMeanMs = lat.Mean()
		res.ChordMeanHops = float64(totalHops) / float64(ops)
		res.ChordMsgsPerOp = float64(net.Stats().Messages-before) / float64(ops)
	}

	// --- Flooding ---
	{
		sched := simnet.NewScheduler(seed + 3)
		net := transport.NewNetwork(sched, netmodel.Grid5000())
		fn, err := flood.Build(sched, net, n, 4)
		if err != nil {
			return res, err
		}
		nodes := fn.Nodes()
		rng := sched.DeriveRand(23)
		for i := 0; i < minInt(ops, 20); i++ {
			nodes[rng.Intn(len(nodes))].Publish(fmt.Sprintf("key%d", i))
		}
		var lat metrics.Samples
		before := net.Stats().Messages
		completed := 0
		for i := 0; i < ops; i++ {
			fn.Query(nodes[rng.Intn(len(nodes))], fmt.Sprintf("key%d", i%minInt(ops, 20)), n,
				func(_ int, d time.Duration) {
					lat.AddDuration(d)
					completed++
				})
			sched.Run(sched.Now() + 10*time.Second)
		}
		res.FloodMeanMs = lat.Mean()
		res.FloodMsgsPerOp = float64(net.Stats().Messages-before) / float64(ops)
		if completed == 0 {
			return res, fmt.Errorf("experiments: flooding found nothing")
		}
	}
	return res, nil
}

// lcdhtMessagesPerLookup measures discovery messages per lookup over a
// small converged overlay (the paper's ≤4 in the consistent regime).
func lcdhtMessagesPerLookup(n int, seed int64) (float64, error) {
	t1, err := Table1(seed)
	if err != nil {
		return 0, err
	}
	_ = n // the 6-peer Table 1 overlay is the canonical consistent case
	return float64(t1.LookupMsgs), nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
