package experiments

import (
	"testing"
	"time"
)

func TestAblateReferralsMonotone(t *testing.T) {
	// More referrals per probe => faster refresh => larger steady view —
	// but since PR 10 ReferralsPerProbe is a *floor*: the batch is raised
	// to max(ReferralsPerProbe, ⌈2·l·Interval/EntryExpiry⌉) and drawn from a
	// rotating no-replacement cursor, so at small r even fan-out 1
	// saturates the full view. The properties that survive: a larger
	// fan-out is never worse, and the view converges either way.
	res, err := AblateReferrals(40, []int{1, 3}, 30*time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[1].PlateauL < res.Points[0].PlateauL {
		t.Fatalf("fan-out 3 plateau %.1f below fan-out 1 plateau %.1f",
			res.Points[1].PlateauL, res.Points[0].PlateauL)
	}
	for _, pt := range res.Points {
		if pt.PlateauL < 37 {
			t.Fatalf("fan-out %s plateau %.1f did not saturate (want ~39)",
				pt.Label, pt.PlateauL)
		}
	}
}

func TestAblateIntervalTradeoff(t *testing.T) {
	// Shorter PEERVIEW_INTERVAL buys freshness (bigger view) with
	// bandwidth (more messages) — the §4.1 compromise.
	res, err := AblateInterval(40,
		[]time.Duration{10 * time.Second, 60 * time.Second}, 30*time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := res.Points[0], res.Points[1]
	if fast.PlateauL <= slow.PlateauL {
		t.Fatalf("10s interval plateau %.1f not above 60s plateau %.1f",
			fast.PlateauL, slow.PlateauL)
	}
	if fast.MsgsPerPeerPerMin <= slow.MsgsPerPeerPerMin {
		t.Fatalf("10s interval bandwidth %.1f not above 60s bandwidth %.1f",
			fast.MsgsPerPeerPerMin, slow.MsgsPerPeerPerMin)
	}
}

func TestAblateExpiryMonotone(t *testing.T) {
	// Longer PVE_EXPIRATION keeps more entries — Figure 4 (left)
	// generalized into a sweep.
	res, err := AblateExpiry(40,
		[]time.Duration{5 * time.Minute, 365 * 24 * time.Hour}, 30*time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	short, inf := res.Points[0], res.Points[1]
	if inf.PlateauL <= short.PlateauL {
		t.Fatalf("infinite expiry plateau %.1f not above 5min plateau %.1f",
			inf.PlateauL, short.PlateauL)
	}
	if inf.Label != "inf" {
		t.Fatalf("label = %q", inf.Label)
	}
}

func TestAblateWalkSafetyNet(t *testing.T) {
	// At r beyond the consistency threshold, disabling the walk must lose
	// queries that the walk would have saved.
	res, err := AblateWalk(75, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithWalkOK <= res.WithoutWalkOK {
		t.Fatalf("walk saved nothing: with=%d without=%d ok",
			res.WithWalkOK, res.WithoutWalkOK)
	}
	if res.WithoutWalkLost == 0 {
		t.Fatal("no losses without the walk — r too small for this test")
	}
	if res.WithWalkOK+res.WithWalkTimeouts != res.Queries {
		t.Fatalf("accounting broken: %d+%d != %d",
			res.WithWalkOK, res.WithWalkTimeouts, res.Queries)
	}
}
