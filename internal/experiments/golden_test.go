package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"testing"
	"time"

	"jxta/internal/socket"
	"jxta/internal/topology"
)

// The golden determinism tests pin the engine's bit-for-bit replay contract
// across refactors of the scheduler, transport and message hot paths: a
// fixed-seed experiment must produce byte-identical metrics — every float
// down to the last mantissa bit, every simulator step, every network
// counter — on any implementation of the engine. The golden strings below
// were captured from the original container/heap + per-send-closure engine;
// any scheduler or transport change that reorders events, consumes RNG
// draws differently, or perturbs a latency sample will break them.
//
// If a change is *supposed* to alter simulation results (a model change,
// not an engine change), re-capture by setting the golden constants to
// "UNSET", running `go test ./internal/experiments -run TestGolden`, and
// pasting the printed fingerprints back in — and say so in the commit
// message.

// hexFloat renders a float64 exactly (hex mantissa), so golden comparisons
// are bit-for-bit rather than rounded.
func hexFloat(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }

func peerviewFingerprint(res PeerviewResult) string {
	h := fnv.New64a()
	io.WriteString(h, res.Size.CSV())
	io.WriteString(h, res.MeanSize.CSV())
	for _, e := range res.Events.Events {
		fmt.Fprintf(h, "%d|%d|%d|%s;", e.At, e.Kind, e.PeerNum, e.Peer)
	}
	return fmt.Sprintf("max=%d final=%d plateau=%s reached=%v@%d consistent=%v steps=%d msgs=%d bytes=%d dropped=%d series=%016x",
		res.MaxSize, res.FinalSize, hexFloat(res.PlateauMean),
		res.ReachedMax, res.ReachedMaxAt, res.ConsistentAtEnd,
		res.Steps, res.NetStats.Messages, res.NetStats.Bytes,
		res.NetStats.Dropped, h.Sum64())
}

func discoveryFingerprint(res DiscoveryResult) string {
	return fmt.Sprintf("mean=%s n=%d min=%s p50=%s p95=%s max=%s timeouts=%d walk=%s steps=%d msgs=%d bytes=%d dropped=%d",
		hexFloat(res.MeanMs), res.Latency.N(),
		hexFloat(res.Latency.Min()), hexFloat(res.Latency.Quantile(0.5)),
		hexFloat(res.Latency.Quantile(0.95)), hexFloat(res.Latency.Max()),
		res.Timeouts, hexFloat(res.WalkFraction),
		res.Steps, res.NetStats.Messages, res.NetStats.Bytes,
		res.NetStats.Dropped)
}

func phaseFingerprint(ps PhaseStats) string {
	return fmt.Sprintf("ok=%d to=%d mean=%s", ps.Succeeded, ps.Timeouts,
		hexFloat(ps.Latency.Mean()))
}

func recoveryFingerprint(res RecoveryResult) string {
	return fmt.Sprintf("base[%s] outage[%s] rec[%s] views=%s/%s/%s reconv=%v steps=%d msgs=%d bytes=%d dropped=%d",
		phaseFingerprint(res.Baseline), phaseFingerprint(res.Outage),
		phaseFingerprint(res.Recovered),
		hexFloat(res.ViewBeforeKill), hexFloat(res.ViewAfterKill),
		hexFloat(res.ViewAfterRejoin), res.Reconverged,
		res.Steps, res.NetStats.Messages, res.NetStats.Bytes,
		res.NetStats.Dropped)
}

func bandwidthFingerprint(res BandwidthResult) string {
	s := ""
	for _, pt := range res.Points {
		s += fmt.Sprintf("size=%d msgs=%d tput=%s rtt=%s elapsed=%s retx=%d;",
			pt.SizeBytes, pt.Messages, hexFloat(pt.ThroughputMBps),
			hexFloat(pt.RTTMs), hexFloat(pt.ElapsedMs), pt.Retx)
	}
	return fmt.Sprintf("%s steps=%d msgs=%d bytes=%d dropped=%d",
		s, res.Steps, res.NetStats.Messages, res.NetStats.Bytes, res.NetStats.Dropped)
}

func islandMergeFingerprint(res VolatilityResult) string {
	s := ""
	for _, pt := range res.Points {
		s += fmt.Sprintf("kill=%v %s promos=%d live=%d view=%s reconv=%v merges=%d ttst=%v conv=%v post[%s];",
			pt.KillEvery, phaseFingerprint(pt.Phase), pt.Promotions,
			pt.LiveTier, hexFloat(pt.MeanView), pt.Reconverged,
			pt.Merge.Merges, pt.Merge.TimeToSingleTier, pt.Merge.Converged,
			phaseFingerprint(pt.Merge.Phase))
	}
	return fmt.Sprintf("%s steps=%d msgs=%d bytes=%d dropped=%d",
		s, res.Steps, res.NetStats.Messages, res.NetStats.Bytes, res.NetStats.Dropped)
}

func routingFingerprint(res RoutingResult) string {
	s := ""
	for _, pt := range res.Points {
		s += fmt.Sprintf("%s[n=%d pub=%s ok=%d/%d hops=%s lat=%s msgs=%s maint=%s kill=%d churn=%d/%d chops=%s];",
			pt.Backend, pt.N, hexFloat(pt.PublishMsgsPerOp),
			pt.Success, pt.Lookups, hexFloat(pt.MeanHops),
			hexFloat(pt.Latency.Mean()), hexFloat(pt.LookupMsgsPerOp),
			hexFloat(pt.MaintMsgsPerMin), pt.Killed,
			pt.ChurnSuccess, pt.ChurnLookups, hexFloat(pt.ChurnMeanHops))
	}
	return s
}

func volatilityFingerprint(res VolatilityResult) string {
	s := ""
	for _, pt := range res.Points {
		s += fmt.Sprintf("kill=%v %s promos=%d live=%d view=%s reconv=%v;",
			pt.KillEvery, phaseFingerprint(pt.Phase), pt.Promotions,
			pt.LiveTier, hexFloat(pt.MeanView), pt.Reconverged)
	}
	return fmt.Sprintf("%s steps=%d msgs=%d bytes=%d dropped=%d",
		s, res.Steps, res.NetStats.Messages, res.NetStats.Bytes, res.NetStats.Dropped)
}

// Recapture note (PR 10): every simulation golden below was recaptured
// after three intentional protocol changes moved all fixed-seed
// trajectories at once. (1) The peerview referral batch rewrite — the
// r=1,000 plateau fix — replaced per-probe i.i.d. random referral draws
// with a rotating no-replacement cursor (removing RNG consumption from
// every probe) and ships one referral message with batched advertisement
// elements instead of several single-adv messages, so message counts,
// bytes and every downstream RNG draw shift. (2) Resolver responses now
// echo the query's hop count (one extra wire element: byte counts move).
// (3) rendezvous.Config.RumorDeadSweeps gained a non-zero default, so
// island-merge scenarios retire dead tier-probe targets they previously
// probed forever (volatility/island-merge traffic shrinks). The peerview
// golden's plateau/consistency claims still hold (reached=true,
// consistent=true — convergence is now slightly later at this small r
// because referrals arrive batched per probe rather than scattered); the
// island-merge golden still asserts single-tier convergence and 100%
// post-merge discovery. The bandwidth 4 KiB point now crosses one
// retransmission (retx=1): the RNG-draw shift moved which packets the 1%
// deterministic loss hits, not the stream layer's behavior.
const (
	goldenPeerview  = "max=23 final=23 plateau=0x1.7p+04 reached=true@270000000000 consistent=true steps=12048 msgs=5050 bytes=3014127 dropped=0 series=2d647532512cdb66"
	goldenDiscovery = "mean=0x1.a8ed6e47dc37bp+03 n=12 min=0x1.4f56238da3c21p+03 p50=0x1.99961f5be5d9ep+03 p95=0x1.036f18bc8f67ep+04 max=0x1.08dccb7d41744p+04 timeouts=0 walk=0x0p+00 steps=2418 msgs=967 bytes=561367 dropped=0"
	goldenBandwidth = "size=4096 msgs=128 tput=0x1.6e18623593af5p+00 rtt=0x1.510a686e7e62ep+03 elapsed=0x1.6e9ea4441787p+08 retx=1;size=65536 msgs=8 tput=0x1.30175d96dfb09p+04 rtt=0x1.d30896dd26b72p+03 elapsed=0x1.b95f87f023e9fp+04 retx=0; steps=2080 msgs=935 bytes=1744378 dropped=6"
	goldenRecovery  = "base[ok=8 to=0 mean=0x1.a0d91e215336fp+03] outage[ok=6 to=2 mean=0x1.a51d57a620d84p+03] rec[ok=8 to=0 mean=0x1.ddadc054ef459p+03] views=0x1.5d55555555555p+03/0x1.6p+03/0x1.6p+03 reconv=true steps=12840 msgs=5008 bytes=2944545 dropped=70"

	// goldenVolatility pins the whole self-healing machinery — lease-grant
	// state snapshots, missed-renewal detection, deterministic successor
	// election, in-place edge→rendezvous promotion, roster adoption and
	// re-leasing — to the bit-for-bit replay contract: a fixed-seed full
	// attrition (kills with no rejoin) plus a kill/rejoin churn point must
	// reproduce every query outcome, promotion and counter exactly.
	goldenVolatility = "kill=1m30s ok=23 to=17 mean=0x1.09e38203a037cp+03 promos=3 live=3 view=0x1.5555555555555p-01 reconv=false; steps=7602 msgs=3169 bytes=1761359 dropped=609 || kill=1m30s ok=32 to=8 mean=0x1.0333fc9795b36p+03 promos=0 live=4 view=0x1.8p+01 reconv=true; steps=9040 msgs=3540 bytes=2096868 dropped=67"

	// goldenIslandMerge pins the island-merge subsystem end to end — rumor
	// piggyback on lease traffic, tier probes and their anchor redirects,
	// the peerview merge handshake, SRDI re-replication over the merged
	// view and duplicate-lease reconciliation — on the same full-attrition
	// scenario goldenVolatility leaves fragmented (live=3, reconv=false):
	// with IslandMerge on, the three promoted islands must gossip each
	// other into a single tier and post-merge discovery success must return
	// to 100%, bit for bit on every replay.
	goldenIslandMerge = "kill=1m30s ok=28 to=12 mean=0x1.0fba5046e4278p+03 promos=3 live=3 view=0x1p+01 reconv=true merges=8 ttst=0s conv=true post[ok=40 to=0 mean=0x1.0a479fdf2df86p+03]; steps=6959 msgs=2864 bytes=1724115 dropped=224"

	// goldenRouting pins the four-backend bake-off (flood, SRDI walk,
	// Chord, Kademlia over one publish/lookup/maintenance/churn scenario)
	// to the bit-for-bit replay contract: per-backend message costs, hop
	// counts, latencies and churn survival must reproduce exactly.
	goldenRouting = "flood[n=16 pub=0x0p+00 ok=12/12 hops=0x1.0aaaaaaaaaaabp+01 lat=0x1.49e22036006d1p+03 msgs=0x1.12aaaaaaaaaabp+06 maint=0x0p+00 kill=4 churn=12/12 chops=0x1.d555555555555p+00];srdi[n=16 pub=0x1.7d55555555555p+05 ok=12/12 hops=0x1.d555555555555p+00 lat=0x1.3cee831ad2136p+03 msgs=0x1.c555555555555p+04 maint=0x1.0d9999999999ap+07 kill=4 churn=10/12 chops=0x0p+00];chord[n=16 pub=0x1.1555555555555p+02 ok=12/12 hops=0x1.3555555555555p+01 lat=0x1.a50c19ab13864p+03 msgs=0x1.b555555555555p+01 maint=0x0p+00 kill=4 churn=6/12 chops=0x1.2aaaaaaaaaaabp+01];kademlia[n=16 pub=0x1.2aaaaaaaaaaabp+06 ok=12/12 hops=0x1p+00 lat=0x1.26a65811c837dp+02 msgs=0x1.6555555555555p+05 maint=0x1.3333333333333p+07 kill=4 churn=12/12 chops=0x1p+00];"
)

func TestGoldenPeerviewReplay(t *testing.T) {
	res, err := RunPeerview(PeerviewSpec{
		R: 24, Topology: topology.Chain,
		Duration: 20 * time.Minute, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := peerviewFingerprint(res)
	if goldenPeerview == "UNSET" {
		t.Fatalf("capture golden:\n%s", got)
	}
	if got != goldenPeerview {
		t.Errorf("peerview replay diverged from golden engine behavior\n got:  %s\n want: %s", got, goldenPeerview)
	}
}

func TestGoldenDiscoveryReplay(t *testing.T) {
	res, err := RunDiscovery(DiscoverySpec{
		R: 8, Queries: 12, Seed: 42, Converge: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := discoveryFingerprint(res)
	if goldenDiscovery == "UNSET" {
		t.Fatalf("capture golden:\n%s", got)
	}
	if got != goldenDiscovery {
		t.Errorf("discovery replay diverged from golden engine behavior\n got:  %s\n want: %s", got, goldenDiscovery)
	}
}

// TestGoldenBandwidthReplay pins the streaming subsystem (sockets, window
// flow control, retransmission under injected loss) to the same bit-for-bit
// replay contract as the control-plane experiments.
func TestGoldenBandwidthReplay(t *testing.T) {
	t.Setenv(socket.WindowEnvVar, "") // goldens must not follow ambient config
	res, err := RunBandwidth(BandwidthSpec{
		R:              3,
		Sizes:          []int{4 << 10, 64 << 10},
		VolumePerPoint: 512 << 10,
		RTTSamples:     2,
		LossRate:       0.01,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := bandwidthFingerprint(res)
	if goldenBandwidth == "UNSET" {
		t.Fatalf("capture golden:\n%s", got)
	}
	if got != goldenBandwidth {
		t.Errorf("bandwidth replay diverged from golden engine behavior\n got:  %s\n want: %s", got, goldenBandwidth)
	}
}

// TestGoldenChurnRecoveryReplay pins the lifecycle machinery — crash
// (Kill), cold restart with identity preservation, staged rejoin and
// overlay self-healing — to the bit-for-bit replay contract: a fixed-seed
// mass-failure + recovery scenario must reproduce every query outcome,
// every view size and every network counter exactly.
func TestGoldenChurnRecoveryReplay(t *testing.T) {
	t.Setenv(socket.WindowEnvVar, "") // goldens must not follow ambient config
	res, err := RunChurnRecovery(RecoverySpec{
		R: 12, Kills: 4, Queries: 8, RejoinEvery: time.Minute, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := recoveryFingerprint(res)
	if goldenRecovery == "UNSET" {
		t.Fatalf("capture golden:\n%s", got)
	}
	if got != goldenRecovery {
		t.Errorf("churn-recovery replay diverged from golden engine behavior\n got:  %s\n want: %s", got, goldenRecovery)
	}
}

// TestGoldenVolatilityReplay pins the self-healing rendezvous tier (see
// goldenVolatility) across engine and protocol refactors. Two sweep points
// share the spec: full attrition healed by promotion, and kill/rejoin churn
// healed by restarts bridging the promoted tier back together.
func TestGoldenVolatilityReplay(t *testing.T) {
	t.Setenv(socket.WindowEnvVar, "") // goldens must not follow ambient config
	spec := VolatilitySpec{
		R: 4, EdgesPerRdv: 2,
		KillEvery: []time.Duration{90 * time.Second},
		Kills:     4, Queries: 40, Seed: 42,
	}
	attrition, err := RunVolatility(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.RejoinAfter = 3 * time.Minute
	churn, err := RunVolatility(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := volatilityFingerprint(attrition) + " || " + volatilityFingerprint(churn)
	if goldenVolatility == "UNSET" {
		t.Fatalf("capture golden:\n%s", got)
	}
	if got != goldenVolatility {
		t.Errorf("volatility replay diverged from golden self-healing behavior\n got:  %s\n want: %s", got, goldenVolatility)
	}
}

// TestGoldenIslandMergeReplay pins the gossip-driven island merge (see
// goldenIslandMerge). Beyond the byte-identical fingerprint it asserts the
// headline claims directly: all surviving islands converge to a single
// peerview tier, and post-merge discovery success is 100%.
func TestGoldenIslandMergeReplay(t *testing.T) {
	t.Setenv(socket.WindowEnvVar, "") // goldens must not follow ambient config
	res, err := RunVolatility(VolatilitySpec{
		R: 4, EdgesPerRdv: 2,
		KillEvery: []time.Duration{90 * time.Second},
		Kills:     4, Queries: 40, Seed: 42,
		IslandMerge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Merge == nil {
		t.Fatal("IslandMerge spec produced no merge phase")
	}
	if !pt.Merge.Converged || !pt.Reconverged {
		t.Errorf("islands did not converge to a single tier: live=%d view=%.2f conv=%v",
			pt.LiveTier, pt.MeanView, pt.Merge.Converged)
	}
	if pt.Merge.Phase.Timeouts != 0 || pt.Merge.Phase.Succeeded == 0 {
		t.Errorf("post-merge discovery not 100%%: ok=%d timeouts=%d",
			pt.Merge.Phase.Succeeded, pt.Merge.Phase.Timeouts)
	}
	got := islandMergeFingerprint(res)
	if goldenIslandMerge == "UNSET" {
		t.Fatalf("capture golden:\n%s", got)
	}
	if got != goldenIslandMerge {
		t.Errorf("island-merge replay diverged from golden behavior\n got:  %s\n want: %s", got, goldenIslandMerge)
	}
}

// TestGoldenRoutingReplay pins the structured-routing bake-off (see
// goldenRouting): all four routing.Backend implementations, including the
// iterative Kademlia overlay and the resolver hop-echo extension the SRDI
// adapter reads, replay bit for bit.
func TestGoldenRoutingReplay(t *testing.T) {
	res, err := RunRouting(quickRoutingSpec())
	if err != nil {
		t.Fatal(err)
	}
	got := routingFingerprint(res)
	if goldenRouting == "UNSET" {
		t.Fatalf("capture golden:\n%s", got)
	}
	if got != goldenRouting {
		t.Errorf("routing bake-off replay diverged from golden behavior\n got:  %s\n want: %s", got, goldenRouting)
	}
}

// TestGoldenReplayTwice asserts run-to-run determinism inside one process:
// two identical specs yield identical fingerprints regardless of map
// iteration order, pooling, or allocator state.
func TestGoldenReplayTwice(t *testing.T) {
	spec := PeerviewSpec{R: 16, Topology: topology.Tree, Fanout: 2,
		Duration: 15 * time.Minute, Seed: 7}
	a, err := RunPeerview(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPeerview(spec)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := peerviewFingerprint(a), peerviewFingerprint(b)
	if fa != fb {
		t.Errorf("same-seed replay diverged\n first:  %s\n second: %s", fa, fb)
	}
}
