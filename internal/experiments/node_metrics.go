package experiments

import (
	"strings"

	"jxta/internal/deploy"
)

// NodeMetricsSummary is the per-node runtime-metrics section experiment
// results carry into jxta-bench's JSON output: the overlay-level registry,
// every per-node series summed across the population, and full snapshots
// for a small named sample of peers. The sample is bounded on purpose —
// a 10k-edge scale run would otherwise dump a million series — and
// SampledNodes/Nodes states exactly how much was kept.
type NodeMetricsSummary struct {
	// Nodes is the population the totals aggregate over.
	Nodes int `json:"nodes"`
	// SampledNodes is how many peers appear in Sample (the rest are only
	// in Totals — nothing else is dropped).
	SampledNodes int `json:"sampled_nodes"`
	// Overlay is the overlay-level registry: fabric traffic, engine
	// window/barrier instrumentation on sharded runs.
	Overlay map[string]float64 `json:"overlay"`
	// Totals sums every series name across all nodes. For counters this
	// is the overlay-wide total; for gauges it is a population sum (e.g.
	// jxta_peerview_size totals the tier's view entries).
	Totals map[string]float64 `json:"totals"`
	// Sample maps peer name to its full registry snapshot: the first
	// rendezvous and the first edge by deployment order, the two shapes a
	// dashboard would template from.
	Sample map[string]map[string]float64 `json:"sample"`
}

// histogramDetail reports whether a series key is a histogram expansion
// (per-bucket cumulative counts); those stay in Sample but are dropped
// from Totals, where summing cumulative buckets across nodes is noise.
func histogramDetail(key string) bool {
	return strings.Contains(key, "_bucket{le=")
}

// CollectNodeMetrics snapshots every deployed peer's registry plus the
// overlay registry. Call it while virtual time is paused and before
// StopAll (lifecycle gauges reset on stop); collection is a pure
// observation. sample bounds how many peers keep full snapshots: the
// first rendezvous and first edge when sample ≥ 2, just the first
// rendezvous when 1, none when 0.
func CollectNodeMetrics(o *deploy.Overlay, sample int) *NodeMetricsSummary {
	nodes := o.Nodes()
	s := &NodeMetricsSummary{
		Nodes:   len(nodes),
		Overlay: o.Metrics.Snapshot(),
		Totals:  make(map[string]float64),
		Sample:  make(map[string]map[string]float64),
	}
	if o.LeanRegistry != nil {
		// Lean mode: every node aliases the one population registry, whose
		// counters already aggregate across peers — snapshot it once
		// (summing per node would multiply by the population). No per-peer
		// snapshots exist to sample.
		for k, v := range o.LeanRegistry.Snapshot() {
			if !histogramDetail(k) {
				s.Totals[k] = v
			}
		}
		return s
	}
	for _, n := range nodes {
		for k, v := range n.Metrics.Snapshot() {
			if !histogramDetail(k) {
				s.Totals[k] += v
			}
		}
	}
	if sample >= 1 && len(o.Rdvs) > 0 {
		s.Sample[o.Rdvs[0].Config.Name] = o.Rdvs[0].Metrics.Snapshot()
	}
	if sample >= 2 && len(o.Edges) > 0 {
		s.Sample[o.Edges[0].Config.Name] = o.Edges[0].Metrics.Snapshot()
	}
	s.SampledNodes = len(s.Sample)
	return s
}
