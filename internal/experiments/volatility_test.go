package experiments

import (
	"testing"
	"time"
)

// TestVolatilityPromotionHealsAttrition kills the entire original
// rendezvous tier with no rejoin: the overlay must survive purely through
// edge→rendezvous promotion, and the searcher's queries keep succeeding.
func TestVolatilityPromotionHealsAttrition(t *testing.T) {
	res, err := RunVolatility(VolatilitySpec{
		R: 4, EdgesPerRdv: 2,
		KillEvery: []time.Duration{90 * time.Second},
		Kills:     4, Queries: 40, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Promotions == 0 {
		t.Fatal("full attrition healed without a single promotion?")
	}
	if pt.LiveTier == 0 {
		t.Fatal("no rendezvous tier survived")
	}
	if pt.Phase.Succeeded < pt.Phase.Timeouts {
		t.Fatalf("discovery mostly failed under attrition: ok=%d timeouts=%d",
			pt.Phase.Succeeded, pt.Phase.Timeouts)
	}
}

// TestVolatilityRejoinReconverges drives the kill/rejoin mode: every victim
// returns, so the tier re-converges to the full original membership.
func TestVolatilityRejoinReconverges(t *testing.T) {
	res, err := RunVolatility(VolatilitySpec{
		R: 4, EdgesPerRdv: 2,
		KillEvery:   []time.Duration{90 * time.Second},
		RejoinAfter: 3 * time.Minute,
		Kills:       4, Queries: 40, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.LiveTier != 4 {
		t.Fatalf("live tier = %d after full rejoin, want 4", pt.LiveTier)
	}
	if !pt.Reconverged {
		t.Fatalf("tier did not re-converge (mean view %.1f)", pt.MeanView)
	}
}

// TestVolatilityIslandMergeConverges re-runs the attrition scenario with
// the island merge on: the same spec that fragments into three islands
// (TestVolatilityPromotionHealsAttrition leaves reconv=false) must now
// gossip itself back into a single tier with full discovery success. It
// also checks the sweep stays fragmented when the merge is off, so the
// comparison is meaningful.
func TestVolatilityIslandMergeConverges(t *testing.T) {
	spec := VolatilitySpec{
		R: 4, EdgesPerRdv: 2,
		KillEvery: []time.Duration{90 * time.Second},
		Kills:     4, Queries: 40, Seed: 42,
	}
	off, err := RunVolatility(spec)
	if err != nil {
		t.Fatal(err)
	}
	if off.Points[0].Reconverged {
		t.Skip("attrition no longer fragments without the merge; scenario lost its point")
	}
	spec.IslandMerge = true
	on, err := RunVolatility(spec)
	if err != nil {
		t.Fatal(err)
	}
	pt := on.Points[0]
	if pt.Merge == nil {
		t.Fatal("no merge phase recorded")
	}
	if pt.Merge.Merges == 0 {
		t.Fatal("no merge handshake completed")
	}
	if !pt.Merge.Converged || !pt.Reconverged || pt.LiveTier == 0 {
		t.Fatalf("tier did not converge: live=%d view=%.2f conv=%v",
			pt.LiveTier, pt.MeanView, pt.Merge.Converged)
	}
	if pt.Merge.Phase.Timeouts != 0 {
		t.Fatalf("post-merge discovery below 100%%: ok=%d timeouts=%d",
			pt.Merge.Phase.Succeeded, pt.Merge.Phase.Timeouts)
	}
}

// TestMergePhaseKillsExceedR: an attrition spec asking for more kills than
// rendezvous exist must not hang the merge phase waiting for a kill quota
// that can never fill (regression; only R kills can land without rejoins).
func TestMergePhaseKillsExceedR(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := RunVolatility(VolatilitySpec{
			R: 3, EdgesPerRdv: 1, Kills: 9, Queries: 5,
			KillEvery: []time.Duration{time.Minute}, Seed: 1, IslandMerge: true,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("RunVolatility hung with Kills > R")
	}
}

func TestVolatilityRejectsTinyOverlay(t *testing.T) {
	if _, err := RunVolatility(VolatilitySpec{R: 1}); err == nil {
		t.Fatal("R=1 accepted")
	}
}
