package experiments

import (
	"testing"
	"time"
)

// TestVolatilityPromotionHealsAttrition kills the entire original
// rendezvous tier with no rejoin: the overlay must survive purely through
// edge→rendezvous promotion, and the searcher's queries keep succeeding.
func TestVolatilityPromotionHealsAttrition(t *testing.T) {
	res, err := RunVolatility(VolatilitySpec{
		R: 4, EdgesPerRdv: 2,
		KillEvery: []time.Duration{90 * time.Second},
		Kills:     4, Queries: 40, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Promotions == 0 {
		t.Fatal("full attrition healed without a single promotion?")
	}
	if pt.LiveTier == 0 {
		t.Fatal("no rendezvous tier survived")
	}
	if pt.Phase.Succeeded < pt.Phase.Timeouts {
		t.Fatalf("discovery mostly failed under attrition: ok=%d timeouts=%d",
			pt.Phase.Succeeded, pt.Phase.Timeouts)
	}
}

// TestVolatilityRejoinReconverges drives the kill/rejoin mode: every victim
// returns, so the tier re-converges to the full original membership.
func TestVolatilityRejoinReconverges(t *testing.T) {
	res, err := RunVolatility(VolatilitySpec{
		R: 4, EdgesPerRdv: 2,
		KillEvery:   []time.Duration{90 * time.Second},
		RejoinAfter: 3 * time.Minute,
		Kills:       4, Queries: 40, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.LiveTier != 4 {
		t.Fatalf("live tier = %d after full rejoin, want 4", pt.LiveTier)
	}
	if !pt.Reconverged {
		t.Fatalf("tier did not re-converge (mean view %.1f)", pt.MeanView)
	}
}

func TestVolatilityRejectsTinyOverlay(t *testing.T) {
	if _, err := RunVolatility(VolatilitySpec{R: 1}); err == nil {
		t.Fatal("R=1 accepted")
	}
}
