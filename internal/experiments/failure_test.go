package experiments

import (
	"fmt"
	"testing"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/deploy"
	"jxta/internal/discovery"
	"jxta/internal/ids"
	"jxta/internal/netmodel"
	"jxta/internal/topology"
)

// Failure injection: the protocols must stay live under message loss — the
// peerview keeps probing, leases keep renewing, discovery retries are the
// application's job but individual losses must never wedge a peer.

func lossyOverlay(t *testing.T, lossRate float64, r int, seed int64) *deploy.Overlay {
	t.Helper()
	model := netmodel.Grid5000()
	model.LossRate = lossRate
	o, err := deploy.Build(deploy.Spec{
		Seed:      seed,
		NumRdv:    r,
		Topology:  topology.Chain,
		Model:     model,
		Discovery: discovery.DefaultConfig(),
		Edges: []deploy.EdgeGroup{
			{AttachTo: 0, Count: 1, Prefix: "pub"},
			{AttachTo: r - 1, Count: 1, Prefix: "search"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestPeerviewConvergesUnderModerateLoss(t *testing.T) {
	o := lossyOverlay(t, 0.05, 10, 1)
	o.StartAll()
	o.Sched.Run(30 * time.Minute)
	// With 5% loss and periodic probing, the view still assembles fully.
	for i, rdv := range o.Rdvs {
		if rdv.PeerView.Size() < 8 {
			t.Fatalf("rdv %d view %d under 5%% loss", i, rdv.PeerView.Size())
		}
	}
	if o.Net.Stats().Dropped == 0 {
		t.Fatal("loss injection inactive")
	}
}

func TestLeaseSurvivesLoss(t *testing.T) {
	o := lossyOverlay(t, 0.05, 4, 2)
	o.StartAll()
	o.Sched.Run(45 * time.Minute)
	for i, e := range o.Edges {
		if _, ok := e.Rendezvous.ConnectedRdv(); !ok {
			t.Fatalf("edge %d lost its lease permanently under 5%% loss", i)
		}
	}
}

func TestDiscoveryMostlySucceedsUnderLoss(t *testing.T) {
	o := lossyOverlay(t, 0.03, 6, 3)
	o.StartAll()
	o.Sched.Run(15 * time.Minute)
	pub, search := o.Edges[0], o.Edges[1]
	for k := 0; k < 10; k++ {
		pub.Discovery.Publish(&advertisement.Resource{
			ResID: ids.FromName(ids.KindAdv, fmt.Sprintf("lossy-%d", k)),
			Name:  fmt.Sprintf("Lossy%d", k),
		}, 0)
	}
	o.Sched.Run(o.Sched.Now() + 2*time.Minute)

	ok, timeouts := 0, 0
	done := false
	var run func(i int)
	run = func(i int) {
		if i >= 30 {
			done = true
			o.Sched.Halt()
			return
		}
		advanced := false
		next := func() {
			if advanced {
				return
			}
			advanced = true
			search.Discovery.FlushCache()
			run(i + 1)
		}
		search.Discovery.Query("Resource", "Name", fmt.Sprintf("Lossy%d", i%10),
			func(discovery.Result) {
				if !advanced {
					ok++
				}
				next()
			},
			func() {
				if !advanced {
					timeouts++
				}
				next()
			})
	}
	o.Sched.After(0, func() { run(0) })
	o.Sched.Run(o.Sched.Now() + time.Hour)
	if !done {
		t.Fatal("query loop wedged under loss")
	}
	// 3% per-message loss over a ~4-message path: most queries succeed.
	if ok < 20 {
		t.Fatalf("only %d/30 queries succeeded under 3%% loss (timeouts=%d)", ok, timeouts)
	}
	if timeouts == 0 {
		t.Log("note: no query lost any message this seed (still valid)")
	}
}

func TestTotalPartitionExpiresEverything(t *testing.T) {
	// 100% loss after convergence: every view must drain to empty once
	// PVE_EXPIRATION passes — the protocol's self-cleaning property.
	o := lossyOverlay(t, 0, 6, 4)
	o.StartAll()
	o.Sched.Run(15 * time.Minute)
	for _, rdv := range o.Rdvs {
		if rdv.PeerView.Size() != 5 {
			t.Fatal("overlay did not converge before partition")
		}
	}
	o.Net.Model().LossRate = 1.0
	o.Sched.Run(o.Sched.Now() + 45*time.Minute) // > PVE_EXPIRATION
	for i, rdv := range o.Rdvs {
		if rdv.PeerView.Size() != 0 {
			t.Fatalf("rdv %d still sees %d peers after total partition",
				i, rdv.PeerView.Size())
		}
	}
}
