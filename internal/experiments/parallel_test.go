package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"jxta/internal/topology"
)

func TestSweepRunsAll(t *testing.T) {
	var count int64
	err := Sweep(37, func(i int) error {
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err != nil || count != 37 {
		t.Fatalf("count=%d err=%v", count, err)
	}
}

func TestSweepReportsFirstError(t *testing.T) {
	boom := errors.New("boom")
	err := Sweep(10, func(i int) error {
		if i%3 == 0 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
}

// TestSweepStopsDispatchAfterError pins the early-stop contract: once a
// point fails, undisbatched points must never start. Job 0 fails
// immediately; with GOMAXPROCS workers at most workers+1 further points can
// already be in flight or queued, so on a 512-point sweep the executed
// count staying far below n proves the dispatcher stopped.
func TestSweepStopsDispatchAfterError(t *testing.T) {
	boom := errors.New("boom")
	var executed int64
	n := 512
	err := Sweep(n, func(i int) error {
		atomic.AddInt64(&executed, 1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond) // let the failure land before the queue drains
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := atomic.LoadInt64(&executed); got > int64(n/4) {
		t.Fatalf("%d of %d points executed after first error: dispatcher did not stop", got, n)
	}
}

func TestSweepEmpty(t *testing.T) {
	if err := Sweep(0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestFig4RightParallelMatchesSequential(t *testing.T) {
	rs := []int{5, 8}
	par, err := Fig4RightParallel(rs, false, 10, 77)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Fig4Right(rs, false, 10, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if par[i].MeanMs != seq[i].MeanMs {
			t.Fatalf("r=%d: parallel %.3f != sequential %.3f (determinism broken)",
				rs[i], par[i].MeanMs, seq[i].MeanMs)
		}
	}
}

func TestFig3LeftParallel(t *testing.T) {
	specs := []PeerviewSpec{
		{R: 8, Topology: topology.Chain, Duration: 10 * time.Minute, Seed: 1},
		{R: 10, Topology: topology.Chain, Duration: 10 * time.Minute, Seed: 2},
	}
	out, err := Fig3LeftParallel(specs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Spec.R != 8 || out[1].Spec.R != 10 {
		t.Fatal("results out of order")
	}
	if out[0].FinalSize != 7 || out[1].FinalSize != 9 {
		t.Fatalf("sizes %d/%d", out[0].FinalSize, out[1].FinalSize)
	}
}
