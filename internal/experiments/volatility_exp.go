package experiments

import (
	"fmt"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/deploy"
	"jxta/internal/discovery"
	"jxta/internal/ids"
	"jxta/internal/node"
	"jxta/internal/peerview"
	"jxta/internal/rendezvous"
	"jxta/internal/topology"
	"jxta/internal/transport"
)

// VolatilitySpec parameterizes the volatility sweep — the paper-§5 axis the
// conclusion calls for ("evaluate the behaviour of the fall-back mechanism
// ... under high volatility"), driven against the *self-healing* rendezvous
// tier: rendezvous crash on a timer with no peer spared, edges fail over to
// the peerview alternates their lease grants carried, and when a region of
// the overlay loses every reachable rendezvous, the deterministic successor
// election promotes an edge in place. Each KillEvery value is one sweep
// point; smaller intervals mean higher volatility.
type VolatilitySpec struct {
	// R is the rendezvous count.
	R int
	// EdgesPerRdv attaches this many edge peers to every rendezvous
	// (default 1). The first edge is the publisher, the last the searcher.
	EdgesPerRdv int
	// KillEvery lists the sweep points: the interval between rendezvous
	// crashes. No peer is spared — unlike the churn experiment, the
	// publisher's and searcher's rendezvous can die too; healing is the
	// subject.
	KillEvery []time.Duration
	// Kills bounds how many rendezvous die per point (default R, i.e. the
	// whole original tier — full attrition).
	Kills int
	// RejoinAfter restarts each victim this long after its crash (kill/
	// rejoin churn). Zero means victims never return: the tier survives
	// only through edge→rendezvous promotion.
	RejoinAfter time.Duration
	// Queries is the number of lookups issued while the killing runs.
	Queries int
	// IslandMerge enables the gossip-driven island merge and appends a
	// post-attrition merge phase to every sweep point: after the kill
	// schedule finishes, the run polls the tier until the surviving islands
	// have merged into a single peerview (or MergeSettle elapses), records
	// the time-to-single-tier, and measures discovery success again on the
	// merged overlay (VolatilityPoint.Merge).
	IslandMerge bool
	// MergeSettle caps the merge phase (default 30 min virtual time).
	MergeSettle time.Duration
	// Shards partitions the simulated network across per-core shard
	// schedulers (see deploy.Spec.Shards). 0 or 1 keeps the serial engine;
	// results are deterministic per (Seed, Shards).
	Shards int
	// Seed is the master determinism seed.
	Seed int64
}

func (s VolatilitySpec) withDefaults() VolatilitySpec {
	if s.EdgesPerRdv <= 0 {
		s.EdgesPerRdv = 1
	}
	if len(s.KillEvery) == 0 {
		s.KillEvery = []time.Duration{4 * time.Minute, 2 * time.Minute, time.Minute}
	}
	if s.Kills <= 0 {
		s.Kills = s.R
	}
	if s.Queries <= 0 {
		s.Queries = 20
	}
	if s.MergeSettle <= 0 {
		s.MergeSettle = 30 * time.Minute
	}
	return s
}

// MergeStats reports the post-attrition island-merge phase of one sweep
// point (VolatilitySpec.IslandMerge).
type MergeStats struct {
	// Merges counts completed merge handshake legs across the whole run
	// (merges start as soon as islands form, not only in this phase).
	Merges int
	// TimeToSingleTier is the virtual time from the end of the kill/query
	// phase until every live tier member saw the full tier — the headline
	// reconvergence metric. When Converged is false it equals the settle
	// window (the cap).
	TimeToSingleTier time.Duration
	// Converged reports whether the single tier was reached in the window.
	Converged bool
	// Phase aggregates post-merge discovery outcomes on the merged tier.
	Phase PhaseStats
}

// VolatilityPoint is one sweep point's outcome.
type VolatilityPoint struct {
	// KillEvery is the crash interval of this point.
	KillEvery time.Duration
	// Phase aggregates the discovery outcomes measured while peers died.
	Phase PhaseStats
	// Promotions counts edge→rendezvous role switches the healing performed.
	Promotions int
	// LiveTier is the final rendezvous-role population still attached to
	// the network (surviving originals, rejoined victims, promoted edges).
	LiveTier int
	// MeanView is the mean peerview size across the live tier at the end.
	MeanView float64
	// Reconverged reports whether every live rendezvous sees the full live
	// tier (l = LiveTier-1) after the settle window — property (2) of the
	// paper restored on the healed overlay.
	Reconverged bool
	// Merge reports the post-attrition merge phase; nil unless the spec
	// enabled IslandMerge.
	Merge *MergeStats
}

// VolatilityResult reports the full sweep.
type VolatilityResult struct {
	Spec   VolatilitySpec
	Points []VolatilityPoint
	// Steps and NetStats accumulate across points (replay contract).
	Steps    uint64
	NetStats transport.Stats
}

// attached reports whether the node's transport endpoint is still reachable
// on the simulated network (killed nodes detach).
func attached(o *deploy.Overlay, n *node.Node) bool {
	_, ok := o.Net.Lookup(n.Endpoint.Addr())
	return ok
}

// tierStats scans every deployed node for the current rendezvous tier:
// count, mean peerview size, and whether each member sees all the others.
func tierStats(o *deploy.Overlay) (live int, meanView float64, reconverged bool) {
	var members []*node.Node
	for _, list := range [][]*node.Node{o.Rdvs, o.Edges} {
		for _, n := range list {
			if n.IsRendezvous() && n.Started() && attached(o, n) {
				members = append(members, n)
			}
		}
	}
	live = len(members)
	if live == 0 {
		return 0, 0, false
	}
	sum := 0
	reconverged = true
	for _, n := range members {
		size := n.PeerView.Size()
		sum += size
		if size != live-1 {
			reconverged = false
		}
	}
	return live, float64(sum) / float64(live), reconverged
}

// edgesSettled reports the client side of reconvergence: every started,
// attached, edge-role peer holds a rendezvous lease again. A tier can look
// merged while edges are still cycling through failover (or sitting
// dormant until a tier probe wakes them); declaring the single tier before
// they re-lease — and re-push their SRDI tuples — would overstate how
// healed the overlay is.
func edgesSettled(o *deploy.Overlay) bool {
	for _, list := range [][]*node.Node{o.Rdvs, o.Edges} {
		for _, n := range list {
			if n.IsRendezvous() || !n.Started() || !attached(o, n) {
				continue
			}
			if _, ok := n.Rendezvous.ConnectedRdv(); !ok {
				return false
			}
		}
	}
	return true
}

// RunVolatility executes the sweep: one overlay per KillEvery point, same
// seed, crashing rendezvous round-robin while the searcher issues queries.
func RunVolatility(spec VolatilitySpec) (VolatilityResult, error) {
	spec = spec.withDefaults()
	if spec.R < 2 {
		return VolatilityResult{}, fmt.Errorf("experiments: volatility needs r >= 2, got %d", spec.R)
	}
	res := VolatilityResult{Spec: spec}
	for _, killEvery := range spec.KillEvery {
		pt, steps, ns, err := runVolatilityPoint(spec, killEvery)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, pt)
		res.Steps += steps
		res.NetStats.Messages += ns.Messages
		res.NetStats.Bytes += ns.Bytes
		res.NetStats.Dropped += ns.Dropped
	}
	return res, nil
}

func runVolatilityPoint(spec VolatilitySpec, killEvery time.Duration) (VolatilityPoint, uint64, transport.Stats, error) {
	pt := VolatilityPoint{KillEvery: killEvery}
	edges := make([]deploy.EdgeGroup, 0, spec.R)
	for i := 0; i < spec.R; i++ {
		edges = append(edges, deploy.EdgeGroup{AttachTo: i, Count: spec.EdgesPerRdv})
	}
	o, err := deploy.Build(deploy.Spec{
		Seed:     spec.Seed,
		NumRdv:   spec.R,
		Shards:   spec.Shards,
		Topology: topology.Chain,
		Peerview: peerview.Config{ProbeTimeoutRounds: 3},
		Lease: rendezvous.Config{
			LeaseDuration:    4 * time.Minute,
			ResponseTimeout:  10 * time.Second,
			FailoverAttempts: 4,
			SelfHeal:         true,
			IslandMerge:      spec.IslandMerge,
		},
		Discovery: discovery.DefaultConfig(),
		Edges:     edges,
	})
	if err != nil {
		return pt, 0, transport.Stats{}, err
	}
	o.OnPromotion = func(*node.Node) { pt.Promotions++ }
	if spec.IslandMerge {
		pt.Merge = &MergeStats{}
		o.OnMerge = func(*node.Node, ids.ID) { pt.Merge.Merges++ }
	}
	o.StartAll()
	publisher, searcher := o.Edges[0], o.Edges[len(o.Edges)-1]
	o.Sched.Run(20 * time.Minute) // converge views and leases

	const advCount = 10
	for k := 0; k < advCount; k++ {
		publisher.Discovery.Publish(&advertisement.Resource{
			ResID: ids.FromName(ids.KindAdv, fmt.Sprintf("vol-target-%d", k)),
			Name:  fmt.Sprintf("Vol%d", k),
		}, 0)
	}
	o.Sched.Run(o.Sched.Now() + 2*time.Minute)

	// Crash the original rendezvous tier round-robin, nobody spared. With
	// RejoinAfter > 0 each victim restarts (kill/rejoin churn); without,
	// the tier only survives through promotion.
	killed := 0
	victim := 0
	var killTick func()
	killTick = func() {
		if killed >= spec.Kills {
			return
		}
		for tries := 0; tries < spec.R; tries++ {
			n := o.Rdvs[victim%spec.R]
			victim++
			if !attached(o, n) || !n.Started() {
				continue
			}
			o.KillNode(n)
			killed++
			if spec.RejoinAfter > 0 {
				o.Sched.After(spec.RejoinAfter, func() { o.RestartNode(n) })
			}
			break
		}
		o.Sched.After(killEvery, killTick)
	}
	o.Sched.After(killEvery, killTick)

	ps, err := runQueryPhase(o, searcher, spec.Queries, advCount, "Vol")
	if err != nil {
		return pt, 0, transport.Stats{}, err
	}
	pt.Phase = ps

	if pt.Merge == nil {
		// Let detection, elections and peerview gossip settle, then read
		// the healed tier.
		o.Sched.Run(o.Sched.Now() + 20*time.Minute)
		pt.LiveTier, pt.MeanView, pt.Reconverged = tierStats(o)
	} else {
		// The kill schedule can outlast the query phase; the merge phase
		// is post-attrition by definition, so let the remaining crashes
		// land before starting the clock. Without rejoins at most R kills
		// can ever land — don't wait for a quota that cannot fill.
		for killed < spec.Kills {
			if spec.RejoinAfter <= 0 && killed >= spec.R {
				break
			}
			o.Sched.Run(o.Sched.Now() + killEvery)
		}
		// Merge phase: poll the tier until the surviving islands gossiped
		// each other into a single peerview, recording time-to-single-tier,
		// then measure discovery on the merged overlay. tierStats only
		// reads node state, so the polling cannot perturb the replay.
		start := o.Sched.Now()
		deadline := start + spec.MergeSettle
		for o.Sched.Now() < deadline {
			live, _, reconv := tierStats(o)
			if reconv && live > 0 && edgesSettled(o) {
				pt.Merge.Converged = true
				break
			}
			step := o.Sched.Now() + 30*time.Second
			if step > deadline {
				step = deadline
			}
			o.Sched.Run(step)
		}
		pt.Merge.TimeToSingleTier = o.Sched.Now() - start
		pt.LiveTier, pt.MeanView, pt.Reconverged = tierStats(o)
		ps, err := runQueryPhase(o, searcher, spec.Queries, advCount, "Vol")
		if err != nil {
			return pt, 0, transport.Stats{}, err
		}
		pt.Merge.Phase = ps
	}
	steps, ns := o.Sched.Steps(), o.Net.Stats()
	o.StopAll()
	return pt, steps, ns, nil
}
