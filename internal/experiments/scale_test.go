package experiments

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// scaleFingerprint renders the deterministic fields of a scale point —
// wall-clock measurements excluded, engine instrumentation included (window
// and exchange counts depend only on event content, so they replay too).
func scaleFingerprint(res ScaleResult) string {
	return fmt.Sprintf("steps=%d msgs=%d bytes=%d dropped=%d view=%s leased=%d windows=%d maxbusy=%d cross=%d",
		res.Steps, res.Messages, res.Bytes, res.Dropped,
		hexFloat(res.MeanView), res.Leased,
		res.Windows, res.MaxBusy, res.CrossShard)
}

// goldenScaleSpec is the pinned multi-shard scenario: four shards, a
// rendezvous tier spanning every Grid'5000 site, edges co-located with
// their rendezvous, short leases for cross-shard renewal traffic.
func goldenScaleSpec() ScaleSpec {
	return ScaleSpec{R: 18, Edges: 54, Shards: 4,
		Duration: 10 * time.Minute, Lease: 2 * time.Minute, Seed: 7}
}

// goldenScale pins the sharded engine's determinism contract on its
// default path, which since PR 9 is window-pipelined: per-pair sealing
// replaces the global barrier, so window boundaries differ from the barrier
// golden below, but the trajectory replays bit-for-bit at any GOMAXPROCS.
// The serial goldens above prove Shards=1 is byte-identical to the original
// engine. Recapture per the note at the top of golden_test.go only for
// intended model changes. (Identical to PR 8's goldenScalePipelined — the
// default flip changed which spec reaches this trajectory, not the
// trajectory itself.)
const goldenScale = "steps=8722 msgs=3036 bytes=1448039 dropped=0 view=0x1.1p+04 leased=54 windows=418 maxbusy=4 cross=1430"

func TestGoldenScaleShardedReplay(t *testing.T) {
	res, err := RunScale(goldenScaleSpec())
	if err != nil {
		t.Fatal(err)
	}
	got := scaleFingerprint(res)
	if goldenScale == "UNSET" {
		t.Fatalf("golden uninitialized; capture this:\n%s", got)
	}
	if got != goldenScale {
		t.Fatalf("sharded golden diverged:\n got %s\nwant %s", got, goldenScale)
	}
	if res.Leased != res.Spec.Edges {
		t.Fatalf("only %d/%d edges leased", res.Leased, res.Spec.Edges)
	}
}

// goldenScaleBarrier pins the opt-out global-barrier engine on the same
// scenario: byte-identical to the pre-PR-9 default-path golden (then named
// goldenScale), proving the Barrier switch reaches the exact engine that
// shipped in PR 6. Recapture per the note at the top of golden_test.go.
const goldenScaleBarrier = "steps=8722 msgs=3036 bytes=1448039 dropped=0 view=0x1.1p+04 leased=54 windows=354 maxbusy=4 cross=1430"

func TestGoldenScaleBarrierReplay(t *testing.T) {
	spec := goldenScaleSpec()
	spec.Barrier = true
	res, err := RunScale(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := scaleFingerprint(res)
	if goldenScaleBarrier == "UNSET" {
		t.Fatalf("golden uninitialized; capture this:\n%s", got)
	}
	if got != goldenScaleBarrier {
		t.Fatalf("barrier golden diverged:\n got %s\nwant %s", got, goldenScaleBarrier)
	}
	if res.Leased != res.Spec.Edges {
		t.Fatalf("only %d/%d edges leased", res.Leased, res.Spec.Edges)
	}
}

// TestScaleShardedGOMAXPROCSInvariant is the cross-GOMAXPROCS determinism
// property: the window coordinator decides barriers from event content
// alone, so the same spec must produce byte-identical stats whether shard
// windows run on one OS thread or eight. The default pipelined path makes
// the same promise with a different mechanism — drains and seals decided
// from window indices and sealed watermarks, never thread timing — so both
// it and the barrier opt-out run under the property.
func TestScaleShardedGOMAXPROCSInvariant(t *testing.T) {
	for _, barrier := range []bool{false, true} {
		spec := ScaleSpec{R: 18, Edges: 36, Shards: 8, Barrier: barrier,
			Duration: 6 * time.Minute, Lease: time.Minute, Seed: 21}
		var base string
		for _, gmp := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(gmp)
			res, err := RunScale(spec)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				t.Fatal(err)
			}
			fp := scaleFingerprint(res)
			if base == "" {
				base = fp
				if res.CrossShard == 0 {
					t.Fatal("scenario exercised no cross-shard traffic")
				}
				continue
			}
			if fp != base {
				t.Fatalf("barrier=%v GOMAXPROCS=%d diverged:\n got %s\nwant %s", barrier, gmp, fp, base)
			}
		}
	}
}

// TestScaleSerialMatchesShardsOne pins that Shards=1 through the scale
// driver uses the serial engine (no windows, no exchange machinery).
func TestScaleSerialPath(t *testing.T) {
	res, err := RunScale(ScaleSpec{R: 6, Edges: 6, Shards: 1,
		Duration: 2 * time.Minute, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 0 || res.CrossShard != 0 {
		t.Fatalf("serial run reports sharded instrumentation: %+v", res)
	}
	if res.Steps == 0 || res.Leased != 6 {
		t.Fatalf("serial scale run did not converge: %+v", res)
	}
}
