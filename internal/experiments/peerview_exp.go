// Package experiments contains one driver per table/figure of the paper's
// evaluation (§4), plus the baseline and churn extensions listed in
// DESIGN.md. Each driver deploys an overlay on the simulator, runs the
// workload, and returns the measured data in the same shape the paper
// plots.
package experiments

import (
	"time"

	"jxta/internal/deploy"
	"jxta/internal/ids"
	"jxta/internal/metrics"
	"jxta/internal/peerview"
	"jxta/internal/simnet"
	"jxta/internal/topology"
	"jxta/internal/transport"
)

// PeerviewSpec parameterizes a peerview-protocol experiment (§4.1).
type PeerviewSpec struct {
	// R is the number of rendezvous peers (the paper sweeps 10..580).
	R int
	// Topology is the bootstrap shape: chains and trees in the paper.
	Topology topology.Kind
	// Fanout for trees (default 2).
	Fanout int
	// EntryExpiry overrides PVE_EXPIRATION (zero keeps the 20 min default;
	// Figure 4 left's "tuned" run sets it beyond the experiment length).
	EntryExpiry time.Duration
	// Duration is the experiment length (60 min for most paper runs,
	// 120 min for r=580).
	Duration time.Duration
	// SampleEvery sets the l(t) sampling period (default 30 s).
	SampleEvery time.Duration
	// Seed is the master determinism seed.
	Seed int64
	// Shards partitions the simulated network across per-core shard
	// schedulers (see deploy.Spec.Shards). 0 or 1 keeps the serial engine
	// and its bit-exact golden trajectories.
	Shards int
	// Pipeline is deprecated and ignored: window pipelining is the default
	// whenever Shards > 1. Set Barrier to opt back out.
	Pipeline bool
	// Barrier opts out of window pipelining on the sharded engine and runs
	// the original global window barrier (deploy.Spec.BarrierWindows). The
	// sparse peerview workload is exactly where the barrier caps the
	// speedup bound, so the default pipelined path is the showcase axis.
	Barrier bool
}

func (s PeerviewSpec) withDefaults() PeerviewSpec {
	if s.Duration <= 0 {
		s.Duration = 60 * time.Minute
	}
	if s.SampleEvery <= 0 {
		s.SampleEvery = 30 * time.Second
	}
	return s
}

// PeerviewResult is one Figure 3 (left) / Figure 4 (left) curve plus the
// Figure 3 (right) event log of the observed rendezvous.
type PeerviewResult struct {
	Spec PeerviewSpec
	// Size is l(t) of the observed rendezvous (the middle peer of the
	// deployment order — an arbitrary non-root member, like the paper's).
	Size metrics.Series
	// MeanSize is the mean l(t) across every rendezvous, sampled on the
	// same grid ("for a same experiment, the value l of each rendezvous
	// peer belonging to S evolves in the same way").
	MeanSize metrics.Series
	// Events is the observed peer's add/remove log with first-seen
	// numbering (Figure 3 right).
	Events *metrics.EventLog
	// MaxSize is the largest l observed at the observed peer.
	MaxSize int
	// FinalSize is l at the end of the run.
	FinalSize int
	// PlateauMean averages l over the last third of the run (phase 3).
	PlateauMean float64
	// ReachedMax reports whether the observed peer ever saw l = r-1.
	ReachedMax bool
	// ReachedMaxAt is the first time l hit r-1 (the paper's t1), if ever.
	ReachedMaxAt time.Duration
	// ConsistentAtEnd reports property (2) at the end of the run: every
	// rendezvous holds l = r-1.
	ConsistentAtEnd bool
	// Steps is the number of simulator events executed — part of the
	// engine's bit-for-bit replay contract (see the golden determinism
	// test).
	Steps uint64
	// NetStats snapshots the simulated network counters at the end of the
	// run.
	NetStats transport.Stats
	// Parallel carries the sharded engine's window instrumentation when
	// Spec.Shards > 1 (zero value for serial runs).
	Parallel simnet.ParallelStats
	// NodeMetrics aggregates every peer's runtime registry at the end of
	// the run (totals over the population + sampled full snapshots). Not
	// part of the golden fingerprint, but deterministic all the same.
	NodeMetrics *NodeMetricsSummary
}

// RunPeerview executes a §4.1 peerview experiment.
func RunPeerview(spec PeerviewSpec) (PeerviewResult, error) {
	spec = spec.withDefaults()
	o, err := deploy.Build(deploy.Spec{
		Seed:           spec.Seed,
		NumRdv:         spec.R,
		Topology:       spec.Topology,
		Fanout:         spec.Fanout,
		Shards:         spec.Shards,
		BarrierWindows: spec.Barrier,
		Peerview:       peerview.Config{EntryExpiry: spec.EntryExpiry},
	})
	if err != nil {
		return PeerviewResult{}, err
	}
	res := PeerviewResult{Spec: spec, Events: metrics.NewEventLog()}

	observed := o.Rdvs[spec.R/2]
	observed.PeerView.SetListener(func(kind peerview.EventKind, peer ids.ID, at time.Duration) {
		mk := metrics.EventAdd
		if kind == peerview.EventRemove {
			mk = metrics.EventRemove
		}
		res.Events.Record(at, mk, peer)
	})
	o.StartAll()

	for t := time.Duration(0); t <= spec.Duration; t += spec.SampleEvery {
		o.Sched.Run(t)
		l := observed.PeerView.Size()
		res.Size.Add(t, float64(l))
		sum := 0
		for _, r := range o.Rdvs {
			sum += r.PeerView.Size()
		}
		res.MeanSize.Add(t, float64(sum)/float64(len(o.Rdvs)))
		if l > res.MaxSize {
			res.MaxSize = l
		}
		if l == spec.R-1 && !res.ReachedMax {
			res.ReachedMax = true
			res.ReachedMaxAt = t
		}
	}
	res.FinalSize = observed.PeerView.Size()
	res.PlateauMean = res.Size.MeanAfter(spec.Duration * 2 / 3)
	res.ConsistentAtEnd = true
	for _, r := range o.Rdvs {
		if r.PeerView.Size() != spec.R-1 {
			res.ConsistentAtEnd = false
			break
		}
	}
	res.Steps = o.Sched.Steps()
	res.NetStats = o.Net.Stats()
	if ss := o.Engine(); ss != nil {
		res.Parallel = ss.ParallelStats()
	}
	res.NodeMetrics = CollectNodeMetrics(o, 1)
	o.StopAll()
	return res, nil
}

// Fig3LeftDefaultRs are the paper's chain sizes for Figure 3 (left).
var Fig3LeftDefaultRs = []int{10, 45, 50, 80, 160, 580}

// Fig3LeftTreeRs are the paper's tree sizes for Figure 3 (left).
var Fig3LeftTreeRs = []int{160, 220, 338}

// Fig3Left runs the Figure 3 (left) family: l(t) for several r, both
// topologies, default tunables.
func Fig3Left(rs []int, topo topology.Kind, duration time.Duration, seed int64) ([]PeerviewResult, error) {
	out := make([]PeerviewResult, 0, len(rs))
	for _, r := range rs {
		d := duration
		if d <= 0 {
			// The paper ran 60 min for most sizes, ~120 min for r=580.
			d = 60 * time.Minute
			if r >= 400 {
				d = 120 * time.Minute
			}
		}
		res, err := RunPeerview(PeerviewSpec{
			R: r, Topology: topo, Duration: d, Seed: seed + int64(r),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig3Right runs the Figure 3 (right) experiment: the add/remove event
// distribution of one rendezvous' peerview at r=580 over 120 minutes.
func Fig3Right(r int, duration time.Duration, seed int64) (PeerviewResult, error) {
	if r <= 0 {
		r = 580
	}
	if duration <= 0 {
		duration = 120 * time.Minute
	}
	return RunPeerview(PeerviewSpec{R: r, Topology: topology.Chain,
		Duration: duration, Seed: seed})
}

// Fig4Left runs the Figure 4 (left) pair: r=50 with the default
// PVE_EXPIRATION versus a tuned value exceeding the experiment length.
func Fig4Left(r int, duration time.Duration, seed int64) (def, tuned PeerviewResult, err error) {
	if r <= 0 {
		r = 50
	}
	if duration <= 0 {
		duration = 60 * time.Minute
	}
	def, err = RunPeerview(PeerviewSpec{R: r, Topology: topology.Chain,
		Duration: duration, Seed: seed})
	if err != nil {
		return
	}
	tuned, err = RunPeerview(PeerviewSpec{R: r, Topology: topology.Chain,
		Duration: duration, Seed: seed, EntryExpiry: 365 * 24 * time.Hour})
	return
}
