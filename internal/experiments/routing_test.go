package experiments

import (
	"testing"
	"time"
)

// quickRoutingSpec is the small-scale bake-off the conformance and golden
// tests share: big enough that every backend routes nontrivially, small
// enough for CI.
func quickRoutingSpec() RoutingSpec {
	return RoutingSpec{
		N: 16, Keys: 6, Lookups: 12, KillFrac: 0.25,
		Converge:    12 * time.Minute,
		MaintWindow: 5 * time.Minute,
		Seed:        42,
	}
}

// TestRoutingConformance runs the identical publish/lookup/churn scenario
// against all four backends and asserts the behavioral contract each must
// honor, whatever its internals: full lookup success on a healthy overlay,
// and nonzero resilience everywhere except the repair-free static ring.
func TestRoutingConformance(t *testing.T) {
	res, err := RunRouting(quickRoutingSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d backends, want 4", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Success != pt.Lookups {
			t.Errorf("%s: healthy wave %d/%d succeeded", pt.Backend, pt.Success, pt.Lookups)
		}
		if pt.Killed == 0 {
			t.Errorf("%s: churn phase killed nobody", pt.Backend)
		}
		switch pt.Backend {
		case "flood", "kademlia", "srdi":
			// Flooding routes around holes by sheer coverage; Kademlia by
			// timeout-driven eviction; the JXTA stack by lease failover,
			// walk fallback and peerview self-healing. All must keep
			// resolving after losing a quarter of the overlay.
			if pt.ChurnSuccess == 0 {
				t.Errorf("%s: no lookup survived 25%% churn", pt.Backend)
			}
		case "chord":
			// The static ring has no repair path — the bake-off's point of
			// contrast. No floor asserted: routes through dead fingers die.
		}
		if pt.Backend == "kademlia" && pt.MaintMsgsPerMin == 0 {
			t.Errorf("kademlia: bucket refresh produced no maintenance traffic")
		}
		if pt.Backend == "srdi" && pt.MaintMsgsPerMin == 0 {
			t.Errorf("srdi: peerview/SRDI maintenance produced no traffic")
		}
	}
}

// TestRoutingBakeoffDeterminism: the full four-backend bake-off replayed
// twice in one process must be byte-identical (the same contract the golden
// replay gate enforces in CI against the pinned fingerprint).
func TestRoutingBakeoffDeterminism(t *testing.T) {
	a, err := RunRouting(quickRoutingSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRouting(quickRoutingSpec())
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := routingFingerprint(a), routingFingerprint(b)
	if fa != fb {
		t.Errorf("same-seed bake-off diverged\n first:  %s\n second: %s", fa, fb)
	}
}
