package experiments

import (
	"testing"
	"time"

	"jxta/internal/topology"
)

// The experiment drivers are exercised at reduced scale so the test suite
// stays fast; full-scale regeneration lives in cmd/jxta-bench and the root
// benchmark suite.

func TestRunPeerviewSmall(t *testing.T) {
	res, err := RunPeerview(PeerviewSpec{
		R: 10, Topology: topology.Chain, Duration: 15 * time.Minute, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSize != 9 || !res.ReachedMax || !res.ConsistentAtEnd {
		t.Fatalf("r=10 should satisfy property (2): %+v", res)
	}
	if res.Size.Len() == 0 || res.MeanSize.Len() != res.Size.Len() {
		t.Fatal("series not sampled")
	}
	if res.ReachedMaxAt <= 0 {
		t.Fatal("t1 not recorded")
	}
}

func TestRunPeerviewTreeMatchesChainBehaviour(t *testing.T) {
	// "this initial parameter has no significant influence on the peerview
	// behavior": both topologies converge for small r.
	chain, err := RunPeerview(PeerviewSpec{R: 12, Topology: topology.Chain,
		Duration: 15 * time.Minute, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := RunPeerview(PeerviewSpec{R: 12, Topology: topology.Tree,
		Duration: 15 * time.Minute, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if chain.FinalSize != 11 || tree.FinalSize != 11 {
		t.Fatalf("chain=%d tree=%d, want 11", chain.FinalSize, tree.FinalSize)
	}
}

func TestPeerviewEventsLogged(t *testing.T) {
	res, err := RunPeerview(PeerviewSpec{
		R: 8, Topology: topology.Chain, Duration: 10 * time.Minute, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	adds, _ := res.Events.Counts()
	if adds < 7 {
		t.Fatalf("only %d add events for r=8", adds)
	}
	if res.Events.DistinctPeers() != 7 {
		t.Fatalf("distinct peers = %d, want 7", res.Events.DistinctPeers())
	}
}

func TestFig4LeftTunedBeatsDefault(t *testing.T) {
	// Scaled-down Figure 4 (left): with entry expiry shorter than the run,
	// the default view fluctuates below max while the tuned one holds it.
	def, err := RunPeerview(PeerviewSpec{R: 30, Topology: topology.Chain,
		Duration: 40 * time.Minute, Seed: 4, EntryExpiry: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := RunPeerview(PeerviewSpec{R: 30, Topology: topology.Chain,
		Duration: 40 * time.Minute, Seed: 4, EntryExpiry: 365 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.FinalSize != 29 {
		t.Fatalf("tuned final = %d, want 29", tuned.FinalSize)
	}
	if def.PlateauMean >= float64(tuned.FinalSize) {
		t.Fatalf("default plateau %.1f not below tuned max %d",
			def.PlateauMean, tuned.FinalSize)
	}
}

func TestRunDiscoverySmall(t *testing.T) {
	res, err := RunDiscovery(DiscoverySpec{
		R: 5, Queries: 20, Seed: 5, Converge: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.N() != 20 || res.Timeouts != 0 {
		t.Fatalf("samples=%d timeouts=%d", res.Latency.N(), res.Timeouts)
	}
	if res.MeanMs <= 0 || res.MeanMs > 100 {
		t.Fatalf("mean latency %.1f ms implausible", res.MeanMs)
	}
}

func TestRunDiscoveryNoiseAddsOverhead(t *testing.T) {
	quiet, err := RunDiscovery(DiscoverySpec{
		R: 5, Queries: 30, Seed: 6, Converge: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := RunDiscovery(DiscoverySpec{
		R: 5, Noise: true, Queries: 30, Seed: 6, Converge: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.MeanMs <= quiet.MeanMs {
		t.Fatalf("noise did not slow discovery: %.1f vs %.1f ms",
			noisy.MeanMs, quiet.MeanMs)
	}
}

func TestRunDiscoveryRejectsBadSpec(t *testing.T) {
	if _, err := RunDiscovery(DiscoverySpec{R: 0}); err == nil {
		t.Fatal("r=0 accepted")
	}
}

func TestTable1(t *testing.T) {
	res, err := Table1(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pos != 3 {
		t.Fatalf("replica position = %d, want 3 (paper Table 1)", res.Pos)
	}
	// O(1) publish: one SRDI push + at most one replication per index
	// field (a Peer advertisement has two fields).
	if res.PublishMsgs < 1 || res.PublishMsgs > 3 {
		t.Fatalf("publish used %d messages, want 1..3 (paper: 2)", res.PublishMsgs)
	}
	// Consistent lookup: edge->rdv, rdv->replica, replica->publisher,
	// publisher->searcher = at most 4 (fewer when stages coincide).
	if res.LookupMsgs < 2 || res.LookupMsgs > 4 {
		t.Fatalf("lookup used %d messages, want 2..4 (paper: 4)", res.LookupMsgs)
	}
	if res.LatencyMs <= 0 {
		t.Fatal("lookup latency not measured")
	}
}

func TestRunBaselines(t *testing.T) {
	res, err := RunBaselines(24, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChordMeanHops <= 0 {
		t.Fatal("chord hops not measured")
	}
	// The defining contrast: flooding costs far more messages per lookup
	// than either DHT.
	if res.FloodMsgsPerOp <= res.ChordMsgsPerOp {
		t.Fatalf("flooding (%f msg/op) not costlier than chord (%f)",
			res.FloodMsgsPerOp, res.ChordMsgsPerOp)
	}
	if res.LCDHTMsgsPerOp <= 0 || res.LCDHTMsgsPerOp > 4 {
		t.Fatalf("LC-DHT msgs/op = %f, want (0, 4]", res.LCDHTMsgsPerOp)
	}
	if res.LCDHTMeanMs <= 0 || res.ChordMeanMs <= 0 || res.FloodMeanMs <= 0 {
		t.Fatalf("latencies not measured: %+v", res)
	}
}

func TestRunBaselinesBadSpec(t *testing.T) {
	if _, err := RunBaselines(1, 5, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RunBaselines(8, 0, 1); err == nil {
		t.Fatal("ops=0 accepted")
	}
}

func TestRunChurn(t *testing.T) {
	res, err := RunChurn(ChurnSpec{
		R: 12, Queries: 30, Kills: 3, KillEvery: time.Minute, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded == 0 {
		t.Fatal("no query succeeded under churn")
	}
	// Most queries should still succeed: the publisher's and searcher's
	// rendezvous survive, and replication + walking cover the rest.
	if res.Succeeded < res.Spec.Queries*2/3 {
		t.Fatalf("only %d/%d queries succeeded under churn",
			res.Succeeded, res.Spec.Queries)
	}
}

func TestRunChurnBadSpec(t *testing.T) {
	if _, err := RunChurn(ChurnSpec{R: 2}); err == nil {
		t.Fatal("r=2 accepted")
	}
}

func TestDeterministicExperiment(t *testing.T) {
	run := func() float64 {
		res, err := RunDiscovery(DiscoverySpec{
			R: 5, Queries: 10, Seed: 11, Converge: 10 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanMs
	}
	if run() != run() {
		t.Fatal("same seed produced different results")
	}
}
