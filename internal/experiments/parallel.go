package experiments

import (
	"runtime"
	"sync"
)

// Sweep runs n independent experiment points concurrently on a bounded
// worker pool. Each point owns its own simulator (simulations share
// nothing), so sweeps parallelize perfectly across cores — this is what
// makes regenerating the full Figure 4 (right) r-sweep fast on a laptop,
// standing in for the paper's fleet of physical testbed runs.
//
// run(i) produces the i-th point; results keep their index order. The first
// error (if any) is returned after every worker drains, and stops the
// dispatcher: points not yet handed to a worker never run (already-running
// points finish — a simulation cannot be usefully interrupted midway).
func Sweep(n int, run func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := run(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stopOnce.Do(func() { close(stop) })
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-stop:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// Fig4RightParallel runs the Figure 4 (right) sweep with every (r, config)
// point on its own core.
func Fig4RightParallel(rs []int, noise bool, queries int, seed int64) ([]DiscoveryResult, error) {
	if len(rs) == 0 {
		rs = Fig4RightDefaultRs
	}
	out := make([]DiscoveryResult, len(rs))
	err := Sweep(len(rs), func(i int) error {
		res, err := RunDiscovery(DiscoverySpec{R: rs[i], Noise: noise,
			Queries: queries, Seed: seed + int64(rs[i])})
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	return out, err
}

// Fig3LeftParallel runs the Figure 3 (left) family with one overlay per
// core.
func Fig3LeftParallel(specs []PeerviewSpec) ([]PeerviewResult, error) {
	out := make([]PeerviewResult, len(specs))
	err := Sweep(len(specs), func(i int) error {
		res, err := RunPeerview(specs[i])
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	return out, err
}
