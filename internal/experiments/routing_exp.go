package experiments

import (
	"fmt"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/chord"
	"jxta/internal/deploy"
	"jxta/internal/discovery"
	"jxta/internal/flood"
	"jxta/internal/ids"
	"jxta/internal/metrics"
	"jxta/internal/netmodel"
	"jxta/internal/routing"
	"jxta/internal/simnet"
	"jxta/internal/topology"
	"jxta/internal/transport"
)

// RoutingSpec parameterizes the structured-routing bake-off: the same
// publish / lookup / maintenance / churn scenario driven through each
// routing.Backend at equal scale, quantifying the §3.3 trade-off space the
// paper describes qualitatively (flooding vs. loosely-consistent DHT vs.
// structured DHTs).
type RoutingSpec struct {
	// N is the overlay size (the paper's r: every member is a rendezvous-
	// class peer).
	N int
	// Keys is how many distinct keys are published before measuring.
	Keys int
	// Lookups is the number of lookup operations per wave (one healthy
	// wave, one post-churn wave).
	Lookups int
	// KillFrac is the fraction of the overlay fail-stopped between the
	// two waves (publish originators are spared so the comparison
	// measures routing resilience, not data loss).
	KillFrac float64
	// Backends selects which overlays run; nil runs all four
	// ("flood", "srdi", "chord", "kademlia").
	Backends []string
	// Converge is the settle window after deployment (peerview phase 3
	// for SRDI, bootstrap lookups for Kademlia). Zero derives from N.
	Converge time.Duration
	// MaintWindow is the idle window over which maintenance traffic is
	// measured (default 10 minutes).
	MaintWindow time.Duration
	// Seed is the master determinism seed.
	Seed int64
}

func (s RoutingSpec) withDefaults() RoutingSpec {
	if s.Keys <= 0 {
		s.Keys = 8
	}
	if s.Lookups <= 0 {
		s.Lookups = 2 * s.Keys
	}
	if s.KillFrac == 0 {
		s.KillFrac = 0.25
	}
	if len(s.Backends) == 0 {
		s.Backends = []string{"flood", "srdi", "chord", "kademlia"}
	}
	if s.Converge <= 0 {
		if s.N <= 50 {
			s.Converge = 15 * time.Minute
		} else {
			s.Converge = 45 * time.Minute
		}
	}
	if s.MaintWindow <= 0 {
		s.MaintWindow = 10 * time.Minute
	}
	return s
}

// RoutingPoint is one backend's scorecard.
type RoutingPoint struct {
	Backend string
	N       int

	// PublishMsgsPerOp is network messages per publish, settling traffic
	// included (the LC-DHT's O(1) claim vs. Kademlia's iterative store).
	PublishMsgsPerOp float64

	// Healthy lookup wave.
	Lookups         int
	Success         int
	MeanHops        float64 // over successful lookups
	Latency         metrics.Samples
	LookupMsgsPerOp float64

	// MaintMsgsPerMin is idle-window maintenance traffic (peerview probes
	// + SRDI pushes for the JXTA stack, bucket refreshes for Kademlia,
	// zero for the static baselines).
	MaintMsgsPerMin float64

	// Post-churn lookup wave, issued by surviving originators after
	// KillFrac of the overlay fail-stops with no warning.
	Killed        int
	ChurnLookups  int
	ChurnSuccess  int
	ChurnMeanHops float64
}

// RoutingResult is the full bake-off.
type RoutingResult struct {
	Spec   RoutingSpec
	Points []RoutingPoint
}

// routingBackendErr wraps build failures with the backend name.
func routingBackendErr(name string, err error) error {
	return fmt.Errorf("experiments: routing backend %s: %w", name, err)
}

// RunRouting executes the bake-off. Each backend gets its own scheduler and
// network (message counters must not bleed across overlays); seeds derive
// from Spec.Seed plus a per-backend offset, so adding a backend to the list
// never perturbs the others.
func RunRouting(spec RoutingSpec) (RoutingResult, error) {
	spec = spec.withDefaults()
	if spec.N < 4 {
		return RoutingResult{}, fmt.Errorf("experiments: routing N=%d", spec.N)
	}
	res := RoutingResult{Spec: spec}
	for _, name := range spec.Backends {
		pt, err := runRoutingBackend(spec, name)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// backendSeedOffset gives each backend a fixed seed lane.
func backendSeedOffset(name string) int64 {
	switch name {
	case "flood":
		return 101
	case "srdi":
		return 202
	case "chord":
		return 303
	case "kademlia":
		return 404
	}
	return 999
}

func runRoutingBackend(spec RoutingSpec, name string) (RoutingPoint, error) {
	seed := spec.Seed + backendSeedOffset(name)
	var (
		b   routing.Backend
		eng simnet.Engine
		net *transport.Network
	)
	switch name {
	case "flood":
		sched := simnet.NewScheduler(seed)
		net = transport.NewNetwork(sched, netmodel.Grid5000())
		fn, err := flood.Build(sched, net, spec.N, 4)
		if err != nil {
			return RoutingPoint{}, routingBackendErr(name, err)
		}
		b, eng = routing.NewFloodBackend(fn), sched
		eng.Run(eng.Now() + time.Minute) // static graph: nothing to converge
	case "chord":
		sched := simnet.NewScheduler(seed)
		net = transport.NewNetwork(sched, netmodel.Grid5000())
		ring, err := chord.Build(sched, net, spec.N)
		if err != nil {
			return RoutingPoint{}, routingBackendErr(name, err)
		}
		b, eng = routing.NewChordBackend(ring), sched
		eng.Run(eng.Now() + time.Minute) // fingers precomputed: static
	case "kademlia":
		sched := simnet.NewScheduler(seed)
		net = transport.NewNetwork(sched, netmodel.Grid5000())
		kad, err := routing.BuildKademlia(sched, net, spec.N, routing.KadConfig{
			RefreshInterval: 2 * time.Minute,
		})
		if err != nil {
			return RoutingPoint{}, routingBackendErr(name, err)
		}
		kad.Bootstrap()
		b, eng = kad, sched
		eng.Run(eng.Now() + spec.Converge)
	case "srdi":
		sb, err := buildSRDIBackend(spec, seed)
		if err != nil {
			return RoutingPoint{}, routingBackendErr(name, err)
		}
		b, eng, net = sb, sb.o.Sched, sb.o.Net
		eng.Run(eng.Now() + spec.Converge)
	default:
		return RoutingPoint{}, fmt.Errorf("experiments: unknown routing backend %q", name)
	}

	pt := RoutingPoint{Backend: name, N: spec.N}

	// --- Publish phase: Keys keys from deterministic spread originators.
	publishers := make(map[int]bool)
	before := net.Stats().Messages
	for k := 0; k < spec.Keys; k++ {
		from := (k * 31) % spec.N
		publishers[from] = true
		b.Publish(from, routingKey(k))
	}
	eng.Run(eng.Now() + 2*time.Minute) // let replication/stores settle
	pt.PublishMsgsPerOp = float64(net.Stats().Messages-before) / float64(spec.Keys)

	// --- Healthy lookup wave. The message delta includes background
	// maintenance running inside the wave window (SRDI pushes, peerview
	// probes, bucket refreshes) — deliberately: that is each system's real
	// steady-state cost of serving lookups; the idle window below isolates
	// the maintenance-only component.
	before = net.Stats().Messages
	ok, hops, lat := runLookupWave(spec, b, eng, nil)
	pt.Lookups = spec.Lookups
	pt.Success = ok
	pt.MeanHops = hops
	pt.Latency = lat
	pt.LookupMsgsPerOp = float64(net.Stats().Messages-before) / float64(spec.Lookups)

	// --- Maintenance window: idle traffic.
	before = net.Stats().Messages
	b.Maintain()
	eng.Run(eng.Now() + spec.MaintWindow)
	pt.MaintMsgsPerMin = float64(net.Stats().Messages-before) / spec.MaintWindow.Minutes()

	// --- Churn: fail-stop KillFrac of the overlay (sparing publishers),
	// then a second wave from surviving originators.
	toKill := int(float64(spec.N) * spec.KillFrac)
	killed := make(map[int]bool)
	for i := 0; i < spec.N && len(killed) < toKill; i++ {
		victim := (i*37 + 11) % spec.N
		if publishers[victim] || killed[victim] {
			continue
		}
		killed[victim] = true
		b.Kill(victim)
	}
	pt.Killed = len(killed)
	eng.Run(eng.Now() + 30*time.Second) // deaths are silent; no grace period

	ok, hops, _ = runLookupWave(spec, b, eng, killed)
	pt.ChurnLookups = spec.Lookups
	pt.ChurnSuccess = ok
	pt.ChurnMeanHops = hops
	return pt, nil
}

func routingKey(k int) string { return fmt.Sprintf("bakeoff-key-%d", k) }

// runLookupWave issues spec.Lookups staggered lookups from live originators
// and runs the clock until every callback fired or the deadline passed.
// Returns successes, mean hops over successes, and the latency samples.
func runLookupWave(spec RoutingSpec, b routing.Backend, eng simnet.Engine, dead map[int]bool) (int, float64, metrics.Samples) {
	ok, fired, totalHops := 0, 0, 0
	var lat metrics.Samples
	for i := 0; i < spec.Lookups; i++ {
		from := (i*17 + 5) % spec.N
		for dead[from] || !b.Alive(from) {
			from = (from + 1) % spec.N
		}
		key := routingKey(i % spec.Keys)
		origin := from
		eng.After(time.Duration(i)*200*time.Millisecond, func() {
			b.Lookup(origin, key, func(r routing.Result) {
				fired++
				if r.OK {
					ok++
					totalHops += r.Hops
					lat.AddDuration(r.Latency)
				}
			})
		})
	}
	// Deadline generous enough for full-TTL floods and timeout-routed
	// Kademlia waves; callbacks that never fire count as failures.
	eng.Run(eng.Now() + time.Duration(spec.Lookups)*200*time.Millisecond + 2*time.Minute)
	mean := 0.0
	if ok > 0 {
		mean = float64(totalHops) / float64(ok)
	}
	return ok, mean, lat
}

// srdiBackend adapts the full JXTA stack — peerview, rendezvous tier, SRDI
// replication and the resolver walk — to routing.Backend. It lives here
// rather than in internal/routing because discovery imports routing (the
// Strategy seam); the adapter needs discovery and deploy.
type srdiBackend struct {
	o      *deploy.Overlay
	killed []bool
}

func buildSRDIBackend(spec RoutingSpec, seed int64) (*srdiBackend, error) {
	o, err := deploy.Build(deploy.Spec{
		Seed:      seed,
		NumRdv:    spec.N,
		Topology:  topology.Chain,
		Discovery: discovery.DefaultConfig(),
	})
	if err != nil {
		return nil, err
	}
	o.StartAll()
	return &srdiBackend{o: o, killed: make([]bool, spec.N)}, nil
}

func (s *srdiBackend) Name() string { return "srdi" }

func (s *srdiBackend) N() int { return len(s.o.Rdvs) }

func (s *srdiBackend) Alive(i int) bool { return !s.killed[i] }

// Publish stores the advertisement at rendezvous i: local index + SRDI
// replication to the replica peer (the paper's O(1) publish).
func (s *srdiBackend) Publish(from int, key string) {
	s.o.Rdvs[from].Discovery.Publish(&advertisement.Resource{
		ResID: ids.FromName(ids.KindAdv, key),
		Name:  key,
	}, 0)
}

// Lookup resolves through the LC-DHT: replica forward, then the O(r) walk
// on a miss. Hops are resolver forwards (echoed by the response).
func (s *srdiBackend) Lookup(from int, key string, cb func(routing.Result)) {
	err := s.o.Rdvs[from].Discovery.QueryRemote("Resource", "Name", key,
		func(r discovery.Result) {
			cb(routing.Result{OK: true, Hops: r.Hops, Latency: r.Elapsed})
		},
		func() { cb(routing.Result{OK: false}) })
	if err != nil {
		cb(routing.Result{OK: false})
	}
}

// Maintain is a no-op: peerview probing and SRDI pushes are timer-driven
// and already running; the maintenance window measures them directly.
func (s *srdiBackend) Maintain() {}

// Kill fail-stops rendezvous i (transport detach, no goodbye).
func (s *srdiBackend) Kill(i int) {
	if s.killed[i] {
		return
	}
	s.killed[i] = true
	s.o.KillRdv(i)
}
