package experiments

import (
	"fmt"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/deploy"
	"jxta/internal/discovery"
	"jxta/internal/ids"
	"jxta/internal/metrics"
	"jxta/internal/rendezvous"
	"jxta/internal/topology"
)

// ChurnSpec parameterizes the volatility extension the paper's conclusion
// calls for: "it would be interesting to evaluate the behaviour of the
// fall-back mechanism used for resource discovery under high volatility".
type ChurnSpec struct {
	// R is the rendezvous count.
	R int
	// KillEvery is the interval between rendezvous crashes (the churn
	// rate); victims are chosen round-robin among non-essential peers.
	KillEvery time.Duration
	// Kills bounds how many rendezvous die during the measurement.
	Kills int
	// Queries is the number of lookups issued while churn is ongoing.
	Queries int
	// Seed is the master determinism seed.
	Seed int64
}

func (s ChurnSpec) withDefaults() ChurnSpec {
	if s.KillEvery <= 0 {
		s.KillEvery = 2 * time.Minute
	}
	if s.Kills <= 0 {
		s.Kills = s.R / 4
	}
	if s.Queries <= 0 {
		s.Queries = 100
	}
	return s
}

// ChurnResult reports discovery behaviour under rendezvous churn.
type ChurnResult struct {
	Spec      ChurnSpec
	Latency   metrics.Samples
	Succeeded int
	Timeouts  int
	// WalkFraction is the share of queries needing the fallback walk —
	// expected to rise as views destabilize.
	WalkFraction float64
}

// RunChurn measures discovery while rendezvous peers crash. The publisher's
// and searcher's own rendezvous are spared (lease failover is exercised by
// dedicated integration tests; here the walk fallback is the subject).
func RunChurn(spec ChurnSpec) (ChurnResult, error) {
	spec = spec.withDefaults()
	if spec.R < 4 {
		return ChurnResult{}, fmt.Errorf("experiments: churn needs r >= 4, got %d", spec.R)
	}
	o, err := deploy.Build(deploy.Spec{
		Seed:      spec.Seed,
		NumRdv:    spec.R,
		Topology:  topology.Chain,
		Discovery: discovery.DefaultConfig(),
		Lease: rendezvous.Config{
			LeaseDuration:   5 * time.Minute,
			ResponseTimeout: 10 * time.Second,
		},
		Edges: []deploy.EdgeGroup{
			{AttachTo: 0, Count: 1, Prefix: "publisher"},
			{AttachTo: spec.R - 1, Count: 1, Prefix: "searcher"},
		},
	})
	if err != nil {
		return ChurnResult{}, err
	}
	o.StartAll()
	publisher, searcher := o.Edges[0], o.Edges[1]
	o.Sched.Run(20 * time.Minute)

	const advCount = 20
	for k := 0; k < advCount; k++ {
		publisher.Discovery.Publish(&advertisement.Resource{
			ResID: ids.FromName(ids.KindAdv, fmt.Sprintf("churn-target-%d", k)),
			Name:  fmt.Sprintf("Churn%d", k),
		}, 0)
	}
	o.Sched.Run(o.Sched.Now() + 2*time.Minute)

	res := ChurnResult{Spec: spec}
	walksBefore := totalWalks(o)

	// Kill rendezvous on a timer, round-robin over indices 1..r-2 (sparing
	// the publisher's rdv 0 and searcher's rdv r-1).
	killed := 0
	victim := 1
	var killTick func()
	killTick = func() {
		if killed >= spec.Kills {
			return
		}
		if victim >= spec.R-1 {
			victim = 1
		}
		o.KillRdv(victim)
		victim += 2 // skip around so the chain of live peers stays mixed
		killed++
		o.Sched.After(spec.KillEvery, killTick)
	}
	o.Sched.After(spec.KillEvery, killTick)

	// The kill ticker above and the query loop share the scheduler: crashes
	// land between (and during) the measured lookups.
	ps, err := runQueryPhase(o, searcher, spec.Queries, advCount, "Churn")
	if err != nil {
		return res, err
	}
	res.Latency = ps.Latency
	res.Succeeded = ps.Succeeded
	res.Timeouts = ps.Timeouts
	if spec.Queries > 0 {
		res.WalkFraction = float64(totalWalks(o)-walksBefore) / float64(spec.Queries)
	}
	o.StopAll()
	return res, nil
}
