package experiments

import (
	"testing"
)

func TestRunBandwidthSmall(t *testing.T) {
	res, err := RunBandwidth(BandwidthSpec{
		R:              3,
		Sizes:          []int{1 << 10, 64 << 10},
		VolumePerPoint: 256 << 10,
		RTTSamples:     2,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.ThroughputMBps <= 0 || pt.ElapsedMs <= 0 {
			t.Fatalf("degenerate throughput point: %+v", pt)
		}
		if pt.RTTMs <= 0 {
			t.Fatalf("degenerate RTT point: %+v", pt)
		}
		if pt.Retx != 0 {
			t.Fatalf("lossless run retransmitted %d segments", pt.Retx)
		}
	}
	// Larger messages amortize per-segment overhead: throughput must not
	// collapse as size grows (monotonicity up to noise would be too strict,
	// but the 64 KiB point should beat the 1 KiB point on this model).
	if res.Points[1].ThroughputMBps < res.Points[0].ThroughputMBps {
		t.Fatalf("throughput fell with message size: %.2f -> %.2f MB/s",
			res.Points[0].ThroughputMBps, res.Points[1].ThroughputMBps)
	}
}

func TestRunBandwidthWithLoss(t *testing.T) {
	res, err := RunBandwidth(BandwidthSpec{
		R:              3,
		Sizes:          []int{256 << 10},
		VolumePerPoint: 2 << 20, // ≥ 1 MiB with injected loss
		RTTSamples:     1,
		LossRate:       0.05,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Bytes < 1<<20 {
		t.Fatalf("moved only %d bytes", res.Points[0].Bytes)
	}
	if res.Points[0].Retx == 0 {
		t.Fatal("2% loss produced no retransmissions")
	}
}

func bandwidthOrderFingerprint(res BandwidthResult) string {
	s := ""
	for _, pt := range res.Points {
		s += hexFloat(pt.ThroughputMBps) + "|" + hexFloat(pt.RTTMs) + "|" +
			hexFloat(pt.ElapsedMs) + ";"
	}
	return s
}

func TestBandwidthReplayTwice(t *testing.T) {
	spec := BandwidthSpec{
		R:              3,
		Sizes:          []int{4 << 10, 256 << 10},
		VolumePerPoint: 512 << 10,
		RTTSamples:     2,
		LossRate:       0.01,
		Seed:           99,
	}
	a, err := RunBandwidth(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBandwidth(spec)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := bandwidthOrderFingerprint(a), bandwidthOrderFingerprint(b)
	if fa != fb || a.Steps != b.Steps || a.NetStats != b.NetStats {
		t.Fatalf("same-seed bandwidth sweep diverged:\n first:  %s steps=%d %+v\n second: %s steps=%d %+v",
			fa, a.Steps, a.NetStats, fb, b.Steps, b.NetStats)
	}
}
