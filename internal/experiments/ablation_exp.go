package experiments

import (
	"fmt"
	"time"

	"jxta/internal/deploy"
	"jxta/internal/peerview"
	"jxta/internal/topology"
)

// Ablations quantify the design choices DESIGN.md calls out: the tunables
// the paper discusses (§4.1's freshness-vs-bandwidth compromise) plus the
// implementation parameter this reproduction had to calibrate (the referral
// fan-out of the peerview gossip).

// AblationPoint is one parameter setting's steady-state outcome.
type AblationPoint struct {
	Label string
	// PlateauL is the steady-state mean view size at the observed peer.
	PlateauL float64
	// MsgsPerPeerPerMin is the network-wide peerview bandwidth cost.
	MsgsPerPeerPerMin float64
}

// AblationResult is one sweep over a single parameter.
type AblationResult struct {
	Parameter string
	R         int
	Points    []AblationPoint
}

// AblateReferrals sweeps ReferralsPerProbe — the gossip fan-out that sets
// the steady-state peerview size at large r (the calibration knob of this
// reproduction; JXTA-C's effective fan-out is not specified anywhere, so
// DESIGN.md documents the choice and this ablation justifies it).
func AblateReferrals(r int, values []int, duration time.Duration, seed int64) (AblationResult, error) {
	if len(values) == 0 {
		values = []int{1, 2, 3, 4}
	}
	res := AblationResult{Parameter: "ReferralsPerProbe", R: r}
	for _, v := range values {
		point, err := peerviewPoint(fmt.Sprintf("%d", v), r, duration, seed,
			peerview.Config{ReferralsPerProbe: v})
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// AblateInterval sweeps PEERVIEW_INTERVAL — the paper's second tuning
// suggestion ("decrease the interval of time between each iteration"),
// trading bandwidth for freshness.
func AblateInterval(r int, values []time.Duration, duration time.Duration, seed int64) (AblationResult, error) {
	if len(values) == 0 {
		values = []time.Duration{10 * time.Second, 30 * time.Second, 60 * time.Second}
	}
	res := AblationResult{Parameter: "PEERVIEW_INTERVAL", R: r}
	for _, v := range values {
		point, err := peerviewPoint(v.String(), r, duration, seed,
			peerview.Config{Interval: v})
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// AblateExpiry sweeps PVE_EXPIRATION — the paper's primary tuning
// suggestion, trading memory/staleness for completeness.
func AblateExpiry(r int, values []time.Duration, duration time.Duration, seed int64) (AblationResult, error) {
	if len(values) == 0 {
		values = []time.Duration{10 * time.Minute, 20 * time.Minute,
			40 * time.Minute, 365 * 24 * time.Hour}
	}
	res := AblationResult{Parameter: "PVE_EXPIRATION", R: r}
	for _, v := range values {
		label := v.String()
		if v > 24*time.Hour {
			label = "inf"
		}
		point, err := peerviewPoint(label, r, duration, seed,
			peerview.Config{EntryExpiry: v})
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// peerviewPoint runs one overlay with the given tunables and measures the
// steady state.
func peerviewPoint(label string, r int, duration time.Duration, seed int64, cfg peerview.Config) (AblationPoint, error) {
	if duration <= 0 {
		duration = 45 * time.Minute
	}
	o, err := deploy.Build(deploy.Spec{
		Seed:     seed,
		NumRdv:   r,
		Topology: topology.Chain,
		Peerview: cfg,
	})
	if err != nil {
		return AblationPoint{}, err
	}
	o.StartAll()
	// Steady-state window: ignore the first two thirds.
	warm := duration * 2 / 3
	o.Sched.Run(warm)
	warmMsgs := o.Net.Stats().Messages
	observed := o.Rdvs[r/2]
	sum, samples := 0.0, 0
	for t := warm; t <= duration; t += time.Minute {
		o.Sched.Run(t)
		sum += float64(observed.PeerView.Size())
		samples++
	}
	window := duration - warm
	msgs := float64(o.Net.Stats().Messages - warmMsgs)
	o.StopAll()
	return AblationPoint{
		Label:             label,
		PlateauL:          sum / float64(samples),
		MsgsPerPeerPerMin: msgs / float64(r) / window.Minutes(),
	}, nil
}

// AblateWalk contrasts discovery with and without the walk fallback — the
// LC-DHT's safety net. Disabling the walk in an inconsistent overlay turns
// replica misses into timeouts, which is exactly why JXTA ships it.
type WalkAblation struct {
	R                int
	WithWalkOK       int
	WithWalkMeanMs   float64
	WithoutWalkOK    int
	WithoutWalkMean  float64
	Queries          int
	WithoutWalkLost  int
	WithWalkTimeouts int
}

// AblateWalk measures both modes at a size where peerviews are incomplete.
func AblateWalk(r, queries int, seed int64) (WalkAblation, error) {
	res := WalkAblation{R: r, Queries: queries}
	with, err := RunDiscovery(DiscoverySpec{R: r, Queries: queries, Seed: seed})
	if err != nil {
		return res, err
	}
	res.WithWalkOK = with.Latency.N()
	res.WithWalkMeanMs = with.MeanMs
	res.WithWalkTimeouts = with.Timeouts

	without, err := RunDiscovery(DiscoverySpec{R: r, Queries: queries, Seed: seed,
		DisableWalk: true})
	if err != nil {
		return res, err
	}
	res.WithoutWalkOK = without.Latency.N()
	res.WithoutWalkMean = without.MeanMs
	res.WithoutWalkLost = without.Timeouts
	return res, nil
}
