package experiments

import (
	"testing"
	"time"

	"jxta/internal/deploy"
	"jxta/internal/rendezvous"
	"jxta/internal/socket"
	"jxta/internal/topology"
)

// Edge hibernation (PR 9) promises two things at once: a steady-state edge
// costs a fraction of its live heap, and nothing observable changes — the
// event trajectory, wire traffic and every metric replay byte-identical
// with hibernation on or off. The first block of tests proves the second
// promise the strongest way available: every golden experiment re-runs with
// hibernation forced on every overlay and must match the SAME golden
// constants, which were captured before hibernation existed. The rest cover
// the lifecycle seams (kill/restart/promote while frozen, dormant edges
// woken by tier death) and the memory claims (packed state released,
// steady-state occupancy high).

// forceHibernation arms the deploy-level hook for one test: every overlay
// built while it is set hibernates its edges regardless of spec.
func forceHibernation(t *testing.T) {
	t.Helper()
	deploy.ForceHibernate = true
	t.Cleanup(func() { deploy.ForceHibernate = false })
}

func TestHibernateGoldenPeerviewByteIdentical(t *testing.T) {
	forceHibernation(t)
	res, err := RunPeerview(PeerviewSpec{
		R: 24, Topology: topology.Chain,
		Duration: 20 * time.Minute, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peerviewFingerprint(res); got != goldenPeerview {
		t.Errorf("hibernating peerview run diverged from golden\n got:  %s\n want: %s", got, goldenPeerview)
	}
}

func TestHibernateGoldenDiscoveryByteIdentical(t *testing.T) {
	forceHibernation(t)
	res, err := RunDiscovery(DiscoverySpec{
		R: 8, Queries: 12, Seed: 42, Converge: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := discoveryFingerprint(res); got != goldenDiscovery {
		t.Errorf("hibernating discovery run diverged from golden\n got:  %s\n want: %s", got, goldenDiscovery)
	}
}

func TestHibernateGoldenBandwidthByteIdentical(t *testing.T) {
	forceHibernation(t)
	t.Setenv(socket.WindowEnvVar, "")
	res, err := RunBandwidth(BandwidthSpec{
		R:              3,
		Sizes:          []int{4 << 10, 64 << 10},
		VolumePerPoint: 512 << 10,
		RTTSamples:     2,
		LossRate:       0.01,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := bandwidthFingerprint(res); got != goldenBandwidth {
		t.Errorf("hibernating bandwidth run diverged from golden\n got:  %s\n want: %s", got, goldenBandwidth)
	}
}

func TestHibernateGoldenChurnRecoveryByteIdentical(t *testing.T) {
	forceHibernation(t)
	t.Setenv(socket.WindowEnvVar, "")
	res, err := RunChurnRecovery(RecoverySpec{
		R: 12, Kills: 4, Queries: 8, RejoinEvery: time.Minute, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := recoveryFingerprint(res); got != goldenRecovery {
		t.Errorf("hibernating churn-recovery run diverged from golden\n got:  %s\n want: %s", got, goldenRecovery)
	}
}

// TestHibernateGoldenVolatilityByteIdentical replays the full self-healing
// sweep — kills, missed-renewal detection, failover, successor election and
// in-place promotion — with every edge hibernating. Edges here get killed
// while frozen, restarted while frozen and promoted out of deep sleep, and
// the trajectory still may not move a byte.
func TestHibernateGoldenVolatilityByteIdentical(t *testing.T) {
	forceHibernation(t)
	t.Setenv(socket.WindowEnvVar, "")
	spec := VolatilitySpec{
		R: 4, EdgesPerRdv: 2,
		KillEvery: []time.Duration{90 * time.Second},
		Kills:     4, Queries: 40, Seed: 42,
	}
	attrition, err := RunVolatility(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.RejoinAfter = 3 * time.Minute
	churn, err := RunVolatility(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := volatilityFingerprint(attrition) + " || " + volatilityFingerprint(churn)
	if got != goldenVolatility {
		t.Errorf("hibernating volatility run diverged from golden\n got:  %s\n want: %s", got, goldenVolatility)
	}
}

// TestHibernateGoldenIslandMergeByteIdentical replays the island-merge
// golden with hibernation forced: tier probes and merge handshakes land on
// dormant promoted-successor islands and their frozen clients, every one a
// wake-from-packed-record, and the merge outcome is still bit-exact.
func TestHibernateGoldenIslandMergeByteIdentical(t *testing.T) {
	forceHibernation(t)
	t.Setenv(socket.WindowEnvVar, "")
	res, err := RunVolatility(VolatilitySpec{
		R: 4, EdgesPerRdv: 2,
		KillEvery: []time.Duration{90 * time.Second},
		Kills:     4, Queries: 40, Seed: 42,
		IslandMerge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Merge == nil || !pt.Merge.Converged || !pt.Reconverged {
		t.Fatalf("hibernating island merge did not converge: %+v", pt)
	}
	if got := islandMergeFingerprint(res); got != goldenIslandMerge {
		t.Errorf("hibernating island-merge run diverged from golden\n got:  %s\n want: %s", got, goldenIslandMerge)
	}
}

// TestHibernateGoldenScaleByteIdentical replays both sharded-engine goldens
// (pipelined default and barrier opt-out) with hibernation forced, and
// checks the occupancy instrumentation reports real freeze/wake cycling.
func TestHibernateGoldenScaleByteIdentical(t *testing.T) {
	forceHibernation(t)
	res, err := RunScale(goldenScaleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := scaleFingerprint(res); got != goldenScale {
		t.Errorf("hibernating sharded run diverged from golden\n got:  %s\n want: %s", got, goldenScale)
	}
	if res.Hibernating == 0 || res.HibFreezes == 0 || res.HibWakes == 0 {
		t.Errorf("forced hibernation left no trace: occupancy=%d wakes=%d freezes=%d",
			res.Hibernating, res.HibWakes, res.HibFreezes)
	}

	spec := goldenScaleSpec()
	spec.Barrier = true
	res, err = RunScale(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := scaleFingerprint(res); got != goldenScaleBarrier {
		t.Errorf("hibernating barrier run diverged from golden\n got:  %s\n want: %s", got, goldenScaleBarrier)
	}
}

// TestHibernateReplayTwiceDeterministic runs the same hibernating spec
// twice in one process: pooled records and free-list reuse may not leak one
// run's state into the next.
func TestHibernateReplayTwiceDeterministic(t *testing.T) {
	spec := ScaleSpec{R: 8, Edges: 24, Shards: 2, Hibernate: true,
		Duration: 8 * time.Minute, Lease: time.Minute, Seed: 99}
	a, err := RunScale(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScale(spec)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := scaleFingerprint(a), scaleFingerprint(b)
	if fa != fb {
		t.Errorf("hibernating replay diverged\n first:  %s\n second: %s", fa, fb)
	}
	if a.Hibernating != b.Hibernating || a.HibWakes != b.HibWakes || a.HibFreezes != b.HibFreezes {
		t.Errorf("hibernation occupancy diverged between replays: %d/%d/%d vs %d/%d/%d",
			a.Hibernating, a.HibWakes, a.HibFreezes, b.Hibernating, b.HibWakes, b.HibFreezes)
	}

	// The same spec with hibernation disabled is the third witness: the
	// trajectory may not depend on the gate at all.
	spec.NoHibernate = true
	c, err := RunScale(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fc := scaleFingerprint(c); fc != fa {
		t.Errorf("hibernation changed the trajectory\n on:  %s\n off: %s", fa, fc)
	}
	if c.Hibernating != 0 || c.HibFreezes != 0 {
		t.Errorf("NoHibernate run still hibernated: occupancy=%d freezes=%d", c.Hibernating, c.HibFreezes)
	}
}

// buildHibernatingOverlay deploys a small self-healing overlay with
// hibernation on and runs it to lease + freeze steady state.
func buildHibernatingOverlay(t *testing.T, seed int64) *deploy.Overlay {
	t.Helper()
	o, err := deploy.Build(deploy.Spec{
		Seed:      seed,
		NumRdv:    2,
		Hibernate: true,
		Topology:  topology.Chain,
		Lease: rendezvous.Config{
			LeaseDuration:    4 * time.Minute,
			ResponseTimeout:  10 * time.Second,
			FailoverAttempts: 4,
			SelfHeal:         true,
			IslandMerge:      true,
		},
		Edges: []deploy.EdgeGroup{{AttachTo: 0, Count: 3}, {AttachTo: 1, Count: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	o.StartAll()
	o.Sched.Run(10 * time.Minute)
	return o
}

// TestHibernateFreezeReleasesState checks the memory contract directly: a
// steady-state edge is frozen in every service, the rumor store's index
// maps are gone, and the RNG register is dropped — while a rendezvous peer
// never freezes.
func TestHibernateFreezeReleasesState(t *testing.T) {
	o := buildHibernatingOverlay(t, 5)
	defer o.StopAll()
	frozen := 0
	for _, e := range o.Edges {
		if _, ok := e.Rendezvous.ConnectedRdv(); !ok {
			t.Fatalf("edge %s not leased at steady state", e.Config.Name)
		}
		if !e.Hibernating() {
			continue
		}
		frozen++
		if !e.Endpoint.Frozen() || !e.Resolver.Frozen() || !e.Rendezvous.Frozen() ||
			!e.Discovery.Frozen() || !e.Pipe.Frozen() || !e.Socket.Frozen() {
			t.Errorf("edge %s hibernates but a service is still resident", e.Config.Name)
		}
		if e.Cache.Resident() {
			t.Errorf("edge %s hibernates but its cm maps are resident", e.Config.Name)
		}
		if e.Rendezvous.RumorsResident() {
			t.Errorf("edge %s hibernates but its rumor store is resident", e.Config.Name)
		}
		if rr, ok := e.Env.(interface{ RandResident() bool }); ok && rr.RandResident() {
			t.Errorf("edge %s hibernates but its RNG register is resident", e.Config.Name)
		}
		w, f := e.HibernationStats()
		if f == 0 || w >= f {
			t.Errorf("edge %s has implausible hibernation stats: wakes=%d freezes=%d", e.Config.Name, w, f)
		}
	}
	if frozen == 0 {
		t.Fatal("no edge hibernated at steady state")
	}
	for _, r := range o.Rdvs {
		if r.Hibernating() {
			t.Errorf("rendezvous %s hibernated", r.Config.Name)
		}
	}
}

// TestHibernateKillRestartPromote drives the lifecycle verbs against frozen
// edges: kill a hibernated edge, restart it (it must re-lease and freeze
// again), then promote another straight out of hibernation (it must come up
// as a live rendezvous and never freeze after).
func TestHibernateKillRestartPromote(t *testing.T) {
	o := buildHibernatingOverlay(t, 6)
	defer o.StopAll()
	victim := -1
	for i, e := range o.Edges {
		if e.Hibernating() {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no hibernated edge to kill")
	}
	e := o.Edges[victim]
	o.KillEdge(victim)
	// A dead node is maximally quiescent: Kill settles on the way out, so
	// the corpse freezes too — killed populations cost packed records, not
	// live maps.
	if !e.Hibernating() {
		t.Fatal("killed edge did not freeze-dry")
	}
	o.Sched.Run(o.Sched.Now() + time.Minute)
	o.RestartEdge(victim)
	o.Sched.Run(o.Sched.Now() + 8*time.Minute)
	if _, ok := e.Rendezvous.ConnectedRdv(); !ok {
		t.Fatal("restarted edge did not re-lease")
	}
	if !e.Hibernating() {
		t.Fatal("restarted edge did not hibernate again at steady state")
	}

	pi := -1
	for i, p := range o.Edges {
		if i != victim && p.Hibernating() {
			pi = i
			break
		}
	}
	if pi < 0 {
		t.Fatal("no hibernated edge to promote")
	}
	p := o.Edges[pi]
	p.PromoteToRendezvous()
	if !p.IsRendezvous() {
		t.Fatal("promotion out of hibernation failed")
	}
	if p.Hibernating() {
		t.Fatal("promoted rendezvous still reports hibernating")
	}
	o.Sched.Run(o.Sched.Now() + 8*time.Minute)
	if p.Hibernating() {
		t.Fatal("rendezvous froze after promotion")
	}
	w, _ := p.HibernationStats()
	if w == 0 {
		t.Fatal("promotion did not register as a wake")
	}
}

// TestHibernateDormantEdgesWakeOnTierDeath kills the entire rendezvous tier
// under a population of deeply hibernated edges: every edge must wake on
// its own missed-renewal timer, run failover, and heal the overlay through
// promotion — proving the freeze never disables the self-healing machinery
// or loses the packed alternates it needs.
func TestHibernateDormantEdgesWakeOnTierDeath(t *testing.T) {
	o := buildHibernatingOverlay(t, 7)
	defer o.StopAll()
	for _, e := range o.Edges {
		if !e.Hibernating() {
			t.Fatalf("edge %s not hibernating before tier death", e.Config.Name)
		}
	}
	o.KillRdv(0)
	o.KillRdv(1)
	o.Sched.Run(o.Sched.Now() + 30*time.Minute)
	live := 0
	for _, e := range o.Edges {
		if e.IsRendezvous() {
			live++
		}
	}
	if live == 0 {
		t.Fatal("no hibernated edge promoted after tier death")
	}
	leased := 0
	for _, e := range o.Edges {
		if e.IsRendezvous() {
			continue
		}
		if _, ok := e.Rendezvous.ConnectedRdv(); ok {
			leased++
		}
		w, _ := e.HibernationStats()
		if w == 0 {
			t.Errorf("edge %s slept through the tier death", e.Config.Name)
		}
	}
	if leased == 0 {
		t.Fatal("no surviving edge re-leased onto the promoted tier")
	}
}
