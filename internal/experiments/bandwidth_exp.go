package experiments

import (
	"fmt"
	"io"
	"time"

	"jxta/internal/deploy"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/netmodel"
	"jxta/internal/node"
	"jxta/internal/peerview"
	"jxta/internal/pipe"
	"jxta/internal/socket"
	"jxta/internal/topology"
	"jxta/internal/transport"
)

// BandwidthSpec parameterizes the streaming benchmark family: throughput
// vs. message size and round-trip latency over the reliable socket layer —
// the measurements the JXTA research group's companion benchmarks run
// against the real stack, here over the simulated Grid'5000 substrate.
type BandwidthSpec struct {
	// R is the rendezvous count (default 4). The endpoints sit on the
	// first and last rendezvous' sites, so streams cross the WAN model.
	R int
	// Sizes are the per-message payload sizes swept (default 1 KiB–1 MiB
	// in powers of four).
	Sizes []int
	// VolumePerPoint is how many bytes each throughput point transfers
	// (default 2 MiB; the message count per point is VolumePerPoint/size).
	VolumePerPoint int
	// RTTSamples is the number of ping-pong exchanges averaged per size
	// (default 5).
	RTTSamples int
	// LossRate injects message loss into the network model (0 = lossless).
	LossRate float64
	// Socket tunes the stream layer (zero = defaults).
	Socket socket.Config
	// Seed is the master determinism seed.
	Seed int64
}

func (s BandwidthSpec) withDefaults() BandwidthSpec {
	if s.R <= 0 {
		s.R = 4
	}
	if len(s.Sizes) == 0 {
		s.Sizes = BandwidthDefaultSizes
	}
	if s.VolumePerPoint <= 0 {
		s.VolumePerPoint = 2 << 20
	}
	if s.RTTSamples <= 0 {
		s.RTTSamples = 5
	}
	return s
}

// BandwidthDefaultSizes is the default message-size sweep (1 KiB–1 MiB).
var BandwidthDefaultSizes = []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// BandwidthPoint is one message size's measurements.
type BandwidthPoint struct {
	// SizeBytes is the per-message payload size.
	SizeBytes int
	// Messages is how many messages of that size were streamed.
	Messages int
	// Bytes is the total payload volume moved.
	Bytes int
	// ElapsedMs is the virtual time from first write to receiver EOF.
	ElapsedMs float64
	// ThroughputMBps is Bytes over ElapsedMs in MB/s (10^6 bytes).
	ThroughputMBps float64
	// RTTMs is the mean round-trip time of RTTSamples echoed messages of
	// this size.
	RTTMs float64
	// Retx counts retransmitted segments during the throughput transfer.
	Retx uint64
}

// BandwidthResult is one full sweep.
type BandwidthResult struct {
	Spec   BandwidthSpec
	Points []BandwidthPoint
	// Steps and NetStats extend the engine's replay contract to the
	// streaming subsystem: a fixed seed must reproduce them bit-for-bit.
	Steps    uint64
	NetStats transport.Stats
}

// RunBandwidth executes the sweep on the simulated Grid'5000 model: for
// each message size, a bulk stream (throughput) and a ping-pong exchange
// (RTT) between edge peers on the overlay's first and last rendezvous.
func RunBandwidth(spec BandwidthSpec) (BandwidthResult, error) {
	spec = spec.withDefaults()
	model := netmodel.Grid5000()
	model.LossRate = spec.LossRate
	o, err := deploy.Build(deploy.Spec{
		Seed:     spec.Seed,
		Model:    model,
		NumRdv:   spec.R,
		Topology: topology.Chain,
		Socket:   spec.Socket,
		Edges: []deploy.EdgeGroup{
			{AttachTo: 0, Count: 1, Prefix: "server"},
			{AttachTo: spec.R - 1, Count: 1, Prefix: "client"},
		},
	})
	if err != nil {
		return BandwidthResult{}, err
	}
	o.StartAll()
	server, client := o.Edges[0], o.Edges[1]
	o.Sched.Run(12 * time.Minute) // converge peerviews + leases

	res := BandwidthResult{Spec: spec}

	// Bulk sink: every accepted stream is drained; the sink records the
	// virtual completion time when it sees EOF.
	var sinkDone bool
	var sinkFinishedAt time.Duration
	var sinkBytes int
	sinkAdv := pipe.NewPipeAdv(server.ID, "bw-sink")
	if _, err := server.Socket.Listen(sinkAdv, func(c *socket.Conn) {
		buf := make([]byte, 64<<10)
		drain := func() {
			for {
				n, rerr := c.Read(buf)
				sinkBytes += n
				if rerr == io.EOF {
					sinkDone = true
					sinkFinishedAt = o.Sched.Now()
					return
				}
				if rerr != nil || n == 0 {
					return
				}
			}
		}
		c.OnReadable(drain)
	}); err != nil {
		return res, err
	}
	// Echo service for the RTT measurement.
	echoAdv := pipe.NewPipeAdv(server.ID, "bw-echo")
	if _, err := server.Socket.Listen(echoAdv, func(c *socket.Conn) {
		echoPump(c)
	}); err != nil {
		return res, err
	}
	o.Sched.Run(o.Sched.Now() + time.Minute) // pipe advertisement push

	for _, size := range spec.Sizes {
		pt := BandwidthPoint{SizeBytes: size}
		pt.Messages = spec.VolumePerPoint / size
		if pt.Messages < 1 {
			pt.Messages = 1
		}
		pt.Bytes = pt.Messages * size

		// --- Throughput: stream Messages payloads of Size bytes. ---
		conn, err := dialSim(o, client, sinkAdv.PipeID)
		if err != nil {
			return res, fmt.Errorf("experiments: bandwidth dial (size %d): %w", size, err)
		}
		sinkDone, sinkBytes = false, 0
		retxBefore := client.Socket.Stats.SegmentsRetx
		payload := deterministicPayload(size)
		start := o.Sched.Now()
		remaining := pt.Messages
		// A partially written message continues from its offset on the next
		// OnWritable, so track the in-flight remainder explicitly.
		var pending []byte
		writeMsgs := func() {
			for {
				if len(pending) == 0 {
					if remaining == 0 {
						conn.Close()
						return
					}
					remaining--
					pending = payload
				}
				for len(pending) > 0 {
					n, werr := conn.Write(pending)
					if werr != nil {
						return
					}
					if n == 0 {
						return // window full; OnWritable resumes
					}
					pending = pending[n:]
				}
			}
		}
		conn.OnWritable(writeMsgs)
		writeMsgs()
		deadline := o.Sched.Now() + 4*time.Hour
		for !sinkDone && o.Sched.Now() < deadline {
			o.Sched.Run(o.Sched.Now() + 100*time.Millisecond)
		}
		if !sinkDone {
			return res, fmt.Errorf("experiments: bandwidth transfer stalled (size %d: %d/%d bytes)",
				size, sinkBytes, pt.Bytes)
		}
		if sinkBytes != pt.Bytes {
			return res, fmt.Errorf("experiments: bandwidth transfer lost data (size %d: %d/%d bytes)",
				size, sinkBytes, pt.Bytes)
		}
		elapsed := sinkFinishedAt - start
		pt.ElapsedMs = float64(elapsed) / float64(time.Millisecond)
		if elapsed > 0 {
			pt.ThroughputMBps = float64(pt.Bytes) / 1e6 / elapsed.Seconds()
		}
		pt.Retx = client.Socket.Stats.SegmentsRetx - retxBefore

		// --- RTT: ping-pong RTTSamples messages of Size bytes. ---
		echo, err := dialSim(o, client, echoAdv.PipeID)
		if err != nil {
			return res, fmt.Errorf("experiments: bandwidth echo dial (size %d): %w", size, err)
		}
		var rttSum time.Duration
		for s := 0; s < spec.RTTSamples; s++ {
			got := 0
			var finishedAt time.Duration
			buf := make([]byte, 64<<10)
			t0 := o.Sched.Now()
			echo.OnReadable(func() {
				for {
					n, rerr := echo.Read(buf)
					got += n
					if got >= size && finishedAt == 0 {
						finishedAt = o.Sched.Now()
					}
					if rerr != nil || n == 0 {
						return
					}
				}
			})
			rest := payload
			echo.OnWritable(func() {
				for len(rest) > 0 {
					n, werr := echo.Write(rest)
					if werr != nil || n == 0 {
						return
					}
					rest = rest[n:]
				}
			})
			for len(rest) > 0 {
				n, werr := echo.Write(rest)
				if werr != nil {
					return res, fmt.Errorf("experiments: echo write: %w", werr)
				}
				rest = rest[n:]
				if n == 0 {
					break
				}
			}
			rttDeadline := o.Sched.Now() + time.Hour
			for got < size && o.Sched.Now() < rttDeadline {
				o.Sched.Run(o.Sched.Now() + 10*time.Millisecond)
			}
			if got < size {
				return res, fmt.Errorf("experiments: echo stalled (size %d sample %d)", size, s)
			}
			rttSum += finishedAt - t0
		}
		echo.Close()
		o.Sched.Run(o.Sched.Now() + 5*time.Second) // drain teardown
		pt.RTTMs = float64(rttSum) / float64(spec.RTTSamples) / float64(time.Millisecond)

		res.Points = append(res.Points, pt)
	}
	res.Steps = o.Sched.Steps()
	res.NetStats = o.Net.Stats()
	o.StopAll()
	return res, nil
}

// dialSim dials a pipe and pumps virtual time until the handshake settles.
// Resolution itself is fire-and-forget discovery traffic, so under injected
// loss a whole attempt can evaporate; a few retries make the benchmark
// robust without masking stream-layer bugs (the stream has its own
// retransmission).
func dialSim(o *deploy.Overlay, client *node.Node, pipeID ids.ID) (*socket.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		var conn *socket.Conn
		var dialErr error
		client.Socket.Dial(pipeID, func(c *socket.Conn, err error) {
			conn, dialErr = c, err
		})
		deadline := o.Sched.Now() + 2*time.Minute
		for conn == nil && dialErr == nil && o.Sched.Now() < deadline {
			o.Sched.Run(o.Sched.Now() + 10*time.Millisecond)
		}
		if conn != nil {
			return conn, nil
		}
		lastErr = dialErr
		if lastErr == nil {
			lastErr = fmt.Errorf("experiments: dial timed out")
		}
	}
	return nil, lastErr
}

// echoPump wires a backpressure-correct echo loop onto a connection: bytes
// the send window cannot take yet are parked in a pending buffer and
// flushed on OnWritable before more input is read, so nothing is dropped —
// unread input simply accumulates in the receive buffer and throttles the
// remote sender through the advertised window.
func echoPump(c *socket.Conn) {
	buf := make([]byte, 64<<10)
	var pending []byte
	var pump func()
	pump = func() {
		for {
			for len(pending) > 0 {
				n, err := c.Write(pending)
				if err != nil {
					return
				}
				if n == 0 {
					return // window full; OnWritable resumes
				}
				pending = pending[n:]
			}
			n, err := c.Read(buf)
			if n > 0 {
				pending = append([]byte(nil), buf[:n]...)
				continue
			}
			if err != nil || n == 0 {
				return
			}
		}
	}
	c.OnReadable(pump)
	c.OnWritable(pump)
}

// deterministicPayload builds a position-dependent payload of n bytes.
func deterministicPayload(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*131 + i/257)
	}
	return out
}

// --- Live pass: the same measurement over real loopback TCP ---

// LiveBandwidthPoint is one wall-clock measurement over transport.TCP.
type LiveBandwidthPoint struct {
	SizeBytes      int
	Messages       int
	Bytes          int
	ElapsedMs      float64
	ThroughputMBps float64
	RTTMs          float64
}

// RunBandwidthLive repeats the throughput/RTT sweep over real localhost TCP
// transports with wall-clock envs — proving the stream layer performs
// outside the simulator. Results are inherently machine-dependent and are
// therefore kept out of the deterministic experiment summaries unless
// explicitly requested.
func RunBandwidthLive(sizes []int, volumePerPoint, rttSamples int) ([]LiveBandwidthPoint, error) {
	if len(sizes) == 0 {
		sizes = BandwidthDefaultSizes
	}
	if volumePerPoint <= 0 {
		volumePerPoint = 8 << 20
	}
	if rttSamples <= 0 {
		rttSamples = 20
	}
	newPeer := func(name string, role node.Role, seeds []peerview.Seed, seed int64) (*node.Node, *env.Real, *transport.TCP, error) {
		tr, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		e := env.NewReal(name, seed)
		var n *node.Node
		e.Locked(func() {
			n = node.New(e, tr, node.Config{Name: name, Role: role, Seeds: seeds})
			n.Start()
		})
		return n, e, tr, nil
	}
	rdv, rdvEnv, rdvTr, err := newPeer("rdv", node.Rendezvous, nil, 1)
	if err != nil {
		return nil, err
	}
	defer func() { rdvEnv.Locked(func() { rdv.Stop() }); rdvTr.Close() }()
	seed := peerview.Seed{ID: rdv.ID, Addr: rdvTr.Addr()}
	srv, srvEnv, srvTr, err := newPeer("server", node.Edge, []peerview.Seed{seed}, 2)
	if err != nil {
		return nil, err
	}
	defer func() { srvEnv.Locked(func() { srv.Stop() }); srvTr.Close() }()
	cli, cliEnv, cliTr, err := newPeer("client", node.Edge, []peerview.Seed{seed}, 3)
	if err != nil {
		return nil, err
	}
	defer func() { cliEnv.Locked(func() { cli.Stop() }); cliTr.Close() }()

	waitUntil := func(timeout time.Duration, cond func() bool) bool {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return false
	}
	ok := waitUntil(10*time.Second, func() bool {
		a, b := false, false
		srvEnv.Locked(func() { _, a = srv.Rendezvous.ConnectedRdv() })
		cliEnv.Locked(func() { _, b = cli.Rendezvous.ConnectedRdv() })
		return a && b
	})
	if !ok {
		return nil, fmt.Errorf("experiments: live peers never leased")
	}

	sinkAdv := pipe.NewPipeAdv(srv.ID, "bw-sink")
	sinkBytes, sinkDone := 0, false
	srvEnv.Locked(func() {
		srv.Socket.Listen(sinkAdv, func(c *socket.Conn) {
			buf := make([]byte, 64<<10)
			drain := func() {
				for {
					n, rerr := c.Read(buf)
					sinkBytes += n
					if rerr == io.EOF {
						sinkDone = true
						return
					}
					if rerr != nil || n == 0 {
						return
					}
				}
			}
			c.OnReadable(drain)
		})
		echoAdv := pipe.NewPipeAdv(srv.ID, "bw-echo")
		srv.Socket.Listen(echoAdv, func(c *socket.Conn) {
			echoPump(c)
		})
	})
	time.Sleep(300 * time.Millisecond) // SRDI push

	dialLive := func(name string) (*socket.Conn, error) {
		adv := pipe.NewPipeAdv(srv.ID, name)
		ch := make(chan *socket.Conn, 1)
		errCh := make(chan error, 1)
		cliEnv.Locked(func() {
			cli.Socket.Dial(adv.PipeID, func(c *socket.Conn, err error) {
				if err != nil {
					errCh <- err
					return
				}
				ch <- c
			})
		})
		select {
		case c := <-ch:
			return c, nil
		case err := <-errCh:
			return nil, err
		case <-time.After(15 * time.Second):
			return nil, fmt.Errorf("experiments: live dial timed out")
		}
	}

	var out []LiveBandwidthPoint
	for _, size := range sizes {
		pt := LiveBandwidthPoint{SizeBytes: size}
		pt.Messages = volumePerPoint / size
		if pt.Messages < 1 {
			pt.Messages = 1
		}
		pt.Bytes = pt.Messages * size
		payload := deterministicPayload(size)

		conn, err := dialLive("bw-sink")
		if err != nil {
			return nil, err
		}
		srvEnv.Locked(func() { sinkBytes, sinkDone = 0, false })
		start := time.Now()
		for m := 0; m < pt.Messages; m++ {
			rest := payload
			for len(rest) > 0 {
				var n int
				var werr error
				cliEnv.Locked(func() { n, werr = conn.Write(rest) })
				if werr != nil {
					return nil, fmt.Errorf("experiments: live write: %w", werr)
				}
				rest = rest[n:]
				if n == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}
		cliEnv.Locked(func() { conn.Close() })
		if !waitUntil(60*time.Second, func() bool {
			done := false
			srvEnv.Locked(func() { done = sinkDone })
			return done
		}) {
			return nil, fmt.Errorf("experiments: live transfer stalled (size %d)", size)
		}
		elapsed := time.Since(start)
		pt.ElapsedMs = float64(elapsed) / float64(time.Millisecond)
		if elapsed > 0 {
			pt.ThroughputMBps = float64(pt.Bytes) / 1e6 / elapsed.Seconds()
		}

		echo, err := dialLive("bw-echo")
		if err != nil {
			return nil, err
		}
		var rttSum time.Duration
		for s := 0; s < rttSamples; s++ {
			got := 0
			buf := make([]byte, 64<<10)
			cliEnv.Locked(func() {
				echo.OnReadable(func() {
					for {
						n, rerr := echo.Read(buf)
						got += n
						if rerr != nil || n == 0 {
							return
						}
					}
				})
			})
			t0 := time.Now()
			rest := payload
			for len(rest) > 0 {
				var n int
				var werr error
				cliEnv.Locked(func() { n, werr = echo.Write(rest) })
				if werr != nil {
					return nil, fmt.Errorf("experiments: live echo write: %w", werr)
				}
				rest = rest[n:]
				if n == 0 {
					time.Sleep(time.Millisecond)
				}
			}
			if !waitUntil(30*time.Second, func() bool {
				g := 0
				cliEnv.Locked(func() { g = got })
				return g >= size
			}) {
				return nil, fmt.Errorf("experiments: live echo stalled (size %d)", size)
			}
			rttSum += time.Since(t0)
		}
		cliEnv.Locked(func() { echo.Close() })
		pt.RTTMs = float64(rttSum) / float64(rttSamples) / float64(time.Millisecond)
		out = append(out, pt)
	}
	return out, nil
}
