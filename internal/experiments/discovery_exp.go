package experiments

import (
	"fmt"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/deploy"
	"jxta/internal/discovery"
	"jxta/internal/endpoint"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/metrics"
	"jxta/internal/rendezvous"
	"jxta/internal/resolver"
	"jxta/internal/topology"
	"jxta/internal/transport"
)

// DiscoverySpec parameterizes one point of the Figure 4 (right) sweep.
type DiscoverySpec struct {
	// R is the rendezvous count.
	R int
	// Noise enables configuration B: Noisers edge peers attached to
	// NoiseRdvs rendezvous, each publishing FakeAdvs advertisements.
	Noise     bool
	Noisers   int // default 50
	NoiseRdvs int // default 5
	FakeAdvs  int // default 100 (f in the paper; 50*100 = 5000 total)
	// Queries is the number of consecutive discovery operations (paper:
	// 100), each followed by a searcher cache flush.
	Queries int
	// Advertisements is how many distinct advertisements the publisher
	// publishes; queries cycle over them. The paper used a single
	// advertisement, which makes the walk distance one random draw; using
	// several (default 20) averages the LC-DHT rank mismatch so the r-sweep
	// curve is statistically meaningful. EXPERIMENTS.md records this
	// substitution.
	Advertisements int
	// DisableWalk turns off the LC-DHT fallback walk (ablation only).
	DisableWalk bool
	// Converge is how long to let peerviews settle before measuring
	// ("jobs delay their execution after local peerviews entered phase 3",
	// i.e. ~2x PVE_EXPIRATION). Zero derives it from r.
	Converge time.Duration
	// Shards partitions the simulated network across per-core shard
	// schedulers (see deploy.Spec.Shards). 0 or 1 keeps the serial engine;
	// results are deterministic per (Seed, Shards).
	Shards int
	// Seed is the master determinism seed.
	Seed int64
}

func (s DiscoverySpec) withDefaults() DiscoverySpec {
	if s.Noisers <= 0 {
		s.Noisers = 50
	}
	if s.NoiseRdvs <= 0 {
		s.NoiseRdvs = 5
	}
	if s.FakeAdvs <= 0 {
		s.FakeAdvs = 100
	}
	if s.Queries <= 0 {
		s.Queries = 100
	}
	if s.Advertisements <= 0 {
		s.Advertisements = 20
	}
	if s.Converge <= 0 {
		// Small overlays stabilize quickly; large ones need the paper's
		// phase-3 wait (~2x PVE_EXPIRATION = 40 min).
		if s.R <= 50 {
			s.Converge = 15 * time.Minute
		} else {
			s.Converge = 45 * time.Minute
		}
	}
	return s
}

// DiscoveryResult is one point of Figure 4 (right).
type DiscoveryResult struct {
	Spec DiscoverySpec
	// Latency collects the per-query discovery times (ms).
	Latency metrics.Samples
	// MeanMs is the average time to discover the advertisement — the
	// figure's y axis.
	MeanMs float64
	// Timeouts counts queries that never completed.
	Timeouts int
	// WalkFraction is the share of measured queries that needed the O(r)
	// walk fallback (0 when property (2) holds).
	WalkFraction float64
	// Steps is the number of simulator events executed — part of the
	// engine's bit-for-bit replay contract (see the golden determinism
	// test).
	Steps uint64
	// NetStats snapshots the simulated network counters at the end of the
	// run.
	NetStats transport.Stats
}

// RunDiscovery executes one §4.2 benchmark point: a publisher edge on the
// first rendezvous, a searcher edge on the last, optional noisers, then
// Queries consecutive lookups with a cache flush after each.
func RunDiscovery(spec DiscoverySpec) (DiscoveryResult, error) {
	spec = spec.withDefaults()
	if spec.R < 1 {
		return DiscoveryResult{}, fmt.Errorf("experiments: r=%d", spec.R)
	}
	edges := []deploy.EdgeGroup{
		{AttachTo: 0, Count: 1, Prefix: "publisher"},
		{AttachTo: spec.R - 1, Count: 1, Prefix: "searcher"},
	}
	if spec.Noise {
		// Noisers spread over the first NoiseRdvs rendezvous ("50 edge
		// peers will connect to 5 rendezvous peers amongst the r
		// available").
		nr := spec.NoiseRdvs
		if nr > spec.R {
			nr = spec.R
		}
		per := spec.Noisers / nr
		extra := spec.Noisers % nr
		for i := 0; i < nr; i++ {
			count := per
			if i < extra {
				count++
			}
			if count > 0 {
				edges = append(edges, deploy.EdgeGroup{
					AttachTo: i * spec.R / nr,
					Count:    count,
					Prefix:   fmt.Sprintf("noiser%d-", i),
				})
			}
		}
	}
	discoCfg := discovery.DefaultConfig() // enables the SRDI scan-cost model
	discoCfg.DisableWalk = spec.DisableWalk
	o, err := deploy.Build(deploy.Spec{
		Seed:      spec.Seed,
		NumRdv:    spec.R,
		Shards:    spec.Shards,
		Topology:  topology.Chain,
		Discovery: discoCfg,
		Edges:     edges,
	})
	if err != nil {
		return DiscoveryResult{}, err
	}
	o.StartAll()
	publisher, searcher := o.Edges[0], o.Edges[1]

	// "Publishing and searching jobs delay their execution time after that
	// local peerviews of rendezvous peers entered in their phase 3": wait
	// for the peerviews to settle, then publish, then let the SRDI pushes
	// and replications land before measuring.
	o.Sched.Run(spec.Converge)
	for k := 0; k < spec.Advertisements; k++ {
		publisher.Discovery.Publish(&advertisement.Resource{
			ResID: ids.FromName(ids.KindAdv, fmt.Sprintf("target-%d", k)),
			Name:  fmt.Sprintf("Test%d", k),
		}, 0)
	}
	if spec.Noise {
		for ni, noiser := range o.Edges[2:] {
			for f := 0; f < spec.FakeAdvs; f++ {
				name := fmt.Sprintf("fake-%d-%d", ni, f)
				noiser.Discovery.Publish(&advertisement.Resource{
					ResID: ids.FromName(ids.KindAdv, name),
					Name:  name,
				}, 0)
			}
		}
	}
	o.Sched.Run(o.Sched.Now() + 2*time.Minute)

	res := DiscoveryResult{Spec: spec}
	walksBefore := totalWalks(o)

	// The measurement loop runs inside the simulation: each response (or
	// timeout) flushes the cache and triggers the next query.
	done := false
	var runQuery func(i int)
	runQuery = func(i int) {
		if i >= spec.Queries {
			done = true
			o.Sched.Halt()
			return
		}
		// A query may receive duplicate responses (walk + replica paths
		// both finding the publisher); the chain must advance exactly once
		// per query.
		advanced := false
		next := func() {
			if advanced {
				return
			}
			advanced = true
			searcher.Discovery.FlushCache()
			runQuery(i + 1)
		}
		err := searcher.Discovery.Query("Resource", "Name",
			fmt.Sprintf("Test%d", i%spec.Advertisements),
			func(r discovery.Result) {
				if !advanced {
					res.Latency.AddDuration(r.Elapsed)
				}
				next()
			},
			func() {
				if !advanced {
					res.Timeouts++
				}
				next()
			})
		if err != nil {
			res.Timeouts++
			searcher.Env.After(time.Second, func() { runQuery(i + 1) })
		}
	}
	o.Sched.After(0, func() { runQuery(0) })
	// Generous horizon: queries early-halt the scheduler when finished.
	o.Sched.Run(o.Sched.Now() + 4*time.Hour)
	if !done {
		return res, fmt.Errorf("experiments: discovery loop did not finish (r=%d, %d samples, %d timeouts)",
			spec.R, res.Latency.N(), res.Timeouts)
	}
	res.MeanMs = res.Latency.Mean()
	if spec.Queries > 0 {
		res.WalkFraction = float64(totalWalks(o)-walksBefore) / float64(spec.Queries)
	}
	res.Steps = o.Sched.Steps()
	res.NetStats = o.Net.Stats()
	o.StopAll()
	return res, nil
}

func totalWalks(o *deploy.Overlay) uint64 {
	var walks uint64
	for _, r := range o.Rdvs {
		walks += r.Discovery.Stats.WalksStarted
	}
	return walks
}

// Fig4RightDefaultRs are the sweep points of Figure 4 (right).
var Fig4RightDefaultRs = []int{5, 10, 25, 50, 75, 100, 150, 200}

// Fig4Right runs the full sweep for one configuration (A: noise=false,
// B: noise=true).
func Fig4Right(rs []int, noise bool, queries int, seed int64) ([]DiscoveryResult, error) {
	if len(rs) == 0 {
		rs = Fig4RightDefaultRs
	}
	out := make([]DiscoveryResult, 0, len(rs))
	for _, r := range rs {
		res, err := RunDiscovery(DiscoverySpec{R: r, Noise: noise,
			Queries: queries, Seed: seed + int64(r)})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Table1 reproduces the §3.3 worked example programmatically: the replica
// position for the paper's literal numbers and a live 6-rendezvous overlay
// exercising the full publish/lookup path of Figure 2.
type Table1Result struct {
	// Pos is ReplicaPos(116, 200, 6) — the paper computes 3 (peer R4).
	Pos int
	// PublishMsgs and LookupMsgs count the messages of the two operations
	// over a converged consistent overlay (paper: 2 and 4).
	PublishMsgs int
	LookupMsgs  int
	// LatencyMs is the measured single-lookup latency.
	LatencyMs float64
}

// Table1 runs the worked example.
func Table1(seed int64) (Table1Result, error) {
	res := Table1Result{Pos: discovery.ReplicaPos(116, 200, 6)}
	o, err := deploy.Build(deploy.Spec{
		Seed:     seed,
		NumRdv:   6,
		Topology: topology.Chain,
		Edges: []deploy.EdgeGroup{
			{AttachTo: 0, Count: 1, Prefix: "e1-"},
			{AttachTo: 1, Count: 1, Prefix: "e2-"},
		},
	})
	if err != nil {
		return res, err
	}
	o.StartAll()
	o.Sched.Run(15 * time.Minute) // small overlay: property (2) holds
	e1, e2 := o.Edges[0], o.Edges[1]

	// Count publish messages: the SRDI push and its replication only.
	res.PublishMsgs = countMessages(o, func(m *message.Message) bool {
		return endpoint.ServiceOf(m) == discovery.SRDIService
	}, func() {
		e1.Discovery.Publish(&advertisement.Peer{PeerID: e1.ID, Name: "Test"}, 0)
		o.Sched.Run(o.Sched.Now() + 30*time.Second)
	})

	var elapsed time.Duration
	got := false
	lookupMsgs := countMessages(o, func(m *message.Message) bool {
		switch endpoint.ServiceOf(m) {
		case resolver.ServiceName:
			return resolver.HandlerOf(m) == discovery.HandlerName
		case rendezvous.WalkService:
			return true
		}
		return false
	}, func() {
		e2.Discovery.Query("Peer", "Name", "Test", func(r discovery.Result) {
			elapsed = r.Elapsed
			got = true
		}, nil)
		o.Sched.Run(o.Sched.Now() + 30*time.Second)
	})
	if !got {
		return res, fmt.Errorf("experiments: Table 1 lookup failed")
	}
	res.LookupMsgs = lookupMsgs
	res.LatencyMs = float64(elapsed) / float64(time.Millisecond)
	o.StopAll()
	return res, nil
}

// countMessages counts network messages matching the classifier while fn
// runs. Matching composes with any previously installed OnSend hook.
func countMessages(o *deploy.Overlay, match func(*message.Message) bool, fn func()) int {
	count := 0
	prev := o.Net.OnSend
	o.Net.OnSend = func(from, to transport.Addr, m *message.Message) {
		if prev != nil {
			prev(from, to, m)
		}
		if match(m) {
			count++
		}
	}
	fn()
	o.Net.OnSend = prev
	return count
}
