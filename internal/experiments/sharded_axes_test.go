package experiments

import (
	"testing"
	"time"
)

// The §5 axes run their measurement loops from inside the simulation —
// query chains on the searcher's shard, kill schedules and sampling on the
// quiesced driver scheduler — so nothing in them may depend on thread
// timing. These tests pin that: a sharded run replayed with the same seed
// reproduces every outcome exactly.

func TestDiscoveryShardedDeterministic(t *testing.T) {
	spec := DiscoverySpec{R: 12, Queries: 8, Shards: 4, Seed: 7,
		Converge: 10 * time.Minute}
	a, err := RunDiscovery(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDiscovery(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.NetStats != b.NetStats {
		t.Fatalf("sharded discovery replay diverged: steps %d vs %d, net %+v vs %+v",
			a.Steps, b.Steps, a.NetStats, b.NetStats)
	}
	if a.Latency.N() != b.Latency.N() || a.MeanMs != b.MeanMs || a.Timeouts != b.Timeouts {
		t.Fatalf("sharded discovery outcomes diverged: n=%d/%d mean=%v/%v timeouts=%d/%d",
			a.Latency.N(), b.Latency.N(), a.MeanMs, b.MeanMs, a.Timeouts, b.Timeouts)
	}
	if a.Latency.N()+a.Timeouts != spec.Queries {
		t.Fatalf("lost queries: %d samples + %d timeouts != %d",
			a.Latency.N(), a.Timeouts, spec.Queries)
	}
}

func TestVolatilityShardedDeterministic(t *testing.T) {
	spec := VolatilitySpec{R: 6, EdgesPerRdv: 1, Kills: 3, Queries: 6,
		KillEvery: []time.Duration{2 * time.Minute}, Shards: 4, Seed: 7}
	a, err := RunVolatility(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVolatility(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.NetStats != b.NetStats {
		t.Fatalf("sharded volatility replay diverged: steps %d vs %d, net %+v vs %+v",
			a.Steps, b.Steps, a.NetStats, b.NetStats)
	}
	pa, pb := a.Points[0], b.Points[0]
	if pa.Phase.Succeeded != pb.Phase.Succeeded || pa.Phase.Timeouts != pb.Phase.Timeouts ||
		pa.Promotions != pb.Promotions || pa.LiveTier != pb.LiveTier ||
		pa.MeanView != pb.MeanView || pa.Reconverged != pb.Reconverged {
		t.Fatalf("sharded volatility outcomes diverged: %+v vs %+v", pa, pb)
	}
}
