// Package chord implements a classical-DHT baseline (Chord-style ring with
// finger tables and O(log n) greedy routing) over the same simulated
// Grid'5000 network as the JXTA stack. The paper's §3.3 complexity
// discussion contrasts the LC-DHT (O(1) publish / O(r) worst-case lookup)
// with classical DHTs (O(log n) for both); this package provides the
// measurable comparator for that claim.
//
// The ring is built statically — the paper's point of comparison is routing
// cost, not membership maintenance, and its related work notes that
// classical DHT evaluations "usually assume a static network". Lookups are
// recursive: each hop forwards to the closest preceding finger; the owner
// answers the originator directly.
package chord

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

// Message elements, namespace "chord".
const (
	ns         = "chord"
	elemKey    = "Key"
	elemHops   = "Hops"
	elemReqID  = "Req"
	elemOrigin = "Origin" // transport address of the requester
	elemOwner  = "Owner"  // response: owner node ID
	elemKind   = "Kind"   // "lookup" | "store" | "found"
)

// fingerBits is the identifier-space width.
const fingerBits = 64

// Node is one ring member.
type Node struct {
	ring    *Ring
	ID      uint64
	tr      *transport.Sim
	fingers [fingerBits]uint64 // finger[i] = successor(ID + 2^i)
	succ    uint64
	store   map[uint64]bool // keys this node owns (stored values)
	dead    bool
}

// Ring is a deployed Chord overlay.
type Ring struct {
	eng     simnet.Engine
	net     *transport.Network
	nodes   map[uint64]*Node
	sorted  []uint64
	pending map[uint64]*lookup
	nextReq uint64
}

type lookup struct {
	cb    func(owner uint64, hops int, elapsed time.Duration)
	start time.Duration
	done  bool
}

// Build deploys n nodes with deterministic pseudo-random IDs on the given
// engine/network, spread over the Grid'5000 sites, and computes finger
// tables from the (static) membership. Any simnet.Engine works (the serial
// Scheduler satisfies it), so the ring deploys on sharded engines too.
func Build(eng simnet.Engine, net *transport.Network, n int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("chord: n=%d", n)
	}
	r := &Ring{
		eng:     eng,
		net:     net,
		nodes:   make(map[uint64]*Node, n),
		pending: make(map[uint64]*lookup),
	}
	rng := eng.NewEnv("chord-ids").Rand()
	sites := netmodel.SpreadSites(n)
	for i := 0; i < n; i++ {
		id := rng.Uint64()
		for _, dup := r.nodes[id]; dup; _, dup = r.nodes[id] {
			id = rng.Uint64()
		}
		tr, err := net.Attach(fmt.Sprintf("chord%d", i), sites[i])
		if err != nil {
			return nil, err
		}
		node := &Node{ring: r, ID: id, tr: tr, store: make(map[uint64]bool)}
		tr.SetHandler(node.receive)
		r.nodes[id] = node
		r.sorted = append(r.sorted, id)
	}
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
	for _, node := range r.nodes {
		node.buildFingers()
	}
	return r, nil
}

// Nodes returns the ring members in ID order.
func (r *Ring) Nodes() []*Node {
	out := make([]*Node, len(r.sorted))
	for i, id := range r.sorted {
		out[i] = r.nodes[id]
	}
	return out
}

// successor returns the first node ID clockwise from key (inclusive).
func (r *Ring) successor(key uint64) uint64 {
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i] >= key })
	if i == len(r.sorted) {
		return r.sorted[0]
	}
	return r.sorted[i]
}

// Owner returns the node responsible for a key (ground truth for tests).
func (r *Ring) Owner(key uint64) *Node { return r.nodes[r.successor(key)] }

func (n *Node) buildFingers() {
	for i := 0; i < fingerBits; i++ {
		n.fingers[i] = n.ring.successor(n.ID + 1<<uint(i))
	}
	n.succ = n.ring.successor(n.ID + 1)
}

// inOpen reports whether x lies in the open ring interval (a, b).
func inOpen(a, x, b uint64) bool {
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b
}

// closestPrecedingFinger returns the routing next hop for key: the highest
// finger strictly between this node and the key, falling back to the
// immediate successor (which always makes progress on the ring).
func (n *Node) closestPrecedingFinger(key uint64) uint64 {
	for i := fingerBits - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f != n.ID && inOpen(n.ID, f, key) {
			return f
		}
	}
	return n.succ
}

// owns reports whether this node is the successor of key.
func (n *Node) owns(key uint64) bool {
	return n.ring.successor(key) == n.ID
}

// Store routes a store request for key from this node; the owner records
// the key. cb (optional) observes hop count and latency.
func (r *Ring) Store(from *Node, key uint64, cb func(owner uint64, hops int, elapsed time.Duration)) {
	r.route(from, key, "store", cb)
}

// Lookup routes a lookup for key from the given node; cb fires when the
// owner's response returns to the requester.
func (r *Ring) Lookup(from *Node, key uint64, cb func(owner uint64, hops int, elapsed time.Duration)) {
	r.route(from, key, "lookup", cb)
}

func (r *Ring) route(from *Node, key uint64, kind string, cb func(uint64, int, time.Duration)) {
	r.nextReq++
	req := r.nextReq
	if cb != nil {
		r.pending[req] = &lookup{cb: cb, start: r.eng.Now()}
	}
	from.handle(key, kind, req, 0, from.tr.Addr())
}

// handle processes a routing step locally (zero hops) or forwards it.
func (n *Node) handle(key uint64, kind string, req uint64, hops int, origin transport.Addr) {
	if n.dead {
		return
	}
	if n.owns(key) {
		n.terminal(key, kind, req, hops, origin)
		return
	}
	next := n.closestPrecedingFinger(key)
	m := message.New()
	m.AddString(ns, elemKind, kind)
	m.AddString(ns, elemKey, strconv.FormatUint(key, 10))
	m.AddString(ns, elemReqID, strconv.FormatUint(req, 10))
	m.AddString(ns, elemHops, strconv.Itoa(hops+1))
	m.AddString(ns, elemOrigin, string(origin))
	_ = n.tr.Send(n.ring.nodes[next].tr.Addr(), m)
}

// terminal runs at the key's owner: store or answer.
func (n *Node) terminal(key uint64, kind string, req uint64, hops int, origin transport.Addr) {
	if kind == "store" {
		n.store[key] = true
	}
	rsp := message.New()
	rsp.AddString(ns, elemKind, "found")
	rsp.AddString(ns, elemReqID, strconv.FormatUint(req, 10))
	rsp.AddString(ns, elemHops, strconv.Itoa(hops))
	rsp.AddString(ns, elemOwner, strconv.FormatUint(n.ID, 10))
	if origin == n.tr.Addr() {
		// Local completion without a network round trip.
		n.ring.complete(req, n.ID, hops)
		return
	}
	_ = n.tr.Send(origin, rsp)
}

func (r *Ring) complete(req, owner uint64, hops int) {
	l, ok := r.pending[req]
	if !ok || l.done {
		return
	}
	l.done = true
	delete(r.pending, req)
	l.cb(owner, hops, r.eng.Now()-l.start)
}

// Kill fail-stops the node: its transport detaches (in-flight messages to
// it are dropped) and it processes nothing further. Fingers are NOT
// recomputed — the ring is static, so routes through the dead node simply
// vanish. That fragility is the point of the churn comparison: a static
// structured overlay has no repair path.
func (n *Node) Kill() {
	if n.dead {
		return
	}
	n.dead = true
	_ = n.tr.Close()
}

// Alive reports whether the node has not been killed.
func (n *Node) Alive() bool { return !n.dead }

// receive handles inbound chord messages at a node.
func (n *Node) receive(_ transport.Addr, m *message.Message) {
	if n.dead {
		return
	}
	kind := m.GetString(ns, elemKind)
	req, err := strconv.ParseUint(m.GetString(ns, elemReqID), 10, 64)
	if err != nil {
		return
	}
	hops, err := strconv.Atoi(m.GetString(ns, elemHops))
	if err != nil || hops < 0 || hops > 4*fingerBits {
		return
	}
	if kind == "found" {
		owner, err := strconv.ParseUint(m.GetString(ns, elemOwner), 10, 64)
		if err != nil {
			return
		}
		n.ring.complete(req, owner, hops)
		return
	}
	key, err := strconv.ParseUint(m.GetString(ns, elemKey), 10, 64)
	if err != nil {
		return
	}
	n.handle(key, kind, req, hops, transport.Addr(m.GetString(ns, elemOrigin)))
}

// Stored reports whether the node recorded the key (test hook).
func (n *Node) Stored(key uint64) bool { return n.store[key] }
