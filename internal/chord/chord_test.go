package chord

import (
	"math"
	"testing"
	"time"

	"jxta/internal/netmodel"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

func build(t testing.TB, n int, seed int64) (*simnet.Scheduler, *Ring) {
	t.Helper()
	sched := simnet.NewScheduler(seed)
	net := transport.NewNetwork(sched, netmodel.Grid5000())
	ring, err := Build(sched, net, n)
	if err != nil {
		t.Fatal(err)
	}
	return sched, ring
}

func TestBuildErrors(t *testing.T) {
	sched := simnet.NewScheduler(1)
	net := transport.NewNetwork(sched, netmodel.Grid5000())
	if _, err := Build(sched, net, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestSuccessorGroundTruth(t *testing.T) {
	_, ring := build(t, 16, 1)
	nodes := ring.Nodes()
	for i, n := range nodes {
		// successor(n.ID) is n itself; successor(n.ID+1) is the next node.
		if ring.successor(n.ID) != n.ID {
			t.Fatal("successor of own ID is not self")
		}
		next := nodes[(i+1)%len(nodes)]
		if ring.successor(n.ID+1) != next.ID && n.ID+1 != 0 {
			t.Fatal("successor of ID+1 is not the next ring member")
		}
	}
}

func TestLookupFindsCorrectOwner(t *testing.T) {
	sched, ring := build(t, 32, 2)
	nodes := ring.Nodes()
	rng := sched.DeriveRand(5)
	for i := 0; i < 50; i++ {
		key := rng.Uint64()
		from := nodes[rng.Intn(len(nodes))]
		want := ring.Owner(key).ID
		var got uint64
		done := false
		ring.Lookup(from, key, func(owner uint64, hops int, _ time.Duration) {
			got = owner
			done = true
		})
		sched.Run(sched.Now() + time.Second)
		if !done {
			t.Fatalf("lookup %d never completed", i)
		}
		if got != want {
			t.Fatalf("lookup %d found %x, want %x", i, got, want)
		}
	}
}

func TestStoreThenOwnerHasKey(t *testing.T) {
	sched, ring := build(t, 16, 3)
	nodes := ring.Nodes()
	key := uint64(0xdeadbeefcafef00d)
	done := false
	ring.Store(nodes[0], key, func(owner uint64, _ int, _ time.Duration) { done = true })
	sched.Run(time.Second)
	if !done {
		t.Fatal("store never completed")
	}
	if !ring.Owner(key).Stored(key) {
		t.Fatal("owner does not hold the stored key")
	}
}

func TestLocalLookupZeroHops(t *testing.T) {
	sched, ring := build(t, 8, 4)
	n := ring.Nodes()[3]
	var hops int
	done := false
	ring.Lookup(n, n.ID, func(_ uint64, h int, _ time.Duration) {
		hops = h
		done = true
	})
	sched.Run(time.Second)
	if !done || hops != 0 {
		t.Fatalf("self lookup hops=%d done=%v, want 0 hops", hops, done)
	}
}

func TestHopCountLogarithmic(t *testing.T) {
	// The defining property of the baseline: mean hops ~ (1/2) log2 n.
	for _, n := range []int{16, 64, 256} {
		sched, ring := build(t, n, 7)
		nodes := ring.Nodes()
		rng := sched.DeriveRand(11)
		total, count := 0, 0
		for i := 0; i < 200; i++ {
			key := rng.Uint64()
			from := nodes[rng.Intn(len(nodes))]
			ring.Lookup(from, key, func(_ uint64, hops int, _ time.Duration) {
				total += hops
				count++
			})
		}
		sched.Run(sched.Now() + time.Minute)
		if count != 200 {
			t.Fatalf("n=%d: only %d lookups completed", n, count)
		}
		mean := float64(total) / float64(count)
		logN := math.Log2(float64(n))
		if mean > 1.5*logN {
			t.Fatalf("n=%d: mean hops %.1f exceeds 1.5*log2(n)=%.1f", n, mean, 1.5*logN)
		}
		if mean < 0.25*logN {
			t.Fatalf("n=%d: mean hops %.1f suspiciously low (< 0.25*log2 n)", n, mean)
		}
	}
}

func TestHopCountGrowsWithN(t *testing.T) {
	means := map[int]float64{}
	for _, n := range []int{8, 512} {
		sched, ring := build(t, n, 13)
		nodes := ring.Nodes()
		rng := sched.DeriveRand(17)
		total, count := 0, 0
		for i := 0; i < 300; i++ {
			ring.Lookup(nodes[rng.Intn(len(nodes))], rng.Uint64(),
				func(_ uint64, hops int, _ time.Duration) {
					total += hops
					count++
				})
		}
		sched.Run(sched.Now() + time.Minute)
		means[n] = float64(total) / float64(count)
	}
	if means[512] <= means[8] {
		t.Fatalf("hops do not grow with n: %v", means)
	}
}

func TestLatencyMeasured(t *testing.T) {
	sched, ring := build(t, 64, 19)
	nodes := ring.Nodes()
	var elapsed time.Duration
	ring.Lookup(nodes[0], nodes[30].ID, func(_ uint64, hops int, d time.Duration) {
		elapsed = d
	})
	sched.Run(time.Minute)
	if elapsed <= 0 {
		t.Fatal("latency not measured")
	}
}

func TestDeterministicRing(t *testing.T) {
	_, r1 := build(t, 20, 99)
	_, r2 := build(t, 20, 99)
	a, b := r1.Nodes(), r2.Nodes()
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("same seed built different rings")
		}
	}
}

func BenchmarkLookup256(b *testing.B) {
	sched, ring := build(b, 256, 1)
	nodes := ring.Nodes()
	rng := sched.DeriveRand(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.Lookup(nodes[rng.Intn(len(nodes))], rng.Uint64(),
			func(uint64, int, time.Duration) {})
		for sched.Pending() > 0 {
			sched.Step()
		}
	}
}
