package simnet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Window-pipelined conservative engine.
//
// The barrier engine in sharded.go synchronises every shard at the end of
// every lookahead window: the wall time of a window is its slowest shard,
// even when the other shards' next windows depend only on input that is
// already in hand. Pipelining removes the global barrier. Cross-shard
// events travel through per-(src,dst) exchange queues bucketed by the
// sender's window; a sender "seals" a window when it finishes executing it,
// and a receiver may execute its window T as soon as every inbound queue is
// sealed far enough — specifically up to T - lag(src,dst), where the lag
// matrix counts how many whole windows the (src,dst) latency floor spans.
// Shards on distant site pairs therefore run several windows apart without
// ever waiting on each other, which both overlaps wall time and loosens the
// critical-path speedup bound that the global barrier caps at the
// burst-alignment limit.
//
// Determinism: every execution and every queue drain below is decided from
// event content (timestamps, window indices, sealed watermarks), never from
// thread timing. Which windows a shard executes, which bucket entries it
// drains before each window, and the (at, src, seq) order it inserts them
// in are all invariant across goroutine interleavings, so a fixed-seed run
// is bit-reproducible at any GOMAXPROCS — same contract as the barrier
// path, different fingerprint (window boundaries differ), which is why
// pipelining sits behind its own golden.

// pipeBucket holds the cross-shard events one shard emitted toward another
// during one of its execution windows. Buckets in a pair queue are strictly
// increasing in window index; a bucket is immutable once its window is
// sealed by the sender.
type pipeBucket struct {
	window  int64
	minAt   time.Duration
	entries []xentry
}

// pipePair is the (src,dst) exchange queue. The mutex serialises the
// sender's appends against the receiver's peeks and drains; it is held only
// for slice bookkeeping, never across event execution.
type pipePair struct {
	mu      sync.Mutex
	buckets []pipeBucket
}

// fpoint is one point of a shard's critical-path history within a phase:
// after executing window win, the shard's earliest possible completion is f
// events deep. See pipeRunWindow for the recurrence.
type fpoint struct {
	win int64
	f   uint64
}

// pipeState carries the per-phase control state of the pipelined engine.
type pipeState struct {
	// lag[src][dst] is how many whole lookahead windows the (src,dst)
	// latency floor spans (≥ 1): an event emitted during sender window w
	// arrives no earlier than window w+lag, so the receiver may run window
	// T once sealed[src] ≥ T-lag[src][dst] for every src.
	lag [][]int32
	// pairs are the (src,dst) exchange queues, indexed src*n+dst.
	pairs []pipePair
	// sealed[s] is the highest window index shard s has finished (or
	// promised to stay silent through); -1 at phase start. Written under
	// pmu, read locklessly — it only ever grows, so a stale read is
	// conservative.
	sealed []atomic.Int64
	// curWin[s] is the window shard s is currently executing; only the
	// owning goroutine touches it (XSchedule runs on that goroutine).
	curWin []int64

	// Phase extent, written by the coordinator before shard goroutines
	// spawn: the window lattice is [base + k·W, base + (k+1)·W) for
	// k ∈ [0, k); end clips the last window.
	base time.Duration
	end  time.Duration
	k    int64

	// inPhase routes XSchedule to the bucket queues while shard
	// goroutines run; the spawn/join edges order it against their reads.
	inPhase bool

	// Everything below is guarded by pmu.
	pmu  sync.Mutex
	cond *sync.Cond
	// ver counts content-publishing events (execution seals). A shard's
	// stuck registration is valid only if ver is unchanged since before
	// its peek, which makes the all-stuck snapshot consistent.
	ver uint64
	// stuck/nextw/liveStuck implement the idle-jump protocol: a shard
	// that cannot execute registers the window of its earliest pending
	// event (k as "none"); when every live shard is registered the
	// all-stuck snapshot is consistent and the phase fast-forwards every
	// seal to min(nextw)-1 in one step instead of ratcheting.
	stuck     []bool
	nextw     []int64
	liveStuck int
	exited    int
	// hist[s] is shard s's critical-path history; busy counts executing
	// shards per window index; total/cross accumulate phase stats.
	hist  [][]fpoint
	busy  map[int64]int
	total uint64
	cross uint64
	// batch[s] is shard s's private drain scratch buffer.
	batch [][]xentry
}

// EnablePipelining switches the engine from the global window barrier to
// per-(src,dst) sealed exchange queues. lag[src][dst] must be ≥ 1 for
// src ≠ dst and satisfy lag·lookahead ≤ the (src,dst) cross-shard latency
// floor (netmodel.ShardLagMatrix derives it). Must be called while the
// engine is quiesced (normally right after NewSharded). A single-shard
// engine ignores the call: it already runs barrier-free to the horizon.
func (ss *ShardedScheduler) EnablePipelining(lag [][]int) {
	n := len(ss.shards)
	if n == 1 {
		ss.pipe = nil
		return
	}
	if len(lag) != n {
		panic(fmt.Sprintf("simnet: lag matrix is %d×?, want %d×%d", len(lag), n, n))
	}
	p := &pipeState{
		lag:    make([][]int32, n),
		pairs:  make([]pipePair, n*n),
		sealed: make([]atomic.Int64, n),
		curWin: make([]int64, n),
		stuck:  make([]bool, n),
		nextw:  make([]int64, n),
		hist:   make([][]fpoint, n),
		busy:   make(map[int64]int),
		batch:  make([][]xentry, n),
	}
	for s := range p.lag {
		if len(lag[s]) != n {
			panic(fmt.Sprintf("simnet: lag matrix row %d has %d entries, want %d", s, len(lag[s]), n))
		}
		p.lag[s] = make([]int32, n)
		for d, l := range lag[s] {
			if s != d && l < 1 {
				panic(fmt.Sprintf("simnet: lag[%d][%d] = %d, want ≥ 1", s, d, l))
			}
			if l < 1 {
				l = 1
			}
			p.lag[s][d] = int32(l)
		}
	}
	p.cond = sync.NewCond(&p.pmu)
	ss.pipe = p
}

// Pipelined reports whether the engine runs the pipelined path.
func (ss *ShardedScheduler) Pipelined() bool { return ss.pipe != nil }

// runPipelined is the Run loop of the pipelined engine. Driver events still
// quiesce every shard at their exact timestamp — they may touch any node —
// so the loop alternates driver windows with pipelined phases spanning the
// whole stretch of virtual time to the next driver event or the horizon.
// Halt is phase-granular here (the barrier engine is window-granular): a
// halt requested mid-phase takes effect at the next phase boundary, keeping
// the stop point content-deterministic.
func (ss *ShardedScheduler) runPipelined(until time.Duration) uint64 {
	start := ss.Steps()
	defer ss.park()
	horizon := until + 1
	for !ss.halted.Load() {
		ss.mergeCross()
		t, ok := ss.nextTime()
		if !ok || t > until {
			break
		}
		if dt, ok := ss.driver.nextEventAt(); ok && dt == t {
			ss.setTime(t)
			ss.driver.runWindow(t + 1)
			continue
		}
		end := horizon
		if dt, ok := ss.driver.nextEventAt(); ok && dt < end {
			end = dt
		}
		ss.runPipelinedPhase(t, end)
	}
	if !ss.halted.Load() {
		ss.setTime(until)
	}
	return ss.Steps() - start
}

// runPipelinedPhase executes every event in [base, end) across all shards
// with per-window sealing instead of a barrier. A phase that fits in a
// single window degenerates to exactly one barrier window and reuses that
// path (identical semantics, no goroutine spawn).
func (ss *ShardedScheduler) runPipelinedPhase(base, end time.Duration) {
	w := ss.lookahead
	k := int64((end - base + w - 1) / w)
	if k <= 1 {
		ss.runShardWindow(end)
		return
	}
	p := ss.pipe
	n := len(ss.shards)
	p.base, p.end, p.k = base, end, k
	for s := 0; s < n; s++ {
		p.sealed[s].Store(-1)
		p.curWin[s] = -1
		p.stuck[s] = false
		p.nextw[s] = k
		p.hist[s] = p.hist[s][:0]
	}
	for win := range p.busy {
		delete(p.busy, win)
	}
	p.ver, p.liveStuck, p.exited = 0, 0, 0
	p.total, p.cross = 0, 0
	p.inPhase = true
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ss.pipeShardLoop(s)
		}(s)
	}
	wg.Wait()
	p.inPhase = false

	// Advance every clock to the phase end, then flush leftover bucket
	// entries into their destination heaps. Every leftover arrives at or
	// after end: an entry sealed into a bucket that could arrive earlier
	// would have been peeked (contradicting its receiver's exit) or
	// drained by the watermark of the receiver's last window.
	ss.now = end
	for _, sh := range ss.shards {
		if sh.now < end {
			sh.now = end
		}
	}
	for dst := 0; dst < n; dst++ {
		batch := ss.merged[:0]
		for src := 0; src < n; src++ {
			pr := &p.pairs[src*n+dst]
			for i := range pr.buckets {
				batch = append(batch, pr.buckets[i].entries...)
				pr.buckets[i] = pipeBucket{}
			}
			pr.buckets = pr.buckets[:0]
		}
		if len(batch) == 0 {
			ss.merged = batch
			continue
		}
		sortXEntries(batch)
		sh := ss.shards[dst]
		for i := range batch {
			e := &batch[i]
			if e.at < end {
				panic(fmt.Sprintf("simnet: pipelined leftover at %v precedes phase end %v", e.at, end))
			}
			sh.AtCall(e.at, e.fn, e.arg)
		}
		ss.stat.CrossShard += uint64(len(batch))
		for i := range batch {
			batch[i] = xentry{}
		}
		ss.merged = batch[:0]
	}

	// Fold phase stats into the engine counters. The critical path of a
	// pipelined phase is the deepest per-shard completion front F — the
	// lag-matrix recurrence in pipeRunWindow — which is what replaces the
	// barrier's per-window max.
	var crit uint64
	for s := 0; s < n; s++ {
		if h := p.hist[s]; len(h) > 0 && h[len(h)-1].f > crit {
			crit = h[len(h)-1].f
		}
	}
	ss.stat.CriticalEvents += crit
	ss.stat.TotalEvents += p.total
	ss.stat.CrossShard += p.cross
	ss.stat.Windows += uint64(len(p.busy))
	for _, c := range p.busy {
		ss.stat.BusyShardSum += uint64(c)
		if c > ss.stat.MaxBusy {
			ss.stat.MaxBusy = c
		}
	}
}

// pipeShardLoop is one shard's phase worker. Each iteration either executes
// the earliest window it can prove complete, or registers as stuck and
// sleeps until new input is sealed or an idle jump fast-forwards the phase.
func (ss *ShardedScheduler) pipeShardLoop(s int) {
	p := ss.pipe
	n := len(ss.shards)
	sh := ss.shards[s]
	w := ss.lookahead
	k := p.k
	for {
		if p.sealed[s].Load() == k-1 {
			// Done: nothing below end remains for this shard, and every
			// future inbound event provably arrives at ≥ end. Register as
			// permanently exited so the all-stuck check still fires.
			p.pmu.Lock()
			p.exited++
			if p.liveStuck+p.exited == n {
				p.jumpLocked()
			}
			p.pmu.Unlock()
			return
		}
		p.pmu.Lock()
		ver := p.ver
		p.pmu.Unlock()

		// kReady is the highest window this shard could prove complete:
		// every inbound queue must be sealed to at least kReady-lag.
		// sealed only grows, so the lockless read is a safe lower bound.
		kReady := k - 1
		for src := 0; src < n; src++ {
			if src == s {
				continue
			}
			if r := p.sealed[src].Load() + int64(p.lag[src][s]); r < kReady {
				kReady = r
			}
		}

		// Peek the earliest actionable event: the local heap plus every
		// sealed inbound bucket. Entries in unsealed buckets arrive in
		// windows > kReady, so ignoring them cannot select a wrong window.
		x, have := sh.nextEventAt()
		for src := 0; src < n; src++ {
			if src == s {
				continue
			}
			sl := p.sealed[src].Load()
			pr := &p.pairs[src*n+s]
			pr.mu.Lock()
			for i := range pr.buckets {
				b := &pr.buckets[i]
				if b.window > sl {
					break
				}
				if len(b.entries) > 0 && (!have || b.minAt < x) {
					x, have = b.minAt, true
				}
			}
			pr.mu.Unlock()
		}

		nextw := k // sentinel: no pending event below end
		if have && x < p.end {
			kx := int64((x - p.base) / w)
			if kx <= kReady {
				if kx <= p.sealed[s].Load() {
					panic(fmt.Sprintf("simnet: pipelined shard %d re-entered window %d (sealed %d)", s, kx, p.sealed[s].Load()))
				}
				ss.pipeRunWindow(s, kx)
				continue
			}
			nextw = kx
		}

		// Cannot execute. Register as stuck; if the registration makes
		// the all-stuck snapshot complete, fast-forward, else sleep until
		// a sealer clears the registration. The ver check rejects a
		// registration whose peek raced a seal, which is what makes the
		// complete snapshot consistent: when all n shards are registered,
		// no seal happened after any of their peeks began, so no
		// executable event below end is hiding anywhere.
		p.pmu.Lock()
		if p.ver != ver {
			p.pmu.Unlock()
			continue
		}
		p.stuck[s] = true
		p.nextw[s] = nextw
		p.liveStuck++
		if p.liveStuck+p.exited == n {
			p.jumpLocked()
		} else {
			for p.stuck[s] {
				p.cond.Wait()
			}
		}
		p.pmu.Unlock()
	}
}

// jumpLocked fast-forwards an all-stuck phase: no shard can execute, so the
// earliest window anyone will ever execute again is kmin = min over stuck
// shards of their pending window (k if everyone is idle). Sealing every
// shard to kmin-1 in one step is therefore safe — emissions from future
// executions land at ≥ kmin+1 — and it unblocks the kmin shard immediately,
// replacing O(k) lag-at-a-time seal ratcheting through empty stretches with
// O(1) per executed window. Caller holds pmu.
func (p *pipeState) jumpLocked() {
	kmin := p.k
	for s, st := range p.stuck {
		if st && p.nextw[s] < kmin {
			kmin = p.nextw[s]
		}
	}
	target := kmin - 1
	for s := range p.sealed {
		if p.sealed[s].Load() < target {
			p.sealed[s].Store(target)
		}
	}
	for s := range p.stuck {
		p.stuck[s] = false
	}
	p.liveStuck = 0
	p.cond.Broadcast()
}

// pipeRunWindow executes window kx on shard s: drain every inbound bucket
// up to the exact watermark kx-lag (everything that could arrive before the
// window's end, all provably sealed by the kReady condition), merge in
// (at, src, seq) order, run the window, then publish the seal and the
// critical-path update.
func (ss *ShardedScheduler) pipeRunWindow(s int, kx int64) {
	p := ss.pipe
	n := len(ss.shards)
	sh := ss.shards[s]
	batch := p.batch[s][:0]
	for src := 0; src < n; src++ {
		if src == s {
			continue
		}
		wm := kx - int64(p.lag[src][s])
		pr := &p.pairs[src*n+s]
		pr.mu.Lock()
		cut := 0
		for cut < len(pr.buckets) && pr.buckets[cut].window <= wm {
			batch = append(batch, pr.buckets[cut].entries...)
			cut++
		}
		if cut > 0 {
			rest := copy(pr.buckets, pr.buckets[cut:])
			tail := pr.buckets[rest:]
			for i := range tail {
				tail[i] = pipeBucket{}
			}
			pr.buckets = pr.buckets[:rest]
		}
		pr.mu.Unlock()
	}
	if len(batch) > 0 {
		sortXEntries(batch)
		for i := range batch {
			e := &batch[i]
			sh.AtCall(e.at, e.fn, e.arg)
		}
	}
	drained := uint64(len(batch))
	for i := range batch {
		batch[i] = xentry{}
	}
	p.batch[s] = batch[:0]

	p.curWin[s] = kx
	winEnd := p.base + time.Duration(kx+1)*ss.lookahead
	if winEnd > p.end {
		winEnd = p.end
	}
	steps := sh.runWindow(winEnd)

	// Seal and publish under pmu. F(s, kx) = max(F(s, prev), max over
	// senders of F(src, kx-lag)) + steps: window kx could not start before
	// its own previous window or any sender window it waited on finished.
	// The sender history below the watermark is final because the kReady
	// condition proved sealed[src] ≥ kx-lag.
	p.pmu.Lock()
	var f uint64
	if h := p.hist[s]; len(h) > 0 {
		f = h[len(h)-1].f
	}
	for src := 0; src < n; src++ {
		if src == s {
			continue
		}
		if g := histAt(p.hist[src], kx-int64(p.lag[src][s])); g > f {
			f = g
		}
	}
	f += steps
	p.hist[s] = append(p.hist[s], fpoint{win: kx, f: f})
	p.busy[kx]++
	p.total += steps
	p.cross += drained
	p.sealed[s].Store(kx)
	p.ver++
	for i := range p.stuck {
		p.stuck[i] = false
	}
	p.liveStuck = 0
	p.cond.Broadcast()
	p.pmu.Unlock()
}

// histAt returns the critical-path depth of a shard at window k: the f of
// the latest history point with win ≤ k, or 0 before the first.
func histAt(h []fpoint, k int64) uint64 {
	lo, hi := 0, len(h)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h[mid].win <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return h[lo-1].f
}

// sortXEntries orders a cross-shard batch by (at, src, seq) — the merge
// order shared by the barrier and pipelined paths.
func sortXEntries(batch []xentry) {
	sort.Slice(batch, func(i, j int) bool {
		a, b := &batch[i], &batch[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
}
