package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"jxta/internal/env"
)

func TestStepOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("now = %v, want 30ms", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events out of FIFO order: %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.At(time.Second, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(time.Millisecond, func() {})
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	s.After(time.Second, func() { fired++ })
	s.After(3*time.Second, func() { fired++ })
	n := s.Run(2 * time.Second)
	if n != 1 || fired != 1 {
		t.Fatalf("Run executed %d events (fired=%d), want 1", n, fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("now = %v, want 2s (advance to horizon)", s.Now())
	}
	s.Run(4 * time.Second)
	if fired != 2 {
		t.Fatalf("second event did not fire")
	}
}

func TestEventAtHorizonFires(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.After(2*time.Second, func() { fired = true })
	s.Run(2 * time.Second)
	if !fired {
		t.Fatal("event at exactly the horizon did not fire")
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	ev := s.After(time.Second, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel on pending event reported false")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel reported true")
	}
	s.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := NewScheduler(1)
	ev := s.After(0, func() {})
	s.RunAll()
	if ev.Cancel() {
		t.Fatal("Cancel after firing reported true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	evs := make([]Event, 20)
	for i := 0; i < 20; i++ {
		i := i
		evs[i] = s.After(time.Duration(i)*time.Millisecond, func() { got = append(got, i) })
	}
	// Cancel odd events.
	for i := 1; i < 20; i += 2 {
		evs[i].Cancel()
	}
	s.RunAll()
	if len(got) != 10 {
		t.Fatalf("got %d events, want 10", len(got))
	}
	for idx, v := range got {
		if v != idx*2 {
			t.Fatalf("unexpected order after cancels: %v", got)
		}
	}
}

func TestHalt(t *testing.T) {
	s := NewScheduler(1)
	ran := 0
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {
			ran++
			if ran == 3 {
				s.Halt()
			}
		})
	}
	s.RunAll()
	if ran != 3 {
		t.Fatalf("ran %d events after Halt, want 3", ran)
	}
	// A subsequent Run resumes.
	s.Run(time.Second)
	if ran != 10 {
		t.Fatalf("resume ran %d total, want 10", ran)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(time.Millisecond, recurse)
		}
	}
	s.After(0, recurse)
	s.RunAll()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if s.Now() != 99*time.Millisecond {
		t.Fatalf("now = %v, want 99ms", s.Now())
	}
}

func TestDeriveRandDecorrelated(t *testing.T) {
	s := NewScheduler(42)
	a := s.DeriveRand(0)
	b := s.DeriveRand(1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63()%2 == b.Int63()%2 {
			same++
		}
	}
	if same == 64 || same == 0 {
		t.Fatalf("streams look correlated: %d/64 parity matches", same)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		s := NewScheduler(7)
		envs := []*NodeEnv{s.NewEnv("a"), s.NewEnv("b"), s.NewEnv("c")}
		var fires []time.Duration
		for _, e := range envs {
			e := e
			var tick func()
			tick = func() {
				fires = append(fires, s.Now())
				d := time.Duration(e.Rand().Intn(1000)) * time.Millisecond
				e.After(d, tick)
			}
			e.After(0, tick)
		}
		s.Run(30 * time.Second)
		return fires
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTickerOnSim(t *testing.T) {
	s := NewScheduler(1)
	e := s.NewEnv("n")
	count := 0
	tk := env.NewTicker(e, 30*time.Second, func() { count++ })
	s.Run(5 * time.Minute)
	if count != 10 {
		t.Fatalf("ticker fired %d times in 5min at 30s, want 10", count)
	}
	tk.Stop()
	s.Run(10 * time.Minute)
	if count != 10 {
		t.Fatalf("ticker fired after Stop")
	}
}

// Property: events always execute in nondecreasing time order regardless of
// insertion order.
func TestHeapOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler(seed)
		var times []time.Duration
		for i := 0; i < int(n); i++ {
			s.After(time.Duration(rng.Intn(10000))*time.Microsecond, func() {
				times = append(times, s.Now())
			})
		}
		s.RunAll()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroEventHandleCancel(t *testing.T) {
	var ev Event
	if ev.Cancel() {
		t.Fatal("zero Event handle Cancel reported true")
	}
}

func TestCancelHandleSurvivesSlotReuse(t *testing.T) {
	// A canceled event's slot is recycled by later events; the stale handle
	// must not cancel the new occupant (generation check).
	s := NewScheduler(1)
	stale := s.After(time.Second, func() {})
	if !stale.Cancel() {
		t.Fatal("first Cancel failed")
	}
	fired := false
	s.After(time.Second, func() { fired = true }) // reuses the freed slot
	if stale.Cancel() {
		t.Fatal("stale handle canceled a recycled slot")
	}
	s.RunAll()
	if !fired {
		t.Fatal("recycled-slot event did not fire")
	}
}

func TestPendingDiscountsCancels(t *testing.T) {
	s := NewScheduler(1)
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = s.After(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	for i := 0; i < 5; i++ {
		evs[i].Cancel()
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending after cancels = %d, want 5", s.Pending())
	}
	if n := s.RunAll(); n != 5 {
		t.Fatalf("RunAll executed %d, want 5", n)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after RunAll = %d, want 0", s.Pending())
	}
}

func TestCancelStormCompactsHeap(t *testing.T) {
	// A timeout-renewal workload: schedule far in the future, cancel on
	// every renewal. Tombstones must not accumulate for the whole window.
	s := NewScheduler(1)
	for i := 0; i < 10000; i++ {
		s.After(time.Hour, func() {}).Cancel()
	}
	if len(s.heap) > 2*compactThreshold {
		t.Fatalf("heap holds %d entries after canceling everything", len(s.heap))
	}
	// Live events interleaved with heavy cancellation still fire in order.
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.After(time.Duration(i)*time.Millisecond, func() { got = append(got, i) })
		for j := 0; j < 30; j++ {
			s.After(time.Hour, func() {}).Cancel()
		}
	}
	s.RunAll()
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken after compactions: %v", got[:i+1])
		}
	}
}

func TestAtCallPayload(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	record := func(a any) { got = append(got, a.(int)) }
	s.AtCall(2*time.Millisecond, record, 2)
	s.AtCall(time.Millisecond, record, 1)
	s.AfterCall(3*time.Millisecond, record, 3)
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("payload events = %v, want [1 2 3]", got)
	}
}

// Property: interleaved schedule/cancel sequences never fire canceled
// events and always fire live ones in order.
func TestCancelStormProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler(seed)
		type rec struct {
			ev       Event
			canceled bool
		}
		var recs []*rec
		fired := make(map[int]bool)
		for i := 0; i < int(n); i++ {
			i := i
			r := &rec{}
			r.ev = s.After(time.Duration(rng.Intn(5000))*time.Microsecond, func() {
				fired[i] = true
			})
			recs = append(recs, r)
			// Cancel a random earlier event half the time.
			if len(recs) > 0 && rng.Intn(2) == 0 {
				v := recs[rng.Intn(len(recs))]
				if v.ev.Cancel() {
					v.canceled = true
				}
			}
		}
		s.RunAll()
		for i, r := range recs {
			if r.canceled == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if s.Pending() > 10000 {
			for s.Pending() > 0 {
				s.Step()
			}
		}
	}
	s.RunAll()
}

// TestPendingForLedger exercises the per-env pending-callback accounting:
// owned events are counted while live and settled on both fire and cancel,
// and events of one env never bleed into another's ledger.
func TestPendingForLedger(t *testing.T) {
	s := NewScheduler(9)
	a := s.NewEnv("a")
	b := s.NewEnv("b")

	if s.PendingFor(a) != 0 || a.Pending() != 0 {
		t.Fatal("fresh env has pending callbacks")
	}

	ta := a.After(time.Millisecond, func() {})
	a.After(2*time.Millisecond, func() {})
	b.After(time.Millisecond, func() {})
	s.After(time.Millisecond, func() {}) // unowned: no ledger entry

	if got := s.PendingFor(a); got != 2 {
		t.Fatalf("PendingFor(a) = %d, want 2", got)
	}
	if got := s.PendingFor(b); got != 1 {
		t.Fatalf("PendingFor(b) = %d, want 1", got)
	}

	if !ta.Cancel() {
		t.Fatal("cancel failed")
	}
	if got := s.PendingFor(a); got != 1 {
		t.Fatalf("PendingFor(a) after cancel = %d, want 1", got)
	}

	s.RunAll()
	if s.PendingFor(a) != 0 || s.PendingFor(b) != 0 {
		t.Fatalf("ledger nonzero after drain: a=%d b=%d", s.PendingFor(a), s.PendingFor(b))
	}
}

// TestPendingForRearm covers the ticker shape: a callback that re-arms
// itself from inside the firing keeps the ledger at exactly one.
func TestPendingForRearm(t *testing.T) {
	s := NewScheduler(3)
	e := s.NewEnv("n")
	fires := 0
	var arm func()
	arm = func() {
		e.After(time.Second, func() {
			fires++
			if fires < 5 {
				arm()
			}
		})
	}
	arm()
	for s.PendingFor(e) > 0 {
		if got := s.PendingFor(e); got != 1 {
			t.Fatalf("mid-run PendingFor = %d, want 1", got)
		}
		s.Step()
	}
	if fires != 5 {
		t.Fatalf("fires = %d, want 5", fires)
	}
}

// TestPendingForForeignEnv asserts the ledger is scoped to the scheduler
// that created the env.
func TestPendingForForeignEnv(t *testing.T) {
	s1 := NewScheduler(1)
	s2 := NewScheduler(2)
	e1 := s1.NewEnv("n")
	e1.After(time.Second, func() {})
	if got := s2.PendingFor(e1); got != 0 {
		t.Fatalf("foreign PendingFor = %d, want 0", got)
	}
	if got := s1.PendingFor(nil); got != 0 {
		t.Fatalf("nil PendingFor = %d, want 0", got)
	}
}
