package simnet

import (
	"fmt"
	"testing"
	"time"

	"jxta/internal/env"
)

// BenchmarkScheduleFireCancelMix models the protocol workload shape: most
// events fire, but a steady fraction (response timeouts answered early,
// leases renewed) is canceled before firing.
func BenchmarkScheduleFireCancelMix(b *testing.B) {
	s := NewScheduler(1)
	noop := func() {}
	var pending []Event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := s.After(time.Duration(i%977)*time.Microsecond, noop)
		if i%4 == 0 {
			pending = append(pending, ev)
		}
		if len(pending) >= 64 {
			for _, p := range pending {
				p.Cancel()
			}
			pending = pending[:0]
		}
		if s.Pending() > 8192 {
			for s.Pending() > 0 {
				s.Step()
			}
		}
	}
	b.StopTimer()
	s.RunAll()
}

// BenchmarkSchedulerPayloadEvents measures the transport-style fast path:
// payload-carrying events dispatched through a stored func value, the form
// that must not allocate per event.
func BenchmarkSchedulerPayloadEvents(b *testing.B) {
	s := NewScheduler(1)
	type payload struct{ n int }
	sink := 0
	deliver := func(a any) { sink += a.(*payload).n }
	p := &payload{n: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AfterCall(time.Duration(i%977)*time.Microsecond, deliver, p)
		if s.Pending() > 8192 {
			for s.Pending() > 0 {
				s.Step()
			}
		}
	}
	b.StopTimer()
	s.RunAll()
	if sink == 0 && b.N > 8192 {
		b.Fatal("payload events did not run")
	}
}

// BenchmarkTickerHeavy drives the peerview-like steady state: hundreds of
// periodic tickers re-arming forever, the dominant non-message event source
// in overlay simulations.
func BenchmarkTickerHeavy(b *testing.B) {
	s := NewScheduler(1)
	const tickers = 500
	fires := 0
	for i := 0; i < tickers; i++ {
		e := s.NewEnv("n")
		env.NewTicker(e, time.Duration(250+i)*time.Millisecond, func() { fires++ })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(s.Now() + time.Second)
	}
	b.StopTimer()
	if fires == 0 {
		b.Fatal("tickers did not fire")
	}
	b.ReportMetric(float64(s.Steps())/float64(b.N), "events/op")
}

// BenchmarkShardBarrier measures the per-window coordination overhead of
// the sharded engine: every shard has exactly one event per window, so the
// cost per op is dominated by dispatch, quiesce, and merge — the price a
// workload pays even when windows carry little work.
func BenchmarkShardBarrier(b *testing.B) {
	for _, shards := range []int{2, 4, 8} {
		b.Run(benchName("shards", shards), func(b *testing.B) {
			ss := NewSharded(1, shards, time.Millisecond)
			fired := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := ss.Now() + 100*time.Microsecond
				for s := 0; s < shards; s++ {
					ss.Shard(s).At(at, func() { fired++ })
				}
				ss.Run(at)
			}
			b.StopTimer()
			if fired != b.N*shards {
				b.Fatalf("fired %d, want %d", fired, b.N*shards)
			}
		})
	}
}

// BenchmarkCrossShardDelivery measures the exchange-queue path: enqueue on
// the source shard, (timestamp, source, sequence) merge at the barrier,
// injection into the destination heap, and execution — the full life of one
// cross-shard message, without transport on top.
func BenchmarkCrossShardDelivery(b *testing.B) {
	const batch = 256
	ss := NewSharded(1, 2, time.Millisecond)
	fired := 0
	deliver := func(any) { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		at := ss.Now() + 2*time.Millisecond
		for j := 0; j < batch && i+j < b.N; j++ {
			ss.XSchedule(j%2, 1-j%2, at+time.Duration(j)*time.Nanosecond, deliver, nil)
		}
		ss.Run(at + time.Microsecond)
	}
	b.StopTimer()
	if fired != b.N {
		b.Fatalf("fired %d, want %d", fired, b.N)
	}
}

func benchName(k string, v int) string { return fmt.Sprintf("%s=%d", k, v) }
