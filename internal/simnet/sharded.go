package simnet

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Engine is the scheduler surface deployments and experiments drive: the
// serial Scheduler and the ShardedScheduler both implement it, so an overlay
// runs unchanged on either. Code that needs the concrete serial engine
// (tests poking At/Step) keeps using *Scheduler directly.
type Engine interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Steps returns the number of events executed so far.
	Steps() uint64
	// Pending returns the number of queued events (cross-shard queues
	// included).
	Pending() int
	// Run executes events up to and including virtual time until.
	Run(until time.Duration) uint64
	// Halt stops the current Run early (window-granular on the sharded
	// engine; see ShardedScheduler.Halt).
	Halt()
	// After schedules a driver-level callback at now+d; on the sharded
	// engine it runs with every shard quiesced (see ShardedScheduler.After).
	After(d time.Duration, fn func()) Event
	// NewEnv creates a node environment (on shard 0 for the sharded
	// engine; placement-aware callers use NewEnvOn).
	NewEnv(name string) *NodeEnv
}

var (
	_ Engine = (*Scheduler)(nil)
	_ Engine = (*ShardedScheduler)(nil)
)

// xentry is one cross-shard event in a per-shard-pair exchange queue.
type xentry struct {
	at  time.Duration
	seq uint64 // per-(src,dst) FIFO sequence: deterministic merge tie-break
	fn  func(any)
	arg any
	src int32
}

// workerDone reports one shard's window execution back to the coordinator.
type workerDone struct {
	shard int
	steps uint64
}

// ParallelStats instruments the window/barrier machinery. TotalEvents over
// CriticalEvents is the workload's achievable speedup bound: each window's
// wall time is its slowest shard, so the critical path is the sum of
// per-window maxima regardless of core count.
type ParallelStats struct {
	// Windows counts shard execution windows (driver windows excluded).
	Windows uint64
	// BusyShardSum sums the per-window count of shards that had events.
	BusyShardSum uint64
	// MaxBusy is the largest number of concurrently busy shards seen.
	MaxBusy int
	// TotalEvents counts events executed inside shard windows.
	TotalEvents uint64
	// CriticalEvents sums each window's maximum per-shard event count —
	// the parallel critical path in events.
	CriticalEvents uint64
	// CrossShard counts events exchanged through the barrier queues.
	CrossShard uint64
}

// SpeedupBound returns TotalEvents/CriticalEvents — the speedup an ideal
// machine with one core per shard could reach on this workload, independent
// of the hardware the measurement ran on.
func (p ParallelStats) SpeedupBound() float64 {
	if p.CriticalEvents == 0 {
		return 1
	}
	return float64(p.TotalEvents) / float64(p.CriticalEvents)
}

// ShardedScheduler is the conservative parallel engine: it partitions the
// simulation into per-core shards, each an independent serial Scheduler, and
// runs them concurrently inside lookahead windows no wider than the minimum
// cross-shard delivery latency. An event created during window [T, T+W) for
// another shard therefore always lands at ≥ T+W — the classic
// Chandy–Misra–Bryant argument — so shards never need to roll back.
//
// Cross-shard events travel through per-(src,dst) FIFO queues drained at the
// window barrier; the merge order is fixed by (timestamp, source shard,
// sequence), and every shard runs its window on a serial scheduler with its
// own derived seed, so a fixed-seed run is bit-reproducible at any
// GOMAXPROCS — the coordinator decides window boundaries from event content
// alone, never from thread timing.
type ShardedScheduler struct {
	shards    []*Scheduler
	driver    *Scheduler
	lookahead time.Duration
	now       time.Duration
	halted    atomic.Bool
	// xq holds the per-pair exchange queues, indexed src*len(shards)+dst;
	// xseq is the per-pair FIFO sequence counter. During a window each
	// queue is appended to by exactly one shard goroutine.
	xq   [][]xentry
	xseq []uint64
	// jobs/done are the parked worker channels; workers are spawned lazily
	// on the first multi-busy window of a Run and stopped when Run
	// returns, so an idle engine holds no goroutines.
	jobs []chan time.Duration
	done chan workerDone
	// merged and dispatch are scratch buffers reused across windows.
	merged   []xentry
	dispatch []int
	stat     ParallelStats
	// pipe, when non-nil, replaces the global window barrier with the
	// window-pipelined path (see pipelined.go / EnablePipelining).
	pipe *pipeState
}

// NewSharded creates a sharded engine with the given number of shards and
// conservative lookahead. The lookahead must be positive when shards > 1:
// a zero window would admit cross-shard events into the running window,
// which is exactly the causality violation conservative PDES exists to
// prevent, so that configuration panics rather than silently corrupting
// determinism. Each shard's scheduler gets its own seed derived from the
// master seed, decorrelating per-shard RNG streams.
func NewSharded(seed int64, shards int, lookahead time.Duration) *ShardedScheduler {
	if shards < 1 {
		panic(fmt.Sprintf("simnet: NewSharded with %d shards", shards))
	}
	if shards > 1 && lookahead <= 0 {
		panic("simnet: sharded engine requires positive lookahead (zero-latency cross-shard links cannot be windowed)")
	}
	ss := &ShardedScheduler{
		shards:    make([]*Scheduler, shards),
		driver:    NewScheduler(deriveSeed(seed, int64(shards))),
		lookahead: lookahead,
		xq:        make([][]xentry, shards*shards),
		xseq:      make([]uint64, shards*shards),
	}
	for i := range ss.shards {
		ss.shards[i] = NewScheduler(deriveSeed(seed, int64(i)))
	}
	return ss
}

// deriveSeed decorrelates per-shard seeds from the master seed (SplitMix64
// finalizer, the same mix DeriveRand uses for per-node streams).
func deriveSeed(seed, index int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Shards returns the shard count.
func (ss *ShardedScheduler) Shards() int { return len(ss.shards) }

// Shard returns the i-th shard's serial scheduler. Transports use it to
// schedule shard-local deliveries and derive per-shard RNG streams.
func (ss *ShardedScheduler) Shard(i int) *Scheduler { return ss.shards[i] }

// Lookahead returns the conservative window width.
func (ss *ShardedScheduler) Lookahead() time.Duration { return ss.lookahead }

// ParallelStats returns a snapshot of the window/barrier instrumentation.
func (ss *ShardedScheduler) ParallelStats() ParallelStats { return ss.stat }

// Now implements Engine.
func (ss *ShardedScheduler) Now() time.Duration { return ss.now }

// Steps implements Engine: total events executed across shards and driver.
func (ss *ShardedScheduler) Steps() uint64 {
	t := ss.driver.Steps()
	for _, sh := range ss.shards {
		t += sh.Steps()
	}
	return t
}

// Pending implements Engine: live events across shards and driver plus
// cross-shard events still waiting in exchange queues.
func (ss *ShardedScheduler) Pending() int {
	p := ss.driver.Pending()
	for _, sh := range ss.shards {
		p += sh.Pending()
	}
	for _, q := range ss.xq {
		p += len(q)
	}
	if ss.pipe != nil {
		for i := range ss.pipe.pairs {
			for _, b := range ss.pipe.pairs[i].buckets {
				p += len(b.entries)
			}
		}
	}
	return p
}

// Halt implements Engine. Unlike the serial engine's event-granular halt,
// the sharded engine stops at the next window barrier: shards mid-window
// finish the window (anything else would make the stop point depend on
// thread timing and break replay determinism).
func (ss *ShardedScheduler) Halt() { ss.halted.Store(true) }

// After implements Engine. Driver callbacks — churn injection, experiment
// sampling, query launchers — may touch nodes on any shard, so they run on a
// dedicated serial scheduler at their exact timestamp with every shard
// quiesced at that time: the window loop splits barriers at driver event
// times.
func (ss *ShardedScheduler) After(d time.Duration, fn func()) Event {
	return ss.driver.After(d, fn)
}

// NewEnv implements Engine, placing the env on shard 0. Placement-aware
// deployments use NewEnvOn so a node's timers run on the shard that owns
// its site.
func (ss *ShardedScheduler) NewEnv(name string) *NodeEnv { return ss.NewEnvOn(0, name) }

// NewEnvOn creates a node environment pinned to the given shard. All of the
// node's protocol callbacks execute inside that shard's windows, and its
// pending-callback ledger (PendingFor leak gates) lives on that shard's
// scheduler. Envs must be created in a fixed global order for replay
// determinism, as with the serial engine.
func (ss *ShardedScheduler) NewEnvOn(shard int, name string) *NodeEnv {
	return ss.shards[shard].NewEnv(name)
}

// XSchedule enqueues fn(arg) for the dst shard at absolute time at. It must
// be called from the src shard's execution context during a window, or from
// the driver/build context while shards are quiesced; entries are merged
// into dst's heap at the next barrier in (at, src, seq) order. The
// conservative contract requires at to be no earlier than the end of the
// current window — violations panic at merge time.
func (ss *ShardedScheduler) XSchedule(src, dst int, at time.Duration, fn func(any), arg any) {
	q := src*len(ss.shards) + dst
	if p := ss.pipe; p != nil && p.inPhase {
		// Pipelined phase: bucket the entry under the sender's current
		// window in the (src,dst) pair queue. The seq counter is shared
		// with the barrier path so per-pair FIFO order stays monotone
		// across modes; each pair row is written by exactly one shard
		// goroutine, so the counter needs no lock.
		e := xentry{at: at, seq: ss.xseq[q], fn: fn, arg: arg, src: int32(src)}
		ss.xseq[q]++
		if src == dst {
			ss.shards[dst].AtCall(at, fn, arg)
			return
		}
		w := p.curWin[src]
		pr := &p.pairs[q]
		pr.mu.Lock()
		if k := len(pr.buckets); k > 0 && pr.buckets[k-1].window == w {
			b := &pr.buckets[k-1]
			if at < b.minAt {
				b.minAt = at
			}
			b.entries = append(b.entries, e)
		} else {
			pr.buckets = append(pr.buckets, pipeBucket{window: w, minAt: at, entries: []xentry{e}})
		}
		pr.mu.Unlock()
		return
	}
	ss.xq[q] = append(ss.xq[q], xentry{at: at, seq: ss.xseq[q], fn: fn, arg: arg, src: int32(src)})
	ss.xseq[q]++
}

// mergeCross drains every exchange queue into its destination shard's heap.
// Runs at barriers only (all shards quiesced). The per-destination batch is
// sorted by (timestamp, source shard, sequence) before insertion so the
// destination's heap order — and therefore replay — never depends on which
// goroutine filled which queue first.
func (ss *ShardedScheduler) mergeCross() {
	n := len(ss.shards)
	for dst := 0; dst < n; dst++ {
		batch := ss.merged[:0]
		for src := 0; src < n; src++ {
			q := src*n + dst
			if len(ss.xq[q]) == 0 {
				continue
			}
			batch = append(batch, ss.xq[q]...)
			for i := range ss.xq[q] {
				ss.xq[q][i] = xentry{} // release fn/arg references
			}
			ss.xq[q] = ss.xq[q][:0]
		}
		if len(batch) == 0 {
			ss.merged = batch
			continue
		}
		sortXEntries(batch)
		sh := ss.shards[dst]
		for i := range batch {
			e := &batch[i]
			if e.at < sh.now {
				panic(fmt.Sprintf("simnet: cross-shard event at %v violates lookahead window ending %v", e.at, sh.now))
			}
			sh.AtCall(e.at, e.fn, e.arg)
		}
		ss.stat.CrossShard += uint64(len(batch))
		for i := range batch {
			batch[i] = xentry{}
		}
		ss.merged = batch[:0]
	}
}

// nextTime returns the earliest live event time across shards and driver.
func (ss *ShardedScheduler) nextTime() (time.Duration, bool) {
	best, ok := ss.driver.nextEventAt()
	for _, sh := range ss.shards {
		if t, h := sh.nextEventAt(); h && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// setTime aligns every clock — engine, driver, shards — at a barrier point.
// Only called while quiesced, with no live event earlier than t.
func (ss *ShardedScheduler) setTime(t time.Duration) {
	ss.now = t
	ss.driver.now = t
	for _, sh := range ss.shards {
		sh.now = t
	}
}

// Run implements Engine: execute events up to and including until. The loop
// is window-synchronous: pick the global minimum next-event time T, run
// every busy shard concurrently over [T, min(T+lookahead, next driver
// event, until+1ns)), exchange cross-shard events at the barrier, repeat.
// Empty stretches of virtual time are skipped in one step because T is
// always an actual event time, so sparse workloads pay per event, not per
// window of silence.
func (ss *ShardedScheduler) Run(until time.Duration) uint64 {
	start := ss.Steps()
	ss.halted.Store(false)
	if ss.pipe != nil {
		return ss.runPipelined(until)
	}
	defer ss.park()
	horizon := until + 1 // exclusive window bound admitting events at exactly until
	for !ss.halted.Load() {
		ss.mergeCross()
		t, ok := ss.nextTime()
		if !ok || t > until {
			break
		}
		if dt, ok := ss.driver.nextEventAt(); ok && dt == t {
			// Driver events run at their exact timestamp with every
			// shard quiesced at t (no shard has an event before t, so
			// advancing their clocks is safe). They may touch any node.
			ss.setTime(t)
			ss.driver.runWindow(t + 1)
			continue
		}
		end := t + ss.lookahead
		if len(ss.shards) == 1 {
			// One shard has no cross-shard causality to protect; run
			// straight to the horizon (windows would only add barriers).
			end = horizon
		}
		if dt, ok := ss.driver.nextEventAt(); ok && dt < end {
			end = dt
		}
		if end > horizon {
			end = horizon
		}
		ss.runShardWindow(end)
	}
	if !ss.halted.Load() {
		ss.setTime(until)
	}
	return ss.Steps() - start
}

// runShardWindow executes one conservative window [*, end) across all busy
// shards. The first busy shard runs inline on the coordinator — on a
// sparse workload where one shard is busy per window this makes the sharded
// engine's hot path identical in shape to the serial engine's — and the
// rest are dispatched to parked worker goroutines.
func (ss *ShardedScheduler) runShardWindow(end time.Duration) {
	inline := -1
	busy := 0
	toDispatch := ss.dispatch[:0]
	for i, sh := range ss.shards {
		if at, ok := sh.nextEventAt(); ok && at < end {
			busy++
			if inline < 0 {
				inline = i
			} else {
				toDispatch = append(toDispatch, i)
			}
		}
	}
	var maxSteps, sumSteps uint64
	if len(toDispatch) > 0 {
		ss.ensureWorkers()
		for _, i := range toDispatch {
			ss.jobs[i] <- end
		}
	}
	if inline >= 0 {
		steps := ss.shards[inline].runWindow(end)
		sumSteps += steps
		maxSteps = steps
	}
	for range toDispatch {
		d := <-ss.done
		sumSteps += d.steps
		if d.steps > maxSteps {
			maxSteps = d.steps
		}
	}
	ss.dispatch = toDispatch[:0]
	for _, sh := range ss.shards {
		if sh.now < end {
			sh.now = end
		}
	}
	ss.now = end
	ss.stat.Windows++
	ss.stat.BusyShardSum += uint64(busy)
	if busy > ss.stat.MaxBusy {
		ss.stat.MaxBusy = busy
	}
	ss.stat.TotalEvents += sumSteps
	ss.stat.CriticalEvents += maxSteps
}

// ensureWorkers spawns one parked goroutine per shard. Each worker owns its
// shard for the duration of a dispatched window; ownership passes back to
// the coordinator through the done channel, which is also the happens-before
// edge making post-window heap reads safe.
func (ss *ShardedScheduler) ensureWorkers() {
	if ss.jobs != nil {
		return
	}
	ss.jobs = make([]chan time.Duration, len(ss.shards))
	ss.done = make(chan workerDone, len(ss.shards))
	for i := range ss.shards {
		ch := make(chan time.Duration)
		ss.jobs[i] = ch
		go func(i int, ch chan time.Duration) {
			for end := range ch {
				ss.done <- workerDone{shard: i, steps: ss.shards[i].runWindow(end)}
			}
		}(i, ch)
	}
}

// park stops the worker goroutines at the end of a Run, so an idle or
// finished engine holds no goroutines (the leak-free teardown contract).
// The next Run respawns them on demand.
func (ss *ShardedScheduler) park() {
	if ss.jobs == nil {
		return
	}
	for _, ch := range ss.jobs {
		close(ch)
	}
	ss.jobs = nil
	ss.done = nil
}
