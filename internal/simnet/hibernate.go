package simnet

import (
	"math/rand"
	"sync"
)

// This file holds the engine half of edge hibernation: a per-node RNG that
// can be freeze-dried to a 16-byte stream position and rebuilt on demand,
// plus the wake/settle hooks a node installs around its own event dispatch.
//
// The per-node *rand.Rand is, by a wide margin, the largest single object a
// steady-state simulated edge retains: math/rand's default source carries a
// 607-word feedback register (~4.9 KB). A hibernating node releases the
// source and keeps only (derived seed, draws consumed); rebuilding re-seeds
// an identical register and fast-forwards the recorded number of steps, so
// the stream continues bit-for-bit where it left off. Replay cost is one
// register re-seed plus one feedback step per historical draw — steady-state
// edges draw only at construction (peer ID), so wakes fast-forward a
// handful of steps.

// countingSource wraps the stock math/rand source and counts feedback
// steps. Both Int63 and Uint64 advance the underlying register by exactly
// one step, so the count alone pins the stream position. Values pass
// through untouched: streams are bit-identical to an unwrapped source,
// which is what keeps every pre-hibernation golden valid.
type countingSource struct {
	inner rand.Source64
	n     uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.inner.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.inner.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.n = 0
	c.inner.Seed(seed)
}

// sourcePool recycles the ~4.9 KB feedback registers across wake cycles:
// with at most one node executing per shard, a handful of registers
// circulate through an arbitrarily large hibernating population.
var sourcePool = sync.Pool{New: func() any { return rand.NewSource(0).(rand.Source64) }}

// newNodeRand builds a node's RNG at stream position pos: a pooled register
// re-seeded from the node's derived seed, fast-forwarded pos steps.
func newNodeRand(seed int64, pos uint64) (*rand.Rand, *countingSource) {
	inner := sourcePool.Get().(rand.Source64)
	inner.Seed(seed)
	for i := uint64(0); i < pos; i++ {
		inner.Uint64()
	}
	src := &countingSource{inner: inner, n: pos}
	return rand.New(src), src
}

// hibHooks carries the wake/settle callbacks a hibernating node installs
// around every timer dispatch (SetHibernation).
type hibHooks struct {
	wake   func()
	settle func()
}

// SetHibernation installs dispatch hooks for a hibernating node: wake runs
// before, and settle after, every callback subsequently armed through this
// env's After. wake rehydrates freeze-dried state ahead of the callback;
// settle lets the node re-freeze once the dispatch quiesced. Deliveries
// enter through the endpoint's own hooks, not these.
func (n *NodeEnv) SetHibernation(wake, settle func()) {
	n.hib = &hibHooks{wake: wake, settle: settle}
}

// FreezeRand releases the RNG register, keeping only the stream position.
// The next Rand() call rebuilds the identical stream. Must not be called
// while other goroutines may draw — the env serialization contract already
// guarantees that.
func (n *NodeEnv) FreezeRand() {
	if n.rng == nil {
		return
	}
	n.pos = n.src.n
	sourcePool.Put(n.src.inner)
	n.src = nil
	n.rng = nil
}

// RandResident reports whether the RNG register is currently materialized
// (hibernation tests assert the freeze actually released it).
func (n *NodeEnv) RandResident() bool { return n.rng != nil }
