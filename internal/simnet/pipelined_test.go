package simnet

import (
	"runtime"
	"testing"
	"time"
)

// uniformLag builds the minimal valid lag matrix (every pair one window).
func uniformLag(n int) [][]int {
	lag := make([][]int, n)
	for i := range lag {
		lag[i] = make([]int, n)
		for j := range lag[i] {
			lag[i][j] = 1
		}
	}
	return lag
}

// pipePingPong drives the same RNG-jittered cross-shard cascade as
// TestShardedDeterministicReplay and returns an order-sensitive fingerprint
// of the execution: determinism means the exact sequence is invariant, not
// just the totals.
func pipePingPong(t *testing.T, pipelined bool) (uint64, uint64, uint64) {
	t.Helper()
	ss := NewSharded(42, 4, time.Millisecond)
	if pipelined {
		ss.EnablePipelining(uniformLag(4))
	}
	envs := make([]*NodeEnv, 4)
	for i := range envs {
		envs[i] = ss.NewEnvOn(i, "n")
	}
	// hashes[i] is only ever touched by shard i's goroutine (events run on
	// their destination shard), so the per-shard sequences are exact; the
	// cross-shard fold below is in fixed index order.
	var hashes [4]uint64
	var pingPong func(from, to int, at time.Duration)
	pingPong = func(from, to int, at time.Duration) {
		ss.XSchedule(from, to, at, func(any) {
			hashes[to] = (hashes[to] ^ (uint64(to)<<32 ^ uint64(at))) * 1099511628211
			if at < 50*time.Millisecond {
				jitter := time.Duration(envs[to].Rand().Intn(1000)) * time.Microsecond
				pingPong(to, (to+1)%4, at+time.Millisecond+jitter)
			}
		}, nil)
	}
	ss.Shard(0).At(0, func() { pingPong(0, 1, 2*time.Millisecond) })
	ss.Run(100 * time.Millisecond)
	if ss.Now() != 100*time.Millisecond {
		t.Fatalf("Now = %v, want 100ms", ss.Now())
	}
	hash := uint64(14695981039346656037)
	for _, h := range hashes {
		hash = (hash ^ h) * 1099511628211
	}
	return ss.Steps(), ss.ParallelStats().CrossShard, hash
}

func TestPipelinedDeterministicReplay(t *testing.T) {
	s1, x1, h1 := pipePingPong(t, true)
	s2, x2, h2 := pipePingPong(t, true)
	if s1 != s2 || x1 != x2 || h1 != h2 {
		t.Fatalf("pipelined replay diverged: (%d,%d,%x) vs (%d,%d,%x)", s1, x1, h1, s2, x2, h2)
	}
	if x1 == 0 {
		t.Fatal("scenario exercised no cross-shard traffic")
	}
}

func TestPipelinedGOMAXPROCSInvariant(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	type res struct {
		s, x, h uint64
	}
	var got []res
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		s, x, h := pipePingPong(t, true)
		got = append(got, res{s, x, h})
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatalf("GOMAXPROCS run %d diverged: %+v vs %+v", i, got[i], got[0])
		}
	}
}

func TestPipelinedMatchesBarrierEventContent(t *testing.T) {
	// A deterministic (RNG-free) workload must execute the identical event
	// multiset under the barrier and pipelined paths: pipelining changes
	// window boundaries, never which events run or when in virtual time.
	// The fingerprint is order-insensitive (a commutative sum) because
	// equal-timestamp ties across paths may legitimately order differently.
	run := func(pipelined bool) (uint64, uint64) {
		ss := NewSharded(7, 3, time.Millisecond)
		if pipelined {
			ss.EnablePipelining(uniformLag(3))
		}
		// sums[i] is only touched by events executing on shard i; the
		// combine below is commutative, so it is mode-independent.
		var sums [3]uint64
		var cascade func(shard int, at time.Duration)
		cascade = func(shard int, at time.Duration) {
			dst := (shard + 1) % 3
			ss.XSchedule(shard, dst, at, func(any) {
				sums[dst] += uint64(at) * uint64(shard*7+13)
				if at < 40*time.Millisecond {
					cascade(dst, at+1500*time.Microsecond)
				}
			}, nil)
		}
		for i := 0; i < 3; i++ {
			i := i
			ss.Shard(i).At(0, func() { cascade(i, 2*time.Millisecond) })
			e := ss.NewEnvOn(i, "n")
			for j := 1; j <= 20; j++ {
				at := time.Duration(j) * 2 * time.Millisecond // ties with cascade arrivals
				e.After(at, func() { sums[i] += uint64(at) * uint64(i+29) })
			}
		}
		ss.Run(60 * time.Millisecond)
		return ss.Steps(), sums[0] + sums[1] + sums[2]
	}
	bs, bsum := run(false)
	ps, psum := run(true)
	if bs != ps || bsum != psum {
		t.Fatalf("pipelined content diverged from barrier: steps %d vs %d, sum %x vs %x", ps, bs, psum, bsum)
	}
}

func TestPipelinedSparseEventsJumpWindows(t *testing.T) {
	// One busy shard, one idle shard, events seconds apart with a 1ms
	// window: the idle-jump protocol must fast-forward the lattice instead
	// of seal-ratcheting through thousands of empty windows per event.
	ss := NewSharded(1, 2, time.Millisecond)
	ss.EnablePipelining(uniformLag(2))
	e := ss.NewEnvOn(0, "a")
	fired := 0
	for i := 1; i <= 5; i++ {
		e.After(time.Duration(i)*time.Second, func() { fired++ })
	}
	done := make(chan struct{})
	go func() {
		ss.Run(10 * time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sparse pipelined run did not finish: idle fast-forward broken")
	}
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if w := ss.ParallelStats().Windows; w > 10 {
		t.Fatalf("%d windows for 5 sparse events: empty windows executed", w)
	}
	if ss.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s", ss.Now())
	}
}

func TestPipelinedPerPairLagLoosensCriticalPath(t *testing.T) {
	// Two shards exchange strictly alternating messages with a 5-window
	// latency. Under the barrier model every window holds one busy shard,
	// so CriticalEvents equals TotalEvents (bound 1.0). With lag 5 the
	// reply chain still serialises — but each shard's *local* follow-up
	// work overlaps the flight time, so the pipelined critical path must
	// come out strictly shorter than the total.
	ss := NewSharded(3, 2, time.Millisecond)
	lag := uniformLag(2)
	lag[0][1], lag[1][0] = 5, 5
	ss.EnablePipelining(lag)
	for i := 0; i < 2; i++ {
		ss.NewEnvOn(i, "n")
	}
	var volley func(from int, at time.Duration)
	volley = func(from int, at time.Duration) {
		to := 1 - from
		ss.XSchedule(from, to, at, func(any) {
			// Local follow-up burst on the receiving shard: work that can
			// overlap the next message's flight.
			for j := 1; j <= 4; j++ {
				ss.shards[to].At(at+time.Duration(j)*300*time.Microsecond, func() {})
			}
			if at < 80*time.Millisecond {
				volley(to, at+5*time.Millisecond)
			}
		}, nil)
	}
	ss.Shard(0).At(0, func() { volley(0, 5*time.Millisecond) })
	ss.Run(120 * time.Millisecond)
	st := ss.ParallelStats()
	if st.CrossShard == 0 || st.TotalEvents == 0 {
		t.Fatalf("degenerate run: %+v", st)
	}
	if st.CriticalEvents >= st.TotalEvents {
		t.Fatalf("CriticalEvents %d ≥ TotalEvents %d: per-pair lag did not overlap local work with flight time", st.CriticalEvents, st.TotalEvents)
	}
}

func TestPipelinedLeftoverCrossPhaseDelivery(t *testing.T) {
	// A cross-shard event emitted during a phase but arriving beyond its
	// end must survive the final drain and fire in a later Run.
	ss := NewSharded(9, 2, time.Millisecond)
	ss.EnablePipelining(uniformLag(2))
	fired := false
	ss.Shard(0).At(2*time.Millisecond, func() {
		ss.XSchedule(0, 1, 50*time.Millisecond, func(any) { fired = true }, nil)
	})
	ss.Run(10 * time.Millisecond)
	if fired {
		t.Fatal("future event fired inside the wrong phase")
	}
	if p := ss.Pending(); p != 1 {
		t.Fatalf("Pending = %d, want 1 leftover", p)
	}
	ss.Run(60 * time.Millisecond)
	if !fired {
		t.Fatal("leftover cross-phase event never fired")
	}
}

func TestPipelinedDriverQuiescesShards(t *testing.T) {
	// Driver callbacks split pipelined phases exactly as they split
	// barrier windows: every shard clock aligned at the driver timestamp.
	ss := NewSharded(1, 2, time.Millisecond)
	ss.EnablePipelining(uniformLag(2))
	e0 := ss.NewEnvOn(0, "a")
	e1 := ss.NewEnvOn(1, "b")
	var before, after int
	e0.After(2*time.Millisecond, func() { before++ })
	e1.After(7*time.Millisecond, func() { after++ })
	checked := false
	ss.After(5*time.Millisecond, func() {
		checked = true
		if ss.Now() != 5*time.Millisecond {
			t.Errorf("driver Now = %v, want 5ms", ss.Now())
		}
		for i := 0; i < ss.Shards(); i++ {
			if got := ss.Shard(i).Now(); got != 5*time.Millisecond {
				t.Errorf("shard %d Now = %v, want 5ms", i, got)
			}
		}
		if before != 1 || after != 0 {
			t.Errorf("driver saw before=%d after=%d, want 1, 0", before, after)
		}
	})
	ss.Run(10 * time.Millisecond)
	if !checked {
		t.Fatal("driver callback did not run")
	}
	if after != 1 {
		t.Fatal("post-driver shard event did not run")
	}
}

func TestPipelinedSingleShardIsNoop(t *testing.T) {
	ss := NewSharded(1, 1, 0)
	ss.EnablePipelining(uniformLag(1))
	if ss.Pipelined() {
		t.Fatal("single-shard engine must ignore EnablePipelining")
	}
	fired := 0
	ss.NewEnvOn(0, "a").After(3*time.Millisecond, func() { fired++ })
	ss.Run(10 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestPipelinedRunLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ss := NewSharded(1, 4, time.Millisecond)
	ss.EnablePipelining(uniformLag(4))
	for i := 0; i < 4; i++ {
		e := ss.NewEnvOn(i, "n")
		for j := 0; j < 8; j++ {
			e.After(time.Duration(j+1)*700*time.Microsecond, func() {})
		}
	}
	ss.Run(time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines after Run, %d before: phase workers leaked", got, before)
	}
}
