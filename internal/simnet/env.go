package simnet

import (
	"math/rand"
	"time"

	"jxta/internal/env"
)

// NodeEnv adapts a Scheduler to the env.Env interface for one simulated
// node. All NodeEnvs of a scheduler share the single-threaded event loop, so
// the serialization contract holds trivially.
type NodeEnv struct {
	s    *Scheduler
	name string
	rng  *rand.Rand
}

var _ env.Env = (*NodeEnv)(nil)

// NewEnv creates a node environment with its own deterministic RNG stream.
// Envs must be created in a fixed order for reproducibility; the stream is
// derived from the creation index.
func (s *Scheduler) NewEnv(name string) *NodeEnv {
	e := &NodeEnv{s: s, name: name, rng: s.DeriveRand(int64(s.nodes))}
	s.nodes++
	return e
}

// Now implements env.Env.
func (n *NodeEnv) Now() time.Duration { return n.s.Now() }

// Name implements env.Env.
func (n *NodeEnv) Name() string { return n.name }

// Rand implements env.Env.
func (n *NodeEnv) Rand() *rand.Rand { return n.rng }

// After implements env.Env.
func (n *NodeEnv) After(d time.Duration, fn func()) env.Timer {
	return n.s.After(d, fn)
}

// Scheduler exposes the underlying engine (used by transports to model
// delivery latency on the shared clock).
func (n *NodeEnv) Scheduler() *Scheduler { return n.s }
