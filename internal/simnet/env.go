package simnet

import (
	"math/rand"
	"time"

	"jxta/internal/env"
)

// NodeEnv adapts a Scheduler to the env.Env interface for one simulated
// node. All NodeEnvs of a scheduler share the single-threaded event loop, so
// the serialization contract holds trivially.
type NodeEnv struct {
	s    *Scheduler
	name string
	rng  *rand.Rand
	// src wraps rng's source and counts feedback steps; seed/pos let a
	// hibernating node release the ~4.9 KB register and rebuild the
	// identical stream on demand (see hibernate.go).
	src  *countingSource
	seed int64
	pos  uint64
	// hib, when set, wraps every After callback in wake/settle hooks
	// (SetHibernation).
	hib *hibHooks
	// idx is the env's creation index; it keys the scheduler's per-node
	// pending-callback ledger (PendingFor).
	idx int32
}

var _ env.Env = (*NodeEnv)(nil)

// NewEnv creates a node environment with its own deterministic RNG stream.
// Envs must be created in a fixed order for reproducibility; the stream is
// derived from the creation index.
func (s *Scheduler) NewEnv(name string) *NodeEnv {
	e := &NodeEnv{s: s, name: name, seed: deriveSeed(s.seed, int64(s.nodes)), idx: int32(s.nodes)}
	e.rng, e.src = newNodeRand(e.seed, 0)
	s.nodes++
	s.ownedPending = append(s.ownedPending, 0)
	return e
}

// PendingFor returns the number of live cancelable callbacks the given env
// currently owns — every timer a node's services armed through env.After
// that has neither fired nor been canceled. A leak-free node teardown
// leaves this at zero, which the lifecycle regression tests assert.
// (Fire-and-forget transport deliveries are network-owned, not node-owned,
// and are not counted.)
func (s *Scheduler) PendingFor(e *NodeEnv) int {
	if e == nil || e.s != s {
		return 0
	}
	return int(s.ownedPending[e.idx])
}

// Now implements env.Env.
func (n *NodeEnv) Now() time.Duration { return n.s.Now() }

// Name implements env.Env.
func (n *NodeEnv) Name() string { return n.name }

// Rand implements env.Env. After a FreezeRand the stream is rebuilt here,
// transparently, at its recorded position.
func (n *NodeEnv) Rand() *rand.Rand {
	if n.rng == nil {
		n.rng, n.src = newNodeRand(n.seed, n.pos)
	}
	return n.rng
}

// After implements env.Env. The callback is recorded against this env in
// the scheduler's per-node ledger until it fires or is canceled. On a
// hibernating node the callback is bracketed by the wake/settle hooks, so
// freeze-dried state rehydrates before any timer body runs.
func (n *NodeEnv) After(d time.Duration, fn func()) env.Timer {
	if h := n.hib; h != nil {
		inner := fn
		fn = func() {
			h.wake()
			inner()
			h.settle()
		}
	}
	return n.s.after(d, fn, n.idx)
}

// Pending returns the number of this env's own live callbacks; see
// Scheduler.PendingFor.
func (n *NodeEnv) Pending() int { return n.s.PendingFor(n) }

// Scheduler exposes the underlying engine (used by transports to model
// delivery latency on the shared clock).
func (n *NodeEnv) Scheduler() *Scheduler { return n.s }
