// Package simnet is a deterministic discrete-event simulation engine. It is
// the substrate standing in for the Grid'5000 testbed: the paper's
// experiments run 580 rendezvous peers for two hours of virtual time, which
// the engine executes in seconds while replaying bit-for-bit under a fixed
// seed.
//
// The engine is single-threaded: events execute strictly in (time, sequence)
// order, so all per-node protocol state is safe without locks, matching the
// env.Env contract. Parallelism lives one level up: independent experiments
// (sweep points, each with its own Scheduler) run concurrently via
// experiments.Sweep — overlays share nothing, so that scales linearly with
// cores without any cross-scheduler synchronization.
//
// The event queue is built for throughput: a 4-ary min-heap over inline
// event values (no per-event heap allocation, better cache locality and
// fewer levels than a binary heap), lazy tombstone cancellation (Cancel
// invalidates a generation counter instead of restructuring the heap; dead
// entries are discarded when they surface), and a payload-carrying event
// form (AtCall/AfterCall) that lets hot callers like the simulated transport
// schedule work without allocating a closure per event.
package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// event is one scheduled callback, stored inline in the heap slice.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for equal times: determinism
	fn  func(any)
	arg any
	// slot indexes the scheduler's generation table for cancelable events;
	// -1 marks fire-and-forget events (AtCall/AfterCall), which skip the
	// table entirely. gen is the slot generation captured at schedule time:
	// a mismatch at pop time means the event was canceled (tombstone).
	slot int32
	gen  uint32
}

// heapArity is the fan-out of the d-ary heap. Four keeps the tree two
// levels shallower than binary at simulation scale and sifts touch
// cache-adjacent children.
const heapArity = 4

// noSlot marks events without a cancellation handle.
const noSlot int32 = -1

// Scheduler owns virtual time and the event queue.
type Scheduler struct {
	now  time.Duration
	heap []event
	live int // heap entries that are not tombstones
	// slots holds the current generation per cancellation slot; free is the
	// free-list of recyclable slot indices. A slot is released (generation
	// bumped) when its event fires or is canceled, so stale Event handles
	// and heap tombstones both fail the generation check.
	slots []uint32
	free  []int32
	// owners maps each live slot to the index of the NodeEnv that scheduled
	// it (ownerNone for events scheduled directly on the scheduler), and
	// ownedPending counts live owned events per env — the per-node
	// pending-callback ledger behind PendingFor. The ledger is what lets
	// lifecycle tests *prove* a stopped node canceled every timer it owned.
	owners       []int32
	ownedPending []int32
	seq          uint64
	seed         int64
	nodes        int // count of envs created, used to derive per-node seeds
	steps        uint64
	halted       bool
}

// ownerNone marks events not owned by any NodeEnv.
const ownerNone int32 = -1

// NewScheduler creates an empty scheduler at virtual time zero. seed is the
// experiment master seed from which every per-node RNG stream derives.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{seed: seed}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Steps returns the number of events executed so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Pending returns the number of events currently queued (canceled events
// are discounted immediately, even while their tombstones still occupy heap
// slots).
func (s *Scheduler) Pending() int { return s.live }

// callFunc adapts a plain func() callback to the payload-carrying event
// form without allocating: func values are pointer-shaped, so boxing one
// into the arg field is allocation-free.
func callFunc(arg any) { arg.(func())() }

// push appends an event value and restores the heap property, sifting with
// a hole instead of pairwise swaps (events are 48 bytes; this halves the
// copies).
func (s *Scheduler) push(e event) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !lessEv(&e, &s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		i = p
	}
	s.heap[i] = e
}

func lessEv(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// popTop removes and returns the minimum event.
func (s *Scheduler) popTop() event {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release fn/arg references to the GC
	s.heap = h[:n]
	if n > 0 {
		s.siftDown(0, last)
	}
	return top
}

// siftDown places e at index i and sifts it down with a hole instead of
// pairwise swaps.
func (s *Scheduler) siftDown(i int, e event) {
	h := s.heap
	n := len(h)
	for {
		c := i*heapArity + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		best := c
		for k := c + 1; k < end; k++ {
			if lessEv(&h[k], &h[best]) {
				best = k
			}
		}
		if !lessEv(&h[best], &e) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = e
}

// compactThreshold is the tombstone count below which Cancel never
// compacts.
const compactThreshold = 64

// maybeCompact rebuilds the heap without tombstones once they outnumber
// live events. Without this, a workload that repeatedly schedules a
// far-future event and cancels it (timeout renewal) would keep every
// tombstone — and the closures it pins — until virtual time reaches the
// deadline.
func (s *Scheduler) maybeCompact() {
	dead := len(s.heap) - s.live
	if dead < compactThreshold || dead <= s.live {
		return
	}
	kept := s.heap[:0]
	for i := range s.heap {
		if !s.tombstone(&s.heap[i]) {
			kept = append(kept, s.heap[i])
		}
	}
	for i := len(kept); i < len(s.heap); i++ {
		s.heap[i] = event{} // release dropped fn/arg references
	}
	s.heap = kept
	// Heapify bottom-up; the (at, seq) order is total, so the resulting
	// pop order — and therefore replay determinism — is unchanged.
	if len(kept) > 1 {
		for i := (len(kept) - 2) / heapArity; i >= 0; i-- {
			s.siftDown(i, s.heap[i])
		}
	}
}

// tombstone reports whether a popped or peeked event was canceled.
func (s *Scheduler) tombstone(e *event) bool {
	return e.slot != noSlot && s.slots[e.slot] != e.gen
}

// dropTombstones discards canceled entries sitting at the heap top so the
// head, if any, is a live event.
func (s *Scheduler) dropTombstones() {
	for len(s.heap) > 0 && s.tombstone(&s.heap[0]) {
		s.popTop()
	}
}

// schedule enqueues fn(arg) at absolute time t. Scheduling in the past is a
// programming error and panics: silently reordering history would destroy
// the determinism guarantee.
func (s *Scheduler) schedule(t time.Duration, fn func(any), arg any, slot int32, gen uint32) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	s.push(event{at: t, seq: s.seq, fn: fn, arg: arg, slot: slot, gen: gen})
	s.seq++
	s.live++
}

// allocSlot reserves a cancellation slot, recycling released ones.
func (s *Scheduler) allocSlot() (int32, uint32) {
	if k := len(s.free); k > 0 {
		slot := s.free[k-1]
		s.free = s.free[:k-1]
		return slot, s.slots[slot]
	}
	s.slots = append(s.slots, 0)
	s.owners = append(s.owners, ownerNone)
	return int32(len(s.slots) - 1), 0
}

// releaseSlot invalidates outstanding handles/tombstones for the slot,
// settles the owner ledger and returns the slot to the free list.
func (s *Scheduler) releaseSlot(slot int32) {
	s.slots[slot]++
	if owner := s.owners[slot]; owner != ownerNone {
		s.ownedPending[owner]--
		s.owners[slot] = ownerNone
	}
	s.free = append(s.free, slot)
}

// At schedules fn at absolute virtual time t and returns a cancelable
// handle.
func (s *Scheduler) At(t time.Duration, fn func()) Event {
	return s.at(t, fn, ownerNone)
}

// at is the owner-aware scheduling core behind At/After and NodeEnv.After.
func (s *Scheduler) at(t time.Duration, fn func(), owner int32) Event {
	slot, gen := s.allocSlot()
	s.owners[slot] = owner
	if owner != ownerNone {
		s.ownedPending[owner]++
	}
	s.schedule(t, callFunc, fn, slot, gen)
	return Event{s: s, slot: slot, gen: gen}
}

// After schedules fn at now+d.
func (s *Scheduler) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return s.at(s.now+d, fn, ownerNone)
}

// after is the owner-aware relative form.
func (s *Scheduler) after(d time.Duration, fn func(), owner int32) Event {
	if d < 0 {
		d = 0
	}
	return s.at(s.now+d, fn, owner)
}

// AtCall schedules fn(arg) at absolute virtual time t without a
// cancellation handle. When fn is a long-lived func value (e.g. a method
// value stored once) and arg is a pointer, the call allocates nothing —
// this is the transport's per-message fast path.
func (s *Scheduler) AtCall(t time.Duration, fn func(any), arg any) {
	s.schedule(t, fn, arg, noSlot, 0)
}

// AfterCall schedules fn(arg) at now+d without a cancellation handle.
func (s *Scheduler) AfterCall(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, fn, arg, noSlot, 0)
}

// Event is a generation-checked handle to a scheduled event, supporting
// cancellation. The zero value is inert. Handles are values; copying is
// cheap and safe.
type Event struct {
	s    *Scheduler
	slot int32
	gen  uint32
}

// Cancel removes the event from the queue if it has not fired. It reports
// whether the event was still pending. Cancellation is lazy: the heap entry
// becomes a tombstone discarded when it reaches the top, so Cancel is O(1)
// instead of container/heap's O(log n) restructure.
func (ev Event) Cancel() bool {
	s := ev.s
	if s == nil || s.slots[ev.slot] != ev.gen {
		return false // already fired, canceled, or zero handle
	}
	s.releaseSlot(ev.slot)
	s.live--
	s.maybeCompact()
	return true
}

// Step executes the single earliest live event. It reports false if no live
// events remain.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		e := s.popTop()
		if s.tombstone(&e) {
			continue
		}
		if e.at < s.now {
			panic("simnet: time went backwards")
		}
		if e.slot != noSlot {
			s.releaseSlot(e.slot)
		}
		s.live--
		s.now = e.at
		s.steps++
		e.fn(e.arg)
		return true
	}
	return false
}

// Run executes events until the queue drains or virtual time would exceed
// until. Events at exactly `until` execute. It returns the number of events
// executed.
func (s *Scheduler) Run(until time.Duration) uint64 {
	start := s.steps
	s.halted = false
	for !s.halted {
		s.dropTombstones()
		if len(s.heap) == 0 || s.heap[0].at > until {
			break
		}
		s.Step()
	}
	if !s.halted && s.now < until {
		// Even with no events, time logically advances to the horizon so
		// subsequent scheduling is relative to it. A halted run must NOT
		// jump ahead: live events (protocol tickers) between the halt point
		// and the horizon would land in the past and wedge the next Run.
		s.now = until
	}
	return s.steps - start
}

// nextEventAt returns the time of the earliest live event, discarding any
// tombstones sitting at the heap top. The sharded engine uses it to pick the
// next conservative window start.
func (s *Scheduler) nextEventAt() (time.Duration, bool) {
	s.dropTombstones()
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// runWindow executes every live event with at < end — an exclusive bound,
// unlike Run's inclusive one — then advances now to end. It is the per-shard
// body of one conservative lookahead window: events the shard creates for
// itself inside the window run in the same pass; events for other shards are
// queued through the sharded engine and merged at the barrier. It returns
// the number of events executed.
func (s *Scheduler) runWindow(end time.Duration) uint64 {
	start := s.steps
	for {
		s.dropTombstones()
		if len(s.heap) == 0 || s.heap[0].at >= end {
			break
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
	return s.steps - start
}

// RunAll executes events until the queue is empty. Protocol tickers re-arm
// themselves forever, so experiments should prefer Run(until).
func (s *Scheduler) RunAll() uint64 {
	start := s.steps
	s.halted = false
	for s.live > 0 && !s.halted {
		s.Step()
	}
	s.dropTombstones()
	return s.steps - start
}

// Halt stops Run/RunAll after the current event returns. Intended for
// callbacks that detect an experiment end condition early.
func (s *Scheduler) Halt() { s.halted = true }

// DeriveRand returns a deterministic RNG stream for the given index,
// decorrelated from other streams by hashing the master seed with the index
// (SplitMix64 finalizer).
func (s *Scheduler) DeriveRand(index int64) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(s.seed, index)))
}
