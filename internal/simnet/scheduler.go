// Package simnet is a deterministic discrete-event simulation engine. It is
// the substrate standing in for the Grid'5000 testbed: the paper's
// experiments run 580 rendezvous peers for two hours of virtual time, which
// the engine executes in seconds while replaying bit-for-bit under a fixed
// seed.
//
// The engine is single-threaded: events execute strictly in (time, sequence)
// order, so all per-node protocol state is safe without locks, matching the
// env.Env contract. Parallelism lives one level up: independent experiments
// (sweep points, each with its own Scheduler) run concurrently via
// experiments.Sweep — overlays share nothing, so that scales linearly with
// cores without any cross-scheduler synchronization.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled callback.
type event struct {
	at    time.Duration
	seq   uint64 // FIFO tie-break for equal times: determinism
	fn    func()
	index int // heap index, -1 once popped or canceled
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler owns virtual time and the event queue.
type Scheduler struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	seed   int64
	nodes  int // count of envs created, used to derive per-node seeds
	steps  uint64
	halted bool
}

// NewScheduler creates an empty scheduler at virtual time zero. seed is the
// experiment master seed from which every per-node RNG stream derives.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{seed: seed}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Steps returns the number of events executed so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Pending returns the number of events currently queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn at absolute virtual time t. Scheduling in the past is a
// programming error and panics: silently reordering history would destroy
// the determinism guarantee.
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return &Event{e: e, s: s}
}

// After schedules fn at now+d.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Event is a handle to a scheduled event, supporting cancellation.
type Event struct {
	e *event
	s *Scheduler
}

// Cancel removes the event from the queue if it has not fired. It reports
// whether the event was still pending.
func (ev *Event) Cancel() bool {
	if ev.e.index < 0 {
		return false
	}
	heap.Remove(&ev.s.queue, ev.e.index)
	ev.e.index = -1
	ev.e.fn = nil
	return true
}

// Step executes the single earliest event. It reports false if the queue is
// empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	if e.at < s.now {
		panic("simnet: time went backwards")
	}
	s.now = e.at
	s.steps++
	if e.fn != nil {
		e.fn()
	}
	return true
}

// Run executes events until the queue drains or virtual time would exceed
// until. Events at exactly `until` execute. It returns the number of events
// executed.
func (s *Scheduler) Run(until time.Duration) uint64 {
	start := s.steps
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		if s.queue[0].at > until {
			break
		}
		s.Step()
	}
	if s.now < until {
		// Even with no events, time logically advances to the horizon so
		// subsequent scheduling is relative to it.
		s.now = until
	}
	return s.steps - start
}

// RunAll executes events until the queue is empty. Protocol tickers re-arm
// themselves forever, so experiments should prefer Run(until).
func (s *Scheduler) RunAll() uint64 {
	start := s.steps
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		s.Step()
	}
	return s.steps - start
}

// Halt stops Run/RunAll after the current event returns. Intended for
// callbacks that detect an experiment end condition early.
func (s *Scheduler) Halt() { s.halted = true }

// DeriveRand returns a deterministic RNG stream for the given index,
// decorrelated from other streams by hashing the master seed with the index
// (SplitMix64 finalizer).
func (s *Scheduler) DeriveRand(index int64) *rand.Rand {
	z := uint64(s.seed) + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
