package simnet

import (
	"runtime"
	"testing"
	"time"
)

func TestShardedZeroLookaheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded(seed, 2, 0) did not panic")
		}
	}()
	NewSharded(1, 2, 0)
}

func TestShardedSingleShardIgnoresLookahead(t *testing.T) {
	// One shard has no cross-shard causality; zero lookahead is fine and
	// Run must not degenerate into zero-width windows.
	ss := NewSharded(1, 1, 0)
	fired := 0
	ss.NewEnvOn(0, "a").After(3*time.Millisecond, func() { fired++ })
	ss.Run(10 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if ss.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v, want 10ms", ss.Now())
	}
}

func TestShardedEmptyWindowsSkipped(t *testing.T) {
	// Sparse events: the loop must jump between event times, not grind
	// through every lookahead-width window of silence.
	ss := NewSharded(1, 2, time.Millisecond)
	e := ss.NewEnvOn(0, "a")
	fired := 0
	for i := 1; i <= 5; i++ {
		e.After(time.Duration(i)*time.Second, func() { fired++ })
	}
	ss.Run(10 * time.Second)
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if w := ss.ParallelStats().Windows; w > 10 {
		t.Fatalf("%d windows for 5 sparse events over 10s: empty windows not skipped", w)
	}
	if ss.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s", ss.Now())
	}
}

func TestShardedBarrierMergeOrder(t *testing.T) {
	// Entries from both source shards into one destination must execute
	// in (timestamp, source shard, sequence) order regardless of enqueue
	// order across queues.
	ss := NewSharded(1, 2, time.Millisecond)
	var got []int
	rec := func(label int) (func(any), any) {
		return func(any) { got = append(got, label) }, nil
	}
	// Enqueued deliberately out of merge order.
	fn, arg := rec(3)
	ss.XSchedule(1, 0, 5*time.Millisecond, fn, arg) // (5ms, src1, seq0)
	fn, arg = rec(1)
	ss.XSchedule(0, 0, 5*time.Millisecond, fn, arg) // (5ms, src0, seq0)
	fn, arg = rec(0)
	ss.XSchedule(1, 0, 3*time.Millisecond, fn, arg) // (3ms, src1, seq1): earliest timestamp wins
	fn, arg = rec(2)
	ss.XSchedule(0, 0, 5*time.Millisecond, fn, arg) // (5ms, src0, seq1)
	ss.Run(10 * time.Millisecond)
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestShardedPendingCountsExchangeQueues(t *testing.T) {
	ss := NewSharded(1, 2, time.Millisecond)
	ss.NewEnvOn(0, "a").After(time.Millisecond, func() {})
	ss.XSchedule(0, 1, 2*time.Millisecond, func(any) {}, nil)
	if p := ss.Pending(); p != 2 {
		t.Fatalf("Pending = %d, want 2 (one heap event + one queued exchange)", p)
	}
	ss.Run(5 * time.Millisecond)
	if p := ss.Pending(); p != 0 {
		t.Fatalf("Pending after run = %d, want 0", p)
	}
	if ss.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2", ss.Steps())
	}
}

func TestShardedDriverRunsQuiesced(t *testing.T) {
	// A driver callback must observe every shard clock aligned at its own
	// exact timestamp — the quiesced-barrier contract that makes
	// cross-shard mutation (churn injection) safe.
	ss := NewSharded(1, 2, time.Millisecond)
	e0 := ss.NewEnvOn(0, "a")
	e1 := ss.NewEnvOn(1, "b")
	var before, after int
	e0.After(2*time.Millisecond, func() { before++ })
	e1.After(7*time.Millisecond, func() { after++ })
	checked := false
	ss.After(5*time.Millisecond, func() {
		checked = true
		if ss.Now() != 5*time.Millisecond {
			t.Errorf("driver Now = %v, want 5ms", ss.Now())
		}
		for i := 0; i < ss.Shards(); i++ {
			if got := ss.Shard(i).Now(); got != 5*time.Millisecond {
				t.Errorf("shard %d Now = %v, want 5ms", i, got)
			}
		}
		if before != 1 || after != 0 {
			t.Errorf("driver saw before=%d after=%d, want 1, 0", before, after)
		}
	})
	ss.Run(10 * time.Millisecond)
	if !checked {
		t.Fatal("driver callback did not run")
	}
	if after != 1 {
		t.Fatal("post-driver shard event did not run")
	}
}

func TestShardedHaltStopsAtBarrier(t *testing.T) {
	ss := NewSharded(1, 2, time.Millisecond)
	e := ss.NewEnvOn(0, "a")
	fired := 0
	e.After(2*time.Millisecond, func() { fired++ })
	e.After(8*time.Millisecond, func() { fired++ })
	ss.After(5*time.Millisecond, ss.Halt)
	ss.Run(20 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (halt must stop the 8ms event)", fired)
	}
	if ss.Now() != 5*time.Millisecond {
		t.Fatalf("Now = %v, want halt point 5ms (a halted run must not jump to the horizon)", ss.Now())
	}
	// A later Run resumes where the halt left off.
	ss.Run(20 * time.Millisecond)
	if fired != 2 {
		t.Fatalf("fired after resume = %d, want 2", fired)
	}
}

func TestShardedLookaheadViolationPanics(t *testing.T) {
	// An event exchanged with a timestamp inside the current window is a
	// causality violation; the merge must refuse it loudly.
	ss := NewSharded(1, 2, time.Millisecond)
	ss.Shard(0).At(0, func() {
		ss.XSchedule(0, 1, 0, func(any) {}, nil) // arrival in the past at merge
	})
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	ss.Run(10 * time.Millisecond)
}

func TestShardedDeterministicReplay(t *testing.T) {
	// Two engines over the same seed must execute identical event
	// sequences, including cross-shard traffic driven by derived RNG
	// streams.
	run := func() (uint64, uint64, time.Duration) {
		ss := NewSharded(42, 4, time.Millisecond)
		envs := make([]*NodeEnv, 4)
		for i := range envs {
			envs[i] = ss.NewEnvOn(i, "n")
		}
		var pingPong func(from, to int, at time.Duration)
		pingPong = func(from, to int, at time.Duration) {
			ss.XSchedule(from, to, at, func(any) {
				if at < 50*time.Millisecond {
					jitter := time.Duration(envs[to].Rand().Intn(1000)) * time.Microsecond
					pingPong(to, (to+1)%4, at+time.Millisecond+jitter)
				}
			}, nil)
		}
		ss.Shard(0).At(0, func() { pingPong(0, 1, 2*time.Millisecond) })
		ss.Run(100 * time.Millisecond)
		st := ss.ParallelStats()
		return ss.Steps(), st.CrossShard, ss.Now()
	}
	s1, x1, n1 := run()
	s2, x2, n2 := run()
	if s1 != s2 || x1 != x2 || n1 != n2 {
		t.Fatalf("replay diverged: (%d,%d,%v) vs (%d,%d,%v)", s1, x1, n1, s2, x2, n2)
	}
	if x1 == 0 {
		t.Fatal("scenario exercised no cross-shard traffic")
	}
}

func TestShardedRunParksWorkers(t *testing.T) {
	// Worker goroutines live only inside Run: a finished engine holds no
	// goroutines (the leak-free teardown contract from PR 3).
	before := runtime.NumGoroutine()
	ss := NewSharded(1, 4, time.Millisecond)
	for i := 0; i < 4; i++ {
		e := ss.NewEnvOn(i, "n")
		// Several events per shard in one window so workers actually spawn.
		for j := 0; j < 8; j++ {
			e.After(time.Duration(j)*100*time.Microsecond, func() {})
		}
	}
	ss.Run(time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines after Run, %d before: workers not parked", got, before)
	}
}
