// Package netmodel models the network substrate of the paper's experiments:
// the French Grid'5000 testbed, nine sites interconnected by the RENATER
// research backbone, each site a Giga-Ethernet cluster. The model supplies
// one-way message latencies (site matrix + jitter), transmission time from a
// 1 Gb/s access link, a per-message protocol-stack service time (the JXTA-C
// software overhead), and optional loss injection for failure experiments.
//
// Latency values are calibrated, not measured: published RENATER RTTs from
// the Grid'5000 era (a few ms between western sites, ~10 ms for the longest
// diagonals) divided by two, with the stack service time chosen so that the
// paper's configuration-A discovery plateau lands near its reported ≈12 ms.
// DESIGN.md records this substitution.
package netmodel

import (
	"fmt"
	"math/rand"
	"time"
)

// Site enumerates the nine Grid'5000 sites used in the paper (§4).
type Site int

// The nine sites, alphabetical as listed in the paper.
const (
	Bordeaux Site = iota
	Grenoble
	Lille
	Lyon
	Nancy
	Orsay
	Rennes
	Sophia
	Toulouse
	numSites
)

// NumSites is the number of modeled sites.
const NumSites = int(numSites)

var siteNames = [...]string{
	"bordeaux", "grenoble", "lille", "lyon", "nancy",
	"orsay", "rennes", "sophia", "toulouse",
}

// String returns the lower-case site name.
func (s Site) String() string {
	if s < 0 || int(s) >= NumSites {
		return fmt.Sprintf("site(%d)", int(s))
	}
	return siteNames[s]
}

// ParseSite resolves a site name.
func ParseSite(name string) (Site, error) {
	for i, n := range siteNames {
		if n == name {
			return Site(i), nil
		}
	}
	return 0, fmt.Errorf("netmodel: unknown site %q", name)
}

// AllSites returns the nine sites in declaration order.
func AllSites() []Site {
	sites := make([]Site, NumSites)
	for i := range sites {
		sites[i] = Site(i)
	}
	return sites
}

// Model describes the simulated network.
type Model struct {
	// IntraSite is the one-way latency between two nodes of the same
	// cluster (Giga-Ethernet switch hop).
	IntraSite time.Duration
	// InterSite is the one-way latency matrix between sites. Symmetric;
	// the diagonal is ignored (IntraSite applies).
	InterSite [NumSites][NumSites]time.Duration
	// Jitter is the relative uniform jitter applied to each latency sample
	// (0.1 = ±10%).
	Jitter float64
	// BandwidthBps is the access-link rate used for transmission delay
	// (size*8/bandwidth). Zero disables the term.
	BandwidthBps int64
	// StackService is the per-message service time a receiving peer's
	// protocol stack consumes before the message is handed to the service
	// handler. Messages queue behind it (FIFO per receiving peer), which is
	// what makes heavily loaded rendezvous peers slow (§4.2 config B).
	StackService time.Duration
	// LossRate is the probability a message is silently dropped. Used by
	// failure-injection tests; zero for the paper's experiments.
	LossRate float64
}

// grid5000RTTms holds calibrated site-to-site RTTs in milliseconds,
// upper-triangular (i<j). Derived from RENATER topology: geographically
// close pairs a few ms, the long Lille–Toulouse / Rennes–Sophia diagonals
// near 20 ms RTT.
var grid5000RTTms = map[[2]Site]float64{
	{Bordeaux, Grenoble}: 11, {Bordeaux, Lille}: 13, {Bordeaux, Lyon}: 9,
	{Bordeaux, Nancy}: 14, {Bordeaux, Orsay}: 8, {Bordeaux, Rennes}: 8,
	{Bordeaux, Sophia}: 13, {Bordeaux, Toulouse}: 4,

	{Grenoble, Lille}: 12, {Grenoble, Lyon}: 3, {Grenoble, Nancy}: 10,
	{Grenoble, Orsay}: 9, {Grenoble, Rennes}: 13, {Grenoble, Sophia}: 7,
	{Grenoble, Toulouse}: 10,

	{Lille, Lyon}: 10, {Lille, Nancy}: 7, {Lille, Orsay}: 5,
	{Lille, Rennes}: 9, {Lille, Sophia}: 16, {Lille, Toulouse}: 17,

	{Lyon, Nancy}: 8, {Lyon, Orsay}: 7, {Lyon, Rennes}: 11,
	{Lyon, Sophia}: 5, {Lyon, Toulouse}: 8,

	{Nancy, Orsay}: 6, {Nancy, Rennes}: 11, {Nancy, Sophia}: 13,
	{Nancy, Toulouse}: 15,

	{Orsay, Rennes}: 5, {Orsay, Sophia}: 12, {Orsay, Toulouse}: 11,

	{Rennes, Sophia}: 17, {Rennes, Toulouse}: 12,

	{Sophia, Toulouse}: 9,
}

// rttCalibration scales the raw RTT table so that configuration A's
// measured discovery plateau lands at the paper's ≈12 ms (four messages,
// three of them inter-site). RENATER paths were shorter than great-circle
// estimates suggest; 0.7 was fit against the reproduced Figure 4 (right).
const rttCalibration = 0.7

// Grid5000 returns the calibrated nine-site model used by the paper's
// experiment reproductions.
func Grid5000() *Model {
	m := &Model{
		IntraSite:    100 * time.Microsecond,
		Jitter:       0.10,
		BandwidthBps: 1_000_000_000, // Giga Ethernet
		StackService: 400 * time.Microsecond,
	}
	for pair, rtt := range grid5000RTTms {
		oneWay := time.Duration(rtt / 2 * rttCalibration * float64(time.Millisecond))
		m.InterSite[pair[0]][pair[1]] = oneWay
		m.InterSite[pair[1]][pair[0]] = oneWay
	}
	return m
}

// Uniform returns a degenerate single-latency model, handy for unit tests
// and for isolating protocol behaviour from topology.
func Uniform(latency time.Duration) *Model {
	m := &Model{IntraSite: latency, StackService: 0}
	for i := 0; i < NumSites; i++ {
		for j := 0; j < NumSites; j++ {
			if i != j {
				m.InterSite[i][j] = latency
			}
		}
	}
	return m
}

// BaseLatency returns the un-jittered one-way propagation latency between
// two sites.
func (m *Model) BaseLatency(a, b Site) time.Duration {
	if a == b {
		return m.IntraSite
	}
	return m.InterSite[a][b]
}

// SampleLatency draws the full one-way delay for a message of the given size
// between two sites: propagation (jittered) plus transmission.
func (m *Model) SampleLatency(a, b Site, size int, rng *rand.Rand) time.Duration {
	base := m.BaseLatency(a, b)
	d := base
	if m.Jitter > 0 && base > 0 {
		f := 1 + m.Jitter*(2*rng.Float64()-1)
		d = time.Duration(float64(base) * f)
	}
	if m.BandwidthBps > 0 && size > 0 {
		d += time.Duration(int64(size) * 8 * int64(time.Second) / m.BandwidthBps)
	}
	return d
}

// Drop reports whether a message should be lost, per the model's loss rate.
func (m *Model) Drop(rng *rand.Rand) bool {
	return m.LossRate > 0 && rng.Float64() < m.LossRate
}

// MeanInterSite returns the average one-way latency over all distinct site
// pairs — a useful scalar when calibrating expected hop costs.
func (m *Model) MeanInterSite() time.Duration {
	var sum time.Duration
	var n int64
	for i := 0; i < NumSites; i++ {
		for j := i + 1; j < NumSites; j++ {
			sum += m.InterSite[i][j]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// ShardLookahead derives the conservative-PDES window width for a
// site→shard assignment (assign[site] = shard): the minimum over all
// cross-shard site pairs of the worst-case jittered one-way propagation
// latency, minus one nanosecond guarding float rounding in SampleLatency.
// Any message between shards takes at least this long, so events created
// inside a window [T, T+W) for another shard always land at ≥ T+W —
// transmission delay and the FIFO clamp only push arrivals later. It
// returns 0 when some cross-shard pair has no positive latency (no safe
// window exists; the caller must co-locate those sites or stay serial).
func (m *Model) ShardLookahead(assign []int) time.Duration {
	la, found := time.Duration(0), false
	for i := 0; i < NumSites && i < len(assign); i++ {
		for j := 0; j < NumSites && j < len(assign); j++ {
			if i == j || assign[i] == assign[j] {
				continue
			}
			base := m.BaseLatency(Site(i), Site(j))
			if base <= 0 {
				return 0
			}
			floor := time.Duration(float64(base) * (1 - m.Jitter))
			if !found || floor < la {
				la, found = floor, true
			}
		}
	}
	if !found {
		return 0
	}
	if la -= 1; la <= 0 {
		return 0
	}
	return la
}

// ShardLagMatrix derives the per-(src,dst) window-lag matrix the pipelined
// sharded engine consumes: lag[a][b] is how many whole lookahead windows the
// (a,b) cross-shard latency floor spans, i.e. floor(minPair(a,b)/window)
// where minPair is the minimum over site pairs (i∈a, j∈b) of the worst-case
// jittered one-way propagation latency. An event emitted during sender
// window w toward shard b therefore arrives no earlier than window
// w+lag[a][b]; because the window itself is the global minimum floor minus
// 1ns, every entry is ≥ 1. Distant shard pairs get larger lags, which is
// what lets the pipelined engine run them several windows apart — with a
// uniform lag of 1 the pipelined critical path provably equals the barrier
// one. Diagonal entries are unused and set to 1.
func (m *Model) ShardLagMatrix(assign []int, shards int, window time.Duration) [][]int {
	lag := make([][]int, shards)
	for a := range lag {
		lag[a] = make([]int, shards)
		for b := range lag[a] {
			lag[a][b] = 1
		}
	}
	if window <= 0 {
		return lag
	}
	minPair := make([][]time.Duration, shards)
	for a := range minPair {
		minPair[a] = make([]time.Duration, shards)
	}
	for i := 0; i < NumSites && i < len(assign); i++ {
		for j := 0; j < NumSites && j < len(assign); j++ {
			if i == j || assign[i] == assign[j] {
				continue
			}
			base := m.BaseLatency(Site(i), Site(j))
			if base <= 0 {
				continue
			}
			floor := time.Duration(float64(base) * (1 - m.Jitter))
			a, b := assign[i], assign[j]
			if a >= shards || b >= shards {
				continue
			}
			if minPair[a][b] == 0 || floor < minPair[a][b] {
				minPair[a][b] = floor
			}
		}
	}
	for a := 0; a < shards; a++ {
		for b := 0; b < shards; b++ {
			if a == b || minPair[a][b] == 0 {
				continue
			}
			if l := int(minPair[a][b] / window); l > 1 {
				lag[a][b] = l
			}
		}
	}
	return lag
}

// SpreadSites assigns n nodes round-robin across all nine sites, the way the
// paper's deployments spread rendezvous peers over Grid'5000.
func SpreadSites(n int) []Site {
	sites := make([]Site, n)
	for i := range sites {
		sites[i] = Site(i % NumSites)
	}
	return sites
}
