package netmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSiteNames(t *testing.T) {
	if Rennes.String() != "rennes" || Sophia.String() != "sophia" {
		t.Fatal("site names wrong")
	}
	if Site(99).String() != "site(99)" {
		t.Fatal("out-of-range site name")
	}
	for _, s := range AllSites() {
		got, err := ParseSite(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseSite(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSite("atlantis"); err == nil {
		t.Fatal("unknown site parsed")
	}
}

func TestGrid5000MatrixComplete(t *testing.T) {
	m := Grid5000()
	for i := 0; i < NumSites; i++ {
		for j := 0; j < NumSites; j++ {
			if i == j {
				continue
			}
			if m.InterSite[i][j] <= 0 {
				t.Fatalf("missing latency %v-%v", Site(i), Site(j))
			}
			if m.InterSite[i][j] != m.InterSite[j][i] {
				t.Fatalf("asymmetric latency %v-%v", Site(i), Site(j))
			}
		}
	}
}

func TestGrid5000Plausible(t *testing.T) {
	m := Grid5000()
	mean := m.MeanInterSite()
	if mean < time.Millisecond || mean > 20*time.Millisecond {
		t.Fatalf("mean inter-site latency %v implausible for RENATER", mean)
	}
	if m.IntraSite >= m.MeanInterSite() {
		t.Fatal("LAN latency not below WAN latency")
	}
}

func TestBaseLatencyIntraSite(t *testing.T) {
	m := Grid5000()
	if m.BaseLatency(Rennes, Rennes) != m.IntraSite {
		t.Fatal("same-site latency != IntraSite")
	}
}

func TestSampleLatencyJitterBounds(t *testing.T) {
	m := Grid5000()
	rng := rand.New(rand.NewSource(5))
	base := m.BaseLatency(Rennes, Sophia)
	for i := 0; i < 1000; i++ {
		d := m.SampleLatency(Rennes, Sophia, 0, rng)
		lo := time.Duration(float64(base) * (1 - m.Jitter - 1e-9))
		hi := time.Duration(float64(base) * (1 + m.Jitter + 1e-9))
		if d < lo || d > hi {
			t.Fatalf("sample %v outside [%v,%v]", d, lo, hi)
		}
	}
}

func TestSampleLatencyTransmissionTerm(t *testing.T) {
	m := Uniform(time.Millisecond)
	m.BandwidthBps = 1_000_000_000
	rng := rand.New(rand.NewSource(1))
	small := m.SampleLatency(Rennes, Sophia, 0, rng)
	large := m.SampleLatency(Rennes, Sophia, 1_250_000, rng) // 10 ms at 1 Gb/s
	if large-small < 9*time.Millisecond {
		t.Fatalf("transmission term missing: small=%v large=%v", small, large)
	}
}

func TestUniformModel(t *testing.T) {
	m := Uniform(2 * time.Millisecond)
	rng := rand.New(rand.NewSource(1))
	for _, a := range AllSites() {
		for _, b := range AllSites() {
			if d := m.SampleLatency(a, b, 0, rng); d != 2*time.Millisecond {
				t.Fatalf("uniform latency %v between %v and %v", d, a, b)
			}
		}
	}
}

func TestDrop(t *testing.T) {
	m := Uniform(time.Millisecond)
	rng := rand.New(rand.NewSource(2))
	if m.Drop(rng) {
		t.Fatal("zero loss rate dropped a message")
	}
	m.LossRate = 1
	if !m.Drop(rng) {
		t.Fatal("loss rate 1 kept a message")
	}
	m.LossRate = 0.5
	drops := 0
	for i := 0; i < 10_000; i++ {
		if m.Drop(rng) {
			drops++
		}
	}
	if drops < 4500 || drops > 5500 {
		t.Fatalf("loss rate 0.5 dropped %d/10000", drops)
	}
}

func TestSpreadSites(t *testing.T) {
	sites := SpreadSites(20)
	if len(sites) != 20 {
		t.Fatalf("len = %d", len(sites))
	}
	counts := map[Site]int{}
	for _, s := range sites {
		counts[s]++
	}
	// 20 nodes over 9 sites: each site gets 2 or 3.
	for s, c := range counts {
		if c < 2 || c > 3 {
			t.Fatalf("site %v has %d nodes", s, c)
		}
	}
}

// Property: latency samples are always positive and deterministic per seed.
func TestSampleLatencyProperties(t *testing.T) {
	m := Grid5000()
	f := func(seed int64, ai, bi uint8, size uint16) bool {
		a, b := Site(int(ai)%NumSites), Site(int(bi)%NumSites)
		d1 := m.SampleLatency(a, b, int(size), rand.New(rand.NewSource(seed)))
		d2 := m.SampleLatency(a, b, int(size), rand.New(rand.NewSource(seed)))
		return d1 > 0 && d1 == d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSampleLatency(b *testing.B) {
	m := Grid5000()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		m.SampleLatency(Rennes, Sophia, 512, rng)
	}
}
