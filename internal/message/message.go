// Package message implements the JXTA message abstraction: an ordered
// sequence of named, namespaced elements carrying opaque bytes (typically
// XML documents). Messages are what the endpoint service moves between
// peers; every protocol above (resolver, rendezvous, discovery) speaks in
// message elements.
package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"unsafe"

	"jxta/internal/document"
)

// bufPool recycles encoding buffers for transports that serialize frames on
// a hot path. Buffers are handed out by pointer so Put never re-boxes the
// slice header.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// GetBuffer returns a reusable encoding buffer of zero length. Pass it to
// AppendMarshal and return it with PutBuffer once the frame has been
// written out.
func GetBuffer() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuffer returns a buffer obtained from GetBuffer to the pool. The
// caller must not retain the slice afterwards.
func PutBuffer(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Element is one named payload inside a message.
type Element struct {
	Namespace string // e.g. "jxta"
	Name      string // e.g. "ResolverQuery"
	Data      []byte
}

// Size returns the approximate wire footprint of the element.
func (e Element) Size() int { return len(e.Namespace) + len(e.Name) + len(e.Data) + 12 }

// Message is an ordered collection of elements. The zero value is an empty
// message ready to use. Messages must be used by pointer: copying a Message
// value would alias its inline element storage.
type Message struct {
	elements []Element
	// inline backs small messages without a separate slice allocation; the
	// protocol norm is 1-4 elements per message.
	inline [4]Element
}

// New returns an empty message.
func New() *Message { return &Message{} }

// Len returns the number of elements.
func (m *Message) Len() int { return len(m.elements) }

// Add appends a raw element.
func (m *Message) Add(namespace, name string, data []byte) *Message {
	if m.elements == nil {
		m.elements = m.inline[:0]
	}
	m.elements = append(m.elements, Element{Namespace: namespace, Name: name, Data: data})
	return m
}

// AddString appends a text element without copying: the string's backing
// bytes are aliased directly. This is safe because strings are immutable
// and element payloads are read-only by contract — every boundary that
// hands a message onward (transport Clone, Marshal, Unmarshal) copies the
// bytes, and no code path writes into Element.Data.
func (m *Message) AddString(namespace, name, value string) *Message {
	return m.Add(namespace, name, stringBytes(value))
}

// stringBytes aliases a string's bytes as a read-only []byte.
func stringBytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// AddDocument appends a structured document as an XML element.
func (m *Message) AddDocument(namespace, name string, doc *document.Element) error {
	data, err := doc.Marshal()
	if err != nil {
		return err
	}
	m.Add(namespace, name, data)
	return nil
}

// Get returns the payload of the first element with the given namespace and
// name, and whether it exists. The returned bytes are read-only: elements
// added via AddString alias immutable string memory.
func (m *Message) Get(namespace, name string) ([]byte, bool) {
	for _, e := range m.elements {
		if e.Namespace == namespace && e.Name == name {
			return e.Data, true
		}
	}
	return nil, false
}

// GetString returns a text element's payload, or "" if absent.
func (m *Message) GetString(namespace, name string) string {
	data, _ := m.Get(namespace, name)
	return string(data)
}

// GetDocument decodes an XML element into a structured document.
func (m *Message) GetDocument(namespace, name string) (*document.Element, error) {
	data, ok := m.Get(namespace, name)
	if !ok {
		return nil, fmt.Errorf("message: element %s:%s absent", namespace, name)
	}
	return document.Unmarshal(data)
}

// Elements returns the elements in order. The slice is shared; callers must
// not mutate it.
func (m *Message) Elements() []Element { return m.elements }

// Clone returns a deep copy, used by the simulated transport so that the
// receiver can never observe sender-side mutation (the sim must behave like
// a real network that serializes bytes). All element payloads share one
// contiguous backing buffer (capacity-clipped so an append on one element
// can never bleed into the next), so a clone costs three allocations
// however many elements the message carries.
func (m *Message) Clone() *Message {
	total := 0
	for _, e := range m.elements {
		total += len(e.Data)
	}
	cp := &Message{}
	if n := len(m.elements); n <= len(cp.inline) {
		cp.elements = cp.inline[:n]
	} else {
		cp.elements = make([]Element, n)
	}
	buf := make([]byte, total)
	off := 0
	for i, e := range m.elements {
		end := off + len(e.Data)
		data := buf[off:end:end]
		copy(data, e.Data)
		off = end
		cp.elements[i] = Element{Namespace: e.Namespace, Name: e.Name, Data: data}
	}
	return cp
}

// Size returns the approximate wire footprint of the whole message. The
// network model charges transmission time proportional to this.
func (m *Message) Size() int {
	n := 8 // header
	for _, e := range m.elements {
		n += e.Size()
	}
	return n
}

// Wire format:
//
//	magic "JXM1" | uvarint elementCount | elements...
//	element: uvarint nsLen | ns | uvarint nameLen | name | uvarint dataLen | data
const magic = "JXM1"

// Unmarshal hard limits guarding against corrupt or hostile frames.
const (
	maxElements    = 1 << 12
	maxElementSize = 1 << 24
)

// Errors returned by Unmarshal.
var (
	ErrBadMagic  = errors.New("message: bad magic")
	ErrTruncated = errors.New("message: truncated frame")
	ErrTooLarge  = errors.New("message: element exceeds limits")
)

// MarshaledSize returns the exact encoded length of the frame Marshal
// produces, so encoding buffers can be sized without a growth path.
func (m *Message) MarshaledSize() int {
	n := len(magic) + uvarintLen(uint64(len(m.elements)))
	for _, e := range m.elements {
		n += uvarintLen(uint64(len(e.Namespace))) + len(e.Namespace)
		n += uvarintLen(uint64(len(e.Name))) + len(e.Name)
		n += uvarintLen(uint64(len(e.Data))) + len(e.Data)
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Marshal encodes the message into a self-delimiting binary frame. The
// returned buffer is exactly sized and owned by the caller; senders on a
// hot path should prefer AppendMarshal with a pooled buffer.
func (m *Message) Marshal() []byte {
	return m.AppendMarshal(make([]byte, 0, m.MarshaledSize()))
}

// AppendMarshal appends the encoded frame to dst and returns the extended
// slice, letting callers amortize buffer allocations across sends.
func (m *Message) AppendMarshal(dst []byte) []byte {
	buf := dst
	buf = append(buf, magic...)
	buf = binary.AppendUvarint(buf, uint64(len(m.elements)))
	for _, e := range m.elements {
		buf = binary.AppendUvarint(buf, uint64(len(e.Namespace)))
		buf = append(buf, e.Namespace...)
		buf = binary.AppendUvarint(buf, uint64(len(e.Name)))
		buf = append(buf, e.Name...)
		buf = binary.AppendUvarint(buf, uint64(len(e.Data)))
		buf = append(buf, e.Data...)
	}
	return buf
}

// Unmarshal decodes a frame produced by Marshal.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	rest := data[len(magic):]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, ErrTruncated
	}
	if count > maxElements {
		return nil, fmt.Errorf("%w: %d elements", ErrTooLarge, count)
	}
	rest = rest[n:]
	m := &Message{}
	if count <= uint64(len(m.inline)) {
		m.elements = m.inline[:0]
	} else {
		m.elements = make([]Element, 0, count)
	}
	readChunk := func() ([]byte, error) {
		l, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, ErrTruncated
		}
		if l > maxElementSize {
			return nil, fmt.Errorf("%w: chunk of %d bytes", ErrTooLarge, l)
		}
		rest = rest[n:]
		if uint64(len(rest)) < l {
			return nil, ErrTruncated
		}
		chunk := rest[:l]
		rest = rest[l:]
		return chunk, nil
	}
	for i := uint64(0); i < count; i++ {
		ns, err := readChunk()
		if err != nil {
			return nil, err
		}
		name, err := readChunk()
		if err != nil {
			return nil, err
		}
		payload, err := readChunk()
		if err != nil {
			return nil, err
		}
		data := make([]byte, len(payload))
		copy(data, payload)
		m.elements = append(m.elements, Element{
			Namespace: string(ns),
			Name:      string(name),
			Data:      data,
		})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("message: %d trailing bytes", len(rest))
	}
	return m, nil
}

// Equal reports whether two messages have identical element sequences.
func (m *Message) Equal(o *Message) bool {
	if m.Len() != o.Len() {
		return false
	}
	for i, e := range m.elements {
		oe := o.elements[i]
		if e.Namespace != oe.Namespace || e.Name != oe.Name || string(e.Data) != string(oe.Data) {
			return false
		}
	}
	return true
}

// String summarizes the message for logs.
func (m *Message) String() string {
	s := "msg{"
	for i, e := range m.elements {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s:%s(%dB)", e.Namespace, e.Name, len(e.Data))
	}
	return s + "}"
}
