package message

import (
	"strings"
	"testing"
	"testing/quick"

	"jxta/internal/document"
)

func sample() *Message {
	m := New()
	m.AddString("jxta", "SrcPeer", "urn:jxta:uuid-01")
	m.Add("jxta", "Payload", []byte{0x00, 0x01, 0xff})
	m.AddString("app", "Note", "hello")
	return m
}

func TestAddGet(t *testing.T) {
	m := sample()
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if got := m.GetString("jxta", "SrcPeer"); got != "urn:jxta:uuid-01" {
		t.Fatalf("GetString = %q", got)
	}
	if data, ok := m.Get("jxta", "Payload"); !ok || len(data) != 3 || data[2] != 0xff {
		t.Fatalf("Get payload = %v, %v", data, ok)
	}
	if _, ok := m.Get("jxta", "Missing"); ok {
		t.Fatal("missing element reported present")
	}
	if m.GetString("none", "none") != "" {
		t.Fatal("missing GetString not empty")
	}
}

func TestGetFirstOfDuplicates(t *testing.T) {
	m := New()
	m.AddString("ns", "k", "first")
	m.AddString("ns", "k", "second")
	if got := m.GetString("ns", "k"); got != "first" {
		t.Fatalf("duplicate lookup = %q, want first", got)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	m := sample()
	back, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatalf("round trip changed message: %s vs %s", m, back)
	}
}

func TestEmptyMessageRoundTrip(t *testing.T) {
	back, err := Unmarshal(New().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("empty round trip has %d elements", back.Len())
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid := sample().Marshal()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE1234"),
		"truncated 1": valid[:len(valid)-2],
		"truncated 2": valid[:6],
		"trailing":    append(append([]byte{}, valid...), 0x00),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: Unmarshal succeeded", name)
		}
	}
}

func TestUnmarshalElementCountLimit(t *testing.T) {
	frame := []byte(magic)
	frame = append(frame, 0xff, 0xff, 0xff, 0xff, 0x7f) // huge uvarint count
	if _, err := Unmarshal(frame); err == nil {
		t.Fatal("huge element count accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := sample()
	cp := m.Clone()
	if !cp.Equal(m) {
		t.Fatal("clone differs")
	}
	data, _ := cp.Get("jxta", "Payload")
	data[0] = 0x99
	orig, _ := m.Get("jxta", "Payload")
	if orig[0] == 0x99 {
		t.Fatal("clone shares payload bytes")
	}
}

func TestDocumentElementRoundTrip(t *testing.T) {
	doc := document.NewElement("jxta:RdvAdv").AppendText("Name", "r1")
	m := New()
	if err := m.AddDocument("jxta", "RdvAdv", doc); err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.GetDocument("jxta", "RdvAdv")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(doc) {
		t.Fatalf("document changed in transit: %s vs %s", doc, got)
	}
}

func TestGetDocumentAbsent(t *testing.T) {
	if _, err := New().GetDocument("a", "b"); err == nil {
		t.Fatal("absent document lookup succeeded")
	}
}

func TestAddDocumentMixedContentError(t *testing.T) {
	bad := document.NewElement("X").WithText("t").AppendText("C", "c")
	if err := New().AddDocument("ns", "n", bad); err == nil {
		t.Fatal("AddDocument accepted unencodable document")
	}
}

func TestSizeTracksContent(t *testing.T) {
	small := New().AddString("a", "b", "c")
	large := New().Add("a", "b", make([]byte, 10_000))
	if small.Size() <= 8 {
		t.Fatal("size missing element overhead")
	}
	if large.Size() < 10_000 {
		t.Fatal("size undercounts payload")
	}
	if got := len(small.Marshal()); got > small.Size()+16 {
		t.Fatalf("Size() estimate %d far from wire %d", small.Size(), got)
	}
}

func TestStringSummary(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "jxta:SrcPeer") || !strings.Contains(s, "app:Note") {
		t.Fatalf("String() = %q", s)
	}
}

func TestEqual(t *testing.T) {
	a := sample()
	b := sample()
	if !a.Equal(b) {
		t.Fatal("identical messages unequal")
	}
	b.AddString("x", "y", "z")
	if a.Equal(b) {
		t.Fatal("different lengths equal")
	}
	c := New().AddString("jxta", "SrcPeer", "other").
		Add("jxta", "Payload", []byte{0, 1, 0xff}).AddString("app", "Note", "hello")
	if a.Equal(c) {
		t.Fatal("different payloads equal")
	}
}

// Property: Marshal/Unmarshal is the identity for arbitrary element content,
// including empty and binary payloads.
func TestRoundTripProperty(t *testing.T) {
	f := func(ns, name string, data []byte, ns2, name2 string, data2 []byte) bool {
		m := New().Add(ns, name, data).Add(ns2, name2, data2)
		back, err := Unmarshal(m.Marshal())
		return err == nil && back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics on arbitrary input.
func TestUnmarshalRobustness(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Also fuzz mutations of a valid frame.
	valid := sample().Marshal()
	for i := range valid {
		mutated := append([]byte{}, valid...)
		mutated[i] ^= 0xff
		_, _ = Unmarshal(mutated)
	}
}

func BenchmarkMarshal(b *testing.B) {
	m := sample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Marshal()
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	data := sample().Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClone(b *testing.B) {
	m := sample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Clone()
	}
}

// Property: Size() stays within a small constant factor of the true wire
// length (the network model charges latency by it).
func TestSizeTracksWireLengthProperty(t *testing.T) {
	f := func(ns, name string, data []byte) bool {
		m := New().Add(ns, name, data)
		wire := len(m.Marshal())
		est := m.Size()
		return est >= wire/2 && est <= wire*2+32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
