package metrics

import (
	"sync"
	"time"
)

// TraceEvent is one protocol-level event: a promotion, failover, merge,
// lease transition or similar rare state change. At carries the node's
// clock at the time of the event as an offset from the env epoch —
// virtual time in simulation, process uptime on a live node — so traces
// line up with experiment timelines.
type TraceEvent struct {
	// Seq is a per-trace monotonic sequence number; it survives ring
	// eviction, so gaps reveal how many events were dropped.
	Seq uint64 `json:"seq"`
	// At is the node-clock timestamp of the event (offset from epoch).
	At time.Duration `json:"at"`
	// Type names the transition, e.g. "lease-acquired", "failover",
	// "promotion", "island-merge".
	Type string `json:"type"`
	// Detail is a short human-readable elaboration (peer short-IDs etc.).
	Detail string `json:"detail"`
}

// Trace is a fixed-capacity ring buffer of TraceEvents. Recording is
// mutex-protected — these are rare protocol transitions, not hot-path
// traffic — and a nil *Trace is a valid no-op sink, so uninstrumented
// components can record unconditionally.
type Trace struct {
	mu  sync.Mutex
	cap int
	seq uint64
	buf []TraceEvent
	// start indexes the oldest event once the ring has wrapped.
	start int
}

// DefaultTraceCapacity is the ring size node.New uses: enough to hold a
// node's full lease/failover/merge history in every experiment we run,
// at ~100 bytes per slot.
const DefaultTraceCapacity = 256

// NewTrace returns a ring holding the last capacity events
// (DefaultTraceCapacity if capacity <= 0). The ring storage is allocated
// lazily on the first Record: protocol transitions are rare, so most
// peers in a large quiet population never pay for the buffer at all.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{cap: capacity}
}

// Record appends one event, evicting the oldest when full. Safe on a
// nil receiver (drops the event).
func (t *Trace) Record(at time.Duration, typ, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	ev := TraceEvent{Seq: t.seq, At: at, Type: typ, Detail: detail}
	if len(t.buf) < t.cap {
		if t.buf == nil {
			t.buf = make([]TraceEvent, 0, t.cap)
		}
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.start] = ev
		t.start = (t.start + 1) % t.cap
	}
	t.mu.Unlock()
}

// Events returns a copy of the buffered events, oldest first. Safe on a
// nil receiver (returns nil).
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.buf))
	out = append(out, t.buf[t.start:]...)
	out = append(out, t.buf[:t.start]...)
	return out
}

// Len reports the number of buffered events. Safe on a nil receiver.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total reports how many events were ever recorded, including evicted
// ones. Safe on a nil receiver.
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
