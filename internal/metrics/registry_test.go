package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jxta_test_ops_total", "ops so far")
	c.Add(7)
	g := r.Gauge("jxta_test_depth", "queue depth")
	g.Set(-3)
	v := r.CounterVec("jxta_test_msgs_total", "messages by service", "service")
	v.With("resolver").Add(2)
	v.With("pipe.msg").Inc()
	r.GaugeFunc("jxta_test_size", "live size", func() float64 { return 2.5 })
	r.CounterFunc("jxta_test_raw_total", "bridged counter", func() uint64 { return 9 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP jxta_test_depth queue depth
# TYPE jxta_test_depth gauge
jxta_test_depth -3
# HELP jxta_test_msgs_total messages by service
# TYPE jxta_test_msgs_total counter
jxta_test_msgs_total{service="pipe.msg"} 1
jxta_test_msgs_total{service="resolver"} 2
# HELP jxta_test_ops_total ops so far
# TYPE jxta_test_ops_total counter
jxta_test_ops_total 7
# HELP jxta_test_raw_total bridged counter
# TYPE jxta_test_raw_total counter
jxta_test_raw_total 9
# HELP jxta_test_size live size
# TYPE jxta_test_size gauge
jxta_test_size 2.5
`
	if got != want {
		t.Fatalf("encoding mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHistogramEncodingAndBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("jxta_test_latency_seconds", "latency", []float64{0.1, 1, 10})
	// Boundary semantics: le is inclusive, so 0.1 lands in the first
	// bucket and 0.100001 in the second.
	for _, v := range []float64{0.05, 0.1, 0.100001, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-106.250001) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP jxta_test_latency_seconds latency
# TYPE jxta_test_latency_seconds histogram
jxta_test_latency_seconds_bucket{le="0.1"} 2
jxta_test_latency_seconds_bucket{le="1"} 4
jxta_test_latency_seconds_bucket{le="10"} 5
jxta_test_latency_seconds_bucket{le="+Inf"} 6
jxta_test_latency_seconds_sum 106.250001
jxta_test_latency_seconds_count 6
`
	if got != want {
		t.Fatalf("histogram encoding mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	snap := r.Snapshot()
	if snap[`jxta_test_latency_seconds_bucket{le="1"}`] != 4 {
		t.Fatalf("snapshot bucket: %v", snap)
	}
	if snap["jxta_test_latency_seconds_count"] != 6 {
		t.Fatalf("snapshot count: %v", snap)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("jxta_test_esc_total", `help with \ backslash`, "svc").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, `# HELP jxta_test_esc_total help with \\ backslash`) {
		t.Fatalf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, `jxta_test_esc_total{svc="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", got)
	}
}

func TestCardinalityCap(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("jxta_test_peers_total", "per-peer", "peer")
	for i := 0; i < MaxCardinality+50; i++ {
		v.With(fmt.Sprintf("peer-%04d", i)).Inc()
	}
	if n := r.NumSeries(); n != MaxCardinality+1 {
		t.Fatalf("series = %d, want cap+overflow = %d", n, MaxCardinality+1)
	}
	// All 50 over-cap increments share the overflow child.
	over := v.With(OverflowLabel).Value()
	if over != 50 {
		t.Fatalf("overflow child = %d, want 50", over)
	}
	// Existing children keep working after the cap.
	v.With("peer-0000").Inc()
	if got := v.With("peer-0000").Value(); got != 2 {
		t.Fatalf("pre-cap child = %d, want 2", got)
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("jxta_test_x", "a counter")
	r.Gauge("jxta_test_x", "now a gauge")
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("jxta_test_same", "h")
	b := r.Counter("jxta_test_same", "h")
	if a != b {
		t.Fatal("re-registration must return the same instrument")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instruments not shared")
	}
}

// TestRegistryConcurrent hammers every instrument type from many
// goroutines while encoding runs concurrently; run under -race it is the
// lock-freedom regression test, and the final counts prove no lost
// updates.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jxta_test_conc_total", "c")
	g := r.Gauge("jxta_test_conc_depth", "g")
	h := r.Histogram("jxta_test_conc_lat", "h", nil)
	v := r.CounterVec("jxta_test_conc_svc_total", "v", "service")

	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := v.With(fmt.Sprintf("svc-%d", w%4))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.003)
				child.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-float64(workers*per)*0.003) > 1e-6 {
		t.Fatalf("histogram sum = %v", h.Sum())
	}
	total := uint64(0)
	for i := 0; i < 4; i++ {
		total += v.With(fmt.Sprintf("svc-%d", i)).Value()
	}
	if total != workers*per {
		t.Fatalf("vec total = %d, want %d", total, workers*per)
	}
}

func TestCounterFuncWithLabeledChildren(t *testing.T) {
	r := NewRegistry()
	vals := []uint64{11, 22}
	for i := range vals {
		i := i
		r.CounterFuncWith("jxta_sim_shard_steps_total", "Events per shard.",
			"shard", fmt.Sprintf("%d", i), func() uint64 { return vals[i] })
	}
	snap := r.Snapshot()
	if snap[`jxta_sim_shard_steps_total{shard="0"}`] != 11 ||
		snap[`jxta_sim_shard_steps_total{shard="1"}`] != 22 {
		t.Fatalf("labeled func children wrong: %v", snap)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `jxta_sim_shard_steps_total{shard="1"} 22`) {
		t.Fatalf("encoding missing labeled func child:\n%s", b.String())
	}
}
