package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the instrument families a Registry holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	// KindCounterFunc and KindGaugeFunc are collector-backed instruments:
	// the value is computed by a callback at encode/snapshot time instead
	// of being stored. They bridge pre-existing plain counter structs
	// (transport.Stats, socket.Stats, discovery.Stats) and size gauges
	// (view size, roster, cache records) into the registry with zero cost
	// on the mutating path.
	KindCounterFunc
	KindGaugeFunc
)

// MaxCardinality caps the number of distinct label values a single Vec
// family will materialize. The first MaxCardinality values get their own
// child series; every later value shares the overflow child, labeled
// OverflowLabel. An unbounded label (say, a peer ID in a million-peer
// overlay) therefore degrades gracefully instead of growing the registry
// without bound.
const MaxCardinality = 256

// OverflowLabel is the label value of the shared overflow child a Vec
// returns once MaxCardinality distinct values exist.
const OverflowLabel = "_overflow"

// Counter is a monotonically increasing counter. Inc and Add are
// lock-free single atomic adds: safe from any goroutine, O(ns), and
// allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are lock-free
// atomics.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (d may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default histogram boundaries, in seconds — spanning
// sub-millisecond LAN round trips through the multi-second WAN timeouts
// the netmodel simulates.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram counts observations into cumulative buckets, Prometheus
// style. Observe is lock-free: one atomic add on the owning bucket, one
// on the count, and a CAS loop folding the observation into the float
// sum. No allocations after construction.
type Histogram struct {
	upper   []float64 // sorted upper bounds, exclusive of +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// child is one labeled series inside a family.
type child struct {
	label string // label value; "" on unlabeled families
	c     Counter
	g     Gauge
	h     *Histogram
	cf    func() uint64
	gf    func() float64
}

// family is one named metric with all its labeled children.
type family struct {
	name     string
	help     string
	kind     Kind
	labelKey string // "" for unlabeled
	buckets  []float64

	mu       sync.Mutex
	children []*child
	byLabel  map[string]*child
}

func (f *family) getOrAdd(label string) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.byLabel[label]; ok {
		return ch
	}
	if len(f.children) >= MaxCardinality {
		if ch, ok := f.byLabel[OverflowLabel]; ok {
			return ch
		}
		label = OverflowLabel
	}
	ch := &child{label: label}
	if f.kind == KindHistogram {
		ch.h = &Histogram{upper: f.buckets, buckets: make([]atomic.Uint64, len(f.buckets)+1)}
	}
	f.children = append(f.children, ch)
	f.byLabel[label] = ch
	return ch
}

// Registry holds a node's instruments and encodes them in Prometheus
// text exposition format v0.0.4. Registration takes a lock; the
// instruments handed back operate lock-free afterwards. A Registry is
// safe for concurrent use, including encoding while instruments are
// being updated — except for Func instruments, whose callbacks read
// protocol state and must be sampled under whatever discipline that
// state requires (the live admin server encodes under the node's env
// lock; simulation drivers read between scheduler steps).
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	fams   []*family
	// discard marks the process-wide pre-bind sink: Func registrations are
	// dropped on it (see Discard).
	discard bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// discard is the process-wide pre-bind registry behind Discard.
var discard = &Registry{byName: make(map[string]*family), discard: true}

// Discard returns the process-wide pre-bind registry: a write-only sink
// service constructors instrument against so their counter fields are
// always valid, before the node assembly re-instruments them onto the
// node's own registry. Sharing one sink instead of allocating a throwaway
// Registry per service per peer matters at population scale — seven
// registries per node otherwise. Never encode or snapshot it: its real
// counters aggregate every uninstrumented component in the process. Func
// registrations are dropped outright — their closures capture protocol
// state, and retaining them here would pin every service (and through it
// every overlay) ever constructed in the process.
func Discard() *Registry { return discard }

// register creates or fetches a family, panicking on a kind/label
// mismatch — that is always a programming error, caught in tests.
func (r *Registry) register(name, help string, kind Kind, labelKey string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || f.labelKey != labelKey {
			panic(fmt.Sprintf("metrics: conflicting registration of %q", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, labelKey: labelKey,
		buckets: buckets, byLabel: make(map[string]*child),
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &r.register(name, help, KindCounter, "", nil).getOrAdd("").c
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &r.register(name, help, KindGauge, "", nil).getOrAdd("").g
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// upper bucket bounds (DefBuckets if nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, KindHistogram, "", buckets).getOrAdd("").h
}

// CounterFunc registers a collector-backed counter whose value is read
// from fn at encode/snapshot time.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r.discard {
		return
	}
	r.register(name, help, KindCounterFunc, "", nil).getOrAdd("").cf = fn
}

// GaugeFunc registers a collector-backed gauge whose value is read from
// fn at encode/snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r.discard {
		return
	}
	r.register(name, help, KindGaugeFunc, "", nil).getOrAdd("").gf = fn
}

// CounterFuncWith registers a collector-backed counter child under a
// labeled family — one callback per label value (the sharded engine's
// per-shard event counters use this). Same-name registrations must agree
// on labelKey; re-registering a label value replaces its callback.
func (r *Registry) CounterFuncWith(name, help, labelKey, labelValue string, fn func() uint64) {
	if r.discard {
		return
	}
	r.register(name, help, KindCounterFunc, labelKey, nil).getOrAdd(labelValue).cf = fn
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a counter family keyed by labelKey.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labelKey, nil)}
}

// With returns the child counter for the given label value, creating it
// on first use. The lookup takes the family lock — hot paths should
// cache the returned *Counter (per-service caches in the endpoint do
// exactly this) so steady-state increments stay lock-free.
func (v *CounterVec) With(value string) *Counter { return &v.f.getOrAdd(value).c }

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a gauge family keyed by labelKey.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labelKey, nil)}
}

// With returns the child gauge for the given label value.
func (v *GaugeVec) With(value string) *Gauge { return &v.f.getOrAdd(value).g }

// snapshotFamilies copies the family list and each family's children so
// encoding can walk them without holding registry locks.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) snapshotChildren() []*child {
	f.mu.Lock()
	ch := make([]*child, len(f.children))
	copy(ch, f.children)
	f.mu.Unlock()
	sort.Slice(ch, func(i, j int) bool { return ch[i].label < ch[j].label })
	return ch
}

func promType(k Kind) string {
	switch k {
	case KindCounter, KindCounterFunc:
		return "counter"
	case KindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders name{key="value"} (or bare name when unlabeled),
// with extra an optional additional label (used for histogram le).
func seriesName(name, key, value string) string {
	if key == "" {
		return name
	}
	return name + `{` + key + `="` + escapeLabel(value) + `"}`
}

// WritePrometheus encodes every instrument in Prometheus text exposition
// format v0.0.4: a # HELP and # TYPE line per family, then one line per
// series, families sorted by name and children by label value. Func
// instruments invoke their callbacks — see the Registry doc for the
// locking discipline they require.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.snapshotFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, promType(f.kind))
		for _, ch := range f.snapshotChildren() {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, f.labelKey, ch.label), ch.c.Value())
			case KindGauge:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, f.labelKey, ch.label), ch.g.Value())
			case KindCounterFunc:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, f.labelKey, ch.label), ch.cf())
			case KindGaugeFunc:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, f.labelKey, ch.label), formatFloat(ch.gf()))
			case KindHistogram:
				cum := uint64(0)
				for i, ub := range ch.h.upper {
					cum += ch.h.buckets[i].Load()
					fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", f.name, formatFloat(ub), cum)
				}
				cum += ch.h.buckets[len(ch.h.upper)].Load()
				fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
				fmt.Fprintf(&b, "%s_sum %s\n", f.name, formatFloat(ch.h.Sum()))
				fmt.Fprintf(&b, "%s_count %d\n", f.name, ch.h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot flattens every series into a map keyed Prometheus-style
// (name or name{key="value"}; histograms expand to _bucket/_sum/_count
// entries). The same Func-instrument locking discipline as
// WritePrometheus applies. Intended for JSON status pages and the
// jxta-bench per-node dumps.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.snapshotFamilies() {
		for _, ch := range f.snapshotChildren() {
			key := seriesName(f.name, f.labelKey, ch.label)
			switch f.kind {
			case KindCounter:
				out[key] = float64(ch.c.Value())
			case KindGauge:
				out[key] = float64(ch.g.Value())
			case KindCounterFunc:
				out[key] = float64(ch.cf())
			case KindGaugeFunc:
				out[key] = ch.gf()
			case KindHistogram:
				cum := uint64(0)
				for i, ub := range ch.h.upper {
					cum += ch.h.buckets[i].Load()
					out[f.name+`_bucket{le="`+formatFloat(ub)+`"}`] = float64(cum)
				}
				cum += ch.h.buckets[len(ch.h.upper)].Load()
				out[f.name+`_bucket{le="+Inf"}`] = float64(cum)
				out[f.name+"_sum"] = ch.h.Sum()
				out[f.name+"_count"] = float64(ch.h.Count())
			}
		}
	}
	return out
}

// NumSeries reports the number of materialized series (children) across
// all families — the registry's memory footprint driver, bounded per
// family by MaxCardinality.
func (r *Registry) NumSeries() int {
	n := 0
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		n += len(f.children)
		f.mu.Unlock()
	}
	return n
}
