// Package metrics is the stack's measurement layer, covering both the
// paper's offline experiment analysis and live production observability.
//
// The offline half — Series, EventLog, Samples — is the plumbing the
// experiment drivers use to reproduce the paper's figures: time series
// (peerview size over time, Figure 3 left / 4 left), membership event
// logs with first-seen numbering (Figure 3 right), and latency sample
// sets with summary statistics (Figure 4 right).
//
// The runtime half is a Registry of named Counter/Gauge/Histogram
// instruments with single-label Vec variants and collector-backed Func
// instruments. Increments and observations are lock-free atomics with
// zero allocations after registration (see BenchmarkCounterInc), so
// every protocol service carries its instruments unconditionally —
// instrumentation is a pure observer and the determinism goldens hold
// byte-identical with it enabled. The Registry encodes to Prometheus
// text exposition format v0.0.4 (WritePrometheus) for the jxta-node
// admin endpoint and to a flat map (Snapshot) for /statusz and the
// jxta-bench per-node JSON dumps. Trace is the companion protocol
// event ring: rare state transitions (promotions, failovers, merges,
// lease changes) timestamped with the node's — virtual or wall — clock.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"jxta/internal/ids"
)

// Series is an append-only time series of (time, value) points.
type Series struct {
	Times  []time.Duration
	Values []float64
}

// Add appends a point.
func (s *Series) Add(t time.Duration, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// At returns the i-th point.
func (s *Series) At(i int) (time.Duration, float64) { return s.Times[i], s.Values[i] }

// Last returns the final value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Max returns the maximum value, or 0 for an empty series.
func (s *Series) Max() float64 {
	max := 0.0
	for i, v := range s.Values {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// MeanAfter averages the values at times >= t (the steady-state plateau of
// a peerview experiment).
func (s *Series) MeanAfter(t time.Duration) float64 {
	sum, n := 0.0, 0
	for i, v := range s.Values {
		if s.Times[i] >= t {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CSV renders the series as "minutes,value" lines.
func (s *Series) CSV() string {
	var sb strings.Builder
	for i := range s.Times {
		fmt.Fprintf(&sb, "%.2f,%g\n", s.Times[i].Minutes(), s.Values[i])
	}
	return sb.String()
}

// EventKind tags membership events.
type EventKind int

// Membership event kinds (mirrors peerview's, kept separate so metrics does
// not import protocol packages).
const (
	EventAdd EventKind = iota
	EventRemove
)

// Event is one membership change, with the per-peer number assigned at its
// first addition (Figure 3 right's y axis).
type Event struct {
	At      time.Duration
	Kind    EventKind
	Peer    ids.ID
	PeerNum int
}

// EventLog records add/remove events, numbering peers in first-seen order
// starting from 1, exactly like the paper's Figure 3 (right).
type EventLog struct {
	Events []Event
	nums   map[ids.ID]int
}

// NewEventLog builds an empty log.
func NewEventLog() *EventLog { return &EventLog{nums: make(map[ids.ID]int)} }

// Record appends an event, assigning the peer number on first sight.
func (l *EventLog) Record(at time.Duration, kind EventKind, peer ids.ID) {
	num, ok := l.nums[peer]
	if !ok {
		num = len(l.nums) + 1
		l.nums[peer] = num
	}
	l.Events = append(l.Events, Event{At: at, Kind: kind, Peer: peer, PeerNum: num})
}

// DistinctPeers returns how many distinct peers have been seen.
func (l *EventLog) DistinctPeers() int { return len(l.nums) }

// Counts returns the number of add and remove events.
func (l *EventLog) Counts() (adds, removes int) {
	for _, e := range l.Events {
		if e.Kind == EventAdd {
			adds++
		} else {
			removes++
		}
	}
	return adds, removes
}

// FirstRemoveAt returns when the first remove event occurred (0, false if
// none) — the start of the paper's phase 2.
func (l *EventLog) FirstRemoveAt() (time.Duration, bool) {
	for _, e := range l.Events {
		if e.Kind == EventRemove {
			return e.At, true
		}
	}
	return 0, false
}

// LastAddAt returns when the last distinct peer was first added (the
// "117 minutes" observation for r=580).
func (l *EventLog) LastAddAt() (time.Duration, bool) {
	seen := map[ids.ID]bool{}
	var last time.Duration
	found := false
	for _, e := range l.Events {
		if e.Kind == EventAdd && !seen[e.Peer] {
			seen[e.Peer] = true
			last = e.At
			found = true
		}
	}
	return last, found
}

// Samples accumulates scalar measurements (per-query latencies).
type Samples struct {
	data   []float64
	sorted bool
}

// Add appends a sample.
func (s *Samples) Add(v float64) {
	s.data = append(s.data, v)
	s.sorted = false
}

// AddDuration appends a duration sample in milliseconds.
func (s *Samples) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the sample count.
func (s *Samples) N() int { return len(s.data) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Samples) Mean() float64 {
	if len(s.data) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.data {
		sum += v
	}
	return sum / float64(len(s.data))
}

// Stddev returns the population standard deviation.
func (s *Samples) Stddev() float64 {
	if len(s.data) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.data {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.data)))
}

func (s *Samples) sortIfNeeded() {
	if !s.sorted {
		sort.Float64s(s.data)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear interpolation.
func (s *Samples) Quantile(q float64) float64 {
	if len(s.data) == 0 {
		return 0
	}
	s.sortIfNeeded()
	if q <= 0 {
		return s.data[0]
	}
	if q >= 1 {
		return s.data[len(s.data)-1]
	}
	pos := q * float64(len(s.data)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.data) {
		return s.data[lo]
	}
	return s.data[lo]*(1-frac) + s.data[lo+1]*frac
}

// Min returns the smallest sample.
func (s *Samples) Min() float64 { return s.Quantile(0) }

// Max returns the largest sample.
func (s *Samples) Max() float64 { return s.Quantile(1) }

// Summary renders "mean=… p50=… p95=… n=…".
func (s *Samples) Summary() string {
	return fmt.Sprintf("mean=%.2f p50=%.2f p95=%.2f min=%.2f max=%.2f n=%d",
		s.Mean(), s.Quantile(0.5), s.Quantile(0.95), s.Min(), s.Max(), s.N())
}
