package metrics

import (
	"testing"
)

// BenchmarkCounterInc is the tentpole's overhead proof: a counter
// increment must be a single uncontended atomic add — single-digit
// nanoseconds, zero allocations — so instruments can sit on every
// protocol hot path unconditionally. Recorded in BENCH_PR7.json.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_ops_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("lost increments")
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_bytes_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1400)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	r := NewRegistry()
	g := r.Gauge("bench_depth", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_latency_seconds", "bench", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

// BenchmarkCounterVecCachedInc measures the steady-state Vec pattern:
// the child is looked up once (the endpoint caches per-service children
// the same way) and incremented lock-free thereafter.
func BenchmarkCounterVecCachedInc(b *testing.B) {
	r := NewRegistry()
	c := r.CounterVec("bench_svc_total", "bench", "service").With("resolver")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterVecWith measures the uncached lookup path (one mutex
// acquisition + map hit) for reference; hot paths avoid it by caching.
func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_with_total", "bench", "service")
	v.With("resolver")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("resolver").Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_par_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
