package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"jxta/internal/ids"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.Last() != 0 || s.Max() != 0 {
		t.Fatal("empty series accessors wrong")
	}
	s.Add(time.Minute, 3)
	s.Add(2*time.Minute, 7)
	s.Add(3*time.Minute, 5)
	if s.Len() != 3 || s.Last() != 5 || s.Max() != 7 {
		t.Fatalf("Len=%d Last=%g Max=%g", s.Len(), s.Last(), s.Max())
	}
	at, v := s.At(1)
	if at != 2*time.Minute || v != 7 {
		t.Fatal("At wrong")
	}
}

func TestSeriesMeanAfter(t *testing.T) {
	var s Series
	for i := 1; i <= 10; i++ {
		s.Add(time.Duration(i)*time.Minute, float64(i))
	}
	// After minute 6: values 6..10, mean 8.
	if got := s.MeanAfter(6 * time.Minute); got != 8 {
		t.Fatalf("MeanAfter = %g, want 8", got)
	}
	if s.MeanAfter(time.Hour) != 0 {
		t.Fatal("MeanAfter past end should be 0")
	}
}

func TestSeriesCSV(t *testing.T) {
	var s Series
	s.Add(90*time.Second, 42)
	csv := s.CSV()
	if !strings.Contains(csv, "1.50,42") {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestEventLogNumbering(t *testing.T) {
	l := NewEventLog()
	p1 := ids.FromName(ids.KindPeer, "p1")
	p2 := ids.FromName(ids.KindPeer, "p2")
	l.Record(time.Minute, EventAdd, p1)
	l.Record(2*time.Minute, EventAdd, p2)
	l.Record(3*time.Minute, EventRemove, p1)
	l.Record(4*time.Minute, EventAdd, p1) // re-add keeps number 1
	if l.DistinctPeers() != 2 {
		t.Fatalf("DistinctPeers = %d", l.DistinctPeers())
	}
	if l.Events[0].PeerNum != 1 || l.Events[1].PeerNum != 2 ||
		l.Events[2].PeerNum != 1 || l.Events[3].PeerNum != 1 {
		t.Fatalf("numbering wrong: %+v", l.Events)
	}
	adds, removes := l.Counts()
	if adds != 3 || removes != 1 {
		t.Fatalf("Counts = %d, %d", adds, removes)
	}
}

func TestEventLogPhaseMarkers(t *testing.T) {
	l := NewEventLog()
	p1 := ids.FromName(ids.KindPeer, "p1")
	p2 := ids.FromName(ids.KindPeer, "p2")
	if _, ok := l.FirstRemoveAt(); ok {
		t.Fatal("empty log has a first remove")
	}
	if _, ok := l.LastAddAt(); ok {
		t.Fatal("empty log has a last add")
	}
	l.Record(time.Minute, EventAdd, p1)
	l.Record(20*time.Minute, EventRemove, p1)
	l.Record(21*time.Minute, EventAdd, p1) // re-add is not a new distinct add
	l.Record(30*time.Minute, EventAdd, p2)
	at, ok := l.FirstRemoveAt()
	if !ok || at != 20*time.Minute {
		t.Fatalf("FirstRemoveAt = %v, %v", at, ok)
	}
	last, ok := l.LastAddAt()
	if !ok || last != 30*time.Minute {
		t.Fatalf("LastAddAt = %v, %v", last, ok)
	}
}

func TestSamplesStats(t *testing.T) {
	var s Samples
	if s.Mean() != 0 || s.Quantile(0.5) != 0 || s.N() != 0 {
		t.Fatal("empty samples accessors wrong")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	if s.Quantile(0.5) != 3 {
		t.Fatalf("median = %g", s.Quantile(0.5))
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatal("min/max wrong")
	}
	if s.Quantile(-1) != 1 || s.Quantile(2) != 5 {
		t.Fatal("clamped quantiles wrong")
	}
	if s.Stddev() < 1.41 || s.Stddev() > 1.42 {
		t.Fatalf("Stddev = %g", s.Stddev())
	}
}

func TestSamplesAddDuration(t *testing.T) {
	var s Samples
	s.AddDuration(12 * time.Millisecond)
	if s.Mean() != 12 {
		t.Fatalf("AddDuration stored %g, want 12 (ms)", s.Mean())
	}
}

func TestSamplesSummary(t *testing.T) {
	var s Samples
	s.Add(10)
	if !strings.Contains(s.Summary(), "mean=10.00") || !strings.Contains(s.Summary(), "n=1") {
		t.Fatalf("Summary = %q", s.Summary())
	}
}

func TestSamplesInterleavedAddQuantile(t *testing.T) {
	var s Samples
	s.Add(5)
	_ = s.Quantile(0.5)
	s.Add(1) // must re-sort
	if s.Min() != 1 {
		t.Fatal("sort cache stale after Add")
	}
}

// Property: Quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Samples
		for i := 0; i < int(n)+1; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		prev := s.Min()
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max] and matches a direct computation.
func TestMeanProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if v != v || v > 1e15 || v < -1e15 { // NaN / huge guards
				return true
			}
		}
		var s Samples
		sum := 0.0
		for _, v := range vals {
			s.Add(v)
			sum += v
		}
		want := sum / float64(len(vals))
		got := s.Mean()
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return diff < 1e-6 && got >= sorted[0]-1e-9 && got <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
