package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestTraceRingWrap(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record(time.Duration(i)*time.Second, "ev", "")
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	// Oldest-first: sequences 7..10 survive.
	for i, ev := range evs {
		if ev.Seq != uint64(7+i) {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, ev.Seq, 7+i)
		}
		if ev.At != time.Duration(6+i)*time.Second {
			t.Fatalf("evs[%d].At = %v", i, ev.At)
		}
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Record(time.Second, "x", "y") // must not panic
	if tr.Events() != nil || tr.Len() != 0 || tr.Total() != 0 {
		t.Fatal("nil trace must be an empty no-op sink")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(time.Duration(i), "promotion", "p")
				_ = tr.Events()
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 4000 {
		t.Fatalf("total = %d", tr.Total())
	}
	if tr.Len() != 64 {
		t.Fatalf("len = %d", tr.Len())
	}
}
