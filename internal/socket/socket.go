// Package socket implements JXTA sockets: reliable, bidirectional,
// flow-controlled byte streams bound over pipe advertisements — the data
// plane the JXTA stack layers above its fire-and-forget pipes, and the
// layer the research group's companion benchmarks measure (throughput vs.
// message size, round-trip latency).
//
// The protocol is a compact TCP analogue spoken in JXTA messages over the
// endpoint service: a SYN/SYN-ACK/ACK handshake binds a connection to a
// pipe advertisement, data travels in sequence-numbered segments covered
// by cumulative ACKs, a sliding send window (bounded by both the local
// window configuration and the receiver's advertised free buffer) provides
// flow control, and a per-connection retransmission timer with exponential
// backoff recovers losses. All timers run through env.Env, so the same
// code is deterministic under the simulation scheduler and wall-clock
// driven over real TCP transports.
//
// The API is io.ReadWriter-shaped but non-blocking, matching the
// single-threaded env callback model: Write copies as much as fits into
// the send buffer and returns the count; Read drains whatever has arrived
// in order. OnReadable/OnWritable callbacks resume pumping when data or
// window space appears.
package socket

import (
	"errors"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/metrics"
	"jxta/internal/pipe"
)

// ServiceName is the endpoint service socket segments travel on.
const ServiceName = "socket.seg"

// Wire elements, namespace "sock".
const (
	ns       = "sock"
	elemType = "Type" // syn | synack | ack | data | fin | rst
	elemConn = "Conn" // connection ID, assigned by the dialer
	elemInit = "Init" // "1" when sent by the dialer side (demux)
	elemPipe = "Pipe" // pipe ID (syn only)
	elemSeq  = "Seq"  // first byte offset of the segment
	elemAck  = "Ack"  // cumulative ack: next expected byte
	elemWnd  = "Wnd"  // advertised free receive buffer (bytes)
	elemData = "Data" // payload
	elemFin  = "Fin"  // "1" marks the segment as carrying FIN
)

// Segment type tags.
const (
	typeSyn    = "syn"
	typeSynAck = "synack"
	typeAck    = "ack"
	typeData   = "data"
	typeRst    = "rst"
)

// Config tunes the stream layer.
type Config struct {
	// MSS is the maximum segment payload size (default 16 KiB).
	MSS int
	// WindowBytes bounds both the send buffer / in-flight data and the
	// receive buffer whose free space is advertised to the peer
	// (default 256 KiB).
	WindowBytes int
	// RTO is the initial retransmission timeout (default 300 ms; doubles
	// per retry). With AdaptiveRTO it is only the pre-sample fallback.
	RTO time.Duration
	// AdaptiveRTO enables RTT-sampled retransmission timeouts (Jacobson/
	// Karels): every cumulative ack of a never-retransmitted segment feeds
	// SRTT and RTTVAR (Karn's algorithm excludes retransmitted samples),
	// and the timer arms at SRTT + 4·RTTVAR, clamped to [MinRTO, MaxRTO],
	// still doubling per retry. Off by default: the fixed-RTO timer
	// sequence — and with it the bandwidth replay golden — is preserved
	// bit-for-bit unless a deployment opts in.
	AdaptiveRTO bool
	// MinRTO floors the adaptive timeout (default 50 ms). Adaptive mode only.
	MinRTO time.Duration
	// MaxRTO caps the adaptive timeout including backoff (default 60 s).
	// Adaptive mode only.
	MaxRTO time.Duration
	// MaxRetries bounds consecutive retransmissions of one segment before
	// the connection is reset (default 10).
	MaxRetries int
	// HandshakeTimeout bounds Dial from SYN to establishment (default 30 s).
	HandshakeTimeout time.Duration
}

// WindowEnvVar optionally overrides the default window size (bytes). The
// 256 KiB default caps WAN throughput at roughly window/RTT (~21 MB/s on
// the Grid'5000 model); deployments moving bulk data over long fat pipes
// raise it here or via Config.WindowBytes without recompiling.
const WindowEnvVar = "JXTA_SOCKET_WINDOW"

// defaultWindowBytes resolves the window default: the WindowEnvVar override
// when set to a positive byte count, 256 KiB otherwise.
func defaultWindowBytes() int {
	if v := os.Getenv(WindowEnvVar); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 256 << 10
}

// DefaultConfig returns the stream-layer defaults.
func DefaultConfig() Config {
	return Config{
		MSS:              16 << 10,
		WindowBytes:      defaultWindowBytes(),
		RTO:              300 * time.Millisecond,
		MinRTO:           50 * time.Millisecond,
		MaxRTO:           60 * time.Second,
		MaxRetries:       10,
		HandshakeTimeout: 30 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MSS <= 0 {
		c.MSS = d.MSS
	}
	if c.WindowBytes <= 0 {
		c.WindowBytes = d.WindowBytes
	}
	if c.RTO <= 0 {
		c.RTO = d.RTO
	}
	if c.MinRTO <= 0 {
		c.MinRTO = d.MinRTO
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = d.MaxRTO
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = d.HandshakeTimeout
	}
	return c
}

// Errors.
var (
	ErrClosed       = errors.New("socket: connection closed")
	ErrReset        = errors.New("socket: connection reset by peer")
	ErrTimeout      = errors.New("socket: retransmission limit exceeded")
	ErrDialTimeout  = errors.New("socket: dial timed out")
	ErrAlreadyBound = errors.New("socket: listener already bound to pipe")
)

// Stats counts stream-layer activity on one peer.
type Stats struct {
	ConnsDialed    uint64
	ConnsAccepted  uint64
	SegmentsSent   uint64
	SegmentsRetx   uint64 // retransmitted segments
	BytesSent      uint64 // application payload bytes handed to the network
	BytesDelivered uint64 // in-order bytes made readable
	SegmentsDup    uint64 // received segments at or below the ack point
	WindowStalls   uint64 // times a sender stalled on a closed flow window
}

// connKey identifies a connection at one endpoint. The dialer assigns the
// connection ID; initiated distinguishes the two directions so the same
// (peer, id) pair can exist once per role.
type connKey struct {
	peer      ids.ID
	id        uint64
	initiated bool // true when this side dialed
}

// Service is one peer's stream layer.
type Service struct {
	env   env.Env
	ep    *endpoint.Endpoint
	pipes *pipe.Service
	cfg   Config

	listeners map[ids.ID]*Listener
	conns     map[connKey]*Conn
	nextConn  uint64

	Stats Stats

	// m holds the stored runtime instruments; always non-nil (New
	// pre-instruments, node.New re-instruments with the node's registry).
	m *sockMetrics

	// frozen implements edge hibernation; see hibernate.go.
	frozen *sockFrozen
}

// New wires the stream layer into a peer's endpoint and pipe services.
func New(e env.Env, ep *endpoint.Endpoint, pipes *pipe.Service, cfg Config) *Service {
	s := &Service{
		env:       e,
		ep:        ep,
		pipes:     pipes,
		cfg:       cfg.withDefaults(),
		listeners: make(map[ids.ID]*Listener),
		conns:     make(map[connKey]*Conn),
	}
	ep.Register(ServiceName, s.receive)
	s.Instrument(metrics.Discard())
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// Stop tears the stream layer down gracefully: listeners unbind (their pipe
// advertisements stop answering binds), idle established connections send a
// best-effort FIN, connections with data still in flight are reset, and
// every per-connection timer — retransmission, dial deadline, TIME_WAIT
// linger — is canceled. Applications observe ErrClosed. Connections are
// visited in sorted key order so the segments a teardown emits are
// deterministic under the simulation scheduler.
func (s *Service) Stop() { s.shutdown(true) }

// Abort is the crash-path Stop: identical teardown, but no FIN or RST
// leaves the peer — remote ends discover the death by retransmission
// timeout, as they would a real process crash.
func (s *Service) Abort() { s.shutdown(false) }

func (s *Service) shutdown(announce bool) {
	s.thaw()
	for _, l := range s.sortedListeners() {
		l.Close()
	}
	for _, key := range s.sortedConnKeys() {
		c, ok := s.conns[key]
		if !ok {
			continue // removed by an earlier teardown callback
		}
		s.teardownConn(c, announce)
	}
}

// Reset completes a cold restart. Stop already emptied the tables; the
// connection ID counter keeps increasing so segments from pre-restart
// connections can never alias new ones.
func (s *Service) Reset() {
	s.thaw()
	s.listeners = make(map[ids.ID]*Listener)
	s.conns = make(map[connKey]*Conn)
}

// sortedListeners returns the listeners in ascending pipe-ID order.
func (s *Service) sortedListeners() []*Listener {
	out := make([]*Listener, 0, len(s.listeners))
	for _, l := range s.listeners {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Adv.PipeID.Less(out[j].Adv.PipeID)
	})
	return out
}

// sortedConnKeys returns the connection keys in a total, deterministic
// order: (peer ID, connection ID, role).
func (s *Service) sortedConnKeys() []connKey {
	keys := make([]connKey, 0, len(s.conns))
	for k := range s.conns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if !a.peer.Equal(b.peer) {
			return a.peer.Less(b.peer)
		}
		if a.id != b.id {
			return a.id < b.id
		}
		return !a.initiated && b.initiated
	})
	return keys
}

// teardownConn force-closes one connection during service shutdown.
func (s *Service) teardownConn(c *Conn, announce bool) {
	if c.state == stateClosed {
		// Already failed or fully torn down (TIME_WAIT): just reclaim the
		// linger timer and the table slot.
		c.stopTimers()
		if cur, ok := s.conns[c.key]; ok && cur == c {
			delete(s.conns, c.key)
			c.releaseOOO()
		}
		return
	}
	if announce {
		switch {
		case c.state == stateEstablished && !c.sentFin &&
			len(c.sendBuf) == 0 && len(c.retxQ) == 0:
			// Nothing outstanding: a bare best-effort FIN lets the peer see
			// an orderly EOF instead of a reset. No retransmission — this
			// side is going away.
			c.sentFin = true
			c.sendSegment(segment{seq: c.sndNxt, fin: true})
			c.sndNxt++
		default:
			c.sendRst()
		}
	}
	c.fail(ErrClosed)
}

// Listener accepts inbound connections on a pipe advertisement.
type Listener struct {
	svc    *Service
	Adv    *advertisement.Pipe
	in     *pipe.InputPipe
	accept func(*Conn)
	// Accepted counts established inbound connections.
	Accepted uint64
}

// Listen binds a listener to the pipe described by adv and publishes the
// advertisement so dialers can resolve this peer. accept fires once per
// established inbound connection.
func (s *Service) Listen(adv *advertisement.Pipe, accept func(*Conn)) (*Listener, error) {
	s.thaw()
	if _, dup := s.listeners[adv.PipeID]; dup {
		return nil, ErrAlreadyBound
	}
	// Claiming the pipe publishes the advertisement and reserves the pipe
	// on this peer; stream traffic itself travels on ServiceName.
	in, err := s.pipes.Bind(adv, nil)
	if err != nil {
		return nil, err
	}
	l := &Listener{svc: s, Adv: adv, in: in, accept: accept}
	s.listeners[adv.PipeID] = l
	return l, nil
}

// Close unbinds the listener. Established connections are unaffected;
// handshakes still in flight are orphaned and reset when they would have
// been accepted (the dialer sees ErrReset rather than a stream nobody
// serves).
func (l *Listener) Close() {
	l.svc.thaw()
	delete(l.svc.listeners, l.Adv.PipeID)
	l.in.Close()
	for _, c := range l.svc.conns {
		if c.listener == l {
			c.listener = nil
		}
	}
}

// Dial resolves the pipe's binder through the discovery protocol, performs
// the connection handshake and hands the established connection to cb.
// cb fires exactly once, with err != nil on resolution or handshake failure.
func (s *Service) Dial(pipeID ids.ID, cb func(*Conn, error)) {
	s.pipes.Connect(pipeID, func(out *pipe.OutputPipe, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		s.DialPeer(out.Binder, pipeID, cb)
	})
}

// DialPeer handshakes directly with a known binder peer (a route to it must
// exist or be installable by the endpoint).
func (s *Service) DialPeer(binder, pipeID ids.ID, cb func(*Conn, error)) {
	s.thaw()
	s.nextConn++
	s.Stats.ConnsDialed++
	c := s.newConn(connKey{peer: binder, id: s.nextConn, initiated: true})
	c.pipeID = pipeID
	c.state = stateSynSent
	c.onDialed = cb
	c.dialDeadline = s.env.After(s.cfg.HandshakeTimeout, func() {
		if c.state == stateSynSent {
			c.fail(ErrDialTimeout)
		}
	})
	s.conns[c.key] = c
	c.sendSyn()
	c.armRetx()
}

// --- Connection ---

// Connection states.
type connState int

const (
	stateSynSent connState = iota
	stateSynReceived
	stateEstablished
	stateClosed // failed or fully torn down
)

// segment is one in-flight (unacked) unit of the retransmission queue.
type segment struct {
	seq  uint64
	data []byte
	fin  bool
	// sentAt/retx feed the adaptive RTO estimator: only segments acked on
	// their first transmission yield RTT samples (Karn's algorithm).
	sentAt time.Duration
	retx   bool
}

// Conn is one end of an established (or establishing) stream.
type Conn struct {
	svc   *Service
	key   connKey
	state connState

	pipeID ids.ID

	// Send side.
	sendBuf  []byte    // application bytes not yet segmented
	retxQ    []segment // sent, unacked segments in seq order
	sndUna   uint64    // oldest unacked byte
	sndNxt   uint64    // next byte to send
	peerWnd  int       // receiver's advertised free buffer
	retries  int
	retxTmr  env.Timer
	sentFin  bool // FIN queued or sent
	finAcked bool

	// Receive side.
	recvBuf   []byte            // in-order bytes awaiting Read
	ooo       map[uint64][]byte // out-of-order segments by seq
	rcvNxt    uint64            // next expected byte
	remoteFin uint64            // seq of the peer's FIN; 0 = none (finSeen)
	finSeen   bool
	// freedSinceAck accumulates receive-buffer space freed by Read since
	// the last advertised window, so window updates fire however small the
	// individual Read calls are.
	freedSinceAck int

	// Lifecycle.
	closed bool // local Close called
	err    error

	onDialed     func(*Conn, error)
	dialDeadline env.Timer
	lingerTmr    env.Timer // TIME_WAIT reclamation (maybeTeardown)
	listener     *Listener // pending accept (SYN-RECEIVED only)
	onReadable   func()
	onWritable   func()

	// Adaptive RTO estimator state (Config.AdaptiveRTO): smoothed RTT and
	// mean deviation per Jacobson/Karels; srtt == 0 means no sample yet.
	srtt   time.Duration
	rttvar time.Duration

	// Stream statistics.
	BytesSent uint64 // application bytes acked by the peer
	BytesRecv uint64 // application bytes delivered in order
	Retx      uint64 // retransmitted segments
}

func (s *Service) newConn(key connKey) *Conn {
	return &Conn{
		svc:     s,
		key:     key,
		peerWnd: s.cfg.WindowBytes, // until the first advertisement arrives
		ooo:     oooPool.Get(),
	}
}

// RemotePeer returns the peer at the other end.
func (c *Conn) RemotePeer() ids.ID { return c.key.peer }

// PipeID returns the pipe advertisement the connection was bound over.
func (c *Conn) PipeID() ids.ID { return c.pipeID }

// Established reports whether the handshake completed.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Err returns the terminal error, if the connection failed.
func (c *Conn) Err() error { return c.err }

// OnReadable installs a callback invoked whenever new in-order data (or
// EOF/error) becomes available to Read.
func (c *Conn) OnReadable(fn func()) { c.onReadable = fn }

// OnWritable installs a callback invoked whenever send-buffer space frees
// up after a Write returned short.
func (c *Conn) OnWritable(fn func()) { c.onWritable = fn }

// Buffered returns the number of bytes available to Read.
func (c *Conn) Buffered() int { return len(c.recvBuf) }

// sendSpace returns how many bytes Write can currently accept.
func (c *Conn) sendSpace() int {
	// Send buffer plus in-flight data share the window budget.
	used := len(c.sendBuf) + int(c.sndNxt-c.sndUna)
	if used >= c.svc.cfg.WindowBytes {
		return 0
	}
	return c.svc.cfg.WindowBytes - used
}

// Write copies up to len(p) bytes into the stream. It is non-blocking: the
// return count may be short (including zero) when the window is full; the
// OnWritable callback signals when to resume. Write after Close or on a
// failed connection returns an error.
func (c *Conn) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	if c.closed || c.state == stateClosed {
		return 0, ErrClosed
	}
	space := c.sendSpace()
	if space < len(p) {
		p = p[:space]
	}
	c.sendBuf = append(c.sendBuf, p...)
	c.pump()
	return len(p), nil
}

// Read drains in-order received bytes into p. It is non-blocking: with no
// data buffered it returns (0, nil), or io.EOF once the peer closed and
// everything was drained. Freed buffer space is re-advertised to the peer
// so a window-limited sender resumes.
func (c *Conn) Read(p []byte) (int, error) {
	if len(c.recvBuf) == 0 {
		if c.err != nil {
			return 0, c.err
		}
		if c.finSeen && c.rcvNxt > c.remoteFin {
			return 0, io.EOF
		}
		return 0, nil
	}
	n := copy(p, c.recvBuf)
	c.recvBuf = c.recvBuf[n:]
	if len(c.recvBuf) == 0 {
		c.recvBuf = nil
	}
	// Window update: a sender stalled on our zero window needs to learn
	// that space freed up. Piggybacking is impossible on a one-way bulk
	// stream, so push an explicit ack once a meaningful chunk has opened —
	// cumulative across Reads, so sub-MSS readers re-advertise too.
	c.freedSinceAck += n
	if c.freedSinceAck >= c.svc.cfg.MSS && c.state == stateEstablished {
		c.sendAck()
	}
	return n, nil
}

// Close initiates an orderly shutdown: buffered data is still delivered,
// then a FIN is sent. Read remains usable for data the peer already sent.
func (c *Conn) Close() error {
	if c.closed || c.state == stateClosed {
		return nil
	}
	c.closed = true
	c.pump() // queues the FIN once the buffer drains
	return nil
}

// fail terminates the connection with err and notifies the application.
func (c *Conn) fail(err error) {
	if c.state == stateClosed && c.err != nil {
		return
	}
	wasSynSent := c.state == stateSynSent
	c.state = stateClosed
	c.err = err
	c.stopTimers()
	delete(c.svc.conns, c.key)
	c.releaseOOO()
	if wasSynSent && c.onDialed != nil {
		cb := c.onDialed
		c.onDialed = nil
		cb(nil, err)
		return
	}
	if c.onReadable != nil {
		c.onReadable()
	}
	if c.onWritable != nil {
		c.onWritable()
	}
}

func (c *Conn) stopTimers() {
	if c.retxTmr != nil {
		c.retxTmr.Cancel()
		c.retxTmr = nil
	}
	if c.dialDeadline != nil {
		c.dialDeadline.Cancel()
		c.dialDeadline = nil
	}
	if c.lingerTmr != nil {
		c.lingerTmr.Cancel()
		c.lingerTmr = nil
	}
}

// --- Segment transmission ---

func (c *Conn) baseMsg(t string) *message.Message {
	c.freedSinceAck = 0 // every outgoing segment advertises the window
	m := message.New()
	m.AddString(ns, elemType, t)
	m.AddString(ns, elemConn, strconv.FormatUint(c.key.id, 10))
	if c.key.initiated {
		m.AddString(ns, elemInit, "1")
	}
	m.AddString(ns, elemWnd, strconv.Itoa(c.recvSpace()))
	return m
}

// recvSpace is the free receive buffer this side advertises.
func (c *Conn) recvSpace() int {
	free := c.svc.cfg.WindowBytes - len(c.recvBuf)
	if free < 0 {
		return 0
	}
	return free
}

func (c *Conn) send(m *message.Message) {
	c.svc.Stats.SegmentsSent++
	_ = c.svc.ep.Send(c.key.peer, ServiceName, m)
}

func (c *Conn) sendSyn() {
	m := c.baseMsg(typeSyn)
	m.AddString(ns, elemPipe, c.pipeID.String())
	c.send(m)
}

func (c *Conn) sendSynAck() {
	c.send(c.baseMsg(typeSynAck))
}

// sendAck emits a bare cumulative acknowledgement (also the vehicle for
// window updates).
func (c *Conn) sendAck() {
	m := c.baseMsg(typeAck)
	m.AddString(ns, elemAck, strconv.FormatUint(c.rcvNxt, 10))
	c.send(m)
}

// sendSegment transmits one data/FIN segment.
func (c *Conn) sendSegment(seg segment) {
	m := c.baseMsg(typeData)
	m.AddString(ns, elemSeq, strconv.FormatUint(seg.seq, 10))
	m.AddString(ns, elemAck, strconv.FormatUint(c.rcvNxt, 10))
	if seg.fin {
		m.AddString(ns, elemFin, "1")
	}
	if len(seg.data) > 0 {
		m.Add(ns, elemData, seg.data)
	}
	c.send(m)
}

// pump moves bytes from the send buffer into the network while the flow
// window allows, and queues the FIN once everything drained.
func (c *Conn) pump() {
	if c.state != stateEstablished && c.state != stateSynReceived {
		return
	}
	cfg := c.svc.cfg
	for len(c.sendBuf) > 0 {
		inFlight := int(c.sndNxt - c.sndUna)
		wnd := c.peerWnd
		if cfg.WindowBytes < wnd {
			wnd = cfg.WindowBytes
		}
		budget := wnd - inFlight
		if budget <= 0 {
			c.svc.Stats.WindowStalls++
			break
		}
		n := len(c.sendBuf)
		if n > cfg.MSS {
			n = cfg.MSS
		}
		if n > budget {
			n = budget
		}
		data := make([]byte, n)
		copy(data, c.sendBuf)
		c.sendBuf = c.sendBuf[n:]
		if len(c.sendBuf) == 0 {
			c.sendBuf = nil
		}
		seg := segment{seq: c.sndNxt, data: data, sentAt: c.svc.env.Now()}
		c.sndNxt += uint64(n)
		c.retxQ = append(c.retxQ, seg)
		c.svc.Stats.BytesSent += uint64(n)
		c.sendSegment(seg)
	}
	if c.closed && !c.sentFin && len(c.sendBuf) == 0 {
		c.sentFin = true
		seg := segment{seq: c.sndNxt, fin: true, sentAt: c.svc.env.Now()}
		c.sndNxt++ // FIN consumes one sequence unit
		c.retxQ = append(c.retxQ, seg)
		c.sendSegment(seg)
	}
	c.armRetx()
}

// armRetx (re)arms the retransmission timer when unacked segments exist (or
// the handshake is outstanding). The timeout backs off exponentially with
// consecutive retries.
func (c *Conn) armRetx() {
	if c.retxTmr != nil {
		c.retxTmr.Cancel()
		c.retxTmr = nil
	}
	if c.state == stateClosed {
		return
	}
	waiting := len(c.retxQ) > 0 || c.state == stateSynSent || c.state == stateSynReceived
	// A non-empty send buffer with a zero peer window also needs the timer:
	// the ack that reopens the window can be lost, so we must probe.
	if !waiting && len(c.sendBuf) > 0 {
		waiting = true
	}
	if !waiting {
		return
	}
	c.retxTmr = c.svc.env.After(c.currentRTO(), c.onRetxTimeout)
}

// currentRTO computes the retransmission timeout for the next timer arming.
// Fixed mode reproduces the original exponential schedule exactly; adaptive
// mode uses the Jacobson/Karels estimate SRTT + 4·RTTVAR (falling back to
// the configured RTO until the first sample), backed off per retry and
// clamped to [MinRTO, MaxRTO].
func (c *Conn) currentRTO() time.Duration {
	cfg := c.svc.cfg
	if !cfg.AdaptiveRTO {
		return cfg.RTO << uint(c.retries)
	}
	rto := cfg.RTO
	if c.srtt > 0 {
		rto = c.srtt + 4*c.rttvar
	}
	if rto < cfg.MinRTO {
		rto = cfg.MinRTO
	}
	rto <<= uint(c.retries)
	if rto > cfg.MaxRTO {
		rto = cfg.MaxRTO
	}
	return rto
}

// sampleRTT feeds one round-trip measurement into the estimator
// (RFC 6298 constants: alpha 1/8, beta 1/4).
func (c *Conn) sampleRTT(sample time.Duration) {
	if sample <= 0 {
		return
	}
	c.svc.m.rttHist.Observe(sample.Seconds())
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
		return
	}
	diff := c.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	c.rttvar = (3*c.rttvar + diff) / 4
	c.srtt = (7*c.srtt + sample) / 8
}

// RTT reports the adaptive estimator state: smoothed RTT, mean deviation
// and the timeout the next retransmission timer would use. srtt is zero
// until the first sample (or always, in fixed-RTO mode).
func (c *Conn) RTT() (srtt, rttvar, rto time.Duration) {
	return c.srtt, c.rttvar, c.currentRTO()
}

// onRetxTimeout retransmits the oldest outstanding unit: SYN/SYN-ACK during
// the handshake, the first unacked segment when established, or a window
// probe when stalled on a zero peer window.
func (c *Conn) onRetxTimeout() {
	c.retxTmr = nil
	if c.state == stateClosed {
		return
	}
	c.retries++
	if c.retries > c.svc.cfg.MaxRetries {
		c.sendRst()
		c.fail(ErrTimeout)
		return
	}
	c.svc.Stats.SegmentsRetx++
	c.Retx++
	switch {
	case c.state == stateSynSent:
		c.sendSyn()
	case c.state == stateSynReceived && len(c.retxQ) == 0:
		c.sendSynAck()
	case len(c.retxQ) > 0:
		c.retxQ[0].retx = true // Karn: no RTT sample from this segment
		c.sendSegment(c.retxQ[0])
	case len(c.sendBuf) > 0:
		// Zero-window probe: force one byte past the closed window (as TCP
		// does) so the peer's mandatory ack reports its reopened window.
		probe := segment{seq: c.sndNxt, data: []byte{c.sendBuf[0]}, sentAt: c.svc.env.Now()}
		c.sendBuf = c.sendBuf[1:]
		if len(c.sendBuf) == 0 {
			c.sendBuf = nil
		}
		c.sndNxt++
		c.retxQ = append(c.retxQ, probe)
		c.svc.Stats.BytesSent++
		c.sendSegment(probe)
	}
	c.armRetx()
}

func (c *Conn) sendRst() {
	c.send(c.baseMsg(typeRst))
}

// --- Inbound demux ---

// receive dispatches inbound stream traffic.
func (s *Service) receive(src ids.ID, m *message.Message) {
	s.thaw()
	t := m.GetString(ns, elemType)
	id, err := strconv.ParseUint(m.GetString(ns, elemConn), 10, 64)
	if err != nil {
		return
	}
	// A message tagged Init came from the dialer, so on this side the
	// connection is the accepted (non-initiated) one, and vice versa.
	key := connKey{peer: src, id: id, initiated: m.GetString(ns, elemInit) != "1"}
	if t == typeSyn {
		s.handleSyn(src, key, m)
		return
	}
	c, ok := s.conns[key]
	if !ok {
		return // conn long gone (post-linger): drop silently
	}
	if c.state == stateClosed {
		// TIME_WAIT: the peer retransmitted its FIN because our final ack
		// was lost. Re-ack so it can finish instead of backing off to its
		// retry limit; everything else is stale and ignored.
		if c.err == nil && t == typeData {
			c.sendAck()
		}
		return
	}
	if wnd, err := strconv.Atoi(m.GetString(ns, elemWnd)); err == nil {
		c.peerWnd = wnd
	}
	switch t {
	case typeSynAck:
		c.handleSynAck()
	case typeAck:
		if ack, err := strconv.ParseUint(m.GetString(ns, elemAck), 10, 64); err == nil {
			c.handleAck(ack)
		}
	case typeData:
		c.handleData(m)
	case typeRst:
		c.fail(ErrReset)
	}
}

// handleSyn creates (or re-acknowledges) an inbound connection.
func (s *Service) handleSyn(src ids.ID, key connKey, m *message.Message) {
	if c, dup := s.conns[key]; dup {
		// Retransmitted SYN: the SYN-ACK was lost.
		c.sendSynAck()
		return
	}
	pipeID, err := ids.Parse(m.GetString(ns, elemPipe))
	if err != nil {
		return
	}
	l, ok := s.listeners[pipeID]
	if !ok {
		return // no listener: dialer times out, like a filtered port
	}
	c := s.newConn(key)
	c.pipeID = pipeID
	c.state = stateSynReceived
	c.listener = l
	if wnd, err := strconv.Atoi(m.GetString(ns, elemWnd)); err == nil {
		c.peerWnd = wnd
	}
	s.conns[key] = c
	c.sendSynAck()
	c.armRetx()
}

// handleSynAck completes the dialer side of the handshake.
func (c *Conn) handleSynAck() {
	if c.state != stateSynSent {
		// Duplicate SYN-ACK (our ACK was lost): re-acknowledge.
		c.sendAck()
		return
	}
	c.state = stateEstablished
	c.retries = 0
	if c.dialDeadline != nil {
		c.dialDeadline.Cancel()
		c.dialDeadline = nil
	}
	c.sendAck()
	cb := c.onDialed
	c.onDialed = nil
	c.armRetx()
	if cb != nil {
		cb(c, nil)
	}
	c.pump()
}

// establishAccepted promotes a SYN-RECEIVED connection when any segment
// from the dialer arrives (the handshake ACK, or data if that ACK was
// lost). A connection whose listener closed mid-handshake is reset instead
// of silently accepted into the void.
func (c *Conn) establishAccepted() {
	if c.state != stateSynReceived {
		return
	}
	l := c.listener
	if l == nil {
		c.sendRst()
		c.fail(ErrClosed)
		return
	}
	c.state = stateEstablished
	c.retries = 0
	c.listener = nil
	c.armRetx()
	l.Accepted++
	c.svc.Stats.ConnsAccepted++
	if l.accept != nil {
		l.accept(c)
	}
	c.pump()
}

// handleAck advances the cumulative ack point.
func (c *Conn) handleAck(ack uint64) {
	c.establishAccepted()
	if c.state == stateClosed {
		return // reset during establishment
	}
	if ack <= c.sndUna {
		// Window update only: the receiver may have reopened its window
		// (receive() already refreshed peerWnd), so a stalled sender must
		// resume now rather than wait for the RTO zero-window probe.
		c.armRetx()
		c.pump()
		if c.onWritable != nil && c.sendSpace() > 0 {
			c.onWritable()
		}
		return
	}
	if ack > c.sndNxt {
		return // acking data we never sent: ignore
	}
	advanced := ack - c.sndUna
	c.sndUna = ack
	c.retries = 0
	// Drop fully acked segments, sampling the RTT of the newest one that
	// was never retransmitted (Karn's algorithm).
	var rttSample time.Duration
	i := 0
	for i < len(c.retxQ) {
		seg := c.retxQ[i]
		end := seg.seq + uint64(len(seg.data))
		if seg.fin {
			end++
		}
		if end > ack {
			break
		}
		if seg.fin {
			c.finAcked = true
		}
		if !seg.retx && seg.sentAt > 0 {
			rttSample = c.svc.env.Now() - seg.sentAt
		}
		i++
	}
	if c.svc.cfg.AdaptiveRTO && rttSample > 0 {
		c.sampleRTT(rttSample)
	}
	if i > 0 {
		c.retxQ = append(c.retxQ[:0], c.retxQ[i:]...)
	}
	c.BytesSent += advanced
	if c.sentFin && c.finAcked {
		c.BytesSent-- // the FIN's sequence unit is not payload
	}
	c.maybeTeardown()
	c.armRetx()
	c.pump()
	if c.onWritable != nil && c.sendSpace() > 0 {
		c.onWritable()
	}
}

// handleData ingests a data/FIN segment: in-order bytes extend the receive
// buffer (and drain the reassembly map), out-of-order segments are parked.
// Every data arrival is answered with a cumulative ack.
func (c *Conn) handleData(m *message.Message) {
	c.establishAccepted()
	if c.state == stateClosed {
		return // reset during establishment
	}
	seq, err := strconv.ParseUint(m.GetString(ns, elemSeq), 10, 64)
	if err != nil {
		return
	}
	if ack, err := strconv.ParseUint(m.GetString(ns, elemAck), 10, 64); err == nil {
		c.handleAck(ack)
	}
	data, _ := m.Get(ns, elemData)
	fin := m.GetString(ns, elemFin) == "1"
	if fin {
		c.finSeen = true
		c.remoteFin = seq + uint64(len(data))
	}
	switch {
	case seq == c.rcvNxt:
		c.ingest(data)
		// The reassembly map may now continue the stream.
		for {
			next, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.ingest(next)
		}
	case seq > c.rcvNxt:
		// Out of order: park it unless it overruns the receive window.
		if len(data) > 0 && seq+uint64(len(data)) <= c.rcvNxt+uint64(c.svc.cfg.WindowBytes) {
			if _, dup := c.ooo[seq]; !dup {
				cp := make([]byte, len(data))
				copy(cp, data)
				c.ooo[seq] = cp
			}
		}
	default:
		c.svc.Stats.SegmentsDup++
	}
	if c.finSeen && c.rcvNxt == c.remoteFin {
		c.rcvNxt++ // consume the FIN's sequence unit
	}
	c.sendAck()
	c.maybeTeardown()
	if c.onReadable != nil && (len(c.recvBuf) > 0 || c.finSeen && c.rcvNxt > c.remoteFin) {
		c.onReadable()
	}
}

// ingest appends in-order payload bytes to the receive buffer.
func (c *Conn) ingest(data []byte) {
	if len(data) == 0 {
		return
	}
	c.recvBuf = append(c.recvBuf, data...)
	c.rcvNxt += uint64(len(data))
	c.BytesRecv += uint64(len(data))
	c.svc.Stats.BytesDelivered += uint64(len(data))
}

// lingerRTOs is the TIME_WAIT length in units of the initial RTO: long
// enough to re-ack a peer's retransmitted FIN through a few loss-induced
// backoff rounds before the connection record is reclaimed.
const lingerRTOs = 8

// maybeTeardown finishes the connection once both directions shut down:
// our FIN is acked and the peer's FIN was received. The state stays
// readable — the application drains recvBuf at its leisure — and the
// record lingers in the connection table (TIME_WAIT) so a retransmitted
// FIN whose ack was lost is re-acked instead of silently ignored.
func (c *Conn) maybeTeardown() {
	if !(c.sentFin && c.finAcked && c.finSeen && c.rcvNxt > c.remoteFin) {
		return
	}
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	c.stopTimers()
	svc, key := c.svc, c.key
	c.lingerTmr = svc.env.After(time.Duration(lingerRTOs)*svc.cfg.RTO, func() {
		c.lingerTmr = nil
		if cur, ok := svc.conns[key]; ok && cur == c {
			delete(svc.conns, key)
			c.releaseOOO()
		}
	})
	if c.onReadable != nil {
		c.onReadable() // lets a reader observe EOF
	}
}
