package socket_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"jxta/internal/env"
	"jxta/internal/node"
	"jxta/internal/peerview"
	"jxta/internal/pipe"
	"jxta/internal/socket"
	"jxta/internal/transport"
)

// livePeer bundles a real-TCP peer, mirroring internal/node's integration
// test rig: wall-clock env, TCP transport, full protocol stack.
type livePeer struct {
	n  *node.Node
	e  *env.Real
	tr *transport.TCP
}

func newLivePeer(t *testing.T, name string, role node.Role, seeds []peerview.Seed, rngSeed int64) *livePeer {
	t.Helper()
	tr, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	e := env.NewReal(name, rngSeed)
	var n *node.Node
	e.Locked(func() {
		n = node.New(e, tr, node.Config{Name: name, Role: role, Seeds: seeds})
		n.Start()
	})
	t.Cleanup(func() { e.Locked(func() { n.Stop() }) })
	return &livePeer{n: n, e: e, tr: tr}
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSocketOverTCP runs the full stream layer — pipe advertisement
// resolution through the LC-DHT, handshake, windowed bulk transfer,
// orderly teardown — over real localhost sockets, moving ≥ 1 MiB.
func TestSocketOverTCP(t *testing.T) {
	rdv := newLivePeer(t, "rdv", node.Rendezvous, nil, 1)
	seed := peerview.Seed{ID: rdv.n.ID, Addr: rdv.tr.Addr()}
	srv := newLivePeer(t, "server", node.Edge, []peerview.Seed{seed}, 2)
	cli := newLivePeer(t, "client", node.Edge, []peerview.Seed{seed}, 3)

	waitFor(t, "leases", 10*time.Second, func() bool {
		ok1, ok2 := false, false
		srv.e.Locked(func() { _, ok1 = srv.n.Rendezvous.ConnectedRdv() })
		cli.e.Locked(func() { _, ok2 = cli.n.Rendezvous.ConnectedRdv() })
		return ok1 && ok2
	})

	adv := pipe.NewPipeAdv(srv.n.ID, "bulk")
	var got []byte
	eof := false
	srv.e.Locked(func() {
		_, err := srv.n.Socket.Listen(adv, func(c *socket.Conn) {
			buf := make([]byte, 64<<10)
			drain := func() {
				for {
					n, err := c.Read(buf)
					got = append(got, buf[:n]...)
					if err == io.EOF {
						eof = true
						return
					}
					if err != nil || n == 0 {
						return
					}
				}
			}
			c.OnReadable(drain)
		})
		if err != nil {
			t.Errorf("listen: %v", err)
		}
	})

	// Let the SRDI push land before resolving.
	time.Sleep(300 * time.Millisecond)

	connCh := make(chan *socket.Conn, 1)
	errCh := make(chan error, 1)
	cli.e.Locked(func() {
		cli.n.Socket.Dial(adv.PipeID, func(c *socket.Conn, err error) {
			if err != nil {
				errCh <- err
				return
			}
			connCh <- c
		})
	})
	var conn *socket.Conn
	select {
	case conn = <-connCh:
	case err := <-errCh:
		t.Fatalf("dial: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("dial over TCP never completed")
	}

	payload := pattern(1 << 20) // 1 MiB
	remaining := payload
	deadline := time.Now().Add(30 * time.Second)
	for len(remaining) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("send stalled with %d bytes left", len(remaining))
		}
		wrote := 0
		var werr error
		cli.e.Locked(func() { wrote, werr = conn.Write(remaining) })
		if werr != nil {
			t.Fatalf("write: %v", werr)
		}
		remaining = remaining[wrote:]
		if wrote == 0 {
			time.Sleep(5 * time.Millisecond) // window full; acks drain it
		}
	}
	cli.e.Locked(func() { conn.Close() })

	waitFor(t, "transfer completion", 30*time.Second, func() bool {
		done := false
		srv.e.Locked(func() { done = eof })
		return done
	})
	srv.e.Locked(func() {
		if !bytes.Equal(got, payload) {
			t.Errorf("TCP transfer corrupted: got %d bytes, want %d", len(got), len(payload))
		}
	})
	cli.e.Locked(func() {
		if conn.BytesSent != uint64(len(payload)) {
			t.Errorf("BytesSent=%d want %d", conn.BytesSent, len(payload))
		}
	})
}
