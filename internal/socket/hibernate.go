package socket

import (
	"jxta/internal/hibpool"
	"jxta/internal/ids"
)

// Edge hibernation (PR 9). A socket service with no live connections packs
// its listener table into a pooled record and releases both map shells.
// Connection churn additionally recycles each Conn's out-of-order
// reassembly map through a free list: the map is private to the receive
// path, so it is released the moment a connection leaves the table for
// good (failure, linger expiry, teardown) while the *Conn itself stays
// readable by the application.

// sockListener is the packed form of one listener registration.
type sockListener struct {
	id ids.ID
	l  *Listener
}

// sockFrozen is the freeze-dried service.
type sockFrozen struct {
	listeners []sockListener
}

var (
	sockFrozenPool = hibpool.Records[sockFrozen]{Reset: func(f *sockFrozen) {
		clear(f.listeners)
		f.listeners = f.listeners[:0]
	}}
	sockListenersPool hibpool.Maps[ids.ID, *Listener]
	sockConnsPool     hibpool.Maps[connKey, *Conn]
	// oooPool recycles per-conn reassembly maps across connection churn.
	oooPool hibpool.Maps[uint64, []byte]
)

// Quiescent reports whether the service can be frozen: no connection in
// any state (including TIME_WAIT) occupies the table.
func (s *Service) Quiescent() bool { return len(s.conns) == 0 }

// Freeze packs the listener table into a pooled record and releases the
// map shells. Caller must have checked Quiescent. Idempotent.
func (s *Service) Freeze() {
	if s.frozen != nil {
		return
	}
	f := sockFrozenPool.Get()
	for id, l := range s.listeners {
		f.listeners = append(f.listeners, sockListener{id: id, l: l})
	}
	sockListenersPool.Put(s.listeners)
	sockConnsPool.Put(s.conns)
	s.listeners = nil
	s.conns = nil
	s.frozen = f
}

// thaw rehydrates a frozen service; a single nil check when live.
func (s *Service) thaw() {
	if s.frozen == nil {
		return
	}
	f := s.frozen
	s.frozen = nil
	s.listeners = sockListenersPool.Get()
	for _, le := range f.listeners {
		s.listeners[le.id] = le.l
	}
	s.conns = sockConnsPool.Get()
	sockFrozenPool.Put(f)
}

// Frozen reports whether the service is currently freeze-dried (tests).
func (s *Service) Frozen() bool { return s.frozen != nil }

// releaseOOO recycles the connection's reassembly map once it can no
// longer receive segments (removed from the table).
func (c *Conn) releaseOOO() {
	oooPool.Put(c.ooo)
	c.ooo = nil
}
