package socket_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"jxta/internal/deploy"
	"jxta/internal/ids"
	"jxta/internal/netmodel"
	"jxta/internal/node"
	"jxta/internal/pipe"
	"jxta/internal/socket"
	"jxta/internal/topology"
)

// rig deploys a converged overlay with a listener edge and a dialer edge.
type rig struct {
	t        *testing.T
	o        *deploy.Overlay
	listener *node.Node
	dialer   *node.Node
}

func newRig(t *testing.T, seed int64, model *netmodel.Model, sockCfg socket.Config) *rig {
	t.Helper()
	o, err := deploy.Build(deploy.Spec{
		Seed:     seed,
		Model:    model,
		NumRdv:   4,
		Topology: topology.Chain,
		Edges: []deploy.EdgeGroup{
			{AttachTo: 0, Count: 1, Prefix: "listener"},
			{AttachTo: 3, Count: 1, Prefix: "dialer"},
		},
		Socket: sockCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.StartAll()
	r := &rig{t: t, o: o, listener: o.Edges[0], dialer: o.Edges[1]}
	o.Sched.Run(12 * time.Minute) // converge peerviews + leases
	return r
}

func (r *rig) run(d time.Duration) { r.o.Sched.Run(r.o.Sched.Now() + d) }

// pattern builds a deterministic, position-dependent payload so reordering
// or duplication corrupts the comparison.
func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*31 + i/251)
	}
	return out
}

// streamOut writes data progressively as window space opens, then closes.
func streamOut(t *testing.T, c *socket.Conn, data []byte) {
	t.Helper()
	done := false
	var send func()
	send = func() {
		if done {
			return
		}
		for len(data) > 0 {
			n, err := c.Write(data)
			if err != nil {
				t.Errorf("write: %v", err)
				done = true
				return
			}
			data = data[n:]
			if n == 0 {
				return // window full; OnWritable resumes
			}
		}
		done = true
		c.Close()
	}
	c.OnWritable(send)
	send()
}

// sink collects everything readable from a conn until EOF.
type sink struct {
	got []byte
	eof bool
	err error
}

func (k *sink) attach(c *socket.Conn) {
	buf := make([]byte, 64<<10)
	drain := func() {
		for {
			n, err := c.Read(buf)
			k.got = append(k.got, buf[:n]...)
			if err == io.EOF {
				k.eof = true
				return
			}
			if err != nil {
				k.err = err
				return
			}
			if n == 0 {
				return
			}
		}
	}
	c.OnReadable(drain)
	drain()
}

func TestListenDialTransfer(t *testing.T) {
	r := newRig(t, 1, nil, socket.Config{})
	adv := pipe.NewPipeAdv(r.listener.ID, "svc")
	var server *socket.Conn
	serverSink := &sink{}
	if _, err := r.listener.Socket.Listen(adv, func(c *socket.Conn) {
		server = c
		serverSink.attach(c)
	}); err != nil {
		t.Fatal(err)
	}
	r.run(time.Minute) // SRDI push of the pipe advertisement

	var client *socket.Conn
	r.dialer.Socket.Dial(adv.PipeID, func(c *socket.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		client = c
	})
	r.run(time.Minute)
	if client == nil {
		t.Fatal("dial never completed")
	}
	if !client.RemotePeer().Equal(r.listener.ID) {
		t.Fatal("connected to the wrong peer")
	}

	payload := pattern(100 << 10)
	streamOut(t, client, payload)
	r.run(time.Minute)
	if server == nil {
		t.Fatal("accept never fired")
	}
	if !serverSink.eof {
		t.Fatal("server never saw EOF")
	}
	if !bytes.Equal(serverSink.got, payload) {
		t.Fatalf("server received %d bytes, want %d (content mismatch=%v)",
			len(serverSink.got), len(payload), !bytes.Equal(serverSink.got, payload))
	}
}

func TestBidirectionalEcho(t *testing.T) {
	r := newRig(t, 2, nil, socket.Config{})
	adv := pipe.NewPipeAdv(r.listener.ID, "echo")
	// The server echoes everything back (parking bytes its send window
	// cannot take yet) and closes when the client does.
	if _, err := r.listener.Socket.Listen(adv, func(c *socket.Conn) {
		buf := make([]byte, 32<<10)
		var pending []byte
		var pumpBack func()
		pumpBack = func() {
			for {
				for len(pending) > 0 {
					n, werr := c.Write(pending)
					if werr != nil {
						t.Errorf("echo write: %v", werr)
						return
					}
					if n == 0 {
						return // window full; OnWritable resumes
					}
					pending = pending[n:]
				}
				n, err := c.Read(buf)
				if n > 0 {
					pending = append([]byte(nil), buf[:n]...)
					continue
				}
				if err == io.EOF {
					c.Close()
					return
				}
				if err != nil || n == 0 {
					return
				}
			}
		}
		c.OnReadable(pumpBack)
		c.OnWritable(pumpBack)
	}); err != nil {
		t.Fatal(err)
	}
	r.run(time.Minute)

	var client *socket.Conn
	clientSink := &sink{}
	r.dialer.Socket.Dial(adv.PipeID, func(c *socket.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		client = c
		clientSink.attach(c)
	})
	r.run(time.Minute)
	if client == nil {
		t.Fatal("dial never completed")
	}
	payload := pattern(64 << 10)
	streamOut(t, client, payload)
	r.run(2 * time.Minute)
	if !clientSink.eof {
		t.Fatal("client never saw the echo EOF")
	}
	if !bytes.Equal(clientSink.got, payload) {
		t.Fatalf("echo mismatch: got %d bytes want %d", len(clientSink.got), len(payload))
	}
}

func TestDialUnknownPipeFails(t *testing.T) {
	r := newRig(t, 3, nil, socket.Config{})
	var gotErr error
	done := false
	r.dialer.Socket.Dial(ids.FromName(ids.KindPipe, "ghost"), func(c *socket.Conn, err error) {
		gotErr = err
		done = true
	})
	r.run(2 * time.Minute)
	if !done || gotErr == nil {
		t.Fatalf("dial to unknown pipe: done=%v err=%v", done, gotErr)
	}
}

// lossyTransfer runs a ≥1 MiB transfer over a lossy Grid'5000 model and
// returns the transcript needed for both correctness and determinism
// checks.
func lossyTransfer(t *testing.T, seed int64) (received []byte, retx uint64, steps uint64) {
	t.Helper()
	model := netmodel.Grid5000()
	model.LossRate = 0.02
	r := newRig(t, seed, model, socket.Config{})
	adv := pipe.NewPipeAdv(r.listener.ID, "bulk")
	serverSink := &sink{}
	if _, err := r.listener.Socket.Listen(adv, func(c *socket.Conn) {
		serverSink.attach(c)
	}); err != nil {
		t.Fatal(err)
	}
	r.run(time.Minute)

	var client *socket.Conn
	r.dialer.Socket.Dial(adv.PipeID, func(c *socket.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		client = c
	})
	r.run(time.Minute)
	if client == nil {
		t.Fatal("dial never completed under loss")
	}
	payload := pattern(1 << 20) // 1 MiB
	streamOut(t, client, payload)
	r.run(10 * time.Minute) // generous: losses trigger RTO backoff
	if !serverSink.eof {
		t.Fatalf("transfer incomplete: %d/%d bytes", len(serverSink.got), len(payload))
	}
	if !bytes.Equal(serverSink.got, payload) {
		t.Fatal("lossy transfer corrupted the stream")
	}
	return serverSink.got, r.dialer.Socket.Stats.SegmentsRetx, r.o.Sched.Steps()
}

// TestLossyLinkRetransmission moves 1 MiB across a 2% lossy link and checks
// the stream arrives intact, losses actually occurred (retransmissions
// happened), and the whole run replays bit-identically under the seed.
func TestLossyLinkRetransmission(t *testing.T) {
	gotA, retxA, stepsA := lossyTransfer(t, 77)
	if retxA == 0 {
		t.Fatal("2% loss on a 1 MiB transfer caused no retransmissions — loss injection broken?")
	}
	gotB, retxB, stepsB := lossyTransfer(t, 77)
	if !bytes.Equal(gotA, gotB) || retxA != retxB || stepsA != stepsB {
		t.Fatalf("same-seed lossy transfer diverged: retx %d vs %d, steps %d vs %d",
			retxA, retxB, stepsA, stepsB)
	}
}

// TestFlowControlSmallWindow forces a tiny window so the sender stalls
// repeatedly and only window updates (or probes) resume it.
func TestFlowControlSmallWindow(t *testing.T) {
	cfg := socket.Config{MSS: 1024, WindowBytes: 4096}
	r := newRig(t, 5, nil, cfg)
	adv := pipe.NewPipeAdv(r.listener.ID, "narrow")
	serverSink := &sink{}
	if _, err := r.listener.Socket.Listen(adv, func(c *socket.Conn) {
		serverSink.attach(c)
	}); err != nil {
		t.Fatal(err)
	}
	r.run(time.Minute)
	var client *socket.Conn
	r.dialer.Socket.Dial(adv.PipeID, func(c *socket.Conn, err error) {
		if err == nil {
			client = c
		}
	})
	r.run(time.Minute)
	if client == nil {
		t.Fatal("dial failed")
	}
	payload := pattern(64 << 10) // 16x the window
	streamOut(t, client, payload)
	r.run(5 * time.Minute)
	if !serverSink.eof || !bytes.Equal(serverSink.got, payload) {
		t.Fatalf("windowed transfer incomplete: %d/%d bytes eof=%v",
			len(serverSink.got), len(payload), serverSink.eof)
	}
}

// TestManyConcurrentStreams multiplexes several connections between the
// same pair of peers and checks isolation.
func TestManyConcurrentStreams(t *testing.T) {
	r := newRig(t, 6, nil, socket.Config{})
	const streams = 5
	sinks := make([]*sink, streams)
	adv := pipe.NewPipeAdv(r.listener.ID, "multi")
	idx := 0
	if _, err := r.listener.Socket.Listen(adv, func(c *socket.Conn) {
		k := &sink{}
		sinks[idx%streams] = k
		idx++
		k.attach(c)
	}); err != nil {
		t.Fatal(err)
	}
	r.run(time.Minute)
	payloads := make([][]byte, streams)
	for i := 0; i < streams; i++ {
		i := i
		payloads[i] = []byte(fmt.Sprintf("stream-%d-", i))
		payloads[i] = append(payloads[i], pattern(10<<10)...)
		r.dialer.Socket.Dial(adv.PipeID, func(c *socket.Conn, err error) {
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			streamOut(t, c, payloads[i])
		})
	}
	r.run(2 * time.Minute)
	total := map[string]bool{}
	for i, k := range sinks {
		if k == nil || !k.eof {
			t.Fatalf("stream %d incomplete", i)
		}
		total[string(k.got[:9])] = true
	}
	if len(total) != streams {
		t.Fatalf("streams collided: %d distinct prefixes", len(total))
	}
}

// TestWindowEnvOverride pins the env-var window override: set, the default
// window follows it; unset or invalid, the 256 KiB default stands.
func TestWindowEnvOverride(t *testing.T) {
	t.Setenv(socket.WindowEnvVar, "1048576")
	if got := socket.DefaultConfig().WindowBytes; got != 1<<20 {
		t.Fatalf("WindowBytes with env override = %d, want %d", got, 1<<20)
	}
	t.Setenv(socket.WindowEnvVar, "not-a-number")
	if got := socket.DefaultConfig().WindowBytes; got != 256<<10 {
		t.Fatalf("WindowBytes with bad env = %d, want %d", got, 256<<10)
	}
	t.Setenv(socket.WindowEnvVar, "")
	if got := socket.DefaultConfig().WindowBytes; got != 256<<10 {
		t.Fatalf("default WindowBytes = %d, want %d", got, 256<<10)
	}
}

// TestServiceStopTearsDownStreams asserts the graceful service Stop: the
// dialer side of an idle established stream sees an orderly EOF (FIN), a
// mid-transfer stream is reset, and both services end with empty tables.
func TestServiceStopTearsDownStreams(t *testing.T) {
	r := newRig(t, 77, netmodel.Uniform(2*time.Millisecond), socket.Config{})
	adv := pipe.NewPipeAdv(r.listener.ID, "stop-test")
	if _, err := r.listener.Socket.Listen(adv, func(*socket.Conn) {}); err != nil {
		t.Fatal(err)
	}
	r.run(time.Minute) // index the advertisement

	var conn *socket.Conn
	r.dialer.Socket.Dial(adv.PipeID, func(c *socket.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		conn = c
	})
	r.run(time.Minute)
	if conn == nil || !conn.Established() {
		t.Fatal("stream did not establish")
	}

	// Graceful stop on the listener side: the idle peer's FIN should reach
	// the dialer as EOF, not an error.
	r.listener.Socket.Stop()
	r.run(30 * time.Second)
	if _, err := conn.Read(make([]byte, 16)); err != io.EOF {
		t.Fatalf("dialer read after remote Stop = %v, want io.EOF", err)
	}
	r.dialer.Socket.Stop()
}

// TestServiceAbortIsSilent asserts the crash path sends nothing: the remote
// end only learns of the death through its retransmission limit.
func TestServiceAbortIsSilent(t *testing.T) {
	r := newRig(t, 78, netmodel.Uniform(2*time.Millisecond), socket.Config{
		RTO: 100 * time.Millisecond, MaxRetries: 3,
	})
	adv := pipe.NewPipeAdv(r.listener.ID, "abort-test")
	if _, err := r.listener.Socket.Listen(adv, func(*socket.Conn) {}); err != nil {
		t.Fatal(err)
	}
	r.run(time.Minute)

	var conn *socket.Conn
	r.dialer.Socket.Dial(adv.PipeID, func(c *socket.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		conn = c
	})
	r.run(time.Minute)
	if conn == nil || !conn.Established() {
		t.Fatal("stream did not establish")
	}

	sentBefore := r.listener.Socket.Stats.SegmentsSent
	r.listener.Socket.Abort()
	if got := r.listener.Socket.Stats.SegmentsSent; got != sentBefore {
		t.Fatalf("Abort sent %d segments, want 0", got-sentBefore)
	}
	// The dialer keeps writing into the void and eventually times out.
	if _, err := conn.Write(pattern(1024)); err != nil {
		t.Fatalf("write: %v", err)
	}
	r.run(5 * time.Minute)
	if conn.Err() != socket.ErrTimeout {
		t.Fatalf("dialer error after remote Abort = %v, want ErrTimeout", conn.Err())
	}
}

// transferWith runs a fixed bulk transfer with the given socket config over
// the Grid'5000 model (optionally lossy) and returns the dialer-side conn
// after completion, plus the elapsed virtual time.
func transferWith(t *testing.T, seed int64, lossRate float64, cfg socket.Config, size int) (*socket.Conn, time.Duration, *rig) {
	t.Helper()
	model := netmodel.Grid5000()
	model.LossRate = lossRate
	r := newRig(t, seed, model, cfg)
	adv := pipe.NewPipeAdv(r.listener.ID, "adaptive")
	serverSink := &sink{}
	if _, err := r.listener.Socket.Listen(adv, func(c *socket.Conn) {
		serverSink.attach(c)
	}); err != nil {
		t.Fatal(err)
	}
	r.run(time.Minute)
	var client *socket.Conn
	r.dialer.Socket.Dial(adv.PipeID, func(c *socket.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		client = c
	})
	r.run(time.Minute)
	if client == nil {
		t.Fatal("dial never completed")
	}
	start := r.o.Sched.Now()
	payload := pattern(size)
	streamOut(t, client, payload)
	// Step until the receiver sees EOF so the elapsed time measures the
	// transfer, not the polling horizon.
	deadline := start + 30*time.Minute
	for !serverSink.eof && r.o.Sched.Now() < deadline {
		r.o.Sched.Run(r.o.Sched.Now() + 20*time.Millisecond)
	}
	if !serverSink.eof || !bytes.Equal(serverSink.got, payload) {
		t.Fatalf("transfer incomplete/corrupt: %d/%d bytes", len(serverSink.got), len(payload))
	}
	return client, r.o.Sched.Now() - start, r
}

// TestAdaptiveRTOTracksPathRTT checks the Jacobson estimator converges onto
// the actual path round-trip time: after a bulk transfer the smoothed RTT
// is positive and the armed RTO sits well below the 300 ms fixed default
// (the simulated Grid'5000 paths are a few ms), yet above the floor.
func TestAdaptiveRTOTracksPathRTT(t *testing.T) {
	client, _, _ := transferWith(t, 9, 0, socket.Config{AdaptiveRTO: true}, 512<<10)
	srtt, rttvar, rto := client.RTT()
	if srtt <= 0 {
		t.Fatal("no RTT samples collected")
	}
	if srtt > 100*time.Millisecond {
		t.Fatalf("srtt=%v implausible for a Grid'5000 path", srtt)
	}
	if rto < socket.DefaultConfig().MinRTO {
		t.Fatalf("rto=%v below the floor", rto)
	}
	if rto >= 300*time.Millisecond {
		t.Fatalf("adaptive rto=%v did not undercut the fixed default (srtt=%v rttvar=%v)",
			rto, srtt, rttvar)
	}
}

// TestAdaptiveRTORecoversFasterUnderLoss compares the same lossy transfer
// with fixed and adaptive timers: the adaptive sender, whose RTO hugs the
// real RTT instead of the 300 ms default, finishes sooner.
func TestAdaptiveRTORecoversFasterUnderLoss(t *testing.T) {
	_, fixedElapsed, _ := transferWith(t, 11, 0.02, socket.Config{}, 1<<20)
	_, adaptiveElapsed, _ := transferWith(t, 11, 0.02, socket.Config{AdaptiveRTO: true}, 1<<20)
	if adaptiveElapsed >= fixedElapsed {
		t.Fatalf("adaptive RTO did not speed up loss recovery: fixed=%v adaptive=%v",
			fixedElapsed, adaptiveElapsed)
	}
}

// TestFixedRTOUnchangedByEstimator pins the gate: without AdaptiveRTO the
// estimator never arms the timer — RTT() reports no samples feeding the RTO
// and the armed timeout equals the configured constant.
func TestFixedRTOUnchangedByEstimator(t *testing.T) {
	client, _, _ := transferWith(t, 13, 0, socket.Config{}, 64<<10)
	srtt, _, rto := client.RTT()
	_ = srtt // samples are not even collected in fixed mode
	if rto != socket.DefaultConfig().RTO {
		t.Fatalf("fixed-mode rto=%v, want %v", rto, socket.DefaultConfig().RTO)
	}
}
