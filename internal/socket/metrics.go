package socket

import (
	"jxta/internal/metrics"
)

// sockMetrics holds the stream layer's stored instruments; the Stats
// struct's plain counters are bridged as collector-backed Func
// instruments.
type sockMetrics struct {
	rttHist *metrics.Histogram
}

// Instrument (re-)registers the stream layer's instruments on reg. Every
// Stats field is exported as a counter (jxta_socket_conns_dialed_total,
// _conns_accepted_total, _segments_sent_total, _segments_retx_total,
// _bytes_sent_total, _bytes_delivered_total, _segments_dup_total,
// _window_stalls_total) plus the jxta_socket_open_conns and
// jxta_socket_srtt_seconds gauges (the latter the mean smoothed RTT over
// established connections with at least one sample) and the
// jxta_socket_rtt_seconds histogram of raw RTT samples feeding the
// adaptive RTO estimator.
func (s *Service) Instrument(reg *metrics.Registry) {
	s.m = &sockMetrics{
		rttHist: reg.Histogram("jxta_socket_rtt_seconds",
			"Raw round-trip samples feeding the adaptive RTO estimator.", nil),
	}
	reg.CounterFunc("jxta_socket_conns_dialed_total", "Outbound connections dialed.",
		func() uint64 { return s.Stats.ConnsDialed })
	reg.CounterFunc("jxta_socket_conns_accepted_total", "Inbound connections accepted.",
		func() uint64 { return s.Stats.ConnsAccepted })
	reg.CounterFunc("jxta_socket_segments_sent_total", "Data segments transmitted.",
		func() uint64 { return s.Stats.SegmentsSent })
	reg.CounterFunc("jxta_socket_segments_retx_total", "Segments retransmitted after RTO.",
		func() uint64 { return s.Stats.SegmentsRetx })
	reg.CounterFunc("jxta_socket_bytes_sent_total", "Application payload bytes handed to the network.",
		func() uint64 { return s.Stats.BytesSent })
	reg.CounterFunc("jxta_socket_bytes_delivered_total", "In-order bytes made readable.",
		func() uint64 { return s.Stats.BytesDelivered })
	reg.CounterFunc("jxta_socket_segments_dup_total", "Duplicate segments received at or below the ack point.",
		func() uint64 { return s.Stats.SegmentsDup })
	reg.CounterFunc("jxta_socket_window_stalls_total", "Times a sender stalled on a closed flow window.",
		func() uint64 { return s.Stats.WindowStalls })
	reg.GaugeFunc("jxta_socket_open_conns", "Open stream connections.",
		func() float64 { return float64(len(s.conns)) })
	reg.GaugeFunc("jxta_socket_srtt_seconds", "Mean smoothed RTT across established connections.",
		func() float64 {
			var sum float64
			n := 0
			for _, c := range s.conns {
				if srtt, _, _ := c.RTT(); srtt > 0 && c.Established() {
					sum += srtt.Seconds()
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		})
}
