package socket

import (
	"bytes"
	"strconv"
	"testing"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/endpoint"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

// fuzzSeg builds a marshaled segment frame for the seed corpus.
func fuzzSeg(kv ...string) []byte {
	m := message.New()
	for i := 0; i+1 < len(kv); i += 2 {
		m.AddString(ns, kv[i], kv[i+1])
	}
	return m.Marshal()
}

// FuzzSegmentParser drives the stream layer's wire path with arbitrary
// bytes: the frame decoder (message.Unmarshal — the same parser every TCP
// frame goes through) and the segment demux (Service.receive with all its
// strconv field parsing, handshake state machine and reassembly logic).
// Properties:
//
//  1. Neither layer ever panics, whatever the bytes decode to — unknown
//     types, absurd sequence numbers, negative windows, duplicate SYNs.
//  2. Frame round-trip: a frame the decoder accepts re-encodes to a
//     canonical frame that decodes to the same element sequence.
//
// Each input is delivered twice — once cold and once against a fabricated
// established connection matching the segment's own connection key — so
// the data/ack/reassembly paths run, then virtual time advances so every
// armed timer (retransmission, linger, dial deadline) fires too.
func FuzzSegmentParser(f *testing.F) {
	pipeURN := ids.FromName(ids.KindPipe, "fuzz-pipe").String()
	for _, seed := range [][]byte{
		fuzzSeg(elemType, typeSyn, elemConn, "1", elemInit, "1", elemPipe, pipeURN, elemWnd, "262144"),
		fuzzSeg(elemType, typeSynAck, elemConn, "1", elemWnd, "262144"),
		fuzzSeg(elemType, typeAck, elemConn, "1", elemAck, "4096", elemWnd, "100"),
		fuzzSeg(elemType, typeData, elemConn, "1", elemInit, "1", elemSeq, "0", elemAck, "0", elemWnd, "65536", elemData, "payload"),
		fuzzSeg(elemType, typeData, elemConn, "7", elemSeq, "18446744073709551615", elemAck, "18446744073709551615", elemWnd, "-5", elemFin, "1"),
		fuzzSeg(elemType, typeRst, elemConn, "1"),
		fuzzSeg(elemType, "bogus", elemConn, "0"),
		[]byte("not a frame at all"),
		{},
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := message.Unmarshal(data)
		if err != nil {
			return // rejected frame: only the no-panic property applies
		}
		enc := m.Marshal()
		m2, err := message.Unmarshal(enc)
		if err != nil {
			t.Fatalf("canonical frame does not re-decode: %v", err)
		}
		if m2.Len() != m.Len() {
			t.Fatalf("round-trip element count %d != %d", m2.Len(), m.Len())
		}
		for i, el := range m.Elements() {
			el2 := m2.Elements()[i]
			if el.Namespace != el2.Namespace || el.Name != el2.Name || !bytes.Equal(el.Data, el2.Data) {
				t.Fatalf("round-trip element %d diverged", i)
			}
		}

		sched := simnet.NewScheduler(1)
		e := sched.NewEnv("fuzz")
		net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
		tr, err := net.Attach("fuzz", netmodel.Rennes)
		if err != nil {
			t.Fatal(err)
		}
		ep := endpoint.New(e, ids.NewRandom(ids.KindPeer, e.Rand()), tr)
		s := New(e, ep, nil, Config{RTO: 50 * time.Millisecond, HandshakeTimeout: time.Second})
		// A listener bound to whatever pipe the segment names, so a decoded
		// SYN traverses the accept path instead of dropping at the lookup.
		if pid, err := ids.Parse(m.GetString(ns, elemPipe)); err == nil {
			s.listeners[pid] = &Listener{svc: s, Adv: &advertisement.Pipe{PipeID: pid}, accept: func(*Conn) {}}
		}
		src := ids.NewRandom(ids.KindPeer, e.Rand())
		s.receive(src, m)
		// Re-deliver against an established connection under the segment's
		// own key, reaching the data/ack/reassembly paths a cold service
		// never enters.
		if cid, err := strconv.ParseUint(m.GetString(ns, elemConn), 10, 64); err == nil {
			key := connKey{peer: src, id: cid, initiated: m.GetString(ns, elemInit) != "1"}
			if _, ok := s.conns[key]; !ok {
				c := s.newConn(key)
				c.state = stateEstablished
				s.conns[key] = c
			}
			s.receive(src, m)
		}
		sched.Run(5 * time.Second) // let retransmission and linger timers fire
		// The fabricated listeners have no backing pipe; drop them before
		// the teardown walk (Listener.Close is not under test here).
		s.listeners = make(map[ids.ID]*Listener)
		s.Stop()
		sched.Run(sched.Now() + time.Minute)
	})
}
