package peerview

import (
	"jxta/internal/hibpool"
	"jxta/internal/ids"
)

// Edge hibernation (PR 9, satellite): a dormant edge's RumorStore pins two
// map shells even when the store is empty or fully settled — the ordered
// rumor slice alone carries all the information. Freeze packs the aging
// counters into a slice and releases both maps; the order slice (the data)
// and cursor stay. Thaw rebuilds the index from the order.

// rumorMiss is the packed form of one aging counter.
type rumorMiss struct {
	id ids.ID
	n  int
}

var (
	rumorIndexPool  hibpool.Maps[ids.ID, int]
	rumorMissesPool hibpool.Maps[ids.ID, int]
)

// Freeze releases the store's maps, packing the aging counters. Idempotent;
// the nil index is the frozen marker.
func (rs *RumorStore) Freeze() {
	if rs.byID == nil {
		return
	}
	for id, n := range rs.misses {
		rs.frozenMisses = append(rs.frozenMisses, rumorMiss{id: id, n: n})
	}
	rumorIndexPool.Put(rs.byID)
	rumorMissesPool.Put(rs.misses)
	rs.byID = nil
	rs.misses = nil
	// Excess append growth on the order slice is dead weight for a store
	// that may stay dormant for the rest of the run; repack it tight.
	if cap(rs.order) > len(rs.order) {
		rs.order = append(make([]Rumor, 0, len(rs.order)), rs.order...)
	}
}

// Thaw rebuilds the maps from the ordered slice and packed counters. A
// single nil check when live.
func (rs *RumorStore) Thaw() {
	if rs.byID != nil {
		return
	}
	rs.byID = rumorIndexPool.Get()
	for i, r := range rs.order {
		rs.byID[r.ID] = i
	}
	rs.misses = rumorMissesPool.Get()
	for _, m := range rs.frozenMisses {
		rs.misses[m.id] = m.n
	}
	clear(rs.frozenMisses)
	rs.frozenMisses = rs.frozenMisses[:0]
}

// Resident reports whether the store's maps are materialized (tests).
func (rs *RumorStore) Resident() bool { return rs.byID != nil }
