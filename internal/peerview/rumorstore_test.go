package peerview

import (
	"fmt"
	"testing"

	"jxta/internal/ids"
	"jxta/internal/transport"
)

func testRumor(i int) Rumor {
	return NewRumor(Seed{
		ID:   ids.FromName(ids.KindPeer, fmt.Sprintf("rumor-%d", i)),
		Addr: transport.Addr(fmt.Sprintf("sim://0/rumor-%d", i)),
	})
}

func TestRumorStoreSweepEvictsAfterNMisses(t *testing.T) {
	rs := NewRumorStore()
	dead, alive := testRumor(1), testRumor(2)
	rs.Add(dead)
	rs.Add(alive)
	live := func(id ids.ID) bool { return id.Equal(alive.ID) }
	for i := 0; i < 2; i++ {
		if n := rs.Sweep(3, live); n != 0 {
			t.Fatalf("sweep %d evicted %d rumors before deadAfter", i, n)
		}
	}
	if n := rs.Sweep(3, live); n != 1 {
		t.Fatalf("third sweep evicted %d, want 1", n)
	}
	if rs.Len() != 1 || !rs.All()[0].ID.Equal(alive.ID) {
		t.Fatalf("store after sweep: %v", rs.All())
	}
}

func TestRumorStoreAddResetsAgingClock(t *testing.T) {
	rs := NewRumorStore()
	r := testRumor(1)
	rs.Add(r)
	deadToAll := func(ids.ID) bool { return false }
	rs.Sweep(2, deadToAll)
	rs.Add(r) // re-gossiped: one miss on the books must be forgiven
	rs.Sweep(2, deadToAll)
	if rs.Len() != 1 {
		t.Fatal("re-added rumor evicted after a single post-add miss")
	}
	rs.Sweep(2, deadToAll)
	if rs.Len() != 0 {
		t.Fatal("rumor survived two consecutive misses after re-add")
	}
}

func TestRumorStoreSweepDisabled(t *testing.T) {
	rs := NewRumorStore()
	rs.Add(testRumor(1))
	for i := 0; i < 10; i++ {
		if n := rs.Sweep(0, func(ids.ID) bool { return false }); n != 0 {
			t.Fatalf("disabled sweep evicted %d", n)
		}
	}
	if rs.Len() != 1 {
		t.Fatal("deadAfter=0 must never evict")
	}
}

func TestRumorStoreSweepKeepsWindowRotation(t *testing.T) {
	// Evicting an entry behind the cursor must not make the rotation skip
	// survivors: after the sweep, a full cycle of NextWindow(1) calls still
	// visits every remaining rumor.
	rs := NewRumorStore()
	for i := 0; i < 6; i++ {
		rs.Add(testRumor(i))
	}
	rs.NextWindow(3) // advance the cursor into the middle of the store
	first := rs.All()[0].ID
	live := func(id ids.ID) bool { return !id.Equal(first) }
	if n := rs.Sweep(1, live); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	seen := make(map[ids.ID]bool)
	for i := 0; i < rs.Len(); i++ {
		for _, r := range rs.NextWindow(1) {
			seen[r.ID] = true
		}
	}
	if len(seen) != rs.Len() {
		t.Fatalf("one rotation cycle visited %d of %d rumors", len(seen), rs.Len())
	}
}
