package peerview

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/advstore"
	"jxta/internal/endpoint"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

// testRdv is one simulated rendezvous peer.
type testRdv struct {
	id  ids.ID
	adv *advertisement.Rdv
	ep  *endpoint.Endpoint
	pv  *PeerView
	tr  *transport.Sim
}

var testGroup = ids.FromName(ids.KindGroup, "NetPeerGroup")

// newOverlay builds n rendezvous peers over a uniform-latency simnet wired
// in a chain seed topology (peer i seeds on peer i-1), mirroring the paper's
// chain deployments. Peerviews are created but not started.
func newOverlay(t *testing.T, sched *simnet.Scheduler, n int, cfg Config) []*testRdv {
	t.Helper()
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	peers := make([]*testRdv, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("rdv%d", i)
		e := sched.NewEnv(name)
		tr, err := net.Attach(name, netmodel.Site(i%netmodel.NumSites))
		if err != nil {
			t.Fatal(err)
		}
		id := ids.NewRandom(ids.KindPeer, e.Rand())
		adv := &advertisement.Rdv{PeerID: id, GroupID: testGroup,
			Name: name, Address: string(tr.Addr())}
		ep := endpoint.New(e, id, tr)
		var seeds []Seed
		if i > 0 {
			seeds = []Seed{{ID: peers[i-1].id, Addr: peers[i-1].tr.Addr()}}
		}
		peers[i] = &testRdv{id: id, adv: adv, ep: ep, tr: tr,
			pv: New(e, ep, adv, cfg, seeds)}
	}
	return peers
}

func startAll(peers []*testRdv) {
	for _, p := range peers {
		p.pv.Start()
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Interval != 30*time.Second {
		t.Errorf("PEERVIEW_INTERVAL = %v, want 30s", cfg.Interval)
	}
	if cfg.EntryExpiry != 20*time.Minute {
		t.Errorf("PVE_EXPIRATION = %v, want 20min", cfg.EntryExpiry)
	}
	if cfg.HappySize != 4 {
		t.Errorf("HAPPY_SIZE = %d, want 4", cfg.HappySize)
	}
}

func TestWithDefaultsFillsZeroes(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.AdvStore != advstore.Default() {
		t.Fatalf("withDefaults AdvStore = %p, want process default", cfg.AdvStore)
	}
	cfg.AdvStore = nil
	if cfg != DefaultConfig() {
		t.Fatalf("withDefaults = %+v", cfg)
	}
	own := advstore.New()
	custom := Config{Interval: time.Second, EntryExpiry: time.Minute,
		HappySize: 2, ReferralsPerProbe: 5, AdvStore: own}
	if custom.withDefaults() != custom {
		t.Fatal("withDefaults overwrote non-zero fields")
	}
}

func TestSmallOverlayConverges(t *testing.T) {
	sched := simnet.NewScheduler(42)
	peers := newOverlay(t, sched, 10, DefaultConfig())
	startAll(peers)
	sched.Run(10 * time.Minute)
	for i, p := range peers {
		if got := p.pv.Size(); got != 9 {
			t.Errorf("peer %d view size = %d, want 9 (r-1)", i, got)
		}
	}
}

func TestViewsConsistentAfterConvergence(t *testing.T) {
	sched := simnet.NewScheduler(7)
	peers := newOverlay(t, sched, 8, DefaultConfig())
	startAll(peers)
	sched.Run(10 * time.Minute)
	// Property (2): all local views list the same global membership.
	want := peers[0].pv.View()
	for _, p := range peers[1:] {
		got := p.pv.View()
		if len(got) != len(want) {
			t.Fatalf("view sizes differ: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("views diverge at position %d", i)
			}
		}
	}
}

func TestViewSortedIncludesSelf(t *testing.T) {
	sched := simnet.NewScheduler(3)
	peers := newOverlay(t, sched, 12, DefaultConfig())
	startAll(peers)
	sched.Run(8 * time.Minute)
	for _, p := range peers {
		view := p.pv.View()
		if !sort.SliceIsSorted(view, func(i, j int) bool { return view[i].Less(view[j]) }) {
			t.Fatal("View() not sorted")
		}
		found := false
		for _, id := range view {
			if id.Equal(p.id) {
				found = true
			}
		}
		if !found {
			t.Fatal("View() missing self")
		}
		if len(view) != p.pv.Size()+1 {
			t.Fatalf("View() length %d != Size()+1 = %d", len(view), p.pv.Size()+1)
		}
	}
}

func TestNeighborsAreAdjacentInIDOrder(t *testing.T) {
	sched := simnet.NewScheduler(9)
	peers := newOverlay(t, sched, 10, DefaultConfig())
	startAll(peers)
	sched.Run(8 * time.Minute)
	// Determine global sorted order.
	all := make([]ids.ID, len(peers))
	byID := map[ids.ID]*testRdv{}
	for i, p := range peers {
		all[i] = p.id
		byID[p.id] = p
	}
	ids.SortIDs(all)
	for pos, id := range all {
		lower, upper := byID[id].pv.Neighbors()
		if pos == 0 {
			if !lower.IsNil() {
				t.Fatal("lowest peer has a lower neighbour")
			}
		} else if !lower.Equal(all[pos-1]) {
			t.Fatalf("peer %d lower neighbour wrong", pos)
		}
		if pos == len(all)-1 {
			if !upper.IsNil() {
				t.Fatal("highest peer has an upper neighbour")
			}
		} else if !upper.Equal(all[pos+1]) {
			t.Fatalf("peer %d upper neighbour wrong", pos)
		}
	}
}

func TestEntriesExpireWithoutRefresh(t *testing.T) {
	// One isolated pair: a learns b, then b crashes; a's entry must be
	// removed after PVE_EXPIRATION.
	sched := simnet.NewScheduler(5)
	cfg := Config{Interval: 30 * time.Second, EntryExpiry: 2 * time.Minute}
	peers := newOverlay(t, sched, 2, cfg)
	startAll(peers)
	sched.Run(time.Minute)
	if peers[0].pv.Size() != 1 || peers[1].pv.Size() != 1 {
		t.Fatal("pair did not learn each other")
	}
	// Crash peer 1.
	peers[1].pv.Stop()
	peers[1].tr.Close()
	sched.Run(10 * time.Minute)
	if peers[0].pv.Size() != 0 {
		t.Fatalf("dead peer never expired: size=%d", peers[0].pv.Size())
	}
	if peers[0].pv.Contains(peers[1].id) {
		t.Fatal("Contains still true after expiry")
	}
}

func TestListenerObservesAddAndRemove(t *testing.T) {
	sched := simnet.NewScheduler(5)
	cfg := Config{Interval: 30 * time.Second, EntryExpiry: 2 * time.Minute}
	peers := newOverlay(t, sched, 2, cfg)
	var adds, removes int
	peers[0].pv.SetListener(func(kind EventKind, peer ids.ID, at time.Duration) {
		if !peer.Equal(peers[1].id) {
			t.Errorf("event about unexpected peer %s", peer.Short())
		}
		switch kind {
		case EventAdd:
			adds++
		case EventRemove:
			removes++
		}
	})
	startAll(peers)
	sched.Run(time.Minute)
	peers[1].pv.Stop()
	peers[1].tr.Close()
	sched.Run(10 * time.Minute)
	if adds == 0 || removes == 0 {
		t.Fatalf("adds=%d removes=%d, want both > 0", adds, removes)
	}
}

func TestEventKindString(t *testing.T) {
	if EventAdd.String() != "add" || EventRemove.String() != "remove" {
		t.Fatal("EventKind strings wrong")
	}
}

func TestTunedExpiryRetainsEntries(t *testing.T) {
	// Figure 4 (left): with PVE_EXPIRATION larger than the experiment,
	// entries never expire, so the view only grows.
	sched := simnet.NewScheduler(11)
	cfg := DefaultConfig()
	cfg.EntryExpiry = 365 * 24 * time.Hour
	peers := newOverlay(t, sched, 20, cfg)
	var removed int
	for _, p := range peers {
		p.pv.SetListener(func(kind EventKind, _ ids.ID, _ time.Duration) {
			if kind == EventRemove {
				removed++
			}
		})
	}
	startAll(peers)
	sched.Run(30 * time.Minute)
	if removed != 0 {
		t.Fatalf("tuned expiry still removed %d entries", removed)
	}
	for _, p := range peers {
		if p.pv.Size() != 19 {
			t.Fatalf("view size %d, want 19", p.pv.Size())
		}
	}
}

func TestStopHaltsProbing(t *testing.T) {
	sched := simnet.NewScheduler(13)
	peers := newOverlay(t, sched, 3, DefaultConfig())
	startAll(peers)
	sched.Run(2 * time.Minute)
	rounds := peers[0].pv.Rounds
	peers[0].pv.Stop()
	sched.Run(5 * time.Minute)
	if peers[0].pv.Rounds != rounds {
		t.Fatal("iterations continued after Stop")
	}
	// Idempotent stop + restart support.
	peers[0].pv.Stop()
	peers[0].pv.Start()
	sched.Run(sched.Now() + 2*time.Minute)
	if peers[0].pv.Rounds <= rounds {
		t.Fatal("Start after Stop did not resume")
	}
}

func TestStartIdempotent(t *testing.T) {
	sched := simnet.NewScheduler(17)
	peers := newOverlay(t, sched, 2, DefaultConfig())
	peers[0].pv.Start()
	peers[0].pv.Start() // second call must not double the tick rate
	peers[1].pv.Start()
	sched.Run(5 * time.Minute)
	// 1 immediate + 10 ticks in 5 minutes (30s interval).
	if got := peers[0].pv.Rounds; got > 12 {
		t.Fatalf("rounds = %d, double ticker suspected", got)
	}
}

func TestSelfAdvertisementIgnored(t *testing.T) {
	sched := simnet.NewScheduler(19)
	peers := newOverlay(t, sched, 2, DefaultConfig())
	p := peers[0]
	if p.pv.upsert(p.adv) {
		t.Fatal("self advertisement inserted")
	}
	if p.pv.Size() != 0 {
		t.Fatal("self advertisement counted")
	}
}

func TestUpsertKeepsOrderProperty(t *testing.T) {
	sched := simnet.NewScheduler(23)
	peers := newOverlay(t, sched, 1, DefaultConfig())
	p := peers[0]
	rng := sched.DeriveRand(99)
	for i := 0; i < 200; i++ {
		id := ids.NewRandom(ids.KindPeer, rng)
		adv := &advertisement.Rdv{PeerID: id, GroupID: testGroup,
			Name: "x", Address: "sim://rennes/ghost"}
		p.pv.upsert(adv)
		// Re-upsert half of them to exercise the refresh path.
		if i%2 == 0 {
			p.pv.upsert(adv)
		}
	}
	view := p.pv.View()
	if !sort.SliceIsSorted(view, func(i, j int) bool { return view[i].Less(view[j]) }) {
		t.Fatal("view order violated under random upserts")
	}
	if p.pv.Size() != 200 {
		t.Fatalf("size = %d, want 200", p.pv.Size())
	}
}

func TestReferralTriggersProbeNotDirectAdd(t *testing.T) {
	// Build three peers a,b,c manually: a probes b; b knows c and refers
	// it. a must not insert c until c answers a's probe.
	sched := simnet.NewScheduler(29)
	peers := newOverlay(t, sched, 3, Config{Interval: time.Hour}) // no auto loop
	a, b, c := peers[0], peers[1], peers[2]
	// b learns c directly.
	b.pv.upsert(c.adv)
	// a probes b: b responds + refers c; a probes c; c responds; a adds c.
	a.ep.AddRoute(b.id, b.tr.Addr())
	a.pv.sendProbe(b.id)
	// Run just past the probe/response exchange (1ms hops).
	sched.Run(3 * time.Millisecond)
	if a.pv.Contains(c.id) {
		t.Fatal("referral added entry before probe answered")
	}
	sched.Run(time.Second)
	if !a.pv.Contains(c.id) {
		t.Fatal("referred peer never added after probe")
	}
	if !a.pv.Contains(b.id) {
		t.Fatal("probed peer not added")
	}
}

func TestReferralRefreshesKnownEntry(t *testing.T) {
	sched := simnet.NewScheduler(31)
	peers := newOverlay(t, sched, 3, Config{Interval: time.Hour})
	a, b, c := peers[0], peers[1], peers[2]
	b.pv.upsert(c.adv)
	a.pv.upsert(c.adv)
	before := a.pv.byID[c.id].renewed
	sched.Run(time.Minute) // advance the clock
	a.ep.AddRoute(b.id, b.tr.Addr())
	a.pv.sendProbe(b.id) // b will refer c, already known to a
	sched.Run(sched.Now() + time.Minute)
	after := a.pv.byID[c.id].renewed
	if after <= before {
		t.Fatal("referral did not refresh known entry")
	}
}

func TestHappySizeSeedProbing(t *testing.T) {
	// With an empty view and one seed, every iteration probes the seed.
	sched := simnet.NewScheduler(37)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	e := sched.NewEnv("solo")
	tr, _ := net.Attach("solo", netmodel.Rennes)
	id := ids.NewRandom(ids.KindPeer, e.Rand())
	adv := &advertisement.Rdv{PeerID: id, GroupID: testGroup, Name: "solo",
		Address: string(tr.Addr())}
	ep := endpoint.New(e, id, tr)
	ghostSeed := Seed{ID: ids.FromName(ids.KindPeer, "ghost"),
		Addr: "sim://rennes/ghost"}
	pv := New(e, ep, adv, DefaultConfig(), []Seed{ghostSeed})
	pv.Start()
	sched.Run(5 * time.Minute)
	// 11 iterations, all unhappy -> 11 probes sent to the (dead) seed.
	if st := net.Stats(); st.Messages < 10 {
		t.Fatalf("only %d messages, seed probing not periodic", st.Messages)
	}
}

func TestMalformedMessagesIgnored(t *testing.T) {
	sched := simnet.NewScheduler(41)
	peers := newOverlay(t, sched, 2, Config{Interval: time.Hour})
	a, b := peers[0], peers[1]
	b.ep.AddRoute(a.id, a.tr.Addr())
	// Missing advertisement element.
	m := message.New().AddString(ns, elemType, typeProbe)
	b.ep.Send(a.id, ServiceName, m)
	// Unparseable advertisement.
	m2 := message.New().AddString(ns, elemType, typeProbe)
	m2.Add(ns, elemAdv, []byte("<not-xml"))
	b.ep.Send(a.id, ServiceName, m2)
	// Wrong advertisement type.
	peerAdv := &advertisement.Peer{PeerID: b.id, Name: "x"}
	data, _ := advertisement.EncodeXML(peerAdv)
	m3 := message.New().AddString(ns, elemType, typeProbe)
	m3.Add(ns, elemAdv, data)
	b.ep.Send(a.id, ServiceName, m3)
	sched.Run(time.Second)
	if a.pv.Size() != 0 {
		t.Fatalf("malformed messages created %d entries", a.pv.Size())
	}
}

func TestDeterministicConvergence(t *testing.T) {
	run := func() []int {
		sched := simnet.NewScheduler(1234)
		peers := newOverlay(t, sched, 15, DefaultConfig())
		startAll(peers)
		sched.Run(12 * time.Minute)
		sizes := make([]int, len(peers))
		for i, p := range peers {
			sizes[i] = p.pv.Size()
		}
		return sizes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at peer %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkPeerviewRound50(b *testing.B) {
	sched := simnet.NewScheduler(1)
	peers := benchOverlay(sched, 50)
	startAll(peers)
	sched.Run(2 * time.Minute) // warm up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Run(sched.Now() + 30*time.Second)
	}
}

// benchOverlay mirrors newOverlay without testing.T.
func benchOverlay(sched *simnet.Scheduler, n int) []*testRdv {
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	peers := make([]*testRdv, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("rdv%d", i)
		e := sched.NewEnv(name)
		tr, _ := net.Attach(name, netmodel.Site(i%netmodel.NumSites))
		id := ids.NewRandom(ids.KindPeer, e.Rand())
		adv := &advertisement.Rdv{PeerID: id, GroupID: testGroup,
			Name: name, Address: string(tr.Addr())}
		ep := endpoint.New(e, id, tr)
		var seeds []Seed
		if i > 0 {
			seeds = []Seed{{ID: peers[i-1].id, Addr: peers[i-1].tr.Addr()}}
		}
		peers[i] = &testRdv{id: id, adv: adv, ep: ep, tr: tr,
			pv: New(e, ep, adv, DefaultConfig(), seeds)}
	}
	return peers
}

func TestProbeTimeoutEvictsDeadNeighbor(t *testing.T) {
	sched := simnet.NewScheduler(31)
	cfg := Config{ProbeTimeoutRounds: 2}
	peers := newOverlay(t, sched, 4, cfg)
	startAll(peers)
	sched.Run(10 * time.Minute)
	for i, p := range peers {
		if p.pv.Size() != 3 {
			t.Fatalf("peer %d view %d before kill, want 3", i, p.pv.Size())
		}
	}
	victim := peers[1]
	victim.pv.Stop()
	victim.tr.Close()
	// 2 missed probe rounds + the eviction sweep: well under a minute of
	// intervals each, nowhere near the 20 min PVE_EXPIRATION.
	sched.Run(sched.Now() + 5*time.Minute)
	for i, p := range peers {
		if p == victim {
			continue
		}
		if p.pv.Contains(victim.id) {
			t.Fatalf("peer %d still lists the dead neighbour after probe timeouts", i)
		}
	}
}

func TestProbeTimeoutDisabledKeepsDeadEntry(t *testing.T) {
	sched := simnet.NewScheduler(32)
	peers := newOverlay(t, sched, 4, Config{}) // detection off (default)
	startAll(peers)
	sched.Run(10 * time.Minute)
	victim := peers[1]
	victim.pv.Stop()
	victim.tr.Close()
	sched.Run(sched.Now() + 5*time.Minute)
	// Loose consistency: without probe detection the entry lingers until
	// PVE_EXPIRATION.
	alive := 0
	for _, p := range peers {
		if p != victim && p.pv.Contains(victim.id) {
			alive++
		}
	}
	if alive == 0 {
		t.Fatal("dead entry vanished although probe detection is disabled")
	}
}

func TestMembersSortedWithAddresses(t *testing.T) {
	sched := simnet.NewScheduler(33)
	peers := newOverlay(t, sched, 5, Config{})
	startAll(peers)
	sched.Run(10 * time.Minute)
	members := peers[0].pv.Members()
	if len(members) != 4 {
		t.Fatalf("members = %d, want 4", len(members))
	}
	for i, m := range members {
		if m.Addr == "" {
			t.Fatalf("member %d has no address", i)
		}
		if i > 0 && !members[i-1].ID.Less(m.ID) {
			t.Fatalf("members not in ascending ID order at %d", i)
		}
		if m.ID.Equal(peers[0].id) {
			t.Fatal("members include the local peer")
		}
	}
}
