package peerview

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"jxta/internal/ids"
	"jxta/internal/simnet"
)

// The property test drives a peerview overlay through seeded randomized
// kill/rejoin/merge schedules and checks the membership state machine's
// invariants the whole way:
//
//  1. Views stay strictly ID-sorted with no duplicate members — under
//     probes, referrals, expiry, probe-timeout eviction and bulk merge
//     unions alike.
//  2. An evicted member never resurrects in a view while it is down,
//     except through a merge union (a merge deliberately imports another
//     peer's — possibly staler — view; the imported entry is then evicted
//     again by failure detection). A fresh join always readmits.
//  3. After the schedule ends and failure detection has had time to run,
//     no stopped peer remains in any running peer's view.

// propEvent is one recorded observation, in global emission order.
type propEvent struct {
	kind  int // 0 = membership event, 1 = stop, 2 = start, 3 = merge
	obs   int // observing peer (membership/merge events)
	ev    EventKind
	peer  int // subject peer index
	at    time.Duration
	order int
}

func TestPropertyRandomKillRejoinMerge(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runPropertySchedule(t, seed)
		})
	}
}

func runPropertySchedule(t *testing.T, seed int64) {
	const n = 10
	sched := simnet.NewScheduler(seed)
	cfg := Config{
		Interval:           30 * time.Second,
		EntryExpiry:        20 * time.Minute,
		HappySize:          4,
		ProbeTimeoutRounds: 3,
	}
	peers := newOverlay(t, sched, n, cfg)
	idx := make(map[ids.ID]int, n)
	for i, p := range peers {
		idx[p.id] = i
	}

	var log []propEvent
	order := 0
	record := func(e propEvent) {
		e.at = sched.Now()
		e.order = order
		order++
		log = append(log, e)
	}
	for i, p := range peers {
		i := i
		p.pv.SetListener(func(kind EventKind, peer ids.ID, _ time.Duration) {
			record(propEvent{kind: 0, obs: i, ev: kind, peer: idx[peer]})
		})
		p.pv.SetMergeListener(func(peer ids.ID) {
			record(propEvent{kind: 3, obs: i, peer: idx[peer]})
		})
	}
	startAll(peers)

	// Structural invariant sweep, once per simulated minute.
	running := make([]bool, n)
	for i := range running {
		running[i] = true
	}
	checkStructure := func() {
		for i, p := range peers {
			if !running[i] {
				continue
			}
			for k := 1; k < len(p.pv.entries); k++ {
				a, b := p.pv.entries[k-1].adv.PeerID, p.pv.entries[k].adv.PeerID
				if !a.Less(b) {
					t.Fatalf("rdv%d: view unsorted or duplicated at %d: %s !< %s", i, k, a, b)
				}
			}
			if len(p.pv.byID) != len(p.pv.entries) {
				t.Fatalf("rdv%d: byID size %d != entries %d", i, len(p.pv.byID), len(p.pv.entries))
			}
			for _, en := range p.pv.entries {
				if p.pv.byID[en.adv.PeerID] != en {
					t.Fatalf("rdv%d: byID does not map %s to its entry", i, en.adv.PeerID)
				}
			}
		}
	}
	structTicker := func() {}
	structTicker = func() {
		checkStructure()
		sched.After(time.Minute, structTicker)
	}
	sched.After(time.Minute, structTicker)

	// Randomized schedule: one op every 5 minutes for 3 hours. The op RNG
	// is separate from the simulation RNG, seeded by the same value, so
	// the whole schedule is reproducible.
	rng := rand.New(rand.NewSource(seed))
	for step := 1; step <= 36; step++ {
		at := time.Duration(step) * 5 * time.Minute
		sched.After(at, func() {
			var up, down []int
			for i := range peers {
				if running[i] {
					up = append(up, i)
				} else {
					down = append(down, i)
				}
			}
			switch r := rng.Intn(10); {
			case r < 4 && len(up) > 2:
				v := up[rng.Intn(len(up))]
				record(propEvent{kind: 1, peer: v})
				running[v] = false
				peers[v].pv.Stop()
			case r < 8 && len(down) > 0:
				v := down[rng.Intn(len(down))]
				record(propEvent{kind: 2, peer: v})
				running[v] = true
				peers[v].pv.Reset()
				peers[v].pv.Start()
			case len(up) >= 2:
				a, b := up[rng.Intn(len(up))], up[rng.Intn(len(up))]
				if a != b {
					peers[a].pv.Merge(Seed{ID: peers[b].id, Addr: peers[b].tr.Addr()})
				}
			}
		})
	}
	// Schedule ends at 3h; settle well past the probe-timeout bound so
	// failure detection finishes sweeping every stale entry.
	sched.Run(4*time.Hour + 30*time.Minute)
	checkStructure()

	// Replay the log: resurrection analysis (invariant 2).
	runningNow := make([]bool, n)
	for i := range runningNow {
		runningNow[i] = true
	}
	evicted := make([]map[int]bool, n)
	for i := range evicted {
		evicted[i] = make(map[int]bool)
	}
	type candidate struct {
		obs, peer int
		at        time.Duration
		order     int
	}
	var suspects []candidate
	for _, e := range log {
		switch e.kind {
		case 1:
			runningNow[e.peer] = false
		case 2:
			runningNow[e.peer] = true
			for i := range evicted {
				delete(evicted[i], e.peer)
			}
		case 3:
			// Merge union at e.obs: adds in this same instant are legal.
			kept := suspects[:0]
			for _, s := range suspects {
				if !(s.obs == e.obs && s.at == e.at) {
					kept = append(kept, s)
				}
			}
			suspects = kept
		case 0:
			if e.ev == EventRemove {
				if !runningNow[e.peer] {
					evicted[e.obs][e.peer] = true
				}
				continue
			}
			if evicted[e.obs][e.peer] && !runningNow[e.peer] {
				suspects = append(suspects, candidate{obs: e.obs, peer: e.peer, at: e.at, order: e.order})
			}
			delete(evicted[e.obs], e.peer)
		}
	}
	for _, s := range suspects {
		t.Errorf("rdv%d resurrected stopped rdv%d at %v (order %d) without a fresh join or merge",
			s.obs, s.peer, s.at, s.order)
	}

	// Invariant 3: no stopped peer lingers in any running view.
	for i, p := range peers {
		if !running[i] {
			continue
		}
		for j := range peers {
			if !running[j] && p.pv.Contains(peers[j].id) {
				t.Errorf("rdv%d still sees stopped rdv%d after settle", i, j)
			}
		}
	}
}
