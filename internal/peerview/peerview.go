// Package peerview implements the JXTA peerview protocol (§3.2 of the
// paper), the sub-protocol of the rendezvous protocol by which rendezvous
// peers organize themselves into a loosely-consistent, ID-ordered membership
// view. The local peerview drives both message routing across the rendezvous
// network and the LC-DHT replica mapping, so its convergence behaviour is
// exactly what the paper's Figure 3 and Figure 4 (left) measure.
//
// The periodic algorithm is the paper's Algorithm 1, with the same tunables
// and defaults:
//
//	PEERVIEW_INTERVAL = 30 s   (Config.Interval)
//	PVE_EXPIRATION    = 20 min (Config.EntryExpiry)
//	HAPPY_SIZE        = 4      (Config.HappySize)
//
// Every iteration the peer (1) removes expired entries, (2) probes its
// upper and lower neighbours in the ID order — or, when the view is happy,
// replaces one probe in three with a one-way update of its own entry — and
// (3) probes its seed rendezvous while the view is below HAPPY_SIZE. A probe
// carries the sender's rendezvous advertisement; the receiver answers with
// its own advertisement and, in a separate message, a referral: the
// advertisement of a randomly chosen third rendezvous. A referral for an
// unknown peer is not inserted directly — the peer probes the referred
// rendezvous first and inserts it when it answers (§3.2).
//
// # Island merge
//
// Under total attrition the tier can fragment into islands: promoted
// successors that anchor disjoint peerviews and never learn the other
// anchors exist (the degenerate case of the paper's §5 volatility axis).
// The merge protocol closes that gap deterministically: when the rendezvous
// service learns of a foreign rendezvous through a gossiped tier rumor
// (Rumor/RumorStore below), it calls Merge — the initiator sends its full
// ID-sorted member list (self included), the receiver unions it into its
// own view and answers with its post-union list, and the initiator unions
// that. Both sides then notify the MergeListener so the layers above can
// re-replicate SRDI tuples and reconcile duplicate client leases.
package peerview

import (
	"hash/fnv"
	"strconv"
	"strings"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/advstore"
	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/metrics"
	"jxta/internal/transport"
)

// ServiceName is the endpoint service the peerview protocol listens on.
const ServiceName = "rdv.peerview"

// Message element names, namespace "pv".
const (
	ns       = "pv"
	elemType = "Type"
	elemAdv  = "RdvAdv"

	typeProbe    = "probe"
	typeResponse = "response"
	typeReferral = "referral"
	typeUpdate   = "update"
	// Merge handshake: the message carries the sender's whole member list
	// as repeated RdvAdv elements (self first, then ascending ID order).
	typeMerge    = "merge"
	typeMergeAck = "mergeack"
)

// Config carries the protocol tunables. The zero value is replaced by the
// paper's defaults.
type Config struct {
	// Interval is PEERVIEW_INTERVAL, the pause between loop iterations.
	Interval time.Duration
	// EntryExpiry is PVE_EXPIRATION, the lifetime of an un-refreshed
	// peerview entry. Set very large (e.g. 365 days) to reproduce the
	// paper's "tuned" configuration of Figure 4 (left).
	EntryExpiry time.Duration
	// HappySize is HAPPY_SIZE, the minimum view size below which the peer
	// probes aggressively (neighbours every round, plus seeds).
	HappySize int
	// ReferralsPerProbe is the *minimum* number of referral advertisements
	// a rendezvous returns for each probe (JXTA-C returns one referral
	// message per probe; the message may carry several advertisements).
	// This is the gossip fan-out that sets the steady-state view size at
	// large r, so the effective batch grows with the view: a peer renews
	// an entry only when some message mentions it, and a view of l entries
	// expiring after EntryExpiry needs ≥ l·Interval/EntryExpiry mentions
	// per round just to stand still. The service sends
	// max(ReferralsPerProbe, ⌈2·l·Interval/EntryExpiry⌉) advertisements
	// per referral message, drawn from a rotating no-replacement cursor
	// (see sendReferrals), which is what lets the r=1,000 view converge
	// within the paper's 120-minute horizon instead of plateauing at the
	// coupon-collector bound of i.i.d. random draws.
	ReferralsPerProbe int
	// ProbeTimeoutRounds enables active failure detection: a view member
	// that was probed this many consecutive iterations without any message
	// coming back is evicted immediately, instead of lingering until
	// EntryExpiry. Zero (the default) disables the mechanism, preserving
	// the paper's loose-consistency behaviour; self-healing deployments
	// enable it so a crashed rendezvous disappears from neighbouring views
	// within a few PEERVIEW_INTERVALs and walks route around it.
	ProbeTimeoutRounds int
	// AdvStore interns the view's rendezvous advertisements; nil uses the
	// process-wide default store. Deployments pass one store per overlay so
	// interned advertisements do not outlive it.
	AdvStore *advstore.Store
}

// DefaultConfig returns the paper's default tunables.
func DefaultConfig() Config {
	return Config{
		Interval:          30 * time.Second,
		EntryExpiry:       20 * time.Minute,
		HappySize:         4,
		ReferralsPerProbe: 2,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.EntryExpiry <= 0 {
		c.EntryExpiry = d.EntryExpiry
	}
	if c.HappySize <= 0 {
		c.HappySize = d.HappySize
	}
	if c.ReferralsPerProbe <= 0 {
		c.ReferralsPerProbe = d.ReferralsPerProbe
	}
	if c.AdvStore == nil {
		c.AdvStore = advstore.Default()
	}
	return c
}

// Seed identifies an initial rendezvous contact.
type Seed struct {
	ID   ids.ID
	Addr transport.Addr
}

// Rumor is one gossiped "tier rumor": the identity and address of a peer
// believed to hold (or to have been elected into) the rendezvous role.
// Rumors piggyback on edge traffic — lease requests and grants — so any
// edge that ever contacted two islands becomes a bridge between them. Sig
// is an FNV-1a checksum over the record, standing in for a signature: a
// relay cannot silently corrupt the identity or address in transit without
// the record being dropped on receipt (Verify).
type Rumor struct {
	Seed
	Sig uint64
}

// NewRumor builds a checksummed rumor for the given tier member.
func NewRumor(sd Seed) Rumor { return Rumor{Seed: sd, Sig: rumorSig(sd)} }

// rumorSig computes the record checksum over "id|addr".
func rumorSig(sd Seed) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sd.ID.String()))
	h.Write([]byte{'|'})
	h.Write([]byte(sd.Addr))
	return h.Sum64()
}

// Verify reports whether the checksum matches the record.
func (r Rumor) Verify() bool { return r.Sig == rumorSig(r.Seed) }

// Encode renders "id addr sig" (transport addresses contain no spaces).
func (r Rumor) Encode() string {
	return r.ID.String() + " " + string(r.Addr) + " " + strconv.FormatUint(r.Sig, 16)
}

// ParseRumor is the inverse of Encode. It rejects malformed records and
// records whose checksum does not verify.
func ParseRumor(v string) (Rumor, bool) {
	fields := strings.Fields(v)
	if len(fields) != 3 {
		return Rumor{}, false
	}
	id, err := ids.Parse(fields[0])
	if err != nil {
		return Rumor{}, false
	}
	sig, err := strconv.ParseUint(fields[2], 16, 64)
	if err != nil {
		return Rumor{}, false
	}
	r := Rumor{Seed: Seed{ID: id, Addr: transport.Addr(fields[1])}, Sig: sig}
	if !r.Verify() {
		return Rumor{}, false
	}
	return r, true
}

// RumorStore accumulates tier rumors in ascending ID order. Unlike the
// failover alternates — which each lease grant replaces wholesale — the
// store only grows (or refreshes addresses), because a rumor's value is
// exactly that it may name a rendezvous the *current* island has never
// heard of. Entries without an address are rejected: they cannot be probed.
type RumorStore struct {
	byID   map[ids.ID]int // index into ordered; nil while frozen (hibernate.go)
	order  []Rumor        // ascending ID
	cursor int            // rotating window position (NextWindow)
	misses map[ids.ID]int // consecutive Sweep calls an identity was dead
	// frozenMisses holds the packed aging counters while the maps are
	// released; see Freeze/Thaw.
	frozenMisses []rumorMiss
}

// NewRumorStore builds an empty store.
func NewRumorStore() *RumorStore {
	return &RumorStore{byID: make(map[ids.ID]int), misses: make(map[ids.ID]int)}
}

// Add inserts a verified rumor, keeping ID order. A record for a known ID
// refreshes the stored address. It reports whether the store changed.
func (rs *RumorStore) Add(r Rumor) bool {
	if !r.Verify() || r.Addr == "" || r.ID.IsNil() {
		return false
	}
	rs.Thaw()
	delete(rs.misses, r.ID) // a fresh sighting resets the aging clock
	if i, ok := rs.byID[r.ID]; ok {
		if rs.order[i].Addr == r.Addr {
			return false
		}
		rs.order[i] = r
		return true
	}
	lo, hi := 0, len(rs.order)
	for lo < hi {
		mid := (lo + hi) / 2
		if rs.order[mid].ID.Less(r.ID) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	rs.order = append(rs.order, Rumor{})
	copy(rs.order[lo+1:], rs.order[lo:])
	rs.order[lo] = r
	for i := lo + 1; i < len(rs.order); i++ {
		rs.byID[rs.order[i].ID] = i
	}
	rs.byID[r.ID] = lo
	return true
}

// AddSeed is Add over a locally learned identity (checksummed here).
func (rs *RumorStore) AddSeed(sd Seed) bool { return rs.Add(NewRumor(sd)) }

// Len returns the number of stored rumors.
func (rs *RumorStore) Len() int { return len(rs.order) }

// All returns the rumors in ascending ID order (shared backing array; the
// caller must not mutate entries).
func (rs *RumorStore) All() []Rumor { return rs.order }

// NextWindow returns up to n rumors starting at an internal rotating
// cursor, advancing it. Piggyback channels are capped per message; always
// sending the first n by ID would starve every identity past the cap —
// possibly the one pointer that bridges two islands. Rotating the window
// guarantees the whole store circulates over successive messages. Inserts
// shift the order, so a rotation step may repeat or skip an entry once;
// the cycle stays complete and deterministic.
func (rs *RumorStore) NextWindow(n int) []Rumor {
	total := len(rs.order)
	if total == 0 || n <= 0 {
		return nil
	}
	if n > total {
		n = total
	}
	if rs.cursor >= total {
		rs.cursor = 0
	}
	out := make([]Rumor, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rs.order[(rs.cursor+i)%total])
	}
	rs.cursor = (rs.cursor + n) % total
	return out
}

// Sweep ages the store against a liveness oracle and reports how many
// rumors it evicted. Each call charges one "miss" to every identity for
// which live returns false (and clears the count for live ones); an
// identity dead for deadAfter consecutive sweeps is evicted. Add and
// AddSeed also clear the count — a re-gossiped rumor restarts its clock.
// Without sweeping, a long-lived deployment's store grows monotonically
// with every identity that ever joined the tier; aging bounds it to the
// identities seen alive (or re-rumored) recently, while the multi-sweep
// grace period keeps one missed probe from erasing a merge lead.
// deadAfter <= 0 disables aging entirely (no misses are charged).
func (rs *RumorStore) Sweep(deadAfter int, live func(ids.ID) bool) int {
	if deadAfter <= 0 {
		return 0
	}
	rs.Thaw()
	kept := rs.order[:0]
	evicted, shift := 0, 0
	for i, r := range rs.order {
		if live(r.ID) {
			delete(rs.misses, r.ID)
			kept = append(kept, r)
			continue
		}
		m := rs.misses[r.ID] + 1
		if m < deadAfter {
			rs.misses[r.ID] = m
			kept = append(kept, r)
			continue
		}
		delete(rs.misses, r.ID)
		delete(rs.byID, r.ID)
		evicted++
		if i < rs.cursor {
			shift++ // keep the rotation window anchored on surviving entries
		}
	}
	if evicted == 0 {
		return 0
	}
	rs.order = kept
	for i, r := range rs.order {
		rs.byID[r.ID] = i
	}
	rs.cursor -= shift
	return evicted
}

// EventKind classifies peerview membership events (Figure 3 right).
type EventKind int

// Membership event kinds.
const (
	EventAdd EventKind = iota
	EventRemove
)

// String names the event kind.
func (k EventKind) String() string {
	if k == EventAdd {
		return "add"
	}
	return "remove"
}

// Listener observes membership events as they happen.
type Listener func(kind EventKind, peer ids.ID, at time.Duration)

// MergeListener observes completed merge handshakes: it fires once per
// handshake leg, with the counterpart's ID, after the remote member list
// was unioned into the local view. The rendezvous service hooks it to
// re-replicate SRDI tuples and reconcile duplicate client leases.
type MergeListener func(peer ids.ID)

// entry is one peerview slot: the advertisement plus its last refresh time.
// adv is the canonical interned instance (advstore), shared with every
// other peerview holding the same rendezvous — a tier of r rendezvous would
// otherwise keep ~r² private decodes alive. sh is the interning handle,
// released when the entry leaves the view.
type entry struct {
	adv     *advertisement.Rdv
	sh      *advstore.Shared
	renewed time.Duration
}

// release drops the entry's interning handle (idempotent via nil-ing).
func (en *entry) release() {
	if en.sh != nil {
		en.sh.Release()
		en.sh = nil
	}
}

// PeerView runs the protocol for one rendezvous peer.
type PeerView struct {
	env   env.Env
	ep    *endpoint.Endpoint
	self  *advertisement.Rdv
	cfg   Config
	seeds []Seed

	// entries is the local peerview, sorted by peer ID, excluding self
	// (the paper's measurements exclude the local peer, footnote 2).
	entries  []*entry
	byID     map[ids.ID]*entry
	ticker   *env.Ticker
	boot     env.Timer // the immediate first iteration armed by Start
	stopped  bool      // explicitly stopped: ignore inbound traffic
	listener Listener
	onMerge  MergeListener

	// probed tracks outstanding probes triggered by referrals, so one
	// referral storm cannot launch duplicate probes within an interval.
	probed map[ids.ID]time.Duration

	// refCursor is the rotating no-replacement position sendReferrals draws
	// referral batches from, so successive probes walk the whole ID-ordered
	// view instead of re-drawing i.i.d. random samples (see sendReferrals).
	refCursor int

	// missed counts consecutive unanswered neighbour probes per view member
	// (ProbeTimeoutRounds failure detection; unused when disabled).
	missed map[ids.ID]int
	// sentinelIdx round-robins one extra probe per iteration over the
	// non-neighbour view members, so failure detection covers the whole
	// view (neighbour probes alone only watch the two adjacent IDs).
	sentinelIdx int

	// Rounds counts loop iterations (diagnostics).
	Rounds int

	// m holds the runtime instruments; always non-nil (New pre-instruments,
	// node.New re-instruments with the node's shared registry).
	m *pvMetrics
}

// New builds a peerview for the rendezvous peer described by self. Start
// must be called to begin the periodic algorithm.
func New(e env.Env, ep *endpoint.Endpoint, self *advertisement.Rdv, cfg Config, seeds []Seed) *PeerView {
	pv := &PeerView{
		env:    e,
		ep:     ep,
		self:   self,
		cfg:    cfg.withDefaults(),
		seeds:  seeds,
		byID:   make(map[ids.ID]*entry),
		probed: make(map[ids.ID]time.Duration),
		missed: make(map[ids.ID]int),
	}
	ep.Register(ServiceName, pv.receive)
	pv.Instrument(metrics.Discard())
	return pv
}

// Start begins the periodic algorithm. The first iteration runs immediately
// (bootstrap probing of seeds), subsequent ones every Interval.
func (pv *PeerView) Start() {
	if pv.ticker != nil {
		return
	}
	pv.stopped = false
	pv.boot = pv.env.After(0, pv.iterate)
	pv.ticker = env.NewTicker(pv.env, pv.cfg.Interval, pv.iterate)
}

// Stop halts the periodic algorithm ("until rendezvous service is stopped").
// The accumulated view is retained — a later Start resumes gossiping from
// it; Restart paths wanting a cold rejoin call Reset first.
func (pv *PeerView) Stop() {
	pv.stopped = true
	if pv.ticker != nil {
		pv.ticker.Stop()
		pv.ticker = nil
	}
	if pv.boot != nil {
		pv.boot.Cancel()
		pv.boot = nil
	}
}

// Reset discards the accumulated view and probe-dedup state, as a freshly
// booted rendezvous process would start: the next Start rebuilds the view
// from the seeds. No membership events are emitted for the dropped entries
// (the process observing them is the one restarting).
func (pv *PeerView) Reset() {
	for _, en := range pv.entries {
		en.release()
	}
	pv.entries = nil
	pv.byID = make(map[ids.ID]*entry)
	pv.probed = make(map[ids.ID]time.Duration)
	pv.missed = make(map[ids.ID]int)
}

// AddSeed appends a bootstrap seed at runtime (live joins).
func (pv *PeerView) AddSeed(seed Seed) { pv.seeds = append(pv.seeds, seed) }

// SetListener installs the membership event observer.
func (pv *PeerView) SetListener(l Listener) { pv.listener = l }

// SetMergeListener installs the merge handshake observer.
func (pv *PeerView) SetMergeListener(l MergeListener) { pv.onMerge = l }

// Size returns l, the local peerview size excluding the local peer.
func (pv *PeerView) Size() int { return len(pv.entries) }

// Contains reports whether the peer is currently in the view.
func (pv *PeerView) Contains(id ids.ID) bool {
	_, ok := pv.byID[id]
	return ok
}

// View returns the ordered peerview including the local peer — the list the
// LC-DHT replica function indexes into (§3.3 computes positions on the full
// ordered list).
func (pv *PeerView) View() []ids.ID {
	out := make([]ids.ID, 0, len(pv.entries)+1)
	inserted := false
	for _, en := range pv.entries {
		if !inserted && pv.self.PeerID.Less(en.adv.PeerID) {
			out = append(out, pv.self.PeerID)
			inserted = true
		}
		out = append(out, en.adv.PeerID)
	}
	if !inserted {
		out = append(out, pv.self.PeerID)
	}
	return out
}

// Members returns the current view entries as seed records (ID + address),
// in ascending ID order, excluding the local peer. This is the "alternate
// rendezvous" list a self-healing rendezvous shares with its lease clients,
// and the seed set a promoted edge re-seeds its own peerview from.
func (pv *PeerView) Members() []Seed {
	out := make([]Seed, 0, len(pv.entries))
	for _, en := range pv.entries {
		out = append(out, Seed{ID: en.adv.PeerID, Addr: transport.Addr(en.adv.Address)})
	}
	return out
}

// Neighbors returns the current lower_rdv and upper_rdv: the entries whose
// IDs immediately precede and follow the local peer ID in the sorted view.
// Either may be Nil when the view is empty on that side (peers at the ends
// of the sorted list have only one neighbour to probe).
func (pv *PeerView) Neighbors() (lower, upper ids.ID) {
	for _, en := range pv.entries {
		if en.adv.PeerID.Less(pv.self.PeerID) {
			lower = en.adv.PeerID
		} else {
			return lower, en.adv.PeerID
		}
	}
	return lower, ids.Nil
}

// iterate is one pass of Algorithm 1.
func (pv *PeerView) iterate() {
	pv.Rounds++
	pv.expireSweep()
	pv.probeTimeoutSweep()

	l := pv.Size()
	lower, upper := pv.Neighbors()
	for _, rdv := range [2]ids.ID{upper, lower} {
		if rdv.IsNil() {
			continue
		}
		if l < pv.cfg.HappySize {
			pv.probeNeighbor(rdv)
		} else if pv.env.Rand().Intn(3) == 0 {
			pv.sendUpdate(rdv)
		} else {
			pv.probeNeighbor(rdv)
		}
	}
	// With failure detection on, also probe one non-neighbour member per
	// iteration (round-robin), so every entry is liveness-checked within l
	// intervals — neighbour probes alone only watch the adjacent IDs.
	if pv.cfg.ProbeTimeoutRounds > 0 && len(pv.entries) > 0 {
		en := pv.entries[pv.sentinelIdx%len(pv.entries)]
		pv.sentinelIdx++
		if id := en.adv.PeerID; !id.Equal(lower) && !id.Equal(upper) {
			pv.probeNeighbor(id)
		}
	}
	if l < pv.cfg.HappySize {
		for _, seed := range pv.seeds {
			if seed.ID.Equal(pv.self.PeerID) {
				continue
			}
			pv.ep.AddRoute(seed.ID, seed.Addr)
			pv.sendProbe(seed.ID)
		}
	}
	// Garbage-collect the referral-probe dedup set.
	cutoff := pv.env.Now() - pv.cfg.Interval
	for id, at := range pv.probed {
		if at < cutoff {
			delete(pv.probed, id)
		}
	}
}

// probeNeighbor probes a view neighbour, counting the outstanding probe for
// failure detection when ProbeTimeoutRounds is enabled. The counter is reset
// by any inbound message from that peer (receive/upsert).
func (pv *PeerView) probeNeighbor(rdv ids.ID) {
	if pv.cfg.ProbeTimeoutRounds > 0 {
		if _, member := pv.byID[rdv]; member {
			pv.missed[rdv]++
		}
	}
	pv.sendProbe(rdv)
}

// probeTimeoutSweep evicts view members whose last ProbeTimeoutRounds
// neighbour probes all went unanswered — the active failure-detection path a
// self-healing overlay runs so dead rendezvous leave the view in a few
// intervals rather than a PVE_EXPIRATION. Disabled (no-op) at the default
// configuration.
func (pv *PeerView) probeTimeoutSweep() {
	if pv.cfg.ProbeTimeoutRounds <= 0 {
		return
	}
	kept := pv.entries[:0]
	for _, en := range pv.entries {
		id := en.adv.PeerID
		if pv.missed[id] >= pv.cfg.ProbeTimeoutRounds {
			delete(pv.byID, id)
			delete(pv.missed, id)
			en.release()
			pv.m.probeEvicts.Inc()
			pv.notify(EventRemove, id)
			continue
		}
		kept = append(kept, en)
	}
	pv.entries = kept
	// Drop counters for peers no longer in the view (neighbour rotation).
	for id := range pv.missed {
		if _, member := pv.byID[id]; !member {
			delete(pv.missed, id)
		}
	}
}

// expireSweep removes entries older than EntryExpiry (Algorithm 1, line 3).
func (pv *PeerView) expireSweep() {
	now := pv.env.Now()
	kept := pv.entries[:0]
	for _, en := range pv.entries {
		if now-en.renewed > pv.cfg.EntryExpiry {
			id := en.adv.PeerID
			delete(pv.byID, id)
			en.release()
			pv.m.expiries.Inc()
			pv.notify(EventRemove, id)
			continue
		}
		kept = append(kept, en)
	}
	pv.entries = kept
}

func (pv *PeerView) notify(kind EventKind, peer ids.ID) {
	if pv.listener != nil {
		pv.listener(kind, peer, pv.env.Now())
	}
}

// upsert inserts or refreshes an entry from a received advertisement,
// keeping the slice sorted. It reports whether the entry was new.
func (pv *PeerView) upsert(adv *advertisement.Rdv) bool {
	if adv.PeerID.Equal(pv.self.PeerID) {
		return false
	}
	pv.ep.AddRoute(adv.PeerID, transport.Addr(adv.Address))
	// Intern the advertisement: equal Rdv advs (same peer, address, name)
	// received across the whole tier collapse to one canonical decode.
	sh := pv.cfg.AdvStore.Intern(adv)
	canon, ok := sh.Adv().(*advertisement.Rdv)
	if !ok {
		// Only possible if another holder interned an equal encoding under
		// a different decoded type — cannot happen for jxta:RdvAdvertisement.
		sh.Release()
		canon, sh = adv, nil
	}
	if en, ok := pv.byID[adv.PeerID]; ok {
		en.release()
		en.adv, en.sh = canon, sh
		en.renewed = pv.env.Now()
		return false
	}
	en := &entry{adv: canon, sh: sh, renewed: pv.env.Now()}
	pv.byID[adv.PeerID] = en
	// Binary insertion keeping ID order.
	lo, hi := 0, len(pv.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if pv.entries[mid].adv.PeerID.Less(adv.PeerID) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pv.entries = append(pv.entries, nil)
	copy(pv.entries[lo+1:], pv.entries[lo:])
	pv.entries[lo] = en
	pv.m.adds.Inc()
	pv.notify(EventAdd, adv.PeerID)
	return true
}

// send transmits a typed peerview message carrying the given advertisement.
func (pv *PeerView) send(to ids.ID, msgType string, adv *advertisement.Rdv) {
	m := advertisementMessage(msgType, adv)
	if m == nil {
		return
	}
	_ = pv.ep.Send(to, ServiceName, m) // unreachable peers age out naturally
}

func advertisementMessage(msgType string, adv *advertisement.Rdv) *message.Message {
	data, err := advertisement.EncodeXML(adv)
	if err != nil {
		return nil
	}
	m := message.New()
	m.AddString(ns, elemType, msgType)
	m.Add(ns, elemAdv, data)
	return m
}

func (pv *PeerView) sendProbe(to ids.ID) {
	pv.m.probes.Inc()
	pv.send(to, typeProbe, pv.self)
}

func (pv *PeerView) sendUpdate(to ids.ID) {
	pv.m.updates.Inc()
	pv.send(to, typeUpdate, pv.self)
}

// Merge initiates the deterministic peerview merge handshake with a
// (rumored) foreign rendezvous: the full local member list travels to the
// target, which unions it and answers with its own. A dead or still-edge
// target simply never answers — the initiation costs one message. No-op on
// a stopped view or a self-target.
func (pv *PeerView) Merge(sd Seed) {
	if pv.stopped || pv.onMerge == nil || sd.ID.IsNil() || sd.ID.Equal(pv.self.PeerID) {
		return
	}
	if sd.Addr != "" {
		pv.ep.AddRoute(sd.ID, sd.Addr)
	}
	pv.m.mergesStarted.Inc()
	pv.sendView(sd.ID, typeMerge)
}

// sendView sends a typed message carrying the whole view: the local peer's
// advertisement first, then every entry in ascending ID order.
func (pv *PeerView) sendView(to ids.ID, msgType string) {
	m := message.New()
	m.AddString(ns, elemType, msgType)
	addAdv := func(adv *advertisement.Rdv) {
		if data, err := advertisement.EncodeXML(adv); err == nil {
			m.Add(ns, elemAdv, data)
		}
	}
	addAdv(pv.self)
	for _, en := range pv.entries {
		addAdv(en.adv)
	}
	_ = pv.ep.Send(to, ServiceName, m)
}

// receiveMerge handles both legs of the merge handshake: union every
// carried advertisement into the view, answer a request with the (now
// merged) local list, and notify the merge listener.
func (pv *PeerView) receiveMerge(src ids.ID, msgType string, m *message.Message) {
	for _, el := range m.Elements() {
		if el.Namespace != ns || el.Name != elemAdv {
			continue
		}
		advAny, err := advertisement.DecodeXML(el.Data)
		if err != nil {
			continue
		}
		if adv, ok := advAny.(*advertisement.Rdv); ok {
			pv.upsert(adv)
		}
	}
	if msgType == typeMerge {
		pv.sendView(src, typeMergeAck)
	}
	if pv.onMerge != nil {
		pv.onMerge(src)
	}
}

// receive handles inbound peerview messages. An explicitly stopped
// peerview ignores them: answering probes would let neighbours refresh the
// stopped peer in their views forever, and probing referrals would send
// from a peer that is supposed to be gone. (A not-yet-started peerview
// still learns — unit harnesses drive the protocol without the loop.)
func (pv *PeerView) receive(src ids.ID, m *message.Message) {
	if pv.stopped {
		return
	}
	// Any message from the peer itself proves liveness. Referrals renew a
	// third party's *entry* below but must not reset its missed-probe
	// counter — a stale advertisement relayed by a neighbour is not a sign
	// of life.
	delete(pv.missed, src)
	msgType := m.GetString(ns, elemType)
	if msgType == typeMerge || msgType == typeMergeAck {
		// The merge protocol is opt-in: a view whose owner never installed
		// a merge listener (the rendezvous service installs one only with
		// IslandMerge enabled) must not bulk-union member lists a foreign
		// peer sends it — a one-sided union would enlarge its replica
		// mapping without the SRDI re-replication that keeps it honest.
		if pv.onMerge == nil {
			return
		}
		pv.receiveMerge(src, msgType, m)
		return
	}
	if msgType == typeReferral {
		// One referral message carries a batch of advertisements as repeated
		// RdvAdv elements (JXTA-C ships several advertisements per referral
		// message); apply each independently.
		for _, el := range m.Elements() {
			if el.Namespace != ns || el.Name != elemAdv {
				continue
			}
			advAny, err := advertisement.DecodeXML(el.Data)
			if err != nil {
				continue
			}
			if adv, ok := advAny.(*advertisement.Rdv); ok {
				pv.receiveReferral(adv)
			}
		}
		return
	}
	data, ok := m.Get(ns, elemAdv)
	if !ok {
		return
	}
	advAny, err := advertisement.DecodeXML(data)
	if err != nil {
		return
	}
	adv, ok := advAny.(*advertisement.Rdv)
	if !ok {
		return
	}

	switch msgType {
	case typeProbe:
		// The probe carries the sender's advertisement: learn/refresh it,
		// then answer with our own advertisement plus a separate referral
		// message naming a batch of other rendezvous from the local view.
		pv.upsert(adv)
		pv.send(src, typeResponse, pv.self)
		pv.sendReferrals(src)
	case typeResponse:
		pv.upsert(adv)
	case typeUpdate:
		pv.upsert(adv)
	}
}

// receiveReferral applies one referred advertisement: a known peer is
// renewed in place, an unknown one is probed before insertion (§3.2), with
// per-interval dedup so referral bursts cannot launch duplicate probes.
func (pv *PeerView) receiveReferral(adv *advertisement.Rdv) {
	if pv.byID[adv.PeerID] != nil {
		// Known peer: the referral's fresh advertisement renews it.
		pv.upsert(adv)
		return
	}
	if adv.PeerID.Equal(pv.self.PeerID) {
		return
	}
	if _, inflight := pv.probed[adv.PeerID]; inflight {
		return
	}
	pv.probed[adv.PeerID] = pv.env.Now()
	pv.ep.AddRoute(adv.PeerID, transport.Addr(adv.Address))
	pv.sendProbe(adv.PeerID)
}

// referralBatch returns how many advertisements to pack into one referral
// message: the ReferralsPerProbe floor, raised so that a view of l entries
// is fully re-mentioned about twice per EntryExpiry horizon. An entry
// survives only while something renews it within EntryExpiry; each of the
// two steady-state neighbour probes per round pulls one batch back, so the
// view cycles through the cursor at ~2·batch entries per Interval and the
// batch must be ≥ l·Interval/(2·(EntryExpiry/2)) = l·Interval/EntryExpiry
// per probe to outpace expiry — doubled for slack against probe/update
// randomization and lost messages. At the paper defaults this stays at the
// floor (2) until l exceeds 40 and reaches 50 at l=999 — still one message.
func (pv *PeerView) referralBatch() int {
	want := pv.cfg.ReferralsPerProbe
	l := len(pv.entries)
	need := int((2*time.Duration(l)*pv.cfg.Interval + pv.cfg.EntryExpiry - 1) / pv.cfg.EntryExpiry)
	if need > want {
		want = need
	}
	if want > l {
		want = l
	}
	return want
}

// sendReferrals answers a probe with one referral message carrying a batch
// of view advertisements (excluding the prober). Entries are drawn from a
// rotating no-replacement cursor over the ID-ordered view, so successive
// probes hand out the whole view in deterministic rotation. The pre-PR 10
// behaviour — i.i.d. random draws, fixed at ReferralsPerProbe — hits the
// coupon-collector bound at large r (240 rounds × ~4 draws over 999
// identities mention ~62% of them) and renews entries too rarely to beat
// EntryExpiry, which is exactly the ~605/999 plateau PERFORMANCE.md § PR 8
// recorded. Inserts and removals shift the cursor's anchor by at most one
// entry per change; the rotation stays complete.
func (pv *PeerView) sendReferrals(to ids.ID) {
	n := len(pv.entries)
	if n == 0 {
		return
	}
	want := pv.referralBatch()
	m := message.New()
	m.AddString(ns, elemType, typeReferral)
	added := 0
	for i := 0; i < n && added < want; i++ {
		if pv.refCursor >= n {
			pv.refCursor = 0
		}
		en := pv.entries[pv.refCursor]
		pv.refCursor++
		if en.adv.PeerID.Equal(to) {
			continue
		}
		if data, err := advertisement.EncodeXML(en.adv); err == nil {
			m.Add(ns, elemAdv, data)
			added++
		}
	}
	if added == 0 {
		return
	}
	_ = pv.ep.Send(to, ServiceName, m)
}
