// Package peerview implements the JXTA peerview protocol (§3.2 of the
// paper), the sub-protocol of the rendezvous protocol by which rendezvous
// peers organize themselves into a loosely-consistent, ID-ordered membership
// view. The local peerview drives both message routing across the rendezvous
// network and the LC-DHT replica mapping, so its convergence behaviour is
// exactly what the paper's Figure 3 and Figure 4 (left) measure.
//
// The periodic algorithm is the paper's Algorithm 1, with the same tunables
// and defaults:
//
//	PEERVIEW_INTERVAL = 30 s   (Config.Interval)
//	PVE_EXPIRATION    = 20 min (Config.EntryExpiry)
//	HAPPY_SIZE        = 4      (Config.HappySize)
//
// Every iteration the peer (1) removes expired entries, (2) probes its
// upper and lower neighbours in the ID order — or, when the view is happy,
// replaces one probe in three with a one-way update of its own entry — and
// (3) probes its seed rendezvous while the view is below HAPPY_SIZE. A probe
// carries the sender's rendezvous advertisement; the receiver answers with
// its own advertisement and, in a separate message, a referral: the
// advertisement of a randomly chosen third rendezvous. A referral for an
// unknown peer is not inserted directly — the peer probes the referred
// rendezvous first and inserts it when it answers (§3.2).
package peerview

import (
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/transport"
)

// ServiceName is the endpoint service the peerview protocol listens on.
const ServiceName = "rdv.peerview"

// Message element names, namespace "pv".
const (
	ns       = "pv"
	elemType = "Type"
	elemAdv  = "RdvAdv"

	typeProbe    = "probe"
	typeResponse = "response"
	typeReferral = "referral"
	typeUpdate   = "update"
)

// Config carries the protocol tunables. The zero value is replaced by the
// paper's defaults.
type Config struct {
	// Interval is PEERVIEW_INTERVAL, the pause between loop iterations.
	Interval time.Duration
	// EntryExpiry is PVE_EXPIRATION, the lifetime of an un-refreshed
	// peerview entry. Set very large (e.g. 365 days) to reproduce the
	// paper's "tuned" configuration of Figure 4 (left).
	EntryExpiry time.Duration
	// HappySize is HAPPY_SIZE, the minimum view size below which the peer
	// probes aggressively (neighbours every round, plus seeds).
	HappySize int
	// ReferralsPerProbe is how many referral advertisements a rendezvous
	// returns for each probe. JXTA-C returns one referral message per
	// probe; the message may carry several advertisements. This is the
	// gossip fan-out that sets the steady-state view size at large r.
	ReferralsPerProbe int
	// ProbeTimeoutRounds enables active failure detection: a view member
	// that was probed this many consecutive iterations without any message
	// coming back is evicted immediately, instead of lingering until
	// EntryExpiry. Zero (the default) disables the mechanism, preserving
	// the paper's loose-consistency behaviour; self-healing deployments
	// enable it so a crashed rendezvous disappears from neighbouring views
	// within a few PEERVIEW_INTERVALs and walks route around it.
	ProbeTimeoutRounds int
}

// DefaultConfig returns the paper's default tunables.
func DefaultConfig() Config {
	return Config{
		Interval:          30 * time.Second,
		EntryExpiry:       20 * time.Minute,
		HappySize:         4,
		ReferralsPerProbe: 2,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.EntryExpiry <= 0 {
		c.EntryExpiry = d.EntryExpiry
	}
	if c.HappySize <= 0 {
		c.HappySize = d.HappySize
	}
	if c.ReferralsPerProbe <= 0 {
		c.ReferralsPerProbe = d.ReferralsPerProbe
	}
	return c
}

// Seed identifies an initial rendezvous contact.
type Seed struct {
	ID   ids.ID
	Addr transport.Addr
}

// EventKind classifies peerview membership events (Figure 3 right).
type EventKind int

// Membership event kinds.
const (
	EventAdd EventKind = iota
	EventRemove
)

// String names the event kind.
func (k EventKind) String() string {
	if k == EventAdd {
		return "add"
	}
	return "remove"
}

// Listener observes membership events as they happen.
type Listener func(kind EventKind, peer ids.ID, at time.Duration)

// entry is one peerview slot: the advertisement plus its last refresh time.
type entry struct {
	adv     *advertisement.Rdv
	renewed time.Duration
}

// PeerView runs the protocol for one rendezvous peer.
type PeerView struct {
	env   env.Env
	ep    *endpoint.Endpoint
	self  *advertisement.Rdv
	cfg   Config
	seeds []Seed

	// entries is the local peerview, sorted by peer ID, excluding self
	// (the paper's measurements exclude the local peer, footnote 2).
	entries  []*entry
	byID     map[ids.ID]*entry
	ticker   *env.Ticker
	boot     env.Timer // the immediate first iteration armed by Start
	stopped  bool      // explicitly stopped: ignore inbound traffic
	listener Listener

	// probed tracks outstanding probes triggered by referrals, so one
	// referral storm cannot launch duplicate probes within an interval.
	probed map[ids.ID]time.Duration

	// missed counts consecutive unanswered neighbour probes per view member
	// (ProbeTimeoutRounds failure detection; unused when disabled).
	missed map[ids.ID]int
	// sentinelIdx round-robins one extra probe per iteration over the
	// non-neighbour view members, so failure detection covers the whole
	// view (neighbour probes alone only watch the two adjacent IDs).
	sentinelIdx int

	// Rounds counts loop iterations (diagnostics).
	Rounds int
}

// New builds a peerview for the rendezvous peer described by self. Start
// must be called to begin the periodic algorithm.
func New(e env.Env, ep *endpoint.Endpoint, self *advertisement.Rdv, cfg Config, seeds []Seed) *PeerView {
	pv := &PeerView{
		env:    e,
		ep:     ep,
		self:   self,
		cfg:    cfg.withDefaults(),
		seeds:  seeds,
		byID:   make(map[ids.ID]*entry),
		probed: make(map[ids.ID]time.Duration),
		missed: make(map[ids.ID]int),
	}
	ep.Register(ServiceName, pv.receive)
	return pv
}

// Start begins the periodic algorithm. The first iteration runs immediately
// (bootstrap probing of seeds), subsequent ones every Interval.
func (pv *PeerView) Start() {
	if pv.ticker != nil {
		return
	}
	pv.stopped = false
	pv.boot = pv.env.After(0, pv.iterate)
	pv.ticker = env.NewTicker(pv.env, pv.cfg.Interval, pv.iterate)
}

// Stop halts the periodic algorithm ("until rendezvous service is stopped").
// The accumulated view is retained — a later Start resumes gossiping from
// it; Restart paths wanting a cold rejoin call Reset first.
func (pv *PeerView) Stop() {
	pv.stopped = true
	if pv.ticker != nil {
		pv.ticker.Stop()
		pv.ticker = nil
	}
	if pv.boot != nil {
		pv.boot.Cancel()
		pv.boot = nil
	}
}

// Reset discards the accumulated view and probe-dedup state, as a freshly
// booted rendezvous process would start: the next Start rebuilds the view
// from the seeds. No membership events are emitted for the dropped entries
// (the process observing them is the one restarting).
func (pv *PeerView) Reset() {
	pv.entries = nil
	pv.byID = make(map[ids.ID]*entry)
	pv.probed = make(map[ids.ID]time.Duration)
	pv.missed = make(map[ids.ID]int)
}

// AddSeed appends a bootstrap seed at runtime (live joins).
func (pv *PeerView) AddSeed(seed Seed) { pv.seeds = append(pv.seeds, seed) }

// SetListener installs the membership event observer.
func (pv *PeerView) SetListener(l Listener) { pv.listener = l }

// Size returns l, the local peerview size excluding the local peer.
func (pv *PeerView) Size() int { return len(pv.entries) }

// Contains reports whether the peer is currently in the view.
func (pv *PeerView) Contains(id ids.ID) bool {
	_, ok := pv.byID[id]
	return ok
}

// View returns the ordered peerview including the local peer — the list the
// LC-DHT replica function indexes into (§3.3 computes positions on the full
// ordered list).
func (pv *PeerView) View() []ids.ID {
	out := make([]ids.ID, 0, len(pv.entries)+1)
	inserted := false
	for _, en := range pv.entries {
		if !inserted && pv.self.PeerID.Less(en.adv.PeerID) {
			out = append(out, pv.self.PeerID)
			inserted = true
		}
		out = append(out, en.adv.PeerID)
	}
	if !inserted {
		out = append(out, pv.self.PeerID)
	}
	return out
}

// Members returns the current view entries as seed records (ID + address),
// in ascending ID order, excluding the local peer. This is the "alternate
// rendezvous" list a self-healing rendezvous shares with its lease clients,
// and the seed set a promoted edge re-seeds its own peerview from.
func (pv *PeerView) Members() []Seed {
	out := make([]Seed, 0, len(pv.entries))
	for _, en := range pv.entries {
		out = append(out, Seed{ID: en.adv.PeerID, Addr: transport.Addr(en.adv.Address)})
	}
	return out
}

// Neighbors returns the current lower_rdv and upper_rdv: the entries whose
// IDs immediately precede and follow the local peer ID in the sorted view.
// Either may be Nil when the view is empty on that side (peers at the ends
// of the sorted list have only one neighbour to probe).
func (pv *PeerView) Neighbors() (lower, upper ids.ID) {
	for _, en := range pv.entries {
		if en.adv.PeerID.Less(pv.self.PeerID) {
			lower = en.adv.PeerID
		} else {
			return lower, en.adv.PeerID
		}
	}
	return lower, ids.Nil
}

// iterate is one pass of Algorithm 1.
func (pv *PeerView) iterate() {
	pv.Rounds++
	pv.expireSweep()
	pv.probeTimeoutSweep()

	l := pv.Size()
	lower, upper := pv.Neighbors()
	for _, rdv := range [2]ids.ID{upper, lower} {
		if rdv.IsNil() {
			continue
		}
		if l < pv.cfg.HappySize {
			pv.probeNeighbor(rdv)
		} else if pv.env.Rand().Intn(3) == 0 {
			pv.sendUpdate(rdv)
		} else {
			pv.probeNeighbor(rdv)
		}
	}
	// With failure detection on, also probe one non-neighbour member per
	// iteration (round-robin), so every entry is liveness-checked within l
	// intervals — neighbour probes alone only watch the adjacent IDs.
	if pv.cfg.ProbeTimeoutRounds > 0 && len(pv.entries) > 0 {
		en := pv.entries[pv.sentinelIdx%len(pv.entries)]
		pv.sentinelIdx++
		if id := en.adv.PeerID; !id.Equal(lower) && !id.Equal(upper) {
			pv.probeNeighbor(id)
		}
	}
	if l < pv.cfg.HappySize {
		for _, seed := range pv.seeds {
			if seed.ID.Equal(pv.self.PeerID) {
				continue
			}
			pv.ep.AddRoute(seed.ID, seed.Addr)
			pv.sendProbe(seed.ID)
		}
	}
	// Garbage-collect the referral-probe dedup set.
	cutoff := pv.env.Now() - pv.cfg.Interval
	for id, at := range pv.probed {
		if at < cutoff {
			delete(pv.probed, id)
		}
	}
}

// probeNeighbor probes a view neighbour, counting the outstanding probe for
// failure detection when ProbeTimeoutRounds is enabled. The counter is reset
// by any inbound message from that peer (receive/upsert).
func (pv *PeerView) probeNeighbor(rdv ids.ID) {
	if pv.cfg.ProbeTimeoutRounds > 0 {
		if _, member := pv.byID[rdv]; member {
			pv.missed[rdv]++
		}
	}
	pv.sendProbe(rdv)
}

// probeTimeoutSweep evicts view members whose last ProbeTimeoutRounds
// neighbour probes all went unanswered — the active failure-detection path a
// self-healing overlay runs so dead rendezvous leave the view in a few
// intervals rather than a PVE_EXPIRATION. Disabled (no-op) at the default
// configuration.
func (pv *PeerView) probeTimeoutSweep() {
	if pv.cfg.ProbeTimeoutRounds <= 0 {
		return
	}
	kept := pv.entries[:0]
	for _, en := range pv.entries {
		id := en.adv.PeerID
		if pv.missed[id] >= pv.cfg.ProbeTimeoutRounds {
			delete(pv.byID, id)
			delete(pv.missed, id)
			pv.notify(EventRemove, id)
			continue
		}
		kept = append(kept, en)
	}
	pv.entries = kept
	// Drop counters for peers no longer in the view (neighbour rotation).
	for id := range pv.missed {
		if _, member := pv.byID[id]; !member {
			delete(pv.missed, id)
		}
	}
}

// expireSweep removes entries older than EntryExpiry (Algorithm 1, line 3).
func (pv *PeerView) expireSweep() {
	now := pv.env.Now()
	kept := pv.entries[:0]
	for _, en := range pv.entries {
		if now-en.renewed > pv.cfg.EntryExpiry {
			delete(pv.byID, en.adv.PeerID)
			pv.notify(EventRemove, en.adv.PeerID)
			continue
		}
		kept = append(kept, en)
	}
	pv.entries = kept
}

func (pv *PeerView) notify(kind EventKind, peer ids.ID) {
	if pv.listener != nil {
		pv.listener(kind, peer, pv.env.Now())
	}
}

// upsert inserts or refreshes an entry from a received advertisement,
// keeping the slice sorted. It reports whether the entry was new.
func (pv *PeerView) upsert(adv *advertisement.Rdv) bool {
	if adv.PeerID.Equal(pv.self.PeerID) {
		return false
	}
	pv.ep.AddRoute(adv.PeerID, transport.Addr(adv.Address))
	if en, ok := pv.byID[adv.PeerID]; ok {
		en.adv = adv
		en.renewed = pv.env.Now()
		return false
	}
	en := &entry{adv: adv, renewed: pv.env.Now()}
	pv.byID[adv.PeerID] = en
	// Binary insertion keeping ID order.
	lo, hi := 0, len(pv.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if pv.entries[mid].adv.PeerID.Less(adv.PeerID) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pv.entries = append(pv.entries, nil)
	copy(pv.entries[lo+1:], pv.entries[lo:])
	pv.entries[lo] = en
	pv.notify(EventAdd, adv.PeerID)
	return true
}

// send transmits a typed peerview message carrying the given advertisement.
func (pv *PeerView) send(to ids.ID, msgType string, adv *advertisement.Rdv) {
	m := advertisementMessage(msgType, adv)
	if m == nil {
		return
	}
	_ = pv.ep.Send(to, ServiceName, m) // unreachable peers age out naturally
}

func advertisementMessage(msgType string, adv *advertisement.Rdv) *message.Message {
	data, err := advertisement.EncodeXML(adv)
	if err != nil {
		return nil
	}
	m := message.New()
	m.AddString(ns, elemType, msgType)
	m.Add(ns, elemAdv, data)
	return m
}

func (pv *PeerView) sendProbe(to ids.ID)  { pv.send(to, typeProbe, pv.self) }
func (pv *PeerView) sendUpdate(to ids.ID) { pv.send(to, typeUpdate, pv.self) }

// receive handles inbound peerview messages. An explicitly stopped
// peerview ignores them: answering probes would let neighbours refresh the
// stopped peer in their views forever, and probing referrals would send
// from a peer that is supposed to be gone. (A not-yet-started peerview
// still learns — unit harnesses drive the protocol without the loop.)
func (pv *PeerView) receive(src ids.ID, m *message.Message) {
	if pv.stopped {
		return
	}
	// Any message from the peer itself proves liveness. Referrals renew a
	// third party's *entry* below but must not reset its missed-probe
	// counter — a stale advertisement relayed by a neighbour is not a sign
	// of life.
	delete(pv.missed, src)
	msgType := m.GetString(ns, elemType)
	data, ok := m.Get(ns, elemAdv)
	if !ok {
		return
	}
	advAny, err := advertisement.DecodeXML(data)
	if err != nil {
		return
	}
	adv, ok := advAny.(*advertisement.Rdv)
	if !ok {
		return
	}

	switch msgType {
	case typeProbe:
		// The probe carries the sender's advertisement: learn/refresh it,
		// then answer with our own advertisement plus a separate referral
		// message naming randomly chosen other rendezvous.
		pv.upsert(adv)
		pv.send(src, typeResponse, pv.self)
		pv.sendReferrals(src)
	case typeResponse:
		pv.upsert(adv)
	case typeUpdate:
		pv.upsert(adv)
	case typeReferral:
		if pv.byID[adv.PeerID] != nil {
			// Known peer: the referral's fresh advertisement renews it.
			pv.upsert(adv)
			return
		}
		if adv.PeerID.Equal(pv.self.PeerID) {
			return
		}
		// Unknown peer: probe before adding (§3.2). Dedup within an
		// interval to avoid probe storms under referral bursts.
		if _, inflight := pv.probed[adv.PeerID]; inflight {
			return
		}
		pv.probed[adv.PeerID] = pv.env.Now()
		pv.ep.AddRoute(adv.PeerID, transport.Addr(adv.Address))
		pv.sendProbe(adv.PeerID)
	}
}

// sendReferrals picks up to ReferralsPerProbe random entries (excluding the
// prober and ourselves) and sends each as a referral message to the prober.
func (pv *PeerView) sendReferrals(to ids.ID) {
	n := len(pv.entries)
	if n == 0 {
		return
	}
	want := pv.cfg.ReferralsPerProbe
	if want > n {
		want = n
	}
	rng := pv.env.Rand()
	sent := 0
	// Sample without replacement via a bounded number of draws.
	seen := make(map[int]bool, want*2)
	for tries := 0; tries < 4*want && sent < want; tries++ {
		i := rng.Intn(n)
		if seen[i] {
			continue
		}
		seen[i] = true
		adv := pv.entries[i].adv
		if adv.PeerID.Equal(to) {
			continue
		}
		pv.send(to, typeReferral, adv)
		sent++
	}
}
