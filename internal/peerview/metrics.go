package peerview

import (
	"jxta/internal/metrics"
)

// pvMetrics holds the peerview's instruments.
type pvMetrics struct {
	probes        *metrics.Counter
	updates       *metrics.Counter
	adds          *metrics.Counter
	expiries      *metrics.Counter
	probeEvicts   *metrics.Counter
	mergesStarted *metrics.Counter
}

// Instrument (re-)registers the peerview's instruments on reg:
//
//	jxta_peerview_probes_sent_total, jxta_peerview_updates_sent_total,
//	jxta_peerview_adds_total, jxta_peerview_expiries_total,
//	jxta_peerview_probe_evictions_total, jxta_peerview_merges_started_total,
//	jxta_peerview_rounds_total
//
// plus the jxta_peerview_size gauge (view size excluding self, the
// paper's l).
func (pv *PeerView) Instrument(reg *metrics.Registry) {
	pv.m = &pvMetrics{
		probes:        reg.Counter("jxta_peerview_probes_sent_total", "Peerview probes sent (Algorithm 1)."),
		updates:       reg.Counter("jxta_peerview_updates_sent_total", "Peerview updates sent."),
		adds:          reg.Counter("jxta_peerview_adds_total", "Members added to the local view."),
		expiries:      reg.Counter("jxta_peerview_expiries_total", "Members dropped by entry expiry."),
		probeEvicts:   reg.Counter("jxta_peerview_probe_evictions_total", "Members evicted by probe-timeout failure detection."),
		mergesStarted: reg.Counter("jxta_peerview_merges_started_total", "Merge handshakes initiated."),
	}
	reg.CounterFunc("jxta_peerview_rounds_total", "Algorithm 1 loop iterations.",
		func() uint64 { return uint64(pv.Rounds) })
	reg.GaugeFunc("jxta_peerview_size", "Local peerview size excluding self (the paper's l).",
		func() float64 { return float64(len(pv.entries)) })
}
