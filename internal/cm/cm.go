// Package cm implements the advertisement cache manager: each peer's local
// store of advertisements with attribute indexing and lifetime-based
// eviction (JXTA-C's "CM" component). Edge peers keep their own published
// advertisements and cache discovered ones here; the discovery benchmark's
// per-query "flush of the local searcher cache" (§4.2) maps to Flush.
package cm

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/advstore"
	"jxta/internal/env"
	"jxta/internal/ids"
)

// Record is a stored advertisement plus bookkeeping. Adv is the canonical
// interned instance (advstore) shared with every other peer caching an
// equal advertisement — read-only by contract.
type Record struct {
	Adv     advertisement.Advertisement
	Expires time.Duration // absolute env time; 0 = never
	Local   bool          // published locally (survives Flush)
	// sh is the interning handle backing Adv; released on eviction. Nil
	// only on the zero Record.
	sh *advstore.Shared
}

// recordChunk sizes the arena slabs Records are allocated from.
const recordChunk = 64

// Cache is one peer's advertisement store. Not safe for concurrent use; the
// env callback serialization covers it.
type Cache struct {
	env  env.Env
	byID map[ids.ID]*Record
	// index maps "Type+Attr+Value" keys to the sorted advertisement IDs
	// carrying that field. A sorted slice instead of a set: most keys index
	// exactly one advertisement, and a one-element slice is an order of
	// magnitude smaller than a one-element map.
	index map[string][]ids.ID
	// numIndex maps "Type\x00Attr" keys to numeric postings for every
	// indexed field whose value parses as an integer, making range
	// queries sublinear. Attrs that never carried a numeric value have no
	// key here and fall back to the linear scan.
	numIndex map[string]*numPostings
	// slab/free are the Record arena: long-lived records are carved out of
	// chunked slabs (one allocation per recordChunk records instead of one
	// each) and recycled through the free list on eviction. A chunk is
	// garbage only once every record in it is free — acceptable for ~64-byte
	// records that mostly live as long as the cache.
	slab []Record
	free []*Record
	// store interns stored advertisements (shared with every other cache
	// of the same deployment).
	store *advstore.Store
}

// numEntry is one numeric index posting.
type numEntry struct {
	val int64
	id  ids.ID
}

// numPostings is one (type,attr) posting list. Inserts append and mark the
// list dirty so Put stays O(1); the list is sorted (and exact duplicates
// collapsed) lazily on the first range query after a burst of writes.
type numPostings struct {
	entries []numEntry
	dirty   bool
}

// numKey builds the numeric-index key for a (type, attr) pair.
func numKey(advType, attr string) string { return advType + "\x00" + attr }

// New builds an empty cache interning against the process-wide default
// store.
func New(e env.Env) *Cache { return NewWithStore(e, advstore.Default()) }

// NewWithStore builds an empty cache interning against the given store.
// Deployments pass one store per overlay so equal advertisements dedupe
// across the population without outliving it.
func NewWithStore(e env.Env, store *advstore.Store) *Cache {
	return &Cache{
		env:      e,
		byID:     make(map[ids.ID]*Record),
		index:    make(map[string][]ids.ID),
		numIndex: make(map[string]*numPostings),
		store:    store,
	}
}

// newRecord carves a record out of the arena, preferring recycled ones.
func (c *Cache) newRecord() *Record {
	if n := len(c.free); n > 0 {
		r := c.free[n-1]
		c.free = c.free[:n-1]
		return r
	}
	if len(c.slab) == cap(c.slab) {
		c.slab = make([]Record, 0, recordChunk)
	}
	c.slab = append(c.slab, Record{})
	return &c.slab[len(c.slab)-1]
}

// freeRecord releases a record's interning handle and recycles it.
func (c *Cache) freeRecord(rec *Record) {
	if rec.sh != nil {
		rec.sh.Release()
	}
	*rec = Record{}
	c.free = append(c.free, rec)
}

// Len returns the number of stored advertisements.
func (c *Cache) Len() int { return len(c.byID) }

// IndexSize returns the number of index entries, the quantity that drives
// the simulated per-query scan cost on loaded rendezvous peers.
func (c *Cache) IndexSize() int {
	n := 0
	for _, lst := range c.index {
		n += len(lst)
	}
	return n
}

// Put stores or replaces an advertisement. lifetime bounds its validity
// (zero means no expiry); local marks advertisements published by this peer.
// The advertisement is interned: the stored instance may be the canonical
// one another peer published first, so callers must not mutate adv after
// publishing it.
func (c *Cache) Put(adv advertisement.Advertisement, lifetime time.Duration, local bool) {
	c.thaw()
	sh := c.store.Intern(adv)
	adv = sh.Adv()
	id := adv.ID()
	var expires time.Duration
	if lifetime > 0 {
		expires = c.env.Now() + lifetime
	}
	rec, existed := c.byID[id]
	if existed {
		c.unindex(rec.Adv)
		rec.sh.Release()
	} else {
		rec = c.newRecord()
		c.byID[id] = rec
	}
	rec.Adv, rec.Expires, rec.Local, rec.sh = adv, expires, local, sh
	for _, f := range adv.IndexFields() {
		key := f.Key(adv.Type())
		lst := c.index[key]
		i := sort.Search(len(lst), func(i int) bool { return !lst[i].Less(id) })
		if i == len(lst) || lst[i] != id {
			lst = append(lst, ids.ID{})
			copy(lst[i+1:], lst[i:])
			lst[i] = id
			c.index[key] = lst
		}
		if v, err := strconv.ParseInt(f.Value, 10, 64); err == nil {
			c.numInsert(numKey(adv.Type(), f.Attr), numEntry{val: v, id: id})
		}
	}
}

func (c *Cache) unindex(adv advertisement.Advertisement) {
	id := adv.ID()
	for _, f := range adv.IndexFields() {
		key := f.Key(adv.Type())
		if lst, ok := c.index[key]; ok {
			i := sort.Search(len(lst), func(i int) bool { return !lst[i].Less(id) })
			if i < len(lst) && lst[i] == id {
				lst = append(lst[:i], lst[i+1:]...)
				if len(lst) == 0 {
					delete(c.index, key)
				} else {
					c.index[key] = lst
				}
			}
		}
		if v, err := strconv.ParseInt(f.Value, 10, 64); err == nil {
			c.numRemove(numKey(adv.Type(), f.Attr), numEntry{val: v, id: id})
		}
	}
}

// numLess orders postings by (value, id) — a total order, so binary search
// finds exact posting positions.
func numLess(a, b numEntry) bool {
	if a.val != b.val {
		return a.val < b.val
	}
	return a.id.Less(b.id)
}

// numInsert appends a posting in O(1); sorting is deferred to the next
// range query.
func (c *Cache) numInsert(key string, e numEntry) {
	p, ok := c.numIndex[key]
	if !ok {
		p = &numPostings{}
		c.numIndex[key] = p
	}
	p.entries = append(p.entries, e)
	p.dirty = true
}

// numRemove deletes one occurrence of a posting if present.
func (c *Cache) numRemove(key string, e numEntry) {
	p, ok := c.numIndex[key]
	if !ok {
		return
	}
	if p.dirty {
		for i, cur := range p.entries {
			if cur == e {
				p.entries = append(p.entries[:i], p.entries[i+1:]...)
				break
			}
		}
	} else {
		i := sort.Search(len(p.entries), func(i int) bool { return !numLess(p.entries[i], e) })
		if i >= len(p.entries) || p.entries[i] != e {
			return
		}
		p.entries = append(p.entries[:i], p.entries[i+1:]...)
	}
	if len(p.entries) == 0 {
		delete(c.numIndex, key)
	}
}

// ensureSorted sorts a dirty posting list by (value, id) and collapses
// exact duplicate postings (an adv listing one attr/value pair twice).
func (p *numPostings) ensureSorted() {
	if !p.dirty {
		return
	}
	sort.Slice(p.entries, func(i, j int) bool { return numLess(p.entries[i], p.entries[j]) })
	out := p.entries[:0]
	for i, e := range p.entries {
		if i > 0 && e == out[len(out)-1] {
			continue
		}
		out = append(out, e)
	}
	p.entries = out
	p.dirty = false
}

// Get returns the advertisement with the given ID if present and fresh.
func (c *Cache) Get(id ids.ID) (advertisement.Advertisement, bool) {
	rec, ok := c.byID[id]
	if !ok || c.expired(rec) {
		return nil, false
	}
	return rec.Adv, true
}

// Remove deletes an advertisement.
func (c *Cache) Remove(id ids.ID) {
	if rec, ok := c.byID[id]; ok {
		c.unindex(rec.Adv)
		delete(c.byID, id)
		c.freeRecord(rec)
	}
}

func (c *Cache) expired(rec *Record) bool {
	return rec.Expires > 0 && rec.Expires <= c.env.Now()
}

// Search returns fresh advertisements of advType whose attr matches value,
// ordered by advertisement ID. A trailing '*' in value performs a prefix
// match (the simple wildcard JXTA discovery supports); exact matches use
// the index directly. Matches come out of map-backed index sets, so the
// sort is what makes multi-publisher discovery responses deterministic.
func (c *Cache) Search(advType, attr, value string) []advertisement.Advertisement {
	var out []advertisement.Advertisement
	if strings.HasSuffix(value, "*") {
		prefix := advType + attr + strings.TrimSuffix(value, "*")
		for key, lst := range c.index {
			if !strings.HasPrefix(key, prefix) {
				continue
			}
			out = c.collect(out, advType, lst)
		}
		return sortAdvs(out)
	}
	key := advertisement.IndexField{Attr: attr, Value: value}.Key(advType)
	if lst, ok := c.index[key]; ok {
		out = c.collect(out, advType, lst)
	}
	return sortAdvs(out)
}

// sortAdvs orders advertisements by ID in place and returns the slice.
func sortAdvs(advs []advertisement.Advertisement) []advertisement.Advertisement {
	sort.Slice(advs, func(i, j int) bool { return advs[i].ID().Less(advs[j].ID()) })
	return advs
}

func (c *Cache) collect(out []advertisement.Advertisement, advType string, lst []ids.ID) []advertisement.Advertisement {
	for _, id := range lst {
		rec, ok := c.byID[id]
		if !ok || c.expired(rec) || rec.Adv.Type() != advType {
			continue
		}
		out = append(out, rec.Adv)
	}
	return out
}

// SearchRange returns fresh advertisements of advType whose attr parses as
// an integer within [lo, hi] — the complex-query extension. The per-
// (type,attr) sorted numeric index makes this O(log n + matches); attrs
// with no numeric postings fall back to the linear scan over the store
// (JXTA-C CM behavior). Results are ordered by (value, id), deterministic
// across runs.
func (c *Cache) SearchRange(advType, attr string, lo, hi int64) []advertisement.Advertisement {
	p, ok := c.numIndex[numKey(advType, attr)]
	if !ok {
		return c.searchRangeLinear(advType, attr, lo, hi)
	}
	p.ensureSorted()
	entries := p.entries
	var out []advertisement.Advertisement
	var seen map[ids.ID]struct{}
	i := sort.Search(len(entries), func(i int) bool { return entries[i].val >= lo })
	for ; i < len(entries) && entries[i].val <= hi; i++ {
		id := entries[i].id
		// An advertisement with several in-range values for the same attr
		// has one posting per value; report it once.
		if _, dup := seen[id]; dup {
			continue
		}
		rec, okRec := c.byID[id]
		if !okRec || c.expired(rec) || rec.Adv.Type() != advType {
			continue
		}
		if seen == nil {
			seen = make(map[ids.ID]struct{})
		}
		seen[id] = struct{}{}
		out = append(out, rec.Adv)
	}
	return out
}

// searchRangeLinear is the historical full-store scan, kept as the
// fallback path for unindexed attrs.
func (c *Cache) searchRangeLinear(advType, attr string, lo, hi int64) []advertisement.Advertisement {
	var out []advertisement.Advertisement
	for _, rec := range c.byID {
		if c.expired(rec) || rec.Adv.Type() != advType {
			continue
		}
		for _, f := range rec.Adv.IndexFields() {
			if f.Attr != attr {
				continue
			}
			v, err := strconv.ParseInt(f.Value, 10, 64)
			if err != nil {
				continue
			}
			if v >= lo && v <= hi {
				out = append(out, rec.Adv)
				break
			}
		}
	}
	return sortAdvs(out)
}

// LocalAdvertisements returns the fresh locally published advertisements
// (the set the SRDI pusher advertises to the rendezvous), ordered by ID so
// push batches are assembled identically across runs.
func (c *Cache) LocalAdvertisements() []advertisement.Advertisement {
	var out []advertisement.Advertisement
	for _, rec := range c.byID {
		if rec.Local && !c.expired(rec) {
			out = append(out, rec.Adv)
		}
	}
	return sortAdvs(out)
}

// Flush drops every non-local advertisement — the benchmark's cache flush
// between consecutive discovery queries, preventing cache speedup.
func (c *Cache) Flush() {
	for id, rec := range c.byID {
		if !rec.Local {
			c.unindex(rec.Adv)
			delete(c.byID, id)
			c.freeRecord(rec)
		}
	}
}

// GC removes expired advertisements and returns how many were evicted.
func (c *Cache) GC() int {
	evicted := 0
	for id, rec := range c.byID {
		if c.expired(rec) {
			c.unindex(rec.Adv)
			delete(c.byID, id)
			c.freeRecord(rec)
			evicted++
		}
	}
	return evicted
}
