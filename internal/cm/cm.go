// Package cm implements the advertisement cache manager: each peer's local
// store of advertisements with attribute indexing and lifetime-based
// eviction (JXTA-C's "CM" component). Edge peers keep their own published
// advertisements and cache discovered ones here; the discovery benchmark's
// per-query "flush of the local searcher cache" (§4.2) maps to Flush.
package cm

import (
	"strconv"
	"strings"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/env"
	"jxta/internal/ids"
)

// Record is a stored advertisement plus bookkeeping.
type Record struct {
	Adv     advertisement.Advertisement
	Expires time.Duration // absolute env time; 0 = never
	Local   bool          // published locally (survives Flush)
}

// Cache is one peer's advertisement store. Not safe for concurrent use; the
// env callback serialization covers it.
type Cache struct {
	env  env.Env
	byID map[ids.ID]*Record
	// index maps "Type+Attr+Value" keys to the advertisement IDs carrying
	// that field.
	index map[string]map[ids.ID]struct{}
}

// New builds an empty cache.
func New(e env.Env) *Cache {
	return &Cache{
		env:   e,
		byID:  make(map[ids.ID]*Record),
		index: make(map[string]map[ids.ID]struct{}),
	}
}

// Len returns the number of stored advertisements.
func (c *Cache) Len() int { return len(c.byID) }

// IndexSize returns the number of index entries, the quantity that drives
// the simulated per-query scan cost on loaded rendezvous peers.
func (c *Cache) IndexSize() int {
	n := 0
	for _, set := range c.index {
		n += len(set)
	}
	return n
}

// Put stores or replaces an advertisement. lifetime bounds its validity
// (zero means no expiry); local marks advertisements published by this peer.
func (c *Cache) Put(adv advertisement.Advertisement, lifetime time.Duration, local bool) {
	id := adv.ID()
	if old, ok := c.byID[id]; ok {
		c.unindex(old.Adv)
	}
	var expires time.Duration
	if lifetime > 0 {
		expires = c.env.Now() + lifetime
	}
	rec := &Record{Adv: adv, Expires: expires, Local: local}
	c.byID[id] = rec
	for _, f := range adv.IndexFields() {
		key := f.Key(adv.Type())
		set, ok := c.index[key]
		if !ok {
			set = make(map[ids.ID]struct{})
			c.index[key] = set
		}
		set[id] = struct{}{}
	}
}

func (c *Cache) unindex(adv advertisement.Advertisement) {
	id := adv.ID()
	for _, f := range adv.IndexFields() {
		key := f.Key(adv.Type())
		if set, ok := c.index[key]; ok {
			delete(set, id)
			if len(set) == 0 {
				delete(c.index, key)
			}
		}
	}
}

// Get returns the advertisement with the given ID if present and fresh.
func (c *Cache) Get(id ids.ID) (advertisement.Advertisement, bool) {
	rec, ok := c.byID[id]
	if !ok || c.expired(rec) {
		return nil, false
	}
	return rec.Adv, true
}

// Remove deletes an advertisement.
func (c *Cache) Remove(id ids.ID) {
	if rec, ok := c.byID[id]; ok {
		c.unindex(rec.Adv)
		delete(c.byID, id)
	}
}

func (c *Cache) expired(rec *Record) bool {
	return rec.Expires > 0 && rec.Expires <= c.env.Now()
}

// Search returns fresh advertisements of advType whose attr matches value.
// A trailing '*' in value performs a prefix match (the simple wildcard JXTA
// discovery supports); exact matches use the index directly.
func (c *Cache) Search(advType, attr, value string) []advertisement.Advertisement {
	var out []advertisement.Advertisement
	if strings.HasSuffix(value, "*") {
		prefix := advType + attr + strings.TrimSuffix(value, "*")
		for key, set := range c.index {
			if !strings.HasPrefix(key, prefix) {
				continue
			}
			out = c.collect(out, advType, set)
		}
		return out
	}
	key := advertisement.IndexField{Attr: attr, Value: value}.Key(advType)
	if set, ok := c.index[key]; ok {
		out = c.collect(out, advType, set)
	}
	return out
}

func (c *Cache) collect(out []advertisement.Advertisement, advType string, set map[ids.ID]struct{}) []advertisement.Advertisement {
	for id := range set {
		rec, ok := c.byID[id]
		if !ok || c.expired(rec) || rec.Adv.Type() != advType {
			continue
		}
		out = append(out, rec.Adv)
	}
	return out
}

// SearchRange returns fresh advertisements of advType whose attr parses as
// an integer within [lo, hi] — the complex-query extension (linear scan,
// like JXTA-C's CM).
func (c *Cache) SearchRange(advType, attr string, lo, hi int64) []advertisement.Advertisement {
	var out []advertisement.Advertisement
	for _, rec := range c.byID {
		if c.expired(rec) || rec.Adv.Type() != advType {
			continue
		}
		for _, f := range rec.Adv.IndexFields() {
			if f.Attr != attr {
				continue
			}
			v, err := strconv.ParseInt(f.Value, 10, 64)
			if err != nil {
				continue
			}
			if v >= lo && v <= hi {
				out = append(out, rec.Adv)
				break
			}
		}
	}
	return out
}

// LocalAdvertisements returns the fresh locally published advertisements
// (the set the SRDI pusher advertises to the rendezvous).
func (c *Cache) LocalAdvertisements() []advertisement.Advertisement {
	var out []advertisement.Advertisement
	for _, rec := range c.byID {
		if rec.Local && !c.expired(rec) {
			out = append(out, rec.Adv)
		}
	}
	return out
}

// Flush drops every non-local advertisement — the benchmark's cache flush
// between consecutive discovery queries, preventing cache speedup.
func (c *Cache) Flush() {
	for id, rec := range c.byID {
		if !rec.Local {
			c.unindex(rec.Adv)
			delete(c.byID, id)
		}
	}
}

// GC removes expired advertisements and returns how many were evicted.
func (c *Cache) GC() int {
	evicted := 0
	for id, rec := range c.byID {
		if c.expired(rec) {
			c.unindex(rec.Adv)
			delete(c.byID, id)
			evicted++
		}
	}
	return evicted
}
