package cm

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/ids"
	"jxta/internal/simnet"
)

func newCache() (*Cache, *simnet.Scheduler) {
	sched := simnet.NewScheduler(1)
	return New(sched.NewEnv("n")), sched
}

func res(name string, attrs ...advertisement.IndexField) *advertisement.Resource {
	return &advertisement.Resource{
		ResID: ids.FromName(ids.KindAdv, name),
		Name:  name,
		Attrs: attrs,
	}
}

func TestPutGet(t *testing.T) {
	c, _ := newCache()
	adv := res("node1")
	c.Put(adv, 0, true)
	got, ok := c.Get(adv.ID())
	if !ok || got.(*advertisement.Resource).Name != "node1" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Get(ids.FromName(ids.KindAdv, "ghost")); ok {
		t.Fatal("ghost advertisement found")
	}
}

func TestPutReplacesAndReindexes(t *testing.T) {
	c, _ := newCache()
	a1 := res("old")
	c.Put(a1, 0, true)
	// Same ID, new name.
	a2 := &advertisement.Resource{ResID: a1.ResID, Name: "new"}
	c.Put(a2, 0, true)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replace", c.Len())
	}
	if got := c.Search("Resource", "Name", "old"); len(got) != 0 {
		t.Fatal("stale index entry for replaced advertisement")
	}
	if got := c.Search("Resource", "Name", "new"); len(got) != 1 {
		t.Fatal("new index entry missing")
	}
}

func TestSearchExact(t *testing.T) {
	c, _ := newCache()
	c.Put(res("a", advertisement.IndexField{Attr: "Site", Value: "rennes"}), 0, true)
	c.Put(res("b", advertisement.IndexField{Attr: "Site", Value: "lyon"}), 0, true)
	got := c.Search("Resource", "Site", "rennes")
	if len(got) != 1 || got[0].(*advertisement.Resource).Name != "a" {
		t.Fatalf("Search = %v", got)
	}
	if len(c.Search("Resource", "Site", "mars")) != 0 {
		t.Fatal("bogus value matched")
	}
	if len(c.Search("Peer", "Site", "rennes")) != 0 {
		t.Fatal("wrong type matched")
	}
}

func TestSearchWildcardPrefix(t *testing.T) {
	c, _ := newCache()
	for i := 0; i < 5; i++ {
		c.Put(res(fmt.Sprintf("node%d", i)), 0, true)
	}
	c.Put(res("other"), 0, true)
	got := c.Search("Resource", "Name", "node*")
	if len(got) != 5 {
		t.Fatalf("wildcard matched %d, want 5", len(got))
	}
	if len(c.Search("Resource", "Name", "*")) != 6 {
		t.Fatal("bare * should match all")
	}
}

func TestExpiry(t *testing.T) {
	c, sched := newCache()
	adv := res("ephemeral")
	c.Put(adv, time.Minute, false)
	if _, ok := c.Get(adv.ID()); !ok {
		t.Fatal("fresh advertisement missing")
	}
	sched.Run(2 * time.Minute)
	if _, ok := c.Get(adv.ID()); ok {
		t.Fatal("expired advertisement still served")
	}
	if got := c.Search("Resource", "Name", "ephemeral"); len(got) != 0 {
		t.Fatal("expired advertisement matched a search")
	}
	// GC actually removes it.
	if n := c.GC(); n != 1 {
		t.Fatalf("GC evicted %d, want 1", n)
	}
	if c.Len() != 0 {
		t.Fatal("record survived GC")
	}
}

func TestZeroLifetimeNeverExpires(t *testing.T) {
	c, sched := newCache()
	adv := res("forever")
	c.Put(adv, 0, true)
	sched.Run(1000 * time.Hour)
	if _, ok := c.Get(adv.ID()); !ok {
		t.Fatal("zero-lifetime advertisement expired")
	}
	if c.GC() != 0 {
		t.Fatal("GC evicted an immortal record")
	}
}

func TestFlushKeepsLocal(t *testing.T) {
	c, _ := newCache()
	local := res("mine")
	remote := res("theirs")
	c.Put(local, 0, true)
	c.Put(remote, 0, false)
	c.Flush()
	if _, ok := c.Get(local.ID()); !ok {
		t.Fatal("Flush dropped a local advertisement")
	}
	if _, ok := c.Get(remote.ID()); ok {
		t.Fatal("Flush kept a remote advertisement")
	}
	if got := c.Search("Resource", "Name", "theirs"); len(got) != 0 {
		t.Fatal("flushed advertisement still indexed")
	}
}

func TestRemove(t *testing.T) {
	c, _ := newCache()
	adv := res("x")
	c.Put(adv, 0, true)
	c.Remove(adv.ID())
	if c.Len() != 0 || len(c.Search("Resource", "Name", "x")) != 0 {
		t.Fatal("Remove incomplete")
	}
	c.Remove(adv.ID()) // idempotent
}

func TestLocalAdvertisements(t *testing.T) {
	c, sched := newCache()
	c.Put(res("l1"), 0, true)
	c.Put(res("l2"), time.Minute, true)
	c.Put(res("r1"), 0, false)
	if got := c.LocalAdvertisements(); len(got) != 2 {
		t.Fatalf("LocalAdvertisements = %d, want 2", len(got))
	}
	sched.Run(2 * time.Minute) // l2 expires
	if got := c.LocalAdvertisements(); len(got) != 1 {
		t.Fatalf("after expiry LocalAdvertisements = %d, want 1", len(got))
	}
}

func TestIndexSize(t *testing.T) {
	c, _ := newCache()
	if c.IndexSize() != 0 {
		t.Fatal("empty cache has index entries")
	}
	// A Resource indexes Name plus each attr.
	c.Put(res("a", advertisement.IndexField{Attr: "CPU", Value: "x"}), 0, true)
	if c.IndexSize() != 2 {
		t.Fatalf("IndexSize = %d, want 2", c.IndexSize())
	}
	c.Remove(ids.FromName(ids.KindAdv, "a"))
	if c.IndexSize() != 0 {
		t.Fatal("index entries leaked after Remove")
	}
}

func TestPeerAdvertisementSearch(t *testing.T) {
	// The paper's Table 1 example: a peer advertisement with Name=Test is
	// findable under key inputs ("Peer", "Name", "Test").
	c, _ := newCache()
	p := &advertisement.Peer{PeerID: ids.FromName(ids.KindPeer, "t"), Name: "Test"}
	c.Put(p, 0, true)
	got := c.Search("Peer", "Name", "Test")
	if len(got) != 1 {
		t.Fatalf("peer advertisement not found: %v", got)
	}
}

// Property: after any sequence of Put/Remove, Search("Name", x) returns
// exactly the live advertisements named x.
func TestSearchConsistencyProperty(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c, _ := newCache()
		live := map[string]map[ids.ID]bool{}
		names := []string{"a", "b", "c"}
		for i := 0; i < int(ops); i++ {
			name := names[rng.Intn(len(names))]
			id := ids.FromName(ids.KindAdv, fmt.Sprintf("%s-%d", name, rng.Intn(5)))
			if rng.Intn(3) == 0 {
				c.Remove(id)
				if live[name] != nil {
					delete(live[name], id)
				}
			} else {
				adv := &advertisement.Resource{ResID: id, Name: name}
				// The same ID may previously be under another name.
				for _, m := range live {
					delete(m, id)
				}
				c.Put(adv, 0, true)
				if live[name] == nil {
					live[name] = map[ids.ID]bool{}
				}
				live[name][id] = true
			}
		}
		for _, name := range names {
			got := c.Search("Resource", "Name", name)
			if len(got) != len(live[name]) {
				return false
			}
			for _, adv := range got {
				if !live[name][adv.ID()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSearchExactLargeCache(b *testing.B) {
	sched := simnet.NewScheduler(1)
	c := New(sched.NewEnv("n"))
	for i := 0; i < 5000; i++ {
		c.Put(res(fmt.Sprintf("fake%d", i)), 0, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Search("Resource", "Name", "fake2500")
	}
}

func TestSearchRange(t *testing.T) {
	c, sched := newCache()
	for i, ram := range []string{"1024", "2048", "4096", "not-a-number"} {
		c.Put(res(fmt.Sprintf("n%d", i),
			advertisement.IndexField{Attr: "RAM", Value: ram}), 0, true)
	}
	if got := c.SearchRange("Resource", "RAM", 2000, 5000); len(got) != 2 {
		t.Fatalf("range [2000,5000] = %d advs, want 2", len(got))
	}
	if got := c.SearchRange("Resource", "RAM", 1024, 1024); len(got) != 1 {
		t.Fatal("inclusive point range wrong")
	}
	if got := c.SearchRange("Resource", "CPU", 0, 1<<40); len(got) != 0 {
		t.Fatal("wrong attribute matched")
	}
	if got := c.SearchRange("Peer", "RAM", 0, 1<<40); len(got) != 0 {
		t.Fatal("wrong type matched")
	}
	// Expired advertisements excluded.
	c.Put(res("tmp", advertisement.IndexField{Attr: "RAM", Value: "3000"}),
		time.Minute, false)
	sched.Run(2 * time.Minute)
	if got := c.SearchRange("Resource", "RAM", 2999, 3001); len(got) != 0 {
		t.Fatal("expired advertisement matched range")
	}
}

func TestSearchRangeIndexMaintenance(t *testing.T) {
	c, _ := newCache()
	adv := res("a", advertisement.IndexField{Attr: "RAM", Value: "1000"})
	c.Put(adv, 0, true)
	if got := c.SearchRange("Resource", "RAM", 0, 2000); len(got) != 1 {
		t.Fatal("indexed adv not found")
	}
	// Replacing the adv with a new value must reindex, not duplicate.
	c.Put(res("a", advertisement.IndexField{Attr: "RAM", Value: "3000"}), 0, true)
	if got := c.SearchRange("Resource", "RAM", 0, 2000); len(got) != 0 {
		t.Fatal("stale numeric posting survived replacement")
	}
	if got := c.SearchRange("Resource", "RAM", 2500, 3500); len(got) != 1 {
		t.Fatal("replacement value not indexed")
	}
	// Removal cleans the posting list.
	c.Remove(adv.ID())
	if got := c.SearchRange("Resource", "RAM", 0, 1<<40); len(got) != 0 {
		t.Fatal("removed adv still matched")
	}
	if len(c.numIndex) != 0 {
		t.Fatalf("numIndex not cleaned: %v", c.numIndex)
	}
}

func TestSearchRangeMultiValueAdvDeduped(t *testing.T) {
	c, _ := newCache()
	c.Put(res("multi",
		advertisement.IndexField{Attr: "RAM", Value: "1000"},
		advertisement.IndexField{Attr: "RAM", Value: "1500"}), 0, true)
	if got := c.SearchRange("Resource", "RAM", 0, 2000); len(got) != 1 {
		t.Fatalf("multi-value adv returned %d times, want 1", len(got))
	}
}

// TestSearchRangeLinearFallback covers the unindexed-attr path: an attr
// that never carried a numeric value has no posting list, and SearchRange
// must agree with the full-store scan (both empty here).
func TestSearchRangeLinearFallback(t *testing.T) {
	c, _ := newCache()
	c.Put(res("n", advertisement.IndexField{Attr: "Tag", Value: "fast"}), 0, true)
	if _, ok := c.numIndex[numKey("Resource", "Tag")]; ok {
		t.Fatal("non-numeric value got a numeric posting")
	}
	if got := c.SearchRange("Resource", "Tag", 0, 1<<40); got != nil {
		t.Fatalf("fallback returned %v", got)
	}
	if got := c.searchRangeLinear("Resource", "Tag", 0, 1<<40); got != nil {
		t.Fatalf("linear scan returned %v", got)
	}
}

// Property: the indexed SearchRange agrees with the linear scan on random
// stores and random ranges (up to ordering).
func TestSearchRangeMatchesLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, _ := newCache()
		attrs := []string{"RAM", "CPU", "Disk"}
		for i := 0; i < 30; i++ {
			var fields []advertisement.IndexField
			for _, a := range attrs {
				if rng.Intn(2) == 0 {
					fields = append(fields, advertisement.IndexField{
						Attr: a, Value: strconv.Itoa(rng.Intn(50))})
				}
			}
			c.Put(res(fmt.Sprintf("n%d", i), fields...), 0, true)
		}
		for trial := 0; trial < 10; trial++ {
			attr := attrs[rng.Intn(len(attrs))]
			lo := int64(rng.Intn(50))
			hi := lo + int64(rng.Intn(20))
			got := c.SearchRange("Resource", attr, lo, hi)
			want := c.searchRangeLinear("Resource", attr, lo, hi)
			if len(got) != len(want) {
				return false
			}
			seen := make(map[ids.ID]bool, len(want))
			for _, adv := range want {
				seen[adv.ID()] = true
			}
			for _, adv := range got {
				if !seen[adv.ID()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
