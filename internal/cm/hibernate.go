package cm

import (
	"jxta/internal/hibpool"
	"jxta/internal/ids"
)

// Edge hibernation (PR 9). A cache only freezes while empty (Quiescent),
// so freezing is purely structural: the three index map shells go back to
// free lists and the record arena is dropped. Every read path ranges or
// looks up the nil maps safely and correctly reports an empty cache, so
// only Put — the one mutation that can run on a frozen cache (an
// experiment driver publishing into a hibernated edge) — rehydrates.

var (
	cmByIDPool  hibpool.Maps[ids.ID, *Record]
	cmIndexPool hibpool.Maps[string, []ids.ID]
	cmNumPool   hibpool.Maps[string, *numPostings]
)

// Quiescent reports whether the cache can be frozen: nothing stored.
func (c *Cache) Quiescent() bool { return len(c.byID) == 0 }

// Freeze releases the empty cache's map shells and record arena. Caller
// must have checked Quiescent. Idempotent; the nil byID is the marker.
func (c *Cache) Freeze() {
	if c.byID == nil {
		return
	}
	cmByIDPool.Put(c.byID)
	cmIndexPool.Put(c.index)
	cmNumPool.Put(c.numIndex)
	c.byID = nil
	c.index = nil
	c.numIndex = nil
	// The arena holds only free records when the cache is empty; dropping
	// both slab and free list releases the chunks. newRecord rebuilds from
	// the same nil state it starts from.
	c.slab = nil
	c.free = nil
}

// thaw rehydrates a frozen cache; a single nil check when live.
func (c *Cache) thaw() {
	if c.byID != nil {
		return
	}
	c.byID = cmByIDPool.Get()
	c.index = cmIndexPool.Get()
	c.numIndex = cmNumPool.Get()
}

// Resident reports whether the cache's maps are materialized (tests).
func (c *Cache) Resident() bool { return c.byID != nil }
