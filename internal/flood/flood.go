// Package flood implements the JXTA-1.0-style flooding discovery baseline.
// Before the LC-DHT, JXTA rendezvous peers forwarded every discovery query
// to all rendezvous peers they knew (the strategy [13] in the paper compares
// against): query cost grows with the rendezvous population, which is
// exactly the contrast the LC-DHT's O(1) routing was introduced to fix.
//
// Nodes form a static connected random graph (degree k) over the simulated
// network; a query floods with a TTL and per-query deduplication; the first
// node holding the key answers the originator directly.
package flood

import (
	"fmt"
	"strconv"
	"time"

	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

// Message elements, namespace "flood".
const (
	ns         = "flood"
	elemKey    = "Key"
	elemTTL    = "TTL"
	elemReqID  = "Req"
	elemOrigin = "Origin"
	elemKind   = "Kind" // "query" | "found"
)

// Node is one flooding rendezvous.
type Node struct {
	net       *Network
	Index     int
	tr        *transport.Sim
	neighbors []int
	keys      map[string]bool
	seen      map[uint64]bool
	dead      bool
}

// Network is a deployed flooding overlay.
type Network struct {
	eng     simnet.Engine
	nodes   []*Node
	pending map[uint64]*query
	nextReq uint64
}

type query struct {
	cb    func(hops int, elapsed time.Duration)
	start time.Duration
	done  bool
}

// Build deploys n nodes in a connected random graph of degree ~k. Any
// simnet.Engine works (the serial Scheduler satisfies it).
func Build(eng simnet.Engine, net *transport.Network, n, k int) (*Network, error) {
	if n <= 0 || k <= 0 {
		return nil, fmt.Errorf("flood: n=%d k=%d", n, k)
	}
	fn := &Network{eng: eng, pending: make(map[uint64]*query)}
	sites := netmodel.SpreadSites(n)
	for i := 0; i < n; i++ {
		tr, err := net.Attach(fmt.Sprintf("flood%d", i), sites[i])
		if err != nil {
			return nil, err
		}
		node := &Node{net: fn, Index: i, tr: tr,
			keys: make(map[string]bool), seen: make(map[uint64]bool)}
		tr.SetHandler(node.receive)
		fn.nodes = append(fn.nodes, node)
	}
	// Ring edge for connectivity plus random chords up to degree k.
	rng := eng.NewEnv("flood-graph").Rand()
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		for _, x := range fn.nodes[a].neighbors {
			if x == b {
				return
			}
		}
		fn.nodes[a].neighbors = append(fn.nodes[a].neighbors, b)
		fn.nodes[b].neighbors = append(fn.nodes[b].neighbors, a)
	}
	for i := 0; i < n; i++ {
		addEdge(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		for len(fn.nodes[i].neighbors) < k {
			addEdge(i, rng.Intn(n))
		}
	}
	return fn, nil
}

// Nodes returns the members in deployment order.
func (f *Network) Nodes() []*Node { return f.nodes }

// Publish records a key at a node (flooding publishes locally only — that
// is its O(1)-publish / O(n)-query trade-off, inverted from the LC-DHT).
func (n *Node) Publish(key string) { n.keys[key] = true }

// Query floods a lookup for key from this node. cb fires on the first
// answer with the hop distance and latency. TTL bounds the flood radius.
func (f *Network) Query(from *Node, key string, ttl int, cb func(hops int, elapsed time.Duration)) {
	f.nextReq++
	req := f.nextReq
	f.pending[req] = &query{cb: cb, start: f.eng.Now()}
	from.handleQuery(key, req, ttl, 0, from.tr.Addr())
}

func (n *Node) handleQuery(key string, req uint64, ttl, hops int, origin transport.Addr) {
	if n.dead || n.seen[req] {
		return
	}
	n.seen[req] = true
	if len(n.seen) > 1<<16 {
		n.seen = make(map[uint64]bool)
	}
	if n.keys[key] {
		rsp := message.New()
		rsp.AddString(ns, elemKind, "found")
		rsp.AddString(ns, elemReqID, strconv.FormatUint(req, 10))
		rsp.AddString(ns, elemTTL, strconv.Itoa(hops))
		if origin == n.tr.Addr() {
			n.net.complete(req, hops)
		} else {
			_ = n.tr.Send(origin, rsp)
		}
		return
	}
	if ttl <= 0 {
		return
	}
	m := message.New()
	m.AddString(ns, elemKind, "query")
	m.AddString(ns, elemKey, key)
	m.AddString(ns, elemReqID, strconv.FormatUint(req, 10))
	m.AddString(ns, elemTTL, strconv.Itoa(ttl-1))
	m.AddString(ns, elemOrigin, string(origin))
	m.Add(ns, "Hops", []byte(strconv.Itoa(hops+1)))
	for _, nb := range n.neighbors {
		_ = n.tr.Send(n.net.nodes[nb].tr.Addr(), m)
	}
}

func (f *Network) complete(req uint64, hops int) {
	q, ok := f.pending[req]
	if !ok || q.done {
		return
	}
	q.done = true
	delete(f.pending, req)
	q.cb(hops, f.eng.Now()-q.start)
}

// Kill fail-stops the node: its transport detaches and it stops relaying.
// The flood graph is static, so queries route around the hole only as far
// as the surviving edges allow.
func (n *Node) Kill() {
	if n.dead {
		return
	}
	n.dead = true
	_ = n.tr.Close()
}

// Alive reports whether the node has not been killed.
func (n *Node) Alive() bool { return !n.dead }

func (n *Node) receive(_ transport.Addr, m *message.Message) {
	if n.dead {
		return
	}
	req, err := strconv.ParseUint(m.GetString(ns, elemReqID), 10, 64)
	if err != nil {
		return
	}
	switch m.GetString(ns, elemKind) {
	case "found":
		hops, err := strconv.Atoi(m.GetString(ns, elemTTL))
		if err != nil {
			return
		}
		n.net.complete(req, hops)
	case "query":
		ttl, err := strconv.Atoi(m.GetString(ns, elemTTL))
		if err != nil || ttl < 0 {
			return
		}
		hops, err := strconv.Atoi(m.GetString(ns, "Hops"))
		if err != nil {
			return
		}
		n.handleQuery(m.GetString(ns, elemKey), req, ttl, hops,
			transport.Addr(m.GetString(ns, elemOrigin)))
	}
}
