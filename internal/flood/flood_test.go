package flood

import (
	"testing"
	"time"

	"jxta/internal/netmodel"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

func build(t testing.TB, n, k int, seed int64) (*simnet.Scheduler, *transport.Network, *Network) {
	t.Helper()
	sched := simnet.NewScheduler(seed)
	net := transport.NewNetwork(sched, netmodel.Grid5000())
	fn, err := Build(sched, net, n, k)
	if err != nil {
		t.Fatal(err)
	}
	return sched, net, fn
}

func TestBuildErrors(t *testing.T) {
	sched := simnet.NewScheduler(1)
	net := transport.NewNetwork(sched, netmodel.Grid5000())
	if _, err := Build(sched, net, 0, 3); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Build(sched, net, 3, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestGraphConnectedWithDegreeK(t *testing.T) {
	_, _, fn := build(t, 40, 4, 2)
	for i, n := range fn.Nodes() {
		if len(n.neighbors) < 4 {
			t.Fatalf("node %d degree %d < 4", i, len(n.neighbors))
		}
	}
	// BFS connectivity.
	seen := map[int]bool{0: true}
	queue := []int{0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range fn.Nodes()[cur].neighbors {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(seen) != 40 {
		t.Fatalf("graph disconnected: reached %d of 40", len(seen))
	}
}

func TestQueryFindsPublishedKey(t *testing.T) {
	sched, _, fn := build(t, 30, 3, 3)
	nodes := fn.Nodes()
	nodes[17].Publish("PeerNameTest")
	done := false
	var hops int
	fn.Query(nodes[0], "PeerNameTest", 30, func(h int, d time.Duration) {
		done = true
		hops = h
		if d <= 0 {
			t.Error("latency not measured")
		}
	})
	sched.Run(time.Minute)
	if !done {
		t.Fatal("flood never found the key")
	}
	if hops <= 0 {
		t.Fatal("hops not counted")
	}
}

func TestLocalHitZeroHops(t *testing.T) {
	sched, _, fn := build(t, 10, 3, 4)
	n := fn.Nodes()[5]
	n.Publish("k")
	var hops = -1
	fn.Query(n, "k", 5, func(h int, _ time.Duration) { hops = h })
	sched.Run(time.Minute)
	if hops != 0 {
		t.Fatalf("local hit hops = %d", hops)
	}
}

func TestTTLBoundsFlood(t *testing.T) {
	// Publish far from the origin on a pure ring; TTL smaller than the
	// distance must fail.
	sched := simnet.NewScheduler(5)
	net := transport.NewNetwork(sched, netmodel.Grid5000())
	fn, err := Build(sched, net, 20, 2) // ring-ish, low degree
	if err != nil {
		t.Fatal(err)
	}
	fn.Nodes()[10].Publish("far")
	found := false
	fn.Query(fn.Nodes()[0], "far", 1, func(int, time.Duration) { found = true })
	sched.Run(time.Minute)
	if found {
		t.Fatal("TTL=1 flood reached distance > 1")
	}
}

func TestQueryCostGrowsWithN(t *testing.T) {
	// The baseline's point: flooding messages grow ~linearly with n.
	cost := map[int]uint64{}
	for _, n := range []int{20, 200} {
		sched, net, fn := build(t, n, 4, 6)
		fn.Nodes()[n-1].Publish("needle")
		before := net.Stats().Messages
		fn.Query(fn.Nodes()[0], "needle", n, func(int, time.Duration) {})
		sched.Run(time.Minute)
		cost[n] = net.Stats().Messages - before
	}
	if cost[200] < 5*cost[20] {
		t.Fatalf("flood cost not ~linear: %v", cost)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	sched, net, fn := build(t, 15, 14, 7) // near-complete graph
	fn.Nodes()[3].Publish("k")
	fn.Query(fn.Nodes()[0], "k", 15, func(int, time.Duration) {})
	sched.Run(time.Minute)
	// With dedup, each node forwards a query at most once: messages are
	// bounded by n*degree + 1 response.
	if msgs := net.Stats().Messages; msgs > 15*14+2 {
		t.Fatalf("dedup failed: %d messages", msgs)
	}
}

func TestMissingKeyNoCallback(t *testing.T) {
	sched, _, fn := build(t, 10, 3, 8)
	called := false
	fn.Query(fn.Nodes()[0], "absent", 10, func(int, time.Duration) { called = true })
	sched.Run(time.Minute)
	if called {
		t.Fatal("callback fired for missing key")
	}
}
