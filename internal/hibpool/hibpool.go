// Package hibpool provides tiny sync.Pool-backed free lists for the edge
// hibernation layer. A hibernating overlay constantly freeze-dries and
// rehydrates node services: maps are emptied and released on freeze and
// rebuilt on wake, and a compact "frozen record" is allocated per freeze.
// Because at most one node executes per shard at any instant, only a
// handful of each object is ever live at once — pooling turns millions of
// wake/freeze cycles into near-zero allocator traffic.
//
// The pools follow the pattern internal/message established for wire
// buffers: zero-value-usable package vars, Get-or-make, clear-on-return.
package hibpool

import "sync"

// Maps recycles map shells of one key/value shape. The zero value is ready
// to use. Get returns an empty map (pooled or freshly made); Put clears the
// map and returns its buckets to the pool, so a rehydrating node reuses the
// bucket array a previously-frozen node dropped.
type Maps[K comparable, V any] struct {
	p sync.Pool
}

// Get returns an empty map, reusing pooled buckets when available.
func (mp *Maps[K, V]) Get() map[K]V {
	if m, ok := mp.p.Get().(map[K]V); ok {
		return m
	}
	return make(map[K]V)
}

// Put empties m and returns it to the pool. Put(nil) is a no-op.
func (mp *Maps[K, V]) Put(m map[K]V) {
	if m == nil {
		return
	}
	clear(m)
	mp.p.Put(m)
}

// Records recycles pointer-to-struct frozen records. Reset, if set, runs on
// every Put so the record drops references (truncate packed slices in place,
// keeping capacity) before idling in the pool.
type Records[T any] struct {
	p     sync.Pool
	Reset func(*T)
}

// Get returns a recycled record or a fresh zero one.
func (r *Records[T]) Get() *T {
	if t, ok := r.p.Get().(*T); ok {
		return t
	}
	return new(T)
}

// Put returns rec to the pool, running Reset first when configured.
// Put(nil) is a no-op.
func (r *Records[T]) Put(rec *T) {
	if rec == nil {
		return
	}
	if r.Reset != nil {
		r.Reset(rec)
	}
	r.p.Put(rec)
}
