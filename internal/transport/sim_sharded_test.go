package transport

import (
	"testing"
	"time"

	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
)

// shardedPair builds a two-shard fabric with a on shard 0 (Rennes) and b on
// shard 1 (Sophia) over a jitter-free uniform model, so every cross-shard
// delivery takes exactly latency (+ transmission) and the lookahead window
// is latency−1ns.
func shardedPair(t *testing.T, latency time.Duration) (*simnet.ShardedScheduler, *Network, *Sim, *Sim) {
	t.Helper()
	model := netmodel.Uniform(latency)
	assign := make([]int, netmodel.NumSites)
	assign[netmodel.Sophia] = 1
	lookahead := model.ShardLookahead(assign)
	if lookahead <= 0 {
		t.Fatalf("no lookahead from uniform model: %v", lookahead)
	}
	ss := simnet.NewSharded(1, 2, lookahead)
	net, err := NewShardedNetwork(ss, model, assign)
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Attach("a", netmodel.Rennes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach("b", netmodel.Sophia)
	if err != nil {
		t.Fatal(err)
	}
	return ss, net, a, b
}

func TestCrossShardDelivery(t *testing.T) {
	const latency = time.Millisecond
	ss, net, a, b := shardedPair(t, latency)
	var gotFrom Addr
	var gotAt time.Duration
	b.SetHandler(func(from Addr, m *message.Message) {
		gotFrom = from
		gotAt = ss.Shard(1).Now()
	})
	if err := a.Send(b.Addr(), msgOf("x")); err != nil {
		t.Fatal(err)
	}
	ss.Run(time.Second)
	if gotFrom != a.Addr() {
		t.Fatalf("handler saw from=%q, want %q", gotFrom, a.Addr())
	}
	if gotAt < latency {
		t.Fatalf("delivered at %v, before the %v cross-shard latency", gotAt, latency)
	}
	if st := net.Stats(); st.Messages != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 1 message, 0 dropped", st)
	}
}

func TestCrossShardFIFOOrder(t *testing.T) {
	ss, _, a, b := shardedPair(t, time.Millisecond)
	var got []string
	b.SetHandler(func(_ Addr, m *message.Message) {
		got = append(got, m.GetString("t", "payload"))
	})
	for _, p := range []string{"1", "2", "3", "4"} {
		m := message.New().AddString("t", "payload", p)
		if err := a.Send(b.Addr(), m); err != nil {
			t.Fatal(err)
		}
	}
	ss.Run(time.Second)
	if len(got) != 4 {
		t.Fatalf("delivered %d messages, want 4", len(got))
	}
	for i, p := range []string{"1", "2", "3", "4"} {
		if got[i] != p {
			t.Fatalf("cross-shard FIFO violated: got %v", got)
		}
	}
}

func TestCrossShardCancelInFlightDelivery(t *testing.T) {
	// The receiver crashes (driver-side churn injection) while a
	// cross-shard delivery is in flight: the exchange-queue entry must
	// resolve to a drop on the destination shard, not a stale handler
	// call or a panic.
	const latency = 10 * time.Millisecond
	ss, net, a, b := shardedPair(t, latency)
	delivered := false
	b.SetHandler(func(Addr, *message.Message) { delivered = true })
	ss.After(latency/2, func() {
		if !net.Detach(b.Addr()) {
			t.Error("Detach found no endpoint")
		}
	})
	ss.Shard(0).At(0, func() {
		if err := a.Send(b.Addr(), msgOf("x")); err != nil {
			t.Error(err)
		}
	})
	ss.Run(time.Second)
	if delivered {
		t.Fatal("message delivered to a crashed peer")
	}
	if st := net.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestCrossShardReceiverClosesBeforeArrival(t *testing.T) {
	// Same as above but the receiver closes itself from its own shard's
	// context (graceful local close racing an in-flight frame).
	const latency = 10 * time.Millisecond
	ss, net, a, b := shardedPair(t, latency)
	delivered := false
	b.SetHandler(func(Addr, *message.Message) { delivered = true })
	ss.Shard(1).At(time.Millisecond, func() { b.Close() })
	ss.Shard(0).At(0, func() {
		if err := a.Send(b.Addr(), msgOf("x")); err != nil {
			t.Error(err)
		}
	})
	ss.Run(time.Second)
	if delivered {
		t.Fatal("message delivered to a closed endpoint")
	}
	if st := net.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestShardedSameShardDelivery(t *testing.T) {
	// Two endpoints on one shard use the plain serial fast path even
	// inside a sharded fabric.
	ss, net, a, _ := shardedPair(t, time.Millisecond)
	c, err := net.Attach("c", netmodel.Rennes) // same site, same shard as a
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	c.SetHandler(func(Addr, *message.Message) { delivered = true })
	if err := a.Send(c.Addr(), msgOf("x")); err != nil {
		t.Fatal(err)
	}
	ss.Run(time.Second)
	if !delivered {
		t.Fatal("same-shard delivery lost")
	}
}

// TestStatsConcurrentWithShardedRun is the -race regression for the
// mid-run Stats() snapshot: two shards ping-pong for a long virtual run
// while the driver-side goroutine scrapes Stats() the whole time (the
// live-metrics pattern). Before the per-shard counters became atomic this
// raced; now every snapshot must also be monotonic and the final sum exact.
func TestStatsConcurrentWithShardedRun(t *testing.T) {
	const latency = time.Millisecond
	ss, net, a, b := shardedPair(t, latency)
	sent := 1
	b.SetHandler(func(from Addr, m *message.Message) {
		if sent < 400 {
			sent++
			if err := b.Send(a.Addr(), msgOf("pong")); err != nil {
				t.Error(err)
			}
		}
	})
	a.SetHandler(func(from Addr, m *message.Message) {
		if sent < 400 {
			sent++
			if err := a.Send(b.Addr(), msgOf("ping")); err != nil {
				t.Error(err)
			}
		}
	})
	if err := a.Send(b.Addr(), msgOf("ping")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ss.Run(10 * time.Second)
	}()
	var last uint64
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		st := net.Stats()
		if st.Messages < last {
			t.Fatalf("Stats went backwards: %d after %d", st.Messages, last)
		}
		last = st.Messages
	}
	if st := net.Stats(); st.Messages != 400 || st.Dropped != 0 {
		t.Fatalf("final stats = %+v, want 400 messages, 0 dropped", st)
	}
}
