package transport

import (
	"fmt"
	"math/rand"
	"time"

	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
)

// Stats aggregates network-wide traffic counters. Experiments read it to
// verify the paper's message-complexity claims (LC-DHT publish ≤ 2 messages,
// consistent lookup ≤ 4).
type Stats struct {
	Messages uint64
	Bytes    uint64
	Dropped  uint64 // loss injection + sends to detached peers
}

// Network is the simulated Grid'5000 fabric: it owns the latency model, the
// attached endpoints and the delivery bookkeeping. All methods must be
// called from the simulation goroutine (the event loop), which is the only
// execution context in a simnet experiment.
type Network struct {
	sched *simnet.Scheduler
	model *netmodel.Model
	rng   *rand.Rand
	nodes map[Addr]*Sim
	stats Stats
	// OnSend, when non-nil, observes every accepted send. Used by
	// experiments to count per-exchange messages.
	OnSend func(from, to Addr, msg *message.Message)
	// siteCache remembers parsed sites of not-yet-attached destination
	// addresses, so boot races don't re-parse the sim:// string per send.
	siteCache map[Addr]netmodel.Site
	// freeDeliveries pools delivery records; together with the scheduler's
	// payload event form it makes the per-message send path closure-free.
	freeDeliveries []*delivery
	// arriveFn/handoffFn are the two delivery phases as method values,
	// created once so scheduling them allocates nothing per send.
	arriveFn  func(any)
	handoffFn func(any)
}

// delivery is one in-flight message's state, pooled across sends.
type delivery struct {
	from Addr
	to   Addr
	rcv  *Sim // resolved at arrival, checked again at handoff
	msg  *message.Message
}

// reserved DeriveRand index for the network's own jitter/loss stream, far
// above any node index.
const networkRandIndex = 1 << 40

// NewNetwork builds a fabric over the given scheduler and latency model.
func NewNetwork(sched *simnet.Scheduler, model *netmodel.Model) *Network {
	n := &Network{
		sched:     sched,
		model:     model,
		rng:       sched.DeriveRand(networkRandIndex),
		nodes:     make(map[Addr]*Sim),
		siteCache: make(map[Addr]netmodel.Site),
	}
	n.arriveFn = n.arrive
	n.handoffFn = n.handoff
	return n
}

// getDelivery takes a record from the pool (or allocates the pool's next).
func (n *Network) getDelivery() *delivery {
	if k := len(n.freeDeliveries); k > 0 {
		d := n.freeDeliveries[k-1]
		n.freeDeliveries[k-1] = nil
		n.freeDeliveries = n.freeDeliveries[:k-1]
		return d
	}
	return &delivery{}
}

// putDelivery clears and returns a record to the pool. The message is NOT
// retained: the receiver owns it after handoff.
func (n *Network) putDelivery(d *delivery) {
	*d = delivery{}
	n.freeDeliveries = append(n.freeDeliveries, d)
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// Detach forcibly removes an endpoint by address, modeling a peer crash
// from outside the peer (deployment-level churn injection). Messages in
// flight to it are dropped. It reports whether the endpoint existed.
func (n *Network) Detach(addr Addr) bool {
	s, ok := n.nodes[addr]
	if ok {
		s.closed = true
		delete(n.nodes, addr)
	}
	return ok
}

// Lookup returns the endpoint bound to addr, if attached.
func (n *Network) Lookup(addr Addr) (*Sim, bool) {
	s, ok := n.nodes[addr]
	return s, ok
}

// Reattach re-registers a previously closed/detached endpoint under its
// original address, modeling a restarted process on the same host: the
// address answers again. Receivers are resolved at arrival time, so a
// message whose delivery lands inside the down window is lost, while one
// still in flight when the endpoint comes back is delivered — a late frame
// reaching a restarted process, as on a real network. It reports false
// when the address is already held by a different endpoint.
func (n *Network) Reattach(s *Sim) bool {
	if cur, ok := n.nodes[s.addr]; ok && cur != s {
		return false
	}
	s.closed = false
	n.nodes[s.addr] = s
	return true
}

// ResetStats zeroes the counters (used between experiment phases).
func (n *Network) ResetStats() { n.stats = Stats{} }

// Model returns the latency model (read-only use).
func (n *Network) Model() *netmodel.Model { return n.model }

// Sim is a simulated endpoint attached to a Network.
type Sim struct {
	net       *Network
	addr      Addr
	site      netmodel.Site
	handler   Handler
	busyUntil time.Duration
	closed    bool
	// lastArrival enforces per-destination FIFO ordering: JXTA transports
	// are connection-oriented (TCP), so two messages from one peer to
	// another never reorder, whatever the jitter draws say. Entries whose
	// clamp can no longer bind (arrival in the past) are pruned lazily so
	// the map stays bounded by the peer's active destination set.
	lastArrival map[Addr]time.Duration
	// nextArrivalPrune rate-limits the prune sweep (virtual time).
	nextArrivalPrune time.Duration
}

var _ Transport = (*Sim)(nil)

// Attach creates an endpoint for a node at the given site. The name must be
// unique within the network.
func (n *Network) Attach(name string, site netmodel.Site) (*Sim, error) {
	addr := Addr(fmt.Sprintf("sim://%s/%s", site, name))
	if _, dup := n.nodes[addr]; dup {
		return nil, fmt.Errorf("transport: duplicate sim endpoint %s", addr)
	}
	s := &Sim{net: n, addr: addr, site: site,
		lastArrival: make(map[Addr]time.Duration)}
	n.nodes[addr] = s
	return s, nil
}

// Addr implements Transport.
func (s *Sim) Addr() Addr { return s.addr }

// Site returns the Grid'5000 site this endpoint lives on.
func (s *Sim) Site() netmodel.Site { return s.site }

// SetHandler implements Transport.
func (s *Sim) SetHandler(h Handler) { s.handler = h }

// Close implements Transport. It detaches the endpoint: in-flight messages
// to it are silently dropped, modeling a crashed peer (churn experiments).
func (s *Sim) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	delete(s.net.nodes, s.addr)
	return nil
}

// Busy extends the endpoint's service queue by d, modeling local processing
// (e.g. a rendezvous scanning its SRDI index before answering a query).
// Subsequent inbound messages are handed to the handler only after the busy
// period elapses.
func (s *Sim) Busy(d time.Duration) {
	now := s.net.sched.Now()
	if s.busyUntil < now {
		s.busyUntil = now
	}
	s.busyUntil += d
}

// Send implements Transport. Latency is propagation (site matrix + jitter)
// plus transmission; on arrival the message queues FIFO behind the
// receiver's stack service time, so a loaded receiver serves slowly — the
// effect the paper's configuration B stresses.
func (s *Sim) Send(to Addr, msg *message.Message) error {
	if s.closed {
		return ErrClosed
	}
	n := s.net
	n.stats.Messages++
	n.stats.Bytes += uint64(msg.Size())
	if n.OnSend != nil {
		n.OnSend(s.addr, to, msg)
	}
	if n.model.Drop(n.rng) {
		n.stats.Dropped++
		return nil // loss is silent, like UDP on a real WAN
	}
	// The destination may be unknown at send time (boot races) or gone
	// (churn); bytes leave anyway and the receiver is resolved at arrival.
	dstSite := n.siteOf(to)
	latency := n.model.SampleLatency(s.site, dstSite, msg.Size(), n.rng)
	// Clamp to per-pair FIFO order (connection-oriented transport).
	arrival := n.sched.Now() + latency
	if last := s.lastArrival[to]; arrival <= last {
		arrival = last + time.Microsecond
	}
	s.lastArrival[to] = arrival
	s.maybePruneArrivals()
	d := n.getDelivery()
	d.from, d.to = s.addr, to
	d.msg = msg.Clone() // receiver must never share memory with sender
	n.sched.AtCall(arrival, n.arriveFn, d)
	return nil
}

// arrive is delivery phase 1: the frame reaches the destination host and
// queues FIFO behind the receiver's protocol-stack service time.
func (n *Network) arrive(a any) {
	d := a.(*delivery)
	rcv, ok := n.nodes[d.to]
	if !ok || rcv.handler == nil {
		n.stats.Dropped++
		n.putDelivery(d)
		return
	}
	arrival := n.sched.Now()
	start := rcv.busyUntil
	if start < arrival {
		start = arrival
	}
	handAt := start + n.model.StackService
	rcv.busyUntil = handAt
	d.rcv = rcv
	n.sched.AtCall(handAt, n.handoffFn, d)
}

// handoff is delivery phase 2: the stack hands the message to the service
// handler — unless the peer crashed while the message sat in its queue.
func (n *Network) handoff(a any) {
	d := a.(*delivery)
	if cur, ok := n.nodes[d.to]; ok && cur == d.rcv && d.rcv.handler != nil {
		d.rcv.handler(d.from, d.msg)
	} else {
		n.stats.Dropped++
	}
	n.putDelivery(d)
}

// arrivalPruneLen is the lastArrival size beyond which a send may trigger a
// prune sweep.
const arrivalPruneLen = 64

// arrivalPruneEvery rate-limits sweeps in virtual time.
const arrivalPruneEvery = time.Second

// maybePruneArrivals drops FIFO-clamp entries that can no longer bind: an
// entry strictly in the past cannot exceed any future arrival (latencies are
// nonnegative), so removing it never changes delivery order. Determinism is
// preserved because the removal set depends only on virtual time, not map
// iteration order.
func (s *Sim) maybePruneArrivals() {
	if len(s.lastArrival) < arrivalPruneLen {
		return
	}
	now := s.net.sched.Now()
	if now < s.nextArrivalPrune {
		return
	}
	s.nextArrivalPrune = now + arrivalPruneEvery
	for a, last := range s.lastArrival {
		if last < now {
			delete(s.lastArrival, a)
		}
	}
}

// siteOf resolves the destination site from the address (known endpoints) or
// by parsing the sim:// address for not-yet-attached ones, memoizing the
// parse.
func (n *Network) siteOf(a Addr) netmodel.Site {
	if node, ok := n.nodes[a]; ok {
		return node.site
	}
	if site, ok := n.siteCache[a]; ok {
		return site
	}
	site := parseAddrSite(a)
	n.siteCache[a] = site
	return site
}

// parseAddrSite extracts the site from a sim://<site>/<name> address.
func parseAddrSite(a Addr) netmodel.Site {
	s := string(a)
	const prefix = "sim://"
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		rest := s[len(prefix):]
		for i := 0; i < len(rest); i++ {
			if rest[i] == '/' {
				if site, err := netmodel.ParseSite(rest[:i]); err == nil {
					return site
				}
				break
			}
		}
	}
	return netmodel.Rennes // arbitrary but deterministic fallback
}
