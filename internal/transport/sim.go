package transport

import (
	"fmt"
	"math/rand"
	"time"

	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
)

// Stats aggregates network-wide traffic counters. Experiments read it to
// verify the paper's message-complexity claims (LC-DHT publish ≤ 2 messages,
// consistent lookup ≤ 4).
type Stats struct {
	Messages uint64
	Bytes    uint64
	Dropped  uint64 // loss injection + sends to detached peers
}

// Network is the simulated Grid'5000 fabric: it owns the latency model, the
// attached endpoints and the delivery bookkeeping. All methods must be
// called from the simulation goroutine (the event loop), which is the only
// execution context in a simnet experiment.
type Network struct {
	sched *simnet.Scheduler
	model *netmodel.Model
	rng   *rand.Rand
	nodes map[Addr]*Sim
	stats Stats
	// OnSend, when non-nil, observes every accepted send. Used by
	// experiments to count per-exchange messages.
	OnSend func(from, to Addr, msg *message.Message)
}

// reserved DeriveRand index for the network's own jitter/loss stream, far
// above any node index.
const networkRandIndex = 1 << 40

// NewNetwork builds a fabric over the given scheduler and latency model.
func NewNetwork(sched *simnet.Scheduler, model *netmodel.Model) *Network {
	return &Network{
		sched: sched,
		model: model,
		rng:   sched.DeriveRand(networkRandIndex),
		nodes: make(map[Addr]*Sim),
	}
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// Detach forcibly removes an endpoint by address, modeling a peer crash
// from outside the peer (deployment-level churn injection). Messages in
// flight to it are dropped. It reports whether the endpoint existed.
func (n *Network) Detach(addr Addr) bool {
	s, ok := n.nodes[addr]
	if ok {
		s.closed = true
		delete(n.nodes, addr)
	}
	return ok
}

// Lookup returns the endpoint bound to addr, if attached.
func (n *Network) Lookup(addr Addr) (*Sim, bool) {
	s, ok := n.nodes[addr]
	return s, ok
}

// ResetStats zeroes the counters (used between experiment phases).
func (n *Network) ResetStats() { n.stats = Stats{} }

// Model returns the latency model (read-only use).
func (n *Network) Model() *netmodel.Model { return n.model }

// Sim is a simulated endpoint attached to a Network.
type Sim struct {
	net       *Network
	addr      Addr
	site      netmodel.Site
	handler   Handler
	busyUntil time.Duration
	closed    bool
	// lastArrival enforces per-destination FIFO ordering: JXTA transports
	// are connection-oriented (TCP), so two messages from one peer to
	// another never reorder, whatever the jitter draws say.
	lastArrival map[Addr]time.Duration
}

var _ Transport = (*Sim)(nil)

// Attach creates an endpoint for a node at the given site. The name must be
// unique within the network.
func (n *Network) Attach(name string, site netmodel.Site) (*Sim, error) {
	addr := Addr(fmt.Sprintf("sim://%s/%s", site, name))
	if _, dup := n.nodes[addr]; dup {
		return nil, fmt.Errorf("transport: duplicate sim endpoint %s", addr)
	}
	s := &Sim{net: n, addr: addr, site: site,
		lastArrival: make(map[Addr]time.Duration)}
	n.nodes[addr] = s
	return s, nil
}

// Addr implements Transport.
func (s *Sim) Addr() Addr { return s.addr }

// Site returns the Grid'5000 site this endpoint lives on.
func (s *Sim) Site() netmodel.Site { return s.site }

// SetHandler implements Transport.
func (s *Sim) SetHandler(h Handler) { s.handler = h }

// Close implements Transport. It detaches the endpoint: in-flight messages
// to it are silently dropped, modeling a crashed peer (churn experiments).
func (s *Sim) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	delete(s.net.nodes, s.addr)
	return nil
}

// Busy extends the endpoint's service queue by d, modeling local processing
// (e.g. a rendezvous scanning its SRDI index before answering a query).
// Subsequent inbound messages are handed to the handler only after the busy
// period elapses.
func (s *Sim) Busy(d time.Duration) {
	now := s.net.sched.Now()
	if s.busyUntil < now {
		s.busyUntil = now
	}
	s.busyUntil += d
}

// Send implements Transport. Latency is propagation (site matrix + jitter)
// plus transmission; on arrival the message queues FIFO behind the
// receiver's stack service time, so a loaded receiver serves slowly — the
// effect the paper's configuration B stresses.
func (s *Sim) Send(to Addr, msg *message.Message) error {
	if s.closed {
		return ErrClosed
	}
	n := s.net
	n.stats.Messages++
	n.stats.Bytes += uint64(msg.Size())
	if n.OnSend != nil {
		n.OnSend(s.addr, to, msg)
	}
	if n.model.Drop(n.rng) {
		n.stats.Dropped++
		return nil // loss is silent, like UDP on a real WAN
	}
	// The destination may be unknown at send time (boot races) or gone
	// (churn); bytes leave anyway and the receiver is resolved at arrival.
	dstSite := siteOf(n, to)
	latency := n.model.SampleLatency(s.site, dstSite, msg.Size(), n.rng)
	// Clamp to per-pair FIFO order (connection-oriented transport).
	arrival := n.sched.Now() + latency
	if last := s.lastArrival[to]; arrival <= last {
		arrival = last + time.Microsecond
	}
	s.lastArrival[to] = arrival
	latency = arrival - n.sched.Now()
	frame := msg.Clone() // receiver must never share memory with sender
	n.sched.After(latency, func() {
		rcv, ok := n.nodes[to]
		if !ok || rcv.handler == nil {
			n.stats.Dropped++
			return
		}
		arrival := n.sched.Now()
		start := rcv.busyUntil
		if start < arrival {
			start = arrival
		}
		handAt := start + n.model.StackService
		rcv.busyUntil = handAt
		n.sched.At(handAt, func() {
			// Re-check liveness: the peer may have crashed while the
			// message sat in its queue.
			if cur, ok := n.nodes[to]; ok && cur == rcv && rcv.handler != nil {
				rcv.handler(s.addr, frame)
			} else {
				n.stats.Dropped++
			}
		})
	})
	return nil
}

// siteOf resolves the destination site from the address (known endpoints) or
// by parsing the sim:// address for not-yet-attached ones.
func siteOf(n *Network, a Addr) netmodel.Site {
	if node, ok := n.nodes[a]; ok {
		return node.site
	}
	// sim://<site>/<name>
	s := string(a)
	const prefix = "sim://"
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		rest := s[len(prefix):]
		for i := 0; i < len(rest); i++ {
			if rest[i] == '/' {
				if site, err := netmodel.ParseSite(rest[:i]); err == nil {
					return site
				}
				break
			}
		}
	}
	return netmodel.Rennes // arbitrary but deterministic fallback
}
