package transport

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"jxta/internal/hibpool"
	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
)

// Stats aggregates network-wide traffic counters. Experiments read it to
// verify the paper's message-complexity claims (LC-DHT publish ≤ 2 messages,
// consistent lookup ≤ 4).
type Stats struct {
	Messages uint64
	Bytes    uint64
	Dropped  uint64 // loss injection + sends to detached peers
}

// shardStats is one shard's slice of the traffic counters. The cells are
// atomic so a driver-side Stats() snapshot taken while shard windows run
// (live metrics scrapes, mid-run observability) is race-free; each cell is
// still written by exactly one shard goroutine, so the atomic adds stay
// uncontended and cache-local.
type shardStats struct {
	messages atomic.Uint64
	bytes    atomic.Uint64
	dropped  atomic.Uint64
}

// Network is the simulated Grid'5000 fabric: it owns the latency model, the
// attached endpoints and the delivery bookkeeping. Its state is partitioned
// by shard: in serial mode there is exactly one shard and all methods run on
// the simulation goroutine; under the sharded engine each shard's slice of
// the state (endpoints, RNG stream, counters, delivery pool) is touched only
// by that shard's execution context, so concurrent windows share nothing.
type Network struct {
	model *netmodel.Model
	// engine is the sharded engine when the fabric spans shards; nil in
	// serial mode.
	engine *simnet.ShardedScheduler
	shards []netShard
	// shardOfSite routes an address to the shard owning its site. Addresses
	// embed their site (sim://<site>/<name>), so routing is static: a
	// destination resolves to the same shard whether or not it is attached
	// yet, which keeps boot races and restarts deterministic.
	shardOfSite [netmodel.NumSites]int32
	// OnSend, when non-nil, observes every accepted send. Used by
	// experiments to count per-exchange messages. Under the sharded engine
	// it is invoked from shard goroutines; observer experiments run serial.
	OnSend func(from, to Addr, msg *message.Message)
}

// netShard is one shard's slice of the fabric state.
type netShard struct {
	sched *simnet.Scheduler
	rng   *rand.Rand
	nodes map[Addr]*Sim
	stats shardStats
	// siteCache memoizes parsed sites of destination addresses not attached
	// to this shard (remote shards' peers, not-yet-attached boot races).
	// Shard-local so lookups never touch another shard's maps.
	siteCache map[Addr]netmodel.Site
	// freeDeliveries pools delivery records; together with the scheduler's
	// payload event form it makes the per-message send path closure-free.
	// Records may migrate pools (taken on the sending shard, returned on
	// the receiving one); each pool is only touched by its own shard.
	freeDeliveries []*delivery
	// arriveFn/handoffFn are the two delivery phases as stored func values,
	// created once so scheduling them allocates nothing per send.
	arriveFn  func(any)
	handoffFn func(any)
	// pad keeps neighbouring shards' hot counters off one cache line.
	_ [64]byte
}

// delivery is one in-flight message's state, pooled across sends.
type delivery struct {
	from Addr
	to   Addr
	rcv  *Sim // resolved at arrival, checked again at handoff
	msg  *message.Message
}

// reserved DeriveRand index for the network's own jitter/loss stream, far
// above any node index.
const networkRandIndex = 1 << 40

// NewNetwork builds a serial fabric over the given scheduler and latency
// model: one shard owning every site.
func NewNetwork(sched *simnet.Scheduler, model *netmodel.Model) *Network {
	n := &Network{model: model, shards: make([]netShard, 1)}
	n.initShard(0, sched)
	return n
}

// NewShardedNetwork builds a fabric partitioned across the engine's shards
// per the site assignment (assign[site] = shard, from topology.PlaceSites).
// Same-shard deliveries go straight onto the shard's heap exactly as in
// serial mode; cross-shard deliveries are enqueued on the engine's exchange
// queues and merged at window barriers.
func NewShardedNetwork(engine *simnet.ShardedScheduler, model *netmodel.Model, assign []int) (*Network, error) {
	if len(assign) < netmodel.NumSites {
		return nil, fmt.Errorf("transport: site assignment covers %d of %d sites", len(assign), netmodel.NumSites)
	}
	n := &Network{model: model, engine: engine, shards: make([]netShard, engine.Shards())}
	for site := 0; site < netmodel.NumSites; site++ {
		if assign[site] < 0 || assign[site] >= engine.Shards() {
			return nil, fmt.Errorf("transport: site %v assigned to shard %d of %d", netmodel.Site(site), assign[site], engine.Shards())
		}
		n.shardOfSite[site] = int32(assign[site])
	}
	for i := range n.shards {
		n.initShard(i, engine.Shard(i))
	}
	return n, nil
}

// initShard wires one shard's scheduler, RNG stream and delivery closures.
func (n *Network) initShard(i int, sched *simnet.Scheduler) {
	sh := &n.shards[i]
	sh.sched = sched
	sh.rng = sched.DeriveRand(networkRandIndex)
	sh.nodes = make(map[Addr]*Sim)
	sh.siteCache = make(map[Addr]netmodel.Site)
	sh.arriveFn = func(a any) { n.arrive(sh, a) }
	sh.handoffFn = func(a any) { n.handoff(sh, a) }
}

// getDelivery takes a record from the shard's pool (or allocates).
func (sh *netShard) getDelivery() *delivery {
	if k := len(sh.freeDeliveries); k > 0 {
		d := sh.freeDeliveries[k-1]
		sh.freeDeliveries[k-1] = nil
		sh.freeDeliveries = sh.freeDeliveries[:k-1]
		return d
	}
	return &delivery{}
}

// putDelivery clears and returns a record to the shard's pool. The message
// is NOT retained: the receiver owns it after handoff.
func (sh *netShard) putDelivery(d *delivery) {
	*d = delivery{}
	sh.freeDeliveries = append(sh.freeDeliveries, d)
}

// Stats returns a snapshot of the traffic counters summed over shards. The
// counters are atomic, so unlike the other driver-side methods it is safe to
// call concurrently with a sharded Run — a snapshot taken mid-window is a
// consistent sum of per-shard values, each no staler than its shard's
// in-flight window.
func (n *Network) Stats() Stats {
	var t Stats
	for i := range n.shards {
		sh := &n.shards[i]
		t.Messages += sh.stats.messages.Load()
		t.Bytes += sh.stats.bytes.Load()
		t.Dropped += sh.stats.dropped.Load()
	}
	return t
}

// shardFor routes an address to the shard owning its site.
func (n *Network) shardFor(addr Addr) *netShard {
	if len(n.shards) == 1 {
		return &n.shards[0]
	}
	return &n.shards[n.shardOfSite[parseAddrSite(addr)]]
}

// Detach forcibly removes an endpoint by address, modeling a peer crash
// from outside the peer (deployment-level churn injection). Messages in
// flight to it are dropped. It reports whether the endpoint existed.
func (n *Network) Detach(addr Addr) bool {
	sh := n.shardFor(addr)
	s, ok := sh.nodes[addr]
	if ok {
		s.closed = true
		delete(sh.nodes, addr)
	}
	return ok
}

// Lookup returns the endpoint bound to addr, if attached.
func (n *Network) Lookup(addr Addr) (*Sim, bool) {
	s, ok := n.shardFor(addr).nodes[addr]
	return s, ok
}

// Reattach re-registers a previously closed/detached endpoint under its
// original address, modeling a restarted process on the same host: the
// address answers again. Receivers are resolved at arrival time, so a
// message whose delivery lands inside the down window is lost, while one
// still in flight when the endpoint comes back is delivered — a late frame
// reaching a restarted process, as on a real network. It reports false
// when the address is already held by a different endpoint.
func (n *Network) Reattach(s *Sim) bool {
	if cur, ok := s.sh.nodes[s.addr]; ok && cur != s {
		return false
	}
	s.closed = false
	s.sh.nodes[s.addr] = s
	return true
}

// ResetStats zeroes the counters (used between experiment phases; driver
// side only — do not reset while shard windows run).
func (n *Network) ResetStats() {
	for i := range n.shards {
		sh := &n.shards[i]
		sh.stats.messages.Store(0)
		sh.stats.bytes.Store(0)
		sh.stats.dropped.Store(0)
	}
}

// Model returns the latency model (read-only use).
func (n *Network) Model() *netmodel.Model { return n.model }

// Sim is a simulated endpoint attached to a Network.
type Sim struct {
	net *Network
	// sh is the shard owning this endpoint's site; all of the endpoint's
	// events (deliveries, handler calls) run on its scheduler.
	sh        *netShard
	shard     int32
	addr      Addr
	site      netmodel.Site
	handler   Handler
	busyUntil time.Duration
	closed    bool
	// lastArrival enforces per-destination FIFO ordering: JXTA transports
	// are connection-oriented (TCP), so two messages from one peer to
	// another never reorder, whatever the jitter draws say. Entries whose
	// clamp can no longer bind (arrival in the past) are pruned lazily so
	// the map stays bounded by the peer's active destination set.
	lastArrival map[Addr]time.Duration
	// nextArrivalPrune rate-limits the prune sweep (virtual time).
	nextArrivalPrune time.Duration
}

var _ Transport = (*Sim)(nil)

// Attach creates an endpoint for a node at the given site. The name must be
// unique within the network. The endpoint lives on the shard owning the
// site. Driver-side: call while the engine is quiesced.
func (n *Network) Attach(name string, site netmodel.Site) (*Sim, error) {
	addr := Addr(fmt.Sprintf("sim://%s/%s", site, name))
	shard := int32(0)
	if len(n.shards) > 1 {
		shard = n.shardOfSite[site]
	}
	sh := &n.shards[shard]
	if _, dup := sh.nodes[addr]; dup {
		return nil, fmt.Errorf("transport: duplicate sim endpoint %s", addr)
	}
	s := &Sim{net: n, sh: sh, shard: shard, addr: addr, site: site,
		lastArrival: make(map[Addr]time.Duration)}
	sh.nodes[addr] = s
	return s, nil
}

// Addr implements Transport.
func (s *Sim) Addr() Addr { return s.addr }

// Site returns the Grid'5000 site this endpoint lives on.
func (s *Sim) Site() netmodel.Site { return s.site }

// SetHandler implements Transport.
func (s *Sim) SetHandler(h Handler) { s.handler = h }

// Close implements Transport. It detaches the endpoint: in-flight messages
// to it are silently dropped, modeling a crashed peer (churn experiments).
func (s *Sim) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	delete(s.sh.nodes, s.addr)
	return nil
}

// Busy extends the endpoint's service queue by d, modeling local processing
// (e.g. a rendezvous scanning its SRDI index before answering a query).
// Subsequent inbound messages are handed to the handler only after the busy
// period elapses.
func (s *Sim) Busy(d time.Duration) {
	now := s.sh.sched.Now()
	if s.busyUntil < now {
		s.busyUntil = now
	}
	s.busyUntil += d
}

// Send implements Transport. Latency is propagation (site matrix + jitter)
// plus transmission; on arrival the message queues FIFO behind the
// receiver's stack service time, so a loaded receiver serves slowly — the
// effect the paper's configuration B stresses. A delivery whose destination
// site lives on another shard is enqueued on the engine's exchange queues
// instead of the local heap; the conservative lookahead window guarantees
// its arrival lands beyond the current window barrier.
func (s *Sim) Send(to Addr, msg *message.Message) error {
	if s.closed {
		return ErrClosed
	}
	n := s.net
	sh := s.sh
	sh.stats.messages.Add(1)
	sh.stats.bytes.Add(uint64(msg.Size()))
	if n.OnSend != nil {
		n.OnSend(s.addr, to, msg)
	}
	if n.model.Drop(sh.rng) {
		sh.stats.dropped.Add(1)
		return nil // loss is silent, like UDP on a real WAN
	}
	// The destination may be unknown at send time (boot races) or gone
	// (churn); bytes leave anyway and the receiver is resolved at arrival.
	dstSite := sh.siteOf(to)
	latency := n.model.SampleLatency(s.site, dstSite, msg.Size(), sh.rng)
	// Clamp to per-pair FIFO order (connection-oriented transport).
	arrival := sh.sched.Now() + latency
	if last := s.lastArrival[to]; arrival <= last {
		arrival = last + time.Microsecond
	}
	if s.lastArrival == nil { // released by FreezeArrivals while hibernating
		s.lastArrival = arrivalsPool.Get()
	}
	s.lastArrival[to] = arrival
	s.maybePruneArrivals()
	dstShard := s.shard
	if len(n.shards) > 1 {
		dstShard = n.shardOfSite[dstSite]
	}
	// The record comes from the sending shard's pool (the only pool this
	// execution context may touch) and is returned to the receiving
	// shard's, migrating pools on cross-shard sends.
	d := sh.getDelivery()
	d.from, d.to = s.addr, to
	d.msg = msg.Clone() // receiver must never share memory with sender
	if dstShard == s.shard {
		sh.sched.AtCall(arrival, sh.arriveFn, d)
	} else {
		// arriveFn fields are written once at init and read-only after,
		// so reading the destination shard's closure here is safe.
		n.engine.XSchedule(int(s.shard), int(dstShard), arrival, n.shards[dstShard].arriveFn, d)
	}
	return nil
}

// arrive is delivery phase 1 on the receiving shard: the frame reaches the
// destination host and queues FIFO behind the receiver's protocol-stack
// service time.
func (n *Network) arrive(sh *netShard, a any) {
	d := a.(*delivery)
	rcv, ok := sh.nodes[d.to]
	if !ok || rcv.handler == nil {
		sh.stats.dropped.Add(1)
		sh.putDelivery(d)
		return
	}
	arrival := sh.sched.Now()
	start := rcv.busyUntil
	if start < arrival {
		start = arrival
	}
	handAt := start + n.model.StackService
	rcv.busyUntil = handAt
	d.rcv = rcv
	sh.sched.AtCall(handAt, sh.handoffFn, d)
}

// handoff is delivery phase 2: the stack hands the message to the service
// handler — unless the peer crashed while the message sat in its queue.
func (n *Network) handoff(sh *netShard, a any) {
	d := a.(*delivery)
	if cur, ok := sh.nodes[d.to]; ok && cur == d.rcv && d.rcv.handler != nil {
		d.rcv.handler(d.from, d.msg)
	} else {
		sh.stats.dropped.Add(1)
	}
	sh.putDelivery(d)
}

// arrivalPruneLen is the lastArrival size beyond which a send may trigger a
// prune sweep.
const arrivalPruneLen = 64

// arrivalPruneEvery rate-limits sweeps in virtual time.
const arrivalPruneEvery = time.Second

// maybePruneArrivals drops FIFO-clamp entries that can no longer bind: an
// entry strictly in the past cannot exceed any future arrival (latencies are
// nonnegative), so removing it never changes delivery order. Determinism is
// preserved because the removal set depends only on virtual time, not map
// iteration order.
func (s *Sim) maybePruneArrivals() {
	if len(s.lastArrival) < arrivalPruneLen {
		return
	}
	now := s.sh.sched.Now()
	if now < s.nextArrivalPrune {
		return
	}
	s.nextArrivalPrune = now + arrivalPruneEvery
	n := 0
	for _, last := range s.lastArrival {
		if last >= now {
			n++
		}
	}
	// delete() never returns bucket memory, so a wide-fanout sender (a
	// rendezvous serving hundreds of peers) pruned in place would keep its
	// high-water bucket array forever. When the sweep would discard most of
	// the map, rebuild the survivors into an exact-size shell instead; when
	// the map is mostly live, deleting in place avoids the allocation.
	if 2*n >= len(s.lastArrival) {
		for a, last := range s.lastArrival {
			if last < now {
				delete(s.lastArrival, a)
			}
		}
		return
	}
	m := make(map[Addr]time.Duration, n)
	for a, last := range s.lastArrival {
		if last >= now {
			m[a] = last
		}
	}
	s.lastArrival = m
}

// arrivalsPool recycles FIFO-clamp map shells across freeze/wake cycles.
var arrivalsPool hibpool.Maps[Addr, time.Duration]

// FreezeArrivals releases the FIFO-clamp map while the owning node
// hibernates. An entry strictly in the past can never bind — latencies are
// nonnegative, so every future arrival lands at or after now (the same
// argument maybePruneArrivals relies on) — and a quiescent edge rarely
// holds any other kind, so the common case frees the map outright. Rare
// still-binding entries (a fire-and-forget send whose arrival is ahead of
// now) keep a map alive, shrunk to just those entries; delete() never
// returns bucket memory, which is why the map is swapped, not pruned in
// place. Send rebuilds the map lazily on the next transmission.
func (s *Sim) FreezeArrivals() {
	if s.lastArrival == nil {
		return
	}
	now := s.sh.sched.Now()
	var keep map[Addr]time.Duration
	for to, last := range s.lastArrival {
		if last >= now {
			if keep == nil {
				keep = arrivalsPool.Get()
			}
			keep[to] = last
		}
	}
	arrivalsPool.Put(s.lastArrival)
	s.lastArrival = keep
}

// siteOf resolves the destination site from this shard's attached endpoints
// or by parsing the sim:// address, memoizing the parse. Endpoints on other
// shards resolve through the parse path — addresses embed their site, so
// the answer is identical and no cross-shard map is read.
func (sh *netShard) siteOf(a Addr) netmodel.Site {
	if node, ok := sh.nodes[a]; ok {
		return node.site
	}
	if site, ok := sh.siteCache[a]; ok {
		return site
	}
	site := parseAddrSite(a)
	sh.siteCache[a] = site
	return site
}

// siteOf resolves a destination site on the first shard (serial-mode helper
// kept for tests).
func (n *Network) siteOf(a Addr) netmodel.Site { return n.shards[0].siteOf(a) }

// parseAddrSite extracts the site from a sim://<site>/<name> address.
func parseAddrSite(a Addr) netmodel.Site {
	s := string(a)
	const prefix = "sim://"
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		rest := s[len(prefix):]
		for i := 0; i < len(rest); i++ {
			if rest[i] == '/' {
				if site, err := netmodel.ParseSite(rest[:i]); err == nil {
					return site
				}
				break
			}
		}
	}
	return netmodel.Rennes // arbitrary but deterministic fallback
}
