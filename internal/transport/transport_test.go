package transport

import (
	"sync"
	"testing"
	"time"

	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
)

func msgOf(s string) *message.Message {
	return message.New().AddString("t", "body", s)
}

// --- Sim transport ---

func newSimPair(t *testing.T, model *netmodel.Model) (*simnet.Scheduler, *Network, *Sim, *Sim) {
	t.Helper()
	sched := simnet.NewScheduler(1)
	net := NewNetwork(sched, model)
	a, err := net.Attach("a", netmodel.Rennes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach("b", netmodel.Sophia)
	if err != nil {
		t.Fatal(err)
	}
	return sched, net, a, b
}

func TestSimDelivery(t *testing.T) {
	sched, _, a, b := newSimPair(t, netmodel.Uniform(3*time.Millisecond))
	var got string
	var from Addr
	var at time.Duration
	b.SetHandler(func(src Addr, m *message.Message) {
		got = m.GetString("t", "body")
		from = src
		at = sched.Now()
	})
	if err := a.Send(b.Addr(), msgOf("hello")); err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Second)
	if got != "hello" || from != a.Addr() {
		t.Fatalf("delivery failed: got=%q from=%s", got, from)
	}
	if at != 3*time.Millisecond {
		t.Fatalf("delivered at %v, want 3ms (uniform model, no stack service)", at)
	}
}

func TestSimAddrFormat(t *testing.T) {
	_, _, a, _ := newSimPair(t, netmodel.Uniform(time.Millisecond))
	if a.Addr() != "sim://rennes/a" {
		t.Fatalf("addr = %s", a.Addr())
	}
	if a.Site() != netmodel.Rennes {
		t.Fatalf("site = %v", a.Site())
	}
}

func TestSimDuplicateAttach(t *testing.T) {
	sched := simnet.NewScheduler(1)
	net := NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	if _, err := net.Attach("x", netmodel.Lyon); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach("x", netmodel.Lyon); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
}

func TestSimReceiverIsolatedFromSenderMutation(t *testing.T) {
	sched, _, a, b := newSimPair(t, netmodel.Uniform(time.Millisecond))
	var got *message.Message
	b.SetHandler(func(_ Addr, m *message.Message) { got = m })
	// The sender owns the payload buffer (AddString-backed elements alias
	// immutable string memory and must never be written).
	buf := []byte("original")
	m := message.New().Add("t", "body", buf)
	a.Send(b.Addr(), m)
	// Mutate the sender's buffer after Send but before delivery.
	copy(buf, "MUTATED!")
	sched.Run(time.Second)
	if got.GetString("t", "body") != "original" {
		t.Fatal("receiver observed sender-side mutation")
	}
}

func TestSimStackServiceQueueing(t *testing.T) {
	model := netmodel.Uniform(time.Millisecond)
	model.StackService = 10 * time.Millisecond
	sched, _, a, b := newSimPair(t, model)
	var deliveries []time.Duration
	b.SetHandler(func(_ Addr, _ *message.Message) {
		deliveries = append(deliveries, sched.Now())
	})
	// Three messages sent back-to-back arrive at ~1ms and then serialize
	// behind the 10ms stack service: ~11, ~21, ~31 ms.
	for i := 0; i < 3; i++ {
		a.Send(b.Addr(), msgOf("x"))
	}
	sched.Run(time.Second)
	if len(deliveries) != 3 {
		t.Fatalf("got %d deliveries", len(deliveries))
	}
	want := []time.Duration{11 * time.Millisecond, 21 * time.Millisecond, 31 * time.Millisecond}
	for i, d := range deliveries {
		if d != want[i] {
			t.Fatalf("delivery %d at %v, want %v (FIFO service queue)", i, d, want[i])
		}
	}
}

func TestSimBusyDelaysService(t *testing.T) {
	model := netmodel.Uniform(time.Millisecond)
	sched, _, a, b := newSimPair(t, model)
	var at time.Duration
	b.SetHandler(func(_ Addr, _ *message.Message) { at = sched.Now() })
	b.Busy(50 * time.Millisecond) // e.g. scanning a large SRDI index
	a.Send(b.Addr(), msgOf("x"))
	sched.Run(time.Second)
	if at != 50*time.Millisecond {
		t.Fatalf("delivered at %v, want 50ms (behind busy period)", at)
	}
}

func TestSimSendToDetachedPeerDropped(t *testing.T) {
	sched, net, a, b := newSimPair(t, netmodel.Uniform(time.Millisecond))
	delivered := false
	b.SetHandler(func(_ Addr, _ *message.Message) { delivered = true })
	bAddr := b.Addr()
	b.Close()
	if err := a.Send(bAddr, msgOf("x")); err != nil {
		t.Fatalf("send to departed peer errored synchronously: %v", err)
	}
	sched.Run(time.Second)
	if delivered {
		t.Fatal("message delivered to closed endpoint")
	}
	if net.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", net.Stats().Dropped)
	}
}

func TestSimCrashWhileQueuedDrops(t *testing.T) {
	model := netmodel.Uniform(time.Millisecond)
	model.StackService = 20 * time.Millisecond
	sched, net, a, b := newSimPair(t, model)
	delivered := 0
	b.SetHandler(func(_ Addr, _ *message.Message) { delivered++ })
	a.Send(b.Addr(), msgOf("1"))
	a.Send(b.Addr(), msgOf("2"))
	// Crash b at 25ms: first message (served at 21ms) lands, second
	// (due 41ms) must be dropped.
	sched.After(25*time.Millisecond, func() { b.Close() })
	sched.Run(time.Second)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if net.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", net.Stats().Dropped)
	}
}

func TestSimLossInjection(t *testing.T) {
	model := netmodel.Uniform(time.Millisecond)
	model.LossRate = 1.0
	sched, net, a, b := newSimPair(t, model)
	delivered := false
	b.SetHandler(func(_ Addr, _ *message.Message) { delivered = true })
	a.Send(b.Addr(), msgOf("x"))
	sched.Run(time.Second)
	if delivered {
		t.Fatal("message survived 100% loss")
	}
	if net.Stats().Dropped != 1 || net.Stats().Messages != 1 {
		t.Fatalf("stats = %+v", net.Stats())
	}
}

func TestSimStatsAndHook(t *testing.T) {
	sched, net, a, b := newSimPair(t, netmodel.Uniform(time.Millisecond))
	b.SetHandler(func(_ Addr, _ *message.Message) {})
	var hooked int
	net.OnSend = func(from, to Addr, m *message.Message) { hooked++ }
	for i := 0; i < 5; i++ {
		a.Send(b.Addr(), msgOf("x"))
	}
	sched.Run(time.Second)
	st := net.Stats()
	if st.Messages != 5 || hooked != 5 || st.Bytes == 0 {
		t.Fatalf("stats = %+v hooked = %d", st, hooked)
	}
	net.ResetStats()
	if net.Stats().Messages != 0 {
		t.Fatal("ResetStats did not zero")
	}
}

func TestSimSendAfterClose(t *testing.T) {
	_, _, a, b := newSimPair(t, netmodel.Uniform(time.Millisecond))
	a.Close()
	if err := a.Send(b.Addr(), msgOf("x")); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestSiteOfUnattachedAddress(t *testing.T) {
	sched := simnet.NewScheduler(1)
	net := NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	if net.siteOf("sim://toulouse/ghost") != netmodel.Toulouse {
		t.Fatal("siteOf failed to parse unattached sim address")
	}
	if net.siteOf("bogus") != netmodel.Rennes {
		t.Fatal("siteOf fallback changed")
	}
	// Second resolution comes from the memoized cache.
	if net.siteOf("sim://toulouse/ghost") != netmodel.Toulouse {
		t.Fatal("siteOf cache returned a different site")
	}
	if len(net.shards[0].siteCache) != 2 {
		t.Fatalf("siteCache has %d entries, want 2", len(net.shards[0].siteCache))
	}
}

func TestSimGrid5000LatencyOrdering(t *testing.T) {
	// A message within Rennes must arrive before one crossing to Sophia.
	sched := simnet.NewScheduler(1)
	net := NewNetwork(sched, netmodel.Grid5000())
	src, _ := net.Attach("src", netmodel.Rennes)
	local, _ := net.Attach("local", netmodel.Rennes)
	remote, _ := net.Attach("remote", netmodel.Sophia)
	var localAt, remoteAt time.Duration
	local.SetHandler(func(_ Addr, _ *message.Message) { localAt = sched.Now() })
	remote.SetHandler(func(_ Addr, _ *message.Message) { remoteAt = sched.Now() })
	src.Send(local.Addr(), msgOf("x"))
	src.Send(remote.Addr(), msgOf("x"))
	sched.Run(time.Second)
	if localAt == 0 || remoteAt == 0 {
		t.Fatal("messages not delivered")
	}
	if localAt >= remoteAt {
		t.Fatalf("LAN delivery (%v) not faster than WAN (%v)", localAt, remoteAt)
	}
}

// --- Loopback ---

func TestLoopbackDelivery(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Attach("a")
	b, _ := hub.Attach("b")
	var got string
	b.SetHandler(func(src Addr, m *message.Message) {
		if src != a.Addr() {
			t.Errorf("src = %s", src)
		}
		got = m.GetString("t", "body")
	})
	if err := a.Send(b.Addr(), msgOf("ping")); err != nil {
		t.Fatal(err)
	}
	if got != "ping" {
		t.Fatalf("got %q", got)
	}
}

func TestLoopbackErrors(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Attach("a")
	if _, err := hub.Attach("a"); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
	if err := a.Send("loop://ghost", msgOf("x")); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
	a.Close()
	if err := a.Send("loop://ghost", msgOf("x")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

// --- TCP ---

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	gotB := make(chan string, 1)
	b.SetHandler(func(src Addr, m *message.Message) {
		if src != a.Addr() {
			t.Errorf("inbound src = %s, want %s", src, a.Addr())
		}
		gotB <- m.GetString("t", "body")
		// Reply over the same logical link (reuses the accepted conn).
		b.Send(src, msgOf("pong"))
	})
	gotA := make(chan string, 1)
	a.SetHandler(func(src Addr, m *message.Message) { gotA <- m.GetString("t", "body") })

	if err := a.Send(b.Addr(), msgOf("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-gotB:
		if s != "ping" {
			t.Fatalf("b got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("b never received")
	}
	select {
	case s := <-gotA:
		if s != "pong" {
			t.Fatalf("a got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("a never received reply")
	}
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	a, _ := ListenTCP("127.0.0.1:0")
	defer a.Close()
	b, _ := ListenTCP("127.0.0.1:0")
	defer b.Close()
	const n = 100
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	b.SetHandler(func(_ Addr, m *message.Message) {
		mu.Lock()
		got = append(got, m.GetString("t", "body"))
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if err := a.Send(b.Addr(), msgOf(string(rune('A'+i%26)))); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d messages arrived", len(got), n)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, s := range got {
		if s != string(rune('A'+i%26)) {
			t.Fatalf("message %d out of order: %q", i, s)
		}
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, _ := ListenTCP("127.0.0.1:0")
	b, _ := ListenTCP("127.0.0.1:0")
	defer b.Close()
	a.Close()
	if err := a.Send(b.Addr(), msgOf("x")); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTCPBadAddress(t *testing.T) {
	a, _ := ListenTCP("127.0.0.1:0")
	defer a.Close()
	if err := a.Send("sim://rennes/x", msgOf("x")); err == nil {
		t.Fatal("send to non-tcp address succeeded")
	}
	if err := a.Send("tcp://127.0.0.1:1", msgOf("x")); err == nil {
		t.Fatal("send to dead port succeeded")
	}
}

func BenchmarkSimSendDeliver(b *testing.B) {
	sched := simnet.NewScheduler(1)
	net := NewNetwork(sched, netmodel.Grid5000())
	src, _ := net.Attach("src", netmodel.Rennes)
	dst, _ := net.Attach("dst", netmodel.Sophia)
	dst.SetHandler(func(_ Addr, _ *message.Message) {})
	m := msgOf("payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(dst.Addr(), m)
		for sched.Pending() > 0 {
			sched.Step()
		}
	}
}

func TestSimPerPairFIFOOrdering(t *testing.T) {
	// Jitter must never reorder two messages between the same pair: the
	// modeled transport is connection-oriented (TCP), like JXTA's.
	sched := simnet.NewScheduler(3)
	net := NewNetwork(sched, netmodel.Grid5000())
	a, _ := net.Attach("fifo-a", netmodel.Rennes)
	b, _ := net.Attach("fifo-b", netmodel.Sophia)
	var got []string
	b.SetHandler(func(_ Addr, m *message.Message) {
		got = append(got, m.GetString("t", "body"))
	})
	const n = 200
	for i := 0; i < n; i++ {
		a.Send(b.Addr(), msgOf(string(rune('A'+i%26))))
	}
	sched.Run(time.Second)
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, s := range got {
		if s != string(rune('A'+i%26)) {
			t.Fatalf("reordered at %d", i)
		}
	}
}
