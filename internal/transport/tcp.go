package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"jxta/internal/message"
)

// maxFrame bounds a single TCP frame (16 MiB), mirroring the message
// decoder's own limits.
const maxFrame = 1 << 24

// helloName identifies the handshake element carrying the dialer's address.
const (
	helloNS   = "transport"
	helloName = "Hello"
)

// TCP is a real wire transport: each endpoint runs a listener; connections
// are dialed lazily, cached, and carry length-prefixed frames of
// message.Marshal bytes. The first frame on a dialed connection is a hello
// announcing the dialer's listen address, so the receiver can attribute
// inbound traffic to a peer address rather than an ephemeral port.
type TCP struct {
	listener net.Listener
	addr     Addr

	mu      sync.Mutex
	handler Handler
	conns   map[Addr]net.Conn
	closed  bool
	wg      sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

// ListenTCP binds a listener on the given host (host may be "127.0.0.1:0"
// for an ephemeral test port).
func ListenTCP(hostport string) (*TCP, error) {
	l, err := net.Listen("tcp", hostport)
	if err != nil {
		return nil, err
	}
	t := &TCP{
		listener: l,
		addr:     Addr("tcp://" + l.Addr().String()),
		conns:    make(map[Addr]net.Conn),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCP) Addr() Addr { return t.addr }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Close implements Transport: stops the listener, closes every cached
// connection and waits for reader goroutines to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	err := t.listener.Close()
	for _, c := range t.conns {
		c.Close()
	}
	t.conns = map[Addr]net.Conn{}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

// Send implements Transport.
func (t *TCP) Send(to Addr, msg *message.Message) error {
	conn, err := t.conn(to)
	if err != nil {
		return err
	}
	buf := message.GetBuffer()
	frame := msg.AppendMarshal(*buf)
	err = writeFrame(conn, frame)
	*buf = frame // keep the grown backing array for the pool
	message.PutBuffer(buf)
	if err != nil {
		// Connection went bad: drop it so the next send redials.
		t.dropConn(to, conn)
		return err
	}
	return nil
}

// conn returns a cached connection to the peer, dialing and handshaking if
// needed.
func (t *TCP) conn(to Addr) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	hostport, ok := stripScheme(to)
	if !ok {
		return nil, fmt.Errorf("%w: %s is not a tcp address", ErrUnknownPeer, to)
	}
	c, err := net.Dial("tcp", hostport)
	if err != nil {
		return nil, err
	}
	hello := message.New().AddString(helloNS, helloName, string(t.addr))
	if err := writeFrame(c, hello.Marshal()); err != nil {
		c.Close()
		return nil, err
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		// Lost a dial race; keep the existing connection.
		t.mu.Unlock()
		c.Close()
		return existing, nil
	}
	t.conns[to] = c
	t.wg.Add(1)
	go t.readLoop(to, c)
	t.mu.Unlock()
	return c, nil
}

func (t *TCP) dropConn(peer Addr, c net.Conn) {
	t.mu.Lock()
	if cur, ok := t.conns[peer]; ok && cur == c {
		delete(t.conns, peer)
	}
	t.mu.Unlock()
	c.Close()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.handshakeInbound(c)
	}
}

// handshakeInbound reads the hello frame from a dialer, registers the
// connection under the announced address, and enters the read loop.
func (t *TCP) handshakeInbound(c net.Conn) {
	defer t.wg.Done()
	frame, err := readFrame(c)
	if err != nil {
		c.Close()
		return
	}
	hello, err := message.Unmarshal(frame)
	if err != nil {
		c.Close()
		return
	}
	peer := Addr(hello.GetString(helloNS, helloName))
	if peer == "" {
		c.Close()
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return
	}
	if _, dup := t.conns[peer]; !dup {
		t.conns[peer] = c
	}
	t.wg.Add(1)
	t.mu.Unlock()
	t.readLoop(peer, c)
}

func (t *TCP) readLoop(peer Addr, c net.Conn) {
	defer t.wg.Done()
	defer t.dropConn(peer, c)
	for {
		frame, err := readFrame(c)
		if err != nil {
			return
		}
		msg, err := message.Unmarshal(frame)
		if err != nil {
			return // corrupt stream: drop the connection
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h(peer, msg)
		}
	}
}

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func stripScheme(a Addr) (string, bool) {
	const prefix = "tcp://"
	s := string(a)
	if len(s) <= len(prefix) || s[:len(prefix)] != prefix {
		return "", false
	}
	return s[len(prefix):], true
}
