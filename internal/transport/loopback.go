package transport

import (
	"fmt"
	"sync"

	"jxta/internal/message"
)

// Hub is an in-process loopback fabric for unit tests: zero latency,
// synchronous handler invocation on the sender's goroutine, thread-safe
// registry. Deliveries clone the message, preserving the no-shared-memory
// property of the real transports.
type Hub struct {
	mu    sync.Mutex
	nodes map[Addr]*Loop
}

// NewHub creates an empty loopback fabric.
func NewHub() *Hub { return &Hub{nodes: make(map[Addr]*Loop)} }

// Loop is a loopback endpoint.
type Loop struct {
	hub     *Hub
	addr    Addr
	mu      sync.Mutex
	handler Handler
	closed  bool
}

var _ Transport = (*Loop)(nil)

// Attach registers a new endpoint named loop://<name>.
func (h *Hub) Attach(name string) (*Loop, error) {
	addr := Addr("loop://" + name)
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.nodes[addr]; dup {
		return nil, fmt.Errorf("transport: duplicate loopback endpoint %s", addr)
	}
	l := &Loop{hub: h, addr: addr}
	h.nodes[addr] = l
	return l, nil
}

// Addr implements Transport.
func (l *Loop) Addr() Addr { return l.addr }

// SetHandler implements Transport.
func (l *Loop) SetHandler(h Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.handler = h
}

// Close implements Transport.
func (l *Loop) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.hub.mu.Lock()
	delete(l.hub.nodes, l.addr)
	l.hub.mu.Unlock()
	return nil
}

// Send implements Transport. Delivery is synchronous: the destination
// handler runs before Send returns, on the caller's goroutine. Tests relying
// on ordering should account for this reentrancy.
func (l *Loop) Send(to Addr, msg *message.Message) error {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	l.hub.mu.Lock()
	dst, ok := l.hub.nodes[to]
	l.hub.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	dst.mu.Lock()
	h := dst.handler
	dst.mu.Unlock()
	if h != nil {
		h(l.addr, msg.Clone())
	}
	return nil
}
