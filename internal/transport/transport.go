// Package transport moves JXTA messages between peers. Three
// implementations share one interface:
//
//   - Sim: the simulated Grid'5000 network (deterministic, virtual time,
//     per-receiver FIFO service queues) used by all large-scale experiments;
//   - TCP: a real wire transport (length-prefixed frames over TCP) proving
//     the protocol stack runs outside the simulator;
//   - Loopback: an in-process hub for unit tests.
package transport

import (
	"errors"

	"jxta/internal/message"
)

// Addr names a transport endpoint. Formats:
//
//	sim://<site>/<name>   simulated node
//	tcp://<host>:<port>   TCP listener
//	loop://<name>         loopback hub member
type Addr string

// Handler consumes an inbound message. The owning node must ensure the
// handler runs serialized with its other protocol callbacks (the simulator
// guarantees this; the TCP node wraps handlers in env.Locked).
type Handler func(src Addr, msg *message.Message)

// Transport is a bound endpoint able to send and receive messages.
type Transport interface {
	// Addr returns the endpoint's own address.
	Addr() Addr
	// Send transmits a message. Delivery is best-effort and asynchronous;
	// an error means the message could not even be handed to the network.
	Send(to Addr, msg *message.Message) error
	// SetHandler installs the inbound message consumer.
	SetHandler(h Handler)
	// Close releases the endpoint. Further Sends fail; queued inbound
	// deliveries are dropped.
	Close() error
}

// Errors shared by implementations.
var (
	ErrClosed      = errors.New("transport: endpoint closed")
	ErrUnknownPeer = errors.New("transport: unknown destination")
)
