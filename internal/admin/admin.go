// Package admin serves a live node's observability endpoints over HTTP:
//
//	/metrics       Prometheus text exposition of the node's registry
//	/healthz       liveness+readiness: 200 when started and connected
//	/statusz       JSON snapshot: health, trace ring, flattened metrics
//	/debug/pprof/  the standard Go profiler endpoints
//
// The server is a pure observer with the same serialization contract as
// the protocol code: every sample of protocol state (collector-backed
// gauges, health probes, status snapshots) runs inside Options.Locked, so
// scrapes interleave with the event loop instead of racing it. Encoding
// happens into a buffer under the lock and the response is written outside
// it, keeping slow scrapers off the protocol's critical path.
package admin

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"jxta/internal/metrics"
)

// Health is the node's liveness view, sampled under Options.Locked.
type Health struct {
	// Started reports the node lifecycle state.
	Started bool `json:"started"`
	// Role is "rendezvous" or "edge" (current, not deployed: promotions
	// flip it at runtime).
	Role string `json:"role"`
	// Connected is true for a started rendezvous, and for an edge holding
	// a live lease. A started but disconnected edge is alive yet not ready.
	Connected bool `json:"connected"`
	// Detail optionally names the lease holder or last transition.
	Detail string `json:"detail,omitempty"`
}

// Options wires a node into the admin server.
type Options struct {
	// Registry is encoded by /metrics and flattened into /statusz.
	Registry *metrics.Registry
	// Trace, when non-nil, is included in /statusz.
	Trace *metrics.Trace
	// Locked serializes sampling with the node's event loop (env.Real's
	// Locked on a live node). Nil means call directly.
	Locked func(func())
	// Health is sampled under Locked for /healthz and /statusz.
	Health func() Health
}

// Server is a running admin endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	opts Options
}

// locked runs fn under the node's serialization, if any.
func (s *Server) locked(fn func()) {
	if s.opts.Locked != nil {
		s.opts.Locked(fn)
		return
	}
	fn()
}

// Serve binds addr (host:port; port 0 picks one) and serves the admin
// endpoints until Close. Handlers run on a private mux, so the process's
// default mux stays untouched.
func Serve(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: %w", err)
	}
	s := &Server{ln: ln, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	// pprof handlers registered explicitly: importing net/http/pprof only
	// touches http.DefaultServeMux, which this server does not use.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (resolved port when addr was :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and open connections.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	s.locked(func() { s.opts.Registry.WritePrometheus(&buf) })
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var h Health
	s.locked(func() {
		if s.opts.Health != nil {
			h = s.opts.Health()
		}
	})
	if h.Started && h.Connected {
		fmt.Fprintf(w, "ok role=%s\n", h.Role)
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, "unhealthy started=%v connected=%v role=%s %s\n",
		h.Started, h.Connected, h.Role, h.Detail)
}

// statusz is the /statusz JSON document.
type statusz struct {
	Health  Health               `json:"health"`
	Metrics map[string]float64   `json:"metrics"`
	Trace   []metrics.TraceEvent `json:"trace,omitempty"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	var st statusz
	s.locked(func() {
		if s.opts.Health != nil {
			st.Health = s.opts.Health()
		}
		st.Metrics = s.opts.Registry.Snapshot()
		if s.opts.Trace != nil {
			st.Trace = s.opts.Trace.Events()
		}
	})
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}
