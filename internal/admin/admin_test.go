package admin

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"jxta/internal/metrics"
)

// get fetches path from the server and returns status and body.
func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("jxta_test_total", "Test counter.").Add(7)
	tr := metrics.NewTrace(8)
	tr.Record(3*time.Second, "lease-acquired", "rdv0")
	healthy := false
	locks := 0
	s, err := Serve("127.0.0.1:0", Options{
		Registry: reg,
		Trace:    tr,
		Locked:   func(fn func()) { locks++; fn() },
		Health: func() Health {
			return Health{Started: true, Role: "edge", Connected: healthy}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if code, body := get(t, s, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while disconnected: %d %q", code, body)
	}
	healthy = true
	if code, body := get(t, s, "/healthz"); code != http.StatusOK || !strings.Contains(body, "role=edge") {
		t.Fatalf("/healthz while connected: %d %q", code, body)
	}

	code, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if !strings.Contains(body, "# TYPE jxta_test_total counter") ||
		!strings.Contains(body, "jxta_test_total 7") {
		t.Fatalf("/metrics body missing series:\n%s", body)
	}

	code, body = get(t, s, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz: %d", code)
	}
	for _, want := range []string{`"jxta_test_total": 7`, `"lease-acquired"`, `"role": "edge"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/statusz missing %q:\n%s", want, body)
		}
	}

	if code, _ := get(t, s, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
	if locks == 0 {
		t.Fatal("handlers never took the serialization lock")
	}
}
