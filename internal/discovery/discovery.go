// Package discovery implements the JXTA peer discovery protocol and the
// Loosely-Consistent DHT (LC-DHT, §3.3 of the paper) it relies on.
//
// Publishing: an edge peer stores its advertisement locally, then pushes the
// advertisement's attribute table — tuples (Type+Attr+Value, publisher,
// lifetime) — to its rendezvous (SRDI push). The rendezvous keeps a copy
// and replicates each tuple to the replica peer computed by hashing the
// tuple over its local peerview: 2 messages total, the paper's O(1) publish.
//
// Discovery: a query travels edge → rendezvous (resolver protocol); the
// rendezvous answers from its own SRDI if it can, otherwise forwards to the
// computed replica peer; on a miss there (peerviews inconsistent, churn) the
// query walks the ID-ordered peerview in both directions — the O(r)
// fallback. Whoever finds a matching tuple forwards the query to the
// publishing peer, which sends the advertisement directly back to the
// requester: 4 messages end-to-end when property (2) holds.
package discovery

import (
	"errors"
	"strconv"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/cm"
	"jxta/internal/document"
	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/metrics"
	"jxta/internal/rendezvous"
	"jxta/internal/resolver"
	"jxta/internal/routing"
	"jxta/internal/srdi"
	"jxta/internal/transport"
)

// HandlerName is the resolver handler the discovery protocol registers.
const HandlerName = "urn:jxta:disco"

// SRDIService is the endpoint service receiving index pushes.
const SRDIService = "disco.srdi"

// Query lifecycle stages, carried in the query payload so each rendezvous
// knows its role in the pipeline.
const (
	stageInitial = "initial" // from the requesting peer to its rendezvous
	stageReplica = "replica" // forwarded to the computed replica peer
	stageDeliver = "deliver" // forwarded to the publishing peer

	// Range-query stages (the paper's §5 complex-query extension): ranges
	// cannot be hashed onto a replica, so they walk the whole peerview.
	stageRange        = "range"
	stageRangeDeliver = "range-deliver"
)

// Config tunes the discovery service.
type Config struct {
	// PushInterval is the SRDI delta-push period (paper: 30 s).
	PushInterval time.Duration
	// AdvLifetime is the default lifetime of published advertisements and
	// their index tuples.
	AdvLifetime time.Duration
	// WalkTTL bounds each direction of the fallback walk; zero means "walk
	// the whole peerview" (TTL = view size, the paper's O(r) worst case).
	WalkTTL int
	// ScanCost is the simulated processing time a rendezvous spends per
	// SRDI registration when serving one query — JXTA-C scans its index
	// linearly, which is what makes heavily loaded rendezvous slow in the
	// paper's configuration B. Zero disables cost modeling (unit tests).
	ScanCost time.Duration
	// DisableWalk turns the O(r) fallback walk off (ablation experiments
	// only): replica misses then go unanswered.
	DisableWalk bool
	// Router overrides replica placement: which peerview member holds (and
	// is asked for) a key's replica. Nil uses the paper's linear position
	// hash (ReplicaPeer). Publish and query sides both go through it, so
	// any pure function of (view, key) keeps property (2) intact.
	Router routing.Strategy
}

// DefaultConfig returns paper-faithful defaults. ScanCost is calibrated so
// that configuration B's ~1000-entry rendezvous adds the paper's ≈18 ms.
func DefaultConfig() Config {
	return Config{
		PushInterval: 30 * time.Second,
		AdvLifetime:  advertisement.DefaultExpiration,
		WalkTTL:      0,
		ScanCost:     4 * time.Microsecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PushInterval <= 0 {
		c.PushInterval = d.PushInterval
	}
	if c.AdvLifetime <= 0 {
		c.AdvLifetime = d.AdvLifetime
	}
	return c
}

// BusySink lets the service model local processing cost on its transport
// (implemented by transport.Sim; nil for real transports, where processing
// cost is real).
type BusySink interface {
	Busy(d time.Duration)
}

// Result delivers the outcome of a discovery query.
type Result struct {
	Advs    []advertisement.Advertisement
	From    ids.ID
	Elapsed time.Duration
	// Hops counts resolver forwards the query took before it was answered
	// (0: local cache hit or answered by the first-hop rendezvous), echoed
	// back by the resolver response. The routing bake-off reads it to
	// compare LC-DHT hop counts against the structured baselines.
	Hops int
}

// Stats counts discovery-protocol activity on this peer.
type Stats struct {
	QueriesSent      uint64
	QueriesHandled   uint64
	LocalHits        uint64 // answered from the rendezvous' own SRDI
	ReplicaForwards  uint64
	WalksStarted     uint64
	WalkHits         uint64
	Delivered        uint64 // queries answered by this peer as publisher
	TuplesReplicated uint64
}

// Errors.
var ErrNotConnected = errors.New("discovery: edge has no rendezvous lease")

// Service is one peer's discovery service.
type Service struct {
	env   env.Env
	ep    *endpoint.Endpoint
	res   *resolver.Service
	rdv   *rendezvous.Service
	cache *cm.Cache
	cfg   Config
	busy  BusySink

	index  *srdi.Index // rendezvous role only
	pushed map[string]bool
	ticker *env.Ticker

	// costTimers tracks in-flight SRDI scan-cost delays (handleQuery,
	// handleWalk) so Stop can cancel them — without this a stopped node
	// would still own pending callbacks and forward queries when they fire.
	costTimers map[uint64]env.Timer
	nextCostID uint64

	// seen dedups (src, qid) pairs at a rendezvous so the replica forward
	// and the walk cannot double-process one query.
	seen map[string]bool

	Stats Stats

	// m holds the stored runtime instruments; always non-nil (New
	// pre-instruments, node.New re-instruments with the node's registry).
	m *discoMetrics

	// frozen implements edge hibernation; see hibernate.go.
	frozen *discoFrozen
}

// New assembles the discovery service over the peer's resolver, rendezvous
// service and cache. busy may be nil.
func New(e env.Env, ep *endpoint.Endpoint, res *resolver.Service, rdvSvc *rendezvous.Service, cache *cm.Cache, cfg Config, busy BusySink) *Service {
	s := &Service{
		env:        e,
		ep:         ep,
		res:        res,
		rdv:        rdvSvc,
		cache:      cache,
		cfg:        cfg.withDefaults(),
		busy:       busy,
		pushed:     make(map[string]bool),
		costTimers: make(map[uint64]env.Timer),
		seen:       make(map[string]bool),
	}
	s.Instrument(metrics.Discard())
	res.RegisterHandler(HandlerName, s.handleQuery)
	// The SRDI push service and the walk handler are registered in both
	// roles — their handlers gate on the index existing — so a peer that is
	// promoted to rendezvous at runtime serves immediately.
	ep.Register(SRDIService, s.receiveSRDI)
	rdvSvc.SetWalkHandler(HandlerName, s.handleWalk)
	// A gracefully stopping rendezvous hands its SRDI off to the successor
	// as one standard (non-replica) push: the successor indexes every tuple
	// and re-replicates it over its own peerview.
	rdvSvc.SetStateExporter(s.exportIndex)
	if rdvSvc.IsRendezvous() {
		s.index = srdi.New(e)
	} else {
		// Re-push the whole index table when the edge (re)connects — the
		// paper notes edges publish their tuples whenever they connect to
		// a new rendezvous (§3.3).
		rdvSvc.AddLeaseListener(func(_ ids.ID, connected bool) {
			if connected {
				s.pushed = make(map[string]bool)
				s.pushAll()
			}
		})
	}
	return s
}

// Promote completes a node-level edge→rendezvous role switch: the service
// gains a fresh SRDI index, its periodic work flips from delta pushing to
// index GC, and the peer's own advertisements are republished into the new
// index (and replicated over the new peerview). Call after the rendezvous
// service switched roles.
func (s *Service) Promote() {
	s.thaw()
	if s.index != nil || !s.rdv.IsRendezvous() {
		return
	}
	s.index = srdi.New(s.env)
	if s.ticker != nil {
		// Swap the edge push ticker for the rendezvous GC ticker.
		s.ticker.Stop()
		s.ticker = nil
		s.Start()
	}
	s.pushed = make(map[string]bool)
	s.pushAll()
}

// Rereplicate re-runs replica placement for every fresh tuple in the local
// SRDI over the *current* peerview. The node calls it after an island
// merge changed the view: the replica function now maps keys onto merged
// members, so advertisements indexed on one island become discoverable
// through the O(1) replica path from the other. Pushes are batched one
// message per replica peer, in ascending tuple order, so the traffic is
// deterministic under a fixed seed. Tuples already marked replicated stay
// replicated at the receiver (no cascade).
func (s *Service) Rereplicate() {
	s.thaw()
	if !s.started() || s.index == nil || !s.rdv.IsRendezvous() {
		return
	}
	view := s.rdv.PeerView().View()
	batches := make(map[ids.ID]*message.Message)
	counts := make(map[ids.ID]uint64)
	var order []ids.ID // first-seen over sorted tuples: deterministic
	for _, tpl := range s.index.Tuples() {
		replica := s.place(view, tpl.Key)
		if replica.IsNil() || replica.Equal(s.ep.ID()) {
			continue
		}
		m, ok := batches[replica]
		if !ok {
			m = message.New()
			m.AddString("srdi", "Replicated", "1")
			batches[replica] = m
			order = append(order, replica)
		}
		m.Add("srdi", "Tuple", encodeTuple(tpl))
		counts[replica]++
	}
	for _, dst := range order {
		// Count only what actually left, mirroring indexAndReplicate.
		if s.ep.Send(dst, SRDIService, batches[dst]) == nil {
			s.Stats.TuplesReplicated += counts[dst]
		}
	}
}

// exportIndex serializes the SRDI for a graceful lease-state handoff.
func (s *Service) exportIndex() (string, []*message.Message) {
	if s.index == nil {
		return "", nil
	}
	tuples := s.index.Tuples()
	if len(tuples) == 0 {
		return "", nil
	}
	m := message.New()
	for _, tpl := range tuples {
		m.Add("srdi", "Tuple", encodeTuple(tpl))
	}
	return SRDIService, []*message.Message{m}
}

// Index exposes the SRDI (nil on edges); experiments read its size.
func (s *Service) Index() *srdi.Index { return s.index }

// Cache exposes the local advertisement cache.
func (s *Service) Cache() *cm.Cache { return s.cache }

// Start begins periodic SRDI pushing (edges) or index GC (rendezvous).
func (s *Service) Start() {
	if s.ticker != nil {
		return
	}
	if s.rdv.IsRendezvous() {
		s.ticker = env.NewTicker(s.env, s.cfg.PushInterval, func() { s.index.GC() })
		return
	}
	s.ticker = env.NewTicker(s.env, s.cfg.PushInterval, s.pushAll)
}

// afterCost schedules fn behind the modeled SRDI scan delay, tracked so
// Stop cancels it (cancellation only mutates bookkeeping, so map order
// does not matter for determinism).
func (s *Service) afterCost(d time.Duration, fn func()) {
	id := s.nextCostID
	s.nextCostID++
	s.costTimers[id] = s.env.After(d, func() {
		delete(s.costTimers, id)
		fn()
	})
}

// Stop halts periodic work and cancels in-flight scan-cost delays. Index
// and push state are retained; Reset discards them for a cold restart.
func (s *Service) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
	for id, t := range s.costTimers {
		t.Cancel()
		delete(s.costTimers, id)
	}
}

// Reset clears the soft protocol state for a cold restart: the SRDI index
// (a restarted rendezvous process starts empty; edges re-push on their next
// lease), the delta-push ledger (forcing a full re-push on reconnect) and
// the query dedup set. The local advertisement cache is application data
// and survives.
func (s *Service) Reset() {
	s.thaw()
	if s.index != nil {
		s.index = srdi.New(s.env)
	}
	s.pushed = make(map[string]bool)
	s.seen = make(map[string]bool)
}

// --- Publishing ---

// Publish stores an advertisement locally and pushes its index tuples to
// the rendezvous network. Lifetime zero uses the configured default.
func (s *Service) Publish(adv advertisement.Advertisement, lifetime time.Duration) {
	if lifetime <= 0 {
		lifetime = s.cfg.AdvLifetime
	}
	s.cache.Put(adv, lifetime, true)
	s.pushTuples(s.tuplesOf(adv, lifetime))
}

// FlushCache drops remotely discovered advertisements (the benchmark's
// per-query cache flush).
func (s *Service) FlushCache() { s.cache.Flush() }

func (s *Service) tuplesOf(adv advertisement.Advertisement, lifetime time.Duration) []srdi.Tuple {
	fields := adv.IndexFields()
	tuples := make([]srdi.Tuple, 0, len(fields))
	for _, f := range fields {
		tpl := srdi.Tuple{
			Key:           f.Key(adv.Type()),
			Publisher:     s.ep.ID(),
			PublisherAddr: s.ep.Addr(),
			Lifetime:      lifetime,
		}
		// Integer-valued fields also register in the numeric tier for
		// range queries.
		if v, err := strconv.ParseInt(f.Value, 10, 64); err == nil {
			tpl.NumAttr = adv.Type() + f.Attr
			tpl.NumValue = v
		}
		tuples = append(tuples, tpl)
	}
	return tuples
}

// pushAll re-sends tuples for every fresh local advertisement that has not
// been pushed to the current rendezvous yet (delta push; a fresh lease
// clears the set, forcing a full push).
func (s *Service) pushAll() {
	var pending []srdi.Tuple
	for _, adv := range s.cache.LocalAdvertisements() {
		for _, tpl := range s.tuplesOf(adv, s.cfg.AdvLifetime) {
			if !s.pushed[tpl.Key] {
				pending = append(pending, tpl)
			}
		}
	}
	if len(pending) > 0 {
		s.pushTuples(pending)
	}
}

// pushTuples delivers tuples to this peer's rendezvous tier: a rendezvous
// indexes (and replicates) directly; an edge sends one SRDI message to its
// lease holder.
func (s *Service) pushTuples(tuples []srdi.Tuple) {
	s.thaw()
	if len(tuples) == 0 {
		return
	}
	if s.rdv.IsRendezvous() {
		for _, tpl := range tuples {
			s.indexAndReplicate(tpl, false)
			s.pushed[tpl.Key] = true
		}
		return
	}
	rdvID, ok := s.rdv.ConnectedRdv()
	if !ok {
		return // pushAll retries on the next tick / lease
	}
	m := message.New()
	for _, tpl := range tuples {
		m.Add("srdi", "Tuple", encodeTuple(tpl))
	}
	if err := s.ep.Send(rdvID, SRDIService, m); err != nil {
		return
	}
	for _, tpl := range tuples {
		s.pushed[tpl.Key] = true
	}
}

func encodeTuple(t srdi.Tuple) []byte {
	doc := document.NewElement("srdi:Tuple").
		AppendText("Key", t.Key).
		AppendText("Pub", t.Publisher.String()).
		AppendText("Addr", string(t.PublisherAddr)).
		AppendText("Life", strconv.FormatInt(int64(t.Lifetime), 10))
	if t.NumAttr != "" {
		doc.AppendText("NA", t.NumAttr)
		doc.AppendText("NV", strconv.FormatInt(t.NumValue, 10))
	}
	data, err := doc.Marshal()
	if err != nil {
		return nil
	}
	return data
}

func decodeTuple(data []byte) (srdi.Tuple, error) {
	doc, err := document.Unmarshal(data)
	if err != nil {
		return srdi.Tuple{}, err
	}
	pub, err := ids.Parse(doc.ChildText("Pub"))
	if err != nil {
		return srdi.Tuple{}, err
	}
	life, err := strconv.ParseInt(doc.ChildText("Life"), 10, 64)
	if err != nil {
		return srdi.Tuple{}, err
	}
	tpl := srdi.Tuple{
		Key:           doc.ChildText("Key"),
		Publisher:     pub,
		PublisherAddr: transport.Addr(doc.ChildText("Addr")),
		Lifetime:      time.Duration(life),
	}
	if na := doc.ChildText("NA"); na != "" {
		nv, err := strconv.ParseInt(doc.ChildText("NV"), 10, 64)
		if err != nil {
			return srdi.Tuple{}, err
		}
		tpl.NumAttr = na
		tpl.NumValue = nv
	}
	return tpl, nil
}

// started reports whether the service is running (ticker armed by Start);
// the inbound handlers are gated on it so a stopped peer neither indexes,
// routes, answers nor arms scan-cost timers — it is silent until restarted.
func (s *Service) started() bool { return s.ticker != nil }

// receiveSRDI handles index pushes at a rendezvous. Replicated pushes are
// stored but not re-replicated (loop guard).
func (s *Service) receiveSRDI(src ids.ID, m *message.Message) {
	s.thaw()
	if !s.started() || s.index == nil {
		return
	}
	replicated := m.GetString("srdi", "Replicated") == "1"
	for _, el := range m.Elements() {
		if el.Namespace != "srdi" || el.Name != "Tuple" {
			continue
		}
		tpl, err := decodeTuple(el.Data)
		if err != nil {
			continue
		}
		s.indexAndReplicate(tpl, replicated)
	}
}

// indexAndReplicate stores a tuple and, unless it already is a replica copy,
// forwards it to the replica peer computed over the local peerview — the
// second (and last) message of the paper's O(1) publish path.
func (s *Service) indexAndReplicate(tpl srdi.Tuple, replicated bool) {
	s.index.Add(tpl)
	if tpl.NumAttr != "" {
		s.index.AddNumeric(tpl.NumAttr, tpl.NumValue, tpl.Publisher,
			tpl.PublisherAddr, tpl.Lifetime)
	}
	if replicated {
		return
	}
	view := s.rdv.PeerView().View()
	replica := s.place(view, tpl.Key)
	if replica.IsNil() || replica.Equal(s.ep.ID()) {
		return
	}
	m := message.New()
	m.AddString("srdi", "Replicated", "1")
	m.Add("srdi", "Tuple", encodeTuple(tpl))
	if err := s.ep.Send(replica, SRDIService, m); err == nil {
		s.Stats.TuplesReplicated++
	}
}

// --- Discovery ---

// Query searches the overlay for advertisements of advType whose attr equals
// value. The local cache is consulted first; a remote query is issued on a
// miss. cb receives every response; onTimeout (optional) fires if nothing
// came back within the resolver timeout.
func (s *Service) Query(advType, attr, value string, cb func(Result), onTimeout func()) error {
	return s.query(advType, attr, value, true, cb, onTimeout)
}

// QueryRemote is Query without the local-cache shortcut: the query always
// travels the overlay, so Result.From identifies the live publisher. Pipe
// binding depends on this — a cached pipe advertisement names the pipe but
// not its binder, and binding must find who currently has it bound.
func (s *Service) QueryRemote(advType, attr, value string, cb func(Result), onTimeout func()) error {
	return s.query(advType, attr, value, false, cb, onTimeout)
}

func (s *Service) query(advType, attr, value string, useCache bool, cb func(Result), onTimeout func()) error {
	if useCache {
		if local := s.cache.Search(advType, attr, value); len(local) > 0 {
			res := Result{Advs: local, From: s.ep.ID()}
			s.env.After(0, func() { cb(res) })
			return nil
		}
	}
	target := s.ep.ID() // a rendezvous acts as its own rendezvous
	if !s.rdv.IsRendezvous() {
		rdvID, ok := s.rdv.ConnectedRdv()
		if !ok {
			return ErrNotConnected
		}
		target = rdvID
	}
	payload := encodeQuery(advType, attr, value, stageInitial)
	start := s.env.Now()
	s.Stats.QueriesSent++
	_, err := s.res.SendQuery(target, HandlerName, payload,
		func(data []byte, from ids.ID, hops int) {
			advs := decodeResponse(data)
			for _, adv := range advs {
				s.cache.Put(adv, advertisement.DefaultExpiration, false)
			}
			elapsed := s.env.Now() - start
			s.m.queryLatency.Observe(elapsed.Seconds())
			cb(Result{Advs: advs, From: from, Elapsed: elapsed, Hops: hops})
		},
		func(uint64) {
			if onTimeout != nil {
				onTimeout()
			}
		})
	return err
}

// QueryRange searches the overlay for advertisements of advType whose attr
// is an integer within [lo, hi] — the complex-query extension of the
// paper's §5. Ranges cannot be hashed onto a single replica, so the query
// walks the whole peerview; every rendezvous with matching numeric
// registrations forwards it to the publishers, and each publisher answers
// directly. cb fires per responder.
func (s *Service) QueryRange(advType, attr string, lo, hi int64, cb func(Result), onTimeout func()) error {
	if local := s.cache.SearchRange(advType, attr, lo, hi); len(local) > 0 {
		res := Result{Advs: local, From: s.ep.ID()}
		s.env.After(0, func() { cb(res) })
		return nil
	}
	target := s.ep.ID()
	if !s.rdv.IsRendezvous() {
		rdvID, ok := s.rdv.ConnectedRdv()
		if !ok {
			return ErrNotConnected
		}
		target = rdvID
	}
	payload := encodeRangeQuery(advType, attr, lo, hi, stageRange)
	start := s.env.Now()
	s.Stats.QueriesSent++
	_, err := s.res.SendQuery(target, HandlerName, payload,
		func(data []byte, from ids.ID, hops int) {
			advs := decodeResponse(data)
			for _, adv := range advs {
				s.cache.Put(adv, advertisement.DefaultExpiration, false)
			}
			elapsed := s.env.Now() - start
			s.m.queryLatency.Observe(elapsed.Seconds())
			cb(Result{Advs: advs, From: from, Elapsed: elapsed, Hops: hops})
		},
		func(uint64) {
			if onTimeout != nil {
				onTimeout()
			}
		})
	return err
}

func encodeQuery(advType, attr, value, stage string) []byte {
	doc := document.NewElement("disco:Q").
		AppendText("Type", advType).
		AppendText("Attr", attr).
		AppendText("Value", value).
		AppendText("Stage", stage)
	data, err := doc.Marshal()
	if err != nil {
		return nil
	}
	return data
}

type queryBody struct {
	advType, attr, value, stage string
	lo, hi                      int64 // range stages only
}

func (b queryBody) isRange() bool {
	return b.stage == stageRange || b.stage == stageRangeDeliver
}

func decodeQuery(data []byte) (queryBody, error) {
	doc, err := document.Unmarshal(data)
	if err != nil {
		return queryBody{}, err
	}
	b := queryBody{
		advType: doc.ChildText("Type"),
		attr:    doc.ChildText("Attr"),
		value:   doc.ChildText("Value"),
		stage:   doc.ChildText("Stage"),
	}
	if b.isRange() {
		if b.lo, err = strconv.ParseInt(doc.ChildText("Lo"), 10, 64); err != nil {
			return queryBody{}, err
		}
		if b.hi, err = strconv.ParseInt(doc.ChildText("Hi"), 10, 64); err != nil {
			return queryBody{}, err
		}
	}
	return b, nil
}

func encodeRangeQuery(advType, attr string, lo, hi int64, stage string) []byte {
	doc := document.NewElement("disco:Q").
		AppendText("Type", advType).
		AppendText("Attr", attr).
		AppendText("Stage", stage).
		AppendText("Lo", strconv.FormatInt(lo, 10)).
		AppendText("Hi", strconv.FormatInt(hi, 10))
	data, err := doc.Marshal()
	if err != nil {
		return nil
	}
	return data
}

func encodeResponse(advs []advertisement.Advertisement) []byte {
	doc := document.NewElement("disco:R")
	for _, adv := range advs {
		doc.Append(adv.Document())
	}
	data, err := doc.Marshal()
	if err != nil {
		return nil
	}
	return data
}

func decodeResponse(data []byte) []advertisement.Advertisement {
	doc, err := document.Unmarshal(data)
	if err != nil {
		return nil
	}
	var advs []advertisement.Advertisement
	for _, child := range doc.Children {
		if adv, err := advertisement.Decode(child); err == nil {
			advs = append(advs, adv)
		}
	}
	return advs
}

// handleQuery is the resolver handler running on every peer.
func (s *Service) handleQuery(q *resolver.Query) {
	s.thaw()
	if !s.started() {
		return // stopped peers do not serve or route queries
	}
	body, err := decodeQuery(q.Payload)
	if err != nil {
		return
	}
	s.Stats.QueriesHandled++
	if body.stage == stageDeliver || body.stage == stageRangeDeliver || !s.rdv.IsRendezvous() {
		// We are (believed to be) the publisher: answer from the local
		// cache, directly to the requester.
		s.deliver(q, body)
		return
	}
	// Rendezvous pipeline. Model the SRDI scan cost, then continue.
	cost := time.Duration(s.index.Size()) * s.cfg.ScanCost
	if cost > 0 && s.busy != nil {
		s.busy.Busy(cost)
	}
	if cost > 0 {
		s.afterCost(cost, func() { s.routeQuery(q, body) })
		return
	}
	s.routeQuery(q, body)
}

// deliver answers a query from the local cache. Duplicate deliveries of the
// same query (a range walk can reach this publisher through several
// rendezvous) are answered once.
func (s *Service) deliver(q *resolver.Query, body queryBody) {
	dedup := "dlv/" + q.Src.String() + "/" + strconv.FormatUint(q.QID, 10)
	if s.seen[dedup] {
		return
	}
	s.seen[dedup] = true
	if len(s.seen) > 16384 {
		s.seen = make(map[string]bool)
	}
	var matches []advertisement.Advertisement
	if body.isRange() {
		matches = s.cache.SearchRange(body.advType, body.attr, body.lo, body.hi)
	} else {
		matches = s.cache.Search(body.advType, body.attr, body.value)
	}
	if len(matches) == 0 {
		return // nothing to say; the requester times out or hears others
	}
	s.Stats.Delivered++
	_ = s.res.Respond(q, encodeResponse(matches))
}

// routeQuery runs the rendezvous-side LC-DHT logic.
func (s *Service) routeQuery(q *resolver.Query, body queryBody) {
	dedup := q.Src.String() + "/" + strconv.FormatUint(q.QID, 10)
	if s.seen[dedup] {
		return
	}
	s.seen[dedup] = true
	if len(s.seen) > 16384 {
		s.seen = make(map[string]bool)
	}

	if body.stage == stageRange {
		s.routeRange(q, body)
		return
	}

	key := body.advType + body.attr + body.value

	// 1. Local index hit: forward straight to the publisher(s).
	if pubs := s.index.Publishers(key); len(pubs) > 0 {
		s.Stats.LocalHits++
		s.forwardToPublishers(q, body, pubs)
		return
	}
	// Also serve from the local advertisement cache (a rendezvous can
	// publish its own advertisements).
	if matches := s.cache.Search(body.advType, body.attr, body.value); len(matches) > 0 {
		s.Stats.Delivered++
		_ = s.res.Respond(q, encodeResponse(matches))
		return
	}

	// 2. Initial stage: forward to the computed replica peer.
	if body.stage == stageInitial {
		view := s.rdv.PeerView().View()
		replica := s.place(view, key)
		if !replica.IsNil() && !replica.Equal(s.ep.ID()) {
			s.Stats.ReplicaForwards++
			fq := *q
			fq.Payload = encodeQuery(body.advType, body.attr, body.value, stageReplica)
			_ = s.res.Forward(&fq, replica)
			return
		}
		// We are the replica ourselves: fall through to the walk.
	}

	// 3. Replica miss: walk the peerview in both directions (§3.3).
	if s.cfg.DisableWalk {
		return
	}
	s.startWalk(q, body)
}

// routeRange serves the rendezvous side of a range query: forward to every
// locally known matching publisher, then walk the whole view in both
// directions so every rendezvous gets the same chance. Range queries never
// use the replica shortcut — there is no single hash to route by.
func (s *Service) routeRange(q *resolver.Query, body queryBody) {
	if pubs := s.index.RangePublishers(body.advType+body.attr, body.lo, body.hi); len(pubs) > 0 {
		s.Stats.LocalHits++
		s.forwardToPublishers(q, body, pubs)
	}
	if matches := s.cache.SearchRange(body.advType, body.attr, body.lo, body.hi); len(matches) > 0 {
		s.Stats.Delivered++
		_ = s.res.Respond(q, encodeResponse(matches))
	}
	if !s.cfg.DisableWalk {
		s.startWalk(q, body)
	}
}

func (s *Service) forwardToPublishers(q *resolver.Query, body queryBody, pubs []srdi.Tuple) {
	fq := *q
	if body.isRange() {
		fq.Payload = encodeRangeQuery(body.advType, body.attr, body.lo, body.hi, stageRangeDeliver)
	} else {
		fq.Payload = encodeQuery(body.advType, body.attr, body.value, stageDeliver)
	}
	for _, pub := range pubs {
		if pub.Publisher.Equal(s.ep.ID()) {
			// We published it ourselves; answer directly.
			s.deliver(q, body)
			continue
		}
		s.ep.AddRoute(pub.Publisher, pub.PublisherAddr)
		_ = s.res.Forward(&fq, pub.Publisher)
	}
}

// startWalk launches the up and down walks carrying the resolver query.
func (s *Service) startWalk(q *resolver.Query, body queryBody) {
	ttl := s.cfg.WalkTTL
	if ttl <= 0 {
		ttl = s.rdv.PeerView().Size() + 1
	}
	s.Stats.WalksStarted++
	wm := message.New()
	wm.AddString("disco", "QID", strconv.FormatUint(q.QID, 10))
	wm.AddString("disco", "Src", q.Src.String())
	wm.AddString("disco", "SrcAddr", string(q.SrcAddr))
	wm.AddString("disco", "Hops", strconv.Itoa(q.Hops))
	if body.isRange() {
		wm.AddString("disco", "Range", "1")
	} else {
		wm.AddString("disco", "Key", body.advType+body.attr+body.value)
	}
	wm.Add("disco", "Payload", q.Payload)
	s.rdv.Walk(rendezvous.Up, ttl, HandlerName, wm)
	s.rdv.Walk(rendezvous.Down, ttl, HandlerName, wm)
}

// handleWalk inspects a walked query at each visited rendezvous: on an SRDI
// hit the query is forwarded to the publisher and the walk stops.
func (s *Service) handleWalk(origin ids.ID, dir rendezvous.Direction, bodyMsg *message.Message) bool {
	s.thaw()
	if !s.started() || s.index == nil {
		return false
	}
	key := bodyMsg.GetString("disco", "Key")
	isRange := bodyMsg.GetString("disco", "Range") == "1"
	if key == "" && !isRange {
		return false
	}
	cost := time.Duration(s.index.Size()) * s.cfg.ScanCost
	if cost > 0 && s.busy != nil {
		s.busy.Busy(cost)
	}
	var pubs []srdi.Tuple
	var rangeBody queryBody
	if isRange {
		payload, _ := bodyMsg.Get("disco", "Payload")
		var err error
		rangeBody, err = decodeQuery(payload)
		if err != nil {
			return false
		}
		pubs = s.index.RangePublishers(rangeBody.advType+rangeBody.attr,
			rangeBody.lo, rangeBody.hi)
	} else {
		pubs = s.index.Publishers(key)
	}
	if len(pubs) == 0 {
		return false // keep walking
	}
	s.Stats.WalkHits++
	qid, err := strconv.ParseUint(bodyMsg.GetString("disco", "QID"), 10, 64)
	if err != nil {
		return true
	}
	src, err := ids.Parse(bodyMsg.GetString("disco", "Src"))
	if err != nil {
		return true
	}
	hops, _ := strconv.Atoi(bodyMsg.GetString("disco", "Hops"))
	payload, _ := bodyMsg.Get("disco", "Payload")
	body, err := decodeQuery(payload)
	if err != nil {
		return true
	}
	q := &resolver.Query{
		Handler: HandlerName,
		QID:     qid,
		Src:     src,
		SrcAddr: transport.Addr(bodyMsg.GetString("disco", "SrcAddr")),
		Hops:    hops + 1,
		Payload: payload,
	}
	if cost > 0 {
		s.afterCost(cost, func() { s.forwardToPublishers(q, body, pubs) })
	} else {
		s.forwardToPublishers(q, body, pubs)
	}
	// Exact-match walks stop at the first hit; range walks must visit the
	// whole view so every matching publisher is reached.
	return !isRange
}
