package discovery

import (
	"jxta/internal/env"
	"jxta/internal/hibpool"
)

// Edge hibernation (PR 9). A steady-state edge's discovery service keeps
// its push ticker armed (the periodic wake source) but otherwise retains
// only three maps: the delta-push ledger, the query dedup set and the
// scan-cost timer table (empty when quiescent). Freeze packs the ledger
// and dedup keys into a pooled record and releases the shells. pushAll
// ticks on a frozen edge never touch them — an edge with local
// advertisements has a non-empty cache and is never frozen — so the
// 30-second ticker does not thrash the freeze.

// discoFrozen is the freeze-dried service: the push-ledger and dedup keys.
type discoFrozen struct {
	pushed []string
	seen   []string
}

var (
	discoFrozenPool = hibpool.Records[discoFrozen]{Reset: func(f *discoFrozen) {
		clear(f.pushed)
		f.pushed = f.pushed[:0]
		clear(f.seen)
		f.seen = f.seen[:0]
	}}
	discoPushedPool hibpool.Maps[string, bool]
	discoSeenPool   hibpool.Maps[string, bool]
	discoCostPool   hibpool.Maps[uint64, env.Timer]
)

// Quiescent reports whether the service can be frozen: edge role (no SRDI
// index) and no in-flight scan-cost delays.
func (s *Service) Quiescent() bool {
	return s.index == nil && len(s.costTimers) == 0
}

// Freeze packs the service's maps into a pooled record. Caller must have
// checked Quiescent. Idempotent.
func (s *Service) Freeze() {
	if s.frozen != nil {
		return
	}
	f := discoFrozenPool.Get()
	for k := range s.pushed {
		f.pushed = append(f.pushed, k)
	}
	for k := range s.seen {
		f.seen = append(f.seen, k)
	}
	discoPushedPool.Put(s.pushed)
	discoSeenPool.Put(s.seen)
	discoCostPool.Put(s.costTimers)
	s.pushed = nil
	s.seen = nil
	s.costTimers = nil
	s.frozen = f
}

// thaw rehydrates a frozen service; a single nil check when live.
func (s *Service) thaw() {
	if s.frozen == nil {
		return
	}
	f := s.frozen
	s.frozen = nil
	s.pushed = discoPushedPool.Get()
	for _, k := range f.pushed {
		s.pushed[k] = true
	}
	s.seen = discoSeenPool.Get()
	for _, k := range f.seen {
		s.seen[k] = true
	}
	s.costTimers = discoCostPool.Get()
	discoFrozenPool.Put(f)
}

// Frozen reports whether the service is currently freeze-dried (tests).
func (s *Service) Frozen() bool { return s.frozen != nil }
