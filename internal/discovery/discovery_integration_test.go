package discovery_test

import (
	"fmt"
	"testing"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/deploy"
	"jxta/internal/discovery"
	"jxta/internal/ids"
	"jxta/internal/netmodel"
	"jxta/internal/node"
	"jxta/internal/peerview"
	"jxta/internal/rendezvous"
	"jxta/internal/srdi"
	"jxta/internal/topology"
)

// buildOverlay deploys r rendezvous + 2 edges (publisher on rdv0, searcher
// on the last rdv), lets peerviews converge and leases settle.
func buildOverlay(t testing.TB, r int, seed int64, converge time.Duration) (*deploy.Overlay, *node.Node, *node.Node) {
	t.Helper()
	o, err := deploy.Build(deploy.Spec{
		Seed:     seed,
		NumRdv:   r,
		Topology: topology.Chain,
		Edges: []deploy.EdgeGroup{
			{AttachTo: 0, Count: 1, Prefix: "publisher"},
			{AttachTo: r - 1, Count: 1, Prefix: "searcher"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	o.StartAll()
	o.Sched.Run(converge)
	return o, o.Edges[0], o.Edges[1]
}

func TestPublishAndDiscoverAcrossOverlay(t *testing.T) {
	o, pub, search := buildOverlay(t, 6, 1, 10*time.Minute)
	adv := &advertisement.Peer{PeerID: pub.ID, Name: "Test",
		Addresses: []string{string(pub.Endpoint.Addr())}}
	pub.Discovery.Publish(adv, 0)
	o.Sched.Run(o.Sched.Now() + time.Minute) // SRDI push + replication

	var got *discovery.Result
	err := search.Discovery.Query("Peer", "Name", "Test", func(r discovery.Result) {
		got = &r
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o.Sched.Run(o.Sched.Now() + time.Minute)
	if got == nil {
		t.Fatal("discovery never completed")
	}
	if len(got.Advs) != 1 {
		t.Fatalf("got %d advertisements", len(got.Advs))
	}
	p, ok := got.Advs[0].(*advertisement.Peer)
	if !ok || p.Name != "Test" || !p.PeerID.Equal(pub.ID) {
		t.Fatalf("wrong advertisement: %+v", got.Advs[0])
	}
	if !got.From.Equal(pub.ID) {
		t.Fatalf("response came from %s, want the publisher", got.From.Short())
	}
	if got.Elapsed <= 0 {
		t.Fatal("elapsed time not measured")
	}
}

func TestPublishMessageComplexity(t *testing.T) {
	// §3.3: publish is O(1) — at most 2 messages (edge -> rdv -> replica).
	o, pub, _ := buildOverlay(t, 6, 2, 10*time.Minute)
	o.Net.ResetStats()
	adv := &advertisement.Peer{PeerID: pub.ID, Name: "Complexity"}
	pub.Discovery.Publish(adv, 0)
	o.Sched.Run(o.Sched.Now() + 10*time.Second)
	// The peerview keeps gossiping during the window; count only SRDI and
	// related push messages by using a quiet protocol overlay instead:
	// tolerate the background and assert the *publish-specific* bound via
	// the publisher's stats.
	msgs := o.Net.Stats().Messages
	// Peer adv has 2 index fields, each field may replicate once:
	// edge->rdv (1) + up to 2 replications = 3 messages upper bound.
	// Background peerview traffic in 10s: each rdv sends <= ~6 msgs per
	// 30s round; allow a generous envelope and verify we did not flood.
	if msgs > 60 {
		t.Fatalf("publish generated %d messages, expected a handful", msgs)
	}
	if pub.Discovery.Stats.QueriesSent != 0 {
		t.Fatal("publish issued queries")
	}
}

func TestConsistentLookupUsesNoWalk(t *testing.T) {
	o, pub, search := buildOverlay(t, 8, 3, 12*time.Minute)
	pub.Discovery.Publish(&advertisement.Peer{PeerID: pub.ID, Name: "Test"}, 0)
	o.Sched.Run(o.Sched.Now() + time.Minute)
	done := false
	search.Discovery.Query("Peer", "Name", "Test", func(discovery.Result) { done = true }, nil)
	o.Sched.Run(o.Sched.Now() + time.Minute)
	if !done {
		t.Fatal("query failed")
	}
	var walks uint64
	for _, r := range o.Rdvs {
		walks += r.Discovery.Stats.WalksStarted
	}
	if walks != 0 {
		t.Fatalf("consistent overlay still walked %d times", walks)
	}
}

func TestWalkFallbackFindsMisplacedTuple(t *testing.T) {
	o, _, search := buildOverlay(t, 8, 4, 12*time.Minute)
	// Choose a key whose replica is NOT rdv2, then plant the tuple only on
	// rdv2's index: the replica lookup must miss and the walk must find it.
	holder := o.Rdvs[2]
	view := holder.PeerView.View()
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("misplaced%d", i)
		if !discovery.ReplicaPeer(view, "Resource"+"Name"+key).Equal(holder.ID) {
			break
		}
	}
	// The "publisher" is the searcher edge, holding the advertisement as a
	// non-local cache entry: the deliver stage can answer from it, but the
	// SRDI pusher will not advertise it — so the only index entry in the
	// whole overlay is the one planted on the wrong rendezvous below.
	adv := &advertisement.Resource{ResID: ids.FromName(ids.KindAdv, key), Name: key}
	search.Cache.Put(adv, 0, false)
	holder.Discovery.Index().Add(srdi.Tuple{
		Key:           "ResourceName" + key,
		Publisher:     search.ID,
		PublisherAddr: search.Endpoint.Addr(),
	})
	var got *discovery.Result
	// Query through a different edge so the searcher acts purely as the
	// publisher side.
	other, err := o.AddEdge("probe", 4)
	if err != nil {
		t.Fatal(err)
	}
	other.Start()
	o.Sched.Run(o.Sched.Now() + time.Minute) // lease
	err = other.Discovery.Query("Resource", "Name", key, func(r discovery.Result) {
		got = &r
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o.Sched.Run(o.Sched.Now() + 2*time.Minute)
	if got == nil {
		t.Fatal("walk fallback never delivered the advertisement")
	}
	var walks, walkHits uint64
	for _, r := range o.Rdvs {
		walks += r.Discovery.Stats.WalksStarted
		walkHits += r.Discovery.Stats.WalkHits
	}
	if walks == 0 || walkHits == 0 {
		t.Fatalf("walks=%d hits=%d, expected the fallback path", walks, walkHits)
	}
}

func TestLocalCacheHitAndFlush(t *testing.T) {
	o, pub, search := buildOverlay(t, 4, 5, 10*time.Minute)
	pub.Discovery.Publish(&advertisement.Peer{PeerID: pub.ID, Name: "Test"}, 0)
	o.Sched.Run(o.Sched.Now() + time.Minute)
	first := false
	search.Discovery.Query("Peer", "Name", "Test", func(discovery.Result) { first = true }, nil)
	o.Sched.Run(o.Sched.Now() + time.Minute)
	if !first {
		t.Fatal("first query failed")
	}
	// Second query: cached, answered locally with zero elapsed time.
	var second *discovery.Result
	search.Discovery.Query("Peer", "Name", "Test", func(r discovery.Result) { second = &r }, nil)
	o.Sched.Run(o.Sched.Now() + time.Second)
	if second == nil || !second.From.Equal(search.ID) || second.Elapsed != 0 {
		t.Fatalf("cached query not served locally: %+v", second)
	}
	// After a flush the query must travel again.
	search.Discovery.FlushCache()
	var third *discovery.Result
	search.Discovery.Query("Peer", "Name", "Test", func(r discovery.Result) { third = &r }, nil)
	o.Sched.Run(o.Sched.Now() + time.Minute)
	if third == nil || third.From.Equal(search.ID) || third.Elapsed == 0 {
		t.Fatalf("post-flush query did not travel: %+v", third)
	}
}

func TestQueryForMissingResourceTimesOut(t *testing.T) {
	o, _, search := buildOverlay(t, 4, 6, 10*time.Minute)
	timedOut := false
	search.Discovery.Query("Peer", "Name", "Nonexistent",
		func(discovery.Result) { t.Error("response for missing resource") },
		func() { timedOut = true })
	o.Sched.Run(o.Sched.Now() + 2*time.Minute)
	if !timedOut {
		t.Fatal("missing-resource query never timed out")
	}
}

func TestDisconnectedEdgeQueryFails(t *testing.T) {
	o, err := deploy.Build(deploy.Spec{Seed: 7, NumRdv: 1, Topology: topology.Chain,
		Edges: []deploy.EdgeGroup{{AttachTo: 0, Count: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	// Do not start anything: no lease.
	edge := o.Edges[0]
	err = edge.Discovery.Query("Peer", "Name", "Test", func(discovery.Result) {}, nil)
	if err != discovery.ErrNotConnected {
		t.Fatalf("err = %v, want ErrNotConnected", err)
	}
}

func TestRepublishAfterRdvFailover(t *testing.T) {
	// The publisher's rendezvous dies. The edge must fail over to its
	// backup seed, re-push its SRDI table, and stay discoverable — the
	// paper's §3.3 note that edges publish their tuples whenever they
	// connect to a new rendezvous.
	o, err := deploy.Build(deploy.Spec{
		Seed:     9,
		NumRdv:   4,
		Topology: topology.Chain,
		Lease: rendezvous.Config{
			LeaseDuration:   2 * time.Minute,
			ResponseTimeout: 10 * time.Second,
		},
		Edges: []deploy.EdgeGroup{{AttachTo: 3, Count: 1, Prefix: "searcher"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	o.StartAll()
	o.Sched.Run(10 * time.Minute)

	// A dual-seed publisher, built directly (deploy.AddEdge wires one seed).
	e := o.Sched.NewEnv("pub2")
	tr, err := o.Net.Attach("pub2", netmodel.Rennes)
	if err != nil {
		t.Fatal(err)
	}
	pub := node.New(e, tr, node.Config{
		Name:  "pub2",
		Role:  node.Edge,
		Seeds: []peerview.Seed{o.Rdvs[1].Seed(), o.Rdvs[2].Seed()},
		Lease: rendezvous.Config{
			LeaseDuration:   2 * time.Minute,
			ResponseTimeout: 10 * time.Second,
		},
	})
	pub.Start()
	o.Sched.Run(o.Sched.Now() + time.Minute)
	if rdv, ok := pub.Rendezvous.ConnectedRdv(); !ok || !rdv.Equal(o.Rdvs[1].ID) {
		t.Fatal("publisher not connected to its first seed")
	}
	pub.Discovery.Publish(&advertisement.Peer{PeerID: pub.ID, Name: "Survivor"}, 0)
	o.Sched.Run(o.Sched.Now() + time.Minute)

	// Kill the publisher's rendezvous; wait past lease renewal + failover.
	o.KillRdv(1)
	o.Sched.Run(o.Sched.Now() + 25*time.Minute)
	if rdv, ok := pub.Rendezvous.ConnectedRdv(); !ok || !rdv.Equal(o.Rdvs[2].ID) {
		got := "none"
		if ok {
			got = rdv.Short()
		}
		t.Fatalf("publisher did not fail over (connected to %s)", got)
	}

	searcher := o.Edges[0]
	searcher.Discovery.FlushCache()
	var got *discovery.Result
	searcher.Discovery.Query("Peer", "Name", "Survivor", func(r discovery.Result) {
		got = &r
	}, nil)
	o.Sched.Run(o.Sched.Now() + 2*time.Minute)
	if got == nil || len(got.Advs) == 0 {
		t.Fatal("resource not discoverable after rendezvous failover")
	}
}

func TestWalkTTLBoundsSearchRadius(t *testing.T) {
	// With WalkTTL=1 the fallback walk only reaches the immediate
	// neighbours of the replica; a tuple planted far away stays invisible.
	o, err := deploy.Build(deploy.Spec{
		Seed:     31,
		NumRdv:   10,
		Topology: topology.Chain,
		Discovery: discovery.Config{
			WalkTTL: 1,
		},
		Edges: []deploy.EdgeGroup{
			{AttachTo: 0, Count: 1, Prefix: "holder"},
			{AttachTo: 9, Count: 1, Prefix: "probe"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	o.StartAll()
	o.Sched.Run(12 * time.Minute)
	holderEdge, probe := o.Edges[0], o.Edges[1]

	// Find the ID-order extremes of the rendezvous view; planting the
	// tuple at one end while the replica is at least 3 positions away
	// guarantees a TTL-1 walk cannot bridge the gap.
	view := o.Rdvs[0].PeerView.View()
	byID := map[string]*node.Node{}
	for _, r := range o.Rdvs {
		byID[r.ID.String()] = r
	}
	ends := []*node.Node{byID[view[0].String()], byID[view[len(view)-1].String()]}
	var key string
	var holder *node.Node
	for i := 0; ; i++ {
		key = fmt.Sprintf("far-%d", i)
		full := "ResourceName" + key
		replica := discovery.ReplicaPeer(view, full)
		pos := 0
		for j, id := range view {
			if id.Equal(replica) {
				pos = j
			}
		}
		if pos >= 3 && pos <= len(view)-4 {
			holder = ends[0]
			break
		}
	}
	adv := &advertisement.Resource{ResID: ids.FromName(ids.KindAdv, key), Name: key}
	holderEdge.Cache.Put(adv, 0, false)
	holder.Discovery.Index().Add(srdi.Tuple{
		Key:           "ResourceName" + key,
		Publisher:     holderEdge.ID,
		PublisherAddr: holderEdge.Endpoint.Addr(),
	})
	timedOut := false
	probe.Discovery.Query("Resource", "Name", key,
		func(discovery.Result) { t.Error("TTL-1 walk reached a distant holder") },
		func() { timedOut = true })
	o.Sched.Run(o.Sched.Now() + 2*time.Minute)
	if !timedOut {
		t.Fatal("query neither answered nor timed out")
	}
}
