package discovery

import (
	"crypto/sha1"
	"encoding/binary"
	"math/bits"

	"jxta/internal/ids"
)

// The LC-DHT replica function (§3.3 of the paper):
//
//	hash = SHA-1(tuple)
//	pos  = floor(hash * l / MAX_HASH)
//	return peerview entry at position pos
//
// where l is the size of the local peerview and the tuple string is the
// concatenation of advertisement type, index attribute name and value
// (e.g. "PeerNameTest", the paper's Table 1 example with hash 116 and
// MAX_HASH 200 mapping to position 3).

// ReplicaPos computes floor(hash*l/maxHash) with arbitrary maxHash — the
// exact arithmetic of the paper's worked example. It panics if maxHash is 0;
// results are clamped into [0, l).
func ReplicaPos(hash, maxHash uint64, l int) int {
	if maxHash == 0 {
		panic("discovery: MAX_HASH must be positive")
	}
	if l <= 0 {
		return 0
	}
	hi, lo := bits.Mul64(hash, uint64(l))
	pos, _ := bits.Div64(hi, lo, maxHash)
	if pos >= uint64(l) {
		pos = uint64(l) - 1 // hash == maxHash edge case
	}
	return int(pos)
}

// KeyHash is the production hash: the first 8 bytes (big endian) of the
// SHA-1 digest of the tuple string. MAX_HASH is then 2^64 (the 160-bit
// digest truncated to its top 64 bits keeps the distribution uniform).
func KeyHash(key string) uint64 {
	sum := sha1.Sum([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// replicaPos64 is ReplicaPos specialized to MAX_HASH = 2^64: the high word
// of the 128-bit product hash*l is exactly floor(hash*l/2^64).
func replicaPos64(hash uint64, l int) int {
	if l <= 0 {
		return 0
	}
	hi, _ := bits.Mul64(hash, uint64(l))
	return int(hi)
}

// ReplicaPeer applies the replica function to an ordered peerview (which
// includes the local peer, per §3.3) and returns the rendezvous responsible
// for the key. An empty view returns the nil ID.
func ReplicaPeer(view []ids.ID, key string) ids.ID {
	if len(view) == 0 {
		return ids.Nil
	}
	return view[replicaPos64(KeyHash(key), len(view))]
}

// place resolves the key's replica peer through the configured routing
// strategy, defaulting to the paper's linear position hash above.
func (s *Service) place(view []ids.ID, key string) ids.ID {
	if s.cfg.Router != nil {
		return s.cfg.Router.Place(view, key)
	}
	return ReplicaPeer(view, key)
}
