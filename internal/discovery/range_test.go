package discovery_test

import (
	"fmt"
	"testing"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/deploy"
	"jxta/internal/discovery"
	"jxta/internal/ids"
	"jxta/internal/node"
	"jxta/internal/topology"
)

// rangeRig deploys an overlay with three publishers holding numeric RAM
// attributes and one searcher.
func rangeRig(t *testing.T, seed int64) (*deploy.Overlay, []*rigNode, *rigNode) {
	t.Helper()
	o, err := deploy.Build(deploy.Spec{
		Seed:      seed,
		NumRdv:    8,
		Topology:  topology.Chain,
		Discovery: discovery.DefaultConfig(),
		Edges: []deploy.EdgeGroup{
			{AttachTo: 0, Count: 1, Prefix: "pubA"},
			{AttachTo: 3, Count: 1, Prefix: "pubB"},
			{AttachTo: 5, Count: 1, Prefix: "pubC"},
			{AttachTo: 7, Count: 1, Prefix: "searcher"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	o.StartAll()
	o.Sched.Run(12 * time.Minute)
	pubs := []*rigNode{{o.Edges[0]}, {o.Edges[1]}, {o.Edges[2]}}
	rams := []int64{1024, 2048, 4096}
	for i, p := range pubs {
		p.n.Discovery.Publish(&advertisement.Resource{
			ResID: ids.FromName(ids.KindAdv, fmt.Sprintf("node-%d", i)),
			Name:  fmt.Sprintf("node-%d", i),
			Attrs: []advertisement.IndexField{
				{Attr: "RAM", Value: fmt.Sprintf("%d", rams[i])},
			},
		}, 0)
	}
	o.Sched.Run(o.Sched.Now() + time.Minute)
	return o, pubs, &rigNode{o.Edges[3]}
}

type rigNode struct{ n *node.Node }

// collectRange issues a range query and gathers distinct advertisements
// over a settle window.
func collectRange(t *testing.T, o *deploy.Overlay, searcher *rigNode, attr string, lo, hi int64) map[string]bool {
	t.Helper()
	got := map[string]bool{}
	err := searcher.n.Discovery.QueryRange("Resource", attr, lo, hi,
		func(r discovery.Result) {
			for _, adv := range r.Advs {
				got[adv.(*advertisement.Resource).Name] = true
			}
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o.Sched.Run(o.Sched.Now() + time.Minute)
	return got
}

func TestRangeQueryFindsAllMatchingPublishers(t *testing.T) {
	o, _, searcher := rangeRig(t, 1)
	got := collectRange(t, o, searcher, "RAM", 2000, 5000)
	if len(got) != 2 || !got["node-1"] || !got["node-2"] {
		t.Fatalf("range [2000,5000] returned %v, want node-1 and node-2", got)
	}
}

func TestRangeQueryFullSpan(t *testing.T) {
	o, _, searcher := rangeRig(t, 2)
	got := collectRange(t, o, searcher, "RAM", 0, 1<<40)
	if len(got) != 3 {
		t.Fatalf("full-span range returned %v, want all three", got)
	}
}

func TestRangeQueryEmptyResult(t *testing.T) {
	o, _, searcher := rangeRig(t, 3)
	timedOut := false
	err := searcher.n.Discovery.QueryRange("Resource", "RAM", 9000, 10000,
		func(discovery.Result) { t.Error("response for empty range") },
		func() { timedOut = true })
	if err != nil {
		t.Fatal(err)
	}
	o.Sched.Run(o.Sched.Now() + 2*time.Minute)
	if !timedOut {
		t.Fatal("empty range never timed out")
	}
}

func TestRangeQueryBoundsInclusive(t *testing.T) {
	o, _, searcher := rangeRig(t, 4)
	got := collectRange(t, o, searcher, "RAM", 1024, 1024)
	if len(got) != 1 || !got["node-0"] {
		t.Fatalf("point range returned %v, want exactly node-0", got)
	}
}

func TestRangeQueryWrongAttributeIgnored(t *testing.T) {
	o, _, searcher := rangeRig(t, 5)
	got := collectRange(t, o, searcher, "CPU", 0, 1<<40)
	if len(got) != 0 {
		t.Fatalf("range over unindexed attribute returned %v", got)
	}
}

func TestRangeQueryServedFromLocalCache(t *testing.T) {
	o, _, searcher := rangeRig(t, 6)
	first := collectRange(t, o, searcher, "RAM", 0, 1<<40)
	if len(first) != 3 {
		t.Fatalf("seed query returned %v", first)
	}
	// Cached: the second query answers locally without network traffic.
	before := o.Net.Stats().Messages
	var local *discovery.Result
	searcher.n.Discovery.QueryRange("Resource", "RAM", 0, 1<<40,
		func(r discovery.Result) { local = &r }, nil)
	o.Sched.Run(o.Sched.Now() + time.Second)
	if local == nil || !local.From.Equal(searcher.n.ID) {
		t.Fatal("cached range query not served locally")
	}
	// Peerview chatter continues; just assert no burst proportional to a
	// full walk happened within the second.
	if o.Net.Stats().Messages-before > 50 {
		t.Fatalf("local range answer still generated %d messages",
			o.Net.Stats().Messages-before)
	}
}
