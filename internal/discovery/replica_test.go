package discovery

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jxta/internal/ids"
)

// TestTable1WorkedExample reproduces the paper's §3.3 example exactly: a
// peer advertisement with Name=Test hashes (by assumption) to 116 with
// MAX_HASH=200 over a 6-entry peerview, landing at position 3 — rendezvous
// R4 in Table 1.
func TestTable1WorkedExample(t *testing.T) {
	if got := ReplicaPos(116, 200, 6); got != 3 {
		t.Fatalf("ReplicaPos(116, 200, 6) = %d, want 3 (Table 1, R4)", got)
	}
}

func TestReplicaPosEdgeCases(t *testing.T) {
	if ReplicaPos(0, 200, 6) != 0 {
		t.Fatal("hash 0 must map to position 0")
	}
	// hash == MAX_HASH clamps into range.
	if got := ReplicaPos(200, 200, 6); got != 5 {
		t.Fatalf("hash=MAX_HASH -> %d, want 5", got)
	}
	if ReplicaPos(117, 200, 0) != 0 || ReplicaPos(117, 200, -3) != 0 {
		t.Fatal("non-positive l must map to 0")
	}
}

func TestReplicaPosPanicsOnZeroMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MAX_HASH=0 did not panic")
		}
	}()
	ReplicaPos(1, 0, 6)
}

func TestKeyHashDeterministic(t *testing.T) {
	if KeyHash("PeerNameTest") != KeyHash("PeerNameTest") {
		t.Fatal("KeyHash not deterministic")
	}
	if KeyHash("PeerNameTest") == KeyHash("PeerNameTest2") {
		t.Fatal("trivial collision")
	}
}

func TestReplicaPeerEmptyView(t *testing.T) {
	if !ReplicaPeer(nil, "k").IsNil() {
		t.Fatal("empty view must return Nil")
	}
}

func TestReplicaPeerSingletonView(t *testing.T) {
	self := ids.FromName(ids.KindPeer, "self")
	if !ReplicaPeer([]ids.ID{self}, "anything").Equal(self) {
		t.Fatal("singleton view must always select the only peer")
	}
}

// Property: position is always within [0, l) and scales monotonically with
// the hash (the defining property of the paper's mapping).
func TestReplicaPosProperties(t *testing.T) {
	f := func(h1, h2, max uint64, lRaw uint8) bool {
		if max == 0 {
			max = 1
		}
		l := int(lRaw%64) + 1
		if h1 > max {
			h1 %= max + 1
		}
		if h2 > max {
			h2 %= max + 1
		}
		p1, p2 := ReplicaPos(h1, max, l), ReplicaPos(h2, max, l)
		if p1 < 0 || p1 >= l || p2 < 0 || p2 >= l {
			return false
		}
		if h1 <= h2 && p1 > p2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: consistent views yield consistent replica choices — any two
// peers holding the same ordered view compute the same replica for any key.
// (This is the paper's property (2) payoff.)
func TestReplicaConsistencyProperty(t *testing.T) {
	f := func(seed int64, n uint8, key string) bool {
		rng := rand.New(rand.NewSource(seed))
		l := int(n%32) + 1
		view := make([]ids.ID, l)
		for i := range view {
			view[i] = ids.NewRandom(ids.KindPeer, rng)
		}
		ids.SortIDs(view)
		a := ReplicaPeer(view, key)
		viewCopy := append([]ids.ID(nil), view...)
		b := ReplicaPeer(viewCopy, key)
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaDistributionUniform verifies the hash spreads keys roughly
// evenly over the view — the load-balancing the paper relies on for the
// noise experiment's decay.
func TestReplicaDistributionUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const l = 10
	view := make([]ids.ID, l)
	for i := range view {
		view[i] = ids.NewRandom(ids.KindPeer, rng)
	}
	ids.SortIDs(view)
	counts := map[ids.ID]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		key := "ResourceNamefake" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260))
		counts[ReplicaPeer(view, key)]++
	}
	want := trials / l
	for id, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("peer %s got %d of %d keys (expected ~%d)", id.Short(), c, trials, want)
		}
	}
	if len(counts) != l {
		t.Fatalf("only %d of %d peers received keys", len(counts), l)
	}
}

func BenchmarkReplicaPeer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	view := make([]ids.ID, 300)
	for i := range view {
		view[i] = ids.NewRandom(ids.KindPeer, rng)
	}
	ids.SortIDs(view)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReplicaPeer(view, "PeerNameTest")
	}
}
