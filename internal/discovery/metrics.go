package discovery

import (
	"jxta/internal/metrics"
)

// discoMetrics holds the discovery service's stored instruments; the
// Stats struct's plain counters are bridged as collector-backed Func
// instruments so the protocol paths keep their existing single-field
// increments.
type discoMetrics struct {
	queryLatency *metrics.Histogram
}

// Instrument (re-)registers the discovery service's instruments on reg.
// Every Stats field is exported as a counter
// (jxta_discovery_queries_sent_total, _queries_handled_total,
// _local_hits_total, _replica_forwards_total, _walks_started_total,
// _walk_hits_total, _delivered_total, _tuples_replicated_total) plus the
// jxta_discovery_srdi_keys / jxta_discovery_srdi_tuples gauges
// (rendezvous role; 0 on edges) and the
// jxta_discovery_query_latency_seconds histogram of remote-query
// round-trip times in virtual (sim) or wall (live) seconds.
func (s *Service) Instrument(reg *metrics.Registry) {
	s.m = &discoMetrics{
		queryLatency: reg.Histogram("jxta_discovery_query_latency_seconds",
			"Remote discovery query round-trip time, per response.", nil),
	}
	reg.CounterFunc("jxta_discovery_queries_sent_total", "Discovery queries issued by this peer.",
		func() uint64 { return s.Stats.QueriesSent })
	reg.CounterFunc("jxta_discovery_queries_handled_total", "Discovery queries handled at this rendezvous.",
		func() uint64 { return s.Stats.QueriesHandled })
	reg.CounterFunc("jxta_discovery_local_hits_total", "Queries answered from the local SRDI index.",
		func() uint64 { return s.Stats.LocalHits })
	reg.CounterFunc("jxta_discovery_replica_forwards_total", "Queries forwarded to the LC-DHT replica peer.",
		func() uint64 { return s.Stats.ReplicaForwards })
	reg.CounterFunc("jxta_discovery_walks_started_total", "Fallback walks started for unresolved queries.",
		func() uint64 { return s.Stats.WalksStarted })
	reg.CounterFunc("jxta_discovery_walk_hits_total", "Walked queries answered from an SRDI index.",
		func() uint64 { return s.Stats.WalkHits })
	reg.CounterFunc("jxta_discovery_delivered_total", "Queries answered by this peer as the publisher.",
		func() uint64 { return s.Stats.Delivered })
	reg.CounterFunc("jxta_discovery_tuples_replicated_total", "SRDI tuples replicated to peerview members.",
		func() uint64 { return s.Stats.TuplesReplicated })
	reg.GaugeFunc("jxta_discovery_srdi_keys", "Distinct keys in the SRDI index (rendezvous role).",
		func() float64 {
			if s.index == nil {
				return 0
			}
			return float64(s.index.Keys())
		})
	reg.GaugeFunc("jxta_discovery_srdi_tuples", "Tuples in the SRDI index (rendezvous role).",
		func() float64 {
			if s.index == nil {
				return 0
			}
			return float64(s.index.Size())
		})
}
