package discovery

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/ids"
	"jxta/internal/srdi"
	"jxta/internal/transport"
)

func TestQueryCodecRoundTrip(t *testing.T) {
	data := encodeQuery("Peer", "Name", "Test", stageInitial)
	body, err := decodeQuery(data)
	if err != nil {
		t.Fatal(err)
	}
	if body.advType != "Peer" || body.attr != "Name" || body.value != "Test" ||
		body.stage != stageInitial || body.isRange() {
		t.Fatalf("round trip changed query: %+v", body)
	}
}

func TestRangeQueryCodecRoundTrip(t *testing.T) {
	data := encodeRangeQuery("Resource", "RAM", -5, 1<<40, stageRange)
	body, err := decodeQuery(data)
	if err != nil {
		t.Fatal(err)
	}
	if !body.isRange() || body.lo != -5 || body.hi != 1<<40 ||
		body.advType != "Resource" || body.attr != "RAM" {
		t.Fatalf("range round trip changed query: %+v", body)
	}
}

func TestDecodeQueryErrors(t *testing.T) {
	if _, err := decodeQuery([]byte("<not-xml")); err == nil {
		t.Fatal("bad XML accepted")
	}
	// A range-stage query with missing bounds must fail.
	bad := []byte(`<disco:Q><Type>R</Type><Attr>RAM</Attr><Stage>range</Stage></disco:Q>`)
	if _, err := decodeQuery(bad); err == nil {
		t.Fatal("range query without bounds accepted")
	}
}

func TestTupleCodecRoundTrip(t *testing.T) {
	tpl := srdi.Tuple{
		Key:           "PeerNameTest",
		Publisher:     ids.FromName(ids.KindPeer, "p"),
		PublisherAddr: transport.Addr("sim://rennes/p"),
		Lifetime:      2 * time.Hour,
	}
	back, err := decodeTuple(encodeTuple(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if back != tpl {
		t.Fatalf("round trip changed tuple: %+v vs %+v", back, tpl)
	}
}

func TestTupleCodecNumericRoundTrip(t *testing.T) {
	tpl := srdi.Tuple{
		Key:           "ResourceRAM4096",
		Publisher:     ids.FromName(ids.KindPeer, "p"),
		PublisherAddr: transport.Addr("sim://lyon/p"),
		Lifetime:      time.Hour,
		NumAttr:       "ResourceRAM",
		NumValue:      4096,
	}
	back, err := decodeTuple(encodeTuple(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if back != tpl {
		t.Fatalf("numeric round trip changed tuple: %+v vs %+v", back, tpl)
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	bad := []string{
		"<garbage",
		"<srdi:Tuple><Key>k</Key></srdi:Tuple>", // no publisher
		"<srdi:Tuple><Key>k</Key><Pub>junk</Pub></srdi:Tuple>",         // bad publisher
		"<srdi:Tuple><Key>k</Key><Pub>urn:jxta:nil</Pub></srdi:Tuple>", // no lifetime
	}
	for _, x := range bad {
		if _, err := decodeTuple([]byte(x)); err == nil {
			t.Errorf("decodeTuple(%q) succeeded", x)
		}
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	advs := []advertisement.Advertisement{
		&advertisement.Peer{PeerID: ids.FromName(ids.KindPeer, "a"), Name: "A"},
		&advertisement.Resource{ResID: ids.FromName(ids.KindAdv, "b"), Name: "B"},
	}
	back := decodeResponse(encodeResponse(advs))
	if len(back) != 2 {
		t.Fatalf("decoded %d advs", len(back))
	}
	if back[0].(*advertisement.Peer).Name != "A" ||
		back[1].(*advertisement.Resource).Name != "B" {
		t.Fatal("response round trip changed advertisements")
	}
}

func TestDecodeResponseSkipsUnknownChildren(t *testing.T) {
	xml := `<disco:R><jxta:Mystery><X>1</X></jxta:Mystery><jxta:PA><PID>` +
		ids.FromName(ids.KindPeer, "p").String() +
		`</PID><Name>ok</Name></jxta:PA></disco:R>`
	back := decodeResponse([]byte(xml))
	if len(back) != 1 || back[0].(*advertisement.Peer).Name != "ok" {
		t.Fatalf("partial decode wrong: %v", back)
	}
	if decodeResponse([]byte("<bad")) != nil {
		t.Fatal("garbage response decoded")
	}
}

// Property: the query codec round-trips arbitrary printable strings.
func TestQueryCodecProperty(t *testing.T) {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r < 0x20 || r > 0x7e {
				return 'x'
			}
			return r
		}, strings.TrimSpace(s))
	}
	f := func(typ, attr, val string) bool {
		typ, attr, val = clean(typ), clean(attr), clean(val)
		body, err := decodeQuery(encodeQuery(typ, attr, val, stageInitial))
		return err == nil && body.advType == typ && body.attr == attr && body.value == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: range bounds of any sign and magnitude survive the codec.
func TestRangeCodecProperty(t *testing.T) {
	f := func(lo, hi int64) bool {
		body, err := decodeQuery(encodeRangeQuery("Resource", "X", lo, hi, stageRange))
		return err == nil && body.lo == lo && body.hi == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
