package pipe

import (
	"jxta/internal/hibpool"
	"jxta/internal/ids"
)

// Edge hibernation (PR 9). The pipe service owns no timers — it is always
// quiescent — so freezing packs the binding table and propagation dedup
// set into a pooled record and releases the shells. InputPipe.Close on a
// frozen service rehydrates through its owning service.

// pipeBinding is the packed form of one pipe binding.
type pipeBinding struct {
	id ids.ID
	in *InputPipe
}

// pipeFrozen is the freeze-dried service.
type pipeFrozen struct {
	bound    []pipeBinding
	propSeen []string
}

var (
	pipeFrozenPool = hibpool.Records[pipeFrozen]{Reset: func(f *pipeFrozen) {
		clear(f.bound)
		f.bound = f.bound[:0]
		clear(f.propSeen)
		f.propSeen = f.propSeen[:0]
	}}
	pipeBoundPool hibpool.Maps[ids.ID, *InputPipe]
	pipeSeenPool  hibpool.Maps[string, bool]
)

// Quiescent reports whether the service can be frozen — always: sends are
// fire-and-forget and inbound delivery rehydrates on demand.
func (s *Service) Quiescent() bool { return true }

// Freeze packs the service's maps into a pooled record. Idempotent.
func (s *Service) Freeze() {
	if s.frozen != nil {
		return
	}
	f := pipeFrozenPool.Get()
	for id, in := range s.bound {
		f.bound = append(f.bound, pipeBinding{id: id, in: in})
	}
	for k := range s.propSeen {
		f.propSeen = append(f.propSeen, k)
	}
	pipeBoundPool.Put(s.bound)
	pipeSeenPool.Put(s.propSeen)
	s.bound = nil
	s.propSeen = nil
	s.frozen = f
}

// thaw rehydrates a frozen service; a single nil check when live.
func (s *Service) thaw() {
	if s.frozen == nil {
		return
	}
	f := s.frozen
	s.frozen = nil
	s.bound = pipeBoundPool.Get()
	for _, b := range f.bound {
		s.bound[b.id] = b.in
	}
	s.propSeen = pipeSeenPool.Get()
	for _, k := range f.propSeen {
		s.propSeen[k] = true
	}
	pipeFrozenPool.Put(f)
}

// Frozen reports whether the service is currently freeze-dried (tests).
func (s *Service) Frozen() bool { return s.frozen != nil }
