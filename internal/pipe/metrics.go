package pipe

import (
	"jxta/internal/metrics"
)

// pipeMetrics holds the pipe service's instruments.
type pipeMetrics struct {
	unicastSent *metrics.Counter
	propSent    *metrics.Counter
	delivered   *metrics.Counter
	fanout      *metrics.Counter
	propDropped *metrics.Counter
}

// Instrument (re-)registers the pipe service's instruments on reg:
//
//	jxta_pipe_unicast_sent_total, jxta_pipe_propagate_sent_total,
//	jxta_pipe_delivered_total, jxta_pipe_fanout_total,
//	jxta_pipe_propagate_dupes_total
//
// plus the jxta_pipe_bound gauge (bound input pipes).
func (s *Service) Instrument(reg *metrics.Registry) {
	s.m = &pipeMetrics{
		unicastSent: reg.Counter("jxta_pipe_unicast_sent_total", "Unicast pipe payloads sent."),
		propSent:    reg.Counter("jxta_pipe_propagate_sent_total", "Propagate pipe payloads originated."),
		delivered:   reg.Counter("jxta_pipe_delivered_total", "Payloads delivered to bound input pipes."),
		fanout:      reg.Counter("jxta_pipe_fanout_total", "Propagate forwards to leased clients."),
		propDropped: reg.Counter("jxta_pipe_propagate_dupes_total", "Propagate copies dropped by instance dedup."),
	}
	reg.GaugeFunc("jxta_pipe_bound", "Bound input pipes.",
		func() float64 { return float64(len(s.bound)) })
}
