package pipe_test

import (
	"testing"
	"time"

	"jxta/internal/deploy"
	"jxta/internal/ids"
	"jxta/internal/node"
	"jxta/internal/pipe"
	"jxta/internal/topology"
)

// rig deploys a small converged overlay with two edges and pipe services.
type rig struct {
	o       *deploy.Overlay
	binder  *node.Node
	sender  *node.Node
	binderP *pipe.Service
	senderP *pipe.Service
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	o, err := deploy.Build(deploy.Spec{
		Seed:     seed,
		NumRdv:   5,
		Topology: topology.Chain,
		Edges: []deploy.EdgeGroup{
			{AttachTo: 0, Count: 1, Prefix: "binder"},
			{AttachTo: 4, Count: 1, Prefix: "sender"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	o.StartAll()
	binder, sender := o.Edges[0], o.Edges[1]
	r := &rig{
		o:       o,
		binder:  binder,
		sender:  sender,
		binderP: pipe.New(binder.Env, binder.Endpoint, binder.Discovery, binder.Rendezvous),
		senderP: pipe.New(sender.Env, sender.Endpoint, sender.Discovery, sender.Rendezvous),
	}
	o.Sched.Run(12 * time.Minute) // converge + leases
	return r
}

func (r *rig) run(d time.Duration) { r.o.Sched.Run(r.o.Sched.Now() + d) }

func TestBindConnectSend(t *testing.T) {
	r := newRig(t, 1)
	adv := pipe.NewPipeAdv(r.binder.ID, "inbox")
	var got []string
	var from ids.ID
	in, err := r.binderP.Bind(adv, func(src ids.ID, data []byte) {
		got = append(got, string(data))
		from = src
	})
	if err != nil {
		t.Fatal(err)
	}
	r.run(time.Minute) // SRDI push of the pipe advertisement

	var out *pipe.OutputPipe
	r.senderP.Connect(adv.PipeID, func(o *pipe.OutputPipe, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		out = o
	})
	r.run(time.Minute)
	if out == nil {
		t.Fatal("pipe never resolved")
	}
	if !out.Binder.Equal(r.binder.ID) {
		t.Fatalf("resolved binder %s, want %s", out.Binder.Short(), r.binder.ID.Short())
	}
	for _, payload := range []string{"hello", "world"} {
		if err := out.Send([]byte(payload)); err != nil {
			t.Fatal(err)
		}
	}
	r.run(time.Minute)
	if len(got) != 2 || got[0] != "hello" || got[1] != "world" {
		t.Fatalf("received %v", got)
	}
	if !from.Equal(r.sender.ID) {
		t.Fatal("sender identity lost")
	}
	if in.Received != 2 || out.Sent != 2 {
		t.Fatalf("counters: in=%d out=%d", in.Received, out.Sent)
	}
}

func TestDoubleBindRejected(t *testing.T) {
	r := newRig(t, 2)
	adv := pipe.NewPipeAdv(r.binder.ID, "dup")
	if _, err := r.binderP.Bind(adv, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.binderP.Bind(adv, nil); err == nil {
		t.Fatal("double bind accepted")
	}
}

func TestConnectUnknownPipeFails(t *testing.T) {
	r := newRig(t, 3)
	ghost := ids.FromName(ids.KindPipe, "ghost")
	var gotErr error
	done := false
	r.senderP.Connect(ghost, func(_ *pipe.OutputPipe, err error) {
		gotErr = err
		done = true
	})
	r.run(2 * time.Minute)
	if !done || gotErr == nil {
		t.Fatalf("unresolvable connect: done=%v err=%v", done, gotErr)
	}
}

func TestClosedPipeDropsMessages(t *testing.T) {
	r := newRig(t, 4)
	adv := pipe.NewPipeAdv(r.binder.ID, "closing")
	received := 0
	in, err := r.binderP.Bind(adv, func(ids.ID, []byte) { received++ })
	if err != nil {
		t.Fatal(err)
	}
	r.run(time.Minute)
	out := r.senderP.ConnectAdv(adv, r.binder.ID)
	// Route to the binder: learn it from the rendezvous network by
	// resolving once through Connect.
	var live *pipe.OutputPipe
	r.senderP.Connect(adv.PipeID, func(o *pipe.OutputPipe, err error) {
		if err == nil {
			live = o
		}
	})
	r.run(time.Minute)
	if live == nil {
		t.Fatal("resolution failed")
	}
	_ = out
	live.Send([]byte("before"))
	r.run(time.Minute)
	in.Close()
	live.Send([]byte("after"))
	r.run(time.Minute)
	if received != 1 {
		t.Fatalf("received %d payloads, want 1 (post-close drop)", received)
	}
}

func TestSendUnresolved(t *testing.T) {
	r := newRig(t, 5)
	out := &pipe.OutputPipe{}
	_ = r
	if err := out.Send([]byte("x")); err == nil {
		t.Fatal("send on unresolved pipe succeeded")
	}
}

// TestPropagateFanOut binds one propagate pipe on edges attached to
// different rendezvous (and on a rendezvous itself) and checks a single
// send reaches every listener exactly once, including the sender's own
// loopback delivery.
func TestPropagateFanOut(t *testing.T) {
	o, err := deploy.Build(deploy.Spec{
		Seed:     21,
		NumRdv:   5,
		Topology: topology.Chain,
		Edges: []deploy.EdgeGroup{
			{AttachTo: 0, Count: 1, Prefix: "sender"},
			{AttachTo: 2, Count: 1, Prefix: "subA"},
			{AttachTo: 4, Count: 1, Prefix: "subB"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	o.StartAll()
	adv := pipe.NewPropagateAdv("news")
	counts := make([]int, 4)
	var origins []ids.ID
	svcs := make([]*pipe.Service, 0, 4)
	peers := []*node.Node{o.Edges[0], o.Edges[1], o.Edges[2], o.Rdvs[1]}
	for i, n := range peers {
		i := i
		svc := pipe.New(n.Env, n.Endpoint, n.Discovery, n.Rendezvous)
		if _, err := svc.Bind(adv, func(src ids.ID, data []byte) {
			if string(data) != "flash" {
				t.Errorf("listener %d got %q", i, data)
			}
			counts[i]++
			origins = append(origins, src)
		}); err != nil {
			t.Fatal(err)
		}
		svcs = append(svcs, svc)
	}
	o.Sched.Run(12 * time.Minute) // converge peerviews + leases

	out := svcs[0].ConnectPropagate(adv)
	if err := out.Send([]byte("flash")); err != nil {
		t.Fatal(err)
	}
	o.Sched.Run(o.Sched.Now() + time.Minute)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("listener %d received %d payloads, want exactly 1 (counts=%v)", i, c, counts)
		}
	}
	for _, src := range origins {
		if !src.Equal(o.Edges[0].ID) {
			t.Fatal("propagate origin identity lost")
		}
	}
	if out.Sent != 1 {
		t.Fatalf("Sent=%d", out.Sent)
	}
}

func TestPropagateWithoutLeaseFails(t *testing.T) {
	o, err := deploy.Build(deploy.Spec{
		Seed:   22,
		NumRdv: 1,
		Edges:  []deploy.EdgeGroup{{AttachTo: 0, Count: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the edge holds no lease, so propagation has no uplink.
	edge := o.Edges[0]
	svc := pipe.New(edge.Env, edge.Endpoint, edge.Discovery, edge.Rendezvous)
	out := svc.ConnectPropagate(pipe.NewPropagateAdv("void"))
	if err := out.Send([]byte("x")); err == nil {
		t.Fatal("propagate without a rendezvous lease succeeded")
	}
}

func TestTwoPipesIndependent(t *testing.T) {
	r := newRig(t, 6)
	advA := pipe.NewPipeAdv(r.binder.ID, "a")
	advB := pipe.NewPipeAdv(r.binder.ID, "b")
	var gotA, gotB []string
	if _, err := r.binderP.Bind(advA, func(_ ids.ID, d []byte) { gotA = append(gotA, string(d)) }); err != nil {
		t.Fatal(err)
	}
	if _, err := r.binderP.Bind(advB, func(_ ids.ID, d []byte) { gotB = append(gotB, string(d)) }); err != nil {
		t.Fatal(err)
	}
	r.run(time.Minute)
	var outA, outB *pipe.OutputPipe
	r.senderP.Connect(advA.PipeID, func(o *pipe.OutputPipe, err error) { outA = o })
	r.senderP.Connect(advB.PipeID, func(o *pipe.OutputPipe, err error) { outB = o })
	r.run(time.Minute)
	if outA == nil || outB == nil {
		t.Fatal("resolution failed")
	}
	outA.Send([]byte("to-a"))
	outB.Send([]byte("to-b"))
	r.run(time.Minute)
	if len(gotA) != 1 || gotA[0] != "to-a" || len(gotB) != 1 || gotB[0] != "to-b" {
		t.Fatalf("cross-talk: a=%v b=%v", gotA, gotB)
	}
}
