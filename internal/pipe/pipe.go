// Package pipe implements JXTA pipes: the virtual communication channels
// applications use on top of the discovery machinery (the paper's §3.1
// lists peer-to-peer communication among the building blocks the protocols
// provide). Two pipe types are supported:
//
//   - JxtaUnicast: a receiving peer binds an input pipe and publishes the
//     pipe advertisement; a sending peer resolves the advertisement through
//     the LC-DHT discovery protocol — which is exactly the pipe binding
//     protocol's job in JXTA — and then sends messages point to point over
//     the endpoint service.
//   - JxtaPropagate: one-to-many pipes. Any number of peers bind the same
//     propagate pipe; a send fans out through the rendezvous propagation
//     machinery — the sender's rendezvous forwards to its leased clients
//     and walks the message along the ID-ordered peerview, each visited
//     rendezvous forwarding to its own clients — so every bound input pipe
//     in the group receives the payload.
package pipe

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/discovery"
	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/metrics"
	"jxta/internal/rendezvous"
)

// ServiceName is the endpoint service unicast pipe messages travel on.
const ServiceName = "pipe.msg"

// PropagateService is the endpoint service (and walk target) propagate pipe
// messages travel on.
const PropagateService = "pipe.prop"

// Message elements, namespace "pipe".
const (
	ns         = "pipe"
	elemPipeID = "Id"
	elemData   = "Data"
	elemOrigin = "Origin" // originating peer of a propagate send
	elemPropID = "PID"    // propagation instance ID (dedup)
)

// UnicastType is the pipe type tag for point-to-point pipes.
const UnicastType = "JxtaUnicast"

// PropagateType is the pipe type tag for one-to-many pipes.
const PropagateType = "JxtaPropagate"

// Receiver consumes inbound pipe payloads.
type Receiver func(src ids.ID, data []byte)

// Errors.
var (
	ErrAlreadyBound = errors.New("pipe: pipe already bound on this peer")
	ErrNotResolved  = errors.New("pipe: endpoint not resolved")
	ErrResolve      = errors.New("pipe: could not resolve pipe binder")
	ErrNoRendezvous = errors.New("pipe: no rendezvous lease for propagation")
)

// Service is one peer's pipe service.
type Service struct {
	env   env.Env
	ep    *endpoint.Endpoint
	disco *discovery.Service
	rdv   *rendezvous.Service
	bound map[ids.ID]*InputPipe

	// propSeen dedups propagation instances: a propagate message can reach
	// a peer through the up walk, the down walk and the client fan-out.
	propSeen   map[string]bool
	nextPropID uint64
	// stopped gates inbound traffic: a gracefully stopped peer neither
	// delivers to application receivers nor relays propagate fan-out.
	stopped bool

	// m holds the runtime instruments; always non-nil (New pre-instruments,
	// node.New re-instruments with the node's shared registry).
	m *pipeMetrics

	// frozen implements edge hibernation; see hibernate.go.
	frozen *pipeFrozen
}

// New wires the pipe service into a peer's endpoint, discovery and
// rendezvous services.
func New(e env.Env, ep *endpoint.Endpoint, disco *discovery.Service, rdv *rendezvous.Service) *Service {
	s := &Service{
		env:      e,
		ep:       ep,
		disco:    disco,
		rdv:      rdv,
		bound:    make(map[ids.ID]*InputPipe),
		propSeen: make(map[string]bool),
	}
	s.Instrument(metrics.Discard())
	ep.Register(ServiceName, s.receive)
	ep.Register(PropagateService, s.receivePropagate)
	if rdv != nil {
		// Registered in both roles — walk handlers only run on rendezvous,
		// so a peer promoted at runtime relays propagation immediately.
		rdv.SetWalkHandler(PropagateService, s.handlePropagateWalk)
	}
	return s
}

// InputPipe is a bound receiving end.
type InputPipe struct {
	svc  *Service
	Adv  *advertisement.Pipe
	recv Receiver
	// Received counts delivered payloads.
	Received uint64
}

// Bind attaches a receiver to the pipe described by adv and publishes the
// advertisement so senders can resolve this peer. One binder per pipe per
// peer.
func (s *Service) Bind(adv *advertisement.Pipe, recv Receiver) (*InputPipe, error) {
	s.thaw()
	if adv.Kind == "" {
		adv.Kind = UnicastType
	}
	if _, dup := s.bound[adv.PipeID]; dup {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyBound, adv.PipeID.Short())
	}
	in := &InputPipe{svc: s, Adv: adv, recv: recv}
	s.bound[adv.PipeID] = in
	s.disco.Publish(adv, 0)
	return in, nil
}

// Close unbinds the pipe. Already-in-flight messages are dropped.
func (in *InputPipe) Close() {
	in.svc.thaw()
	delete(in.svc.bound, in.Adv.PipeID)
}

// Start resumes inbound delivery after a Stop. The service owns no timers
// — sends are fire-and-forget over the endpoint — so starting is purely a
// gate flip.
func (s *Service) Start() { s.stopped = false }

// Stop halts the pipe service: inbound messages are dropped (no delivery
// to application receivers, no propagate relaying) until the next Start.
// Bindings survive, so a node restarted in place keeps receiving.
func (s *Service) Stop() { s.stopped = true }

// Reset drops every binding and the propagation dedup set for a cold
// restart: applications re-Bind (and re-JoinChannel) after the node comes
// back. Propagation instance IDs keep increasing so pre-restart sends are
// still deduplicated by peers that saw them.
func (s *Service) Reset() {
	s.thaw()
	s.bound = make(map[ids.ID]*InputPipe)
	s.propSeen = make(map[string]bool)
}

// OutputPipe is a resolved sending end.
type OutputPipe struct {
	svc    *Service
	PipeID ids.ID
	// Binder is the peer holding the input pipe (unicast pipes only).
	Binder ids.ID
	// Sent counts transmitted payloads.
	Sent uint64

	kind string // UnicastType or PropagateType
}

// Connect resolves the pipe's binder through the discovery protocol and
// hands an OutputPipe to cb. cb fires with err != nil if resolution fails
// within the discovery timeout. Resolution always travels the overlay
// (bypassing the local advertisement cache): a cached advertisement names
// the pipe but not its binder — only the responding publisher does.
func (s *Service) Connect(pipeID ids.ID, cb func(*OutputPipe, error)) {
	err := s.disco.QueryRemote("Pipe", "Id", pipeID.String(),
		func(r discovery.Result) {
			// The responder is the publisher of the pipe advertisement,
			// i.e. the binder; the response installed a route to it.
			cb(&OutputPipe{svc: s, PipeID: pipeID, Binder: r.From}, nil)
		},
		func() { cb(nil, ErrResolve) })
	if err != nil {
		s.env.After(0, func() { cb(nil, err) })
	}
}

// ConnectAdv resolves from an already-known advertisement (skips the
// discovery lookup when the binder's route is known).
func (s *Service) ConnectAdv(adv *advertisement.Pipe, binder ids.ID) *OutputPipe {
	return &OutputPipe{svc: s, PipeID: adv.PipeID, Binder: binder}
}

// ConnectPropagate opens the sending end of a propagate pipe. No resolution
// is needed: fan-out goes through this peer's own rendezvous tier, so the
// pipe ID alone addresses every bound listener in the group.
func (s *Service) ConnectPropagate(adv *advertisement.Pipe) *OutputPipe {
	return &OutputPipe{svc: s, PipeID: adv.PipeID, kind: PropagateType}
}

// Send transmits one payload: point to point to the binder for unicast
// pipes, to every bound listener in the group for propagate pipes.
func (o *OutputPipe) Send(data []byte) error {
	if o.kind == PropagateType {
		if err := o.svc.propagate(o.PipeID, data); err != nil {
			return err
		}
		o.Sent++
		o.svc.m.propSent.Inc()
		return nil
	}
	if o.Binder.IsNil() {
		return ErrNotResolved
	}
	m := message.New()
	m.AddString(ns, elemPipeID, o.PipeID.String())
	m.Add(ns, elemData, data)
	if err := o.svc.ep.Send(o.Binder, ServiceName, m); err != nil {
		return err
	}
	o.Sent++
	o.svc.m.unicastSent.Inc()
	return nil
}

// receive dispatches inbound pipe traffic to the bound receiver.
func (s *Service) receive(src ids.ID, m *message.Message) {
	s.thaw()
	if s.stopped {
		return
	}
	pipeID, err := ids.Parse(m.GetString(ns, elemPipeID))
	if err != nil {
		return
	}
	in, ok := s.bound[pipeID]
	if !ok {
		return // unbound or closed: silently dropped, like JXTA
	}
	data, ok := m.Get(ns, elemData)
	if !ok {
		return
	}
	in.Received++
	s.m.delivered.Inc()
	if in.recv != nil {
		in.recv(src, data)
	}
}

// --- Propagation: one-to-many fan-out over the rendezvous machinery ---

// propSeenLimit bounds the dedup set; propagation instances are short-lived
// so a coarse reset is fine (mirrors the rendezvous walker's loop guard).
const propSeenLimit = 8192

// markProp records a propagation instance, reporting whether it was new.
func (s *Service) markProp(pid string) bool {
	if pid == "" {
		return false
	}
	if s.propSeen[pid] {
		s.m.propDropped.Inc()
		return false
	}
	s.propSeen[pid] = true
	if len(s.propSeen) > propSeenLimit {
		s.propSeen = make(map[string]bool)
		s.propSeen[pid] = true
	}
	return true
}

// propagate originates a one-to-many send: deliver locally, then hand the
// message to the rendezvous tier for group-wide fan-out.
func (s *Service) propagate(pipeID ids.ID, data []byte) error {
	s.thaw()
	s.nextPropID++
	pid := s.ep.ID().Short() + "-" + strconv.FormatUint(s.nextPropID, 10)
	s.markProp(pid) // echoes of our own send are dropped
	m := message.New()
	m.AddString(ns, elemPipeID, pipeID.String())
	m.AddString(ns, elemOrigin, s.ep.IDString())
	m.AddString(ns, elemPropID, pid)
	m.Add(ns, elemData, data)
	if s.rdv == nil {
		return ErrNoRendezvous
	}
	if s.rdv.IsRendezvous() {
		// Local loopback: propagate pipes deliver to the sender's own
		// input pipe too, like JXTA's propagate pipes in one peer group.
		s.deliverLocal(s.ep.ID(), pipeID, data)
		s.fanOut(s.ep.ID(), m)
		s.startPropagationWalks(m)
		return nil
	}
	rdvID, ok := s.rdv.ConnectedRdv()
	if !ok {
		return ErrNoRendezvous
	}
	if err := s.ep.Send(rdvID, PropagateService, m); err != nil {
		return err
	}
	// Loopback only after the group send was accepted, so a failed Send
	// never half-delivers.
	s.deliverLocal(s.ep.ID(), pipeID, data)
	return nil
}

// receivePropagate handles propagate traffic arriving over the endpoint:
// at an edge this is the final delivery; at a rendezvous it is the first
// hop of the fan-out (deliver locally, forward to clients, start walks).
func (s *Service) receivePropagate(src ids.ID, m *message.Message) {
	s.thaw()
	if s.stopped {
		return
	}
	pipeID, origin, data, ok := s.decodeProp(m)
	if !ok {
		return
	}
	s.deliverLocal(origin, pipeID, data)
	if s.rdv != nil && s.rdv.IsRendezvous() {
		// Rebuild a clean propagate message: m is the inbound wire message,
		// still carrying its endpoint envelope; re-sending it as-is would
		// confuse the receivers' envelope demux with stale Src/Dst elements.
		fwd := message.New()
		fwd.AddString(ns, elemPipeID, m.GetString(ns, elemPipeID))
		fwd.AddString(ns, elemOrigin, m.GetString(ns, elemOrigin))
		fwd.AddString(ns, elemPropID, m.GetString(ns, elemPropID))
		fwd.Add(ns, elemData, data)
		s.fanOut(origin, fwd)
		s.startPropagationWalks(fwd)
	}
}

// handlePropagateWalk consumes a walked propagate message at each visited
// rendezvous: deliver locally, forward to this rendezvous' clients, and let
// the walk continue (return false) so the whole peerview is covered.
func (s *Service) handlePropagateWalk(_ ids.ID, _ rendezvous.Direction, body *message.Message) bool {
	s.thaw()
	if s.stopped {
		return false
	}
	pipeID, origin, data, ok := s.decodeProp(body)
	if !ok {
		return false
	}
	s.deliverLocal(origin, pipeID, data)
	s.fanOut(origin, body)
	return false
}

// decodeProp validates a propagate message and applies the dedup guard.
func (s *Service) decodeProp(m *message.Message) (pipeID, origin ids.ID, data []byte, ok bool) {
	if !s.markProp(m.GetString(ns, elemPropID)) {
		return ids.Nil, ids.Nil, nil, false
	}
	pipeID, err := ids.Parse(m.GetString(ns, elemPipeID))
	if err != nil {
		return ids.Nil, ids.Nil, nil, false
	}
	origin, err = ids.Parse(m.GetString(ns, elemOrigin))
	if err != nil {
		return ids.Nil, ids.Nil, nil, false
	}
	data, dok := m.Get(ns, elemData)
	if !dok {
		return ids.Nil, ids.Nil, nil, false
	}
	return pipeID, origin, data, true
}

// deliverLocal hands a propagate payload to this peer's bound input pipe,
// if any (unbound pipes drop silently, like unicast receive).
func (s *Service) deliverLocal(origin, pipeID ids.ID, data []byte) {
	in, ok := s.bound[pipeID]
	if !ok {
		return
	}
	in.Received++
	s.m.delivered.Inc()
	if in.recv != nil {
		in.recv(origin, data)
	}
}

// fanOut forwards a propagate message to every leased client of this
// rendezvous except the origin (which already delivered locally).
func (s *Service) fanOut(origin ids.ID, m *message.Message) {
	for _, client := range s.rdv.Clients() {
		if client.Equal(origin) {
			continue
		}
		if s.ep.Send(client, PropagateService, m) == nil {
			s.m.fanout.Inc()
		}
	}
}

// startPropagationWalks launches the up and down peerview walks so every
// rendezvous — and through fanOut every edge — sees the message once.
func (s *Service) startPropagationWalks(m *message.Message) {
	ttl := s.rdv.PeerView().Size() + 1
	s.rdv.Walk(rendezvous.Up, ttl, PropagateService, m)
	s.rdv.Walk(rendezvous.Down, ttl, PropagateService, m)
}

// NewPipeAdv mints a pipe advertisement with a deterministic ID derived
// from the owner and name.
func NewPipeAdv(owner ids.ID, name string) *advertisement.Pipe {
	return &advertisement.Pipe{
		PipeID: ids.FromName(ids.KindPipe, owner.String()+"/"+name),
		Name:   name,
		Kind:   UnicastType,
	}
}

// NewPropagateAdv mints a propagate pipe advertisement. The ID derives from
// the name alone — every peer binding the same name joins the same group
// channel, without needing to know who else is bound.
func NewPropagateAdv(name string) *advertisement.Pipe {
	return &advertisement.Pipe{
		PipeID: ids.FromName(ids.KindPipe, "propagate/"+name),
		Name:   name,
		Kind:   PropagateType,
	}
}

// ResolveTimeout is how long Connect effectively waits (the discovery
// resolver timeout governs it); exposed for documentation.
const ResolveTimeout = 30 * time.Second
