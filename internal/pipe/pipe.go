// Package pipe implements JXTA unicast pipes: the virtual communication
// channels applications use on top of the discovery machinery (the paper's
// §3.1 lists peer-to-peer communication among the building blocks the
// protocols provide). A receiving peer binds an input pipe and publishes
// the pipe advertisement; a sending peer resolves the advertisement through
// the LC-DHT discovery protocol — which is exactly the pipe binding
// protocol's job in JXTA — and then sends messages point to point over the
// endpoint service.
package pipe

import (
	"errors"
	"fmt"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/discovery"
	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/message"
)

// ServiceName is the endpoint service pipe messages travel on.
const ServiceName = "pipe.msg"

// Message elements, namespace "pipe".
const (
	ns         = "pipe"
	elemPipeID = "Id"
	elemData   = "Data"
)

// UnicastType is the pipe type tag for point-to-point pipes.
const UnicastType = "JxtaUnicast"

// Receiver consumes inbound pipe payloads.
type Receiver func(src ids.ID, data []byte)

// Errors.
var (
	ErrAlreadyBound = errors.New("pipe: pipe already bound on this peer")
	ErrNotResolved  = errors.New("pipe: endpoint not resolved")
	ErrResolve      = errors.New("pipe: could not resolve pipe binder")
)

// Service is one peer's pipe service.
type Service struct {
	env   env.Env
	ep    *endpoint.Endpoint
	disco *discovery.Service
	bound map[ids.ID]*InputPipe
}

// New wires the pipe service into a peer's endpoint and discovery services.
func New(e env.Env, ep *endpoint.Endpoint, disco *discovery.Service) *Service {
	s := &Service{
		env:   e,
		ep:    ep,
		disco: disco,
		bound: make(map[ids.ID]*InputPipe),
	}
	ep.Register(ServiceName, s.receive)
	return s
}

// InputPipe is a bound receiving end.
type InputPipe struct {
	svc  *Service
	Adv  *advertisement.Pipe
	recv Receiver
	// Received counts delivered payloads.
	Received uint64
}

// Bind attaches a receiver to the pipe described by adv and publishes the
// advertisement so senders can resolve this peer. One binder per pipe per
// peer.
func (s *Service) Bind(adv *advertisement.Pipe, recv Receiver) (*InputPipe, error) {
	if adv.Kind == "" {
		adv.Kind = UnicastType
	}
	if _, dup := s.bound[adv.PipeID]; dup {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyBound, adv.PipeID.Short())
	}
	in := &InputPipe{svc: s, Adv: adv, recv: recv}
	s.bound[adv.PipeID] = in
	s.disco.Publish(adv, 0)
	return in, nil
}

// Close unbinds the pipe. Already-in-flight messages are dropped.
func (in *InputPipe) Close() {
	delete(in.svc.bound, in.Adv.PipeID)
}

// OutputPipe is a resolved sending end.
type OutputPipe struct {
	svc    *Service
	PipeID ids.ID
	// Binder is the peer holding the input pipe.
	Binder ids.ID
	// Sent counts transmitted payloads.
	Sent uint64
}

// Connect resolves the pipe's binder through the discovery protocol and
// hands an OutputPipe to cb. cb fires with err != nil if resolution fails
// within the discovery timeout.
func (s *Service) Connect(pipeID ids.ID, cb func(*OutputPipe, error)) {
	err := s.disco.Query("Pipe", "Id", pipeID.String(),
		func(r discovery.Result) {
			// The responder is the publisher of the pipe advertisement,
			// i.e. the binder; the response installed a route to it.
			cb(&OutputPipe{svc: s, PipeID: pipeID, Binder: r.From}, nil)
		},
		func() { cb(nil, ErrResolve) })
	if err != nil {
		s.env.After(0, func() { cb(nil, err) })
	}
}

// ConnectAdv resolves from an already-known advertisement (skips the
// discovery lookup when the binder's route is known).
func (s *Service) ConnectAdv(adv *advertisement.Pipe, binder ids.ID) *OutputPipe {
	return &OutputPipe{svc: s, PipeID: adv.PipeID, Binder: binder}
}

// Send transmits one payload to the binder.
func (o *OutputPipe) Send(data []byte) error {
	if o.Binder.IsNil() {
		return ErrNotResolved
	}
	m := message.New()
	m.AddString(ns, elemPipeID, o.PipeID.String())
	m.Add(ns, elemData, data)
	if err := o.svc.ep.Send(o.Binder, ServiceName, m); err != nil {
		return err
	}
	o.Sent++
	return nil
}

// receive dispatches inbound pipe traffic to the bound receiver.
func (s *Service) receive(src ids.ID, m *message.Message) {
	pipeID, err := ids.Parse(m.GetString(ns, elemPipeID))
	if err != nil {
		return
	}
	in, ok := s.bound[pipeID]
	if !ok {
		return // unbound or closed: silently dropped, like JXTA
	}
	data, ok := m.Get(ns, elemData)
	if !ok {
		return
	}
	in.Received++
	if in.recv != nil {
		in.recv(src, data)
	}
}

// NewPipeAdv mints a pipe advertisement with a deterministic ID derived
// from the owner and name.
func NewPipeAdv(owner ids.ID, name string) *advertisement.Pipe {
	return &advertisement.Pipe{
		PipeID: ids.FromName(ids.KindPipe, owner.String()+"/"+name),
		Name:   name,
		Kind:   UnicastType,
	}
}

// ResolveTimeout is how long Connect effectively waits (the discovery
// resolver timeout governs it); exposed for documentation.
const ResolveTimeout = 30 * time.Second
