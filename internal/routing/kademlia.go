package routing

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/netmodel"
	"jxta/internal/resolver"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

// KadHandlerName is the resolver handler the Kademlia RPCs travel over.
// Running the overlay on the peer resolver (rather than raw transports, as
// the static chord/flood baselines do) keeps the comparison honest: every
// Kademlia RPC pays the same endpoint/resolver envelope the SRDI walk pays.
const KadHandlerName = "urn:jxta:kad"

// KadConfig parameterizes the overlay.
type KadConfig struct {
	// K is the bucket capacity and replication factor (default 8).
	K int
	// Alpha is the lookup parallelism (default 3).
	Alpha int
	// RPCTimeout is how long a single RPC waits before its target is
	// presumed dead and the lookup routes around it (default 10s). This
	// is the overlay's only failure detector.
	RPCTimeout time.Duration
	// RefreshInterval is the per-node bucket-refresh period; each tick
	// one node runs one FIND_NODE toward a rotating region of the space.
	// Zero disables timed refresh (Maintain still forces rounds).
	RefreshInterval time.Duration
}

func (c KadConfig) withDefaults() KadConfig {
	if c.K == 0 {
		c.K = 8
	}
	if c.Alpha == 0 {
		c.Alpha = 3
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 10 * time.Second
	}
	return c
}

// kadContact is one routing-table entry.
type kadContact struct {
	key  uint64
	id   ids.ID
	addr transport.Addr
}

// Kademlia is a deployed iterative-lookup XOR-metric overlay: the
// self-repairing structured comparator of the §3.3 bake-off. Unlike the
// static Chord ring (recursive routing, no failure handling), every lookup
// is driven by its originator, so a dead hop costs one RPC timeout instead
// of the whole operation, and dead contacts are evicted as a side effect of
// ordinary traffic.
type Kademlia struct {
	eng   simnet.Engine
	cfg   KadConfig
	nodes []*kadNode
}

type kadNode struct {
	k     *Kademlia
	idx   int
	env   env.Env
	tr    *transport.Sim
	ep    *endpoint.Endpoint
	res   *resolver.Service
	id    ids.ID
	key   uint64
	alive bool

	// buckets[i] holds contacts sharing exactly i leading bits with key
	// (i = BucketIndex), each at most K long, least-recently-seen first.
	buckets [64][]kadContact
	store   map[string]bool
	ticker  *env.Ticker
	refresh int // rotating bucket-refresh bit position
}

// BuildKademlia deploys n nodes over the simulated network and seeds each
// routing table with a deterministic bootstrap graph (successor plus
// power-of-two jumps in deployment order). Call Bootstrap and run a settle
// window before measuring; tables then converge through lookup traffic.
func BuildKademlia(eng simnet.Engine, net *transport.Network, n int, cfg KadConfig) (*Kademlia, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kademlia: n=%d", n)
	}
	cfg = cfg.withDefaults()
	k := &Kademlia{eng: eng, cfg: cfg}
	sites := netmodel.SpreadSites(n)
	for i := 0; i < n; i++ {
		e := eng.NewEnv(fmt.Sprintf("kad%d", i))
		id := ids.NewRandom(ids.KindPeer, e.Rand())
		tr, err := net.Attach(fmt.Sprintf("kad%d", i), sites[i])
		if err != nil {
			return nil, err
		}
		nd := &kadNode{
			k: k, idx: i, env: e, tr: tr, id: id, key: IDHash(id),
			alive: true, store: make(map[string]bool),
		}
		nd.ep = endpoint.New(e, id, tr)
		nd.res = resolver.New(e, nd.ep)
		nd.res.Timeout = cfg.RPCTimeout
		nd.res.RegisterHandler(KadHandlerName, nd.handleRPC)
		if cfg.RefreshInterval > 0 {
			nd.ticker = env.NewTicker(e, cfg.RefreshInterval, nd.refreshTick)
		}
		k.nodes = append(k.nodes, nd)
	}
	for i, nd := range k.nodes {
		nd.observe(k.contact(k.nodes[(i+1)%n]))
		for jump := 2; jump < n; jump *= 2 {
			nd.observe(k.contact(k.nodes[(i+jump)%n]))
		}
	}
	return k, nil
}

func (k *Kademlia) contact(nd *kadNode) kadContact {
	return kadContact{key: nd.key, id: nd.id, addr: nd.tr.Addr()}
}

// Bootstrap schedules an iterative self-lookup on every node (staggered so
// the joins interleave rather than land on one instant); run a settle
// window afterwards. Self-lookups populate the near buckets that the
// deterministic seed graph cannot.
func (k *Kademlia) Bootstrap() {
	for i, nd := range k.nodes {
		nd := nd
		nd.env.After(time.Duration(i%64)*50*time.Millisecond, func() {
			if nd.alive {
				nd.lookup(nd.key, "", false, nil)
			}
		})
	}
}

// Name implements Backend.
func (k *Kademlia) Name() string { return "kademlia" }

// N implements Backend.
func (k *Kademlia) N() int { return len(k.nodes) }

// Alive implements Backend.
func (k *Kademlia) Alive(i int) bool { return k.nodes[i].alive }

// NodeID returns node i's peer ID (test hook).
func (k *Kademlia) NodeID(i int) ids.ID { return k.nodes[i].id }

// Publish implements Backend: an iterative FIND_NODE toward the key
// followed by STOREs at the K closest contacts found.
func (k *Kademlia) Publish(from int, key string) {
	k.nodes[from].lookup(KeyHash(key), key, true, nil)
}

// Lookup implements Backend: an iterative FIND_VALUE; OK reports whether
// any holder was reached, Hops is the iteration depth at which it was.
func (k *Kademlia) Lookup(from int, key string, cb func(Result)) {
	k.nodes[from].lookup(KeyHash(key), key, false, cb)
}

// Maintain implements Backend: one forced bucket-refresh round on every
// live node (the timed equivalent runs on RefreshInterval tickers).
func (k *Kademlia) Maintain() {
	for _, nd := range k.nodes {
		if nd.alive {
			nd.refreshTick()
		}
	}
}

// Kill implements Backend: fail-stop. The transport detaches, timers stop,
// pending RPCs at other nodes expire into timeouts.
func (k *Kademlia) Kill(i int) {
	nd := k.nodes[i]
	if !nd.alive {
		return
	}
	nd.alive = false
	if nd.ticker != nil {
		nd.ticker.Stop()
	}
	nd.res.Stop()
	_ = nd.tr.Close()
}

// refreshTick runs one maintenance lookup toward a rotating single-bit
// flip of this node's key, cycling through all 64 bucket distances (29 is
// coprime with 64, so every bit is visited before any repeats).
func (n *kadNode) refreshTick() {
	if !n.alive {
		return
	}
	bit := uint(n.refresh % 64)
	n.refresh += 29
	n.lookup(n.key^(1<<bit), "", false, nil)
}

// observe folds a contact into the routing table (and the endpoint routing
// cache). Buckets evict nothing on sight — a full bucket ignores the
// newcomer, Kademlia's classic stale-resistant policy; dead entries leave
// through dropContact when an RPC to them times out.
func (n *kadNode) observe(c kadContact) {
	if c.key == n.key || c.id.Equal(n.id) {
		return
	}
	n.ep.AddRoute(c.id, c.addr)
	b := BucketIndex(n.key, c.key)
	for i, old := range n.buckets[b] {
		if old.key == c.key {
			// Move to most-recently-seen position.
			n.buckets[b] = append(append(n.buckets[b][:i], n.buckets[b][i+1:]...), c)
			return
		}
	}
	if len(n.buckets[b]) < n.k.cfg.K {
		n.buckets[b] = append(n.buckets[b], c)
	}
}

// dropContact removes a presumed-dead contact from the routing table.
func (n *kadNode) dropContact(key uint64) {
	b := BucketIndex(n.key, key)
	if b >= 64 {
		return // key == n.key: not in any bucket
	}
	for i, c := range n.buckets[b] {
		if c.key == key {
			n.buckets[b] = append(n.buckets[b][:i], n.buckets[b][i+1:]...)
			return
		}
	}
}

// closest returns up to want known contacts by XOR distance to target.
func (n *kadNode) closest(target uint64, want int) []kadContact {
	var all []kadContact
	for b := range n.buckets {
		all = append(all, n.buckets[b]...)
	}
	sortContacts(all, target)
	if len(all) > want {
		all = all[:want]
	}
	return all
}

// sortContacts orders contacts by XOR distance to target (insertion sort:
// slices are small, and avoiding sort.Slice keeps equal-distance ordering
// deterministic without a tiebreak closure).
func sortContacts(cs []kadContact, target uint64) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].key^target < cs[j-1].key^target; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// RPC wire format (resolver payload, text lines):
//
//	query:    "find <targetHex> <key>"  |  "store <key>"
//	response: "1"|"0" (value held here), then one contact per line:
//	          "<keyHex> <peer id> <transport addr>"
//
// The caller's own contact is not embedded: the resolver query already
// carries Src/SrcAddr, and the 64-bit key is a hash of Src, so the callee
// learns the caller for free (and vice versa for responses).

func encodeContacts(found bool, cs []kadContact) []byte {
	var b strings.Builder
	if found {
		b.WriteString("1")
	} else {
		b.WriteString("0")
	}
	for _, c := range cs {
		fmt.Fprintf(&b, "\n%016x %s %s", c.key, c.id, c.addr)
	}
	return []byte(b.String())
}

func decodeContacts(payload []byte) (found bool, cs []kadContact) {
	lines := strings.Split(string(payload), "\n")
	if len(lines) == 0 {
		return false, nil
	}
	found = lines[0] == "1"
	for _, ln := range lines[1:] {
		parts := strings.SplitN(ln, " ", 3)
		if len(parts) != 3 {
			continue
		}
		key, err := strconv.ParseUint(parts[0], 16, 64)
		if err != nil {
			continue
		}
		id, err := ids.Parse(parts[1])
		if err != nil || id.IsNil() {
			continue
		}
		cs = append(cs, kadContact{key: key, id: id, addr: transport.Addr(parts[2])})
	}
	return found, cs
}

// handleRPC serves find/store queries from other overlay members.
func (n *kadNode) handleRPC(q *resolver.Query) {
	if !n.alive {
		return
	}
	// Learn the caller: its 64-bit key is derived from its peer ID.
	n.observe(kadContact{key: IDHash(q.Src), id: q.Src, addr: q.SrcAddr})
	fields := strings.SplitN(strings.SplitN(string(q.Payload), "\n", 2)[0], " ", 3)
	switch fields[0] {
	case "store":
		if len(fields) >= 2 && fields[1] != "" {
			n.store[fields[1]] = true
		}
		_ = n.res.Respond(q, encodeContacts(true, nil))
	case "find":
		if len(fields) < 2 {
			return
		}
		target, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return
		}
		key := ""
		if len(fields) == 3 {
			key = fields[2]
		}
		found := key != "" && n.store[key]
		_ = n.res.Respond(q, encodeContacts(found, n.closest(target, n.k.cfg.K)))
	}
}

// kadOp is one iterative lookup in flight at its originator.
type kadOp struct {
	n      *kadNode
	target uint64
	key    string // "" for pure FIND_NODE (refresh, bootstrap)
	store  bool   // publish: STORE at the K closest on convergence
	cb     func(Result)
	start  time.Duration

	shortlist []kadContact    // candidates, XOR-sorted, failures removed
	depth     map[uint64]int  // contact key -> iteration depth discovered at
	queried   map[uint64]bool // RPC issued (includes failures)
	responded map[uint64]bool // RPC answered
	inflight  int
	finished  bool
}

// lookup starts an iterative operation toward target from this node.
func (n *kadNode) lookup(target uint64, key string, store bool, cb func(Result)) {
	op := &kadOp{
		n: n, target: target, key: key, store: store, cb: cb,
		start:     n.env.Now(),
		depth:     make(map[uint64]int),
		queried:   make(map[uint64]bool),
		responded: make(map[uint64]bool),
	}
	for _, c := range n.closest(target, n.k.cfg.K) {
		op.add(c, 1)
	}
	op.step()
}

// add inserts a newly learned contact at the given iteration depth.
func (op *kadOp) add(c kadContact, depth int) {
	if c.key == op.n.key {
		return
	}
	if _, known := op.depth[c.key]; known {
		return
	}
	op.depth[c.key] = depth
	op.shortlist = append(op.shortlist, c)
	sortContacts(op.shortlist, op.target)
}

// step issues RPCs until Alpha are in flight or the K closest known
// contacts have all been queried; with nothing in flight either, the
// operation has converged.
func (op *kadOp) step() {
	if op.finished || !op.n.alive {
		return
	}
	cfg := op.n.k.cfg
	for op.inflight < cfg.Alpha {
		c, ok := op.nextCandidate()
		if !ok {
			break
		}
		op.queried[c.key] = true
		op.inflight++
		op.sendFind(c)
	}
	if op.inflight == 0 {
		op.converged()
	}
}

// nextCandidate returns the closest unqueried contact among the K closest
// known, if any.
func (op *kadOp) nextCandidate() (kadContact, bool) {
	limit := op.n.k.cfg.K
	if limit > len(op.shortlist) {
		limit = len(op.shortlist)
	}
	for _, c := range op.shortlist[:limit] {
		if !op.queried[c.key] {
			return c, true
		}
	}
	return kadContact{}, false
}

func (op *kadOp) sendFind(c kadContact) {
	payload := fmt.Sprintf("find %016x %s", op.target, op.key)
	op.n.ep.AddRoute(c.id, c.addr)
	_, err := op.n.res.SendQuery(c.id, KadHandlerName, []byte(payload),
		func(data []byte, from ids.ID, _ int) { op.onResponse(c, data) },
		func(uint64) { op.onTimeout(c) })
	if err != nil {
		op.onTimeout(c)
	}
}

func (op *kadOp) onResponse(c kadContact, data []byte) {
	if op.responded[c.key] {
		return
	}
	op.responded[c.key] = true
	op.inflight--
	op.n.observe(c)
	found, contacts := decodeContacts(data)
	d := op.depth[c.key]
	for _, nc := range contacts {
		op.n.observe(nc)
		op.add(nc, d+1)
	}
	if found && op.key != "" && !op.store {
		op.finish(Result{OK: true, Hops: d, Latency: op.n.env.Now() - op.start})
		return
	}
	op.step()
}

// onTimeout handles a dead (or refused) RPC target: evict it everywhere
// and route around. This is the self-repair the static ring lacks.
func (op *kadOp) onTimeout(c kadContact) {
	if op.finished || op.responded[c.key] {
		return
	}
	op.responded[c.key] = true
	op.inflight--
	op.n.dropContact(c.key)
	for i, sc := range op.shortlist {
		if sc.key == c.key {
			op.shortlist = append(op.shortlist[:i], op.shortlist[i+1:]...)
			break
		}
	}
	op.step()
}

// converged runs when the K closest known contacts have all answered (or
// died): FIND_VALUE failed, FIND_NODE finished, publish stores.
func (op *kadOp) converged() {
	if op.store {
		limit := op.n.k.cfg.K
		if limit > len(op.shortlist) {
			limit = len(op.shortlist)
		}
		hops := 0
		payload := []byte("store " + op.key)
		for _, c := range op.shortlist[:limit] {
			if op.depth[c.key] > hops {
				hops = op.depth[c.key]
			}
			_, _ = op.n.res.SendQuery(c.id, KadHandlerName, payload,
				func([]byte, ids.ID, int) {}, nil)
		}
		// The originator holds a replica too if it is at least as close
		// as the furthest chosen contact (or nothing else was reachable).
		if limit == 0 || op.n.key^op.target <= op.shortlist[limit-1].key^op.target {
			op.n.store[op.key] = true
		}
		op.finish(Result{OK: limit > 0, Hops: hops, Latency: op.n.env.Now() - op.start})
		return
	}
	ok := op.key != "" && op.n.store[op.key] // local hit: zero-hop success
	hops := 0
	op.finish(Result{OK: ok, Hops: hops, Latency: op.n.env.Now() - op.start})
}

func (op *kadOp) finish(r Result) {
	if op.finished {
		return
	}
	op.finished = true
	if op.cb != nil {
		op.cb(r)
	}
}
