// Package routing defines the pluggable routing layer the §3.3 comparison
// is measured through. The paper frames JXTA's loosely-consistent DHT as a
// middle point between unstructured flooding (JXTA 1.0) and structured DHTs
// (Chord-class, Kademlia-class): this package pins that claim down with two
// seams.
//
// The first seam is Strategy, the node-level replica-placement decision the
// discovery service delegates: given the current ordered peerview and a
// tuple key, which rendezvous should hold (and be asked for) the replica?
// The paper's linear position hash (discovery.ReplicaPeer) is the default;
// XORPlacement swaps in the Kademlia metric — closest hashed peer ID by XOR
// distance — without touching any other part of the LC-DHT pipeline. Node
// configuration selects the strategy (node.Config.Router, deploy.Spec.Routing,
// jxta.SimOptions.Routing).
//
// The second seam is Backend, the overlay-level surface the bake-off
// experiments drive: publish a key, look a key up with hop/latency/success
// accounting, fail-stop nodes, and force maintenance rounds. Four backends
// implement it at equal scale: flooding (internal/flood), the SRDI walk
// (the full JXTA stack, adapted in internal/experiments), a static Chord
// ring (internal/chord) and the iterative Kademlia overlay in this package.
package routing

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math/bits"
	"time"

	"jxta/internal/ids"
)

// Result is the per-operation accounting every backend reports.
type Result struct {
	// OK reports whether the operation definitively succeeded (a lookup
	// found the key; a publish placed it). A callback that never fires is
	// also a failure — harnesses impose their own deadline on top.
	OK bool
	// Hops is the routing depth: resolver forwards for the SRDI walk,
	// ring forwards for Chord, graph distance for flooding, and the
	// iteration depth at which the value was found for Kademlia.
	Hops int
	// Latency is the virtual time from issue to completion.
	Latency time.Duration
}

// Backend is one deployed routing overlay under bake-off measurement.
// Nodes are addressed by deployment index [0, N).
type Backend interface {
	// Name identifies the backend ("flood", "srdi", "chord", "kademlia").
	Name() string
	// N returns the overlay size.
	N() int
	// Alive reports whether node i has not been killed.
	Alive(i int) bool
	// Publish places key on the overlay, originating at node from. The
	// settling traffic (replication, iterative store) runs inside the
	// harness's subsequent Run window.
	Publish(from int, key string)
	// Lookup resolves key from node from; cb fires at most once with the
	// operation accounting. A lookup that cannot complete (dead route,
	// no holder reachable) may simply never call back.
	Lookup(from int, key string, cb func(Result))
	// Maintain forces one maintenance round where the backend has an
	// explicit one (Kademlia bucket refresh); backends whose maintenance
	// is timer-driven (SRDI) or nonexistent (static Chord, flood) no-op.
	Maintain()
	// Kill fail-stops node i silently: nothing is sent, the transport
	// detaches, and peers learn of the death only through their own
	// timeouts.
	Kill(i int)
}

// KeyHash maps a tuple key into the 64-bit identifier space shared by every
// structured backend: the first 8 bytes (big endian) of the SHA-1 digest —
// the same digest the LC-DHT replica function uses (discovery.KeyHash).
func KeyHash(key string) uint64 {
	sum := sha1.Sum([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// IDHash maps a JXTA peer ID into the same 64-bit space (Kademlia k-buckets
// and the XOR placement strategy hash peer IDs, not raw key strings).
func IDHash(id ids.ID) uint64 { return KeyHash(id.String()) }

// Strategy decides which member of the current ordered peerview is
// responsible for a key — the replica-placement seam of the discovery
// service. Implementations must be pure functions of (view, key) so that
// publish-side placement and query-side routing agree whenever two peers
// hold the same view (the paper's property (2)).
type Strategy interface {
	// Name identifies the strategy in configuration and metrics.
	Name() string
	// Place returns the responsible peer, or ids.Nil for an empty view.
	Place(view []ids.ID, key string) ids.ID
}

// XORPlacement is the Kademlia-metric placement strategy: the view member
// whose hashed peer ID has the smallest XOR distance to the hashed key.
// Like the paper's linear position hash it is consistent across peers with
// equal views, but it degrades differently under view divergence: a member
// missing from one view shifts placement only for keys whose closest peer
// it was, instead of shifting every position above the gap.
type XORPlacement struct{}

// Name identifies the strategy.
func (XORPlacement) Name() string { return "kademlia" }

// Place returns the XOR-closest view member for the key.
func (XORPlacement) Place(view []ids.ID, key string) ids.ID {
	if len(view) == 0 {
		return ids.Nil
	}
	target := KeyHash(key)
	best := view[0]
	bestD := IDHash(view[0]) ^ target
	for _, id := range view[1:] {
		if d := IDHash(id) ^ target; d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

// ParseStrategy resolves a configuration name to a Strategy. The empty
// string and the LC-DHT aliases return nil, meaning "use the discovery
// service's built-in linear placement" (the paper-faithful default).
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "lcdht", "srdi":
		return nil, nil
	case "kademlia":
		return XORPlacement{}, nil
	default:
		return nil, fmt.Errorf("routing: unknown strategy %q (want lcdht or kademlia)", name)
	}
}

// Distance returns the XOR distance between two points of the identifier
// space (exported for tests and experiment assertions).
func Distance(a, b uint64) uint64 { return a ^ b }

// BucketIndex returns the k-bucket index of contact relative to self: the
// number of leading bits they share. Bucket 0 holds the most distant half
// of the space. Equal keys have no bucket; callers filter self first.
func BucketIndex(self, contact uint64) int {
	return bits.LeadingZeros64(self ^ contact)
}
