package routing

import (
	"time"

	"jxta/internal/chord"
	"jxta/internal/flood"
)

// ChordBackend adapts the static Chord ring (internal/chord) to Backend.
// Lookup success is verified against the owner's store: a routed-to owner
// that never recorded the key reports OK=false rather than counting a
// reachable-but-empty node as a hit.
type ChordBackend struct {
	Ring  *chord.Ring
	nodes []*chord.Node
}

// NewChordBackend wraps a built ring.
func NewChordBackend(r *chord.Ring) *ChordBackend {
	return &ChordBackend{Ring: r, nodes: r.Nodes()}
}

// Name implements Backend.
func (b *ChordBackend) Name() string { return "chord" }

// N implements Backend.
func (b *ChordBackend) N() int { return len(b.nodes) }

// Alive implements Backend.
func (b *ChordBackend) Alive(i int) bool { return b.nodes[i].Alive() }

// Publish implements Backend.
func (b *ChordBackend) Publish(from int, key string) {
	b.Ring.Store(b.nodes[from], KeyHash(key), nil)
}

// Lookup implements Backend.
func (b *ChordBackend) Lookup(from int, key string, cb func(Result)) {
	hash := KeyHash(key)
	b.Ring.Lookup(b.nodes[from], hash, func(_ uint64, hops int, elapsed time.Duration) {
		ok := b.Ring.Owner(hash).Stored(hash)
		cb(Result{OK: ok, Hops: hops, Latency: elapsed})
	})
}

// Maintain implements Backend: the ring is static by construction (the
// paper's classical-DHT comparisons assume a static network), so there is
// no maintenance protocol to run.
func (b *ChordBackend) Maintain() {}

// Kill implements Backend.
func (b *ChordBackend) Kill(i int) { b.nodes[i].Kill() }

// FloodBackend adapts the JXTA-1.0-style flooding overlay to Backend.
type FloodBackend struct {
	Net   *flood.Network
	nodes []*flood.Node
}

// NewFloodBackend wraps a built flooding overlay.
func NewFloodBackend(f *flood.Network) *FloodBackend {
	return &FloodBackend{Net: f, nodes: f.Nodes()}
}

// Name implements Backend.
func (b *FloodBackend) Name() string { return "flood" }

// N implements Backend.
func (b *FloodBackend) N() int { return len(b.nodes) }

// Alive implements Backend.
func (b *FloodBackend) Alive(i int) bool { return b.nodes[i].Alive() }

// Publish implements Backend: flooding publishes locally only (its O(1)
// publish / O(n) query trade-off, inverted from the LC-DHT).
func (b *FloodBackend) Publish(from int, key string) { b.nodes[from].Publish(key) }

// Lookup implements Backend. The TTL is the overlay size: the bake-off
// measures full-coverage flooding, not bounded-horizon variants.
func (b *FloodBackend) Lookup(from int, key string, cb func(Result)) {
	b.Net.Query(b.nodes[from], key, len(b.nodes), func(hops int, elapsed time.Duration) {
		cb(Result{OK: true, Hops: hops, Latency: elapsed})
	})
}

// Maintain implements Backend: the flood graph is static, nothing to do.
func (b *FloodBackend) Maintain() {}

// Kill implements Backend.
func (b *FloodBackend) Kill(i int) { b.nodes[i].Kill() }
