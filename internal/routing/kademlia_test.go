package routing

import (
	"fmt"
	"testing"
	"time"

	"jxta/internal/ids"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

func buildKad(t *testing.T, seed int64, n int) (*Kademlia, *simnet.Scheduler) {
	t.Helper()
	sched := simnet.NewScheduler(seed)
	net := transport.NewNetwork(sched, netmodel.Grid5000())
	kad, err := BuildKademlia(sched, net, n, KadConfig{RefreshInterval: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	kad.Bootstrap()
	sched.Run(sched.Now() + 10*time.Minute)
	return kad, sched
}

func TestKademliaPublishLookup(t *testing.T) {
	kad, sched := buildKad(t, 42, 32)
	for k := 0; k < 8; k++ {
		kad.Publish((k*5)%32, fmt.Sprintf("key-%d", k))
	}
	sched.Run(sched.Now() + time.Minute)
	ok, maxHops := 0, 0
	for k := 0; k < 8; k++ {
		kad.Lookup((k*7+3)%32, fmt.Sprintf("key-%d", k), func(r Result) {
			if r.OK {
				ok++
				if r.Hops > maxHops {
					maxHops = r.Hops
				}
			}
		})
		sched.Run(sched.Now() + 30*time.Second)
	}
	if ok != 8 {
		t.Fatalf("lookups succeeded %d/8", ok)
	}
	// 32 nodes, K=8: everything resolves within a few iterations.
	if maxHops > 6 {
		t.Errorf("max lookup depth %d, want <= 6", maxHops)
	}
}

func TestKademliaMissReportsFailure(t *testing.T) {
	kad, sched := buildKad(t, 43, 16)
	fired, ok := false, true
	kad.Lookup(0, "never-published", func(r Result) { fired, ok = true, r.OK })
	sched.Run(sched.Now() + 2*time.Minute)
	if !fired {
		t.Fatal("miss lookup never called back")
	}
	if ok {
		t.Fatal("lookup of unpublished key reported OK")
	}
}

// TestKademliaRoutesAroundChurn is the backend's reason to exist: after a
// quarter of the overlay fail-stops silently, iterative lookups time out on
// dead contacts, evict them, and still find live replicas.
func TestKademliaRoutesAroundChurn(t *testing.T) {
	n := 32
	kad, sched := buildKad(t, 44, n)
	for k := 0; k < 8; k++ {
		kad.Publish((k*5)%n, fmt.Sprintf("key-%d", k))
	}
	sched.Run(sched.Now() + time.Minute)
	// Kill 8 of 32, sparing the publishers (indices 0,5,10,...,35 mod 32).
	publishers := map[int]bool{}
	for k := 0; k < 8; k++ {
		publishers[(k*5)%n] = true
	}
	killed := 0
	for i := 0; i < n && killed < n/4; i++ {
		if publishers[i] {
			continue
		}
		kad.Kill(i)
		killed++
	}
	sched.Run(sched.Now() + 30*time.Second)
	ok := 0
	for k := 0; k < 8; k++ {
		from := (k*7 + 3) % n
		for !kad.Alive(from) {
			from = (from + 1) % n
		}
		kad.Lookup(from, fmt.Sprintf("key-%d", k), func(r Result) {
			if r.OK {
				ok++
			}
		})
		sched.Run(sched.Now() + 2*time.Minute)
	}
	// K=8 replicas per key and 25% dead: every key should still resolve.
	if ok < 7 {
		t.Errorf("post-churn lookups succeeded %d/8, want >= 7", ok)
	}
}

// TestKademliaDeterminism: identical seeds must replay identical outcomes
// (hop counts and latencies included) across two runs in one process.
func TestKademliaDeterminism(t *testing.T) {
	run := func() string {
		kad, sched := buildKad(t, 45, 24)
		for k := 0; k < 6; k++ {
			kad.Publish((k*5)%24, fmt.Sprintf("key-%d", k))
		}
		sched.Run(sched.Now() + time.Minute)
		out := ""
		for k := 0; k < 6; k++ {
			kad.Lookup((k*7+3)%24, fmt.Sprintf("key-%d", k), func(r Result) {
				out += fmt.Sprintf("%v/%d/%v;", r.OK, r.Hops, r.Latency)
			})
			sched.Run(sched.Now() + 30*time.Second)
		}
		return fmt.Sprintf("%s steps=%d", out, sched.Steps())
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed kademlia runs diverged\n first:  %s\n second: %s", a, b)
	}
}

func TestXORPlacementConsistency(t *testing.T) {
	rng := simnet.NewScheduler(7).NewEnv("t").Rand()
	view := make([]ids.ID, 20)
	for i := range view {
		view[i] = ids.NewRandom(ids.KindPeer, rng)
	}
	s := XORPlacement{}
	for k := 0; k < 50; k++ {
		key := fmt.Sprintf("key-%d", k)
		p := s.Place(view, key)
		if p.IsNil() {
			t.Fatalf("nil placement for %s", key)
		}
		// Consistent across calls and across view copies (property (2)
		// requires placement be a pure function of view+key).
		cp := append([]ids.ID(nil), view...)
		if !s.Place(cp, key).Equal(p) {
			t.Fatalf("placement not a pure function of view for %s", key)
		}
		// The chosen member really is the XOR-closest.
		want := IDHash(p) ^ KeyHash(key)
		for _, id := range view {
			if d := IDHash(id) ^ KeyHash(key); d < want {
				t.Fatalf("closer member than placement for %s", key)
			}
		}
	}
	if !s.Place(nil, "x").IsNil() {
		t.Error("empty view must place to nil")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, name := range []string{"", "lcdht", "srdi"} {
		s, err := ParseStrategy(name)
		if err != nil || s != nil {
			t.Errorf("ParseStrategy(%q) = %v, %v; want nil, nil", name, s, err)
		}
	}
	s, err := ParseStrategy("kademlia")
	if err != nil || s == nil {
		t.Fatalf("ParseStrategy(kademlia) = %v, %v", s, err)
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy(bogus) did not error")
	}
}

func TestBucketIndex(t *testing.T) {
	if got := BucketIndex(0, 1<<63); got != 0 {
		t.Errorf("most distant contact in bucket %d, want 0", got)
	}
	if got := BucketIndex(0, 1); got != 63 {
		t.Errorf("closest contact in bucket %d, want 63", got)
	}
}
