package env

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowMonotonic(t *testing.T) {
	r := NewReal("n", 1)
	a := r.Now()
	time.Sleep(2 * time.Millisecond)
	b := r.Now()
	if b <= a {
		t.Fatalf("Now not monotonic: %v then %v", a, b)
	}
}

func TestRealAfterFires(t *testing.T) {
	r := NewReal("n", 1)
	done := make(chan struct{})
	r.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("After callback never fired")
	}
}

func TestRealAfterCancel(t *testing.T) {
	r := NewReal("n", 1)
	fired := make(chan struct{}, 1)
	tm := r.After(50*time.Millisecond, func() { fired <- struct{}{} })
	if !tm.Cancel() {
		t.Fatal("Cancel reported not-pending for pending timer")
	}
	select {
	case <-fired:
		t.Fatal("canceled callback fired")
	case <-time.After(120 * time.Millisecond):
	}
}

func TestRealCallbacksSerialized(t *testing.T) {
	r := NewReal("n", 1)
	var inCritical int32
	var wg sync.WaitGroup
	violation := false
	for i := 0; i < 20; i++ {
		wg.Add(1)
		r.After(time.Duration(i%3)*time.Millisecond, func() {
			defer wg.Done()
			inCritical++
			if inCritical != 1 {
				violation = true
			}
			time.Sleep(time.Millisecond)
			inCritical--
		})
	}
	wg.Wait()
	if violation {
		t.Fatal("callbacks overlapped")
	}
}

func TestRealLockedExcludesCallbacks(t *testing.T) {
	r := NewReal("n", 1)
	order := make(chan string, 2)
	r.Locked(func() {
		r.After(0, func() { order <- "cb" })
		time.Sleep(20 * time.Millisecond)
		order <- "locked"
	})
	first := <-order
	if first != "locked" {
		t.Fatalf("callback ran while Locked section held the node: first=%q", first)
	}
}

func TestRealRandDeterministic(t *testing.T) {
	a := NewReal("a", 99).Rand().Int63()
	b := NewReal("b", 99).Rand().Int63()
	if a != b {
		t.Fatal("same seed produced different first values")
	}
}

func TestTickerStopFromInsideCallback(t *testing.T) {
	r := NewReal("n", 1)
	var mu sync.Mutex
	count := 0
	var tk *Ticker
	done := make(chan struct{})
	r.Locked(func() {
		tk = NewTicker(r, 5*time.Millisecond, func() {
			mu.Lock()
			defer mu.Unlock()
			count++
			if count == 3 {
				tk.Stop()
				close(done)
			}
		})
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ticker never reached 3 firings")
	}
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop, want 3", count)
	}
}

func TestName(t *testing.T) {
	if NewReal("edge-1", 0).Name() != "edge-1" {
		t.Fatal("Name mismatch")
	}
}
