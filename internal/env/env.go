// Package env defines the runtime abstraction all JXTA services are written
// against. A service never reads the wall clock or sets OS timers directly;
// it asks its Env for the current time and for callbacks. This lets the same
// protocol code run unchanged either inside the deterministic discrete-event
// simulator (internal/simnet) for the paper's large-scale experiments, or on
// the real clock with real TCP transports for live deployments.
//
// Contract shared by all implementations:
//
//   - Callbacks belonging to one Env are never executed concurrently with
//     each other, so per-node protocol state needs no locking.
//   - Time is expressed as a time.Duration offset from an arbitrary epoch
//     (experiment start). Only differences are meaningful.
//   - Rand returns a source that is private to this Env; in simulation it is
//     deterministically seeded so whole experiments replay bit-for-bit.
package env

import (
	"math/rand"
	"sync"
	"time"
)

// Timer is a cancelable pending callback.
type Timer interface {
	// Cancel prevents the callback from running if it has not started yet.
	// It reports whether the callback was still pending.
	Cancel() bool
}

// Env is the per-node runtime: virtual or wall clock, timers, randomness.
type Env interface {
	// Now returns the current time as an offset from the epoch.
	Now() time.Duration
	// After schedules fn to run d from now. fn runs serialized with every
	// other callback of this Env.
	After(d time.Duration, fn func()) Timer
	// Rand returns this node's private random source.
	Rand() *rand.Rand
	// Name identifies the node for logs and metrics.
	Name() string
}

// Ticker repeatedly invokes fn every interval until Stop is called. It is a
// convenience built on Env.After, matching the peerview protocol's
// "repeat ... wait for PEERVIEW_INTERVAL" loop shape.
type Ticker struct {
	env      Env
	interval time.Duration
	fn       func()
	stopped  bool
	pending  Timer
}

// NewTicker starts a ticker whose first firing happens one interval from now.
func NewTicker(e Env, interval time.Duration, fn func()) *Ticker {
	t := &Ticker{env: e, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.pending = t.env.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop halts the ticker. Safe to call from inside the tick callback.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.pending != nil {
		t.pending.Cancel()
	}
}

// Real is an Env running on the wall clock, for live TCP deployments. All
// callbacks are serialized through an internal mutex, honoring the Env
// contract. The epoch is the moment NewReal was called.
type Real struct {
	mu    sync.Mutex
	name  string
	rng   *rand.Rand
	epoch time.Time
}

// NewReal builds a wall-clock Env. The RNG is seeded explicitly so that even
// live runs can be made reproducible where latency permits.
func NewReal(name string, seed int64) *Real {
	return &Real{
		name:  name,
		rng:   rand.New(rand.NewSource(seed)),
		epoch: time.Now(),
	}
}

// Now implements Env.
func (r *Real) Now() time.Duration { return time.Since(r.epoch) }

// Name implements Env.
func (r *Real) Name() string { return r.name }

// Rand implements Env. The caller must only use the source from inside
// callbacks (which are serialized); this mirrors the simulator's contract.
func (r *Real) Rand() *rand.Rand { return r.rng }

type realTimer struct {
	t *time.Timer
}

func (rt realTimer) Cancel() bool { return rt.t.Stop() }

// After implements Env. The callback acquires the node mutex, so it never
// overlaps other callbacks or Locked sections of the same node.
func (r *Real) After(d time.Duration, fn func()) Timer {
	t := time.AfterFunc(d, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		fn()
	})
	return realTimer{t}
}

// Locked runs fn under the same mutex that serializes callbacks. External
// goroutines (e.g. a TCP read loop delivering an inbound message) must enter
// protocol code through Locked.
func (r *Real) Locked(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
}
