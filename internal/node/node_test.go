package node

import (
	"testing"
	"time"

	"jxta/internal/ids"
	"jxta/internal/netmodel"
	"jxta/internal/peerview"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

func newPair(t *testing.T) (*simnet.Scheduler, *Node, *Node) {
	t.Helper()
	sched := simnet.NewScheduler(1)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	trR, err := net.Attach("rdv", netmodel.Rennes)
	if err != nil {
		t.Fatal(err)
	}
	rdv := New(sched.NewEnv("rdv"), trR, Config{Name: "rdv", Role: Rendezvous})
	trE, err := net.Attach("edge", netmodel.Lyon)
	if err != nil {
		t.Fatal(err)
	}
	edge := New(sched.NewEnv("edge"), trE, Config{
		Name:  "edge",
		Role:  Edge,
		Seeds: []peerview.Seed{rdv.Seed()},
	})
	return sched, rdv, edge
}

func TestRoleString(t *testing.T) {
	if Edge.String() != "edge" || Rendezvous.String() != "rendezvous" {
		t.Fatal("role names wrong")
	}
}

func TestAssemblyRoles(t *testing.T) {
	_, rdv, edge := newPair(t)
	if !rdv.IsRendezvous() || rdv.PeerView == nil || rdv.RdvAdv() == nil {
		t.Fatal("rendezvous assembly incomplete")
	}
	if edge.IsRendezvous() || edge.PeerView != nil || edge.RdvAdv() != nil {
		t.Fatal("edge assembled rendezvous machinery")
	}
	if rdv.Discovery == nil || rdv.Resolver == nil || rdv.Cache == nil || rdv.Endpoint == nil {
		t.Fatal("missing services")
	}
	if rdv.Discovery.Index() == nil {
		t.Fatal("rendezvous lacks an SRDI index")
	}
	if edge.Discovery.Index() != nil {
		t.Fatal("edge grew an SRDI index")
	}
}

func TestDefaultGroupAndName(t *testing.T) {
	sched := simnet.NewScheduler(2)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	tr, _ := net.Attach("x", netmodel.Rennes)
	n := New(sched.NewEnv("x"), tr, Config{Role: Rendezvous})
	if n.Config.Group.IsNil() {
		t.Fatal("group not defaulted")
	}
	if n.Config.Group != ids.FromName(ids.KindGroup, "NetPeerGroup") {
		t.Fatal("default group is not the NetPeerGroup")
	}
	if n.Config.Name != "x" {
		t.Fatalf("name not defaulted from env: %q", n.Config.Name)
	}
	if n.RdvAdv().Name != "x" || !n.RdvAdv().PeerID.Equal(n.ID) {
		t.Fatal("rdv advertisement fields wrong")
	}
}

func TestStartConnectsEdge(t *testing.T) {
	sched, rdv, edge := newPair(t)
	rdv.Start()
	edge.Start()
	sched.Run(time.Minute)
	got, ok := edge.Rendezvous.ConnectedRdv()
	if !ok || !got.Equal(rdv.ID) {
		t.Fatal("edge did not connect after Start")
	}
	edge.Stop()
	rdv.Stop()
	sched.Run(2 * time.Minute)
	if rdv.Rendezvous.HasClient(edge.ID) {
		t.Fatal("lease survived Stop")
	}
}

func TestStartStopIdempotent(t *testing.T) {
	sched, rdv, _ := newPair(t)
	rdv.Start()
	rdv.Start()
	rdv.Stop()
	rdv.Stop()
	rdv.Start() // restartable
	sched.Run(time.Minute)
}

func TestPeerAdv(t *testing.T) {
	_, rdv, _ := newPair(t)
	adv := rdv.PeerAdv()
	if !adv.PeerID.Equal(rdv.ID) || adv.Name != "rdv" || len(adv.Addresses) != 1 {
		t.Fatalf("PeerAdv = %+v", adv)
	}
}

func TestDeterministicIDs(t *testing.T) {
	build := func() ids.ID {
		sched := simnet.NewScheduler(77)
		net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
		tr, _ := net.Attach("n", netmodel.Rennes)
		return New(sched.NewEnv("n"), tr, Config{Role: Edge}).ID
	}
	if !build().Equal(build()) {
		t.Fatal("same seed produced different node IDs")
	}
}
