package node

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/discovery"
	"jxta/internal/ids"
	"jxta/internal/netmodel"
	"jxta/internal/peerview"
	"jxta/internal/rendezvous"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

// mergeHarness deploys isolated rendezvous islands plus bridge edges on one
// scheduler, with self-healing and the island merge enabled — the unit-level
// counterpart of the volatility sweep's attrition endgame.
type mergeHarness struct {
	sched  *simnet.Scheduler
	net    *transport.Network
	nodes  []*Node
	merges []string // "<node>:<peer>" in completion order (replay fingerprint)
}

func newMergeHarness(t *testing.T, seed int64) *mergeHarness {
	t.Helper()
	sched := simnet.NewScheduler(seed)
	return &mergeHarness{
		sched: sched,
		net:   transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond)),
	}
}

func mergeLeaseConfig() rendezvous.Config {
	return rendezvous.Config{
		LeaseDuration:    4 * time.Minute,
		ResponseTimeout:  10 * time.Second,
		FailoverAttempts: 2,
		SelfHeal:         true,
		IslandMerge:      true,
	}
}

// addNode deploys one peer. Rendezvous peers get no seeds — each is its own
// island until a merge finds it.
func (h *mergeHarness) addNode(t *testing.T, name string, role Role, seeds []peerview.Seed) *Node {
	t.Helper()
	tr, err := h.net.Attach(name, netmodel.Site(len(h.nodes)%netmodel.NumSites))
	if err != nil {
		t.Fatal(err)
	}
	n := New(h.sched.NewEnv(name), tr, Config{
		Name:     name,
		Role:     role,
		Seeds:    seeds,
		Peerview: peerview.Config{ProbeTimeoutRounds: 3},
		Lease:    mergeLeaseConfig(),
	})
	n.MergeObserved = func(nn *Node, peer ids.ID) {
		h.merges = append(h.merges, nn.Config.Name+":"+peer.Short())
	}
	h.nodes = append(h.nodes, n)
	return n
}

func (h *mergeHarness) run(d time.Duration) { h.sched.Run(h.sched.Now() + d) }

// viewFingerprint renders every rendezvous-role node's sorted view — the
// tier topology, replayed runs must agree byte for byte.
func (h *mergeHarness) viewFingerprint() string {
	out := ""
	for _, n := range h.nodes {
		if !n.IsRendezvous() {
			continue
		}
		out += n.Config.Name + "=["
		for _, id := range n.PeerView.View() {
			out += id.Short() + " "
		}
		out += "];"
	}
	return out
}

// checkViewInvariants asserts every view is strictly ID-sorted (no
// duplicate members) — the structural invariant the merge must preserve.
func (h *mergeHarness) checkViewInvariants(t *testing.T) {
	t.Helper()
	for _, n := range h.nodes {
		if !n.IsRendezvous() {
			continue
		}
		view := n.PeerView.View()
		if !sort.SliceIsSorted(view, func(i, j int) bool { return view[i].Less(view[j]) }) {
			t.Errorf("%s: view not sorted: %v", n.Config.Name, view)
		}
		for i := 1; i < len(view); i++ {
			if view[i].Equal(view[i-1]) {
				t.Errorf("%s: duplicate view member %s", n.Config.Name, view[i])
			}
		}
	}
}

// runSymmetricMerge drives the crossing-handshake case: A initiates a merge
// with B in the same scheduler instant B initiates one with A.
func runSymmetricMerge(t *testing.T, seed int64) (fingerprint string) {
	t.Helper()
	h := newMergeHarness(t, seed)
	a := h.addNode(t, "a", Rendezvous, nil)
	b := h.addNode(t, "b", Rendezvous, nil)
	a.Start()
	b.Start()
	h.run(time.Minute)
	h.sched.After(0, func() { a.PeerView.Merge(b.Seed()) })
	h.sched.After(0, func() { b.PeerView.Merge(a.Seed()) })
	h.run(5 * time.Minute)
	h.checkViewInvariants(t)
	if !a.PeerView.Contains(b.ID) || !b.PeerView.Contains(a.ID) {
		t.Fatalf("symmetric merge did not union: a=%d b=%d members",
			a.PeerView.Size(), b.PeerView.Size())
	}
	if a.PeerView.Size() != 1 || b.PeerView.Size() != 1 {
		t.Fatalf("crossing merges duplicated members: a=%d b=%d",
			a.PeerView.Size(), b.PeerView.Size())
	}
	return h.viewFingerprint() + fmt.Sprint(h.merges)
}

// TestSymmetricSimultaneousMerge: A→B and B→A in the same instant must
// converge to one clean mutual view, deterministically across replays.
func TestSymmetricSimultaneousMerge(t *testing.T) {
	first := runSymmetricMerge(t, 9)
	second := runSymmetricMerge(t, 9)
	if first != second {
		t.Fatalf("symmetric merge not deterministic\n first:  %s\n second: %s", first, second)
	}
}

// runMergeMidHandoff reproduces a merge racing a graceful stop: B's merge
// handshake toward A is in flight when A stops and hands its clients off.
func runMergeMidHandoff(t *testing.T, seed int64) string {
	t.Helper()
	h := newMergeHarness(t, seed)
	a := h.addNode(t, "a", Rendezvous, nil)
	b := h.addNode(t, "b", Rendezvous, nil)
	e1 := h.addNode(t, "e1", Edge, []peerview.Seed{a.Seed()})
	e2 := h.addNode(t, "e2", Edge, []peerview.Seed{a.Seed()})
	for _, n := range h.nodes {
		n.Start()
	}
	h.run(2 * time.Minute) // e1, e2 lease with a
	// B's merge leaves in this instant; A stops before the one-way network
	// latency elapses, so the handshake reaches a peer mid-handoff.
	h.sched.After(0, func() { b.PeerView.Merge(a.Seed()) })
	h.sched.After(500*time.Microsecond, func() { a.Stop() })
	h.run(10 * time.Minute)
	h.checkViewInvariants(t)
	if a.Started() {
		t.Fatal("a still running")
	}
	// The handoff must have elected one of the clients; the survivor tier
	// keeps serving the other edge.
	var successor *Node
	for _, n := range []*Node{e1, e2} {
		if n.IsRendezvous() {
			successor = n
		}
	}
	if successor == nil {
		t.Fatal("graceful stop elected no successor")
	}
	if successor.PeerView.Contains(a.ID) {
		t.Fatal("stopped rendezvous resurrected in the successor's view")
	}
	return h.viewFingerprint() + fmt.Sprint(h.merges)
}

// TestMergeArrivingMidGracefulHandoff: the stopping peer must ignore the
// in-flight handshake (its peerview is stopped), the handoff must complete
// normally, and the whole interleaving must replay identically.
func TestMergeArrivingMidGracefulHandoff(t *testing.T) {
	first := runMergeMidHandoff(t, 11)
	second := runMergeMidHandoff(t, 11)
	if first != second {
		t.Fatalf("merge-mid-handoff not deterministic\n first:  %s\n second: %s", first, second)
	}
}

// runThreeIslandChain drives the bridge scenario from the ROADMAP: three
// isolated rendezvous islands converge into one tier through a single edge
// that contacted all three over its lifetime.
func runThreeIslandChain(t *testing.T, seed int64) string {
	t.Helper()
	h := newMergeHarness(t, seed)
	a := h.addNode(t, "a", Rendezvous, nil)
	b := h.addNode(t, "b", Rendezvous, nil)
	c := h.addNode(t, "c", Rendezvous, nil)
	// One client per island keeps every anchor's island alive and observable.
	ca := h.addNode(t, "ca", Edge, []peerview.Seed{a.Seed()})
	h.addNode(t, "cb", Edge, []peerview.Seed{b.Seed()})
	cc := h.addNode(t, "cc", Edge, []peerview.Seed{c.Seed()})
	// The bridge rotates c → b → a as its lease holders die under it.
	bridge := h.addNode(t, "bridge", Edge, []peerview.Seed{c.Seed(), b.Seed(), a.Seed()})
	for _, n := range h.nodes {
		n.Start()
	}
	h.run(2 * time.Minute) // bridge leases at c
	if rdv, ok := bridge.Rendezvous.ConnectedRdv(); !ok || !rdv.Equal(c.ID) {
		t.Fatalf("bridge did not lease at c first")
	}
	// c's island content, to prove cross-island discovery post-merge.
	cc.Discovery.Publish(&advertisement.Resource{
		ResID: ids.FromName(ids.KindAdv, "island-c-res"),
		Name:  "IslandC",
	}, 0)
	h.run(time.Minute)
	c.Kill()
	h.run(3 * time.Minute) // bridge fails over to b
	b.Kill()
	h.run(3 * time.Minute) // bridge fails over to a
	if rdv, ok := bridge.Rendezvous.ConnectedRdv(); !ok || !rdv.Equal(a.ID) {
		rdvStr := "none"
		if ok {
			rdvStr = rdv.Short()
		}
		t.Fatalf("bridge did not end at a (holds %s)", rdvStr)
	}
	// The islands return at their old addresses, still mutually unknown —
	// only the bridge's rumor store ties the three together.
	h.net.Reattach(b.Endpoint.Transport().(*transport.Sim))
	b.Restart()
	h.net.Reattach(c.Endpoint.Transport().(*transport.Sim))
	c.Restart()
	h.run(15 * time.Minute)
	h.checkViewInvariants(t)
	// Orphaned island clients may have promoted themselves while their
	// anchor was down (self-healing); the claim is that whatever tier
	// exists now is a SINGLE one: every rendezvous-role node sees all the
	// others, a/b/c included.
	var tier []*Node
	for _, n := range h.nodes {
		if n.IsRendezvous() && n.Started() {
			tier = append(tier, n)
		}
	}
	if len(tier) < 3 {
		t.Fatalf("tier shrank to %d members", len(tier))
	}
	for _, n := range tier {
		if n.PeerView.Size() != len(tier)-1 {
			t.Fatalf("tier not single after bridge gossip: %s sees %d of %d",
				n.Config.Name, n.PeerView.Size(), len(tier)-1)
		}
	}
	// Cross-island discovery: a's client finds content republished by c's
	// client after c's cold restart (the SRDI re-replicated on merge).
	cc.Discovery.Publish(&advertisement.Resource{
		ResID: ids.FromName(ids.KindAdv, "island-c-res"),
		Name:  "IslandC",
	}, 0)
	h.run(2 * time.Minute)
	found := false
	if err := ca.Discovery.Query("Resource", "Name", "IslandC",
		func(r discovery.Result) { found = found || len(r.Advs) > 0 },
		nil); err != nil {
		t.Fatalf("cross-island query failed: %v", err)
	}
	h.run(time.Minute)
	if !found {
		t.Fatal("cross-island discovery found nothing after the merge")
	}
	return h.viewFingerprint() + fmt.Sprint(h.merges)
}

// TestThreeIslandChainConvergesThroughBridge: the chain A–B–C converges
// through one bridge edge, replayed twice for determinism.
func TestThreeIslandChainConvergesThroughBridge(t *testing.T) {
	first := runThreeIslandChain(t, 21)
	second := runThreeIslandChain(t, 21)
	if first != second {
		t.Fatalf("three-island chain not deterministic\n first:  %s\n second: %s", first, second)
	}
}
