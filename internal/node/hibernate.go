package node

// Edge hibernation (PR 9). A steady-state edge — lease held, renewal timer
// armed, no pending queries, no streams, empty cache — spends minutes of
// simulated time completely idle, yet retains ~14 KB of live heap: service
// maps, metric caches, self-healing slices and a ~4.9 KB math/rand
// register. The hibernation layer freeze-dries all of it between events:
//
//   - After every dispatch on the node (timer callback or inbound
//     delivery), the settle hook checks every service for quiescence and,
//     if all agree, packs each one into a pooled record (releasing map
//     shells to free lists) and drops the RNG register, keeping only the
//     stream position.
//   - Execution re-enters a node in exactly two ways — an env.After
//     callback or an inbound endpoint delivery — and both are bracketed by
//     wake/settle hooks (simnet.NodeEnv.SetHibernation and
//     endpoint.SetHibernation). Services additionally rehydrate lazily on
//     first touch, so experiment drivers calling into a hibernated node
//     directly (Publish, Query, Dial, node verbs) are transparently safe.
//
// Freezing never cancels or re-arms a timer, never allocates IDs and never
// reorders events, and the packed records are content-preserving, so a
// hibernating run's event trajectory and wire traffic are byte-identical
// to a never-hibernating run. The golden-trajectory suite replays every
// experiment with hibernation forced on to prove it.
//
// Only edge-role nodes freeze: a rendezvous runs the peerview and LC-DHT
// and is permanently hot, matching the paper's super-peer asymmetry.

// hibEnv is the engine support hibernation needs from the node's env; the
// simulator's NodeEnv implements it, real-clock envs do not (a live
// process has no reason to freeze-dry nodes).
type hibEnv interface {
	SetHibernation(wake, settle func())
	FreezeRand()
	RandResident() bool
}

// hibernator tracks one node's hibernation state.
type hibernator struct {
	env     hibEnv
	frozen  bool
	wakes   uint64
	freezes uint64
}

// EnableHibernation arms hibernation for this node. Must run before the
// node starts (hooks wrap callbacks armed after installation). Reports
// whether the env supports it; calling twice is a no-op.
func (n *Node) EnableHibernation() bool {
	if n.hib != nil {
		return true
	}
	he, ok := n.Env.(hibEnv)
	if !ok {
		return false
	}
	n.hib = &hibernator{env: he}
	he.SetHibernation(n.hibWake, n.hibSettle)
	n.Endpoint.SetHibernation(n.hibWake, n.hibSettle)
	return true
}

// hibWake marks the node live. Rehydration itself is lazy — each service
// thaws on its first touch during the dispatch — so waking costs two
// stores, and a dispatch that touches nothing (a discovery push tick on an
// idle edge) re-freezes for free.
func (n *Node) hibWake() {
	if h := n.hib; h != nil && h.frozen {
		h.frozen = false
		h.wakes++
	}
}

// hibSettle freeze-dries the node if every service is quiescent. Runs
// after every dispatch on a hibernation-enabled node; the checks are a
// handful of len() reads.
func (n *Node) hibSettle() {
	h := n.hib
	if h == nil || h.frozen || n.PeerView != nil {
		return
	}
	if !n.Endpoint.Quiescent() || !n.Resolver.Quiescent() ||
		!n.Rendezvous.Quiescent() || !n.Discovery.Quiescent() ||
		!n.Pipe.Quiescent() || !n.Socket.Quiescent() || !n.Cache.Quiescent() {
		return
	}
	n.Endpoint.Freeze()
	n.Resolver.Freeze()
	n.Rendezvous.Freeze()
	n.Discovery.Freeze()
	n.Pipe.Freeze()
	n.Socket.Freeze()
	n.Cache.Freeze()
	h.env.FreezeRand()
	h.frozen = true
	h.freezes++
}

// Hibernating reports whether the node is currently freeze-dried.
func (n *Node) Hibernating() bool { return n.hib != nil && n.hib.frozen }

// HibernationStats returns the cumulative wake and freeze counts (zero
// when hibernation is not enabled).
func (n *Node) HibernationStats() (wakes, freezes uint64) {
	if n.hib == nil {
		return 0, 0
	}
	return n.hib.wakes, n.hib.freezes
}
