package node_test

import (
	"testing"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/discovery"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/node"
	"jxta/internal/peerview"
	"jxta/internal/rendezvous"
	"jxta/internal/transport"
)

// livePeer bundles a real-TCP peer for integration tests.
type livePeer struct {
	n  *node.Node
	e  *env.Real
	tr *transport.TCP
}

func newLivePeer(t *testing.T, name string, role node.Role, seeds []peerview.Seed, rngSeed int64) *livePeer {
	t.Helper()
	tr, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	e := env.NewReal(name, rngSeed)
	var n *node.Node
	e.Locked(func() {
		n = node.New(e, tr, node.Config{
			Name:      name,
			Role:      role,
			Seeds:     seeds,
			Discovery: discovery.DefaultConfig(),
		})
		n.Start()
	})
	t.Cleanup(func() { e.Locked(func() { n.Stop() }) })
	return &livePeer{n: n, e: e, tr: tr}
}

func (p *livePeer) connected() bool {
	ok := false
	p.e.Locked(func() { _, ok = p.n.Rendezvous.ConnectedRdv() })
	return ok
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFullStackOverTCP runs the complete protocol stack — lease, SRDI push,
// LC-DHT replica, resolver, direct response — over real localhost sockets.
func TestFullStackOverTCP(t *testing.T) {
	rdv := newLivePeer(t, "rdv", node.Rendezvous, nil, 1)
	seed := peerview.Seed{ID: rdv.n.ID, Addr: rdv.tr.Addr()}
	pub := newLivePeer(t, "pub", node.Edge, []peerview.Seed{seed}, 2)
	search := newLivePeer(t, "search", node.Edge, []peerview.Seed{seed}, 3)

	waitFor(t, "leases", 10*time.Second, func() bool {
		return pub.connected() && search.connected()
	})

	pub.e.Locked(func() {
		pub.n.Discovery.Publish(&advertisement.Resource{
			ResID: ids.FromName(ids.KindAdv, "tcp-test"),
			Name:  "tcp-test",
		}, 0)
	})

	found := make(chan discovery.Result, 1)
	// The SRDI push needs a moment on the wire before the query.
	time.Sleep(200 * time.Millisecond)
	search.e.Locked(func() {
		search.n.Discovery.Query("Resource", "Name", "tcp-test",
			func(r discovery.Result) {
				select {
				case found <- r:
				default:
				}
			}, nil)
	})
	select {
	case r := <-found:
		if len(r.Advs) != 1 || !r.From.Equal(pub.n.ID) {
			t.Fatalf("wrong result: %d advs from %s", len(r.Advs), r.From.Short())
		}
		if r.Elapsed <= 0 {
			t.Fatal("no latency measured")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("discovery over TCP never completed")
	}
}

// TestHelloBootstrapOverTCP exercises the live join path used by
// cmd/jxta-node: learn the seed's ID from its address, then lease.
func TestHelloBootstrapOverTCP(t *testing.T) {
	rdv := newLivePeer(t, "rdv2", node.Rendezvous, nil, 4)
	joiner := newLivePeer(t, "joiner", node.Edge, nil, 5)

	resolved := make(chan ids.ID, 1)
	joiner.e.Locked(func() {
		joiner.n.Endpoint.Hello(rdv.tr.Addr(), func(peer ids.ID, ok bool) {
			if ok {
				resolved <- peer
			} else {
				resolved <- ids.Nil
			}
		})
	})
	var seedID ids.ID
	select {
	case seedID = <-resolved:
	case <-time.After(10 * time.Second):
		t.Fatal("hello never resolved")
	}
	if !seedID.Equal(rdv.n.ID) {
		t.Fatalf("hello resolved %s, want %s", seedID.Short(), rdv.n.ID.Short())
	}
	joiner.e.Locked(func() {
		joiner.n.AddSeed(peerview.Seed{ID: seedID, Addr: rdv.tr.Addr()})
	})
	waitFor(t, "post-hello lease", 10*time.Second, joiner.connected)
}

// TestLeaseSurvivesOverTCP checks wall-clock renewal on the live stack with
// a short lease.
func TestLeaseSurvivesOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock renewal test")
	}
	rdv := newLivePeer(t, "rdv3", node.Rendezvous, nil, 6)
	seed := peerview.Seed{ID: rdv.n.ID, Addr: rdv.tr.Addr()}

	tr, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	e := env.NewReal("shortlease", 7)
	var n *node.Node
	e.Locked(func() {
		n = node.New(e, tr, node.Config{
			Name: "shortlease", Role: node.Edge,
			Seeds: []peerview.Seed{seed},
			Lease: leaseConfig(400*time.Millisecond, 150*time.Millisecond),
		})
		n.Start()
	})
	t.Cleanup(func() { e.Locked(func() { n.Stop() }) })

	waitFor(t, "initial lease", 5*time.Second, func() bool {
		ok := false
		e.Locked(func() { _, ok = n.Rendezvous.ConnectedRdv() })
		return ok
	})
	// Survive several renewal cycles.
	time.Sleep(1500 * time.Millisecond)
	stillClient := false
	rdv.e.Locked(func() { stillClient = rdv.n.Rendezvous.HasClient(n.ID) })
	if !stillClient {
		t.Fatal("lease lapsed despite renewals on the live stack")
	}
}

func leaseConfig(duration, timeout time.Duration) rendezvous.Config {
	return rendezvous.Config{LeaseDuration: duration, ResponseTimeout: timeout}
}
