// Package node assembles the full JXTA stack for one peer: transport,
// endpoint service + ERP, resolver, rendezvous service (peerview + lease +
// propagation, role-dependent), cache manager, discovery/LC-DHT, pipes and
// the socket stream layer. It is the unit the deployment layer instantiates
// — one Node per simulated or real peer.
//
// # Lifecycle
//
// The services form an ordered lifecycle registry (internal/lifecycle):
// Start brings them up transport-nearest first (endpoint, resolver,
// peerview, rendezvous, discovery, pipe, socket) and Stop tears them down
// in reverse, so a layer never sends through a layer that is already gone.
// Four verbs cover every deployment need:
//
//   - Stop: graceful halt. Streams FIN or reset, the edge lease is
//     canceled, every service timer is canceled (leak-free: the simulation
//     scheduler's per-node pending ledger reads zero afterwards). The node
//     is restartable in place — Start resumes over the same transport.
//   - Kill: crash. Identical teardown but nothing is sent and the transport
//     detaches; remote peers discover the death by timeout, as on a real
//     testbed.
//   - Restart: Stop (if needed) + Reset of all soft protocol state
//     (peerview entries, leases, SRDI index, push ledgers, streams, learned
//     routes) + Start. The peer keeps its identity — same ID, same RNG
//     stream, same address — but rejoins the overlay cold, exactly like a
//     restarted process on the same host. The deployment layer re-attaches
//     the transport first when the node was killed.
//   - Close: Stop + transport release, for process exit (cmd/jxta-node).
package node

import (
	"jxta/internal/advertisement"
	"jxta/internal/advstore"
	"jxta/internal/cm"
	"jxta/internal/discovery"
	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/lifecycle"
	"jxta/internal/metrics"
	"jxta/internal/peerview"
	"jxta/internal/pipe"
	"jxta/internal/rendezvous"
	"jxta/internal/resolver"
	"jxta/internal/socket"
	"jxta/internal/transport"
)

// Role selects the peer's place in the super-peer overlay.
type Role int

// The two JXTA 2.x peer roles the paper's overlays use.
const (
	// Edge peers attach to a rendezvous via the lease protocol.
	Edge Role = iota
	// Rendezvous peers run the peerview and the LC-DHT.
	Rendezvous
)

// String names the role.
func (r Role) String() string {
	if r == Rendezvous {
		return "rendezvous"
	}
	return "edge"
}

// Config describes one peer.
type Config struct {
	// Name is the human-readable peer name (also the advertisement name).
	Name string
	// Role selects edge or rendezvous behaviour.
	Role Role
	// Group is the peer group ID (defaults to the NetPeerGroup).
	Group ids.ID
	// Seeds are the initial rendezvous contacts: peerview bootstrap for a
	// rendezvous, lease targets for an edge.
	Seeds []peerview.Seed
	// Peerview tunables; zero fields take paper defaults. Used by
	// rendezvous nodes at construction and by edges if they are promoted.
	Peerview peerview.Config
	// Lease tunables.
	Lease rendezvous.Config
	// Discovery tunables.
	Discovery discovery.Config
	// Socket tunables (stream layer); zero fields take defaults.
	Socket socket.Config
	// AdvStore, when set, is the interning table for every advertisement
	// this node caches or holds in its peerview. Deployments pass one store
	// per overlay so equal advertisements dedupe across the population and
	// the table dies with the overlay; nil falls back to the process-wide
	// default store.
	AdvStore *advstore.Store
	// Metrics, when set, puts the node in lean-metrics mode: instead of
	// allocating a private registry and trace ring, the node's services
	// bind their counters into this shared (typically population-wide)
	// registry, node-level gauges are skipped, and Trace stays nil. Real
	// counters then aggregate across every peer sharing the registry;
	// Func-backed instruments (size gauges, stats bridges) are last-writer
	// -wins and only describe one arbitrary peer — population totals for
	// those come from experiment drivers, not the registry. This is the
	// memory configuration for 100k+ peer simulations, where a per-peer
	// registry dominates the per-node footprint.
	Metrics *metrics.Registry
}

// Node is a fully assembled peer.
type Node struct {
	Env        env.Env
	ID         ids.ID
	Config     Config
	Endpoint   *endpoint.Endpoint
	Resolver   *resolver.Service
	PeerView   *peerview.PeerView // nil for edges
	Rendezvous *rendezvous.Service
	Discovery  *discovery.Service
	Pipe       *pipe.Service
	Socket     *socket.Service
	Cache      *cm.Cache

	// Metrics is the node's instrument registry: every service registers
	// its counters/gauges/histograms here at assembly, so a node exposes
	// its full runtime state through one Prometheus encode or Snapshot.
	// Always non-nil; reading Func instruments (gauges sampled from
	// protocol state) must happen under the node's env serialization.
	Metrics *metrics.Registry
	// Trace is the node's protocol event ring: promotions, failovers,
	// island merges and lease transitions with virtual timestamps.
	Trace *metrics.Trace

	// RoleChanged, when set, observes edge→rendezvous promotions (the
	// deployment layer wires it through to experiment counters and facade
	// hooks). It fires after the swap completed.
	RoleChanged func(*Node)

	// MergeObserved, when set, observes completed island-merge handshake
	// legs (Config.Lease.IslandMerge): it fires with the merge counterpart
	// after the peerview union and the SRDI re-replication.
	MergeObserved func(n *Node, peer ids.ID)

	rdvAdv *advertisement.Rdv
	// hib, when non-nil, freeze-dries the node between dispatches; see
	// hibernate.go.
	hib *hibernator
	reg lifecycle.Registry
	// pvRegIndex is where the peerview service lives (or would live) in the
	// lifecycle registry: after endpoint and resolver, before rendezvous.
	pvRegIndex int
}

// New assembles a peer over the given environment and transport. The peer
// ID is drawn from the env's deterministic RNG, so overlays are reproducible
// under a fixed experiment seed.
func New(e env.Env, tr transport.Transport, cfg Config) *Node {
	if cfg.Group.IsNil() {
		cfg.Group = ids.FromName(ids.KindGroup, "NetPeerGroup")
	}
	if cfg.Name == "" {
		cfg.Name = e.Name()
	}
	if cfg.AdvStore == nil {
		cfg.AdvStore = advstore.Default()
	}
	// The peerview (including one built later by PromoteToRendezvous, which
	// reads n.Config.Peerview) interns against the same table as the cache.
	cfg.Peerview.AdvStore = cfg.AdvStore
	id := ids.NewRandom(ids.KindPeer, e.Rand())
	ep := endpoint.New(e, id, tr)
	res := resolver.New(e, ep)
	cache := cm.NewWithStore(e, cfg.AdvStore)

	n := &Node{
		Env:      e,
		ID:       id,
		Config:   cfg,
		Endpoint: ep,
		Resolver: res,
		Cache:    cache,
	}
	if cfg.Metrics != nil {
		// Lean mode: share the caller's registry, no trace ring (a nil
		// *Trace is a valid no-op sink everywhere).
		n.Metrics = cfg.Metrics
	} else {
		n.Metrics = metrics.NewRegistry()
		n.Trace = metrics.NewTrace(0)
	}
	if cfg.Role == Rendezvous {
		n.rdvAdv = &advertisement.Rdv{
			PeerID:  id,
			GroupID: cfg.Group,
			Name:    cfg.Name,
			Address: string(tr.Addr()),
		}
		n.PeerView = peerview.New(e, ep, n.rdvAdv, cfg.Peerview, cfg.Seeds)
		n.Rendezvous = rendezvous.NewRendezvous(e, ep, n.PeerView, cfg.Lease)
	} else {
		n.Rendezvous = rendezvous.NewEdge(e, ep, cfg.Seeds, cfg.Lease)
	}
	var busy discovery.BusySink
	if sink, ok := tr.(discovery.BusySink); ok {
		busy = sink
	}
	n.Discovery = discovery.New(e, ep, res, n.Rendezvous, cache, cfg.Discovery, busy)
	n.Pipe = pipe.New(e, ep, n.Discovery, n.Rendezvous)
	n.Socket = socket.New(e, ep, n.Pipe, cfg.Socket)

	// Re-instrument every service against the node's shared registry (each
	// constructor pre-instrumented against a private one) and add the
	// node-level gauges. Instrumentation is a pure observer: counters are
	// plain data, gauges are sampled at encode time, so enabling it never
	// perturbs protocol scheduling or wire traffic.
	ep.Instrument(n.Metrics)
	res.Instrument(n.Metrics)
	if n.PeerView != nil {
		n.PeerView.Instrument(n.Metrics)
	}
	n.Rendezvous.Instrument(n.Metrics, n.Trace)
	n.Discovery.Instrument(n.Metrics)
	n.Pipe.Instrument(n.Metrics)
	n.Socket.Instrument(n.Metrics)
	// Node-level gauges are per-peer by nature — in lean mode (shared
	// registry) they would just clobber each other, so skip them.
	if cfg.Metrics == nil {
		n.Metrics.GaugeFunc("jxta_node_role", "Peer role: 1 rendezvous, 0 edge.",
			func() float64 {
				if n.IsRendezvous() {
					return 1
				}
				return 0
			})
		n.Metrics.GaugeFunc("jxta_node_started", "Lifecycle state: 1 started, 0 stopped.",
			func() float64 {
				if n.Started() {
					return 1
				}
				return 0
			})
		n.Metrics.GaugeFunc("jxta_cache_records", "Advertisements in the local cache.",
			func() float64 { return float64(cache.Len()) })
		n.Metrics.GaugeFunc("jxta_cache_index_entries", "Attribute index entries in the local cache.",
			func() float64 { return float64(cache.IndexSize()) })
	}

	// Lifecycle registry, transport-nearest first; Stop runs in reverse so
	// streams FIN and the lease cancel leave before the endpoint quiesces.
	// Services with a crash path (silent teardown) register their Abort;
	// the rest are silent on Stop already.
	n.reg.Add(lifecycle.Funcs{StopFn: ep.Stop})
	n.reg.Add(lifecycle.Funcs{StopFn: res.Stop})
	n.pvRegIndex = 2
	if n.PeerView != nil {
		n.reg.Add(n.PeerView)
	}
	n.reg.Add(n.Rendezvous) // implements Abort (no lease cancel)
	n.reg.Add(n.Discovery)
	n.reg.Add(n.Pipe)
	n.reg.Add(lifecycle.Funcs{StopFn: n.Socket.Stop, AbortFn: n.Socket.Abort})

	// Role is dynamic: the rendezvous service's self-healing paths (crash
	// election, graceful handoff) promote the whole node through this hook.
	n.Rendezvous.SetPromoteHook(n.PromoteToRendezvous)
	// A completed island merge changes the replica mapping: re-replicate
	// the SRDI over the merged view, then surface the event.
	n.Rendezvous.AddMergeListener(func(peer ids.ID) {
		n.Discovery.Rereplicate()
		if n.MergeObserved != nil {
			n.MergeObserved(n, peer)
		}
	})
	return n
}

// PromoteToRendezvous switches an edge node to the rendezvous role in
// place, while it runs: a fresh peerview — seeded from the alternates the
// dead rendezvous shared, plus the original seeds — is spliced into the
// lifecycle registry at its canonical position, the rendezvous service
// swaps roles (leases are granted from now on), and discovery gains an
// SRDI index with the node's own advertisements republished into it. The
// node keeps its identity: same ID, same RNG stream, same address. No-op
// on a node already holding the rendezvous role.
func (n *Node) PromoteToRendezvous() {
	if n.PeerView != nil {
		return
	}
	n.hibWake()
	n.Config.Role = Rendezvous
	n.rdvAdv = &advertisement.Rdv{
		PeerID:  n.ID,
		GroupID: n.Config.Group,
		Name:    n.Config.Name,
		Address: string(n.Endpoint.Addr()),
	}
	// Re-seed the peerview from everything this peer knew about the
	// overlay: the alternates from the final lease grant, the co-client
	// roster (roster snapshots can diverge, so two clients of one dead
	// rendezvous may both promote — probing the roster merges their views),
	// and the configured seeds. Dead seeds cost a probe per interval while
	// the view is unhappy, and bridge the view back together the moment a
	// victim rejoins at its old address. A sole-rendezvous takeover starts
	// empty and simply is the rendezvous network.
	seeds := n.Rendezvous.Alternates()
	addSeed := func(sd peerview.Seed) {
		if sd.ID.Equal(n.ID) {
			return
		}
		for _, have := range seeds {
			if have.ID.Equal(sd.ID) {
				return
			}
		}
		seeds = append(seeds, sd)
	}
	for _, sd := range n.Rendezvous.Roster() {
		addSeed(sd)
	}
	for _, sd := range n.Config.Seeds {
		addSeed(sd)
	}
	n.PeerView = peerview.New(n.Env, n.Endpoint, n.rdvAdv, n.Config.Peerview, seeds)
	// Rebind the peerview instruments to the node registry: counters are
	// shared with the pre-promotion family (registration is idempotent) and
	// the size gauge re-targets the fresh view.
	n.PeerView.Instrument(n.Metrics)
	n.reg.Insert(n.pvRegIndex, n.PeerView) // starts it if the node is up
	n.Rendezvous.Promote(n.PeerView)
	n.Discovery.Promote()
	if n.RoleChanged != nil {
		n.RoleChanged(n)
	}
}

// Start brings the peer's services up in registry order. Idempotent.
func (n *Node) Start() {
	n.hibWake()
	n.reg.Start()
}

// Started reports whether the node is currently up.
func (n *Node) Started() bool { return n.reg.Started() }

// Stop shuts the peer's services down gracefully in reverse registry order:
// streams FIN or reset, the edge lease is cancelled, and every timer any
// service armed is cancelled, so a stopped node owns no pending callbacks.
// The transport stays attached — Start brings the node back in place.
// A hibernation-enabled node re-freezes once stopped: a down node is as
// quiescent as an idle one.
func (n *Node) Stop() {
	n.hibWake()
	n.reg.Stop()
	n.hibSettle()
}

// Kill crashes the peer: the same teardown as Stop but nothing is sent —
// no FIN, no lease cancel — and the transport endpoint closes, so remote
// peers learn of the death only through their own timeouts (lease renewal,
// retransmission limits, peerview entry expiry).
func (n *Node) Kill() {
	n.hibWake()
	n.reg.Abort()
	n.Endpoint.Close()
	n.hibSettle()
}

// Restart cold-restarts the peer in place: graceful Stop if still running,
// then every service discards its soft protocol state — peerview entries,
// leases and walk dedup, SRDI index and push ledgers, pipe bindings,
// streams, learned routes — and Start rejoins the overlay from the
// configured seeds. Identity is preserved: same peer ID, same RNG stream,
// same transport address. If the node was killed, the caller must
// re-attach the transport first (deploy.Overlay.RestartRdv/RestartEdge do).
func (n *Node) Restart() {
	n.hibWake()
	n.Stop()
	n.Endpoint.Reset()
	if n.PeerView != nil {
		n.PeerView.Reset()
	}
	n.Rendezvous.Reset()
	n.Discovery.Reset()
	n.Pipe.Reset()
	n.Socket.Reset()
	n.Start()
}

// Close shuts the peer down for good: graceful Stop plus transport release
// (process exit). Real-clock callers beware: closing a TCP transport waits
// for its reader goroutines, which deliver through env.Locked — call Close
// outside any Locked section (or Stop under the lock and close the
// transport separately, as cmd/jxta-node does).
func (n *Node) Close() {
	n.hibWake()
	n.Stop()
	n.Endpoint.Close()
}

// AddSeed wires an additional rendezvous seed at runtime and, for edges,
// immediately tries to lease from it.
func (n *Node) AddSeed(seed peerview.Seed) {
	n.hibWake()
	if n.PeerView != nil {
		n.PeerView.AddSeed(seed)
	}
	n.Rendezvous.AddSeed(seed)
	n.Rendezvous.Connect()
}

// Seed returns this peer as a seed entry for wiring other peers.
func (n *Node) Seed() peerview.Seed {
	return peerview.Seed{ID: n.ID, Addr: n.Endpoint.Addr()}
}

// RdvAdv returns the rendezvous advertisement (nil for edges).
func (n *Node) RdvAdv() *advertisement.Rdv { return n.rdvAdv }

// IsRendezvous reports the role.
func (n *Node) IsRendezvous() bool { return n.PeerView != nil }

// URN returns this peer's ID in URN form, rendered once at construction —
// logging and keying paths should use it instead of ID.String().
func (n *Node) URN() string { return n.Endpoint.IDString() }

// PeerAdv builds this peer's peer advertisement (the Table 1 example
// publishes one of these with Name "Test").
func (n *Node) PeerAdv() *advertisement.Peer {
	return &advertisement.Peer{
		PeerID:    n.ID,
		Name:      n.Config.Name,
		Addresses: []string{string(n.Endpoint.Addr())},
	}
}
