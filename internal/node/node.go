// Package node assembles the full JXTA stack for one peer: transport,
// endpoint service + ERP, resolver, rendezvous service (peerview + lease +
// propagation, role-dependent), cache manager and discovery/LC-DHT. It is
// the unit the deployment layer instantiates — one Node per simulated or
// real peer.
package node

import (
	"jxta/internal/advertisement"
	"jxta/internal/cm"
	"jxta/internal/discovery"
	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/peerview"
	"jxta/internal/pipe"
	"jxta/internal/rendezvous"
	"jxta/internal/resolver"
	"jxta/internal/socket"
	"jxta/internal/transport"
)

// Role selects the peer's place in the super-peer overlay.
type Role int

// The two JXTA 2.x peer roles the paper's overlays use.
const (
	// Edge peers attach to a rendezvous via the lease protocol.
	Edge Role = iota
	// Rendezvous peers run the peerview and the LC-DHT.
	Rendezvous
)

// String names the role.
func (r Role) String() string {
	if r == Rendezvous {
		return "rendezvous"
	}
	return "edge"
}

// Config describes one peer.
type Config struct {
	// Name is the human-readable peer name (also the advertisement name).
	Name string
	// Role selects edge or rendezvous behaviour.
	Role Role
	// Group is the peer group ID (defaults to the NetPeerGroup).
	Group ids.ID
	// Seeds are the initial rendezvous contacts: peerview bootstrap for a
	// rendezvous, lease targets for an edge.
	Seeds []peerview.Seed
	// Peerview tunables (rendezvous only); zero fields take paper defaults.
	Peerview peerview.Config
	// Lease tunables.
	Lease rendezvous.Config
	// Discovery tunables.
	Discovery discovery.Config
	// Socket tunables (stream layer); zero fields take defaults.
	Socket socket.Config
}

// Node is a fully assembled peer.
type Node struct {
	Env        env.Env
	ID         ids.ID
	Config     Config
	Endpoint   *endpoint.Endpoint
	Resolver   *resolver.Service
	PeerView   *peerview.PeerView // nil for edges
	Rendezvous *rendezvous.Service
	Discovery  *discovery.Service
	Pipe       *pipe.Service
	Socket     *socket.Service
	Cache      *cm.Cache

	rdvAdv  *advertisement.Rdv
	started bool
}

// New assembles a peer over the given environment and transport. The peer
// ID is drawn from the env's deterministic RNG, so overlays are reproducible
// under a fixed experiment seed.
func New(e env.Env, tr transport.Transport, cfg Config) *Node {
	if cfg.Group.IsNil() {
		cfg.Group = ids.FromName(ids.KindGroup, "NetPeerGroup")
	}
	if cfg.Name == "" {
		cfg.Name = e.Name()
	}
	id := ids.NewRandom(ids.KindPeer, e.Rand())
	ep := endpoint.New(e, id, tr)
	res := resolver.New(e, ep)
	cache := cm.New(e)

	n := &Node{
		Env:      e,
		ID:       id,
		Config:   cfg,
		Endpoint: ep,
		Resolver: res,
		Cache:    cache,
	}
	if cfg.Role == Rendezvous {
		n.rdvAdv = &advertisement.Rdv{
			PeerID:  id,
			GroupID: cfg.Group,
			Name:    cfg.Name,
			Address: string(tr.Addr()),
		}
		n.PeerView = peerview.New(e, ep, n.rdvAdv, cfg.Peerview, cfg.Seeds)
		n.Rendezvous = rendezvous.NewRendezvous(e, ep, n.PeerView, cfg.Lease)
	} else {
		n.Rendezvous = rendezvous.NewEdge(e, ep, cfg.Seeds, cfg.Lease)
	}
	var busy discovery.BusySink
	if sink, ok := tr.(discovery.BusySink); ok {
		busy = sink
	}
	n.Discovery = discovery.New(e, ep, res, n.Rendezvous, cache, cfg.Discovery, busy)
	n.Pipe = pipe.New(e, ep, n.Discovery, n.Rendezvous)
	n.Socket = socket.New(e, ep, n.Pipe, cfg.Socket)
	return n
}

// Start brings the peer's services up.
func (n *Node) Start() {
	if n.started {
		return
	}
	n.started = true
	if n.PeerView != nil {
		n.PeerView.Start()
	}
	n.Rendezvous.Start()
	n.Discovery.Start()
}

// Stop shuts the peer's services down (lease cancelled, timers stopped).
func (n *Node) Stop() {
	if !n.started {
		return
	}
	n.started = false
	n.Discovery.Stop()
	n.Rendezvous.Stop()
	if n.PeerView != nil {
		n.PeerView.Stop()
	}
}

// AddSeed wires an additional rendezvous seed at runtime and, for edges,
// immediately tries to lease from it.
func (n *Node) AddSeed(seed peerview.Seed) {
	if n.PeerView != nil {
		n.PeerView.AddSeed(seed)
	}
	n.Rendezvous.AddSeed(seed)
	n.Rendezvous.Connect()
}

// Seed returns this peer as a seed entry for wiring other peers.
func (n *Node) Seed() peerview.Seed {
	return peerview.Seed{ID: n.ID, Addr: n.Endpoint.Addr()}
}

// RdvAdv returns the rendezvous advertisement (nil for edges).
func (n *Node) RdvAdv() *advertisement.Rdv { return n.rdvAdv }

// IsRendezvous reports the role.
func (n *Node) IsRendezvous() bool { return n.PeerView != nil }

// URN returns this peer's ID in URN form, rendered once at construction —
// logging and keying paths should use it instead of ID.String().
func (n *Node) URN() string { return n.Endpoint.IDString() }

// PeerAdv builds this peer's peer advertisement (the Table 1 example
// publishes one of these with Name "Test").
func (n *Node) PeerAdv() *advertisement.Peer {
	return &advertisement.Peer{
		PeerID:    n.ID,
		Name:      n.Config.Name,
		Addresses: []string{string(n.Endpoint.Addr())},
	}
}
