package endpoint

import (
	"slices"

	"jxta/internal/hibpool"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/transport"
)

// Edge hibernation (PR 9). A steady-state edge endpoint retains four maps —
// routes, handlers, pending resolutions, per-service counter cache — whose
// buckets dominate its footprint while carrying a handful of entries.
// Freeze packs the entries into a pooled record and returns the map shells
// to free lists; the first subsequent touch (inbound delivery, send, route
// mutation) rebuilds the maps from the record. Packing and rebuilding are
// content-preserving, so behavior is byte-identical to a never-frozen
// endpoint; golden-trajectory tests replay every experiment with hibernation
// forced on to prove it.

// hibBracket carries the node-level wake/settle hooks installed around
// inbound delivery, the endpoint's counterpart to the env.After bracket
// (simnet.NodeEnv.SetHibernation). Deliveries and timers are the only two
// ways execution enters a node.
type hibBracket struct {
	wake, settle func()
}

// SetHibernation installs delivery hooks: wake runs before, and settle
// after, every inbound message dispatched to this endpoint.
func (ep *Endpoint) SetHibernation(wake, settle func()) {
	ep.hib = &hibBracket{wake: wake, settle: settle}
}

// receive is the transport's inbound entry point. On a hibernating node it
// brackets dispatch with the node's wake/settle hooks so freeze-dried
// services rehydrate before any handler runs and can re-freeze after.
func (ep *Endpoint) receive(from transport.Addr, wire *message.Message) {
	if h := ep.hib; h != nil {
		h.wake()
		ep.dispatch(from, wire)
		h.settle()
		return
	}
	ep.dispatch(from, wire)
}

// epRoute, epHandler and epSvcEntry are the packed forms of the endpoint's
// map entries while frozen.
type (
	epRoute struct {
		peer ids.ID
		addr transport.Addr
	}
	epHandler struct {
		name string
		h    Handler
	}
	epSvcEntry struct {
		name string
		sc   *epSvc
	}
)

// epFrozen is the freeze-dried endpoint: every map entry, none of the
// buckets.
type epFrozen struct {
	routes   []epRoute
	handlers []epHandler
	svc      []epSvcEntry
}

var (
	epFrozenPool = hibpool.Records[epFrozen]{Reset: func(f *epFrozen) {
		clear(f.routes)
		f.routes = f.routes[:0]
		clear(f.handlers)
		f.handlers = f.handlers[:0]
		clear(f.svc)
		f.svc = f.svc[:0]
	}}
	epRoutesPool   hibpool.Maps[ids.ID, transport.Addr]
	epHandlersPool hibpool.Maps[string, Handler]
	epSvcPool      hibpool.Maps[string, *epSvc]
	epPendingPool  hibpool.Maps[ids.ID, []RouteCallback]
)

// Quiescent reports whether the endpoint holds no in-flight work and can be
// frozen: no pending route resolutions, no outstanding Hello waiters.
func (ep *Endpoint) Quiescent() bool {
	return len(ep.pending) == 0 && len(ep.helloWaiters) == 0
}

// Freeze packs the endpoint's maps into a pooled record and releases the
// shells. Caller must have checked Quiescent. Idempotent.
func (ep *Endpoint) Freeze() {
	if ep.frozen != nil {
		return
	}
	f := epFrozenPool.Get()
	// Size the packed slices exactly: bare append grows caps in powers of
	// two, and with ~10 handlers per endpoint the overshoot across 100k
	// frozen edges is tens of megabytes of dead capacity.
	f.routes = slices.Grow(f.routes, len(ep.routes))
	f.handlers = slices.Grow(f.handlers, len(ep.handlers))
	f.svc = slices.Grow(f.svc, len(ep.m.svc))
	for id, a := range ep.routes {
		f.routes = append(f.routes, epRoute{peer: id, addr: a})
	}
	for name, h := range ep.handlers {
		f.handlers = append(f.handlers, epHandler{name: name, h: h})
	}
	for name, sc := range ep.m.svc {
		f.svc = append(f.svc, epSvcEntry{name: name, sc: sc})
	}
	epRoutesPool.Put(ep.routes)
	epHandlersPool.Put(ep.handlers)
	epSvcPool.Put(ep.m.svc)
	epPendingPool.Put(ep.pending)
	ep.routes = nil
	ep.handlers = nil
	ep.m.svc = nil
	ep.pending = nil
	ep.frozen = f
	// The transport's FIFO-clamp map rides along: a quiescent edge's clamp
	// entries are almost always in the past, where they can never bind.
	if fa, ok := ep.tr.(interface{ FreezeArrivals() }); ok {
		fa.FreezeArrivals()
	}
}

// thaw rehydrates a frozen endpoint. Every entry point that touches the
// maps calls it first; on a live endpoint it is a single nil check.
func (ep *Endpoint) thaw() {
	if ep.frozen == nil {
		return
	}
	f := ep.frozen
	ep.frozen = nil
	ep.routes = epRoutesPool.Get()
	for _, r := range f.routes {
		ep.routes[r.peer] = r.addr
	}
	ep.handlers = epHandlersPool.Get()
	for _, h := range f.handlers {
		ep.handlers[h.name] = h.h
	}
	ep.m.svc = epSvcPool.Get()
	for _, s := range f.svc {
		ep.m.svc[s.name] = s.sc
	}
	ep.pending = epPendingPool.Get()
	epFrozenPool.Put(f)
}

// Frozen reports whether the endpoint is currently freeze-dried (tests).
func (ep *Endpoint) Frozen() bool { return ep.frozen != nil }
