package endpoint

import (
	"math/rand"
	"testing"
	"time"

	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

// rig bundles a simulated peer endpoint for tests.
type rig struct {
	id ids.ID
	ep *Endpoint
	tr *transport.Sim
}

func newRig(t *testing.T, sched *simnet.Scheduler, net *transport.Network, name string, site netmodel.Site) *rig {
	t.Helper()
	e := sched.NewEnv(name)
	tr, err := net.Attach(name, site)
	if err != nil {
		t.Fatal(err)
	}
	id := ids.NewRandom(ids.KindPeer, rand.New(rand.NewSource(int64(len(name))+int64(name[0])*31)))
	return &rig{id: id, ep: New(e, id, tr), tr: tr}
}

func setup(t *testing.T) (*simnet.Scheduler, *transport.Network, *rig, *rig, *rig) {
	sched := simnet.NewScheduler(1)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	a := newRig(t, sched, net, "a", netmodel.Rennes)
	b := newRig(t, sched, net, "b", netmodel.Sophia)
	c := newRig(t, sched, net, "c", netmodel.Lyon)
	return sched, net, a, b, c
}

func body(s string) *message.Message { return message.New().AddString("app", "body", s) }

func TestDirectSend(t *testing.T) {
	sched, _, a, b, _ := setup(t)
	var got string
	var from ids.ID
	b.ep.Register("svc", func(src ids.ID, m *message.Message) {
		got = m.GetString("app", "body")
		from = src
	})
	a.ep.AddRoute(b.id, b.tr.Addr())
	if err := a.ep.Send(b.id, "svc", body("hi")); err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Second)
	if got != "hi" || !from.Equal(a.id) {
		t.Fatalf("got=%q from=%s", got, from.Short())
	}
}

func TestLocalSendBypassesNetwork(t *testing.T) {
	sched, net, a, _, _ := setup(t)
	var got string
	a.ep.Register("svc", func(src ids.ID, m *message.Message) {
		got = m.GetString("app", "body")
		if !src.Equal(a.id) {
			t.Errorf("local src = %s", src.Short())
		}
	})
	if err := a.ep.Send(a.id, "svc", body("self")); err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Second)
	if got != "self" {
		t.Fatalf("got %q", got)
	}
	if net.Stats().Messages != 0 {
		t.Fatal("local delivery used the network")
	}
}

func TestLocalSendUnknownService(t *testing.T) {
	_, _, a, _, _ := setup(t)
	if err := a.ep.Send(a.id, "ghost", body("x")); err == nil {
		t.Fatal("local send to unknown service succeeded")
	}
}

func TestSendNoRoute(t *testing.T) {
	_, _, a, b, _ := setup(t)
	if err := a.ep.Send(b.id, "svc", body("x")); err == nil {
		t.Fatal("send without route succeeded")
	}
}

func TestReturnRouteLearning(t *testing.T) {
	sched, _, a, b, _ := setup(t)
	b.ep.Register("svc", func(_ ids.ID, _ *message.Message) {})
	a.ep.AddRoute(b.id, b.tr.Addr())
	a.ep.Send(b.id, "svc", body("x"))
	sched.Run(time.Second)
	addr, ok := b.ep.RouteTo(a.id)
	if !ok || addr != a.tr.Addr() {
		t.Fatalf("return route not learned: %s %v", addr, ok)
	}
}

func TestRelayForwarding(t *testing.T) {
	sched, _, a, b, c := setup(t)
	// a knows only b; b knows c. a sends to c via b.
	a.ep.AddRoute(b.id, b.tr.Addr())
	b.ep.AddRoute(c.id, c.tr.Addr())
	var got string
	var from ids.ID
	c.ep.Register("svc", func(src ids.ID, m *message.Message) {
		got = m.GetString("app", "body")
		from = src
	})
	if err := a.ep.SendVia(b.id, c.id, "svc", body("relayed")); err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Second)
	if got != "relayed" {
		t.Fatal("relay failed")
	}
	if !from.Equal(a.id) {
		t.Fatalf("relayed message lost original source: %s", from.Short())
	}
}

func TestRelayTTLExhaustion(t *testing.T) {
	sched, _, a, b, c := setup(t)
	// Create a two-peer routing loop for an unroutable destination: b and c
	// each claim a route to the ghost through the other.
	ghost := ids.FromName(ids.KindPeer, "ghost")
	a.ep.AddRoute(b.id, b.tr.Addr())
	b.ep.AddRoute(ghost, c.tr.Addr())
	c.ep.AddRoute(ghost, b.tr.Addr())
	if err := a.ep.SendVia(b.id, ghost, "svc", body("loop")); err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Second)
	if b.ep.Drops+c.ep.Drops == 0 {
		t.Fatal("looping message never dropped")
	}
}

func TestRelayNoRouteDrops(t *testing.T) {
	sched, _, a, b, _ := setup(t)
	ghost := ids.FromName(ids.KindPeer, "ghost")
	a.ep.AddRoute(b.id, b.tr.Addr())
	a.ep.SendVia(b.id, ghost, "svc", body("x"))
	sched.Run(time.Second)
	if b.ep.Drops != 1 {
		t.Fatalf("b.Drops = %d, want 1", b.ep.Drops)
	}
}

func TestUnknownServiceDrops(t *testing.T) {
	sched, _, a, b, _ := setup(t)
	a.ep.AddRoute(b.id, b.tr.Addr())
	a.ep.Send(b.id, "nosuch", body("x"))
	sched.Run(time.Second)
	if b.ep.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", b.ep.Drops)
	}
}

func TestMalformedEnvelopeDrops(t *testing.T) {
	sched, _, a, b, _ := setup(t)
	// Bypass the endpoint: raw transport send without envelope.
	a.tr.Send(b.tr.Addr(), body("raw"))
	sched.Run(time.Second)
	if b.ep.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", b.ep.Drops)
	}
}

func TestResolveRouteViaRelay(t *testing.T) {
	sched, _, a, b, c := setup(t)
	a.ep.AddRoute(b.id, b.tr.Addr())
	b.ep.AddRoute(c.id, c.tr.Addr())
	var gotAddr transport.Addr
	var gotOK bool
	done := false
	a.ep.ResolveRoute(c.id, b.id, func(_ ids.ID, addr transport.Addr, ok bool) {
		gotAddr, gotOK, done = addr, ok, true
	})
	sched.Run(time.Second)
	if !done || !gotOK || gotAddr != c.tr.Addr() {
		t.Fatalf("resolve: done=%v ok=%v addr=%s", done, gotOK, gotAddr)
	}
	// Route now installed for direct sends.
	if _, ok := a.ep.RouteTo(c.id); !ok {
		t.Fatal("resolved route not installed")
	}
}

func TestResolveRouteAlreadyKnown(t *testing.T) {
	sched, _, a, b, _ := setup(t)
	a.ep.AddRoute(b.id, b.tr.Addr())
	called := 0
	a.ep.ResolveRoute(b.id, b.id, func(_ ids.ID, addr transport.Addr, ok bool) {
		called++
		if !ok || addr != b.tr.Addr() {
			t.Errorf("known route resolution wrong: %s %v", addr, ok)
		}
	})
	sched.Run(time.Second)
	if called != 1 {
		t.Fatalf("callback called %d times", called)
	}
}

func TestResolveRouteRelayUnreachable(t *testing.T) {
	sched, _, a, b, c := setup(t)
	_ = b
	failed := false
	a.ep.ResolveRoute(c.id, b.id, func(_ ids.ID, _ transport.Addr, ok bool) {
		failed = !ok
	})
	sched.Run(time.Second)
	if !failed {
		t.Fatal("resolution with unreachable relay did not fail")
	}
}

func TestDropRoute(t *testing.T) {
	_, _, a, b, _ := setup(t)
	a.ep.AddRoute(b.id, b.tr.Addr())
	a.ep.DropRoute(b.id)
	if _, ok := a.ep.RouteTo(b.id); ok {
		t.Fatal("route survived DropRoute")
	}
}

func TestAddRouteIgnoresSelfAndEmpty(t *testing.T) {
	_, _, a, b, _ := setup(t)
	a.ep.AddRoute(a.id, "sim://rennes/a")
	a.ep.AddRoute(b.id, "")
	if len(a.ep.KnownPeers()) != 0 {
		t.Fatal("self/empty routes accepted")
	}
}

func TestKnownPeers(t *testing.T) {
	_, _, a, b, c := setup(t)
	a.ep.AddRoute(b.id, b.tr.Addr())
	a.ep.AddRoute(c.id, c.tr.Addr())
	if len(a.ep.KnownPeers()) != 2 {
		t.Fatalf("KnownPeers = %d, want 2", len(a.ep.KnownPeers()))
	}
}

func TestSenderPayloadNotMutated(t *testing.T) {
	sched, _, a, b, _ := setup(t)
	b.ep.Register("svc", func(_ ids.ID, _ *message.Message) {})
	a.ep.AddRoute(b.id, b.tr.Addr())
	m := body("keep")
	a.ep.Send(b.id, "svc", m)
	sched.Run(time.Second)
	if m.Len() != 1 {
		t.Fatalf("Send mutated the caller's message: %s", m)
	}
}

func BenchmarkEndpointSendDeliver(b *testing.B) {
	sched := simnet.NewScheduler(1)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	ea := sched.NewEnv("a")
	eb := sched.NewEnv("b")
	ta, _ := net.Attach("a", netmodel.Rennes)
	tb, _ := net.Attach("b", netmodel.Sophia)
	ida := ids.FromName(ids.KindPeer, "a")
	idb := ids.FromName(ids.KindPeer, "b")
	epa := New(ea, ida, ta)
	epb := New(eb, idb, tb)
	epb.Register("svc", func(_ ids.ID, _ *message.Message) {})
	epa.AddRoute(idb, tb.Addr())
	m := body("x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := epa.Send(idb, "svc", m); err != nil {
			b.Fatal(err)
		}
		for sched.Pending() > 0 {
			sched.Step()
		}
	}
}
