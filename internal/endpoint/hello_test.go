package endpoint

import (
	"testing"
	"time"

	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

func TestHelloResolvesPeerID(t *testing.T) {
	sched, _, a, b, _ := setup(t)
	var got ids.ID
	var ok bool
	done := false
	a.ep.Hello(b.tr.Addr(), func(peer ids.ID, o bool) {
		got, ok, done = peer, o, true
	})
	sched.Run(time.Second)
	if !done || !ok || !got.Equal(b.id) {
		t.Fatalf("hello: done=%v ok=%v got=%s want=%s", done, ok, got.Short(), b.id.Short())
	}
	// The route is installed as a side effect.
	if addr, routed := a.ep.RouteTo(b.id); !routed || addr != b.tr.Addr() {
		t.Fatal("hello did not install the route")
	}
}

func TestHelloTimeoutOnDeadAddress(t *testing.T) {
	sched, _, a, _, _ := setup(t)
	var ok bool
	done := false
	a.ep.Hello("sim://rennes/ghost", func(_ ids.ID, o bool) {
		ok, done = o, true
	})
	sched.Run(time.Minute)
	if !done || ok {
		t.Fatalf("hello to dead address: done=%v ok=%v", done, ok)
	}
}

func TestHelloSendFailureFailsFast(t *testing.T) {
	sched := simnet.NewScheduler(9)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	a := newRig(t, sched, net, "a", netmodel.Rennes)
	a.tr.Close() // transport gone: send errors synchronously
	var ok bool
	done := false
	a.ep.Hello("sim://rennes/anything", func(_ ids.ID, o bool) { ok, done = o, true })
	sched.Run(time.Second)
	if !done || ok {
		t.Fatalf("closed-transport hello: done=%v ok=%v", done, ok)
	}
}

func TestHelloMultipleWaitersSameAddr(t *testing.T) {
	sched, _, a, b, _ := setup(t)
	results := 0
	for i := 0; i < 3; i++ {
		a.ep.Hello(b.tr.Addr(), func(peer ids.ID, ok bool) {
			if ok && peer.Equal(b.id) {
				results++
			}
		})
	}
	sched.Run(time.Second)
	if results != 3 {
		t.Fatalf("only %d of 3 waiters resolved", results)
	}
}

func TestHelloConcurrentDistinctTargets(t *testing.T) {
	sched, _, a, b, c := setup(t)
	got := map[string]ids.ID{}
	a.ep.Hello(b.tr.Addr(), func(peer ids.ID, ok bool) {
		if ok {
			got["b"] = peer
		}
	})
	a.ep.Hello(c.tr.Addr(), func(peer ids.ID, ok bool) {
		if ok {
			got["c"] = peer
		}
	})
	sched.Run(time.Second)
	if !got["b"].Equal(b.id) || !got["c"].Equal(c.id) {
		t.Fatalf("concurrent hellos mixed up targets: %v", got)
	}
}

func TestNilDestinationDeliveredLocally(t *testing.T) {
	sched, _, a, b, _ := setup(t)
	var from ids.ID
	b.ep.Register("svc", func(src ids.ID, _ *message.Message) { from = src })
	// Send with a nil destination straight to b's address.
	if err := a.ep.sendTo(b.tr.Addr(), ids.Nil, "svc", body("x"), 4); err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Second)
	if !from.Equal(a.id) {
		t.Fatal("nil-destination message not delivered locally")
	}
}
