package endpoint

import (
	"jxta/internal/metrics"
)

// epSvc is the cached per-service counter set. The endpoint resolves each
// service name against the CounterVec once and increments the cached
// children afterwards, keeping the per-message cost at plain atomic adds
// (the Vec lookup itself takes a lock).
type epSvc struct {
	txMsgs, txBytes *metrics.Counter
	rxMsgs, rxBytes *metrics.Counter
}

// epMetrics holds the endpoint's instruments.
type epMetrics struct {
	txMsgs, txBytes *metrics.CounterVec
	rxMsgs, rxBytes *metrics.CounterVec
	relays          *metrics.Counter
	helloSent       *metrics.Counter
	helloServed     *metrics.Counter
	svc             map[string]*epSvc
}

// Instrument (re-)registers the endpoint's instruments on reg. node.New
// calls it with the node's shared registry; New pre-instruments against a
// private registry so the hot paths never nil-check. Counters:
//
//	jxta_endpoint_tx_messages_total{service=...} / jxta_endpoint_tx_bytes_total{service=...}
//	jxta_endpoint_rx_messages_total{service=...} / jxta_endpoint_rx_bytes_total{service=...}
//	jxta_endpoint_relays_total, jxta_endpoint_hello_sent_total,
//	jxta_endpoint_hello_served_total, jxta_endpoint_drops_total
//
// plus the jxta_endpoint_routes gauge (route-table size, sampled at
// encode time).
func (ep *Endpoint) Instrument(reg *metrics.Registry) {
	m := &epMetrics{
		txMsgs:      reg.CounterVec("jxta_endpoint_tx_messages_total", "Messages sent, by destination service.", "service"),
		txBytes:     reg.CounterVec("jxta_endpoint_tx_bytes_total", "Wire bytes sent, by destination service.", "service"),
		rxMsgs:      reg.CounterVec("jxta_endpoint_rx_messages_total", "Messages received, by destination service.", "service"),
		rxBytes:     reg.CounterVec("jxta_endpoint_rx_bytes_total", "Wire bytes received, by destination service.", "service"),
		relays:      reg.Counter("jxta_endpoint_relays_total", "Transit messages forwarded toward another peer."),
		helloSent:   reg.Counter("jxta_endpoint_hello_sent_total", "Hello bootstrap requests sent."),
		helloServed: reg.Counter("jxta_endpoint_hello_served_total", "Hello bootstrap requests answered."),
		svc:         make(map[string]*epSvc),
	}
	reg.CounterFunc("jxta_endpoint_drops_total", "Messages dropped (no handler, TTL exhausted, no route).",
		func() uint64 { return ep.Drops })
	reg.GaugeFunc("jxta_endpoint_routes", "Known direct routes (route-table size).",
		func() float64 { return float64(len(ep.routes)) })
	ep.m = m
}

// svcMetrics returns the cached counter set for a service, resolving the
// Vec children on first use. Runs in env-serialized context only.
func (ep *Endpoint) svcMetrics(service string) *epSvc {
	if sc, ok := ep.m.svc[service]; ok {
		return sc
	}
	sc := &epSvc{
		txMsgs:  ep.m.txMsgs.With(service),
		txBytes: ep.m.txBytes.With(service),
		rxMsgs:  ep.m.rxMsgs.With(service),
		rxBytes: ep.m.rxBytes.With(service),
	}
	ep.m.svc[service] = sc
	return sc
}
