// Package endpoint implements the JXTA endpoint service and the Endpoint
// Routing Protocol (ERP). The endpoint service is the bottom of the JXTA
// stack (Figure 1 of the paper): it owns the peer's transport, demultiplexes
// inbound messages to the services above (resolver, rendezvous, discovery),
// and finds routes from a source peer to a destination peer.
//
// Routing model: every peer keeps a route table peerID -> transport address.
// Routes are learned from advertisements (rendezvous advertisements carry
// addresses), from inbound traffic (each envelope carries the sender's
// address), from ERP route responses, and can be relayed: a message whose
// destination is not the receiving peer is forwarded along the receiver's
// own route, hop count permitting — this is how edge peers reach peers they
// only know through their rendezvous.
package endpoint

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/metrics"
	"jxta/internal/transport"
)

// Envelope element names, namespace "ep".
const (
	ns          = "ep"
	elemSrc     = "Src"     // sender peer ID
	elemDst     = "Dst"     // destination peer ID
	elemSvc     = "Svc"     // destination service name
	elemSrcAddr = "SrcAddr" // sender transport address (return route learning)
	elemTTL     = "TTL"     // remaining relay hops
)

// ERP protocol element names (service "erp").
const (
	erpService   = "erp"
	elemRouteQ   = "RouteQuery"    // target peer ID being resolved
	elemRouteRsp = "RouteResponse" // route advertisement XML
	elemRouteTgt = "RouteTarget"   // address of the target
)

// defaultTTL bounds relay forwarding.
const defaultTTL = 8

// Hello bootstrap protocol (service "ep.hello"): a node that only knows a
// transport address sends a hello request; the receiver answers, revealing
// its peer ID through the envelope. Live TCP deployments use it to turn a
// configured seed address into a peerview.Seed.
const (
	helloService = "ep.hello"
	elemHelloReq = "HelloReq"
	elemHelloAck = "HelloAck"
)

// helloTimeout bounds a Hello exchange.
const helloTimeout = 10 * time.Second

// Handler consumes a message addressed to a registered service.
type Handler func(src ids.ID, msg *message.Message)

// helloWaiter is a pending Hello resolution. cancel silences the waiter
// (timer canceled, callback never fired) when the endpoint stops.
type helloWaiter struct {
	addr   transport.Addr
	cb     func(peer ids.ID)
	cancel func()
}

// RouteCallback receives the outcome of an asynchronous route resolution.
type RouteCallback func(target ids.ID, addr transport.Addr, ok bool)

// Errors.
var (
	ErrNoRoute     = errors.New("endpoint: no route to peer")
	ErrNoService   = errors.New("endpoint: no such service")
	ErrBadEnvelope = errors.New("endpoint: malformed envelope")
)

// Endpoint is one peer's endpoint service.
type Endpoint struct {
	env   env.Env
	id    ids.ID
	idStr string // URN form of id, rendered once: every send stamps it
	tr    transport.Transport
	// addrStr caches the transport address string stamped on every send.
	addrStr      string
	routes       map[ids.ID]transport.Addr
	handlers     map[string]Handler
	pending      map[ids.ID][]RouteCallback
	helloWaiters []helloWaiter

	// Drops counts messages that could not be delivered locally or
	// forwarded (no handler, TTL exhausted, no route).
	Drops uint64

	// m holds the runtime instruments; always non-nil (New pre-instruments
	// against a private registry, node.New re-instruments with the node's).
	m *epMetrics

	// hib and frozen implement edge hibernation; see hibernate.go. While
	// frozen is non-nil the maps above are released and their entries live
	// in the packed record.
	hib    *hibBracket
	frozen *epFrozen
}

// New binds an endpoint service for peer id over the given transport and
// registers the ERP handler. The transport's inbound handler is claimed.
func New(e env.Env, id ids.ID, tr transport.Transport) *Endpoint {
	ep := &Endpoint{
		env:      e,
		id:       id,
		idStr:    id.String(),
		tr:       tr,
		addrStr:  string(tr.Addr()),
		routes:   make(map[ids.ID]transport.Addr),
		handlers: make(map[string]Handler),
		pending:  make(map[ids.ID][]RouteCallback),
	}
	// Honor the env serialization contract: transports that deliver from
	// their own goroutines (TCP read loops) must enter protocol code under
	// the node lock. The simulator's env has no Locked — its event loop is
	// already the only execution context — so the handler runs directly.
	if l, ok := e.(interface{ Locked(func()) }); ok {
		tr.SetHandler(func(src transport.Addr, m *message.Message) {
			l.Locked(func() { ep.receive(src, m) })
		})
	} else {
		tr.SetHandler(ep.receive)
	}
	ep.handlers[erpService] = ep.handleERP
	ep.handlers[helloService] = ep.handleHello
	ep.Instrument(metrics.Discard())
	return ep
}

// Hello resolves the peer ID listening at a transport address. cb fires
// once, with ok=false on timeout; a stopped endpoint silences the waiter
// without firing it.
func (ep *Endpoint) Hello(addr transport.Addr, cb func(peer ids.ID, ok bool)) {
	ep.thaw()
	done := false
	var failTimer env.Timer
	timer := ep.env.After(helloTimeout, func() {
		if !done {
			done = true
			cb(ids.Nil, false)
		}
	})
	settle := func() {
		done = true
		timer.Cancel()
		if failTimer != nil {
			failTimer.Cancel()
		}
	}
	ep.helloWaiters = append(ep.helloWaiters, helloWaiter{
		addr: addr,
		cb: func(peer ids.ID) {
			if !done {
				settle()
				cb(peer, true)
			}
		},
		cancel: func() {
			if !done {
				settle()
			}
		},
	})
	ep.m.helloSent.Inc()
	m := message.New().AddString(ns, elemHelloReq, "1")
	if err := ep.sendTo(addr, ids.Nil, helloService, m, defaultTTL); err != nil {
		// Transport refused outright; fail on the next tick instead of the
		// full timeout.
		failTimer = ep.env.After(0, func() {
			if !done {
				settle()
				cb(ids.Nil, false)
			}
		})
	}
}

func (ep *Endpoint) handleHello(src ids.ID, msg *message.Message) {
	if msg.GetString(ns, elemHelloReq) != "" {
		ep.m.helloServed.Inc()
		ack := message.New().AddString(ns, elemHelloAck, "1")
		_ = ep.Send(src, helloService, ack)
		return
	}
	if msg.GetString(ns, elemHelloAck) == "" {
		return
	}
	addr, ok := ep.RouteTo(src)
	if !ok {
		return
	}
	kept := ep.helloWaiters[:0]
	for _, w := range ep.helloWaiters {
		if w.addr == addr {
			w.cb(src)
			continue
		}
		kept = append(kept, w)
	}
	ep.helloWaiters = kept
}

// ID returns the local peer ID.
func (ep *Endpoint) ID() ids.ID { return ep.id }

// IDString returns the local peer ID in URN form, rendered once at
// construction. Hot keying/logging paths should prefer it over
// ID().String(), which re-renders the URN on every call.
func (ep *Endpoint) IDString() string { return ep.idStr }

// Addr returns the local transport address.
func (ep *Endpoint) Addr() transport.Addr { return ep.tr.Addr() }

// Register installs a service handler. Registering the same name twice
// replaces the handler (services restart across leases).
func (ep *Endpoint) Register(service string, h Handler) {
	ep.thaw()
	ep.handlers[service] = h
}

// Unregister removes a service handler; subsequent messages for the service
// are counted as drops. Unregistering an unknown name is a no-op.
func (ep *Endpoint) Unregister(service string) {
	ep.thaw()
	delete(ep.handlers, service)
}

// Transport exposes the underlying transport (deployment-level lifecycle
// management re-attaches it on restart).
func (ep *Endpoint) Transport() transport.Transport { return ep.tr }

// Stop quiesces the endpoint's own pending work: outstanding Hello timers
// are canceled and un-fired route resolutions are abandoned (their callbacks
// never fire). Handlers, routes and the transport binding are retained, so
// the endpoint keeps serving a restarted node.
func (ep *Endpoint) Stop() {
	ep.thaw()
	for _, w := range ep.helloWaiters {
		w.cancel()
	}
	ep.helloWaiters = nil
	for peer := range ep.pending {
		delete(ep.pending, peer)
	}
}

// Close releases the endpoint: pending work is quiesced as in Stop and the
// transport endpoint itself is closed, so the peer disappears from the
// network. Routes and handlers are retained for a potential restart over a
// re-attached transport.
func (ep *Endpoint) Close() {
	ep.Stop()
	_ = ep.tr.Close()
}

// Reset clears the learned route table (restart with fresh state: routes are
// re-learned from seeds, advertisements and inbound traffic).
func (ep *Endpoint) Reset() {
	ep.thaw()
	ep.Stop()
	for peer := range ep.routes {
		delete(ep.routes, peer)
	}
}

// AddRoute records a direct route to a peer.
func (ep *Endpoint) AddRoute(peer ids.ID, addr transport.Addr) {
	ep.thaw()
	if peer.Equal(ep.id) || addr == "" {
		return
	}
	ep.routes[peer] = addr
	// Wake any pending resolutions.
	if cbs, ok := ep.pending[peer]; ok {
		delete(ep.pending, peer)
		for _, cb := range cbs {
			cb(peer, addr, true)
		}
	}
}

// DropRoute forgets a route (lease expiry, crash suspicion).
func (ep *Endpoint) DropRoute(peer ids.ID) {
	ep.thaw()
	delete(ep.routes, peer)
}

// RouteTo reports the known route to a peer.
func (ep *Endpoint) RouteTo(peer ids.ID) (transport.Addr, bool) {
	ep.thaw()
	a, ok := ep.routes[peer]
	return a, ok
}

// KnownPeers returns the peers with direct routes, in unspecified order.
func (ep *Endpoint) KnownPeers() []ids.ID {
	ep.thaw()
	out := make([]ids.ID, 0, len(ep.routes))
	for id := range ep.routes {
		out = append(out, id)
	}
	return out
}

// Send delivers msg to the named service on the destination peer, using the
// direct route. The message is wrapped in an envelope carrying the local
// peer ID and address so the receiver learns the return route.
func (ep *Endpoint) Send(dst ids.ID, service string, msg *message.Message) error {
	ep.thaw()
	if dst.Equal(ep.id) {
		// Local delivery without touching the network (a rendezvous acts
		// as its own rendezvous, §3.3 step 1).
		if h, ok := ep.handlers[service]; ok {
			local := msg.Clone()
			ep.env.After(0, func() { h(ep.id, local) })
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNoService, service)
	}
	addr, ok := ep.routes[dst]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRoute, dst.Short())
	}
	return ep.sendTo(addr, dst, service, msg, defaultTTL)
}

// SendVia relays msg toward dst through an intermediate peer with a known
// route (the edge peer's rendezvous, typically).
func (ep *Endpoint) SendVia(relay, dst ids.ID, service string, msg *message.Message) error {
	ep.thaw()
	addr, ok := ep.routes[relay]
	if !ok {
		return fmt.Errorf("%w: relay %s", ErrNoRoute, relay.Short())
	}
	return ep.sendTo(addr, dst, service, msg, defaultTTL)
}

func (ep *Endpoint) sendTo(addr transport.Addr, dst ids.ID, service string, msg *message.Message, ttl int) error {
	wire := msg.Clone()
	wire.AddString(ns, elemSrc, ep.idStr)
	wire.AddString(ns, elemDst, dst.String())
	wire.AddString(ns, elemSvc, service)
	wire.AddString(ns, elemSrcAddr, ep.addrStr)
	wire.AddString(ns, elemTTL, strconv.Itoa(ttl))
	sc := ep.svcMetrics(service)
	sc.txMsgs.Inc()
	sc.txBytes.Add(uint64(wire.Size()))
	return ep.tr.Send(addr, wire)
}

// ServiceOf reports which service a wire message is addressed to.
// Instrumentation (message-complexity experiments) uses it to classify
// traffic without depending on envelope internals.
func ServiceOf(m *message.Message) string { return m.GetString(ns, elemSvc) }

// dispatch demultiplexes an inbound wire message: learn the return route,
// then either deliver locally or relay toward the destination. Deliveries
// arrive through receive (hibernate.go), which brackets this with the
// node's wake/settle hooks.
func (ep *Endpoint) dispatch(from transport.Addr, wire *message.Message) {
	ep.thaw()
	srcID, err := ids.Parse(wire.GetString(ns, elemSrc))
	if err != nil {
		ep.Drops++
		return
	}
	dstID, err := ids.Parse(wire.GetString(ns, elemDst))
	if err != nil {
		ep.Drops++
		return
	}
	service := wire.GetString(ns, elemSvc)
	sc := ep.svcMetrics(service)
	sc.rxMsgs.Inc()
	sc.rxBytes.Add(uint64(wire.Size()))
	if srcAddr := wire.GetString(ns, elemSrcAddr); srcAddr != "" {
		ep.AddRoute(srcID, transport.Addr(srcAddr))
	}
	// A nil destination addresses "whichever peer listens at this address"
	// — the hello bootstrap, when the sender does not yet know our ID.
	if !dstID.IsNil() && !dstID.Equal(ep.id) {
		ep.relay(dstID, wire)
		return
	}
	h, ok := ep.handlers[service]
	if !ok {
		ep.Drops++
		return
	}
	h(srcID, wire)
}

// relay forwards a transit message toward its destination, decrementing the
// TTL. The envelope (including the original source) is preserved.
func (ep *Endpoint) relay(dst ids.ID, wire *message.Message) {
	ttl, err := strconv.Atoi(wire.GetString(ns, elemTTL))
	if err != nil || ttl <= 1 {
		ep.Drops++
		return
	}
	addr, ok := ep.routes[dst]
	if !ok {
		ep.Drops++
		return
	}
	fwd := message.New()
	for _, el := range wire.Elements() {
		if el.Namespace == ns && el.Name == elemTTL {
			fwd.AddString(ns, elemTTL, strconv.Itoa(ttl-1))
			continue
		}
		fwd.Add(el.Namespace, el.Name, el.Data)
	}
	if err := ep.tr.Send(addr, fwd); err != nil {
		ep.Drops++
		return
	}
	ep.m.relays.Inc()
}

// ResolveRoute asynchronously resolves a route to target by querying a peer
// we can already reach (usually the rendezvous). If the route is already
// known the callback fires on the next tick.
func (ep *Endpoint) ResolveRoute(target, via ids.ID, cb RouteCallback) {
	ep.thaw()
	if addr, ok := ep.routes[target]; ok {
		ep.env.After(0, func() { cb(target, addr, true) })
		return
	}
	ep.pending[target] = append(ep.pending[target], cb)
	q := message.New().AddString(ns, elemRouteQ, target.String())
	if err := ep.Send(via, erpService, q); err != nil {
		// The relay itself is unreachable; fail the resolution.
		delete(ep.pending, target)
		ep.env.After(0, func() { cb(target, "", false) })
	}
}

// handleERP answers route queries and consumes route responses.
func (ep *Endpoint) handleERP(src ids.ID, msg *message.Message) {
	if q := msg.GetString(ns, elemRouteQ); q != "" {
		target, err := ids.Parse(q)
		if err != nil {
			return
		}
		addr, ok := ep.routes[target]
		if !ok {
			return // unanswerable; requester times out
		}
		route := &advertisement.Route{DestID: target}
		data, err := advertisement.EncodeXML(route)
		if err != nil {
			return
		}
		rsp := message.New()
		rsp.Add(ns, elemRouteRsp, data)
		rsp.AddString(ns, elemRouteTgt, string(addr))
		// Best effort: the requester is reachable, we just heard from it.
		_ = ep.Send(src, erpService, rsp)
		return
	}
	if data, ok := msg.Get(ns, elemRouteRsp); ok {
		adv, err := advertisement.DecodeXML(data)
		if err != nil {
			return
		}
		route, ok := adv.(*advertisement.Route)
		if !ok {
			return
		}
		addr := transport.Addr(msg.GetString(ns, elemRouteTgt))
		if addr != "" {
			ep.AddRoute(route.DestID, addr) // also fires pending callbacks
		}
	}
}
