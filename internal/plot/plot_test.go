package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := Chart{Title: "Fig", XLabel: "minutes", YLabel: "l"}
	c.Add(Series{Label: "r=10", X: []float64{0, 1, 2}, Y: []float64{0, 5, 9}})
	out := c.Render()
	if !strings.Contains(out, "Fig") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "r=10") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("data markers missing")
	}
	if !strings.Contains(out, "minutes") {
		t.Fatal("axis labels missing")
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{Title: "Empty"}
	out := c.Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart rendering: %q", out)
	}
}

func TestRenderSkipsNaN(t *testing.T) {
	c := Chart{}
	c.Add(Series{Label: "s", X: []float64{0, math.NaN(), 2}, Y: []float64{1, 2, math.NaN()}})
	out := c.Render()
	// One plotted point plus the legend marker.
	if strings.Count(out, "*") != 2 {
		t.Fatalf("expected exactly one plotted point, got:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := Chart{}
	c.Add(Series{Label: "flat", X: []float64{1, 1}, Y: []float64{5, 5}})
	out := c.Render() // must not divide by zero
	if !strings.Contains(out, "flat") {
		t.Fatal("constant series broke rendering")
	}
}

func TestMultipleSeriesDistinctMarkers(t *testing.T) {
	c := Chart{}
	c.Add(Series{Label: "a", X: []float64{0}, Y: []float64{0}})
	c.Add(Series{Label: "b", X: []float64{1}, Y: []float64{1}})
	out := c.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("markers not distinct:\n%s", out)
	}
}

func TestDimensions(t *testing.T) {
	c := Chart{Width: 30, Height: 8}
	c.Add(Series{Label: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 8 grid rows + axis + xlabels + legend.
	if len(lines) < 10 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}
