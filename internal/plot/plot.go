// Package plot renders time series and scatter data as ASCII charts, so
// cmd/jxta-bench can show the reproduced figures directly in a terminal
// alongside their CSV form.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Chart collects curves and renders them on a shared grid.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 20)
	series []Series
}

// markers assigns one rune per curve.
var markers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Add appends a curve. Points with NaN are skipped at render time.
func (c *Chart) Add(s Series) { c.series = append(c.series, s) }

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	if points == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = make([]rune, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for si, s := range c.series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(h-1))
			grid[row][col] = m
		}
	}
	yTop := fmt.Sprintf("%.4g", maxY)
	yBot := fmt.Sprintf("%.4g", minY)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case h - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	fmt.Fprintf(&sb, "%s  %-10.4g%s%10.4g\n", strings.Repeat(" ", pad),
		minX, strings.Repeat(" ", maxInt(0, w-20)), maxX)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "%s  x: %s   y: %s\n", strings.Repeat(" ", pad), c.XLabel, c.YLabel)
	}
	for si, s := range c.series {
		fmt.Fprintf(&sb, "%s   %c %s\n", strings.Repeat(" ", pad), markers[si%len(markers)], s.Label)
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
