package topology

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Chain.String() != "chain" || Tree.String() != "tree" || Star.String() != "star" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "topology(9)" {
		t.Fatal("unknown kind name")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{Chain, Tree, Star} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("ring"); err == nil {
		t.Fatal("unknown kind parsed")
	}
}

func TestChainShape(t *testing.T) {
	seeds, err := Seeds(Chain, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds[0]) != 0 {
		t.Fatal("root has seeds")
	}
	for i := 1; i < 5; i++ {
		if len(seeds[i]) != 1 || seeds[i][0] != i-1 {
			t.Fatalf("chain peer %d seeds = %v", i, seeds[i])
		}
	}
	if Depth(seeds) != 4 {
		t.Fatalf("chain depth = %d, want 4", Depth(seeds))
	}
}

func TestTreeShape(t *testing.T) {
	seeds, err := Seeds(Tree, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantParents := []int{-1, 0, 0, 1, 1, 2, 2}
	for i := 1; i < 7; i++ {
		if seeds[i][0] != wantParents[i] {
			t.Fatalf("tree peer %d parent = %d, want %d", i, seeds[i][0], wantParents[i])
		}
	}
	if Depth(seeds) != 2 {
		t.Fatalf("tree depth = %d, want 2", Depth(seeds))
	}
}

func TestTreeDefaultFanout(t *testing.T) {
	a, _ := Seeds(Tree, 10, 0)
	b, _ := Seeds(Tree, 10, 2)
	for i := range a {
		if len(a[i]) != len(b[i]) || (len(a[i]) > 0 && a[i][0] != b[i][0]) {
			t.Fatal("default fanout is not 2")
		}
	}
}

func TestStarShape(t *testing.T) {
	seeds, err := Seeds(Star, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 6; i++ {
		if seeds[i][0] != 0 {
			t.Fatal("star spoke not seeded on hub")
		}
	}
	if Depth(seeds) != 1 {
		t.Fatalf("star depth = %d", Depth(seeds))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Seeds(Chain, -1, 0); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := Seeds(Kind(42), 3, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	for _, k := range []Kind{Chain, Tree, Star} {
		for _, n := range []int{0, 1} {
			seeds, err := Seeds(k, n, 0)
			if err != nil || len(seeds) != n {
				t.Fatalf("%v n=%d: %v, %v", k, n, seeds, err)
			}
			if Depth(seeds) != 0 {
				t.Fatal("trivial depth not 0")
			}
		}
	}
}

// Property: every non-root peer seeds only on lower-indexed peers
// (deployable in order, acyclic), and the root never has seeds.
func TestAcyclicProperty(t *testing.T) {
	f := func(kindRaw, nRaw, fanRaw uint8) bool {
		kind := Kind(int(kindRaw) % 3)
		n := int(nRaw) % 200
		fanout := int(fanRaw)%5 - 1 // includes invalid 0/-1 (defaulted)
		seeds, err := Seeds(kind, n, fanout)
		if err != nil || len(seeds) != n {
			return false
		}
		if n > 0 && len(seeds[0]) != 0 {
			return false
		}
		for i := 1; i < n; i++ {
			if len(seeds[i]) == 0 {
				return false // every non-root must be connected
			}
			for _, s := range seeds[i] {
				if s < 0 || s >= i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
