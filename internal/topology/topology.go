// Package topology generates the seed-graph shapes used by the paper's
// deployments (§4.1 tested chains and trees; a star is included as the
// degenerate single-seed shape). A topology here is the bootstrap wiring —
// which already-deployed rendezvous each new rendezvous probes first; the
// peerview protocol then gossips the full membership regardless of the
// initial shape, which is exactly the paper's observation ("this initial
// parameter has no significant influence on the peerview behavior").
package topology

import (
	"errors"
	"fmt"
)

// Kind enumerates the supported seed-graph shapes.
type Kind int

// The supported topologies.
const (
	// Chain: peer i seeds on peer i-1.
	Chain Kind = iota
	// Tree: peer i seeds on its parent (i-1)/fanout.
	Tree
	// Star: every peer seeds on peer 0.
	Star
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Chain:
		return "chain"
	case Tree:
		return "tree"
	case Star:
		return "star"
	}
	return fmt.Sprintf("topology(%d)", int(k))
}

// ParseKind resolves a topology name.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "chain":
		return Chain, nil
	case "tree":
		return Tree, nil
	case "star":
		return Star, nil
	}
	return 0, fmt.Errorf("topology: unknown kind %q", name)
}

// ErrBadShape reports invalid generation parameters.
var ErrBadShape = errors.New("topology: invalid parameters")

// Seeds returns, for each of n peers, the indices of the peers it seeds on.
// Peer 0 is always the root with no seeds; every other peer seeds only on
// lower-indexed peers, so the graph is acyclic and bootstrappable in
// deployment order. fanout applies to Tree only (default 2 when <= 0).
func Seeds(kind Kind, n, fanout int) ([][]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadShape, n)
	}
	if fanout <= 0 {
		fanout = 2
	}
	out := make([][]int, n)
	for i := 1; i < n; i++ {
		switch kind {
		case Chain:
			out[i] = []int{i - 1}
		case Tree:
			out[i] = []int{(i - 1) / fanout}
		case Star:
			out[i] = []int{0}
		default:
			return nil, fmt.Errorf("%w: kind %v", ErrBadShape, kind)
		}
	}
	return out, nil
}

// PlaceSites maps numSites simulation sites onto shards (round-robin),
// returning assign[site] = shard. Placement is site-granular on purpose:
// every peer of a site — each rendezvous and the edges leasing from it,
// which deployments attach at their rendezvous's site — lands on one shard,
// so the short intra-site latency never constrains the conservative
// lookahead window; only inter-site links cross shards. With fewer sites
// than shards the extra shards simply stay empty, so callers clamp shards
// to numSites.
func PlaceSites(numSites, shards int) []int {
	if shards < 1 {
		shards = 1
	}
	assign := make([]int, numSites)
	for i := range assign {
		assign[i] = i % shards
	}
	return assign
}

// Depth returns the longest seed-path length from any node to the root —
// the bootstrap propagation depth of the shape.
func Depth(seeds [][]int) int {
	depth := make([]int, len(seeds))
	max := 0
	for i := 1; i < len(seeds); i++ {
		d := 0
		for _, s := range seeds[i] {
			if depth[s]+1 > d {
				d = depth[s] + 1
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}
