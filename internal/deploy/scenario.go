package deploy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"jxta/internal/discovery"
	"jxta/internal/peerview"
	"jxta/internal/rendezvous"
	"jxta/internal/topology"
)

// Scenario is the JSON form of an overlay specification — the concise,
// file-based deployment description ADAGE provided in the paper. Durations
// are strings in Go syntax ("30s", "20m").
//
//	{
//	  "seed": 42,
//	  "rendezvous": 50,
//	  "topology": "chain",
//	  "peerview": {"interval": "30s", "entryExpiry": "20m"},
//	  "edges": [{"attachTo": 0, "count": 1, "prefix": "publisher"}]
//	}
type Scenario struct {
	Seed       int64           `json:"seed"`
	Rendezvous int             `json:"rendezvous"`
	Topology   string          `json:"topology"`
	Fanout     int             `json:"fanout"`
	Peerview   *ScenarioTuning `json:"peerview"`
	Lease      *ScenarioLease  `json:"lease"`
	Edges      []ScenarioEdge  `json:"edges"`
	// RealisticCosts enables the SRDI scan-cost model (default true).
	RealisticCosts *bool `json:"realisticCosts"`
}

// ScenarioTuning carries the peerview tunables.
type ScenarioTuning struct {
	Interval          string `json:"interval"`
	EntryExpiry       string `json:"entryExpiry"`
	HappySize         int    `json:"happySize"`
	ReferralsPerProbe int    `json:"referralsPerProbe"`
}

// ScenarioLease carries the lease tunables.
type ScenarioLease struct {
	Duration        string `json:"duration"`
	ResponseTimeout string `json:"responseTimeout"`
}

// ScenarioEdge mirrors EdgeGroup.
type ScenarioEdge struct {
	AttachTo int    `json:"attachTo"`
	Count    int    `json:"count"`
	Prefix   string `json:"prefix"`
}

func parseDur(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("deploy: scenario field %s: %w", field, err)
	}
	return d, nil
}

// Spec converts the scenario into a deployable Spec.
func (sc *Scenario) Spec() (Spec, error) {
	spec := Spec{
		Seed:   sc.Seed,
		NumRdv: sc.Rendezvous,
		Fanout: sc.Fanout,
	}
	if sc.Topology != "" {
		kind, err := topology.ParseKind(sc.Topology)
		if err != nil {
			return spec, err
		}
		spec.Topology = kind
	}
	if sc.Peerview != nil {
		var err error
		var cfg peerview.Config
		if cfg.Interval, err = parseDur("peerview.interval", sc.Peerview.Interval); err != nil {
			return spec, err
		}
		if cfg.EntryExpiry, err = parseDur("peerview.entryExpiry", sc.Peerview.EntryExpiry); err != nil {
			return spec, err
		}
		cfg.HappySize = sc.Peerview.HappySize
		cfg.ReferralsPerProbe = sc.Peerview.ReferralsPerProbe
		spec.Peerview = cfg
	}
	if sc.Lease != nil {
		var err error
		var cfg rendezvous.Config
		if cfg.LeaseDuration, err = parseDur("lease.duration", sc.Lease.Duration); err != nil {
			return spec, err
		}
		if cfg.ResponseTimeout, err = parseDur("lease.responseTimeout", sc.Lease.ResponseTimeout); err != nil {
			return spec, err
		}
		spec.Lease = cfg
	}
	if sc.RealisticCosts == nil || *sc.RealisticCosts {
		spec.Discovery = discovery.DefaultConfig()
	}
	for _, e := range sc.Edges {
		spec.Edges = append(spec.Edges, EdgeGroup{
			AttachTo: e.AttachTo, Count: e.Count, Prefix: e.Prefix,
		})
	}
	return spec, nil
}

// LoadScenario parses a scenario file and builds the overlay.
func LoadScenario(path string) (*Overlay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return BuildScenario(data)
}

// BuildScenario parses scenario JSON bytes and builds the overlay. Unknown
// fields are rejected so configuration typos fail loudly.
func BuildScenario(data []byte) (*Overlay, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("deploy: scenario: %w", err)
	}
	spec, err := sc.Spec()
	if err != nil {
		return nil, err
	}
	return Build(spec)
}
