package deploy

import (
	"testing"
	"time"

	"jxta/internal/netmodel"
	"jxta/internal/topology"
)

func TestBuildChainWithEdges(t *testing.T) {
	o, err := Build(Spec{
		Seed:     1,
		NumRdv:   5,
		Topology: topology.Chain,
		Edges: []EdgeGroup{
			{AttachTo: 0, Count: 2, Prefix: "pub"},
			{AttachTo: 4, Count: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Rdvs) != 5 || len(o.Edges) != 3 {
		t.Fatalf("rdvs=%d edges=%d", len(o.Rdvs), len(o.Edges))
	}
	if !o.Rdvs[0].IsRendezvous() || o.Edges[0].IsRendezvous() {
		t.Fatal("roles wrong")
	}
	if o.Edges[0].Config.Name != "pub0" || o.Edges[2].Config.Name != "edge2" {
		t.Fatalf("edge names: %q %q", o.Edges[0].Config.Name, o.Edges[2].Config.Name)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Spec{NumRdv: -1}); err == nil {
		t.Fatal("negative NumRdv accepted")
	}
	if _, err := Build(Spec{NumRdv: 2, Edges: []EdgeGroup{{AttachTo: 5, Count: 1}}}); err == nil {
		t.Fatal("out-of-range edge attachment accepted")
	}
	if _, err := Build(Spec{NumRdv: 3, Topology: topology.Kind(99)}); err == nil {
		t.Fatal("bad topology accepted")
	}
}

func TestDefaultModelIsGrid5000(t *testing.T) {
	o, err := Build(Spec{Seed: 2, NumRdv: 2, Topology: topology.Chain})
	if err != nil {
		t.Fatal(err)
	}
	if o.Net.Model().MeanInterSite() != netmodel.Grid5000().MeanInterSite() {
		t.Fatal("default model is not Grid'5000")
	}
}

func TestOverlayConvergesAndConnects(t *testing.T) {
	o, err := Build(Spec{
		Seed:     3,
		NumRdv:   6,
		Topology: topology.Tree,
		Fanout:   2,
		Edges:    []EdgeGroup{{AttachTo: 2, Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	o.StartAll()
	o.Sched.Run(10 * time.Minute)
	for i, rdv := range o.Rdvs {
		if rdv.PeerView.Size() != 5 {
			t.Fatalf("rdv %d view size %d, want 5", i, rdv.PeerView.Size())
		}
	}
	for i, e := range o.Edges {
		if got, ok := e.Rendezvous.ConnectedRdv(); !ok || !got.Equal(o.Rdvs[2].ID) {
			t.Fatalf("edge %d not leased to rdv2", i)
		}
	}
	o.StopAll()
}

func TestAddEdgeAfterBuild(t *testing.T) {
	o, err := Build(Spec{Seed: 4, NumRdv: 3, Topology: topology.Chain})
	if err != nil {
		t.Fatal(err)
	}
	o.StartAll()
	o.Sched.Run(5 * time.Minute)
	e, err := o.AddEdge("late", 1)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	o.Sched.Run(o.Sched.Now() + time.Minute)
	if got, ok := e.Rendezvous.ConnectedRdv(); !ok || !got.Equal(o.Rdvs[1].ID) {
		t.Fatal("late edge did not connect")
	}
}

func TestKillRdvDetaches(t *testing.T) {
	o, err := Build(Spec{Seed: 5, NumRdv: 3, Topology: topology.Chain})
	if err != nil {
		t.Fatal(err)
	}
	o.StartAll()
	o.Sched.Run(5 * time.Minute)
	addr := o.Rdvs[1].Endpoint.Addr()
	o.KillRdv(1)
	if _, ok := o.Net.Lookup(addr); ok {
		t.Fatal("killed rdv still attached")
	}
	// The remaining peers keep running.
	o.Sched.Run(o.Sched.Now() + 5*time.Minute)
}

func TestDuplicateEdgeNameRejected(t *testing.T) {
	o, err := Build(Spec{Seed: 6, NumRdv: 1, Topology: topology.Chain})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddEdge("dup", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddEdge("dup", 0); err == nil {
		t.Fatal("duplicate edge name accepted")
	}
}

func TestDeterministicBuild(t *testing.T) {
	build := func() string {
		o, err := Build(Spec{Seed: 7, NumRdv: 4, Topology: topology.Chain})
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, r := range o.Rdvs {
			s += r.ID.String()
		}
		return s
	}
	if build() != build() {
		t.Fatal("same seed built different overlays")
	}
}
