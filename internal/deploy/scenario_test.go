package deploy

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"jxta/internal/topology"
)

const sampleScenario = `{
  "seed": 7,
  "rendezvous": 4,
  "topology": "tree",
  "fanout": 2,
  "peerview": {"interval": "15s", "entryExpiry": "5m"},
  "lease": {"duration": "2m", "responseTimeout": "10s"},
  "edges": [{"attachTo": 0, "count": 2, "prefix": "pub"}]
}`

func TestBuildScenario(t *testing.T) {
	o, err := BuildScenario([]byte(sampleScenario))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Rdvs) != 4 || len(o.Edges) != 2 {
		t.Fatalf("shape %d/%d", len(o.Rdvs), len(o.Edges))
	}
	if o.spec.Topology != topology.Tree || o.spec.Peerview.Interval != 15*time.Second {
		t.Fatalf("tunables lost: %+v", o.spec)
	}
	if o.spec.Lease.LeaseDuration != 2*time.Minute {
		t.Fatal("lease tunables lost")
	}
	if o.spec.Discovery.ScanCost == 0 {
		t.Fatal("realistic costs not defaulted on")
	}
	// The deployed overlay actually runs.
	o.StartAll()
	o.Sched.Run(8 * time.Minute)
	if o.Rdvs[0].PeerView.Size() != 3 {
		t.Fatalf("scenario overlay did not converge: %d", o.Rdvs[0].PeerView.Size())
	}
	o.StopAll()
}

func TestBuildScenarioErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{"rendezvous":`,
		"unknown field":   `{"rendezvouz": 3}`,
		"bad topology":    `{"rendezvous": 3, "topology": "donut"}`,
		"bad duration":    `{"rendezvous": 3, "peerview": {"interval": "soon"}}`,
		"bad lease dur":   `{"rendezvous": 3, "lease": {"duration": "whenever"}}`,
		"bad edge attach": `{"rendezvous": 2, "edges": [{"attachTo": 9, "count": 1}]}`,
	}
	for name, js := range cases {
		if _, err := BuildScenario([]byte(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestScenarioCostsOptOut(t *testing.T) {
	off := false
	_ = off
	o, err := BuildScenario([]byte(`{"rendezvous": 2, "realisticCosts": false}`))
	if err != nil {
		t.Fatal(err)
	}
	if o.spec.Discovery.ScanCost != 0 {
		t.Fatal("cost opt-out ignored")
	}
}

func TestLoadScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(sampleScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Rdvs) != 4 {
		t.Fatal("file scenario wrong")
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
