// Package deploy instantiates whole overlays onto the simulator from a
// declarative specification — the role ADAGE (with the authors' JXTA
// plug-in) played in the paper: "overlays can be described in a concise
// manner, and generation of configuration files for JXTA automated".
package deploy

import (
	"fmt"
	"strconv"

	"jxta/internal/advstore"
	"jxta/internal/discovery"
	"jxta/internal/ids"
	"jxta/internal/metrics"
	"jxta/internal/netmodel"
	"jxta/internal/node"
	"jxta/internal/peerview"
	"jxta/internal/rendezvous"
	"jxta/internal/routing"
	"jxta/internal/simnet"
	"jxta/internal/socket"
	"jxta/internal/topology"
	"jxta/internal/transport"
)

// ForceHibernate, when set, arms edge hibernation on every deployed overlay
// regardless of Spec.Hibernate. Test hook: the golden-trajectory suite
// replays every experiment with it on to prove hibernation never changes an
// event trajectory.
var ForceHibernate bool

// EdgeGroup attaches Count edge peers to the rendezvous at index AttachTo.
type EdgeGroup struct {
	AttachTo int
	Count    int
	Prefix   string // node name prefix, default "edge"
}

// Spec declares an overlay.
type Spec struct {
	// Seed is the experiment master seed (determinism).
	Seed int64
	// Model is the network model; nil selects the Grid'5000 model.
	Model *netmodel.Model
	// NumRdv is the number of rendezvous peers (r in the paper).
	NumRdv int
	// Shards selects the simulation engine: ≤1 (the default) runs the
	// serial scheduler, byte-identical to every earlier release; >1 runs
	// the conservative sharded engine with peers partitioned by site
	// (clamped to the number of modeled sites). Protocol outcomes are
	// deterministic for a given (Seed, Shards) pair but differ between
	// shard counts: per-node RNG streams derive from per-shard seeds.
	Shards int
	// PipelineWindows is deprecated and ignored: window pipelining is now
	// the default whenever Shards > 1. Set BarrierWindows to opt back into
	// the global-barrier engine.
	PipelineWindows bool
	// BarrierWindows, with Shards > 1, opts out of window pipelining and
	// runs the sharded engine's original global window barrier: every
	// shard waits for the globally slowest shard between windows. The
	// barrier path is byte-identical to earlier barrier-mode releases; the
	// default pipelined path replaces the barrier with per-(src,dst)
	// sealed exchange queues, so a shard starts its next window as soon as
	// its own inputs are sealed. Both are bit-reproducible at any
	// GOMAXPROCS, but window boundaries differ between the two, so
	// outcomes are deterministic per (Seed, Shards, BarrierWindows)
	// triple.
	BarrierWindows bool
	// Hibernate freeze-dries steady-state edge peers between events: once
	// an edge holds its lease and has no pending queries, streams or
	// timers beyond the armed renewals, its service maps, metric caches
	// and RNG register are packed into pooled records and released,
	// cutting live heap per idle edge by roughly 2-3x. Any inbound
	// delivery, timer fire or direct driver call rehydrates transparently;
	// event trajectories and wire traffic are byte-identical either way.
	// Edge-only: rendezvous peers stay hot. Requires the simulated clock
	// (no-op on real-clock envs).
	Hibernate bool
	// LeanMetrics shrinks per-node observability for large simulated
	// populations: nodes share one population-wide metrics registry
	// (counters aggregate across peers) and skip the per-node trace ring
	// and gauges. Saves roughly half the per-node assembly cost at 100k
	// edges; leave off when per-peer metric snapshots matter.
	LeanMetrics bool
	// Topology is the seed-graph shape (chain in most experiments).
	Topology topology.Kind
	// Fanout applies to tree topologies.
	Fanout int
	// Peerview, Lease, Discovery, Socket tune the protocols; zero = paper
	// defaults.
	Peerview  peerview.Config
	Lease     rendezvous.Config
	Discovery discovery.Config
	Socket    socket.Config
	// Routing names the replica-placement strategy every peer uses:
	// "" or "lcdht" for the paper's linear position hash, "kademlia" for
	// XOR-closest placement (routing.ParseStrategy). An explicit
	// Discovery.Router wins over this name.
	Routing string
	// Edges attaches edge peers to rendezvous.
	Edges []EdgeGroup
}

// Overlay is a deployed set of peers sharing one simulator. Membership is
// dynamic: peers can be stopped, killed, restarted and added while virtual
// time runs (self-healing and volatility scenarios).
type Overlay struct {
	Sched simnet.Engine
	Net   *transport.Network
	Rdvs  []*node.Node
	Edges []*node.Node

	// Metrics is the overlay-level registry: fabric traffic counters
	// (jxta_net_*) plus, on sharded runs, the engine's window/barrier
	// instrumentation (jxta_sim_*). Per-node protocol instruments live on
	// each node's own registry (node.Node.Metrics). Engine instruments are
	// sampled at encode time; read them from the driver side, between Run
	// calls. The fabric counters are atomic and safe mid-run.
	Metrics *metrics.Registry

	// LeanRegistry is non-nil when Spec.LeanMetrics is on: the single
	// population-wide registry every deployed node shares (each node's
	// Metrics field aliases it). Counters aggregate across the population;
	// Func-backed instruments describe one arbitrary peer.
	LeanRegistry *metrics.Registry

	// AdvStore is the overlay's advertisement interning table: every node's
	// cache and peerview dedupes equal advertisements through it, and it is
	// collectible with the overlay (unlike the process-wide default store).
	AdvStore *advstore.Store

	// OnPromotion, when set, observes edge→rendezvous role switches (the
	// self-healing machinery promotes nodes while virtual time runs).
	// Deployment lists are kept by construction role; use Node.IsRendezvous
	// for the current role.
	OnPromotion func(*node.Node)

	// OnMerge, when set, observes completed island-merge handshake legs
	// (Spec.Lease.IslandMerge): the node that merged and its counterpart's
	// peer ID.
	OnMerge func(n *node.Node, peer ids.ID)

	spec      Spec
	edgeCount int
	started   bool
	// sharded/assign are set when the sharded engine runs: assign[site]
	// names the shard owning each Grid'5000 site (topology.PlaceSites).
	sharded *simnet.ShardedScheduler
	assign  []int
}

// Build deploys the overlay. Rendezvous peers are spread round-robin over
// the nine Grid'5000 sites, as the paper's multi-site runs were.
func Build(spec Spec) (*Overlay, error) {
	if spec.NumRdv < 0 {
		return nil, fmt.Errorf("deploy: NumRdv=%d", spec.NumRdv)
	}
	model := spec.Model
	if model == nil {
		model = netmodel.Grid5000()
	}
	if spec.Routing != "" && spec.Discovery.Router == nil {
		strat, err := routing.ParseStrategy(spec.Routing)
		if err != nil {
			return nil, err
		}
		spec.Discovery.Router = strat
	}
	o := &Overlay{spec: spec, AdvStore: advstore.New()}
	if spec.LeanMetrics {
		o.LeanRegistry = metrics.NewRegistry()
	}
	if spec.Shards > 1 {
		shards := spec.Shards
		if shards > netmodel.NumSites {
			// Placement is site-granular, so shards beyond the site
			// count would stay empty forever.
			shards = netmodel.NumSites
		}
		assign := topology.PlaceSites(netmodel.NumSites, shards)
		lookahead := model.ShardLookahead(assign)
		if lookahead <= 0 {
			return nil, fmt.Errorf("deploy: model admits no conservative lookahead across %d shards (zero inter-site latency)", shards)
		}
		ss := simnet.NewSharded(spec.Seed, shards, lookahead)
		if !spec.BarrierWindows {
			ss.EnablePipelining(model.ShardLagMatrix(assign, shards, lookahead))
		}
		net, err := transport.NewShardedNetwork(ss, model, assign)
		if err != nil {
			return nil, err
		}
		o.Sched, o.Net, o.sharded, o.assign = ss, net, ss, assign
	} else {
		sched := simnet.NewScheduler(spec.Seed)
		o.Sched, o.Net = sched, transport.NewNetwork(sched, model)
	}

	o.instrument()

	seedIdx, err := topology.Seeds(spec.Topology, spec.NumRdv, spec.Fanout)
	if err != nil {
		return nil, err
	}
	sites := netmodel.SpreadSites(spec.NumRdv)
	for i := 0; i < spec.NumRdv; i++ {
		name := fmt.Sprintf("rdv%d", i)
		e := o.newEnv(name, sites[i])
		tr, err := o.Net.Attach(name, sites[i])
		if err != nil {
			return nil, err
		}
		var seeds []peerview.Seed
		for _, s := range seedIdx[i] {
			seeds = append(seeds, o.Rdvs[s].Seed())
		}
		n := node.New(e, tr, node.Config{
			Name:      name,
			Role:      node.Rendezvous,
			Seeds:     seeds,
			Peerview:  spec.Peerview,
			Lease:     spec.Lease,
			Discovery: spec.Discovery,
			Socket:    spec.Socket,
			AdvStore:  o.AdvStore,
			Metrics:   o.LeanRegistry,
		})
		n.MergeObserved = func(nn *node.Node, peer ids.ID) {
			if o.OnMerge != nil {
				o.OnMerge(nn, peer)
			}
		}
		o.Rdvs = append(o.Rdvs, n)
	}
	for _, g := range spec.Edges {
		if g.AttachTo < 0 || g.AttachTo >= spec.NumRdv {
			return nil, fmt.Errorf("deploy: edge group attaches to rdv %d of %d", g.AttachTo, spec.NumRdv)
		}
		prefix := g.Prefix
		if prefix == "" {
			prefix = "edge"
		}
		for j := 0; j < g.Count; j++ {
			if _, err := o.AddEdge(fmt.Sprintf("%s%d", prefix, o.edgeCount), g.AttachTo); err != nil {
				return nil, err
			}
		}
	}
	return o, nil
}

// AddEdge attaches one more edge peer to the given rendezvous. The edge
// lives on the same site as its rendezvous (the paper's noisers and
// publisher/searcher run on testbed nodes beside their rendezvous cluster).
// On a running overlay the new edge starts immediately — a live join at
// virtual runtime.
func (o *Overlay) AddEdge(name string, attachTo int) (*node.Node, error) {
	rdv := o.Rdvs[attachTo]
	site := siteOfRdv(o, attachTo)
	e := o.newEnv(name, site)
	tr, err := o.Net.Attach(name, site)
	if err != nil {
		return nil, err
	}
	n := node.New(e, tr, node.Config{
		Name:      name,
		Role:      node.Edge,
		Seeds:     []peerview.Seed{rdv.Seed()},
		Peerview:  o.spec.Peerview, // promotion builds its peerview from this
		Lease:     o.spec.Lease,
		Discovery: o.spec.Discovery,
		Socket:    o.spec.Socket,
		AdvStore:  o.AdvStore,
		Metrics:   o.LeanRegistry,
	})
	if o.spec.Hibernate || ForceHibernate {
		n.EnableHibernation()
	}
	n.RoleChanged = func(nn *node.Node) {
		if o.OnPromotion != nil {
			o.OnPromotion(nn)
		}
	}
	n.MergeObserved = func(nn *node.Node, peer ids.ID) {
		if o.OnMerge != nil {
			o.OnMerge(nn, peer)
		}
	}
	o.Edges = append(o.Edges, n)
	o.edgeCount++
	if o.started {
		n.Start()
	}
	return n, nil
}

// newEnv creates a node environment on the shard owning the node's site
// (shard affinity: a node's timers run in the same windows as its
// deliveries). Serial overlays place everything on the one scheduler.
func (o *Overlay) newEnv(name string, site netmodel.Site) *simnet.NodeEnv {
	if o.sharded != nil {
		return o.sharded.NewEnvOn(o.assign[site], name)
	}
	return o.Sched.NewEnv(name)
}

// Engine returns the sharded engine when one is running (nil for serial
// overlays); experiments use it to read window/barrier instrumentation.
func (o *Overlay) Engine() *simnet.ShardedScheduler { return o.sharded }

// instrument builds the overlay registry over the fabric and (when sharded)
// the engine. Pure observer: collector-backed instruments read the
// already-maintained counters at encode time.
func (o *Overlay) instrument() {
	o.Metrics = metrics.NewRegistry()
	o.Metrics.CounterFunc("jxta_net_messages_total", "Messages accepted by the simulated fabric.",
		func() uint64 { return o.Net.Stats().Messages })
	o.Metrics.CounterFunc("jxta_net_bytes_total", "Payload bytes accepted by the simulated fabric.",
		func() uint64 { return o.Net.Stats().Bytes })
	o.Metrics.CounterFunc("jxta_net_dropped_total", "Deliveries dropped: loss injection plus sends to detached peers.",
		func() uint64 { return o.Net.Stats().Dropped })
	o.Metrics.GaugeFunc("jxta_sim_shards", "Engine shards (1 = serial scheduler).",
		func() float64 {
			if o.sharded == nil {
				return 1
			}
			return float64(o.sharded.Shards())
		})
	if o.sharded == nil {
		return
	}
	ss := o.sharded
	o.Metrics.CounterFunc("jxta_sim_windows_total", "Shard execution windows run.",
		func() uint64 { return ss.ParallelStats().Windows })
	o.Metrics.CounterFunc("jxta_sim_events_total", "Events executed inside shard windows.",
		func() uint64 { return ss.ParallelStats().TotalEvents })
	o.Metrics.CounterFunc("jxta_sim_critical_events_total", "Per-window maxima summed: the parallel critical path in events.",
		func() uint64 { return ss.ParallelStats().CriticalEvents })
	o.Metrics.CounterFunc("jxta_sim_cross_shard_events_total", "Events exchanged through the window-barrier queues.",
		func() uint64 { return ss.ParallelStats().CrossShard })
	o.Metrics.CounterFunc("jxta_sim_busy_shard_sum_total", "Per-window busy-shard counts summed (mean busy = this over windows).",
		func() uint64 { return ss.ParallelStats().BusyShardSum })
	for i := 0; i < ss.Shards(); i++ {
		sh := ss.Shard(i)
		o.Metrics.CounterFuncWith("jxta_sim_shard_steps_total", "Events executed, per shard.",
			"shard", strconv.Itoa(i), sh.Steps)
	}
	o.Metrics.GaugeFunc("jxta_sim_max_busy_shards", "Largest number of concurrently busy shards seen.",
		func() float64 { return float64(ss.ParallelStats().MaxBusy) })
	o.Metrics.GaugeFunc("jxta_sim_speedup_bound", "TotalEvents/CriticalEvents: the workload's achievable speedup.",
		func() float64 { return ss.ParallelStats().SpeedupBound() })
}

// Nodes returns every deployed peer, rendezvous first — the scrape set for
// per-node metrics collection.
func (o *Overlay) Nodes() []*node.Node {
	out := make([]*node.Node, 0, len(o.Rdvs)+len(o.Edges))
	out = append(out, o.Rdvs...)
	out = append(out, o.Edges...)
	return out
}

func siteOfRdv(o *Overlay, idx int) netmodel.Site {
	sites := netmodel.SpreadSites(len(o.Rdvs))
	if idx < len(sites) {
		return sites[idx]
	}
	return netmodel.Rennes
}

// StartAll starts every deployed peer. Edges added afterwards start
// automatically (live joins).
func (o *Overlay) StartAll() {
	o.started = true
	for _, n := range o.Rdvs {
		n.Start()
	}
	for _, n := range o.Edges {
		n.Start()
	}
}

// StopAll stops every peer gracefully.
func (o *Overlay) StopAll() {
	o.started = false
	for _, n := range o.Edges {
		n.Stop()
	}
	for _, n := range o.Rdvs {
		n.Stop()
	}
}

// StopRdv gracefully stops a rendezvous peer (restartable in place: the
// transport stays attached).
func (o *Overlay) StopRdv(i int) { o.Rdvs[i].Stop() }

// StopEdge gracefully stops an edge peer, cancelling its lease.
func (o *Overlay) StopEdge(i int) { o.Edges[i].Stop() }

// KillNode crashes a peer abruptly: nothing is sent — no lease cancel, no
// stream FIN — and the transport detaches (node.Kill closes the endpoint,
// which removes a Sim endpoint from the network), so messages delivered
// while it is down are lost and remote peers discover the death by their
// own timeouts, as on a real testbed.
func (o *Overlay) KillNode(n *node.Node) {
	n.Kill()
}

// KillRdv crashes a rendezvous peer abruptly (churn experiments).
func (o *Overlay) KillRdv(i int) { o.KillNode(o.Rdvs[i]) }

// KillEdge crashes an edge peer abruptly.
func (o *Overlay) KillEdge(i int) { o.KillNode(o.Edges[i]) }

// RestartNode cold-restarts a peer in place, re-attaching its transport
// endpoint first if the peer had been killed. The peer keeps its identity
// (ID, RNG stream, address) but rejoins the overlay with fresh protocol
// state, so a mass-failure scenario can heal through staged rejoins.
func (o *Overlay) RestartNode(n *node.Node) {
	if sim, ok := n.Endpoint.Transport().(*transport.Sim); ok {
		o.Net.Reattach(sim)
	}
	n.Restart()
}

// RestartRdv restarts the i-th rendezvous peer (see RestartNode).
func (o *Overlay) RestartRdv(i int) { o.RestartNode(o.Rdvs[i]) }

// RestartEdge restarts the i-th edge peer (see RestartNode).
func (o *Overlay) RestartEdge(i int) { o.RestartNode(o.Edges[i]) }
