// Package advstore interns advertisements by their canonical encoded
// form: every holder of an equal advertisement — the same rendezvous
// advertisement cached in a hundred peerviews, a popular resource
// advertisement cached at every searcher — shares one decoded instance
// instead of keeping a private copy. At 100k-peer populations the
// duplicated decodes dominate cache memory; interning collapses them to
// one per distinct document.
//
// The store is refcounted: Intern returns a handle, holders Release it
// when they evict, and the table forgets an advertisement when its last
// handle is released. Shared advertisements are read-only by contract —
// a holder that needs to change one takes a MutableCopy (copy-on-write
// at the mutation boundary) and re-interns the result if it wants the
// copy shared again.
package advstore

import (
	"hash/fnv"
	"sync"

	"jxta/internal/advertisement"
)

// key identifies a canonical encoding: a 128-bit FNV-1a digest plus the
// encoded length. The encoding itself is not retained — holding it would
// cost more than the interning saves on unique advertisements — so two
// distinct documents colliding in both digest and length would alias;
// with a 128-bit digest that is beyond birthday reach for any plausible
// population.
type key struct {
	hash [16]byte
	size int
}

// Shared is one interned advertisement: a refcounted handle on the
// canonical decoded instance. The instance is shared with every other
// holder and must not be mutated — use MutableCopy at mutation
// boundaries.
type Shared struct {
	store *Store // nil for private (unencodable) handles
	key   key
	adv   advertisement.Advertisement
	refs  int64 // guarded by store.mu
}

// Store is one interning table. The zero value is not usable; use New.
// Safe for concurrent use: sharded simulations intern from parallel
// shard goroutines.
type Store struct {
	mu     sync.Mutex
	byKey  map[key]*Shared
	hits   uint64
	misses uint64
}

// New builds an empty store.
func New() *Store { return &Store{byKey: make(map[key]*Shared)} }

// defaultStore is the process-wide table behind Default.
var defaultStore = New()

// Default returns the process-wide store. Caches and peerviews intern
// against it so equal advertisements dedupe across every simulated peer
// in the process.
func Default() *Store { return defaultStore }

func keyOf(adv advertisement.Advertisement) (key, error) {
	enc, err := advertisement.EncodeXML(adv)
	if err != nil {
		return key{}, err
	}
	h := fnv.New128a()
	h.Write(enc)
	var k key
	h.Sum(k.hash[:0])
	k.size = len(enc)
	return k, nil
}

// Intern returns a handle on the canonical instance equal to adv,
// adopting adv itself as the canonical instance when none exists yet.
// The caller owns one reference and must Release it on eviction. An
// advertisement that fails to encode gets a private (untabled) handle,
// so the API never errors on the caller.
func (s *Store) Intern(adv advertisement.Advertisement) *Shared {
	k, err := keyOf(adv)
	if err != nil {
		return &Shared{adv: adv, refs: 1}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh, ok := s.byKey[k]; ok {
		sh.refs++
		s.hits++
		return sh
	}
	sh := &Shared{store: s, key: k, adv: adv, refs: 1}
	s.byKey[k] = sh
	s.misses++
	return sh
}

// Adv returns the canonical instance. Read-only by contract: it is
// shared with every other holder of an equal advertisement.
func (sh *Shared) Adv() advertisement.Advertisement { return sh.adv }

// Retain adds a reference (a second holder keeping the same handle) and
// returns the handle for chaining.
func (sh *Shared) Retain() *Shared {
	if sh.store != nil {
		sh.store.mu.Lock()
		sh.refs++
		sh.store.mu.Unlock()
	}
	return sh
}

// Release drops one reference; the table forgets the advertisement when
// the last reference goes. Releasing more than retained panics — that is
// always a bookkeeping bug.
func (sh *Shared) Release() {
	if sh.store == nil {
		return
	}
	s := sh.store
	s.mu.Lock()
	sh.refs--
	freed := sh.refs < 0
	if sh.refs == 0 {
		delete(s.byKey, sh.key)
	}
	s.mu.Unlock()
	if freed {
		panic("advstore: Release of an already-freed handle")
	}
}

// MutableCopy returns a private deep copy of the advertisement — the
// copy-on-write boundary. The copy is made by a document round trip, so
// it shares no structure with the canonical instance.
func (sh *Shared) MutableCopy() (advertisement.Advertisement, error) {
	return advertisement.Decode(sh.adv.Document())
}

// Len reports the number of distinct interned advertisements.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// Stats reports interning effectiveness: hits returned an existing
// canonical instance, misses adopted a new one.
func (s *Store) Stats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}
