package advstore

import (
	"fmt"
	"sync"
	"testing"

	"jxta/internal/advertisement"
	"jxta/internal/ids"
)

func resAdv(name string) *advertisement.Resource {
	return &advertisement.Resource{
		ResID: ids.FromName(ids.KindAdv, name),
		Name:  name,
		Attrs: []advertisement.IndexField{{Attr: "ram", Value: "512"}},
	}
}

func TestInternDedupesEqualAdvertisements(t *testing.T) {
	s := New()
	a, b := resAdv("cpu"), resAdv("cpu")
	if a == b {
		t.Fatal("test needs two distinct instances")
	}
	ha, hb := s.Intern(a), s.Intern(b)
	if ha != hb {
		t.Fatal("equal advertisements got distinct handles")
	}
	if ha.Adv() != advertisement.Advertisement(a) {
		t.Fatal("first instance interned must become the canonical one")
	}
	if hits, misses := s.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1, 1", hits, misses)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestDistinctAdvertisementsStaySeparate(t *testing.T) {
	s := New()
	ha, hb := s.Intern(resAdv("cpu")), s.Intern(resAdv("disk"))
	if ha == hb {
		t.Fatal("distinct advertisements shared a handle")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestReleaseForgetsOnLastReference(t *testing.T) {
	s := New()
	h1 := s.Intern(resAdv("cpu"))
	h2 := s.Intern(resAdv("cpu"))
	h1.Release()
	if s.Len() != 1 {
		t.Fatal("released below the live reference count")
	}
	h2.Release()
	if s.Len() != 0 {
		t.Fatal("table kept an advertisement with no holders")
	}
	// A re-intern after the last release adopts the new instance.
	fresh := resAdv("cpu")
	h3 := s.Intern(fresh)
	if h3.Adv() != advertisement.Advertisement(fresh) {
		t.Fatal("re-intern did not adopt the fresh instance")
	}
	h3.Release()
}

func TestRetainAddsAReference(t *testing.T) {
	s := New()
	h := s.Intern(resAdv("cpu"))
	h.Retain()
	h.Release()
	if s.Len() != 1 {
		t.Fatal("retained handle was forgotten")
	}
	h.Release()
	if s.Len() != 0 {
		t.Fatal("fully released handle survived")
	}
}

func TestOverReleasePanics(t *testing.T) {
	s := New()
	h := s.Intern(resAdv("cpu"))
	h.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	h.Release()
}

func TestMutableCopySharesNothing(t *testing.T) {
	s := New()
	h := s.Intern(resAdv("cpu"))
	cp, err := h.MutableCopy()
	if err != nil {
		t.Fatal(err)
	}
	mut, ok := cp.(*advertisement.Resource)
	if !ok {
		t.Fatalf("copy decoded as %T", cp)
	}
	if mut == h.Adv() {
		t.Fatal("MutableCopy returned the canonical instance")
	}
	mut.Name = "gpu"
	mut.Attrs[0].Value = "1024"
	canon := h.Adv().(*advertisement.Resource)
	if canon.Name != "cpu" || canon.Attrs[0].Value != "512" {
		t.Fatal("mutating the copy changed the canonical instance")
	}
	// Re-interning the mutated copy is a distinct entry.
	h2 := s.Intern(mut)
	if h2 == h {
		t.Fatal("mutated copy interned onto the original handle")
	}
	h.Release()
	h2.Release()
}

func TestConcurrentInternRelease(t *testing.T) {
	// Shard goroutines intern and release the same small advertisement
	// population concurrently; run under -race this is the store's
	// thread-safety proof, and the final table must be empty.
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("res%d", i%5)
				h := s.Intern(resAdv(name))
				if h.Adv().(*advertisement.Resource).Name != name {
					t.Errorf("handle for %q holds %q", name, h.Adv().(*advertisement.Resource).Name)
					return
				}
				if i%3 == 0 {
					h.Retain()
					h.Release()
				}
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after all releases, want 0", s.Len())
	}
}
