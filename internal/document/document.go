// Package document implements the lightweight structured documents that JXTA
// protocols exchange. The JXTA 2.0 specification defines every protocol
// payload and every advertisement as an XML document; this package provides
// an element tree plus a round-trippable XML codec.
//
// The codec is hand-rolled for the restricted document shape JXTA uses (no
// mixed content, prefixes kept verbatim): the simulator encodes and decodes
// a document for nearly every protocol message, and encoding/xml's
// tokenizer allocated roughly 25 objects per small document — the single
// largest garbage source in whole-overlay simulations. Output is
// byte-identical to the previous encoding/xml-based encoder (escaping
// included), which the tests assert against an encoding/xml reference; the
// determinism golden tests depend on that stability because message sizes
// feed the latency model.
package document

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"unicode/utf8"
)

// Attr is a single XML attribute. Attributes keep their document order so
// encoding is deterministic (the simulator depends on byte-stable output for
// reproducible message sizes).
type Attr struct {
	Name  string
	Value string
}

// Element is a node of a structured document: a name, optional attributes,
// either text content or child elements (mixed content is not used by any
// JXTA document type and is rejected by the codec).
type Element struct {
	Name     string
	Attrs    []Attr
	Text     string
	Children []*Element
}

// NewElement builds an element with the given name.
func NewElement(name string) *Element { return &Element{Name: name} }

// WithText sets the text content and returns the element for chaining.
func (e *Element) WithText(text string) *Element {
	e.Text = text
	return e
}

// WithAttr appends an attribute and returns the element for chaining.
func (e *Element) WithAttr(name, value string) *Element {
	e.Attrs = append(e.Attrs, Attr{Name: name, Value: value})
	return e
}

// Append adds children and returns the receiver for chaining.
func (e *Element) Append(children ...*Element) *Element {
	e.Children = append(e.Children, children...)
	return e
}

// AppendText adds a child element carrying only text. This is the dominant
// shape in advertisements (e.g. <Name>Test</Name>).
func (e *Element) AppendText(name, text string) *Element {
	return e.Append(NewElement(name).WithText(text))
}

// Attr returns the value of the named attribute and whether it was present.
func (e *Element) Attr(name string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Child returns the first child with the given name, or nil.
func (e *Element) Child(name string) *Element {
	for _, c := range e.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildText returns the text of the first child with the given name, or "".
func (e *Element) ChildText(name string) string {
	if c := e.Child(name); c != nil {
		return c.Text
	}
	return ""
}

// Each calls fn for every child with the given name.
func (e *Element) Each(name string, fn func(*Element)) {
	for _, c := range e.Children {
		if c.Name == name {
			fn(c)
		}
	}
}

// Clone returns a deep copy.
func (e *Element) Clone() *Element {
	if e == nil {
		return nil
	}
	cp := &Element{Name: e.Name, Text: e.Text}
	if len(e.Attrs) > 0 {
		cp.Attrs = append([]Attr(nil), e.Attrs...)
	}
	for _, c := range e.Children {
		cp.Children = append(cp.Children, c.Clone())
	}
	return cp
}

// Equal reports deep structural equality.
func (e *Element) Equal(o *Element) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Name != o.Name || e.Text != o.Text ||
		len(e.Attrs) != len(o.Attrs) || len(e.Children) != len(o.Children) {
		return false
	}
	for i := range e.Attrs {
		if e.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	for i := range e.Children {
		if !e.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Size estimates the encoded byte size without performing the encoding.
// Transports use it to model bandwidth/latency costs cheaply.
func (e *Element) Size() int {
	if e == nil {
		return 0
	}
	n := 2*len(e.Name) + 5 // <name></name>
	for _, a := range e.Attrs {
		n += len(a.Name) + len(a.Value) + 4
	}
	n += len(e.Text)
	for _, c := range e.Children {
		n += c.Size()
	}
	return n
}

// ErrMixedContent reports a document mixing text and child elements.
var ErrMixedContent = errors.New("document: element mixes text and children")

// Marshal encodes the element tree. Output is deterministic and
// byte-identical to the historical encoding/xml encoder for this document
// subset (spaces between attributes, double-quoted values, `&#34;`-style
// escapes, explicit end tags).
func (e *Element) Marshal() ([]byte, error) {
	return e.appendXML(make([]byte, 0, e.Size()+16))
}

func (e *Element) appendXML(buf []byte) ([]byte, error) {
	if e.Text != "" && len(e.Children) > 0 {
		return nil, fmt.Errorf("%w: <%s>", ErrMixedContent, e.Name)
	}
	buf = append(buf, '<')
	buf = append(buf, e.Name...)
	for _, a := range e.Attrs {
		buf = append(buf, ' ')
		buf = append(buf, a.Name...)
		buf = append(buf, '=', '"')
		buf = appendEscaped(buf, a.Value, true)
		buf = append(buf, '"')
	}
	buf = append(buf, '>')
	if e.Text != "" {
		// Newlines stay literal in character data (encoding/xml escapes
		// them only inside attribute values).
		buf = appendEscaped(buf, e.Text, false)
	}
	var err error
	for _, c := range e.Children {
		if buf, err = c.appendXML(buf); err != nil {
			return nil, err
		}
	}
	buf = append(buf, '<', '/')
	buf = append(buf, e.Name...)
	buf = append(buf, '>')
	return buf, nil
}

// Escape sequences matching encoding/xml's escapeString (the short numeric
// forms, not &quot;/&apos;).
const escFFFD = "�"

// appendEscaped appends s with XML escaping byte-identical to
// encoding/xml's printer: `"'&<>` and tab/CR escape to their short entity
// forms, newlines escape only when escapeNewline is set (attribute values);
// runes outside the XML character range become U+FFFD.
func appendEscaped(buf []byte, s string, escapeNewline bool) []byte {
	// Fast path: plain ASCII without escapable bytes is the overwhelmingly
	// common case for protocol documents.
	clean := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 || c < 0x20 || c == '"' || c == '\'' || c == '&' || c == '<' || c == '>' {
			clean = false
			break
		}
	}
	if clean {
		return append(buf, s...)
	}
	last := 0
	for i := 0; i < len(s); {
		r, width := utf8.DecodeRuneInString(s[i:])
		i += width
		var esc string
		switch r {
		case '"':
			esc = "&#34;"
		case '\'':
			esc = "&#39;"
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '\t':
			esc = "&#x9;"
		case '\n':
			if !escapeNewline {
				continue
			}
			esc = "&#xA;"
		case '\r':
			esc = "&#xD;"
		default:
			if !isInCharacterRange(r) || (r == 0xFFFD && width == 1) {
				esc = escFFFD
				break
			}
			continue
		}
		buf = append(buf, s[last:i-width]...)
		buf = append(buf, esc...)
		last = i
	}
	return append(buf, s[last:]...)
}

// isInCharacterRange mirrors encoding/xml's definition of valid XML chars.
func isInCharacterRange(r rune) bool {
	return r == 0x09 ||
		r == 0x0A ||
		r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// internTable holds the canonical copy of the protocol vocabulary: element
// and attribute names plus the handful of small constant text values the
// JXTA documents repeat in nearly every message (advertisement field names,
// query stages, pipe kinds). The decoder allocates one string per name per
// document; interning removes that for the overwhelmingly common names.
// The table is built once at package init and read-only afterwards, so
// concurrent decoders (parallel experiment sweeps) share it without locks.
var internTable = make(map[string]string, 96)

func init() {
	for _, s := range []string{
		// Advertisement document names.
		"jxta:PA", "jxta:RA", "jxta:RdvAdvertisement",
		"jxta:PipeAdvertisement", "jxta:MIA", "jxta:ResourceAdv",
		// Advertisement fields (element and attribute names).
		"PID", "Name", "name", "Desc", "Addr", "DstPID", "Hop",
		"RdvPeerID", "RdvGroupId", "MSID", "Id", "Type", "Attr", "Value",
		// Discovery query/response documents.
		"disco:Q", "disco:R", "Stage", "Lo", "Hi",
		"initial", "replica", "deliver", "range", "range-deliver",
		// SRDI tuples.
		"srdi:Tuple", "Key", "Pub", "Life", "NA", "NV",
		// Pipe kinds and common query types.
		"JxtaUnicast", "JxtaPropagate",
		"Peer", "Rdv", "Route", "Pipe", "Module", "Resource",
		// Ubiquitous small values.
		"1", "Test",
	} {
		internTable[s] = s
	}
}

// maxInternLen skips the table lookup for texts that cannot be vocabulary.
const maxInternLen = 24

// intern returns the canonical copy of b when it is protocol vocabulary,
// avoiding a fresh allocation; unknown strings are copied as usual. The
// map lookup with a []byte key compiles without allocating.
func intern(b []byte) string {
	if len(b) <= maxInternLen {
		if s, ok := internTable[string(b)]; ok {
			return s
		}
	}
	return string(b)
}

// Unmarshal decodes a single element tree from data. Whitespace-only
// character data between child elements is discarded, matching how JXTA
// implementations treat pretty-printed advertisements. A leading XML
// prolog, comments and directives are skipped; trailing bytes after the
// root element are ignored (historical behavior).
func Unmarshal(data []byte) (*Element, error) {
	p := parser{data: data}
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return nil, errors.New("document: no element found")
		}
		if p.data[p.pos] != '<' {
			return nil, fmt.Errorf("document: unexpected character %q before root element", p.data[p.pos])
		}
		if p.pos+1 < len(p.data) {
			switch p.data[p.pos+1] {
			case '?':
				if err := p.skipUntil("?>"); err != nil {
					return nil, err
				}
				continue
			case '!':
				if err := p.skipMarkupDecl(); err != nil {
					return nil, err
				}
				continue
			}
		}
		return p.parseElement()
	}
}

// parser is a minimal non-validating XML reader for the JXTA document
// subset. Names (including namespace prefixes) are kept verbatim, which
// matches what the previous decoder reconstructed via its prefix maps for
// every document the protocols exchange.
type parser struct {
	data []byte
	pos  int
	// depth tracks element nesting; maxDepth bounds the recursion so a
	// hostile document cannot overflow the stack. No JXTA document type
	// nests more than a handful of levels.
	depth int
	// slab is a bump arena for decoded Elements: one allocation hands out
	// storage for slabSize nodes, instead of one allocation per element.
	// Decoded documents are transient protocol payloads, so a surviving
	// element pinning its slab is acceptable.
	slab []Element
}

// maxDepth bounds element nesting (defense against crafted inputs).
const maxDepth = 256

const slabSize = 16

func (p *parser) newElement(name string) *Element {
	if len(p.slab) == 0 {
		p.slab = make([]Element, slabSize)
	}
	e := &p.slab[0]
	p.slab = p.slab[1:]
	e.Name = name
	return e
}

func (p *parser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// skipUntil advances past the next occurrence of marker.
func (p *parser) skipUntil(marker string) error {
	idx := bytes.Index(p.data[p.pos:], []byte(marker))
	if idx < 0 {
		return fmt.Errorf("document: unterminated %q section", marker)
	}
	p.pos += idx + len(marker)
	return nil
}

// skipMarkupDecl skips `<!-- ... -->` comments and `<! ... >` directives,
// including DOCTYPE declarations with a bracketed internal subset.
func (p *parser) skipMarkupDecl() error {
	if bytes.HasPrefix(p.data[p.pos:], []byte("<!--")) {
		return p.skipUntil("-->")
	}
	depth := 0
	for i := p.pos; i < len(p.data); i++ {
		switch p.data[i] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				p.pos = i + 1
				return nil
			}
		}
	}
	return errors.New("document: unterminated markup declaration")
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	for p.pos < len(p.data) {
		switch c := p.data[p.pos]; {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
			c == '>' || c == '/' || c == '=':
			goto done
		case c == '<':
			return "", errors.New("document: '<' in name")
		default:
			p.pos++
		}
	}
done:
	if p.pos == start {
		return "", errors.New("document: empty name")
	}
	return intern(p.data[start:p.pos]), nil
}

// parseElement decodes one element; p.pos must be at its '<'.
func (p *parser) parseElement() (*Element, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxDepth {
		return nil, errors.New("document: element nesting too deep")
	}
	p.pos++ // consume '<'
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	e := p.newElement(name)
	// Attributes.
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return nil, fmt.Errorf("document: unterminated <%s>", name)
		}
		switch p.data[p.pos] {
		case '>':
			p.pos++
			return p.parseContent(e)
		case '/':
			if p.pos+1 >= len(p.data) || p.data[p.pos+1] != '>' {
				return nil, fmt.Errorf("document: malformed empty-element tag in <%s>", name)
			}
			p.pos += 2
			return e, nil
		}
		attrName, err := p.parseName()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '=' {
			return nil, fmt.Errorf("document: attribute %s of <%s> missing '='", attrName, name)
		}
		p.pos++
		p.skipSpace()
		if p.pos >= len(p.data) || (p.data[p.pos] != '"' && p.data[p.pos] != '\'') {
			return nil, fmt.Errorf("document: attribute %s of <%s> missing quote", attrName, name)
		}
		quote := p.data[p.pos]
		p.pos++
		valStart := p.pos
		for p.pos < len(p.data) && p.data[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.data) {
			return nil, fmt.Errorf("document: unterminated attribute value in <%s>", name)
		}
		val, err := unescape(p.data[valStart:p.pos])
		if err != nil {
			return nil, err
		}
		p.pos++
		e.Attrs = append(e.Attrs, Attr{Name: attrName, Value: val})
	}
}

// parseContent decodes the children/text of e until its end tag.
func (p *parser) parseContent(e *Element) (*Element, error) {
	text := ""
	for {
		runStart := p.pos
		for p.pos < len(p.data) && p.data[p.pos] != '<' {
			p.pos++
		}
		if p.pos >= len(p.data) {
			return nil, fmt.Errorf("document: unterminated <%s>", e.Name)
		}
		if p.pos > runStart {
			run, err := unescape(p.data[runStart:p.pos])
			if err != nil {
				return nil, err
			}
			text += run
		}
		// p.pos is at '<'.
		if p.pos+1 < len(p.data) {
			switch p.data[p.pos+1] {
			case '/':
				p.pos += 2
				end, err := p.parseName()
				if err != nil {
					return nil, err
				}
				if end != e.Name {
					return nil, fmt.Errorf("document: </%s> closes <%s>", end, e.Name)
				}
				p.skipSpace()
				if p.pos >= len(p.data) || p.data[p.pos] != '>' {
					return nil, fmt.Errorf("document: malformed </%s>", end)
				}
				p.pos++
				if len(e.Children) == 0 {
					e.Text = text
				} else if strings.TrimSpace(text) != "" {
					return nil, fmt.Errorf("%w: <%s>", ErrMixedContent, e.Name)
				}
				return e, nil
			case '!':
				if bytes.HasPrefix(p.data[p.pos:], []byte("<![CDATA[")) {
					p.pos += len("<![CDATA[")
					idx := bytes.Index(p.data[p.pos:], []byte("]]>"))
					if idx < 0 {
						return nil, errors.New("document: unterminated CDATA")
					}
					text += normalizeCRLF(p.data[p.pos : p.pos+idx])
					p.pos += idx + len("]]>")
					continue
				}
				if err := p.skipMarkupDecl(); err != nil {
					return nil, err
				}
				continue
			case '?':
				if err := p.skipUntil("?>"); err != nil {
					return nil, err
				}
				continue
			}
		}
		child, err := p.parseElement()
		if err != nil {
			return nil, err
		}
		e.Children = append(e.Children, child)
	}
}

// unescape resolves entity and character references in raw character data
// and applies XML line-ending normalization (CRLF and bare CR become LF,
// matching encoding/xml; a literal CR can only be produced via &#xD;,
// which expands after normalization).
func unescape(raw []byte) (string, error) {
	special := -1
	for i := 0; i < len(raw); i++ {
		if raw[i] == '&' || raw[i] == '\r' {
			special = i
			break
		}
	}
	if special < 0 {
		return intern(raw), nil
	}
	out := make([]byte, 0, len(raw))
	out = append(out, raw[:special]...)
	for i := special; i < len(raw); {
		c := raw[i]
		if c == '\r' {
			out = append(out, '\n')
			i++
			if i < len(raw) && raw[i] == '\n' {
				i++
			}
			continue
		}
		if c != '&' {
			out = append(out, c)
			i++
			continue
		}
		semi := -1
		for j := i + 1; j < len(raw); j++ {
			if raw[j] == ';' {
				semi = j
				break
			}
		}
		if semi < 0 {
			return "", errors.New("document: unterminated entity reference")
		}
		ent := string(raw[i+1 : semi])
		switch ent {
		case "amp":
			out = append(out, '&')
		case "lt":
			out = append(out, '<')
		case "gt":
			out = append(out, '>')
		case "quot":
			out = append(out, '"')
		case "apos":
			out = append(out, '\'')
		default:
			if len(ent) < 2 || ent[0] != '#' {
				return "", fmt.Errorf("document: unknown entity &%s;", ent)
			}
			var r rune
			var ok bool
			if ent[1] == 'x' || ent[1] == 'X' {
				r, ok = parseRune(ent[2:], 16)
			} else {
				r, ok = parseRune(ent[1:], 10)
			}
			if !ok || !isInCharacterRange(r) {
				return "", fmt.Errorf("document: invalid character reference &%s;", ent)
			}
			out = utf8.AppendRune(out, r)
		}
		i = semi + 1
	}
	return string(out), nil
}

// normalizeCRLF applies XML line-ending normalization (CRLF and bare CR
// become LF) to raw bytes that bypass unescape, i.e. CDATA content.
func normalizeCRLF(raw []byte) string {
	if bytes.IndexByte(raw, '\r') < 0 {
		return string(raw)
	}
	out := make([]byte, 0, len(raw))
	for i := 0; i < len(raw); i++ {
		if raw[i] == '\r' {
			out = append(out, '\n')
			if i+1 < len(raw) && raw[i+1] == '\n' {
				i++
			}
			continue
		}
		out = append(out, raw[i])
	}
	return string(out)
}

// parseRune parses a character-reference number in the given base.
func parseRune(s string, base rune) (rune, bool) {
	if s == "" {
		return 0, false
	}
	var n rune
	for _, c := range s {
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = c - '0'
		case base == 16 && c >= 'a' && c <= 'f':
			d = c - 'a' + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = c - 'A' + 10
		default:
			return 0, false
		}
		n = n*base + d
		if n > utf8.MaxRune {
			return 0, false
		}
	}
	return n, true
}

// String renders the XML form, or a diagnostic on error.
func (e *Element) String() string {
	b, err := e.Marshal()
	if err != nil {
		return "<!-- " + err.Error() + " -->"
	}
	return string(b)
}
