// Package document implements the lightweight structured documents that JXTA
// protocols exchange. The JXTA 2.0 specification defines every protocol
// payload and every advertisement as an XML document; this package provides
// an element tree plus a round-trippable XML codec on top of encoding/xml.
package document

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Attr is a single XML attribute. Attributes keep their document order so
// encoding is deterministic (the simulator depends on byte-stable output for
// reproducible message sizes).
type Attr struct {
	Name  string
	Value string
}

// Element is a node of a structured document: a name, optional attributes,
// either text content or child elements (mixed content is not used by any
// JXTA document type and is rejected by the codec).
type Element struct {
	Name     string
	Attrs    []Attr
	Text     string
	Children []*Element
}

// NewElement builds an element with the given name.
func NewElement(name string) *Element { return &Element{Name: name} }

// WithText sets the text content and returns the element for chaining.
func (e *Element) WithText(text string) *Element {
	e.Text = text
	return e
}

// WithAttr appends an attribute and returns the element for chaining.
func (e *Element) WithAttr(name, value string) *Element {
	e.Attrs = append(e.Attrs, Attr{Name: name, Value: value})
	return e
}

// Append adds children and returns the receiver for chaining.
func (e *Element) Append(children ...*Element) *Element {
	e.Children = append(e.Children, children...)
	return e
}

// AppendText adds a child element carrying only text. This is the dominant
// shape in advertisements (e.g. <Name>Test</Name>).
func (e *Element) AppendText(name, text string) *Element {
	return e.Append(NewElement(name).WithText(text))
}

// Attr returns the value of the named attribute and whether it was present.
func (e *Element) Attr(name string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Child returns the first child with the given name, or nil.
func (e *Element) Child(name string) *Element {
	for _, c := range e.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildText returns the text of the first child with the given name, or "".
func (e *Element) ChildText(name string) string {
	if c := e.Child(name); c != nil {
		return c.Text
	}
	return ""
}

// Each calls fn for every child with the given name.
func (e *Element) Each(name string, fn func(*Element)) {
	for _, c := range e.Children {
		if c.Name == name {
			fn(c)
		}
	}
}

// Clone returns a deep copy.
func (e *Element) Clone() *Element {
	if e == nil {
		return nil
	}
	cp := &Element{Name: e.Name, Text: e.Text}
	if len(e.Attrs) > 0 {
		cp.Attrs = append([]Attr(nil), e.Attrs...)
	}
	for _, c := range e.Children {
		cp.Children = append(cp.Children, c.Clone())
	}
	return cp
}

// Equal reports deep structural equality.
func (e *Element) Equal(o *Element) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Name != o.Name || e.Text != o.Text ||
		len(e.Attrs) != len(o.Attrs) || len(e.Children) != len(o.Children) {
		return false
	}
	for i := range e.Attrs {
		if e.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	for i := range e.Children {
		if !e.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Size estimates the encoded byte size without performing the encoding.
// Transports use it to model bandwidth/latency costs cheaply.
func (e *Element) Size() int {
	if e == nil {
		return 0
	}
	n := 2*len(e.Name) + 5 // <name></name>
	for _, a := range e.Attrs {
		n += len(a.Name) + len(a.Value) + 4
	}
	n += len(e.Text)
	for _, c := range e.Children {
		n += c.Size()
	}
	return n
}

// ErrMixedContent reports a document mixing text and child elements.
var ErrMixedContent = errors.New("document: element mixes text and children")

// Marshal encodes the element tree. Output is deterministic.
func (e *Element) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	if err := encodeElement(enc, e); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeElement(enc *xml.Encoder, e *Element) error {
	if e.Text != "" && len(e.Children) > 0 {
		return fmt.Errorf("%w: <%s>", ErrMixedContent, e.Name)
	}
	start := xml.StartElement{Name: xml.Name{Local: e.Name}}
	for _, a := range e.Attrs {
		start.Attr = append(start.Attr, xml.Attr{Name: xml.Name{Local: a.Name}, Value: a.Value})
	}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if e.Text != "" {
		if err := enc.EncodeToken(xml.CharData(e.Text)); err != nil {
			return err
		}
	}
	for _, c := range e.Children {
		if err := encodeElement(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

// Unmarshal decodes a single element tree from data. Whitespace-only
// character data between child elements is discarded, matching how JXTA
// implementations treat pretty-printed advertisements.
func Unmarshal(data []byte) (*Element, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		tok, err := dec.Token()
		if err != nil {
			if err == io.EOF {
				return nil, errors.New("document: no element found")
			}
			return nil, err
		}
		if start, ok := tok.(xml.StartElement); ok {
			return decodeElement(dec, start, nil)
		}
	}
}

// qualified reconstructs a prefixed name ("jxta:PA") from the decoder's
// (space, local) split. When an xmlns declaration is in scope the decoder
// resolves the prefix to its URI; ns maps URIs back to the original
// prefixes. Undeclared prefixes pass through verbatim in Space.
func qualified(n xml.Name, ns map[string]string) string {
	if n.Space == "" {
		return n.Local
	}
	if prefix, ok := ns[n.Space]; ok {
		if prefix == "" {
			return n.Local
		}
		return prefix + ":" + n.Local
	}
	return n.Space + ":" + n.Local
}

func decodeElement(dec *xml.Decoder, start xml.StartElement, ns map[string]string) (*Element, error) {
	// Collect namespace declarations opened by this element (copy-on-write
	// so sibling scopes stay independent).
	for _, a := range start.Attr {
		var prefix string
		switch {
		case a.Name.Space == "xmlns":
			prefix = a.Name.Local
		case a.Name.Space == "" && a.Name.Local == "xmlns":
			prefix = ""
		default:
			continue
		}
		cp := make(map[string]string, len(ns)+1)
		for k, v := range ns {
			cp[k] = v
		}
		cp[a.Value] = prefix
		ns = cp
	}
	e := NewElement(qualified(start.Name, ns))
	for _, a := range start.Attr {
		switch {
		case a.Name.Space == "xmlns":
			e.Attrs = append(e.Attrs, Attr{Name: "xmlns:" + a.Name.Local, Value: a.Value})
		case a.Name.Space == "" && a.Name.Local == "xmlns":
			e.Attrs = append(e.Attrs, Attr{Name: "xmlns", Value: a.Value})
		default:
			e.Attrs = append(e.Attrs, Attr{Name: qualified(a.Name, ns), Value: a.Value})
		}
	}
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child, err := decodeElement(dec, t, ns)
			if err != nil {
				return nil, err
			}
			e.Children = append(e.Children, child)
		case xml.CharData:
			text.Write(t)
		case xml.EndElement:
			raw := text.String()
			if len(e.Children) == 0 {
				e.Text = raw
			} else if strings.TrimSpace(raw) != "" {
				return nil, fmt.Errorf("%w: <%s>", ErrMixedContent, e.Name)
			}
			return e, nil
		}
	}
}

// String renders the XML form, or a diagnostic on error.
func (e *Element) String() string {
	b, err := e.Marshal()
	if err != nil {
		return "<!-- " + err.Error() + " -->"
	}
	return string(b)
}
