package document

import (
	"bytes"
	"encoding/xml"
	"math/rand"
	"testing"
	"testing/quick"
)

// refMarshal is the historical encoding/xml-based encoder, kept as a test
// reference: the hand-rolled encoder must stay byte-identical, because
// encoded sizes feed the simulator's latency model and the determinism
// golden tests pin the resulting byte counts.
func refMarshal(e *Element) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	if err := refEncode(enc, e); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func refEncode(enc *xml.Encoder, e *Element) error {
	if e.Text != "" && len(e.Children) > 0 {
		return ErrMixedContent
	}
	start := xml.StartElement{Name: xml.Name{Local: e.Name}}
	for _, a := range e.Attrs {
		start.Attr = append(start.Attr, xml.Attr{Name: xml.Name{Local: a.Name}, Value: a.Value})
	}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if e.Text != "" {
		if err := enc.EncodeToken(xml.CharData(e.Text)); err != nil {
			return err
		}
	}
	for _, c := range e.Children {
		if err := refEncode(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

func TestMarshalMatchesEncodingXML(t *testing.T) {
	docs := []*Element{
		sampleDoc(),
		NewElement("A"),
		NewElement("Doc").WithText("plain"),
		NewElement("Doc").WithAttr("q", `a"b<c>&`).AppendText("T", "x < y & z > w"),
		NewElement("Doc").WithText("tab\tnl\ncr\rquote'dq\""),
		NewElement("Doc").WithAttr("a", "tab\tnl\ncr\r"),
		NewElement("Doc").WithText("unicode λ→🎉 text"),
		NewElement("jxta:Msg").WithAttr("xmlns:jxta", "http://jxta.org").
			Append(NewElement("jxta:Inner").WithText("v")),
	}
	for i, d := range docs {
		want, err := refMarshal(d)
		if err != nil {
			t.Fatalf("doc %d: reference: %v", i, err)
		}
		got, err := d.Marshal()
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("doc %d encoding diverged from encoding/xml\n got:  %q\n want: %q", i, got, want)
		}
	}
}

// nastyText draws strings that stress the escaper: specials, control
// bytes, multibyte runes, invalid UTF-8.
func nastyText(rng *rand.Rand) string {
	pieces := []string{
		"plain", "<", ">", "&", `"`, "'", "\t", "\n", "\r",
		"λ", "🎉", " ", "�", string(byte(0x01)), string([]byte{0xff, 0xfe}),
		"\x00", "mixed &amp; done",
	}
	n := rng.Intn(6)
	var out []byte
	for i := 0; i < n; i++ {
		out = append(out, pieces[rng.Intn(len(pieces))]...)
	}
	return string(out)
}

func TestMarshalMatchesEncodingXMLProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewElement("Doc").
			WithAttr("a", nastyText(rng)).
			WithAttr("b", nastyText(rng))
		if rng.Intn(2) == 0 {
			d.WithText(nastyText(rng))
		} else {
			d.AppendText("C", nastyText(rng))
		}
		want, errW := refMarshal(d)
		got, errG := d.Marshal()
		if (errW == nil) != (errG == nil) {
			return false
		}
		return errW != nil || bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalAcceptsEncodingXMLInput checks the hand-rolled parser reads
// documents the reference encoder produced, including escapes.
func TestUnmarshalAcceptsEncodingXMLInput(t *testing.T) {
	d := NewElement("Doc").WithAttr("q", "a\tb\nc&<>'\"").
		AppendText("T", "x < y & z > w \t done")
	data, err := refMarshal(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) {
		t.Fatalf("decode of reference encoding changed document:\n%s\nvs\n%s", d, back)
	}
}

func TestUnmarshalNamedEntitiesAndCharRefs(t *testing.T) {
	d, err := Unmarshal([]byte(`<Doc a="&quot;&apos;&#65;&#x41;">&amp;&lt;&gt;&#x1F389;</Doc>`))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Attr("a"); v != `"'AA` {
		t.Fatalf("attr = %q", v)
	}
	if d.Text != "&<>🎉" {
		t.Fatalf("text = %q", d.Text)
	}
}

func TestUnmarshalCDATA(t *testing.T) {
	d, err := Unmarshal([]byte("<Doc><![CDATA[a <raw> & b]]></Doc>"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Text != "a <raw> & b" {
		t.Fatalf("CDATA text = %q", d.Text)
	}
	// Line-ending normalization applies inside CDATA too.
	d, err = Unmarshal([]byte("<Doc><![CDATA[x\r\ny\rz]]></Doc>"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Text != "x\ny\nz" {
		t.Fatalf("CDATA CRLF text = %q, want %q", d.Text, "x\ny\nz")
	}
}

func TestUnmarshalSelfClosing(t *testing.T) {
	d, err := Unmarshal([]byte(`<Doc><A/><B x="1"/></Doc>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Children) != 2 || d.Children[0].Name != "A" {
		t.Fatalf("self-closing decode: %s", d)
	}
	if v, _ := d.Children[1].Attr("x"); v != "1" {
		t.Fatal("self-closing attr lost")
	}
}

func TestUnmarshalDoctypeInternalSubset(t *testing.T) {
	d, err := Unmarshal([]byte("<!DOCTYPE jxta:PA [<!ELEMENT a (b)>]>\n<a>x</a>"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "a" || d.Text != "x" {
		t.Fatalf("doctype-with-subset decode: %s", d)
	}
}

func TestUnmarshalNormalizesLineEndings(t *testing.T) {
	// XML line-ending normalization: CRLF and bare CR become LF, exactly
	// like the old encoding/xml decoder; a literal CR survives only via
	// a &#xD; character reference.
	d, err := Unmarshal([]byte("<a b=\"p\r\nq\">x\r\ny\rz&#xD;w</a>"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Text != "x\ny\nz\rw" {
		t.Fatalf("text = %q, want %q", d.Text, "x\ny\nz\rw")
	}
	if v, _ := d.Attr("b"); v != "p\nq" {
		t.Fatalf("attr = %q, want %q", v, "p\nq")
	}
}

func TestUnmarshalZeroPaddedCharRef(t *testing.T) {
	d, err := Unmarshal([]byte("<a>&#0000000065;</a>"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Text != "A" {
		t.Fatalf("zero-padded char ref = %q, want A", d.Text)
	}
}

func TestUnmarshalRejectsUnknownEntity(t *testing.T) {
	if _, err := Unmarshal([]byte("<Doc>&bogus;</Doc>")); err == nil {
		t.Fatal("unknown entity accepted")
	}
}

func TestUnmarshalCommentInsideElement(t *testing.T) {
	d, err := Unmarshal([]byte("<Doc><!-- note --><A>x</A></Doc>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Children) != 1 || d.ChildText("A") != "x" {
		t.Fatalf("comment handling: %s", d)
	}
}
