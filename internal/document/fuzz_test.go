package document

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzUnmarshal drives the hand-rolled XML codec with arbitrary bytes. Two
// properties must hold for every input:
//
//  1. The decoder never panics (and never recurses past maxDepth), whatever
//     the bytes look like.
//  2. The canonical form is a fixpoint: when Unmarshal accepts an input,
//     Marshal of the result must re-decode successfully, and a second
//     encode must be byte-identical to the first. (The raw input itself is
//     not required to round-trip byte-for-byte — the decoder normalizes
//     line endings, entity references and invalid runes — but one pass
//     through the codec must reach a stable form.)
//
// The seed corpus under testdata/fuzz/FuzzUnmarshal holds protocol-shaped
// documents (advertisements, SRDI tuples, discovery queries) plus the codec
// corner cases: prologs, DOCTYPE subsets, CDATA, character references,
// attribute quoting and malformed fragments.
func FuzzUnmarshal(f *testing.F) {
	for _, seed := range []string{
		"<jxta:PA><PID>urn:jxta:peer-1</PID><Name>Test</Name></jxta:PA>",
		"<srdi:Tuple><Key>PeerNameTest</Key><Pub>urn:jxta:p</Pub><Life>120</Life></srdi:Tuple>",
		"<disco:Q><Type>Resource</Type><Attr>Name</Attr><Value>Vol3</Value><Stage>initial</Stage></disco:Q>",
		`<?xml version="1.0" encoding="UTF-8"?><!DOCTYPE r [<!ENTITY x "y">]><r a="1" b='2'><c>t</c></r>`,
		"<a><![CDATA[raw <bytes> & more]]></a>",
		"<a>&amp;&lt;&gt;&quot;&apos;&#65;&#x42;</a>",
		"<e attr=\"line&#xA;break\">text\r\nwith\rreturns</e>",
		"<empty/>",
		"<a><b><c><d>deep</d></c></b></a>",
		"<a>mixed<b/>content</a>", // rejected: mixed content
		"<unterminated",
		"<a></b>",
		"&#xFFFF;<a>bad ref outside</a>",
		strings.Repeat("<n>", 300) + strings.Repeat("</n>", 300), // depth guard
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Unmarshal(data)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		enc, err := doc.Marshal()
		if err != nil {
			// The parser cannot produce mixed content, the only Marshal
			// error; anything else here is a codec asymmetry.
			t.Fatalf("Marshal of decoded document failed: %v", err)
		}
		doc2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("canonical form does not re-decode: %v\nform: %q", err, enc)
		}
		enc2, err := doc2.Marshal()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form is not a fixpoint\n first: %q\n second: %q", enc, enc2)
		}
	})
}
