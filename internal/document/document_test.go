package document

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleDoc() *Element {
	return NewElement("jxta:PA").
		WithAttr("xmlns:jxta", "http://jxta.org").
		AppendText("PID", "urn:jxta:uuid-00").
		AppendText("Name", "Test").
		Append(NewElement("Svc").
			AppendText("MCID", "mod-1").
			AppendText("Parm", "tcp://10.0.0.1:9701"))
}

func TestBuilderAccessors(t *testing.T) {
	d := sampleDoc()
	if d.Name != "jxta:PA" {
		t.Fatalf("Name = %q", d.Name)
	}
	if v, ok := d.Attr("xmlns:jxta"); !ok || v != "http://jxta.org" {
		t.Fatalf("Attr = %q, %v", v, ok)
	}
	if _, ok := d.Attr("missing"); ok {
		t.Fatal("missing attribute reported present")
	}
	if d.ChildText("Name") != "Test" {
		t.Fatalf("ChildText(Name) = %q", d.ChildText("Name"))
	}
	if d.ChildText("Nope") != "" {
		t.Fatal("missing child text not empty")
	}
	if d.Child("Svc") == nil || d.Child("Svc").ChildText("Parm") != "tcp://10.0.0.1:9701" {
		t.Fatal("nested child lookup failed")
	}
}

func TestEach(t *testing.T) {
	d := NewElement("root").
		AppendText("EA", "1").
		AppendText("EA", "2").
		AppendText("Other", "x").
		AppendText("EA", "3")
	var got []string
	d.Each("EA", func(e *Element) { got = append(got, e.Text) })
	if strings.Join(got, ",") != "1,2,3" {
		t.Fatalf("Each visited %v", got)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	d := sampleDoc()
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) {
		t.Fatalf("round trip changed document:\n%s\nvs\n%s", d, back)
	}
}

func TestUnmarshalSkipsProlog(t *testing.T) {
	data := []byte("<?xml version=\"1.0\"?>\n<!-- adv -->\n<Doc><A>x</A></Doc>")
	d, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "Doc" || d.ChildText("A") != "x" {
		t.Fatalf("unexpected decode: %s", d)
	}
}

func TestUnmarshalPrettyPrintedWhitespace(t *testing.T) {
	data := []byte("<Doc>\n  <A>x</A>\n  <B>y</B>\n</Doc>")
	d, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Children) != 2 || d.Text != "" {
		t.Fatalf("whitespace mishandled: %#v", d)
	}
}

func TestMixedContentRejected(t *testing.T) {
	e := NewElement("Doc").WithText("hello").AppendText("A", "x")
	if _, err := e.Marshal(); err == nil {
		t.Fatal("marshal of mixed content succeeded")
	}
	if _, err := Unmarshal([]byte("<Doc>text<A>x</A></Doc>")); err == nil {
		t.Fatal("unmarshal of mixed content succeeded")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for _, bad := range []string{"", "   ", "<unclosed>", "<a><b></a></b>"} {
		if _, err := Unmarshal([]byte(bad)); err == nil {
			t.Errorf("Unmarshal(%q) succeeded", bad)
		}
	}
}

func TestEscapingRoundTrip(t *testing.T) {
	d := NewElement("Doc").WithAttr("q", `a"b<c>&`).AppendText("T", "x < y & z > w")
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) {
		t.Fatalf("escaping round trip changed document: %s vs %s", d, back)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sampleDoc()
	cp := d.Clone()
	if !cp.Equal(d) {
		t.Fatal("clone not equal")
	}
	cp.Child("Svc").Children[0].Text = "changed"
	cp.Attrs[0].Value = "changed"
	if d.Child("Svc").ChildText("MCID") == "changed" {
		t.Fatal("clone shares child nodes")
	}
	if v, _ := d.Attr("xmlns:jxta"); v == "changed" {
		t.Fatal("clone shares attrs")
	}
}

func TestCloneNil(t *testing.T) {
	var e *Element
	if e.Clone() != nil {
		t.Fatal("Clone of nil not nil")
	}
}

func TestEqualEdgeCases(t *testing.T) {
	var nilEl *Element
	a := NewElement("A")
	if !nilEl.Equal(nil) {
		t.Fatal("nil != nil")
	}
	if a.Equal(nil) || nilEl.Equal(a) {
		t.Fatal("nil equals non-nil")
	}
	b := NewElement("A").WithText("x")
	if a.Equal(b) {
		t.Fatal("different text compared equal")
	}
}

func TestSizePositiveAndMonotone(t *testing.T) {
	small := NewElement("A")
	big := sampleDoc()
	if small.Size() <= 0 {
		t.Fatal("Size not positive")
	}
	if big.Size() <= small.Size() {
		t.Fatal("bigger document not bigger")
	}
	var nilEl *Element
	if nilEl.Size() != 0 {
		t.Fatal("nil Size not 0")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	d := sampleDoc()
	a, _ := d.Marshal()
	b, _ := d.Marshal()
	if string(a) != string(b) {
		t.Fatal("encoding not deterministic")
	}
}

// randomElement builds a random document tree for property testing.
func randomElement(rng *rand.Rand, depth int) *Element {
	names := []string{"A", "B", "Cde", "jxta:PA", "Name", "Svc"}
	e := NewElement(names[rng.Intn(len(names))])
	for i := 0; i < rng.Intn(3); i++ {
		e.WithAttr(names[rng.Intn(len(names))]+"attr", randText(rng))
	}
	if depth > 0 && rng.Intn(2) == 0 {
		for i := 0; i < 1+rng.Intn(3); i++ {
			e.Append(randomElement(rng, depth-1))
		}
	} else {
		e.Text = randText(rng)
	}
	return e
}

func randText(rng *rand.Rand) string {
	const alpha = "abc <>&\"'xyz123"
	n := rng.Intn(12)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alpha[rng.Intn(len(alpha))])
	}
	// Leading/trailing whitespace is legitimately normalized away in the
	// child-bearing case; keep text trimmed to make equality exact.
	return strings.TrimSpace(sb.String())
}

// Property: Marshal then Unmarshal is the identity on generated trees.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomElement(rng, 3)
		data, err := d.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return back.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	d := sampleDoc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	data, _ := sampleDoc().Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
